open Aring_ring
open Aring_sim
module Daemon = Aring_daemon.Daemon
module Kv = Aring_app.Kv
module Kv_scenario = Aring_app.Kv_scenario
module Oracle = Aring_app.Oracle
module Op = Aring_app.Op
module Prng = Aring_util.Prng
module Stats = Aring_util.Stats
module Metrics = Aring_obs.Metrics
module Span = Aring_obs.Span
module Scenario = Aring_harness.Scenario

type arrival = Poisson | Periodic

type storm = {
  storm_at_ns : int;
  storm_sessions : int;
  storm_window_ns : int;
}

type churn = {
  mean_lifetime_ns : int;
  reconnect_delay_ns : int;
  storm : storm option;
}

type slow_spec = { slow_per_node : int; drain_per_sec : float }
type geo = { classes : int array; latency_matrix : int array array }
type link = { l_node : int; l_up_bps : int option; l_down_bps : int option }

type spec = {
  label : string;
  n_nodes : int;
  net : Profile.net;
  tier : Profile.tier;
  params : Params.t;
  sessions_per_node : int;
  n_groups : int;
  arrival : arrival;
  ops_per_sec : float;
  load : (int * float) list;
  key_space : int;
  zipf_theta : float;
  value_mix : (int * int) list;
  read_permille : int;
  sync_read_permille : int;
  cas_permille : int;
  del_permille : int;
  mcas_permille : int;
  rings : int;
  churn : churn option;
  slow : slow_spec option;
  geo : geo option;
  links : link list;
  partition : Kv_scenario.partition option;
  warmup_ns : int;
  measure_ns : int;
  drain_ns : int;
  seed : int64;
}

type result = {
  spec : spec;
  sessions_started : int;
  sessions_peak : int;
  reconnects : int;
  ops_offered : int;
  ops_skipped : int;
  writes_offered : int;
  writes_applied : int;
  offered_write_rate : float;
  applied_write_rate : float;
  write_latency_us : Stats.t;
  sync_read_latency_us : Stats.t;
  queue_depth_peak : int;
  queue_depth_end : int;
  slow_inbox_peak : int;
  slow_inbox_end : int;
  storm_steady_rate : float;
  storm_rate : float;
  storm_degradation : float;
  storm_recovered_ms : float;
  storm_all_reconnected : bool;
  oracle : Oracle.t;
  oracle_violations : int;
  converged : bool;
  end_ns : int;
  metrics : Metrics.t;
}

let ms n = n * 1_000_000

let default_spec =
  {
    label = "load";
    n_nodes = 4;
    net = Profile.gigabit;
    tier = Profile.daemon;
    params = Kv_scenario.snappy_params ();
    sessions_per_node = 500;
    n_groups = 16;
    arrival = Poisson;
    ops_per_sec = 12_000.0;
    load = [];
    key_space = 512;
    zipf_theta = 0.99;
    value_mix = [ (64, 6); (256, 3); (1024, 1) ];
    read_permille = 250;
    sync_read_permille = 50;
    cas_permille = 100;
    del_permille = 70;
    mcas_permille = 0;
    rings = 1;
    churn = None;
    slow = None;
    geo = None;
    links = [];
    partition = None;
    warmup_ns = ms 100;
    measure_ns = ms 300;
    drain_ns = ms 1_000;
    seed = 21L;
  }

(* One open-loop client slot. [gen] guards delayed churn/reconnect
   callbacks against acting on a slot whose session has turned over. *)
type sess = {
  id : int;
  node : int;
  group : string;
  mutable handle : Daemon.session option;
  mutable gen : int;
  mutable counter : int;
}

let no_callbacks =
  {
    Daemon.on_message = (fun ~sender:_ ~groups:_ _ _ -> ());
    on_group_view = (fun ~group:_ ~members:_ -> ());
  }

let validate spec =
  if spec.n_nodes < 2 then invalid_arg "Load.run: n_nodes < 2";
  if spec.rings <> 1 then
    invalid_arg "Load.run: multi-ring specs run via Aring_multiring.Mload.run";
  if spec.mcas_permille <> 0 then
    invalid_arg "Load.run: mcas needs a multi-ring run (Mload)";
  if spec.sessions_per_node < 1 then
    invalid_arg "Load.run: sessions_per_node < 1";
  if spec.n_groups < 1 then invalid_arg "Load.run: n_groups < 1";
  if spec.key_space < 1 then invalid_arg "Load.run: key_space < 1";
  if spec.value_mix = [] then invalid_arg "Load.run: empty value_mix";
  if List.exists (fun (_, w) -> w < 0) spec.value_mix then
    invalid_arg "Load.run: negative value_mix weight";
  if List.fold_left (fun a (_, w) -> a + w) 0 spec.value_mix <= 0 then
    invalid_arg "Load.run: value_mix weights sum to zero"

let install_partition sim n (p : Kv_scenario.partition) =
  let inside = Array.make n false in
  List.iter (fun i -> if i >= 0 && i < n then inside.(i) <- true) p.island;
  Netsim.set_drop sim (fun ~src ~dst _ ->
      let now = Netsim.now sim in
      now >= p.part_at_ns && now < p.heal_at_ns && inside.(src) <> inside.(dst))

let kv_converged kvs =
  let n = Array.length kvs in
  let ok = ref true in
  for i = 0 to n - 1 do
    if not (Kv.settled kvs.(i) && Kv.synced kvs.(i)) then ok := false
  done;
  for i = 1 to n - 1 do
    if
      Kv.applied kvs.(i) <> Kv.applied kvs.(0)
      || Kv.digest kvs.(i) <> Kv.digest kvs.(0)
    then ok := false
  done;
  !ok

let run spec =
  validate spec;
  let n = spec.n_nodes in
  let initial_ring = Array.init n (fun i -> i) in
  let members =
    Array.init n (fun me ->
        Member.create ~params:spec.params ~me ~initial_ring ())
  in
  let daemons =
    Array.init n (fun i -> Daemon.create ~member:members.(i) ())
  in
  let kvs =
    Array.init n (fun i -> Kv.create ~cluster_size:n ~daemon:daemons.(i) ())
  in
  let oracle = Oracle.create () in
  Array.iter (fun kv -> Oracle.attach oracle kv) kvs;
  let sim =
    Netsim.create ~net:spec.net
      ~tiers:(Array.make n spec.tier)
      ~participants:(Array.map Daemon.participant daemons)
      ~seed:spec.seed ()
  in
  (* Network shape: per-node link-rate overrides and WAN latency
     classes. Applied before the first event runs. *)
  List.iter
    (fun l ->
      Netsim.set_link_rates sim ~node:l.l_node ?up_bps:l.l_up_bps
        ?down_bps:l.l_down_bps ())
    spec.links;
  Option.iter
    (fun g ->
      Netsim.set_latency_classes sim ~classes:g.classes
        ~matrix:g.latency_matrix)
    spec.geo;
  Option.iter (install_partition sim n) spec.partition;
  let metrics = Metrics.create () in
  let span = Span.create ~metrics () in
  Span.attach span;
  let horizon = spec.warmup_ns + spec.measure_ns in
  let deadline = horizon + spec.drain_ns in
  (* ---------------- instruments ---------------- *)
  let m_offered = Metrics.counter metrics "load.ops_offered" in
  let m_skipped = Metrics.counter metrics "load.ops_skipped_disconnected" in
  let m_reconnects = Metrics.counter metrics "load.reconnects" in
  let m_sessions = Metrics.gauge metrics "load.sessions_connected" in
  let m_queue = Metrics.gauge metrics "load.queue_depth" in
  let m_queue_peak = Metrics.gauge metrics "load.queue_depth_peak" in
  let m_slow_inbox = Metrics.gauge metrics "load.slow_inbox_depth" in
  let m_slow_drained = Metrics.counter metrics "load.slow_drained" in
  let m_latency = Metrics.histogram metrics "load.write_latency_us" in
  let write_latency = Stats.create () in
  let sync_latency = Stats.create () in
  let ops_offered = ref 0 in
  let ops_skipped = ref 0 in
  let writes_offered = ref 0 in
  let writes_applied = ref 0 in
  let in_flight_total = ref 0 in
  let queue_peak = ref 0 in
  let connected = ref 0 in
  let sessions_peak = ref 0 in
  let reconnects = ref 0 in
  (* Applied-write time series at node 0, 1 ms bins, for the storm
     degradation and recovery SLOs. *)
  let bin_ns = ms 1 in
  let applied_bins = Array.make ((deadline / bin_ns) + 2) 0 in
  (* Submit times of tracked in-flight writes, per node, keyed by the
     unique value string the op carries (as in Kv_scenario). *)
  let in_flight = Array.init n (fun _ -> Hashtbl.create 1024) in
  Array.iteri
    (fun node kv ->
      Kv.add_observer kv (function
        | Kv.Applied { op; _ } -> (
            let now = Netsim.now sim in
            if node = 0 then begin
              if now >= spec.warmup_ns && now < horizon then
                incr writes_applied;
              let b = now / bin_ns in
              if b >= 0 && b < Array.length applied_bins then
                applied_bins.(b) <- applied_bins.(b) + 1
            end;
            match op with
            | Op.Put { value; _ } | Op.Cas { value; _ } -> (
                match Hashtbl.find_opt in_flight.(node) value with
                | Some t0 ->
                    Hashtbl.remove in_flight.(node) value;
                    decr in_flight_total;
                    let us = float_of_int (now - t0) /. 1e3 in
                    Stats.add write_latency us;
                    Metrics.observe m_latency us
                | None -> ())
            | _ -> ())
        | _ -> ()))
    kvs;
  (* ---------------- session population ---------------- *)
  let total_sessions = n * spec.sessions_per_node in
  let sessions =
    Array.init total_sessions (fun i ->
        {
          id = i;
          node = i mod n;
          group = Printf.sprintf "g%03d" (i mod spec.n_groups);
          handle = None;
          gen = 0;
          counter = 0;
        })
  in
  let prng = Prng.create ~seed:(Int64.logxor spec.seed 0x6C6F6164L) in
  let zipf = Prng.zipf_table ~n:spec.key_space ~theta:spec.zipf_theta in
  let value_total =
    List.fold_left (fun a (_, w) -> a + w) 0 spec.value_mix
  in
  let draw_value_bytes () =
    let r = Prng.int prng value_total in
    let rec pick acc = function
      | [] -> 64
      | (bytes, w) :: rest ->
          if r < acc + w then bytes else pick (acc + w) rest
    in
    pick 0 spec.value_mix
  in
  let pad tag bytes =
    let len = max (String.length tag) bytes in
    let b = Bytes.make len '.' in
    Bytes.blit_string tag 0 b 0 (String.length tag);
    Bytes.to_string b
  in
  let key () = Printf.sprintf "k%05d" (Prng.zipf prng zipf) in
  let connect_session ss =
    let h =
      Daemon.connect daemons.(ss.node)
        ~name:(Printf.sprintf "u%05d" ss.id)
        no_callbacks
    in
    Daemon.join daemons.(ss.node) h ss.group;
    ss.handle <- Some h;
    ss.gen <- ss.gen + 1;
    incr connected;
    if !connected > !sessions_peak then sessions_peak := !connected
  in
  let disconnect_session ss =
    match ss.handle with
    | None -> ()
    | Some h ->
        Daemon.disconnect daemons.(ss.node) h;
        ss.handle <- None;
        ss.gen <- ss.gen + 1;
        decr connected
  in
  (* One KV op per arrival, independent of any completion. *)
  let do_op ss now =
    let in_window = now >= spec.warmup_ns && now < horizon in
    if in_window then incr ops_offered;
    Metrics.incr m_offered;
    ss.counter <- ss.counter + 1;
    let kv = kvs.(ss.node) in
    let key = key () in
    let r = Prng.int prng 1000 in
    let sync_edge = spec.read_permille + spec.sync_read_permille in
    let cas_edge = sync_edge + spec.cas_permille in
    let del_edge = cas_edge + spec.del_permille in
    if r < spec.read_permille then ignore (Kv.read kv ~key)
    else if r < sync_edge then
      let t0 = now in
      Kv.sync_read kv ~key ~on_result:(fun _ ~token:_ ->
          Stats.add sync_latency (float_of_int (Netsim.now sim - t0) /. 1e3))
    else if r < cas_edge then begin
      if in_window then incr writes_offered;
      let value =
        pad (Printf.sprintf "c:%d:%d:" ss.id ss.counter) (draw_value_bytes ())
      in
      Hashtbl.replace in_flight.(ss.node) value now;
      incr in_flight_total;
      let expect, _ = Kv.read kv ~key in
      Kv.cas kv ~key ~expect ~value
    end
    else if r < del_edge then begin
      if in_window then incr writes_offered;
      Kv.del kv ~key
    end
    else begin
      if in_window then incr writes_offered;
      let value =
        pad (Printf.sprintf "w:%d:%d:" ss.id ss.counter) (draw_value_bytes ())
      in
      Hashtbl.replace in_flight.(ss.node) value now;
      incr in_flight_total;
      Kv.put kv ~key ~value
    end
  in
  (* The open-loop arrival process: fire, then reschedule by the
     arrival law — never by completions. Disconnected slots keep their
     clock running (arrivals are skipped, not deferred). *)
  let rec arrive ss () =
    let now = Netsim.now sim in
    if now < horizon then begin
      let rate =
        Scenario.rate_at_schedule ~default:spec.ops_per_sec spec.load now
      in
      if rate <= 0.0 then Netsim.call_at sim ~at:(now + ms 1) (arrive ss)
      else begin
        (if ss.handle <> None then do_op ss now
         else begin
           incr ops_skipped;
           Metrics.incr m_skipped
         end);
        let mean_ns = 1e9 /. (rate /. float_of_int total_sessions) in
        let interval =
          match spec.arrival with
          | Poisson -> Prng.exponential prng ~mean:mean_ns
          | Periodic -> mean_ns
        in
        Netsim.call_at sim
          ~at:(now + max 1_000 (int_of_float interval))
          (arrive ss)
      end
    end
  in
  (* Background churn: exponential lifetimes, fixed reconnect delay. *)
  let rec schedule_lifetime ss ch =
    if ch.mean_lifetime_ns > 0 then begin
      let gen = ss.gen in
      let dt =
        Prng.exponential prng ~mean:(float_of_int ch.mean_lifetime_ns)
      in
      Netsim.call_at sim
        ~at:(Netsim.now sim + max (ms 1) (int_of_float dt))
        (fun () ->
          if ss.gen = gen && ss.handle <> None && Netsim.now sim < horizon
          then begin
            disconnect_session ss;
            Netsim.call_at sim
              ~at:(Netsim.now sim + ch.reconnect_delay_ns)
              (fun () ->
                if ss.handle = None then begin
                  connect_session ss;
                  incr reconnects;
                  Metrics.incr m_reconnects;
                  schedule_lifetime ss ch
                end)
          end)
    end
  in
  (* Staggered connect + arrival start: the whole population is up by
     60% of the warmup. *)
  let connect_spread = max 5_000 (spec.warmup_ns * 3 / 5 / total_sessions) in
  Array.iter
    (fun ss ->
      Netsim.call_at sim
        ~at:(500_000 + (ss.id * connect_spread))
        (fun () ->
          connect_session ss;
          Option.iter (schedule_lifetime ss) spec.churn;
          arrive ss ()))
    sessions;
  (* ---------------- reconnect storm ---------------- *)
  let storm = Option.bind spec.churn (fun c -> c.storm) in
  let storm_set =
    match storm with
    | None -> [||]
    | Some st -> Array.sub sessions 0 (min st.storm_sessions total_sessions)
  in
  let storm_end_ns =
    match storm with
    | None -> 0
    | Some st -> st.storm_at_ns + st.storm_window_ns + ms 1
  in
  let recovered_at = ref (-1) in
  let pre_storm_peak = ref 0 in
  Option.iter
    (fun st ->
      Netsim.call_at sim ~at:st.storm_at_ns (fun () ->
          pre_storm_peak := !queue_peak;
          Array.iter
            (fun ss ->
              if ss.handle <> None then begin
                disconnect_session ss;
                let back =
                  st.storm_at_ns + ms 1 + Prng.int prng (max 1 st.storm_window_ns)
                in
                Netsim.call_at sim ~at:back (fun () ->
                    if ss.handle = None then begin
                      connect_session ss;
                      incr reconnects;
                      Metrics.incr m_reconnects
                    end)
              end)
            storm_set))
    storm;
  (* ---------------- slow receivers ---------------- *)
  let slow_sessions = ref [] in
  let slow_inbox_peak = ref 0 in
  Option.iter
    (fun sl ->
      for node = 0 to n - 1 do
        for i = 0 to sl.slow_per_node - 1 do
          Netsim.call_at sim ~at:(200_000 + (((node * sl.slow_per_node) + i) * 7_000))
            (fun () ->
              let h =
                Daemon.connect daemons.(node)
                  ~name:(Printf.sprintf "slow%d" i)
                  {
                    Daemon.on_message =
                      (fun ~sender:_ ~groups:_ _ _ ->
                        Metrics.incr m_slow_drained);
                    on_group_view = (fun ~group:_ ~members:_ -> ());
                  }
              in
              (* Subscribing to the KV group puts the full ordered write
                 stream through this session. *)
              Daemon.join daemons.(node) h Kv.group;
              Daemon.set_slow_receiver daemons.(node) h true;
              slow_sessions := (node, h) :: !slow_sessions;
              let batch =
                max 1 (int_of_float (sl.drain_per_sec *. 0.004))
              in
              let rec pump_tick () =
                let now = Netsim.now sim in
                if now < deadline then begin
                  ignore (Daemon.pump daemons.(node) h ~max:batch);
                  Netsim.call_at sim ~at:(now + ms 4) pump_tick
                end
              in
              Netsim.call_at sim ~at:(Netsim.now sim + ms 4) pump_tick)
        done
      done)
    spec.slow;
  (* ---------------- periodic sampler ---------------- *)
  let rec sample () =
    let now = Netsim.now sim in
    Metrics.set m_sessions (float_of_int !connected);
    Metrics.set m_queue (float_of_int !in_flight_total);
    if !in_flight_total > !queue_peak then queue_peak := !in_flight_total;
    Metrics.set m_queue_peak (float_of_int !queue_peak);
    let inbox_total =
      List.fold_left
        (fun acc (node, h) -> acc + Daemon.inbox_depth daemons.(node) h)
        0 !slow_sessions
    in
    if inbox_total > !slow_inbox_peak then slow_inbox_peak := inbox_total;
    Metrics.set m_slow_inbox (float_of_int inbox_total);
    (match storm with
    | Some _ when now > storm_end_ns && !recovered_at < 0 ->
        let all_back =
          Array.for_all (fun ss -> ss.handle <> None) storm_set
        in
        let threshold = max 32 (2 * !pre_storm_peak) in
        if all_back && !in_flight_total <= threshold then
          recovered_at := now
    | _ -> ());
    if now < deadline then Netsim.call_at sim ~at:(now + ms 2) sample
  in
  Netsim.call_at sim ~at:(ms 1) sample;
  (* ---------------- drive + drain ---------------- *)
  let pending () =
    Array.fold_left (fun acc kv -> acc + Kv.pending_sync_reads kv) 0 kvs
  in
  let t = ref 0 in
  let stop = ref false in
  Fun.protect ~finally:Span.detach (fun () ->
      while not !stop do
        t := min deadline (!t + ms 25);
        Netsim.run_until sim !t;
        if !t >= deadline then stop := true
        else if !t > horizon && kv_converged kvs && pending () = 0 then
          stop := true
      done);
  Oracle.check_convergence oracle (Array.to_list kvs);
  Netsim.record_metrics sim metrics;
  Array.iter (fun d -> Daemon.record_metrics d metrics) daemons;
  Array.iter (fun kv -> Kv.record_metrics kv metrics) kvs;
  (* ---------------- storm SLOs ---------------- *)
  let rate_over a b =
    if b <= a then 0.0
    else begin
      let lo = a / bin_ns and hi = min (b / bin_ns) (Array.length applied_bins - 1) in
      let count = ref 0 in
      for i = lo to hi do
        count := !count + applied_bins.(i)
      done;
      float_of_int !count /. (float_of_int (b - a) /. 1e9)
    end
  in
  let storm_steady_rate, storm_rate, storm_degradation, storm_recovered_ms,
      storm_all_reconnected =
    match storm with
    | None -> (0.0, 0.0, 0.0, 0.0, true)
    | Some st ->
        let steady = rate_over spec.warmup_ns st.storm_at_ns in
        let during = rate_over st.storm_at_ns storm_end_ns in
        let degradation =
          if steady <= 0.0 then 1.0
          else Float.max 0.0 (Float.min 1.0 (1.0 -. (during /. steady)))
        in
        let recovered_ms =
          if !recovered_at < 0 then -1.0
          else float_of_int (!recovered_at - storm_end_ns) /. 1e6
        in
        ( steady,
          during,
          degradation,
          recovered_ms,
          Array.for_all (fun ss -> ss.handle <> None) storm_set )
  in
  let slow_inbox_end =
    List.fold_left
      (fun acc (node, h) -> acc + Daemon.inbox_depth daemons.(node) h)
      0 !slow_sessions
  in
  let measure_s = float_of_int spec.measure_ns /. 1e9 in
  {
    spec;
    sessions_started = total_sessions;
    sessions_peak = !sessions_peak;
    reconnects = !reconnects;
    ops_offered = !ops_offered;
    ops_skipped = !ops_skipped;
    writes_offered = !writes_offered;
    writes_applied = !writes_applied;
    offered_write_rate = float_of_int !writes_offered /. measure_s;
    applied_write_rate = float_of_int !writes_applied /. measure_s;
    write_latency_us = write_latency;
    sync_read_latency_us = sync_latency;
    queue_depth_peak = !queue_peak;
    queue_depth_end = !in_flight_total;
    slow_inbox_peak = !slow_inbox_peak;
    slow_inbox_end;
    storm_steady_rate;
    storm_rate;
    storm_degradation;
    storm_recovered_ms;
    storm_all_reconnected;
    oracle;
    oracle_violations = Oracle.violation_count oracle;
    converged = kv_converged kvs;
    end_ns = Netsim.now sim;
    metrics;
  }

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>%s: %d nodes, %d sessions (peak %d), %.0f ops/s offered@,\
    \  offered: %d ops (%d writes, %.0f/s), skipped %d; applied@node0: %d \
     (%.0f/s)@,\
    \  write latency p50=%.0fus p99=%.0fus p99.9=%.0fus; sync reads: %d \
     (p99=%.0fus)@,\
    \  open-loop queue: peak %d, end %d; slow inbox: peak %d, end %d@,\
    \  churn: %d reconnects%s@,\
    \  oracle: %d violation(s), converged=%b"
    r.spec.label r.spec.n_nodes r.sessions_started r.sessions_peak
    r.spec.ops_per_sec r.ops_offered r.writes_offered r.offered_write_rate
    r.ops_skipped r.writes_applied r.applied_write_rate
    (Stats.percentile r.write_latency_us 50.0)
    (Stats.percentile r.write_latency_us 99.0)
    (Stats.p999 r.write_latency_us)
    (Stats.count r.sync_read_latency_us)
    (Stats.percentile r.sync_read_latency_us 99.0)
    r.queue_depth_peak r.queue_depth_end r.slow_inbox_peak r.slow_inbox_end
    r.reconnects
    (match Option.bind r.spec.churn (fun c -> c.storm) with
    | None -> ""
    | Some _ ->
        Printf.sprintf
          "; storm: steady %.0f/s -> %.0f/s (degradation %.0f%%), recovered \
           %.1fms, all back=%b"
          r.storm_steady_rate r.storm_rate
          (100.0 *. r.storm_degradation)
          r.storm_recovered_ms r.storm_all_reconnected)
    r.oracle_violations r.converged;
  (match Span.report_of_metrics r.metrics with
  | [] -> ()
  | stages ->
      Format.fprintf ppf "@,  latency by stage:";
      List.iter
        (fun (s : Span.stage_report) ->
          Format.fprintf ppf
            "@,    %-22s n=%-7d p50=%.1fus p99=%.1fus p99.9=%.1fus"
            s.Span.stage s.Span.count s.Span.p50_us s.Span.p99_us s.Span.p999_us)
        stages);
  Format.fprintf ppf "@]"
