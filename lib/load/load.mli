(** Production workload harness: open-loop client sessions at scale.

    Drives thousands of daemon client sessions against the replicated KV
    stack in simulation. The generator is {e open-loop}: each session
    has its own arrival process (Poisson or periodic) whose firing never
    waits for completions — a stalled cluster makes the in-flight queue
    grow, it does not throttle the offered load. That is the regime
    production systems die in, and the one closed-loop benches cannot
    reach.

    Dimensions beyond the existing benches and the fuzzer:

    - {b Sessions}: [sessions_per_node] real {!Aring_daemon.Daemon}
      sessions per daemon, spread over [n_groups] groups, so membership
      state, union routing and Join/Leave traffic are at production
      scale. KV ops ride the per-daemon replica; the session population
      drives who offers them.
    - {b Skew}: Zipf(θ) key popularity over [key_space] keys
      ({!Aring_util.Prng.zipf}), a weighted mix of op types and value
      sizes.
    - {b Churn}: exponential session lifetimes with reconnects, plus a
      {!storm} — a mass disconnect with reconnects spread over a short
      window, the classic reconnect storm.
    - {b Slow receivers}: extra sessions subscribed to the KV group
      that drain through {!Aring_daemon.Daemon.pump} at a bounded rate,
      exercising head-of-line isolation.
    - {b Network asymmetry}: per-node link-rate overrides and a WAN/geo
      latency-class matrix ({!Aring_sim.Netsim.set_latency_classes}).
    - {b Shapes}: diurnal/step/ramp/square offered-rate schedules via
      {!Aring_harness.Scenario} builders.

    Every run carries the KV consistency oracle; results surface the
    SLO inputs the [load] bench gates on: p99/p99.9 write latency,
    offered vs. applied rate, open-loop queue depth, storm degradation
    and post-storm recovery time. *)

open Aring_ring
open Aring_sim
module Stats = Aring_util.Stats
module Metrics = Aring_obs.Metrics

(** Per-session arrival process. [Poisson] draws exponential
    inter-arrival gaps (memoryless, bursty); [Periodic] fires at the
    exact mean interval (deterministic pacing). *)
type arrival = Poisson | Periodic

type storm = {
  storm_at_ns : int;  (** Mass disconnect instant. *)
  storm_sessions : int;  (** How many sessions drop (capped to the population). *)
  storm_window_ns : int;
      (** Reconnects are spread uniformly over this window after the
          disconnect. *)
}

type churn = {
  mean_lifetime_ns : int;
      (** Mean exponential session lifetime; 0 disables background
          churn. *)
  reconnect_delay_ns : int;  (** Downtime before a churned session returns. *)
  storm : storm option;
}

type slow_spec = {
  slow_per_node : int;  (** Slow-receiver sessions per daemon. *)
  drain_per_sec : float;  (** Their bounded drain rate, messages/s each. *)
}

type geo = {
  classes : int array;  (** Node → latency class (length [n_nodes]). *)
  latency_matrix : int array array;  (** Extra one-way ns, class × class. *)
}

type link = { l_node : int; l_up_bps : int option; l_down_bps : int option }

type spec = {
  label : string;
  n_nodes : int;
  net : Profile.net;
  tier : Profile.tier;
  params : Params.t;
  sessions_per_node : int;
  n_groups : int;  (** Sessions join group [i mod n_groups]. *)
  arrival : arrival;
  ops_per_sec : float;  (** Aggregate offered rate across all sessions. *)
  load : (int * float) list;
      (** Piecewise-constant rate schedule (ops/sec), reusing the
          {!Aring_harness.Scenario} step/ramp/square builders. *)
  key_space : int;
  zipf_theta : float;
  value_mix : (int * int) list;  (** [(bytes, weight)] value-size mix. *)
  read_permille : int;
  sync_read_permille : int;
  cas_permille : int;
  del_permille : int;
  mcas_permille : int;
      (** Of writes: cross-shard multi-key cas (multi-ring runs only). *)
  rings : int;
      (** Number of ordering rings. 1 = classic single-ring {!run};
          multi-ring specs execute via [Aring_multiring.Mload.run]. *)
  churn : churn option;
  slow : slow_spec option;
  geo : geo option;
  links : link list;
  partition : Aring_app.Kv_scenario.partition option;
  warmup_ns : int;
  measure_ns : int;
  drain_ns : int;
  seed : int64;
}

type result = {
  spec : spec;
  sessions_started : int;  (** Distinct session slots (excluding slow receivers). *)
  sessions_peak : int;  (** Peak concurrently connected sessions. *)
  reconnects : int;  (** Churn + storm reconnects completed. *)
  ops_offered : int;  (** Arrivals fired inside the measurement window. *)
  ops_skipped : int;  (** Arrivals at disconnected sessions (not offered). *)
  writes_offered : int;
  writes_applied : int;  (** Applied at node 0 inside the window. *)
  offered_write_rate : float;
  applied_write_rate : float;
  write_latency_us : Stats.t;  (** Submit→apply, tracked puts and cas. *)
  sync_read_latency_us : Stats.t;
  queue_depth_peak : int;  (** Peak open-loop in-flight writes. *)
  queue_depth_end : int;  (** In-flight residue after the drain. *)
  slow_inbox_peak : int;
  slow_inbox_end : int;
  storm_steady_rate : float;  (** Applied writes/s before the storm. *)
  storm_rate : float;  (** Applied writes/s during the storm window. *)
  storm_degradation : float;
      (** [1 - storm_rate/storm_steady_rate], clamped to [0, 1]; 0 when
          no storm ran. *)
  storm_recovered_ms : float;
      (** Storm-window end → all storm sessions reconnected and the
          in-flight queue back under twice its pre-storm peak. Negative
          when it never recovered (or no storm ran: 0). *)
  storm_all_reconnected : bool;  (** True (vacuously) when no storm ran. *)
  oracle : Aring_app.Oracle.t;
  oracle_violations : int;
  converged : bool;
  end_ns : int;
  metrics : Metrics.t;
      (** Carries the run's ["load.*"] series alongside netsim / daemon /
          app counters and the ["span.*"] stage histograms. *)
}

val default_spec : spec
(** 4 nodes, 500 sessions each (2000 total), 16 groups, Poisson
    arrivals at 12k ops/s aggregate, Zipf(0.99) over 512 keys, mixed
    value sizes, 70% writes; no churn, no slow receivers, symmetric
    network. 100 ms warmup, 300 ms measurement. *)

val run : spec -> result
(** Execute the workload on the discrete-event simulator. Deterministic
    for a given spec. *)

val pp_result : Format.formatter -> result -> unit
