open Aring_wire
open Aring_ring
module Heap = Aring_util.Heap
module Prng = Aring_util.Prng
module Trace = Aring_obs.Trace
module Metrics = Aring_obs.Metrics

type event =
  | Arrival of int * Message.t
  | Cpu_run of int
  | Timer of int * Participant.timer
  | Port_drain of int * int  (* node port, bytes to release *)
  | Call of (unit -> unit)

type stats = {
  mutable packets_sent : int;
  mutable switch_drops : int;
  mutable random_losses : int;
  mutable partition_drops : int;
}

type t = {
  net : Profile.net;
  tiers : Profile.tier array;
  parts : Participant.t array;
  events : (int * int * event) Heap.t;
  mutable event_seq : int;
  mutable now : int;
  prng : Prng.t;
  nic_free : int array;
  port_free : int array;
  port_bytes : int array;
  cpu_busy : int array;
  cpu_scheduled : bool array;
  alive : bool array;
  mutable drop : src:int -> dst:int -> Message.t -> bool;
  mutable deliver_cb : at:int -> now:int -> Message.data -> unit;
  mutable view_cb : at:int -> now:int -> Participant.view -> unit;
  mutable token_loss_cb : at:int -> now:int -> unit;
  stats : stats;
}

let now t = t.now
let stats t = t.stats
let participant t i = t.parts.(i)
let on_deliver t f = t.deliver_cb <- f
let on_view t f = t.view_cb <- f
let on_token_loss t f = t.token_loss_cb <- f
let set_drop t f = t.drop <- f
let is_alive t i = t.alive.(i)

let schedule t at ev =
  let at = max at t.now in
  t.event_seq <- t.event_seq + 1;
  Heap.push t.events (at, t.event_seq, ev)

(* Packet size on the wire: base format plus the sending tier's extra
   protocol headers on data messages. *)
let packet_size t src msg =
  Message.wire_size msg
  +
  match msg with
  | Message.Data _ -> t.tiers.(src).Profile.extra_data_header
  | Message.Token _ | Message.Join _ | Message.Commit _ -> 0

(* Kick the destination CPU if it is idle. *)
let wake_cpu t dst =
  if t.alive.(dst) && not t.cpu_scheduled.(dst) && t.parts.(dst).has_work ()
  then begin
    t.cpu_scheduled.(dst) <- true;
    schedule t (max t.now t.cpu_busy.(dst)) (Cpu_run dst)
  end

(* Transmit [msg] from [src] to [dsts], starting serialization at the NIC
   no earlier than [at]. One NIC serialization per send (IP-multicast); the
   switch replicates into each destination's output-port queue, dropping on
   overflow. *)
let transmit t ~at src msg dsts =
  let size = packet_size t src msg in
  t.stats.packets_sent <- t.stats.packets_sent + 1;
  let tx = Profile.tx_ns t.net size in
  let nic_start = max at t.nic_free.(src) in
  let at_switch = nic_start + tx in
  t.nic_free.(src) <- at_switch;
  let dropped dst reason =
    if Trace.enabled () then
      Trace.emit ~node:dst (Drop { reason; size })
  in
  List.iter
    (fun dst ->
      if not t.alive.(dst) then ()
      else if t.drop ~src ~dst msg then begin
        t.stats.partition_drops <- t.stats.partition_drops + 1;
        dropped dst "partition"
      end
      else if t.net.loss_prob > 0.0 && Prng.bernoulli t.prng t.net.loss_prob
      then begin
        t.stats.random_losses <- t.stats.random_losses + 1;
        dropped dst "random"
      end
      else if t.port_bytes.(dst) + size > t.net.switch_port_buffer then begin
        t.stats.switch_drops <- t.stats.switch_drops + 1;
        dropped dst "switch"
      end
      else begin
        t.port_bytes.(dst) <- t.port_bytes.(dst) + size;
        let port_start = max at_switch t.port_free.(dst) in
        let port_done = port_start + tx in
        t.port_free.(dst) <- port_done;
        schedule t port_done (Port_drain (dst, size));
        schedule t (port_done + t.net.latency_ns) (Arrival (dst, msg))
      end)
    dsts

let all_except t src =
  let dsts = ref [] in
  for i = Array.length t.parts - 1 downto 0 do
    if i <> src then dsts := i :: !dsts
  done;
  !dsts

(* Interpret a participant's actions, advancing a CPU cursor so that each
   send and each delivery occupies the CPU serially in action order. *)
let interpret t node actions ~cursor =
  let tier = t.tiers.(node) in
  List.fold_left
    (fun cursor action ->
      match action with
      | Participant.Unicast (dst, msg) ->
          let cursor = cursor + tier.Profile.send_op_ns in
          if dst = node then
            (* Loopback (e.g. handing oneself the initial token). *)
            schedule t (cursor + 1_000) (Arrival (dst, msg))
          else transmit t ~at:cursor node msg [ dst ];
          cursor
      | Participant.Multicast msg ->
          let cursor = cursor + tier.Profile.send_op_ns in
          transmit t ~at:cursor node msg (all_except t node);
          cursor
      | Participant.Deliver d ->
          let cursor = cursor + tier.Profile.deliver_ns in
          if Trace.enabled () then
            Trace.emit_at ~t_ns:cursor ~node
              (Deliver
                 {
                   ring = d.d_ring;
                   seq = d.seq;
                   sender = d.pid;
                   service = Types.service_to_string d.service;
                 });
          t.deliver_cb ~at:node ~now:cursor d;
          cursor
      | Participant.Deliver_config v ->
          let cursor = cursor + tier.Profile.deliver_ns in
          if Trace.enabled () then
            Trace.emit_at ~t_ns:cursor ~node
              (View_install
                 {
                   ring = v.view_id;
                   members = v.members;
                   transitional = v.transitional;
                 });
          t.view_cb ~at:node ~now:cursor v;
          cursor
      | Participant.Arm_timer (timer, delay) ->
          schedule t (cursor + delay) (Timer (node, timer));
          cursor
      | Participant.Token_loss_detected ->
          t.token_loss_cb ~at:node ~now:cursor;
          cursor)
    cursor actions

let proc_cost t node msg =
  let tier = t.tiers.(node) in
  match msg with
  | Message.Token _ | Message.Commit _ -> tier.Profile.token_proc_ns
  | Message.Data d ->
      let wire_bytes =
        Message.wire_size (Message.Data d) + tier.Profile.extra_data_header
      in
      Profile.data_proc_cost tier ~mtu:t.net.Profile.mtu ~wire_bytes
  | Message.Join _ -> tier.Profile.token_proc_ns

let handle_event t = function
  | Arrival (dst, msg) ->
      if t.alive.(dst) then begin
        ignore (t.parts.(dst).receive msg);
        wake_cpu t dst
      end
  | Cpu_run node ->
      t.cpu_scheduled.(node) <- false;
      if t.alive.(node) then begin
        match t.parts.(node).take_next () with
        | None -> ()
        | Some msg ->
            let cursor = t.now + proc_cost t node msg in
            let actions = t.parts.(node).process msg in
            let busy = interpret t node actions ~cursor in
            t.cpu_busy.(node) <- busy;
            wake_cpu t node
      end
  | Timer (node, timer) ->
      if t.alive.(node) then begin
        let actions = t.parts.(node).fire_timer timer in
        if actions <> [] then begin
          let cursor = max t.now t.cpu_busy.(node) + 500 in
          let busy = interpret t node actions ~cursor in
          t.cpu_busy.(node) <- busy
        end
      end
  | Port_drain (node, size) -> t.port_bytes.(node) <- t.port_bytes.(node) - size
  | Call f -> f ()

let create ~net ~tiers ~participants ?(seed = 1L) () =
  let n = Array.length participants in
  if Array.length tiers <> n then
    invalid_arg "Netsim.create: tiers and participants must align";
  let t =
    {
      net;
      tiers;
      parts = participants;
      events = Heap.create ~cmp:(fun (ta, sa, _) (tb, sb, _) ->
          match compare ta tb with 0 -> compare sa sb | c -> c);
      event_seq = 0;
      now = 0;
      prng = Prng.create ~seed;
      nic_free = Array.make n 0;
      port_free = Array.make n 0;
      port_bytes = Array.make n 0;
      cpu_busy = Array.make n 0;
      cpu_scheduled = Array.make n false;
      alive = Array.make n true;
      drop = (fun ~src:_ ~dst:_ _ -> false);
      deliver_cb = (fun ~at:_ ~now:_ _ -> ());
      view_cb = (fun ~at:_ ~now:_ _ -> ());
      token_loss_cb = (fun ~at:_ ~now:_ -> ());
      stats =
        {
          packets_sent = 0;
          switch_drops = 0;
          random_losses = 0;
          partition_drops = 0;
        };
    }
  in
  (* Trace timestamps follow the simulated clock while this simulator is
     the active runtime. *)
  Trace.set_clock (fun () -> t.now);
  Array.iteri
    (fun i p ->
      schedule t 0
        (Call (fun () -> ignore (interpret t i (p.Participant.start ()) ~cursor:t.now))))
    participants;
  t

let submit_now t ~node service payload =
  if t.alive.(node) then begin
    let tier = t.tiers.(node) in
    t.cpu_busy.(node) <- max t.now t.cpu_busy.(node) + tier.Profile.submit_ns;
    t.parts.(node).submit service payload;
    (* Some protocols (e.g. the sequencer baseline) emit work directly on
       submission rather than waiting for a token visit. *)
    wake_cpu t node
  end

let submit_at t ~at ~node service payload =
  schedule t at (Call (fun () -> submit_now t ~node service payload))

let call_at t ~at f = schedule t at (Call f)

let set_drop_until t ~until f =
  let prev = t.drop in
  t.drop <- (fun ~src ~dst msg -> f ~src ~dst msg || prev ~src ~dst msg);
  schedule t until (Call (fun () -> t.drop <- prev))

let crash t node =
  t.alive.(node) <- false;
  if Trace.enabled () then Trace.emit ~node Crash

let record_metrics t reg =
  let c name v = Metrics.add (Metrics.counter reg name) v in
  c "netsim.packets_sent" t.stats.packets_sent;
  c "netsim.switch_drops" t.stats.switch_drops;
  c "netsim.random_losses" t.stats.random_losses;
  c "netsim.partition_drops" t.stats.partition_drops

let run_until t horizon =
  let continue = ref true in
  while !continue do
    match Heap.peek t.events with
    | Some (at, _, _) when at <= horizon ->
        let at, _, ev = Heap.pop_exn t.events in
        t.now <- at;
        handle_event t ev
    | Some _ | None ->
        continue := false;
        t.now <- max t.now horizon
  done

let run_while_work t ~max_ns =
  let continue = ref true in
  while !continue do
    match Heap.peek t.events with
    | Some (at, _, _) when at <= max_ns ->
        let at, _, ev = Heap.pop_exn t.events in
        t.now <- at;
        handle_event t ev
    | Some _ | None -> continue := false
  done
