open Aring_wire
open Aring_ring
module Heap = Aring_util.Heap
module Prng = Aring_util.Prng
module Trace = Aring_obs.Trace
module Metrics = Aring_obs.Metrics

(* The event queue is allocation-free in steady state: events live in a
   preallocated arena of mutable records, the heap orders arena {e indices}
   (immediate ints), and freed slots are recycled through an index stack.
   Scheduling a packet arrival touches no closure, no tuple and no variant
   cell — it writes fields of a recycled record. Ordering is exactly the
   seed semantics: (timestamp clamped to now, monotonic insertion seq). *)

type Participant.timer += No_timer
(* Placeholder stored in freed slots so they retain no live timer. Never
   dispatched. *)

type ev_kind = Free | Arrival | Cpu_run | Timer | Port_drain | Call

type ev = {
  mutable at : int;
  mutable seq : int;
  mutable kind : ev_kind;
  mutable node : int;
  mutable size : int;  (* Port_drain: bytes to release *)
  mutable msg : Message.t;  (* Arrival payload *)
  mutable timer : Participant.timer;
  mutable fn : unit -> unit;  (* Call thunk *)
}

let dummy_msg =
  Message.Join { j_pid = -1; proc_set = []; fail_set = []; join_seq = 0 }

let fresh_ev () =
  {
    at = 0;
    seq = 0;
    kind = Free;
    node = -1;
    size = 0;
    msg = dummy_msg;
    timer = No_timer;
    fn = ignore;
  }

type stats = {
  mutable packets_sent : int;
  mutable switch_drops : int;
  mutable random_losses : int;
  mutable partition_drops : int;
}

type t = {
  net : Profile.net;
  tiers : Profile.tier array;
  parts : Participant.t array;
  events : int Heap.t;  (* arena indices, ordered by (at, seq) *)
  arena : ev array ref;
      (* Behind a ref so the heap's comparison closure follows growth. *)
  mutable free_stack : int array;
  mutable free_top : int;
  mutable event_seq : int;
  mutable now : int;
  prng : Prng.t;
  nic_free : int array;
  port_free : int array;
  port_bytes : int array;
  cpu_busy : int array;
  cpu_scheduled : bool array;
  alive : bool array;
  (* Per-node link rates, both defaulting to [net.bandwidth_bps]:
     [up_bps] paces the node's NIC egress serialization, [down_bps]
     paces the switch output port feeding the node. *)
  up_bps : int array;
  down_bps : int array;
  (* Additional one-way latency per (src, dst) pair, on top of
     [net.latency_ns] — the WAN/geo hook. Defaults to zero. *)
  mutable extra_latency : src:int -> dst:int -> int;
  (* Multicast domains: a node's multicasts fan out only to nodes in the
     same domain (multi-ring isolation). [None] = one flat domain — the
     filter is never consulted, so defaults stay byte-identical. *)
  mutable domains : int array option;
  mutable drop : src:int -> dst:int -> Message.t -> bool;
  mutable deliver_cb : at:int -> now:int -> Message.data -> unit;
  mutable view_cb : at:int -> now:int -> Participant.view -> unit;
  mutable token_loss_cb : at:int -> now:int -> unit;
  stats : stats;
}

let now t = t.now
let stats t = t.stats
let participant t i = t.parts.(i)
let on_deliver t f = t.deliver_cb <- f
let on_view t f = t.view_cb <- f
let on_token_loss t f = t.token_loss_cb <- f
let set_drop t f = t.drop <- f
let is_alive t i = t.alive.(i)

(* ------------------------------------------------------------------ *)
(* Event arena                                                          *)

let grow_arena t =
  let old = !(t.arena) in
  let old_n = Array.length old in
  let n = max 64 (2 * old_n) in
  let arena = Array.init n (fun i -> if i < old_n then old.(i) else fresh_ev ()) in
  t.arena := arena;
  let stack = Array.make n 0 in
  Array.blit t.free_stack 0 stack 0 t.free_top;
  t.free_stack <- stack;
  for i = old_n to n - 1 do
    t.free_stack.(t.free_top) <- i;
    t.free_top <- t.free_top + 1
  done

let alloc_ev t =
  if t.free_top = 0 then grow_arena t;
  t.free_top <- t.free_top - 1;
  t.free_stack.(t.free_top)

let enqueue t at i =
  let e = (!(t.arena)).(i) in
  e.at <- (if at < t.now then t.now else at);
  t.event_seq <- t.event_seq + 1;
  e.seq <- t.event_seq;
  Heap.push t.events i

let sched_arrival t at node msg =
  let i = alloc_ev t in
  let e = (!(t.arena)).(i) in
  e.kind <- Arrival;
  e.node <- node;
  e.msg <- msg;
  enqueue t at i

let sched_cpu t at node =
  let i = alloc_ev t in
  let e = (!(t.arena)).(i) in
  e.kind <- Cpu_run;
  e.node <- node;
  enqueue t at i

let sched_timer t at node timer =
  let i = alloc_ev t in
  let e = (!(t.arena)).(i) in
  e.kind <- Timer;
  e.node <- node;
  e.timer <- timer;
  enqueue t at i

let sched_drain t at node size =
  let i = alloc_ev t in
  let e = (!(t.arena)).(i) in
  e.kind <- Port_drain;
  e.node <- node;
  e.size <- size;
  enqueue t at i

let sched_call t at fn =
  let i = alloc_ev t in
  let e = (!(t.arena)).(i) in
  e.kind <- Call;
  e.fn <- fn;
  enqueue t at i

(* ------------------------------------------------------------------ *)

(* Packet size on the wire: base format plus the sending tier's extra
   protocol headers on data messages. *)
let packet_size t src msg =
  Message.wire_size msg
  +
  match msg with
  | Message.Data _ -> t.tiers.(src).Profile.extra_data_header
  | Message.Token _ | Message.Join _ | Message.Commit _ -> 0

(* Kick the destination CPU if it is idle. *)
let wake_cpu t dst =
  if t.alive.(dst) && not t.cpu_scheduled.(dst) && t.parts.(dst).has_work ()
  then begin
    t.cpu_scheduled.(dst) <- true;
    sched_cpu t (max t.now t.cpu_busy.(dst)) dst
  end

(* Serialization delay of [size] bytes at a per-link rate. Identical
   arithmetic to [Profile.tx_ns], so configurations that leave every link
   at [net.bandwidth_bps] schedule byte-identical event streams. *)
let link_tx_ns bps size = size * 8 * 1_000_000_000 / bps

(* Replicate an already-serialized packet into [dst]'s output-port queue,
   dropping on overflow. [at_switch] comes from the one NIC serialization
   shared by every destination (IP-multicast); the port drain is paced by
   the receiver's downlink rate. *)
let port_enqueue t ~at_switch ~size ~src ~dst msg =
  if not t.alive.(dst) then ()
  else if t.drop ~src ~dst msg then begin
    t.stats.partition_drops <- t.stats.partition_drops + 1;
    if Trace.enabled () then Trace.emit ~node:dst (Drop { reason = "partition"; size })
  end
  else if t.net.loss_prob > 0.0 && Prng.bernoulli t.prng t.net.loss_prob
  then begin
    t.stats.random_losses <- t.stats.random_losses + 1;
    if Trace.enabled () then Trace.emit ~node:dst (Drop { reason = "random"; size })
  end
  else if t.port_bytes.(dst) + size > t.net.switch_port_buffer then begin
    t.stats.switch_drops <- t.stats.switch_drops + 1;
    if Trace.enabled () then Trace.emit ~node:dst (Drop { reason = "switch"; size })
  end
  else begin
    t.port_bytes.(dst) <- t.port_bytes.(dst) + size;
    let tx = link_tx_ns t.down_bps.(dst) size in
    let port_start = max at_switch t.port_free.(dst) in
    let port_done = port_start + tx in
    t.port_free.(dst) <- port_done;
    sched_drain t port_done dst size;
    sched_arrival t
      (port_done + t.net.latency_ns + t.extra_latency ~src ~dst)
      dst msg
  end

(* Serialize [msg] out of [src]'s NIC no earlier than [at]; returns the
   instant the packet reaches the switch, having advanced the NIC clock. *)
let nic_serialize t ~at src size =
  t.stats.packets_sent <- t.stats.packets_sent + 1;
  let tx = link_tx_ns t.up_bps.(src) size in
  let nic_start = max at t.nic_free.(src) in
  let at_switch = nic_start + tx in
  t.nic_free.(src) <- at_switch;
  at_switch

let transmit_unicast t ~at src msg dst =
  let size = packet_size t src msg in
  let at_switch = nic_serialize t ~at src size in
  port_enqueue t ~at_switch ~size ~src ~dst msg

(* Fan out to every live participant but the source, in pid order — the
   same destination order the seed built as an explicit list. *)
let transmit_multicast t ~at src msg =
  let size = packet_size t src msg in
  let at_switch = nic_serialize t ~at src size in
  let n = Array.length t.parts in
  match t.domains with
  | None ->
      for dst = 0 to n - 1 do
        if dst <> src then port_enqueue t ~at_switch ~size ~src ~dst msg
      done
  | Some dom ->
      (* Cross-domain destinations are pruned before [port_enqueue]: no
         PRNG draw, no drop counter, no trace event — a domain switch
         never perturbs same-domain event streams. *)
      for dst = 0 to n - 1 do
        if dst <> src && dom.(dst) = dom.(src) then
          port_enqueue t ~at_switch ~size ~src ~dst msg
      done

(* Interpret a participant's actions, advancing a CPU cursor so that each
   send and each delivery occupies the CPU serially in action order.
   Explicit recursion: no fold closure per call. *)
let rec interpret t node actions ~cursor =
  match actions with
  | [] -> cursor
  | action :: rest ->
      let tier = t.tiers.(node) in
      let cursor =
        match action with
        | Participant.Unicast (dst, msg) ->
            let cursor = cursor + tier.Profile.send_op_ns in
            if dst = node then
              (* Loopback (e.g. handing oneself the initial token). *)
              sched_arrival t (cursor + 1_000) dst msg
            else transmit_unicast t ~at:cursor node msg dst;
            cursor
        | Participant.Multicast msg ->
            let cursor = cursor + tier.Profile.send_op_ns in
            transmit_multicast t ~at:cursor node msg;
            cursor
        | Participant.Deliver d ->
            let cursor = cursor + tier.Profile.deliver_ns in
            if Trace.enabled () then
              Trace.emit_at ~t_ns:cursor ~node
                (Deliver
                   {
                     ring = d.d_ring;
                     seq = d.seq;
                     sender = d.pid;
                     service = Types.service_to_string d.service;
                   });
            t.deliver_cb ~at:node ~now:cursor d;
            cursor
        | Participant.Deliver_config v ->
            let cursor = cursor + tier.Profile.deliver_ns in
            if Trace.enabled () then
              Trace.emit_at ~t_ns:cursor ~node
                (View_install
                   {
                     ring = v.view_id;
                     members = v.members;
                     transitional = v.transitional;
                   });
            t.view_cb ~at:node ~now:cursor v;
            cursor
        | Participant.Arm_timer (timer, delay) ->
            sched_timer t (cursor + delay) node timer;
            cursor
        | Participant.Token_loss_detected ->
            t.token_loss_cb ~at:node ~now:cursor;
            cursor
      in
      interpret t node rest ~cursor

let proc_cost t node msg =
  let tier = t.tiers.(node) in
  match msg with
  | Message.Token _ | Message.Commit _ -> tier.Profile.token_proc_ns
  | Message.Data d ->
      let wire_bytes =
        Message.wire_size (Message.Data d) + tier.Profile.extra_data_header
      in
      Profile.data_proc_cost tier ~mtu:t.net.Profile.mtu ~wire_bytes
  | Message.Join _ -> tier.Profile.token_proc_ns

let dispatch t kind node size msg timer fn =
  match kind with
  | Arrival ->
      if t.alive.(node) then begin
        ignore (t.parts.(node).receive msg);
        wake_cpu t node
      end
  | Cpu_run ->
      t.cpu_scheduled.(node) <- false;
      if t.alive.(node) then begin
        match t.parts.(node).take_next () with
        | None -> ()
        | Some msg ->
            let cursor = t.now + proc_cost t node msg in
            let actions = t.parts.(node).process msg in
            let busy = interpret t node actions ~cursor in
            t.cpu_busy.(node) <- busy;
            wake_cpu t node
      end
  | Timer ->
      if t.alive.(node) then begin
        let actions = t.parts.(node).fire_timer timer in
        if actions <> [] then begin
          let cursor = max t.now t.cpu_busy.(node) + 500 in
          let busy = interpret t node actions ~cursor in
          t.cpu_busy.(node) <- busy
        end
      end
  | Port_drain -> t.port_bytes.(node) <- t.port_bytes.(node) - size
  | Call -> fn ()
  | Free -> assert false

(* Pop the minimum event, copy its fields out, recycle the slot, then
   dispatch — handlers may schedule into (and reuse) the freed slot. *)
let step t =
  let i = Heap.pop_exn t.events in
  let e = (!(t.arena)).(i) in
  t.now <- e.at;
  let kind = e.kind and node = e.node and size = e.size in
  let msg = e.msg and timer = e.timer and fn = e.fn in
  e.kind <- Free;
  e.msg <- dummy_msg;
  e.timer <- No_timer;
  e.fn <- ignore;
  t.free_stack.(t.free_top) <- i;
  t.free_top <- t.free_top + 1;
  dispatch t kind node size msg timer fn

let initial_arena = 256

let create ~net ~tiers ~participants ?(seed = 1L) () =
  let n = Array.length participants in
  if Array.length tiers <> n then
    invalid_arg "Netsim.create: tiers and participants must align";
  let arena = ref (Array.init initial_arena (fun _ -> fresh_ev ())) in
  let events =
    Heap.create ~cmp:(fun i j ->
        let a = (!arena).(i) and b = (!arena).(j) in
        if a.at <> b.at then compare a.at b.at else compare a.seq b.seq)
  in
  Heap.reserve events initial_arena;
  let t =
    {
      net;
      tiers;
      parts = participants;
      events;
      arena;
      free_stack = Array.init initial_arena (fun i -> i);
      free_top = initial_arena;
      event_seq = 0;
      now = 0;
      prng = Prng.create ~seed;
      nic_free = Array.make n 0;
      port_free = Array.make n 0;
      port_bytes = Array.make n 0;
      cpu_busy = Array.make n 0;
      cpu_scheduled = Array.make n false;
      alive = Array.make n true;
      up_bps = Array.make n net.Profile.bandwidth_bps;
      down_bps = Array.make n net.Profile.bandwidth_bps;
      extra_latency = (fun ~src:_ ~dst:_ -> 0);
      domains = None;
      drop = (fun ~src:_ ~dst:_ _ -> false);
      deliver_cb = (fun ~at:_ ~now:_ _ -> ());
      view_cb = (fun ~at:_ ~now:_ _ -> ());
      token_loss_cb = (fun ~at:_ ~now:_ -> ());
      stats =
        {
          packets_sent = 0;
          switch_drops = 0;
          random_losses = 0;
          partition_drops = 0;
        };
    }
  in
  (* Trace timestamps follow the simulated clock while this simulator is
     the active runtime. *)
  Trace.set_clock (fun () -> t.now);
  Array.iteri
    (fun i p ->
      sched_call t 0 (fun () ->
          ignore (interpret t i (p.Participant.start ()) ~cursor:t.now)))
    participants;
  t

let submit_now t ~node service payload =
  if t.alive.(node) then begin
    let tier = t.tiers.(node) in
    t.cpu_busy.(node) <- max t.now t.cpu_busy.(node) + tier.Profile.submit_ns;
    t.parts.(node).submit service payload;
    (* Some protocols (e.g. the sequencer baseline) emit work directly on
       submission rather than waiting for a token visit. *)
    wake_cpu t node
  end

let submit_at t ~at ~node service payload =
  sched_call t at (fun () -> submit_now t ~node service payload)

let call_at t ~at f = sched_call t at f

let set_drop_until t ~until f =
  let prev = t.drop in
  t.drop <- (fun ~src ~dst msg -> f ~src ~dst msg || prev ~src ~dst msg);
  sched_call t until (fun () -> t.drop <- prev)

let set_link_rates t ~node ?up_bps ?down_bps () =
  if node < 0 || node >= Array.length t.parts then
    invalid_arg "Netsim.set_link_rates: node out of range";
  let set arr = function
    | None -> ()
    | Some bps ->
        if bps <= 0 then
          invalid_arg "Netsim.set_link_rates: rate must be positive";
        arr.(node) <- bps
  in
  set t.up_bps up_bps;
  set t.down_bps down_bps

let set_extra_latency t f = t.extra_latency <- f

let set_domains t dom =
  if Array.length dom <> Array.length t.parts then
    invalid_arg "Netsim.set_domains: domains must cover every node";
  t.domains <- Some (Array.copy dom)

let set_latency_classes t ~classes ~matrix =
  let n = Array.length t.parts in
  if Array.length classes <> n then
    invalid_arg "Netsim.set_latency_classes: classes must cover every node";
  let k = Array.length matrix in
  Array.iter
    (fun row ->
      if Array.length row <> k then
        invalid_arg "Netsim.set_latency_classes: matrix must be square")
    matrix;
  Array.iter
    (fun c ->
      if c < 0 || c >= k then
        invalid_arg "Netsim.set_latency_classes: class out of range")
    classes;
  (* Copy so later caller mutation cannot desynchronize a running sim. *)
  let classes = Array.copy classes in
  let matrix = Array.map Array.copy matrix in
  t.extra_latency <- (fun ~src ~dst -> matrix.(classes.(src)).(classes.(dst)))

let crash t node =
  t.alive.(node) <- false;
  if Trace.enabled () then Trace.emit ~node Crash

let record_metrics t reg =
  let c name v = Metrics.add (Metrics.counter reg name) v in
  c "netsim.packets_sent" t.stats.packets_sent;
  c "netsim.switch_drops" t.stats.switch_drops;
  c "netsim.random_losses" t.stats.random_losses;
  c "netsim.partition_drops" t.stats.partition_drops

let run_until t horizon =
  let continue = ref true in
  while !continue do
    if
      (not (Heap.is_empty t.events))
      && (!(t.arena)).(Heap.top_exn t.events).at <= horizon
    then step t
    else begin
      continue := false;
      t.now <- max t.now horizon
    end
  done

let run_while_work t ~max_ns =
  let continue = ref true in
  while !continue do
    if
      (not (Heap.is_empty t.events))
      && (!(t.arena)).(Heap.top_exn t.events).at <= max_ns
    then step t
    else continue := false
  done
