(** Deterministic discrete-event simulator of a switched LAN cluster.

    Models the components the paper's result depends on:

    - {b NIC egress}: each node's sends serialize onto its link at the
      configured rate (one transmission per multicast — IP-multicast
      replication happens in the switch).
    - {b Switch}: store-and-forward with one drop-tail output-port buffer
      per node; multicast fan-out enqueues the packet on every other port.
    - {b Node ingress}: the participant's bounded token/data queues model
      kernel socket buffers (see {!Aring_ring.Node}).
    - {b CPU}: a node processes one message at a time; the per-operation
      costs come from the node's {!Profile.tier}. Sends and deliveries
      performed while handling a message occupy the CPU serially, in the
      action order the engine emitted — which is exactly how the token
      leaves before post-token multicasts.
    - {b Faults}: random per-receiver loss, a programmable drop predicate
      (partitions), and node crashes.

    Everything is deterministic for a given seed: events are ordered by
    (time, insertion sequence). Time is in nanoseconds from 0. *)

open Aring_wire
open Aring_ring

type t

type stats = {
  mutable packets_sent : int;  (** NIC transmissions (multicast counts 1). *)
  mutable switch_drops : int;  (** Output-port buffer overflows. *)
  mutable random_losses : int;  (** Per-receiver random losses. *)
  mutable partition_drops : int;  (** Dropped by the partition predicate. *)
}

val create :
  net:Profile.net ->
  tiers:Profile.tier array ->
  participants:Participant.t array ->
  ?seed:int64 ->
  unit ->
  t
(** [create ~net ~tiers ~participants ()] builds a cluster in which
    participant [i] runs on a host with cost profile [tiers.(i)]. The
    participants' [start] actions are scheduled at time 0. *)

val now : t -> int
val stats : t -> stats
val participant : t -> int -> Participant.t

val record_metrics : t -> Aring_obs.Metrics.t -> unit
(** Export the network counters into a metrics registry under
    ["netsim.*"] names.

    [create] also points {!Aring_obs.Trace}'s clock at the simulated
    clock, so trace events carry virtual-time timestamps; deliveries,
    view installs, switch/loss/partition drops and crashes are emitted
    as trace events whenever a sink is installed. *)

(** {2 Instrumentation hooks} *)

val on_deliver : t -> (at:int -> now:int -> Message.data -> unit) -> unit
(** Called for every message delivered to the application at any node. *)

val on_view : t -> (at:int -> now:int -> Participant.view -> unit) -> unit
(** Called for every configuration (view) delivered at any node. *)

val on_token_loss : t -> (at:int -> now:int -> unit) -> unit
(** Called when a bare operational node reports token loss. *)

(** {2 Workload and fault injection} *)

val submit_at : t -> at:int -> node:int -> Types.service -> bytes -> unit
(** Schedule a client submission (charged the tier's submit cost). *)

val submit_now : t -> node:int -> Types.service -> bytes -> unit
(** Submit immediately at the current simulated time — for use inside
    {!call_at} callbacks (workload generators). *)

val call_at : t -> at:int -> (unit -> unit) -> unit
(** Schedule an arbitrary callback (workload generators reschedule
    themselves with this). The callback runs at the scheduled simulated
    time; it may inspect the simulator and schedule further events. *)

val set_drop : t -> (src:int -> dst:int -> Message.t -> bool) -> unit
(** Install a drop predicate evaluated per receiver at the switch —
    [fun ~src ~dst _ -> ...] returning [true] drops. Use it to create
    partitions; replace with [fun ~src:_ ~dst:_ _ -> false] to heal. *)

val set_drop_until : t -> until:int -> (src:int -> dst:int -> Message.t -> bool) -> unit
(** Timed fault window with automatic heal: layer a drop predicate over
    whatever is currently installed (a packet drops when either says so)
    and schedule its removal at simulated time [until], restoring the
    predicate that was in force when this call was made. Windows opened
    while another is active must close in LIFO order to restore cleanly;
    for arbitrary overlap, recompute with {!set_drop} instead. *)

(** {2 Link asymmetry and latency tiers}

    By default every link runs at [net.bandwidth_bps] with a uniform
    one-way [net.latency_ns] — and the default configuration schedules
    {e byte-identical} event streams to the pre-asymmetry simulator
    (same integer arithmetic, same event order), so pinned trace hashes
    hold. The hooks below carve per-node and per-pair structure out of
    that uniform fabric. *)

val set_link_rates : t -> node:int -> ?up_bps:int -> ?down_bps:int -> unit -> unit
(** Override one node's link rates: [up_bps] paces its NIC egress
    serialization, [down_bps] paces the switch output port feeding it
    (each defaults to unchanged). Takes effect for packets serialized
    after the call; rates must be positive. *)

val set_extra_latency : t -> (src:int -> dst:int -> int) -> unit
(** Install additional one-way latency (ns) added per (src, dst) pair on
    top of [net.latency_ns]. The function must be deterministic; it is
    evaluated once per enqueued packet. *)

val set_latency_classes : t -> classes:int array -> matrix:int array array -> unit
(** WAN/geo latency tiers: node [i] belongs to class [classes.(i)], and a
    packet from class [a] to class [b] pays [matrix.(a).(b)] extra ns —
    e.g. two sites with [[|0;0;1;1|]] and
    [[| [|0; wan|]; [|wan; 0|] |]]. Both arrays are copied. *)

val set_domains : t -> int array -> unit
(** Partition the nodes into multicast domains: a multicast from node [i]
    fans out only to nodes [j] with [dom.(j) = dom.(i)] (multi-ring
    isolation — each ring's participants form one domain). Cross-domain
    destinations are pruned before any loss/buffer accounting, so
    same-domain event streams are byte-identical to a run without the
    other domains. Unicast is unaffected. The array is copied; it must
    cover every node. By default all nodes share one domain. *)

val crash : t -> int -> unit
(** Node stops processing and receiving, permanently. *)

val is_alive : t -> int -> bool

(** {2 Execution} *)

val run_until : t -> int -> unit
(** Process all events with time ≤ the given horizon (ns). *)

val run_while_work : t -> max_ns:int -> unit
(** Run until the event queue empties or the horizon is reached. *)
