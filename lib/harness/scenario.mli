(** Benchmark scenarios: build a simulated cluster, offer an open-loop load,
    and measure delivered throughput and delivery latency.

    This reproduces the paper's methodology (Section IV-A): 8 servers, one
    sending client per server injecting at a fixed rate, every receiving
    client receiving all messages; at each offered throughput level we
    record the average latency to deliver a message. *)

open Aring_wire
open Aring_ring
open Aring_sim

type spec = {
  label : string;
  n_nodes : int;
  net : Profile.net;
  tier : Profile.tier;
  params : Params.t;
  payload : int;  (** Clean application payload bytes per message. *)
  service : Types.service;
  offered_mbps : float;  (** Aggregate offered load, clean payload only. *)
  load : (int * float) list;
      (** Piecewise-constant load schedule: [(t_ns, mbps)] switches the
          aggregate offered load to [mbps] from simulated time [t_ns] on.
          Before the first entry the rate is [offered_mbps]; entries must
          be ascending. Empty (the default) = constant [offered_mbps].
          Build with {!step_load}, {!ramp_load} or {!square_load}. *)
  warmup_ns : int;
  measure_ns : int;
  seed : int64;
  profile_rotation : bool;
      (** Attach an {!Aring_obs.Rotation} profiler (anchored at node 0)
          for the run. Off by default: profiling installs a trace sink,
          which turns every instrumentation hook live. *)
  controller : Aring_control.Controller.config option;
      (** When set, {!run} gives every node its own adaptive
          accelerated-window controller with this config, starting from
          [params.accelerated_window]. [None] (the default) keeps the
          static window. *)
}

type phase = {
  p_start_ns : int;
  p_end_ns : int;
  p_offered_mbps : float;  (** Rate in force at the phase start. *)
  p_delivered_mbps : float;
  p_latency_us : Aring_util.Stats.t;
  p_deliveries : int;
}
(** Per-load-segment slice of the measurement window (see [spec.load]). *)

type result = {
  spec : spec;
  delivered_mbps : float;
      (** Clean-payload throughput actually delivered, averaged over
          receiving nodes, inside the measurement window. *)
  latency_us : Aring_util.Stats.t;
      (** Submit-to-delivery latency samples (µs) across all receivers. *)
  deliveries : int;
  switch_drops : int;
  random_losses : int;
  retransmissions : int;
  token_rounds : int;  (** Rounds completed at node 0. *)
  phases : phase list;
      (** The measurement window cut at every load-schedule boundary,
          in time order; a single phase for a constant load. *)
  metrics : Aring_obs.Metrics.t;
      (** Registry holding the run's ["netsim.*"] counters, the
          ["engine.*"] counters summed over nodes (for {!run}), and the
          ["rotation.*"] instruments when [profile_rotation] was set. *)
  rotation : Aring_obs.Rotation.summary option;
      (** Per-round rotation profile; [Some] iff [spec.profile_rotation]. *)
}

val default_spec : spec
(** 8 nodes, 1-gigabit network, daemon tier, accelerated defaults, 1350-byte
    payloads, Agreed service, 200 Mbps offered, 100 ms warmup + 400 ms
    measurement. Override fields as needed. *)

(** {2 Load profiles}

    Builders for [spec.load]. Times are absolute simulated time, so place
    shifts inside the measurement window ([warmup_ns ..
    warmup_ns + measure_ns]) to see them in {!result.phases}. *)

val step_load :
  low:float -> high:float -> at_ns:int -> until_ns:int -> (int * float) list
(** [low] until [at_ns], [high] until [until_ns], then [low] again. *)

val ramp_load :
  from_mbps:float ->
  to_mbps:float ->
  start_ns:int ->
  stop_ns:int ->
  steps:int ->
  (int * float) list
(** Piecewise approximation of a linear ramp in [steps] equal segments. *)

val square_load :
  low:float -> high:float -> period_ns:int -> until_ns:int -> (int * float) list
(** Alternating [high]/[low] half-periods starting high at t=0. *)

val rate_at_schedule : default:float -> (int * float) list -> int -> float
(** Evaluate a piecewise-constant [(t_ns, rate)] schedule at a time:
    [default] before the first entry, then the latest entry at or before
    the time. The rate unit is the caller's (the load builders above work
    for any unit — {!Kv_scenario} reuses them with ops/sec). *)

val rate_at : spec -> int -> float
(** The offered load the schedule prescribes at a given simulated time. *)

val run : spec -> result
(** Execute the scenario on the discrete-event simulator. *)

val run_custom : spec -> participants:Participant.t array -> result
(** Run the same workload/measurement over arbitrary participants (e.g.
    the sequencer baseline); [spec.params] is ignored, and the
    ring-specific stats ([retransmissions], [token_rounds]) are zero. *)

val find_max_throughput :
  ?lo_mbps:float -> ?hi_mbps:float -> ?tolerance_mbps:float -> spec -> result
(** Binary-search the highest offered load the system still sustains
    (delivers ≥ 97% of) between [lo_mbps] and [hi_mbps]; returns the
    result at that load. *)

val pp_result : Format.formatter -> result -> unit
val pp_phase : Format.formatter -> phase -> unit
