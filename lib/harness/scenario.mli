(** Benchmark scenarios: build a simulated cluster, offer an open-loop load,
    and measure delivered throughput and delivery latency.

    This reproduces the paper's methodology (Section IV-A): 8 servers, one
    sending client per server injecting at a fixed rate, every receiving
    client receiving all messages; at each offered throughput level we
    record the average latency to deliver a message. *)

open Aring_wire
open Aring_ring
open Aring_sim

type spec = {
  label : string;
  n_nodes : int;
  net : Profile.net;
  tier : Profile.tier;
  params : Params.t;
  payload : int;  (** Clean application payload bytes per message. *)
  service : Types.service;
  offered_mbps : float;  (** Aggregate offered load, clean payload only. *)
  warmup_ns : int;
  measure_ns : int;
  seed : int64;
  profile_rotation : bool;
      (** Attach an {!Aring_obs.Rotation} profiler (anchored at node 0)
          for the run. Off by default: profiling installs a trace sink,
          which turns every instrumentation hook live. *)
}

type result = {
  spec : spec;
  delivered_mbps : float;
      (** Clean-payload throughput actually delivered, averaged over
          receiving nodes, inside the measurement window. *)
  latency_us : Aring_util.Stats.t;
      (** Submit-to-delivery latency samples (µs) across all receivers. *)
  deliveries : int;
  switch_drops : int;
  random_losses : int;
  retransmissions : int;
  token_rounds : int;  (** Rounds completed at node 0. *)
  metrics : Aring_obs.Metrics.t;
      (** Registry holding the run's ["netsim.*"] counters, the
          ["engine.*"] counters summed over nodes (for {!run}), and the
          ["rotation.*"] instruments when [profile_rotation] was set. *)
  rotation : Aring_obs.Rotation.summary option;
      (** Per-round rotation profile; [Some] iff [spec.profile_rotation]. *)
}

val default_spec : spec
(** 8 nodes, 1-gigabit network, daemon tier, accelerated defaults, 1350-byte
    payloads, Agreed service, 200 Mbps offered, 100 ms warmup + 400 ms
    measurement. Override fields as needed. *)

val run : spec -> result
(** Execute the scenario on the discrete-event simulator. *)

val run_custom : spec -> participants:Participant.t array -> result
(** Run the same workload/measurement over arbitrary participants (e.g.
    the sequencer baseline); [spec.params] is ignored, and the
    ring-specific stats ([retransmissions], [token_rounds]) are zero. *)

val find_max_throughput :
  ?lo_mbps:float -> ?hi_mbps:float -> ?tolerance_mbps:float -> spec -> result
(** Binary-search the highest offered load the system still sustains
    (delivers ≥ 97% of) between [lo_mbps] and [hi_mbps]; returns the
    result at that load. *)

val pp_result : Format.formatter -> result -> unit
