open Aring_wire
open Aring_ring
open Aring_sim
module Stats = Aring_util.Stats
module Trace = Aring_obs.Trace
module Metrics = Aring_obs.Metrics
module Rotation = Aring_obs.Rotation
module Controller = Aring_control.Controller

type spec = {
  label : string;
  n_nodes : int;
  net : Profile.net;
  tier : Profile.tier;
  params : Params.t;
  payload : int;
  service : Types.service;
  offered_mbps : float;
  load : (int * float) list;
  warmup_ns : int;
  measure_ns : int;
  seed : int64;
  profile_rotation : bool;
  controller : Controller.config option;
}

type phase = {
  p_start_ns : int;
  p_end_ns : int;
  p_offered_mbps : float;
  p_delivered_mbps : float;
  p_latency_us : Stats.t;
  p_deliveries : int;
}

type result = {
  spec : spec;
  delivered_mbps : float;
  latency_us : Stats.t;
  deliveries : int;
  switch_drops : int;
  random_losses : int;
  retransmissions : int;
  token_rounds : int;
  phases : phase list;
  metrics : Metrics.t;
  rotation : Rotation.summary option;
}

let default_spec =
  {
    label = "default";
    n_nodes = 8;
    net = Profile.gigabit;
    tier = Profile.daemon;
    params = Params.default;
    payload = 1350;
    service = Types.Agreed;
    offered_mbps = 200.0;
    load = [];
    warmup_ns = 100_000_000;
    measure_ns = 400_000_000;
    seed = 1L;
    profile_rotation = false;
    controller = None;
  }

let ring_id : Types.ring_id = { rep = 0; ring_seq = 1 }

(* ------------------------------------------------------------------ *)
(* Time-varying load profiles                                          *)

(* The load schedule is piecewise constant: [(t, mbps)] means "from
   simulated time t on, offer mbps (aggregate)". Before the first entry
   the rate is [offered_mbps]. Entries must be ascending in t. *)
let rate_at_schedule ~default load now =
  List.fold_left
    (fun rate (t, rate') -> if now >= t then rate' else rate)
    default load

let rate_at spec now =
  rate_at_schedule ~default:spec.offered_mbps spec.load now

let step_load ~low ~high ~at_ns ~until_ns =
  [ (0, low); (at_ns, high); (until_ns, low) ]

let ramp_load ~from_mbps ~to_mbps ~start_ns ~stop_ns ~steps =
  if steps < 1 then invalid_arg "Scenario.ramp_load: steps < 1";
  if stop_ns <= start_ns then invalid_arg "Scenario.ramp_load: empty ramp";
  (0, from_mbps)
  :: List.init steps (fun i ->
         let frac = float_of_int (i + 1) /. float_of_int steps in
         ( start_ns + ((stop_ns - start_ns) * i / steps),
           from_mbps +. ((to_mbps -. from_mbps) *. frac) ))

let square_load ~low ~high ~period_ns ~until_ns =
  if period_ns <= 0 then invalid_arg "Scenario.square_load: period <= 0";
  let rec segs t level acc =
    if t >= until_ns then List.rev acc
    else segs (t + (period_ns / 2)) (not level) ((t, if level then high else low) :: acc)
  in
  segs 0 true []

(* Each sending client injects at a fixed rate; the aggregate offered load
   is split evenly. Node phases are staggered and each inter-submission
   interval carries ±25% jitter (mean preserved): a perfectly periodic
   deterministic workload can phase-lock with the token rotation, a
   resonance no real cluster exhibits. *)
let start_workload sim spec ~until =
  if spec.payload < 8 then invalid_arg "Scenario: payload must hold a timestamp";
  (* Inter-submission interval for one sending node at the rate in force
     at [now]; None while the schedule offers no load. *)
  let interval_at now =
    let per_node_msgs_per_sec =
      rate_at spec now *. 1e6
      /. float_of_int (spec.payload * 8)
      /. float_of_int spec.n_nodes
    in
    if per_node_msgs_per_sec > 0.0 then
      Some (int_of_float (1e9 /. per_node_msgs_per_sec))
    else None
  in
  let prng = Aring_util.Prng.create ~seed:(Int64.add spec.seed 0x5EEDL) in
  for node = 0 to spec.n_nodes - 1 do
    let rec tick () =
      let now = Netsim.now sim in
      if now < until then
        match interval_at now with
        | None ->
            (* Idle segment: poll for the next segment start. *)
            Netsim.call_at sim ~at:(now + 1_000_000) tick
        | Some interval_ns ->
            let payload = Bytes.create spec.payload in
            Bytes.set_int64_be payload 0 (Int64.of_int now);
            Netsim.submit_now sim ~node spec.service payload;
            let jitter =
              interval_ns / 4 |> fun j ->
              if j = 0 then 0 else Aring_util.Prng.int prng (2 * j) - j
            in
            Netsim.call_at sim ~at:(now + interval_ns + jitter) tick
    in
    let start =
      match interval_at 0 with
      | Some interval_ns -> interval_ns * node / spec.n_nodes
      | None -> 0
    in
    Netsim.call_at sim ~at:start tick
  done

let measure spec ~participants ~ring_stats =
  let sim =
    Netsim.create ~net:spec.net
      ~tiers:(Array.make spec.n_nodes spec.tier)
      ~participants ~seed:spec.seed ()
  in
  let t_end = spec.warmup_ns + spec.measure_ns in
  let latency_us = Stats.create () in
  let bytes_delivered = Array.make spec.n_nodes 0 in
  let deliveries = ref 0 in
  (* Phase boundaries: the measurement window cut at every load-schedule
     segment start falling inside it. A constant load is one phase. *)
  let bounds =
    let inner =
      List.filter_map
        (fun (t, _) -> if t > spec.warmup_ns && t < t_end then Some t else None)
        spec.load
      |> List.sort_uniq compare
    in
    Array.of_list ((spec.warmup_ns :: inner) @ [ t_end ])
  in
  let n_phases = Array.length bounds - 1 in
  let phase_lat = Array.init n_phases (fun _ -> Stats.create ()) in
  let phase_bytes = Array.make n_phases 0 in
  let phase_count = Array.make n_phases 0 in
  let phase_index now =
    let rec find i =
      if i >= n_phases - 1 || now < bounds.(i + 1) then i else find (i + 1)
    in
    find 0
  in
  Netsim.on_deliver sim (fun ~at ~now (d : Message.data) ->
      if now >= spec.warmup_ns && now < t_end then begin
        incr deliveries;
        bytes_delivered.(at) <- bytes_delivered.(at) + Bytes.length d.payload;
        let submitted = Int64.to_int (Bytes.get_int64_be d.payload 0) in
        let lat_us = float_of_int (now - submitted) /. 1e3 in
        Stats.add latency_us lat_us;
        let p = phase_index now in
        Stats.add phase_lat.(p) lat_us;
        phase_bytes.(p) <- phase_bytes.(p) + Bytes.length d.payload;
        phase_count.(p) <- phase_count.(p) + 1
      end);
  start_workload sim spec ~until:t_end;
  (* Rotation profiling stacks its sink over whatever the caller installed
     (a JSONL sink, an invariant checker, nothing), restored afterwards.
     When the spec does not ask for it, tracing stays at its current
     (usually disabled, hence free) state. *)
  let prev_sink = Trace.current () in
  let profiler =
    if not spec.profile_rotation then None
    else begin
      let p = Rotation.create ~node:0 () in
      let sink = Rotation.as_sink p in
      Trace.install
        (match prev_sink with None -> sink | Some s -> Trace.tee [ s; sink ]);
      Some p
    end
  in
  Netsim.run_until sim t_end;
  (match profiler with
  | Some _ -> (
      match prev_sink with
      | None -> Trace.uninstall ()
      | Some s -> Trace.install s)
  | None -> ());
  let metrics = Metrics.create () in
  Netsim.record_metrics sim metrics;
  let rotation = Option.map Rotation.summary profiler in
  (match rotation with
  | Some s -> Rotation.record_metrics s metrics
  | None -> ());
  let measure_s = float_of_int spec.measure_ns /. 1e9 in
  let per_node_mbps =
    Array.map
      (fun b -> float_of_int (b * 8) /. measure_s /. 1e6)
      bytes_delivered
  in
  let delivered_mbps =
    Array.fold_left ( +. ) 0.0 per_node_mbps
    /. float_of_int spec.n_nodes
  in
  let retransmissions, token_rounds = ring_stats () in
  let sim_stats = Netsim.stats sim in
  let phases =
    List.init n_phases (fun p ->
        let start = bounds.(p) and stop = bounds.(p + 1) in
        let dur_s = float_of_int (stop - start) /. 1e9 in
        {
          p_start_ns = start;
          p_end_ns = stop;
          p_offered_mbps = rate_at spec start;
          p_delivered_mbps =
            float_of_int (phase_bytes.(p) * 8)
            /. dur_s /. 1e6
            /. float_of_int spec.n_nodes;
          p_latency_us = phase_lat.(p);
          p_deliveries = phase_count.(p);
        })
  in
  {
    spec;
    delivered_mbps;
    latency_us;
    deliveries = !deliveries;
    switch_drops = sim_stats.switch_drops;
    random_losses = sim_stats.random_losses;
    retransmissions;
    token_rounds;
    phases;
    metrics;
    rotation;
  }

let run spec =
  let ring = Array.init spec.n_nodes (fun i -> i) in
  let nodes =
    Array.init spec.n_nodes (fun me ->
        let controller =
          Option.map
            (fun config ->
              Controller.create ~config
                ~init:spec.params.Params.accelerated_window ())
            spec.controller
        in
        Node.create ~params:spec.params ~ring_id ~ring ~me ?controller ())
  in
  let ring_stats () =
    ( Array.fold_left
        (fun acc node -> acc + (Engine.stats (Node.engine node)).retrans_sent)
        0 nodes,
      (Engine.stats (Node.engine nodes.(0))).rounds )
  in
  let r = measure spec ~participants:(Array.map Node.participant nodes) ~ring_stats in
  Array.iter
    (fun node ->
      Engine.record_metrics (Node.engine node) r.metrics;
      match Node.controller node with
      | Some c -> Controller.record_metrics c r.metrics
      | None -> ())
    nodes;
  r

let run_custom spec ~participants =
  measure spec ~participants ~ring_stats:(fun () -> (0, 0))

(* A load level is "sustained" when nearly all of it is delivered inside
   the measurement window. *)
let sustained result =
  result.delivered_mbps >= 0.97 *. result.spec.offered_mbps

let find_max_throughput ?(lo_mbps = 50.0) ?(hi_mbps = 12_000.0)
    ?(tolerance_mbps = 25.0) spec =
  let run_at mbps = run { spec with offered_mbps = mbps } in
  let rec search lo hi best =
    if hi -. lo <= tolerance_mbps then best
    else begin
      let mid = (lo +. hi) /. 2.0 in
      let r = run_at mid in
      if sustained r then search mid hi r else search lo mid best
    end
  in
  let base = run_at lo_mbps in
  search lo_mbps hi_mbps base

let pp_result ppf r =
  Format.fprintf ppf
    "%-28s offered=%7.0f Mbps delivered=%7.1f Mbps lat(mean=%7.1f p50=%7.1f \
     p99=%8.1f us) n=%d rounds=%d retrans=%d drops=%d"
    r.spec.label r.spec.offered_mbps r.delivered_mbps
    (Stats.mean r.latency_us) (Stats.median r.latency_us)
    (Stats.percentile r.latency_us 99.0)
    r.deliveries r.token_rounds r.retransmissions r.switch_drops

let pp_phase ppf p =
  Format.fprintf ppf
    "[%3d..%3d ms] offered=%7.0f Mbps delivered=%7.1f Mbps lat(mean=%7.1f \
     p99=%8.1f us) n=%d"
    (p.p_start_ns / 1_000_000)
    (p.p_end_ns / 1_000_000)
    p.p_offered_mbps p.p_delivered_mbps (Stats.mean p.p_latency_us)
    (Stats.percentile p.p_latency_us 99.0)
    p.p_deliveries
