open Aring_wire
open Aring_ring
open Aring_sim
module Stats = Aring_util.Stats
module Trace = Aring_obs.Trace
module Metrics = Aring_obs.Metrics
module Rotation = Aring_obs.Rotation

type spec = {
  label : string;
  n_nodes : int;
  net : Profile.net;
  tier : Profile.tier;
  params : Params.t;
  payload : int;
  service : Types.service;
  offered_mbps : float;
  warmup_ns : int;
  measure_ns : int;
  seed : int64;
  profile_rotation : bool;
}

type result = {
  spec : spec;
  delivered_mbps : float;
  latency_us : Stats.t;
  deliveries : int;
  switch_drops : int;
  random_losses : int;
  retransmissions : int;
  token_rounds : int;
  metrics : Metrics.t;
  rotation : Rotation.summary option;
}

let default_spec =
  {
    label = "default";
    n_nodes = 8;
    net = Profile.gigabit;
    tier = Profile.daemon;
    params = Params.default;
    payload = 1350;
    service = Types.Agreed;
    offered_mbps = 200.0;
    warmup_ns = 100_000_000;
    measure_ns = 400_000_000;
    seed = 1L;
    profile_rotation = false;
  }

let ring_id : Types.ring_id = { rep = 0; ring_seq = 1 }

(* Each sending client injects at a fixed rate; the aggregate offered load
   is split evenly. Node phases are staggered and each inter-submission
   interval carries ±25% jitter (mean preserved): a perfectly periodic
   deterministic workload can phase-lock with the token rotation, a
   resonance no real cluster exhibits. *)
let start_workload sim spec ~until =
  if spec.payload < 8 then invalid_arg "Scenario: payload must hold a timestamp";
  let per_node_msgs_per_sec =
    spec.offered_mbps *. 1e6
    /. float_of_int (spec.payload * 8)
    /. float_of_int spec.n_nodes
  in
  if per_node_msgs_per_sec > 0.0 then begin
    let prng = Aring_util.Prng.create ~seed:(Int64.add spec.seed 0x5EEDL) in
    let interval_ns = int_of_float (1e9 /. per_node_msgs_per_sec) in
    for node = 0 to spec.n_nodes - 1 do
      let rec tick () =
        let now = Netsim.now sim in
        if now < until then begin
          let payload = Bytes.create spec.payload in
          Bytes.set_int64_be payload 0 (Int64.of_int now);
          Netsim.submit_now sim ~node spec.service payload;
          let jitter =
            interval_ns / 4 |> fun j ->
            if j = 0 then 0 else Aring_util.Prng.int prng (2 * j) - j
          in
          Netsim.call_at sim ~at:(now + interval_ns + jitter) tick
        end
      in
      let phase = interval_ns * node / spec.n_nodes in
      Netsim.call_at sim ~at:phase tick
    done
  end

let measure spec ~participants ~ring_stats =
  let sim =
    Netsim.create ~net:spec.net
      ~tiers:(Array.make spec.n_nodes spec.tier)
      ~participants ~seed:spec.seed ()
  in
  let t_end = spec.warmup_ns + spec.measure_ns in
  let latency_us = Stats.create () in
  let bytes_delivered = Array.make spec.n_nodes 0 in
  let deliveries = ref 0 in
  Netsim.on_deliver sim (fun ~at ~now (d : Message.data) ->
      if now >= spec.warmup_ns && now < t_end then begin
        incr deliveries;
        bytes_delivered.(at) <- bytes_delivered.(at) + Bytes.length d.payload;
        let submitted = Int64.to_int (Bytes.get_int64_be d.payload 0) in
        Stats.add latency_us (float_of_int (now - submitted) /. 1e3)
      end);
  start_workload sim spec ~until:t_end;
  (* Rotation profiling stacks its sink over whatever the caller installed
     (a JSONL sink, an invariant checker, nothing), restored afterwards.
     When the spec does not ask for it, tracing stays at its current
     (usually disabled, hence free) state. *)
  let prev_sink = Trace.current () in
  let profiler =
    if not spec.profile_rotation then None
    else begin
      let p = Rotation.create ~node:0 () in
      let sink = Rotation.as_sink p in
      Trace.install
        (match prev_sink with None -> sink | Some s -> Trace.tee [ s; sink ]);
      Some p
    end
  in
  Netsim.run_until sim t_end;
  (match profiler with
  | Some _ -> (
      match prev_sink with
      | None -> Trace.uninstall ()
      | Some s -> Trace.install s)
  | None -> ());
  let metrics = Metrics.create () in
  Netsim.record_metrics sim metrics;
  let rotation = Option.map Rotation.summary profiler in
  (match rotation with
  | Some s -> Rotation.record_metrics s metrics
  | None -> ());
  let measure_s = float_of_int spec.measure_ns /. 1e9 in
  let per_node_mbps =
    Array.map
      (fun b -> float_of_int (b * 8) /. measure_s /. 1e6)
      bytes_delivered
  in
  let delivered_mbps =
    Array.fold_left ( +. ) 0.0 per_node_mbps
    /. float_of_int spec.n_nodes
  in
  let retransmissions, token_rounds = ring_stats () in
  let sim_stats = Netsim.stats sim in
  {
    spec;
    delivered_mbps;
    latency_us;
    deliveries = !deliveries;
    switch_drops = sim_stats.switch_drops;
    random_losses = sim_stats.random_losses;
    retransmissions;
    token_rounds;
    metrics;
    rotation;
  }

let run spec =
  let ring = Array.init spec.n_nodes (fun i -> i) in
  let nodes =
    Array.init spec.n_nodes (fun me ->
        Node.create ~params:spec.params ~ring_id ~ring ~me ())
  in
  let ring_stats () =
    ( Array.fold_left
        (fun acc node -> acc + (Engine.stats (Node.engine node)).retrans_sent)
        0 nodes,
      (Engine.stats (Node.engine nodes.(0))).rounds )
  in
  let r = measure spec ~participants:(Array.map Node.participant nodes) ~ring_stats in
  Array.iter (fun node -> Engine.record_metrics (Node.engine node) r.metrics) nodes;
  r

let run_custom spec ~participants =
  measure spec ~participants ~ring_stats:(fun () -> (0, 0))

(* A load level is "sustained" when nearly all of it is delivered inside
   the measurement window. *)
let sustained result =
  result.delivered_mbps >= 0.97 *. result.spec.offered_mbps

let find_max_throughput ?(lo_mbps = 50.0) ?(hi_mbps = 12_000.0)
    ?(tolerance_mbps = 25.0) spec =
  let run_at mbps = run { spec with offered_mbps = mbps } in
  let rec search lo hi best =
    if hi -. lo <= tolerance_mbps then best
    else begin
      let mid = (lo +. hi) /. 2.0 in
      let r = run_at mid in
      if sustained r then search mid hi r else search lo mid best
    end
  in
  let base = run_at lo_mbps in
  search lo_mbps hi_mbps base

let pp_result ppf r =
  Format.fprintf ppf
    "%-28s offered=%7.0f Mbps delivered=%7.1f Mbps lat(mean=%7.1f p50=%7.1f \
     p99=%8.1f us) n=%d rounds=%d retrans=%d drops=%d"
    r.spec.label r.spec.offered_mbps r.delivered_mbps
    (Stats.mean r.latency_us) (Stats.median r.latency_us)
    (Stats.percentile r.latency_us 99.0)
    r.deliveries r.token_rounds r.retransmissions r.switch_drops
