(** A Spread-like group-communication daemon on top of the Accelerated Ring.

    The daemon provides the client-facing features the paper credits for
    Spread's success (Section I): a client-daemon architecture, named
    groups with open-group semantics (a sender need not be a member),
    multi-group multicast with ordering guarantees across groups, and group
    membership notifications consistent at all clients.

    Clients are in-process sessions; the cost of the client/daemon IPC hop
    is modelled by the simulator's tier profiles. Every state-changing
    client operation is encoded as an {!Envelope} and multicast through the
    ring, so all daemons apply it at the same point of the total order.

    After a configuration change, each daemon prunes group members hosted
    by departed daemons, notifies affected local clients, and re-announces
    its own clients' memberships in the new configuration — a state
    transfer that reconverges group views after partitions and merges. *)

open Aring_wire
open Aring_ring

type t
type session

type callbacks = {
  on_message :
    sender:string -> groups:string list -> Types.service -> bytes -> unit;
      (** Invoked once per delivered application message addressed to a
          group this session belongs to (multi-group sends arrive once). *)
  on_group_view : group:string -> members:string list -> unit;
      (** Invoked when the membership of a joined group changes. *)
}

type stats = {
  mutable client_deliveries : int;
  mutable group_notifications : int;
  mutable packs_sent : int;  (** Batch envelopes multicast. *)
  mutable envelopes_packed : int;  (** Envelopes carried inside batches. *)
}

val create : ?packing:bool -> ?pack_threshold:int -> member:Member.t -> unit -> t
(** Build a daemon on a ring participant; drive the returned
    {!participant} with a runtime (simulator or UDP loop).

    With [~packing:true] (default false), small client envelopes are
    packed into a single protocol packet of at most [pack_threshold]
    bytes (default 1300) — Spread's packing feature for amortizing
    per-packet costs over small messages. Submissions accumulated between
    runtime events are flushed together at the next event; packing trades
    a little latency for large small-message throughput gains. *)

val flush : t -> unit
(** Force out any buffered packed submissions now. *)

val participant : t -> Participant.t

val pid : t -> Types.pid
(** The hosting ring member's pid. *)

val set_view_handler : t -> (Participant.view -> unit) -> unit
(** Install an application-layer hook invoked for every delivered
    configuration (transitional and regular). For regular views it runs
    after the daemon has pruned departed members and re-announced its own
    sessions' joins, so envelopes the hook submits are sequenced after
    those Joins — the ordering the app-level state-transfer protocol
    relies on (see {!Aring_app.Kv}). One handler; a second call
    replaces the first. *)

val connect : t -> name:string -> callbacks -> session
(** [connect t ~name cb] opens a local client session. [name] must be
    unique on this daemon. *)

val disconnect : t -> session -> unit
(** Leaves all joined groups (ordered through the ring, after any
    in-flight multicasts of this session — survivors see the leave
    notifications at a consistent point of the total order). Calling it
    again on the same session is an idempotent no-op. *)

val session_member_name : t -> session -> string
(** The canonical ["#name#daemon"] identity of the session. *)

(** {2 Slow receivers}

    A production daemon cannot let one stalled client stall the ordered
    delivery stream for everyone (head-of-line isolation). Marking a
    session a slow receiver decouples its drain rate from the daemon:
    delivered messages park in a per-session inbox in delivery order,
    and the client pulls them with {!pump} at whatever pace it manages.
    The daemon's routing work — and the per-delivery CPU charge the
    runtime accounts — is unchanged, so healthy sessions on the same
    daemon observe identical delivery timing. *)

val set_slow_receiver : t -> session -> bool -> unit
(** [set_slow_receiver t s true] installs the inbox (idempotent);
    [false] delivers anything still parked via [on_message], in order,
    and reverts to direct delivery. *)

val pump : t -> session -> max:int -> int
(** [pump t s ~max] delivers up to [max] parked messages through the
    session's [on_message], front (oldest) first; returns how many were
    delivered. 0 for sessions not in slow-receiver mode. *)

val inbox_depth : t -> session -> int
(** Messages currently parked; 0 for direct-delivery sessions. *)

val join : t -> session -> string -> unit
(** Ordered group join; takes effect when its envelope is delivered. *)

val leave : t -> session -> string -> unit
(** Ordered group leave. Leaving a group the session is not a member of
    is an idempotent no-op (nothing rides the ring). *)

val multicast :
  t -> session -> ?service:Types.service -> groups:string list -> bytes -> unit
(** Multi-group multicast: delivered exactly once to every member of the
    union of [groups], at the same point of the total order everywhere.
    Open-group semantics: the sender need not be a member.

    Local delivery uses {e union routing}: an envelope reaches a local
    session when the group is in the session's own joined set ({e from
    the local [join] call onward} — a rejoining session never misses a
    message ordered between a view change and its re-announced Join) or
    when the session's member name is in the delivered group table
    ({e until its ordered Leave lands}). Within one regular
    configuration, every daemon therefore hands the same per-group
    envelope stream to each member session — the property the
    replicated-KV layer's "equal op streams per view" argument rests on
    (see {!Aring_app.Kv}). *)

val group_members : t -> string -> string list
(** This daemon's current view of a group. *)

val stats : t -> stats

val record_metrics : ?prefix:string -> t -> Aring_obs.Metrics.t -> unit
(** Export the daemon counters (and the underlying engine's, when
    operational) into a metrics registry under ["daemon.*"] /
    ["engine.*"] names, optionally prefixed (e.g. ["ring1."] for
    per-ring registries). *)
