(** Group-membership bookkeeping.

    Pure state: maps group names to sorted member names. All mutations are
    applied in the ring's total order (see {!Daemon}), so every daemon's
    instance evolves identically. Member names follow
    {!Envelope.member_name} and embed the hosting daemon's pid, which lets
    a configuration change prune the members of departed daemons. *)

type t

val create : unit -> t

val join : t -> group:string -> member:string -> string list option
(** [join t ~group ~member] adds the member; [Some members'] when the group
    view changed, [None] if it was already present. Member names that do
    not parse with {!daemon_of_member} are rejected ([None]): the table
    invariant is that every stored member embeds its hosting daemon, so
    {!prune} can always decide survival explicitly. *)

val leave : t -> group:string -> member:string -> string list option
(** [Some members'] when the view changed ([] deletes the group). *)

val members : t -> string -> string list
(** Current members of a group (empty when unknown). *)

val group_names : t -> string list

val daemon_of_member : string -> int option
(** Parse the daemon pid out of a ["#session#pid"] member name. *)

val valid_member_name : string -> bool
(** True when {!daemon_of_member} parses — the names {!join} accepts. *)

val prune : t -> keep:(int -> bool) -> (string * string list) list
(** [prune t ~keep] removes every member whose daemon fails [keep];
    returns the changed groups and their new member lists. Because
    {!join} rejects unparsable names, every stored member has a daemon
    to test (unparsable names would be dropped defensively). *)
