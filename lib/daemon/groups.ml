type t = (string, string list) Hashtbl.t

let create () = Hashtbl.create 16

let members t group = Option.value ~default:[] (Hashtbl.find_opt t group)

let group_names t = Hashtbl.fold (fun g _ acc -> g :: acc) t []

let set t group = function
  | [] -> Hashtbl.remove t group
  | ms -> Hashtbl.replace t group ms

let daemon_of_member name =
  match String.rindex_opt name '#' with
  | None -> None
  | Some i -> int_of_string_opt (String.sub name (i + 1) (String.length name - i - 1))

let valid_member_name name = Option.is_some (daemon_of_member name)

(* Malformed names are rejected at the door rather than silently vanishing
   in [prune]: the table invariant is that every stored member name parses
   with [daemon_of_member], so a configuration change can always decide
   whether the member's hosting daemon survived. *)
let join t ~group ~member =
  if not (valid_member_name member) then None
  else
    let current = members t group in
    if List.mem member current then None
    else begin
      let updated = List.sort compare (member :: current) in
      set t group updated;
      Some updated
    end

let leave t ~group ~member =
  let current = members t group in
  if not (List.mem member current) then None
  else begin
    let updated = List.filter (fun m -> m <> member) current in
    set t group updated;
    Some updated
  end

let prune t ~keep =
  let changed = ref [] in
  let names = group_names t in
  List.iter
    (fun group ->
      let current = members t group in
      let kept =
        List.filter
          (fun m ->
            (* [join] rejects unparsable names, so the [None] branch is
               unreachable on a well-formed table; kept as defense in
               depth (an unparsable member could never be pruned by
               daemon death, so dropping it here is the safe choice). *)
            match daemon_of_member m with Some d -> keep d | None -> false)
          current
      in
      if List.length kept <> List.length current then begin
        set t group kept;
        changed := (group, kept) :: !changed
      end)
    names;
  !changed
