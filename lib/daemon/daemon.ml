open Aring_wire
open Aring_ring
module Span = Aring_obs.Span
module Deque = Aring_util.Deque

type callbacks = {
  on_message :
    sender:string -> groups:string list -> Types.service -> bytes -> unit;
  on_group_view : group:string -> members:string list -> unit;
}

type session = {
  s_name : string;
  s_member : string;  (* canonical "#name#daemon" identity *)
  s_callbacks : callbacks;
  mutable s_joined : string list;  (* local record, for re-announcement *)
  mutable s_open : bool;
  (* Slow-receiver mode: [Some q] parks delivered messages in [q]
     instead of invoking [on_message]; the client drains with {!pump} at
     its own pace, off the daemon's delivery path. *)
  mutable s_inbox : (string * string list * Types.service * bytes) Deque.t option;
}

type stats = {
  mutable client_deliveries : int;
  mutable group_notifications : int;
  mutable packs_sent : int;
  mutable envelopes_packed : int;
}

type t = {
  member : Member.t;
  me : Types.pid;
  groups : Groups.t;
  sessions : (string, session) Hashtbl.t;
  stats : stats;
  packing : bool;
  pack_threshold : int;
  (* Packing buffer: envelopes awaiting the next flush, oldest first, all
     of [pack_service]. A service change flushes to preserve order. *)
  mutable pack_buffer : Envelope.t list;
  mutable pack_bytes : int;
  mutable pack_service : Types.service;
  (* Span stamps parallel to [pack_buffer] (newest first); 0 when no
     span collector was attached at buffering time. *)
  mutable pack_stamps : int list;
  (* Application-layer hook: every delivered configuration (transitional
     and regular), invoked after the daemon's own pruning and
     re-announcement so anything the hook submits is ordered after the
     daemon's re-announced Joins. *)
  mutable on_view : (Participant.view -> unit) option;
}

let create ?(packing = false) ?(pack_threshold = 1300) ~member () =
  {
    member;
    me = Member.me member;
    groups = Groups.create ();
    sessions = Hashtbl.create 8;
    stats =
      {
        client_deliveries = 0;
        group_notifications = 0;
        packs_sent = 0;
        envelopes_packed = 0;
      };
    packing;
    pack_threshold;
    pack_buffer = [];
    pack_bytes = 0;
    pack_service = Types.Agreed;
    pack_stamps = [];
    on_view = None;
  }

let stats t = t.stats
let pid t = t.me
let set_view_handler t f = t.on_view <- Some f

let record_metrics ?(prefix = "") t reg =
  let module Metrics = Aring_obs.Metrics in
  let c name v = Metrics.add (Metrics.counter reg (prefix ^ name)) v in
  c "daemon.client_deliveries" t.stats.client_deliveries;
  c "daemon.group_notifications" t.stats.group_notifications;
  c "daemon.packs_sent" t.stats.packs_sent;
  c "daemon.envelopes_packed" t.stats.envelopes_packed;
  match Member.node t.member with
  | Some node -> Engine.record_metrics ~prefix (Node.engine node) reg
  | None -> ()

let group_members t group = Groups.members t.groups group
let session_member_name _t s = s.s_member

let connect t ~name callbacks =
  if Hashtbl.mem t.sessions name then
    invalid_arg (Printf.sprintf "Daemon.connect: session %S already exists" name);
  let s =
    {
      s_name = name;
      s_member = Envelope.member_name ~daemon:t.me ~session:name;
      s_callbacks = callbacks;
      s_joined = [];
      s_open = true;
      s_inbox = None;
    }
  in
  Hashtbl.replace t.sessions name s;
  s

let set_slow_receiver _t s slow =
  if slow then begin
    match s.s_inbox with
    | Some _ -> ()
    | None -> s.s_inbox <- Some (Deque.create ())
  end
  else begin
    (* Reverting to direct delivery hands over anything still parked,
       in arrival order, so no message is lost or reordered. *)
    (match s.s_inbox with
    | Some q ->
        Deque.iter
          (fun (sender, groups, service, payload) ->
            s.s_callbacks.on_message ~sender ~groups service payload)
          q
    | None -> ());
    s.s_inbox <- None
  end

let inbox_depth _t s =
  match s.s_inbox with None -> 0 | Some q -> Deque.length q

let pump _t s ~max =
  match s.s_inbox with
  | None -> 0
  | Some q ->
      let n = ref 0 in
      let continue = ref true in
      while !continue && !n < max do
        match Deque.pop_front q with
        | None -> continue := false
        | Some (sender, groups, service, payload) ->
            incr n;
            s.s_callbacks.on_message ~sender ~groups service payload
      done;
      !n

let submit_plain t service env =
  Member.submit t.member service (Envelope.encode env)

(* Flush the packing buffer as one Batch (or a plain envelope when it
   holds a single entry). *)
let note_packed t =
  List.iter
    (fun submit_ns -> if submit_ns > 0 then Span.note_packed ~submit_ns)
    t.pack_stamps;
  t.pack_stamps <- []

let flush t =
  match t.pack_buffer with
  | [] -> ()
  | [ env ] ->
      note_packed t;
      submit_plain t t.pack_service env;
      t.pack_buffer <- [];
      t.pack_bytes <- 0
  | entries ->
      t.stats.packs_sent <- t.stats.packs_sent + 1;
      t.stats.envelopes_packed <- t.stats.envelopes_packed + List.length entries;
      note_packed t;
      submit_plain t t.pack_service (Envelope.Batch (List.rev entries));
      t.pack_buffer <- [];
      t.pack_bytes <- 0

let submit_envelope t service env =
  if not t.packing then submit_plain t service env
  else begin
    let size = Envelope.encoded_size env in
    if
      (t.pack_buffer <> [] && not (Types.service_equal service t.pack_service))
      || t.pack_bytes + size > t.pack_threshold
    then flush t;
    if size >= t.pack_threshold then submit_plain t service env
    else begin
      t.pack_service <- service;
      t.pack_buffer <- env :: t.pack_buffer;
      t.pack_stamps <- Span.submit_stamp () :: t.pack_stamps;
      t.pack_bytes <- t.pack_bytes + size
    end
  end

let join t s group =
  if s.s_open then begin
    if not (List.mem group s.s_joined) then s.s_joined <- group :: s.s_joined;
    submit_envelope t Types.Agreed (Envelope.Join { member = s.s_member; group })
  end

(* Leaving a group the session never joined is an idempotent no-op: no
   Leave envelope rides the ring, so remote daemons never process a
   spurious membership change. *)
let leave t s group =
  if s.s_open && List.mem group s.s_joined then begin
    s.s_joined <- List.filter (fun g -> g <> group) s.s_joined;
    submit_envelope t Types.Agreed (Envelope.Leave { member = s.s_member; group })
  end

let disconnect t s =
  if s.s_open then begin
    List.iter
      (fun group ->
        submit_envelope t Types.Agreed
          (Envelope.Leave { member = s.s_member; group }))
      s.s_joined;
    s.s_joined <- [];
    s.s_open <- false;
    (* Undrained slow-receiver messages die with the connection. *)
    (match s.s_inbox with Some q -> Deque.clear q | None -> ());
    Hashtbl.remove t.sessions s.s_name
  end

let multicast t s ?(service = Types.Agreed) ~groups payload =
  if s.s_open then
    submit_envelope t service
      (Envelope.App { sender = s.s_member; groups; payload })

(* Local sessions that belong to [group]. *)
let local_members_of t group =
  let members = Groups.members t.groups group in
  Hashtbl.fold
    (fun _ s acc -> if List.mem s.s_member members then s :: acc else acc)
    t.sessions []

let notify_group_view t group members =
  List.iter
    (fun s ->
      t.stats.group_notifications <- t.stats.group_notifications + 1;
      s.s_callbacks.on_group_view ~group ~members)
    (local_members_of t group)

(* Apply one totally-ordered envelope. Returns one [Deliver] action per
   local recipient so a driving runtime charges per-client delivery cost. *)
let rec apply_envelope t (d : Message.data) env =
  match env with
  | Envelope.Batch entries ->
      List.concat_map (fun entry -> apply_envelope t d entry) entries
  | Envelope.App { sender; groups; payload } ->
      (* Route to a local session when either its locally-requested
         membership ([s_joined], effective from the join call — so a
         rejoining session never misses a message ordered before its
         re-announced Join lands) or the delivered-join table (effective
         until the ordered Leave lands) says it belongs. *)
      let in_table s g = List.mem s.s_member (Groups.members t.groups g) in
      let joined s g = List.mem g s.s_joined || in_table s g in
      let recipients =
        Hashtbl.fold
          (fun _ s acc ->
            if s.s_open && List.exists (joined s) groups then s :: acc else acc)
          t.sessions []
        |> List.sort (fun a b -> compare a.s_name b.s_name)
      in
      List.map
        (fun s ->
          t.stats.client_deliveries <- t.stats.client_deliveries + 1;
          (* A slow receiver parks the message; the daemon's routing work
             (and the Deliver action's CPU charge) happens either way, so
             one stalled client never blocks the others. *)
          (match s.s_inbox with
          | Some q -> Deque.push_back q (sender, groups, d.service, payload)
          | None -> s.s_callbacks.on_message ~sender ~groups d.service payload);
          Participant.Deliver d)
        recipients
  | Envelope.Join { member; group } ->
      (match Groups.join t.groups ~group ~member with
      | Some members -> notify_group_view t group members
      | None -> ());
      []
  | Envelope.Leave { member; group } ->
      (match Groups.leave t.groups ~group ~member with
      | Some members -> notify_group_view t group members
      | None -> ());
      []

let handle_delivery t (d : Message.data) =
  match Envelope.decode d.payload with
  | env -> (
      match apply_envelope t d env with
      | [] ->
          (* Daemon-internal traffic (Join/Leave, or an App envelope with
             no local recipient) still consumed its slot in the total
             order — surface one delivery so the driving runtime charges
             it and trace invariants see a gap-free sequence. *)
          [ Participant.Deliver d ]
      | actions -> actions)
  | exception Codec.Decode_error _ ->
      (* Not daemon traffic (e.g. a recovery flood of a foreign payload);
         surface it unchanged. *)
      [ Participant.Deliver d ]

(* A new regular configuration: prune members of departed daemons, tell
   affected local clients, and re-announce our own sessions so daemons that
   merged in can rebuild their view of us. *)
let handle_view t (v : Participant.view) =
  if not v.transitional then begin
    let keep pid = List.mem pid v.members in
    let changed = Groups.prune t.groups ~keep in
    List.iter (fun (group, members) -> notify_group_view t group members) changed;
    Hashtbl.iter
      (fun _ s ->
        List.iter
          (fun group ->
            submit_envelope t Types.Agreed
              (Envelope.Join { member = s.s_member; group }))
          s.s_joined)
      t.sessions
  end;
  match t.on_view with None -> () | Some f -> f v

let transform_actions t actions =
  List.concat_map
    (fun action ->
      match action with
      | Participant.Deliver d -> handle_delivery t d
      | Participant.Deliver_config v ->
          handle_view t v;
          [ action ]
      | Participant.Unicast _ | Participant.Multicast _
      | Participant.Arm_timer _ | Participant.Token_loss_detected ->
          [ action ])
    actions

let participant t : Participant.t =
  let inner = Member.participant t.member in
  {
    inner with
    process =
      (fun msg ->
        (* Submissions accumulate until a token is about to be handled —
           they wait for the token anyway, so packing across a rotation
           costs no extra latency. *)
        (match msg with
        | Message.Token _ | Message.Commit _ -> flush t
        | Message.Data _ | Message.Join _ -> ());
        transform_actions t (inner.process msg));
    fire_timer =
      (fun timer ->
        flush t;
        transform_actions t (inner.fire_timer timer));
    start = (fun () -> transform_actions t (inner.start ()));
  }
