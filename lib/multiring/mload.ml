open Aring_sim
module Daemon = Aring_daemon.Daemon
module Kv = Aring_app.Kv
module Op = Aring_app.Op
module Load = Aring_load.Load
module Stats = Aring_util.Stats
module Prng = Aring_util.Prng
module Metrics = Aring_obs.Metrics
module Scenario = Aring_harness.Scenario

(* Multi-ring open-loop load driver: the PR-8 workload generator pointed
   at a sharded {!Cluster}. Sessions spread over every ring's daemons
   (membership traffic at scale on all rings); KV ops route by key shard;
   a slice of the write mix becomes cross-shard multi-key cas. Write
   latency is submit -> emergence in node 0's *merged* stream — the
   client-visible total-order latency of a sharded deployment — and the
   merge-added wait (ring apply -> merged emergence) is surfaced
   separately, since that is the price of the learner merge itself. *)

type result = {
  spec : Load.spec;
  ops_offered : int;
  writes_offered : int;
  writes_applied : int;  (* merged at node 0 inside the window *)
  offered_write_rate : float;
  applied_write_rate : float;
  write_latency_us : Stats.t;
  merge_wait_us : Stats.t;
  merged_total : int;
  per_ring_applied : int array;
  mcas_submitted : int;
  mcas_commits : int;
  mcas_aborts : int;
  mcas_retries : int;
  skip_credits_spent : int;
  queue_depth_peak : int;
  queue_depth_end : int;
  oracle_violations : int;
  converged : bool;
  end_ns : int;
  metrics : Metrics.t;
}

let ms n = n * 1_000_000

type sess = {
  id : int;
  node : int;
  ring : int;  (* daemon hosting the session's group memberships *)
  mutable handle : Daemon.session option;
  mutable counter : int;
}

let no_callbacks =
  {
    Daemon.on_message = (fun ~sender:_ ~groups:_ _ _ -> ());
    on_group_view = (fun ~group:_ ~members:_ -> ());
  }

let validate (spec : Load.spec) =
  if spec.rings < 1 then invalid_arg "Mload.run: rings < 1";
  if spec.n_nodes < 2 then invalid_arg "Mload.run: n_nodes < 2";
  if spec.sessions_per_node < 1 then
    invalid_arg "Mload.run: sessions_per_node < 1";
  if spec.n_groups < 1 then invalid_arg "Mload.run: n_groups < 1";
  if spec.key_space < 1 then invalid_arg "Mload.run: key_space < 1";
  if spec.value_mix = [] then invalid_arg "Mload.run: empty value_mix";
  if spec.mcas_permille < 0 || spec.mcas_permille > 1000 then
    invalid_arg "Mload.run: mcas_permille out of range";
  (* The single-ring driver owns the churn/storm/slow-receiver/geo
     dimensions; the multi-ring one measures sharded ordering. *)
  if spec.churn <> None then invalid_arg "Mload.run: churn unsupported";
  if spec.slow <> None then invalid_arg "Mload.run: slow unsupported";
  if spec.geo <> None then invalid_arg "Mload.run: geo unsupported";
  if spec.partition <> None then invalid_arg "Mload.run: partition unsupported"

let run (spec : Load.spec) =
  validate spec;
  let n = spec.n_nodes and rings = spec.rings in
  let cluster =
    Cluster.create ~params:spec.params ~net:spec.net ~tier:spec.tier
      ~seed:spec.seed ~rings ~nodes:n ()
  in
  let sim = Cluster.sim cluster in
  List.iter
    (fun (l : Load.link) ->
      if l.l_node >= 0 && l.l_node < n then
        for r = 0 to rings - 1 do
          Netsim.set_link_rates sim
            ~node:(Cluster.pid cluster ~ring:r ~node:l.l_node)
            ?up_bps:l.l_up_bps ?down_bps:l.l_down_bps ()
        done)
    spec.links;
  let metrics = Metrics.create () in
  let m_offered = Metrics.counter metrics "mload.ops_offered" in
  let m_merged = Metrics.counter metrics "mload.merged" in
  let m_queue = Metrics.gauge metrics "mload.queue_depth" in
  let m_latency =
    Metrics.histogram
      ~bounds:(Metrics.exponential_bounds ~lo:100.0 ~factor:2.0 ~count:16)
      metrics "mload.write_latency_us"
  in
  let horizon = spec.warmup_ns + spec.measure_ns in
  let deadline = horizon + spec.drain_ns in
  let ops_offered = ref 0 in
  let writes_offered = ref 0 in
  let writes_applied = ref 0 in
  let merged_total = ref 0 in
  let per_ring_applied = Array.make rings 0 in
  let write_latency = Stats.create () in
  let merge_wait = Stats.create () in
  let in_flight : (string, int) Hashtbl.t = Hashtbl.create 4096 in
  let in_flight_total = ref 0 in
  let queue_peak = ref 0 in
  (* Latency closes at merged emergence in node 0's learner stream. *)
  Cluster.on_merged cluster (fun ~node ~ring (it : Cluster.merged_item) ->
      if node = 0 then begin
        let now = Netsim.now sim in
        if now >= spec.warmup_ns && now < horizon then begin
          incr merged_total;
          Metrics.incr m_merged;
          per_ring_applied.(ring) <- per_ring_applied.(ring) + 1;
          Stats.add merge_wait (float_of_int (now - it.mi_applied_at) /. 1e3)
        end;
        let written =
          match it.mi_op with
          | Op.Put { value; _ } | Op.Cas { value; _ } -> Some value
          | _ -> None
        in
        match written with
        | Some value -> (
            match Hashtbl.find_opt in_flight value with
            | Some t0 ->
                Hashtbl.remove in_flight value;
                decr in_flight_total;
                if t0 >= spec.warmup_ns && t0 < horizon then begin
                  incr writes_applied;
                  let us = float_of_int (now - t0) /. 1e3 in
                  Stats.add write_latency us;
                  Metrics.observe m_latency us
                end
            | None -> ())
        | None -> ()
      end);
  (* ---------------- session population ---------------- *)
  let total_sessions = n * spec.sessions_per_node in
  let sessions =
    Array.init total_sessions (fun i ->
        {
          id = i;
          node = i mod n;
          ring = i / n mod rings;
          handle = None;
          counter = 0;
        })
  in
  let prng = Prng.create ~seed:(Int64.logxor spec.seed 0x6D6C6F6164L) in
  let zipf = Prng.zipf_table ~n:spec.key_space ~theta:spec.zipf_theta in
  let value_total = List.fold_left (fun a (_, w) -> a + w) 0 spec.value_mix in
  let draw_value_bytes () =
    let r = Prng.int prng value_total in
    let rec pick acc = function
      | [] -> 64
      | (bytes, w) :: rest -> if r < acc + w then bytes else pick (acc + w) rest
    in
    pick 0 spec.value_mix
  in
  let pad tag bytes =
    let len = max (String.length tag) bytes in
    let b = Bytes.make len '.' in
    Bytes.blit_string tag 0 b 0 (String.length tag);
    Bytes.to_string b
  in
  let key () = Printf.sprintf "k%05d" (Prng.zipf prng zipf) in
  (* A cross-shard pair: draw until the second key lands on a different
     ring (bounded — heavy skew can defeat it, a same-shard mcas is
     still a valid single-part commit). *)
  let cross_shard_pair () =
    let k1 = key () in
    let s1 = Cluster.shard_of_key cluster k1 in
    let rec other tries =
      let k2 = key () in
      if k2 <> k1 && (Cluster.shard_of_key cluster k2 <> s1 || tries >= 8) then
        k2
      else other (tries + 1)
    in
    (k1, other 0)
  in
  let track_write value now =
    Hashtbl.replace in_flight value now;
    incr in_flight_total;
    if !in_flight_total > !queue_peak then queue_peak := !in_flight_total;
    Metrics.set m_queue (float_of_int !in_flight_total)
  in
  let do_op ss now =
    let in_window = now >= spec.warmup_ns && now < horizon in
    if in_window then incr ops_offered;
    Metrics.incr m_offered;
    ss.counter <- ss.counter + 1;
    let key = key () in
    let r = Prng.int prng 1000 in
    let sync_edge = spec.read_permille + spec.sync_read_permille in
    let cas_edge = sync_edge + spec.cas_permille in
    let del_edge = cas_edge + spec.del_permille in
    let mcas_edge = del_edge + spec.mcas_permille in
    if r < sync_edge then
      (* Local reads only: the Safe-path sync read is the single-ring
         driver's dimension. *)
      ignore (Cluster.read cluster ~node:ss.node ~key)
    else if r < cas_edge then begin
      if in_window then incr writes_offered;
      let value =
        pad (Printf.sprintf "c:%d:%d:" ss.id ss.counter) (draw_value_bytes ())
      in
      track_write value now;
      let expect, _ = Cluster.read cluster ~node:ss.node ~key in
      Cluster.cas cluster ~node:ss.node ~key ~expect ~value
    end
    else if r < del_edge then begin
      if in_window then incr writes_offered;
      Cluster.del cluster ~node:ss.node ~key
    end
    else if r < mcas_edge then begin
      if in_window then incr writes_offered;
      let k1, k2 = cross_shard_pair () in
      let id = Printf.sprintf "m:%d:%d" ss.id ss.counter in
      let v1 = pad (Printf.sprintf "x:%s:a:" id) (draw_value_bytes ()) in
      let v2 = pad (Printf.sprintf "x:%s:b:" id) (draw_value_bytes ()) in
      track_write v1 now;
      track_write v2 now;
      Cluster.mcas cluster ~node:ss.node ~id ~checks:[]
        ~writes:[ (k1, v1); (k2, v2) ]
    end
    else begin
      if in_window then incr writes_offered;
      let value =
        pad (Printf.sprintf "w:%d:%d:" ss.id ss.counter) (draw_value_bytes ())
      in
      track_write value now;
      Cluster.put cluster ~node:ss.node ~key ~value
    end
  in
  let rec arrive ss () =
    let now = Netsim.now sim in
    if now < horizon then begin
      let rate =
        Scenario.rate_at_schedule ~default:spec.ops_per_sec spec.load now
      in
      if rate <= 0.0 then Netsim.call_at sim ~at:(now + ms 1) (arrive ss)
      else begin
        do_op ss now;
        let mean_ns = 1e9 /. (rate /. float_of_int total_sessions) in
        let interval =
          match spec.arrival with
          | Load.Poisson -> Prng.exponential prng ~mean:mean_ns
          | Load.Periodic -> mean_ns
        in
        Netsim.call_at sim
          ~at:(now + max 1_000 (int_of_float interval))
          (arrive ss)
      end
    end
  in
  let connect_spread = max 5_000 (spec.warmup_ns * 3 / 5 / total_sessions) in
  Array.iter
    (fun ss ->
      Netsim.call_at sim
        ~at:(500_000 + (ss.id * connect_spread))
        (fun () ->
          let d = Cluster.daemon cluster ~ring:ss.ring ~node:ss.node in
          let h =
            Daemon.connect d ~name:(Printf.sprintf "u%05d" ss.id) no_callbacks
          in
          Daemon.join d h (Printf.sprintf "g%03d" (ss.id mod spec.n_groups));
          ss.handle <- Some h;
          arrive ss ()))
    sessions;
  (* ---------------- drive + drain ---------------- *)
  let all_mcas_decided () =
    List.for_all
      (fun (id, _, _) ->
        let ok = ref true in
        for node = 0 to n - 1 do
          if Cluster.alive cluster ~node then
            if not (Cluster.mcas_decided_at cluster ~node id) then ok := false
        done;
        !ok)
      (Cluster.mcas_ids cluster)
  in
  let t = ref 0 in
  let stop = ref false in
  while not !stop do
    t := min deadline (!t + ms 25);
    Netsim.run_until sim !t;
    if !t >= deadline then stop := true
    else if
      !t > horizon && Cluster.kv_converged cluster
      && Cluster.merge_settled cluster
      && all_mcas_decided ()
    then stop := true
  done;
  Cluster.check_convergence cluster;
  Cluster.record_metrics cluster metrics;
  let mcas_commits = ref 0 and mcas_aborts = ref 0 in
  for r = 0 to rings - 1 do
    let st = Kv.stats (Cluster.kv cluster ~ring:r ~node:0) in
    mcas_commits := !mcas_commits + st.Kv.mcas_commits;
    mcas_aborts := !mcas_aborts + st.Kv.mcas_aborts
  done;
  let skip_credits_spent =
    let total = ref 0 in
    for r = 0 to rings - 1 do
      total := !total + (Kv.stats (Cluster.kv cluster ~ring:r ~node:0)).Kv.skips
    done;
    !total
  in
  let measure_s = float_of_int spec.measure_ns /. 1e9 in
  {
    spec;
    ops_offered = !ops_offered;
    writes_offered = !writes_offered;
    writes_applied = !writes_applied;
    offered_write_rate = float_of_int !writes_offered /. measure_s;
    applied_write_rate = float_of_int !merged_total /. measure_s;
    write_latency_us = write_latency;
    merge_wait_us = merge_wait;
    merged_total = !merged_total;
    per_ring_applied;
    mcas_submitted = Cluster.mcas_submitted cluster;
    mcas_commits = !mcas_commits;
    mcas_aborts = !mcas_aborts;
    mcas_retries = Cluster.mcas_retries cluster;
    skip_credits_spent;
    queue_depth_peak = !queue_peak;
    queue_depth_end = !in_flight_total;
    oracle_violations = Cluster.oracle_violations cluster;
    converged = Cluster.kv_converged cluster && Cluster.merge_settled cluster;
    end_ns = Netsim.now sim;
    metrics;
  }

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>%s: rings=%d offered=%d merged=%d applied_rate=%.0f/s@,\
     write p50=%.0fus p99=%.0fus  merge-wait p50=%.0fus p99=%.0fus@,\
     per-ring=%s mcas=%d (commit %d abort %d retry %d) queue peak=%d end=%d@,\
     oracle=%d converged=%b@]" r.spec.Load.label r.spec.Load.rings
    r.ops_offered r.merged_total r.applied_write_rate
    (Stats.percentile r.write_latency_us 50.0)
    (Stats.percentile r.write_latency_us 99.0)
    (Stats.percentile r.merge_wait_us 50.0)
    (Stats.percentile r.merge_wait_us 99.0)
    (String.concat ","
       (Array.to_list (Array.map string_of_int r.per_ring_applied)))
    r.mcas_submitted r.mcas_commits r.mcas_aborts r.mcas_retries
    r.queue_depth_peak r.queue_depth_end r.oracle_violations r.converged
