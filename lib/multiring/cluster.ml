open Aring_ring
open Aring_sim
module Daemon = Aring_daemon.Daemon
module Kv = Aring_app.Kv
module Op = Aring_app.Op
module Oracle = Aring_app.Oracle
module Kv_scenario = Aring_app.Kv_scenario
module Flight = Aring_obs.Flight

(* An M-ring deployment on one simulator: every physical node [i] of the
   [nodes] participates in all [rings] rings, as sim participant
   [r * nodes + i] for ring [r]. Rings are isolated multicast domains
   (Netsim.set_domains), each running its own membership, daemon and KV
   replica; the KV keyspace is sharded across rings by key hash. Each
   physical node is a learner of every ring: its per-ring replica
   observations feed one deterministic round-robin {!Merge}, and a
   per-node coordinator resolves cross-shard cas ops from its own
   replicas' votes — votes never cross the network. *)

type merged_item = {
  mi_ring : int;
  mi_index : int;
  mi_op : Op.t;
  mi_value : string option;
  mi_applied_at : int;
}

type mcas_reg = {
  rg_rings : int list;
  rg_node : int;
  mutable rg_parts : Op.mcas_part list;
  rg_armed : bool array;  (* per physical node: termination helper live *)
}

type t = {
  rings : int;
  nodes : int;
  sim : Netsim.t;
  members : Member.t array;  (* global pid = ring * nodes + node *)
  daemons : Daemon.t array;
  kvs : Kv.t array;
  oracles : Oracle.t array;  (* per ring *)
  merges : merged_item Merge.t array;  (* per physical node *)
  mutable merged_cbs : (node:int -> ring:int -> merged_item -> unit) list;
  registry : (string, mcas_reg) Hashtbl.t;
  decisions : (string, (int * int * bool) list ref) Hashtbl.t;
      (* id -> (node, ring, commit) in observation order *)
  last_activity : int array;  (* per global pid: sim ns of last observation *)
  alive_phys : bool array;
  skip_every_ns : int;
  skip_credits : int;
  mcas_retry_ns : int;
  mutable mcas_submitted : int;
  mutable mcas_retries : int;
}

let rings t = t.rings
let nodes t = t.nodes
let sim t = t.sim
let pid t ~ring ~node = (ring * t.nodes) + node
let kv t ~ring ~node = t.kvs.(pid t ~ring ~node)
let member t ~ring ~node = t.members.(pid t ~ring ~node)
let daemon t ~ring ~node = t.daemons.(pid t ~ring ~node)
let oracle t ~ring = t.oracles.(ring)
let alive t ~node = t.alive_phys.(node)

(* --- shard map -------------------------------------------------------- *)

let fnv_offset = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L

let shard_of_key t key =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    key;
  Int64.to_int (Int64.logand !h 0x3FFFFFFFL) mod t.rings

(* --- coordinator ------------------------------------------------------ *)

(* Resolve [id] at [node] if this node's own replicas know enough: any
   ring already decided fixes the outcome (adopt it); otherwise all
   involved rings must have voted and the outcome is the AND of the
   votes. The outcome is not applied locally — it is multicast on every
   involved ring as a sequenced Mdecide, so each replica resolves the
   park at one deterministic stream position. Idempotent (delivered
   duplicates dedup on id), so it is safe to try on every vote and every
   snapshot install; the termination ticks re-call it while undecided,
   covering Mdecides lost to view changes. *)
let try_resolve t ~node id =
  match Hashtbl.find_opt t.registry id with
  | None -> ()
  | Some reg ->
      let statuses =
        List.map (fun r -> (r, Kv.mcas_status (kv t ~ring:r ~node) id)) reg.rg_rings
      in
      let decided =
        List.find_map
          (function _, Some (Kv.Mcas_decided b) -> Some b | _ -> None)
          statuses
      in
      let outcome =
        match decided with
        | Some b -> Some b
        | None ->
            if
              List.for_all
                (function _, Some (Kv.Mcas_voted _) -> true | _ -> false)
                statuses
            then
              Some
                (List.for_all
                   (function _, Some (Kv.Mcas_voted v) -> v | _ -> false)
                   statuses)
            else None
      in
      (match outcome with
      | None -> ()
      | Some commit ->
          List.iter
            (fun (r, st) ->
              match st with
              | Some (Kv.Mcas_decided _) -> ()
              | _ -> Kv.submit_decide (kv t ~ring:r ~node) ~id ~commit)
            statuses)

let register t ~node ~id ?(parts = []) rings =
  match Hashtbl.find_opt t.registry id with
  | Some reg -> if reg.rg_parts = [] then reg.rg_parts <- parts
  | None ->
      Hashtbl.replace t.registry id
        {
          rg_rings = rings;
          rg_node = node;
          rg_parts = parts;
          rg_armed = Array.make t.nodes false;
        }

let mcas_decided_at t ~node id =
  match Hashtbl.find_opt t.registry id with
  | None -> false
  | Some reg ->
      List.for_all
        (fun r ->
          match Kv.mcas_status (kv t ~ring:r ~node) id with
          | Some (Kv.Mcas_decided _) -> true
          | _ -> false)
        reg.rg_rings

(* Cooperative termination: a submitter that crashes after sending only
   some of an mcas's per-ring copies would otherwise leave the rings
   that *did* deliver one parked forever. Every node that observes a
   vote keeps a slow helper loop: while the op is undecided at this
   node, resubmit the full copy set from here (dedup on [id] makes the
   duplicates harmless). Any surviving voter completes the commit. *)
let arm_termination t ~node id =
  match Hashtbl.find_opt t.registry id with
  | None -> ()
  | Some reg ->
      if not reg.rg_armed.(node) then begin
        reg.rg_armed.(node) <- true;
        let period = 3 * t.mcas_retry_ns in
        let rec tick () =
          if t.alive_phys.(node) && not (mcas_decided_at t ~node id) then begin
            if reg.rg_parts <> [] then begin
              t.mcas_retries <- t.mcas_retries + 1;
              List.iter
                (fun r ->
                  Kv.submit_mcas (kv t ~ring:r ~node) ~id ~parts:reg.rg_parts)
                reg.rg_rings
            end;
            (* An Mdecide lost to a view change or minority rejection is
               never re-multicast by anyone else — recompute and resend. *)
            try_resolve t ~node id;
            Netsim.call_at t.sim ~at:(Netsim.now t.sim + period) tick
          end
        in
        Netsim.call_at t.sim ~at:(Netsim.now t.sim + period) tick
      end

let note_decision t ~node ~ring ~id commit =
  let l =
    match Hashtbl.find_opt t.decisions id with
    | Some l -> l
    | None ->
        let l = ref [] in
        Hashtbl.replace t.decisions id l;
        l
  in
  l := (node, ring, commit) :: !l

let drain_merge t ~node =
  let m = t.merges.(node) in
  let rec go () =
    match Merge.pop m with
    | None -> ()
    | Some (ring, it) ->
        Flight.record ~node:(pid t ~ring ~node) ~code:Flight.ev_merge ~a:ring
          ~b:(Merge.emitted m) ~c:0 ~d:0;
        List.iter (fun f -> f ~node ~ring it) t.merged_cbs;
        go ()
  in
  go ()

let observe t ~node ~ring (obs : Kv.observation) =
  t.last_activity.(pid t ~ring ~node) <- Netsim.now t.sim;
  match obs with
  | Kv.Applied { index; op; value } ->
      Merge.push t.merges.(node) ~ring
        (Merge.Item
           {
             mi_ring = ring;
             mi_index = index;
             mi_op = op;
             mi_value = value;
             mi_applied_at = Netsim.now t.sim;
           });
      drain_merge t ~node
  | Kv.Skipped { credits } ->
      Merge.push t.merges.(node) ~ring (Merge.Skip credits);
      drain_merge t ~node
  | Kv.Voted { id; rings; parts; _ } ->
      register t ~node ~id ~parts rings;
      try_resolve t ~node id;
      arm_termination t ~node id
  | Kv.Decided { id; commit } -> note_decision t ~node ~ring ~id commit
  | Kv.Installed _ ->
      (* A snapshot may have delivered vote-table state this node's
         coordinator was missing — and possibly a reconstructed park this
         node never saw delivered. The parked head carries the full op,
         so register it and arm termination here: without this, a park
         whose every original voter crashed would wait forever. *)
      (match Kv.parked_op (kv t ~ring ~node) with
      | Some (Op.Mcas { id; parts }) ->
          register t ~node ~id ~parts
            (List.map (fun p -> p.Op.mp_ring) parts);
          arm_termination t ~node id
      | _ -> ());
      Hashtbl.iter (fun id _ -> try_resolve t ~node id) t.registry
  | Kv.Read _ | Kv.Aborted | Kv.Reset -> ()

(* --- skip generators -------------------------------------------------- *)

(* Every node runs one generator per ring it participates in: if the
   ring has been silent at this node for a full interval, multicast a
   skip granting the merge a block of turn-passes. Deliveries (including
   skips) reset the clock, so a busy ring emits none and an idle ring
   emits one round per interval per node.

   Grants are deliberately stingy, because every queued credit is a
   merge turn the ring's next item must wait out (credits are consumed
   strictly in queue position) — over-granting during a long idle period
   leaves the ring's first item after waking stranded behind thousands
   of ceded turns, the merge-added latency spike the multiring bench
   gates against. Three rules bound the outstanding credits to at most
   two blocks (plus a brief designation handover overlap):

   - only the lowest alive physical node grants for a ring (the others
     keep ticking so designation fails over on a crash);
   - no grant while the node's own merge still holds items for the ring
     (a ring with pending items needs no silence cover);
   - no grant while the node's own merge holds a block's worth of
     unspent credits for the ring (its silence is already covered).

   All three read local state only; the skip itself still rides the
   ring's agreed stream, so every learner keeps identical per-ring
   input sequences and the merged order stays deterministic. *)
let install_skip_generators t =
  let designated node =
    let rec first i = if i >= t.nodes || t.alive_phys.(i) then i else first (i + 1) in
    first 0 = node
  in
  for node = 0 to t.nodes - 1 do
    for ring = 0 to t.rings - 1 do
      let p = pid t ~ring ~node in
      let rec tick () =
        if t.alive_phys.(node) then begin
          if
            designated node
            && Netsim.now t.sim - t.last_activity.(p) >= t.skip_every_ns
            && Kv.synced (kv t ~ring ~node)
            && Merge.pending t.merges.(node) ~ring = 0
            && Merge.unspent_credits t.merges.(node) ~ring < t.skip_credits
          then begin
            Flight.record ~node:p ~code:Flight.ev_skip ~a:ring
              ~b:t.skip_credits ~c:0 ~d:0;
            Kv.skip (kv t ~ring ~node) ~credits:t.skip_credits
          end;
          Netsim.call_at t.sim
            ~at:(Netsim.now t.sim + t.skip_every_ns)
            tick
        end
      in
      (* Staggered start so generators don't fire in one burst. *)
      Netsim.call_at t.sim ~at:(500_000 + (p * 37_000)) tick
    done
  done

(* --- construction ----------------------------------------------------- *)

let create ?(params = Kv_scenario.snappy_params ()) ?(net = Profile.gigabit)
    ?(tier = Profile.daemon) ?tiers ?(seed = 1L) ?(skip_every_ns = 250_000)
    ?(skip_credits = 32) ?(mcas_retry_ns = 8_000_000) ?controller ?wrap
    ?kv_bug ~rings ~nodes () =
  if rings < 1 then invalid_arg "Cluster.create: rings < 1";
  if nodes < 2 then invalid_arg "Cluster.create: nodes < 2";
  let total = rings * nodes in
  let members =
    Array.init total (fun p ->
        let ring = p / nodes in
        let initial_ring = Array.init nodes (fun i -> (ring * nodes) + i) in
        let controller =
          match controller with None -> None | Some f -> f ~pid:p
        in
        Member.create ~params ~me:p ~initial_ring ?controller ())
  in
  let daemons =
    Array.init total (fun p -> Daemon.create ~member:members.(p) ())
  in
  let kvs =
    Array.init total (fun p ->
        let ring = p / nodes and node = p mod nodes in
        let bug =
          match kv_bug with None -> None | Some f -> f ~ring ~node
        in
        Kv.create ?bug ~ring ~cluster_size:nodes ~daemon:daemons.(p) ())
  in
  let oracles = Array.init rings (fun _ -> Oracle.create ()) in
  for r = 0 to rings - 1 do
    for i = 0 to nodes - 1 do
      Oracle.attach oracles.(r) kvs.((r * nodes) + i)
    done
  done;
  let participants =
    Array.mapi
      (fun p d ->
        let part = Daemon.participant d in
        match wrap with None -> part | Some f -> f ~pid:p part)
      daemons
  in
  let tiers =
    match tiers with
    | None -> Array.make total tier
    | Some phys ->
        if Array.length phys <> nodes then
          invalid_arg "Cluster.create: tiers must cover the physical nodes";
        Array.init total (fun p -> phys.(p mod nodes))
  in
  let sim = Netsim.create ~net ~tiers ~participants ~seed () in
  Netsim.set_domains sim (Array.init total (fun p -> p / nodes));
  let t =
    {
      rings;
      nodes;
      sim;
      members;
      daemons;
      kvs;
      oracles;
      merges = Array.init nodes (fun _ -> Merge.create ~rings);
      merged_cbs = [];
      registry = Hashtbl.create 64;
      decisions = Hashtbl.create 64;
      last_activity = Array.make total 0;
      alive_phys = Array.make nodes true;
      skip_every_ns;
      skip_credits;
      mcas_retry_ns;
      mcas_submitted = 0;
      mcas_retries = 0;
    }
  in
  Array.iteri
    (fun p kv ->
      let ring = p / nodes and node = p mod nodes in
      Kv.add_observer kv (fun obs -> observe t ~node ~ring obs))
    kvs;
  install_skip_generators t;
  t

let on_merged t f = t.merged_cbs <- t.merged_cbs @ [ f ]
let merged_count t ~node = Merge.emitted t.merges.(node)
let merge_blocked t ~node ~ring = Merge.pending t.merges.(node) ~ring

(* --- client operations ------------------------------------------------ *)

let put t ~node ~key ~value =
  Kv.put (kv t ~ring:(shard_of_key t key) ~node) ~key ~value

let del t ~node ~key = Kv.del (kv t ~ring:(shard_of_key t key) ~node) ~key

let cas t ~node ~key ~expect ~value =
  Kv.cas (kv t ~ring:(shard_of_key t key) ~node) ~key ~expect ~value

let read t ~node ~key = Kv.read (kv t ~ring:(shard_of_key t key) ~node) ~key

(* Split a multi-key cas into per-ring parts by shard. *)
let mcas_parts t ~checks ~writes =
  let tbl = Hashtbl.create 4 in
  let part r =
    match Hashtbl.find_opt tbl r with
    | Some p -> p
    | None ->
        let p = (ref [], ref []) in
        Hashtbl.replace tbl r p;
        p
  in
  List.iter
    (fun (k, x) ->
      let c, _ = part (shard_of_key t k) in
      c := (k, x) :: !c)
    checks;
  List.iter
    (fun (k, v) ->
      let _, w = part (shard_of_key t k) in
      w := (k, v) :: !w)
    writes;
  Hashtbl.fold
    (fun r (c, w) acc ->
      { Op.mp_ring = r; mp_checks = List.rev !c; mp_writes = List.rev !w }
      :: acc)
    tbl []
  |> List.sort (fun a b -> compare a.Op.mp_ring b.Op.mp_ring)

(* Submit a cross-shard cas from [node]: one identical copy per involved
   ring, with a deterministic retry loop — copies lost to a minority
   component or a view change are resubmitted (delivered duplicates
   dedup on [id]) until the submitting node sees a decision. *)
let mcas t ~node ~id ~checks ~writes =
  let parts = mcas_parts t ~checks ~writes in
  let involved = List.map (fun p -> p.Op.mp_ring) parts in
  register t ~node ~id ~parts involved;
  t.mcas_submitted <- t.mcas_submitted + 1;
  let submit () =
    List.iter
      (fun r -> Kv.submit_mcas (kv t ~ring:r ~node) ~id ~parts)
      involved
  in
  let rec retry () =
    if t.alive_phys.(node) && not (mcas_decided_at t ~node id) then begin
      t.mcas_retries <- t.mcas_retries + 1;
      submit ();
      try_resolve t ~node id;
      Netsim.call_at t.sim ~at:(Netsim.now t.sim + t.mcas_retry_ns) retry
    end
  in
  submit ();
  Netsim.call_at t.sim ~at:(Netsim.now t.sim + t.mcas_retry_ns) retry

let mcas_submitted t = t.mcas_submitted
let mcas_retries t = t.mcas_retries
let mcas_ids t =
  Hashtbl.fold (fun id r acc -> (id, r.rg_node, r.rg_rings) :: acc) t.registry []
let decisions_for t id =
  match Hashtbl.find_opt t.decisions id with
  | None -> []
  | Some l -> List.rev !l

(* --- faults ----------------------------------------------------------- *)

(* Crashing a physical node crashes its participant in every ring. *)
let crash t ~node =
  t.alive_phys.(node) <- false;
  for r = 0 to t.rings - 1 do
    Netsim.crash t.sim (pid t ~ring:r ~node)
  done

(* --- convergence ------------------------------------------------------ *)

(* Every surviving replica of every ring settled, synced, pairwise equal
   on (applied, digest) with its ring peers, with no undecided parked
   mcas anywhere. The park check only applies while the survivors can
   still form a primary component: resolving a park takes an ordered
   Mdecide write, and a minority component deterministically rejects
   writes — a park frozen in a minority is correct, not stuck. *)
let kv_converged t =
  let alive = Array.fold_left (fun a b -> if b then a + 1 else a) 0 t.alive_phys in
  let primary = 2 * alive > t.nodes in
  let ok = ref true in
  for r = 0 to t.rings - 1 do
    let survivors = ref [] in
    for i = t.nodes - 1 downto 0 do
      if t.alive_phys.(i) then survivors := kv t ~ring:r ~node:i :: !survivors
    done;
    (match !survivors with
    | [] -> ()
    | first :: rest ->
        if not (Kv.settled first && Kv.synced first) then ok := false;
        if primary && Kv.mcas_parked first then ok := false;
        List.iter
          (fun k ->
            if not (Kv.settled k && Kv.synced k) then ok := false;
            if primary && Kv.mcas_parked k then ok := false;
            if Kv.applied k <> Kv.applied first || Kv.digest k <> Kv.digest first
            then ok := false)
          rest)
  done;
  !ok

(* Every delivered item has drained through every survivor's merge —
   nothing is stuck behind a silent ring. Merged-stream *lengths* are
   deliberately not compared: a replica that caught up via snapshot
   transfer never saw the compressed ops as individual deliveries, so
   after a partition its learner's merged stream is legitimately
   shorter (fault-free runs assert stream equality separately). *)
let merge_settled t =
  let ok = ref true in
  for i = 0 to t.nodes - 1 do
    if t.alive_phys.(i) then
      for r = 0 to t.rings - 1 do
        if Merge.pending t.merges.(i) ~ring:r > 0 then ok := false
      done
  done;
  !ok

let oracle_violations t =
  Array.fold_left (fun acc o -> acc + Oracle.violation_count o) 0 t.oracles

let check_convergence t =
  for r = 0 to t.rings - 1 do
    let survivors = ref [] in
    for i = t.nodes - 1 downto 0 do
      if t.alive_phys.(i) then survivors := kv t ~ring:r ~node:i :: !survivors
    done;
    Oracle.check_convergence t.oracles.(r) !survivors
  done

let record_metrics t reg =
  for r = 0 to t.rings - 1 do
    let prefix = Printf.sprintf "ring%d." r in
    Kv.record_metrics ~prefix (kv t ~ring:r ~node:0) reg;
    (* Daemon/engine counters accumulate over the ring's members into
       per-ring totals. *)
    for i = 0 to t.nodes - 1 do
      Daemon.record_metrics ~prefix (daemon t ~ring:r ~node:i) reg
    done
  done;
  Netsim.record_metrics t.sim reg
