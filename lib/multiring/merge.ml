(* Deterministic round-robin learner merge over M ring streams.

   Each ring feeds the merge a FIFO sequence of [Item]s (its agreed
   deliveries) and [Skip]s (liveness hints from idle periods). The merge
   holds a cursor and visits rings strictly round-robin; at each visit
   the front of the cursor ring's sequence decides what happens:

   - [Item x]: emit [(ring, x)] and advance the cursor;
   - [Skip k] (one unit per visit): cede this turn, leave [k - 1] units
     at the front, advance the cursor;
   - empty queue with no front credit: the merge blocks (returns [None])
     until that ring supplies an item or a skip.

   Consuming skip credits strictly in queue position — never folding
   them past items pushed later — is what makes the merged order a pure
   function of the per-ring input sequences: no matter how pushes and
   pops interleave in real time, the same per-ring sequences produce the
   same output. An idle ring keeps the merge live by emitting skips; a
   ring that is idle *and* silent correctly stalls it (the learner has
   no way to know that ring won't deliver something that sorts next). *)

type 'a input = Item of 'a | Skip of int

type 'a cell = C_item of 'a | C_skip of int

type 'a t = {
  rings : int;
  queues : 'a cell Queue.t array;
  (* Units remaining of a partially-consumed skip at the front of each
     ring's sequence — kept outside the queue so consuming one unit per
     visit is O(1). *)
  front_credit : int array;
  items : int array;  (* count of C_item cells per ring, for blocked-check *)
  credits : int array;  (* unconsumed skip units per ring, incl. front *)
  mutable cursor : int;
  mutable emitted : int;
  mutable credits_spent : int;
}

let create ~rings =
  if rings < 1 then invalid_arg "Merge.create: rings < 1";
  {
    rings;
    queues = Array.init rings (fun _ -> Queue.create ());
    front_credit = Array.make rings 0;
    items = Array.make rings 0;
    credits = Array.make rings 0;
    cursor = 0;
    emitted = 0;
    credits_spent = 0;
  }

let rings t = t.rings
let emitted t = t.emitted
let credits_spent t = t.credits_spent
let pending t ~ring = t.items.(ring)
let unspent_credits t ~ring = t.credits.(ring)

let push t ~ring input =
  if ring < 0 || ring >= t.rings then invalid_arg "Merge.push: ring";
  match input with
  | Item x ->
      Queue.push (C_item x) t.queues.(ring);
      t.items.(ring) <- t.items.(ring) + 1
  | Skip k ->
      if k > 0 then begin
        Queue.push (C_skip k) t.queues.(ring);
        t.credits.(ring) <- t.credits.(ring) + k
      end

(* True iff some ring holds an item — i.e. burning credits can reach an
   emission. Without this check an all-idle merge would eat its credits
   emitting nothing. *)
let has_item t =
  let rec go r = r < t.rings && (t.items.(r) > 0 || go (r + 1)) in
  go 0

let pop t =
  if not (has_item t) then None
  else
    let rec visit () =
      let r = t.cursor in
      if t.front_credit.(r) > 0 then begin
        t.front_credit.(r) <- t.front_credit.(r) - 1;
        t.credits.(r) <- t.credits.(r) - 1;
        t.credits_spent <- t.credits_spent + 1;
        t.cursor <- (r + 1) mod t.rings;
        visit ()
      end
      else
        match Queue.peek_opt t.queues.(r) with
        | Some (C_skip k) ->
            ignore (Queue.pop t.queues.(r));
            (* Consume one unit now; the rest waits at the front. *)
            t.front_credit.(r) <- k - 1;
            t.credits.(r) <- t.credits.(r) - 1;
            t.credits_spent <- t.credits_spent + 1;
            t.cursor <- (r + 1) mod t.rings;
            visit ()
        | Some (C_item x) ->
            ignore (Queue.pop t.queues.(r));
            t.items.(r) <- t.items.(r) - 1;
            t.cursor <- (r + 1) mod t.rings;
            t.emitted <- t.emitted + 1;
            Some (r, x)
        | None -> None  (* blocked on ring r *)
    in
    visit ()

let pop_all t =
  let rec go acc =
    match pop t with None -> List.rev acc | Some e -> go (e :: acc)
  in
  go []
