(** Multi-ring open-loop load driver.

    Runs the PR-8 production workload ({!Aring_load.Load.spec}) against a
    sharded {!Cluster}: [spec.rings] rings of [spec.n_nodes] physical
    nodes, sessions spread over every ring's daemons, KV ops routed by
    key shard, and [spec.mcas_permille] of the write mix issued as
    cross-shard multi-key cas. Latency is measured where a sharded
    client sees it: emergence in node 0's merged learner stream, with
    the merge-added wait (ring apply → merged emergence) reported
    separately.

    The churn / storm / slow-receiver / geo dimensions stay with the
    single-ring {!Aring_load.Load.run}; specs setting them are
    rejected. *)

module Load = Aring_load.Load
module Stats = Aring_util.Stats
module Metrics = Aring_obs.Metrics

type result = {
  spec : Load.spec;
  ops_offered : int;
  writes_offered : int;
  writes_applied : int;
      (** Tracked writes that emerged merged at node 0 inside the
          window. *)
  offered_write_rate : float;
  applied_write_rate : float;  (** Merged items/s at node 0 in-window. *)
  write_latency_us : Stats.t;  (** Submit → merged emergence at node 0. *)
  merge_wait_us : Stats.t;  (** Ring apply → merged emergence at node 0. *)
  merged_total : int;
  per_ring_applied : int array;  (** In-window merged items per ring. *)
  mcas_submitted : int;
  mcas_commits : int;  (** Summed over node 0's per-ring replicas. *)
  mcas_aborts : int;
  mcas_retries : int;
  skip_credits_spent : int;  (** Skip ops delivered at node 0, all rings. *)
  queue_depth_peak : int;
  queue_depth_end : int;
  oracle_violations : int;  (** Summed over the per-ring oracles. *)
  converged : bool;
      (** Per-ring replica convergence and equal-length drained merges. *)
  end_ns : int;
  metrics : Metrics.t;
}

val run : Load.spec -> result
(** Deterministic for a given spec.
    @raise Invalid_argument on [rings < 1] or a spec using the
    single-ring-only dimensions. *)

val pp_result : Format.formatter -> result -> unit
