(** An M-ring sharded deployment on one deterministic simulator.

    Every physical node participates in all [rings] rings — as sim
    participant [ring * nodes + node] — each ring an isolated multicast
    domain running its own membership, daemon and {!Aring_app.Kv}
    replica. The KV keyspace is sharded across rings by FNV key hash
    ({!shard_of_key}); client operations route to the owning ring.

    Each physical node is a {e learner} of every ring: its per-ring
    replica observations ([Applied] / [Skipped]) feed one deterministic
    round-robin {!Merge}, producing the node's merged total order. A
    per-node coordinator resolves cross-shard {!mcas} ops from its own
    node's replicas' votes (votes never cross the network) and retries
    lost copies deterministically.

    With [rings = 1] the cluster degenerates to the classic single-ring
    deployment (no domains pruning anything, merge = identity). *)

open Aring_ring
open Aring_sim
module Kv = Aring_app.Kv
module Op = Aring_app.Op
module Oracle = Aring_app.Oracle

type t

(** One element of a node's merged total order. *)
type merged_item = {
  mi_ring : int;  (** Ring that ordered the op. *)
  mi_index : int;  (** The op's index in its ring's op log. *)
  mi_op : Op.t;
  mi_value : string option;  (** Store value after apply (ground truth). *)
  mi_applied_at : int;
      (** Sim time the op applied on its ring at this node — merged
          emergence minus this is the merge-added wait. *)
}

val create :
  ?params:Params.t ->
  ?net:Profile.net ->
  ?tier:Profile.tier ->
  ?tiers:Profile.tier array ->
  ?seed:int64 ->
  ?skip_every_ns:int ->
  ?skip_credits:int ->
  ?mcas_retry_ns:int ->
  ?controller:(pid:int -> Aring_control.Controller.t option) ->
  ?wrap:(pid:int -> Participant.t -> Participant.t) ->
  ?kv_bug:(ring:int -> node:int -> Kv.bug option) ->
  rings:int ->
  nodes:int ->
  unit ->
  t
(** Build [rings] rings of [nodes] physical nodes each on one shared
    {!Netsim}. [tiers] gives per-{e physical-node} cost profiles
    (length [nodes], replicated across rings); [tier] is the uniform
    default. [skip_every_ns] (default 250 µs) is the per-(node, ring)
    idle window after which a skip of [skip_credits] (default 32) merge
    turns is multicast — but only by the lowest-pid alive node, and only
    while its own merge holds no pending items and fewer than
    [skip_credits] unspent units for that ring, so a long idle period
    cannot pile up credits that would strand the ring's next item
    behind thousands of ceded turns; [mcas_retry_ns] (default 8 ms)
    paces the submitter's mcas retry loop. [controller] is called once per sim
    participant (global pid) to give each member its own adaptive
    controller; [wrap] wraps each participant before the sim is built
    (fault injection); [kv_bug] seeds a replica bug (fuzzer self-test).

    @raise Invalid_argument if [rings < 1] or [nodes < 2]. *)

(** {1 Topology} *)

val rings : t -> int
val nodes : t -> int
val sim : t -> Netsim.t

val pid : t -> ring:int -> node:int -> int
(** Global sim participant id: [ring * nodes + node]. *)

val kv : t -> ring:int -> node:int -> Kv.t
val member : t -> ring:int -> node:int -> Member.t
val daemon : t -> ring:int -> node:int -> Aring_daemon.Daemon.t
val oracle : t -> ring:int -> Oracle.t

val alive : t -> node:int -> bool
(** False once {!crash}ed. *)

val shard_of_key : t -> string -> int
(** The ring that orders writes to this key. *)

(** {1 Client operations} (routed to the owning ring at [node]) *)

val put : t -> node:int -> key:string -> value:string -> unit
val del : t -> node:int -> key:string -> unit

val cas :
  t -> node:int -> key:string -> expect:string option -> value:string -> unit

val read : t -> node:int -> key:string -> string option * int

val mcas :
  t ->
  node:int ->
  id:string ->
  checks:(string * string option) list ->
  writes:(string * string) list ->
  unit
(** Cross-shard multi-key cas: split [checks]/[writes] into per-ring
    parts by shard, submit one identical copy on every involved ring
    from [node], and retry every [mcas_retry_ns] until the submitting
    node sees a decision on all involved rings (retried copies dedup on
    [id]). Commits iff every check holds at delivery on its ring. *)

val mcas_decided_at : t -> node:int -> string -> bool
(** All involved rings' replicas at [node] have recorded a decision. *)

val mcas_submitted : t -> int
val mcas_retries : t -> int

val mcas_ids : t -> (string * int * int list) list
(** Every registered mcas as [(id, submitting node, involved rings)]. *)

val decisions_for : t -> string -> (int * int * bool) list
(** Decision observations for [id] as [(node, ring, commit)], in
    observation order — the cross-shard atomicity oracle's feed: all
    commit bits for one [id] must agree. *)

(** {1 Merged order} *)

val on_merged : t -> (node:int -> ring:int -> merged_item -> unit) -> unit
(** Called for every element of each node's merged stream, in merged
    order; callbacks run in registration order. *)

val merged_count : t -> node:int -> int
val merge_blocked : t -> node:int -> ring:int -> int
(** Items of [ring] delivered at [node] but not yet emitted by the
    merge. *)

(** {1 Faults and convergence} *)

val crash : t -> node:int -> unit
(** Crash the physical node: its participant in {e every} ring. *)

val kv_converged : t -> bool
(** Every surviving replica of every ring settled, synced and pairwise
    equal on (applied, digest), with no undecided parked mcas. *)

val merge_settled : t -> bool
(** No delivered item is stuck behind any survivor's merge. Stream
    {e lengths} are not compared: a replica that caught up via snapshot
    transfer merges fewer items than peers that saw every delivery, so
    equal lengths only hold fault-free. *)

val check_convergence : t -> unit
(** Run each ring's oracle end-of-run convergence check over the
    surviving replicas. *)

val oracle_violations : t -> int

val record_metrics : t -> Aring_obs.Metrics.t -> unit
(** Node-0 replica counters per ring (under ["ring<r>."] prefixes) plus
    the shared network counters. *)
