(** Deterministic round-robin learner merge over M ring streams
    (Multi-Ring Paxos, with Ring-Paxos-style skips).

    A learner subscribed to several rings feeds each ring's agreed
    deliveries ([Item]) and idle-period liveness hints ([Skip]) into one
    {!t}; {!pop} emits the merged total order. The merge visits rings
    strictly round-robin: the cursor ring's front element either emits
    (an item), cedes the turn (one unit of a skip), or blocks the merge
    (nothing there — the ring must speak before anything can sort after
    its silence).

    The merged order is a {e pure function of the per-ring input
    sequences}: skip units are consumed in queue position, never folded
    past items pushed later, so any real-time interleaving of pushes and
    pops yields the same output (the property [test/test_multiring.ml]
    checks by qcheck). With one ring the merge is the identity stream —
    skips are transparent. *)

type 'a input =
  | Item of 'a  (** One agreed delivery of the ring. *)
  | Skip of int
      (** Cede the next [k] of this ring's merge turns ([k <= 0] is
          dropped). *)

type 'a t

val create : rings:int -> 'a t
(** @raise Invalid_argument if [rings < 1]. *)

val push : 'a t -> ring:int -> 'a input -> unit
(** Append to ring [ring]'s input sequence (FIFO). *)

val pop : 'a t -> (int * 'a) option
(** Next element of the merged order, or [None] if the merge is blocked:
    either no ring holds an item, or the cursor reaches a ring that is
    empty with no skip credit before any item can emit. Blocked is not
    final — push more and pop again. *)

val pop_all : 'a t -> (int * 'a) list
(** Drain until blocked. *)

val rings : 'a t -> int

val emitted : 'a t -> int
(** Total items emitted so far — equal at any two learners that fed the
    same per-ring sequences and drained. *)

val credits_spent : 'a t -> int
(** Skip units consumed so far. *)

val pending : 'a t -> ring:int -> int
(** Items pushed for [ring] not yet emitted. *)

val unspent_credits : 'a t -> ring:int -> int
(** Skip units pushed for [ring] not yet consumed — queued blocks plus
    the remainder of a partially-consumed front block. Skip generators
    use it to stop granting while a ring's silence is already covered:
    every queued unit is a merge turn the ring's {e next item} must wait
    out, so unbounded grants during a long idle period would stall the
    ring's stream for thousands of rotations after it wakes. *)
