open Aring_wire
open Aring_ring
module Heap = Aring_util.Heap
module Trace = Aring_obs.Trace
module Metrics = Aring_obs.Metrics

type peer = {
  pid : Types.pid;
  host : string;
  data_port : int;
  token_port : int;
}

type t = {
  me : Types.pid;
  peers : (Types.pid * Unix.sockaddr * Unix.sockaddr) list;
      (* pid, data addr, token addr — excluding self *)
  participant : Participant.t;
  data_sock : Unix.file_descr;
  token_sock : Unix.file_descr;
  timers : (int * Participant.timer) Heap.t;  (* absolute ns *)
  recv_buf : bytes;
  pool : Message.Pool.pool;
      (* Reusable encode scratch + decode cursor: sends go straight from
         the pool's buffer to [sendto], receives decode in place from
         [recv_buf] — no per-packet [bytes] copies. *)
  on_deliver : Message.data -> unit;
  on_view : Participant.view -> unit;
  mutable stop_requested : bool;
  mutable started : bool;
  mutable packets_received : int;
  mutable decode_errors : int;
}

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let addr host port = Unix.ADDR_INET (Unix.inet_addr_of_string host, port)

let make_socket ~port =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (addr "0.0.0.0" port);
  Unix.set_nonblock sock;
  sock

let create ~me ~peers ~participant ?(on_deliver = fun _ -> ())
    ?(on_view = fun _ -> ()) () =
  let self =
    match List.find_opt (fun p -> p.pid = me) peers with
    | Some p -> p
    | None -> invalid_arg "Udp_runtime.create: no peer entry for me"
  in
  let others =
    List.filter_map
      (fun p ->
        if p.pid = me then None
        else Some (p.pid, addr p.host p.data_port, addr p.host p.token_port))
      peers
  in
  {
    me;
    peers = others;
    participant;
    data_sock = make_socket ~port:self.data_port;
    token_sock = make_socket ~port:self.token_port;
    timers = Heap.create ~cmp:(fun (a, _) (b, _) -> compare a b);
    recv_buf = Bytes.create 65536;
    pool = Message.Pool.create ~initial_capacity:65536 ();
    on_deliver;
    on_view;
    stop_requested = false;
    started = false;
    packets_received = 0;
    decode_errors = 0;
  }

let packets_received t = t.packets_received
let decode_errors t = t.decode_errors
let stop t = t.stop_requested <- true

let record_metrics t reg =
  let c name v = Metrics.add (Metrics.counter reg name) v in
  c "udp.packets_received" t.packets_received;
  c "udp.decode_errors" t.decode_errors

let close t =
  Unix.close t.data_sock;
  Unix.close t.token_sock

let peer_addr t pid =
  List.find_opt (fun (p, _, _) -> p = pid) t.peers

let send_to t sock_kind pid msg =
  match peer_addr t pid with
  | None ->
      if pid = t.me then
        (* Self-delivery (e.g. the representative's initial token). *)
        ignore (t.participant.receive msg)
  | Some (_, data_addr, token_addr) ->
      let buf, len = Message.Pool.encode_view t.pool msg in
      let dst = match sock_kind with `Data -> data_addr | `Token -> token_addr in
      let sock = match sock_kind with `Data -> t.data_sock | `Token -> t.token_sock in
      (try ignore (Unix.sendto sock buf 0 len [] dst)
       with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNREFUSED), _, _) ->
         (* UDP best-effort: a full buffer or a dead peer is packet loss,
            which the protocol tolerates. *)
         ())

let route_of_message = function
  | Message.Token _ | Message.Commit _ -> `Token
  | Message.Data _ | Message.Join _ -> `Data

let rec interpret t actions =
  List.iter
    (fun action ->
      match action with
      | Participant.Unicast (pid, msg) -> send_to t (route_of_message msg) pid msg
      | Participant.Multicast msg ->
          let kind = route_of_message msg in
          List.iter (fun (pid, _, _) -> send_to t kind pid msg) t.peers
      | Participant.Deliver d ->
          if Trace.enabled () then
            Trace.emit ~node:t.me
              (Deliver
                 {
                   ring = d.d_ring;
                   seq = d.seq;
                   sender = d.pid;
                   service = Types.service_to_string d.service;
                 });
          t.on_deliver d
      | Participant.Deliver_config v ->
          if Trace.enabled () then
            Trace.emit ~node:t.me
              (View_install
                 {
                   ring = v.view_id;
                   members = v.members;
                   transitional = v.transitional;
                 });
          t.on_view v
      | Participant.Arm_timer (timer, delay_ns) ->
          Heap.push t.timers (now_ns () + delay_ns, timer)
      | Participant.Token_loss_detected ->
          (* A bare Node would surface this; a Member handles it itself. *)
          ())
    actions

and fire_due_timers t =
  let rec loop () =
    match Heap.peek t.timers with
    | Some (at, _) when at <= now_ns () ->
        let _, timer = Heap.pop_exn t.timers in
        interpret t (t.participant.fire_timer timer);
        loop ()
    | Some _ | None -> ()
  in
  loop ()

let drain_socket t sock =
  let budget = ref 128 in
  let continue = ref true in
  while !continue && !budget > 0 do
    match Unix.recvfrom sock t.recv_buf 0 (Bytes.length t.recv_buf) [] with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        continue := false
    | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> ()
    | len, _from -> (
        decr budget;
        t.packets_received <- t.packets_received + 1;
        match Message.Pool.decode_sub t.pool t.recv_buf ~pos:0 ~len with
        | msg -> ignore (t.participant.receive msg)
        | exception Codec.Decode_error _ ->
            t.decode_errors <- t.decode_errors + 1)
  done

let run t ~duration_s =
  t.stop_requested <- false;
  (* Real deployments trace in wall-clock nanoseconds. *)
  Trace.set_clock now_ns;
  if not t.started then begin
    t.started <- true;
    interpret t (t.participant.start ())
  end;
  let deadline = now_ns () + int_of_float (duration_s *. 1e9) in
  while (not t.stop_requested) && now_ns () < deadline do
    let timeout_s =
      if t.participant.has_work () then 0.0
      else begin
        let next_timer =
          match Heap.peek t.timers with Some (at, _) -> at | None -> deadline
        in
        let until = min next_timer deadline - now_ns () in
        Float.max 0.0 (float_of_int until /. 1e9)
      end
    in
    let readable, _, _ =
      try Unix.select [ t.data_sock; t.token_sock ] [] [] (Float.min timeout_s 0.05)
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    List.iter (fun sock -> drain_socket t sock) readable;
    fire_due_timers t;
    (* Process a bounded batch so sockets keep draining under load. *)
    let budget = ref 256 in
    let continue = ref true in
    while !continue && !budget > 0 do
      match t.participant.take_next () with
      | None -> continue := false
      | Some msg ->
          decr budget;
          interpret t (t.participant.process msg)
    done
  done
