(** Real-socket runtime: drive a participant over UDP.

    A single-threaded [Unix.select] event loop, matching the paper's
    implementation model (single-threaded daemons, Section I, and separate
    sockets/ports for token and data messages, Section III-D). Logical
    multicast is unicast fan-out to every peer's data port — the fallback
    Spread itself offers where IP-multicast is unavailable; on loopback
    deployments it is the natural choice.

    Routing: tokens and commit tokens travel to the token port, data and
    join messages to the data port; the participant's own priority policy
    (Section III-C) then chooses which queue to serve, exactly as in the
    simulator. *)

open Aring_wire
open Aring_ring

type peer = {
  pid : Types.pid;
  host : string;  (** e.g. "127.0.0.1" *)
  data_port : int;
  token_port : int;
}

type t

val create :
  me:Types.pid ->
  peers:peer list ->
  participant:Participant.t ->
  ?on_deliver:(Message.data -> unit) ->
  ?on_view:(Participant.view -> unit) ->
  unit ->
  t
(** [create ~me ~peers ~participant ()] binds this process's two UDP
    sockets ([peers] must contain an entry for [me]) and prepares the
    loop. Callbacks run inside the loop thread. *)

val run : t -> duration_s:float -> unit
(** Run the event loop for (approximately) the given wall-clock duration.
    Can be called repeatedly. *)

val stop : t -> unit
(** Ask a concurrently running {!run} to return promptly (thread-safe). *)

val close : t -> unit
(** Close the sockets. *)

val packets_received : t -> int
val decode_errors : t -> int

val record_metrics : t -> Aring_obs.Metrics.t -> unit
(** Export the socket counters into a metrics registry under ["udp.*"]
    names. [run] points {!Aring_obs.Trace}'s clock at the wall clock, and
    deliveries / view installs are emitted as trace events whenever a
    sink is installed. *)
