open Aring_wire
module Daemon = Aring_daemon.Daemon
module Trace = Aring_obs.Trace
module Metrics = Aring_obs.Metrics

let group = "kv"

type observation =
  | Applied of { index : int; op : Op.t; value : string option }
  | Read of { key : string; value : string option; token : int; sync : bool }
  | Installed of {
      donor : Types.pid;
      applied : int;
      entries : (string * string) list;
    }
  | Aborted
  | Reset
  | Voted of {
      id : string;
      vote : bool;
      rings : int list;
      parts : Op.mcas_part list;
    }
  | Decided of { id : string; commit : bool }
  | Skipped of { credits : int }

type mcas_status = Mcas_voted of bool | Mcas_decided of bool

type stats = {
  mutable ops_applied : int;
  mutable cas_failures : int;
  mutable rejected_writes : int;
  mutable reads : int;
  mutable sync_reads : int;
  mutable hellos_sent : int;
  mutable snapshots_sent : int;
  mutable installs : int;
  mutable xfer_aborts : int;
  mutable cold_resets : int;
  mutable buffered_peak : int;
  mutable decode_errors : int;
  mutable mcas_votes : int;
  mutable mcas_commits : int;
  mutable mcas_aborts : int;
  mutable mcas_dups : int;
  mutable mcas_wounds : int;
  mutable skips : int;
}

type bug = Bug_none | Bug_skip_apply of { every : int }

(* An incoming snapshot transfer: the donor and accumulating chunk /
   replay-buffer state, all keyed to the view that elected it. *)
type incoming = {
  xf_donor : Types.pid;
  mutable xf_total : int;  (* -1 until the first chunk arrives *)
  mutable xf_received : int;
  mutable xf_entries : (string * string) list;
  mutable xf_applied : int;
  mutable xf_buffer : Op.t list;  (* newest first *)
  mutable xf_meta : (string * int) list;  (* donor's mcas table *)
  mutable xf_park : Op.t list;  (* donor's parked head + queue, in order *)
}

(* An undecided cross-shard cas holding the apply pipeline: later writes
   queue behind it (strict FIFO — no bypass, so every replica of this
   ring applies the same sequence) until the per-node coordinator calls
   {!resolve_mcas}. *)
type mcas_active = { mc_id : string; mc_op : Op.t }

type t = {
  daemon : Daemon.t;
  me : Types.pid;
  session : Daemon.session;
  member_name : string;
  cluster_size : int;
  ring_id : int;  (* which ring of a multi-ring deployment this replica orders on *)
  max_chunk_bytes : int;
  bug : bug;
  mutable bug_writes : int;
  store : (string, string) Hashtbl.t;
  mutable applied_n : int;
  mutable synced_f : bool;
  mutable primary : bool;
  mutable view : Types.ring_id option;
  mutable view_members : Types.pid list;
  hellos : (Types.pid, int * int64 * bool) Hashtbl.t;
  mutable elected : bool;
  mutable xfer_in : incoming option;
  pending : (int, string option -> token:int -> unit) Hashtbl.t;
  mcas_meta : (string, mcas_status) Hashtbl.t;
  mutable mcas_head : mcas_active option;
  mcas_q : Op.t Queue.t;
  mutable next_nonce : int;
  mutable observers : (observation -> unit) list;  (* registration order *)
  stats : stats;
}

let node t = t.me
let ring t = t.ring_id
let applied t = t.applied_n
let synced t = t.synced_f
let in_transfer t = t.xfer_in <> None
let settled t = t.elected && t.xfer_in = None
let mcas_parked t = t.mcas_head <> None

let parked_op t =
  match t.mcas_head with None -> None | Some h -> Some h.mc_op
let mcas_status t id = Hashtbl.find_opt t.mcas_meta id
let store_size t = Hashtbl.length t.store
let pending_sync_reads t = Hashtbl.length t.pending
let stats t = t.stats
let add_observer t f = t.observers <- t.observers @ [ f ]
let observe t obs = List.iter (fun f -> f obs) t.observers

let entries t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.store []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Order-independent store digest: per-entry FNV-1a hashes summed, seeded
   with the entry count. Election compares (applied, digest) pairs, so the
   digest need only separate states that differ in content. *)
let fnv_offset = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L

let fnv_string h s =
  let h = ref h in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

(* Status codes carried by Op.Mcas_table and folded into the digest. *)
let status_code = function
  | Mcas_voted false -> 0
  | Mcas_voted true -> 1
  | Mcas_decided false -> 2
  | Mcas_decided true -> 3

let status_of_code = function
  | 0 -> Mcas_voted false
  | 1 -> Mcas_voted true
  | 2 -> Mcas_decided false
  | _ -> Mcas_decided true

let digest t =
  let base =
    Hashtbl.fold
      (fun k v acc ->
        Int64.add acc
          (fnv_string (fnv_string (fnv_string fnv_offset k) "\x00") v))
      t.store
      (Int64.of_int (Hashtbl.length t.store))
  in
  (* Parked-mcas and vote-table state must distinguish replicas whose
     stores match byte for byte: a park never advances [applied], yet a
     replica holding one diverges from a clean peer the moment the mcas
     resolves. Both folds are no-ops in single-ring deployments. *)
  let base =
    Hashtbl.fold
      (fun id st acc ->
        Int64.add acc
          (fnv_string (fnv_string fnv_offset id)
             (String.make 1 (Char.chr (status_code st + 1)))))
      t.mcas_meta base
  in
  match t.mcas_head with
  | None -> base
  | Some { mc_op; _ } ->
      let h =
        fnv_string fnv_offset (Bytes.unsafe_to_string (Op.encode mc_op))
      in
      let h =
        Queue.fold
          (fun h op -> fnv_string h (Bytes.unsafe_to_string (Op.encode op)))
          h t.mcas_q
      in
      Int64.add base h

let trace_xfer t ~phase ~donor ~applied ~entries =
  if Trace.enabled () then
    match t.view with
    | Some view ->
        Trace.emit ~node:t.me
          (Trace.App_xfer { view; donor; phase; applied; entries })
    | None -> ()

let multicast_op ?service t op =
  Daemon.multicast t.daemon t.session ?service ~groups:[ group ] (Op.encode op)

(* --- op-log execution ------------------------------------------------ *)

let apply_write t op =
  t.applied_n <- t.applied_n + 1;
  let key = Option.get (Op.write_key op) in
  let skip =
    match t.bug with
    | Bug_none -> false
    | Bug_skip_apply { every } ->
        t.bug_writes <- t.bug_writes + 1;
        t.bug_writes mod every = 0
  in
  (match op with
  | Op.Put { key; value } -> if not skip then Hashtbl.replace t.store key value
  | Op.Del { key } -> if not skip then Hashtbl.remove t.store key
  | Op.Cas { key; expect; value } ->
      if Hashtbl.find_opt t.store key = expect then begin
        if not skip then Hashtbl.replace t.store key value
      end
      else t.stats.cas_failures <- t.stats.cas_failures + 1
  | Op.Sync_read _ | Op.Hello _ | Op.Chunk _ | Op.Mcas _ | Op.Mdecide _
  | Op.Skip _ | Op.Mcas_table _ ->
      assert false);
  t.stats.ops_applied <- t.stats.ops_applied + 1;
  let value = Hashtbl.find_opt t.store key in
  observe t (Applied { index = t.applied_n; op; value });
  Aring_obs.Flight.record ~node:t.me ~code:Aring_obs.Flight.ev_apply
    ~a:t.applied_n ~b:(if value = None then 1 else 0) ~c:0 ~d:0;
  Aring_obs.Span.note_applied ~node:t.me;
  if Trace.enabled () then
    Trace.emit ~node:t.me
      (Trace.App_apply { index = t.applied_n; key; deleted = value = None })

let serve_sync t ~nonce ~key =
  t.stats.sync_reads <- t.stats.sync_reads + 1;
  let value = Hashtbl.find_opt t.store key in
  let token = t.applied_n in
  observe t (Read { key; value; token; sync = true });
  if Trace.enabled () then
    Trace.emit ~node:t.me
      (Trace.App_read { key; found = value <> None; token; sync = true });
  match Hashtbl.find_opt t.pending nonce with
  | Some cb ->
      Hashtbl.remove t.pending nonce;
      cb value ~token
  | None -> ()

let buffer_op t xf op =
  xf.xf_buffer <- op :: xf.xf_buffer;
  let depth = List.length xf.xf_buffer in
  if depth > t.stats.buffered_peak then t.stats.buffered_peak <- depth

(* --- cross-shard multi-key cas (Mcas) -------------------------------- *)

let my_part t parts =
  List.find_opt (fun p -> p.Op.mp_ring = t.ring_id) parts

(* Vote = the part's checks evaluated against the store at the copy's
   delivery position — the same position, hence the same store, at every
   replica of this ring, so every replica records the same vote. A
   [wound] vote (wait-die victim, see [deliver_write]) is forced false.
   The replica parks only on a true vote: a false vote already fixes the
   global outcome (abort), so blocking the ring behind it would buy
   nothing. *)
let start_mcas ?(wound = false) t op =
  match op with
  | Op.Mcas { id; parts } -> (
      match Hashtbl.find_opt t.mcas_meta id with
      | Some _ -> t.stats.mcas_dups <- t.stats.mcas_dups + 1
      | None -> (
          match my_part t parts with
          | None -> ()  (* copy reached a ring holding no share of it *)
          | Some p ->
              let vote =
                (not wound)
                && List.for_all
                     (fun (k, x) -> Hashtbl.find_opt t.store k = x)
                     p.Op.mp_checks
              in
              Hashtbl.replace t.mcas_meta id (Mcas_voted vote);
              t.stats.mcas_votes <- t.stats.mcas_votes + 1;
              if wound then t.stats.mcas_wounds <- t.stats.mcas_wounds + 1;
              if vote then t.mcas_head <- Some { mc_id = id; mc_op = op };
              Aring_obs.Flight.record ~node:t.me
                ~code:Aring_obs.Flight.ev_mcas ~a:t.ring_id
                ~b:(if vote then 1 else 0)
                ~c:(if wound then 2 else 0)
                ~d:(List.length parts);
              observe t
                (Voted
                   {
                     id;
                     vote;
                     rings = List.map (fun q -> q.Op.mp_ring) parts;
                     parts;
                   }))
      )
  | _ -> assert false

(* Deliver a write at a synced, untransferring replica: strict FIFO
   through any parked Mcas — while one is undecided, every later write
   queues behind it, so the apply sequence is identical at every replica
   regardless of when the sequenced decision arrives. One exception
   (wait-die): a {e fresh} Mcas delivered while an {e older} one (by id
   order) is parked votes an immediate forced abort instead of queueing.
   Parks only ever wait for younger parks, so cross-ring park cycles —
   two rings parking two cross-shard ops in opposite orders, each
   blocking the vote the other needs — cannot form. The victim's park
   state at the comparison is itself ring-sequenced (parks resolve at
   Mdecide delivery, never from node-local timing), so every replica of
   the ring wounds the same ops. *)
let rec deliver_write t op =
  match t.mcas_head with
  | None -> (
      match op with
      | Op.Mcas _ -> start_mcas t op
      | _ -> apply_write t op)
  | Some head -> (
      match op with
      | Op.Mcas { id; _ }
        when (not (Hashtbl.mem t.mcas_meta id)) && id > head.mc_id ->
          start_mcas ~wound:true t op
      | _ -> Queue.push op t.mcas_q)

and drain_mcas_q t =
  while t.mcas_head = None && not (Queue.is_empty t.mcas_q) do
    deliver_write t (Queue.pop t.mcas_q)
  done

(* Delivery of an {!Op.Mdecide}: the park resolves at this op's position
   in the ring's total order, so park/queue evolution is a pure function
   of the delivered sequence — identical at every replica no matter when
   each node's coordinator learned the votes. *)
let deliver_decide t ~id ~commit =
  match t.mcas_head with
  | Some { mc_id; mc_op } when mc_id = id ->
      Hashtbl.replace t.mcas_meta id (Mcas_decided commit);
      t.mcas_head <- None;
      (if commit then begin
         t.stats.mcas_commits <- t.stats.mcas_commits + 1;
         match mc_op with
         | Op.Mcas { parts; _ } -> (
             match my_part t parts with
             | Some p ->
                 List.iter
                   (fun (key, value) -> apply_write t (Op.Put { key; value }))
                   p.Op.mp_writes
             | None -> ())
         | _ -> ()
       end
       else t.stats.mcas_aborts <- t.stats.mcas_aborts + 1);
      Aring_obs.Flight.record ~node:t.me ~code:Aring_obs.Flight.ev_mcas
        ~a:t.ring_id ~b:(if commit then 3 else 2) ~c:1 ~d:0;
      observe t (Decided { id; commit });
      drain_mcas_q t
  | _ -> (
      (* Not parked here: the copy voted false (no park), was never
         delivered (minority view), or the park was superseded by a
         snapshot install. Record the decision for dedup — the writes,
         if any, reach this replica through the donor's snapshot, never
         out of delivery order. *)
      match Hashtbl.find_opt t.mcas_meta id with
      | Some (Mcas_decided _) -> t.stats.mcas_dups <- t.stats.mcas_dups + 1
      | _ ->
          Hashtbl.replace t.mcas_meta id (Mcas_decided commit);
          (if commit then t.stats.mcas_commits <- t.stats.mcas_commits + 1
           else t.stats.mcas_aborts <- t.stats.mcas_aborts + 1);
          observe t (Decided { id; commit }))

let clear_park t =
  t.mcas_head <- None;
  Queue.clear t.mcas_q

(* --- state transfer -------------------------------------------------- *)

let cold_reset t =
  Hashtbl.reset t.store;
  t.applied_n <- 0;
  t.synced_f <- true;
  Hashtbl.reset t.mcas_meta;
  clear_park t;
  t.stats.cold_resets <- t.stats.cold_resets + 1;
  observe t Reset;
  trace_xfer t ~phase:"reset" ~donor:t.me ~applied:0 ~entries:0

(* Greedy size-bounded chunking of the sorted snapshot; an empty store
   still streams one empty chunk so receivers always see [total] >= 1. *)
let chunk_snapshot t =
  let budget = t.max_chunk_bytes in
  let cost (k, v) = String.length k + String.length v + 10 in
  let chunks, last, _ =
    List.fold_left
      (fun (chunks, cur, bytes) entry ->
        let c = cost entry in
        if cur <> [] && bytes + c > budget then
          (List.rev cur :: chunks, [ entry ], c)
        else (chunks, entry :: cur, bytes + c))
      ([], [], 0) (entries t)
  in
  List.rev (List.rev last :: chunks)

let stream_snapshot t ~view =
  let applied = t.applied_n in
  let chunks = chunk_snapshot t in
  let total = List.length chunks in
  t.stats.snapshots_sent <- t.stats.snapshots_sent + 1;
  trace_xfer t ~phase:"snapshot" ~donor:t.me ~applied
    ~entries:(Hashtbl.length t.store);
  (* Mcas vote/decision table and parked-op state travel ahead of the
     chunks (only when non-empty, so single-ring streams are unchanged):
     the snapshot store excludes an undecided park's effects, and the
     receiver must reconstruct the park rather than lose the op. Streamed
     as multiple size-bounded messages — one table can exceed a switch
     buffer (a parked queue holds every write delivered since the park),
     and an oversized multicast that the network can never carry would
     stall the ring's delivery for every other member. Receivers append
     table messages in stream order, so the split is invisible. *)
  let meta =
    Hashtbl.fold (fun id st acc -> (id, status_code st) :: acc) t.mcas_meta []
    |> List.sort compare
  in
  let parked =
    match t.mcas_head with
    | None -> []
    | Some { mc_op; _ } ->
        Op.encode mc_op
        :: List.rev
             (Queue.fold (fun acc op -> Op.encode op :: acc) [] t.mcas_q)
  in
  let table_batches =
    let budget = t.max_chunk_bytes in
    let meta_cost (id, _) = String.length id + 12 in
    let park_cost b = Bytes.length b + 8 in
    let flush batches entries parked =
      if entries = [] && parked = [] then batches
      else (List.rev entries, List.rev parked) :: batches
    in
    let batches, entries, parked_acc, _ =
      List.fold_left
        (fun (batches, es, ps, bytes) e ->
          let c = meta_cost e in
          if (es <> [] || ps <> []) && bytes + c > budget then
            (flush batches es ps, [ e ], [], c)
          else (batches, e :: es, ps, bytes + c))
        ([], [], [], 0) meta
    in
    let batches, entries, parked_acc, _ =
      List.fold_left
        (fun (batches, es, ps, bytes) b ->
          let c = park_cost b in
          if (es <> [] || ps <> []) && bytes + c > budget then
            (flush batches es ps, [], [ b ], c)
          else (batches, es, b :: ps, bytes + c))
        (batches, entries, parked_acc,
         List.fold_left (fun a e -> a + meta_cost e) 0 entries)
        parked
    in
    List.rev (flush batches entries parked_acc)
  in
  List.iter
    (fun (entries, parked) ->
      multicast_op t
        (Op.Mcas_table { view; donor = t.me; entries; parked }))
    table_batches;
  List.iteri
    (fun index entries ->
      multicast_op t
        (Op.Chunk { view; donor = t.me; index; total; applied; entries }))
    chunks

let elect t ~view =
  t.elected <- true;
  let candidates =
    List.filter_map
      (fun m ->
        match Hashtbl.find_opt t.hellos m with
        | Some (a, d, true) -> Some (m, a, d)
        | Some (_, _, false) | None -> None)
      t.view_members
  in
  match candidates with
  | [] -> cold_reset t
  | first :: rest ->
      let donor, d_applied, d_digest =
        List.fold_left
          (fun (bm, ba, bd) (m, a, d) ->
            if a > ba || (a = ba && m < bm) then (m, a, d) else (bm, ba, bd))
          first rest
      in
      trace_xfer t ~phase:"elect" ~donor ~applied:d_applied ~entries:0;
      let differs m =
        match Hashtbl.find_opt t.hellos m with
        | Some (a, d, s) -> (not s) || a <> d_applied || d <> d_digest
        | None -> true
      in
      if t.me = donor then begin
        if List.exists differs t.view_members then stream_snapshot t ~view
      end
      else if differs t.me then begin
        t.synced_f <- false;
        t.xfer_in <-
          Some
            {
              xf_donor = donor;
              xf_total = -1;
              xf_received = 0;
              xf_entries = [];
              xf_applied = 0;
              xf_buffer = [];
              xf_meta = [];
              xf_park = [];
            }
      end

let install t xf =
  Hashtbl.reset t.store;
  List.iter (fun (k, v) -> Hashtbl.replace t.store k v) xf.xf_entries;
  t.applied_n <- xf.xf_applied;
  t.synced_f <- true;
  t.xfer_in <- None;
  t.stats.installs <- t.stats.installs + 1;
  (* Adopt the donor's mcas state wholesale: the snapshot rebases this
     replica onto the donor's log prefix, so the donor's vote table and
     park (not any stale local ones) are the matching cross-shard
     state. *)
  Hashtbl.reset t.mcas_meta;
  List.iter
    (fun (id, code) -> Hashtbl.replace t.mcas_meta id (status_of_code code))
    xf.xf_meta;
  clear_park t;
  (match xf.xf_park with
  | [] -> ()
  | head :: queued ->
      (match head with
      | Op.Mcas { id; _ } -> t.mcas_head <- Some { mc_id = id; mc_op = head }
      | _ -> ());
      List.iter (fun op -> Queue.push op t.mcas_q) queued);
  observe t
    (Installed
       { donor = xf.xf_donor; applied = xf.xf_applied; entries = xf.xf_entries });
  trace_xfer t ~phase:"install" ~donor:xf.xf_donor ~applied:xf.xf_applied
    ~entries:(List.length xf.xf_entries);
  (* Replay ops delivered (and accepted) during the transfer, in order —
     through the parking-aware path so they queue behind a restored
     park. *)
  List.iter
    (fun op ->
      match op with
      | Op.Put _ | Op.Del _ | Op.Cas _ | Op.Mcas _ -> deliver_write t op
      | Op.Mdecide { id; commit } -> deliver_decide t ~id ~commit
      | Op.Sync_read { nonce; key; _ } -> serve_sync t ~nonce ~key
      | Op.Skip { credits } ->
          t.stats.skips <- t.stats.skips + 1;
          observe t (Skipped { credits })
      | Op.Hello _ | Op.Chunk _ | Op.Mcas_table _ -> assert false)
    (List.rev xf.xf_buffer)

let abort_transfer t =
  match t.xfer_in with
  | None -> ()
  | Some xf ->
      t.xfer_in <- None;
      t.stats.xfer_aborts <- t.stats.xfer_aborts + 1;
      observe t Aborted;
      trace_xfer t ~phase:"abort" ~donor:xf.xf_donor ~applied:t.applied_n
        ~entries:0

(* --- delivery -------------------------------------------------------- *)

let handle_hello t (h : Op.t) =
  match (h, t.view) with
  | Op.Hello { view; daemon; applied; digest; synced }, Some v
    when view = v && not t.elected ->
      Hashtbl.replace t.hellos daemon (applied, digest, synced);
      if List.for_all (fun m -> Hashtbl.mem t.hellos m) t.view_members then
        elect t ~view:v
  | _ -> ()

let handle_chunk t (c : Op.t) =
  match (c, t.xfer_in, t.view) with
  | ( Op.Chunk { view; donor; total; applied; entries; _ },
      Some xf,
      Some v )
    when view = v && donor = xf.xf_donor ->
      if xf.xf_total < 0 then xf.xf_total <- total;
      xf.xf_received <- xf.xf_received + 1;
      xf.xf_entries <- List.rev_append entries xf.xf_entries;
      xf.xf_applied <- applied;
      if xf.xf_received >= xf.xf_total then install t xf
  | _ -> ()

let handle_table t (m : Op.t) =
  match (m, t.xfer_in, t.view) with
  | Op.Mcas_table { view; donor; entries; parked }, Some xf, Some v
    when view = v && donor = xf.xf_donor ->
      (* Append: the donor streams the table as size-bounded batches, in
         order, ahead of the store chunks. *)
      xf.xf_meta <- xf.xf_meta @ entries;
      xf.xf_park <- xf.xf_park @ List.map Op.decode parked
  | _ -> ()

let handle_op t op =
  match op with
  | Op.Hello _ -> handle_hello t op
  | Op.Chunk _ -> handle_chunk t op
  | Op.Mcas_table _ -> handle_table t op
  | Op.Skip { credits } -> (
      (* Merge liveness hint: no store effect, no log position, not
         gated on primary — but buffered during a transfer so the
         observation stream keeps every replica's per-ring item/skip
         sequence identical. *)
      match t.xfer_in with
      | Some xf -> buffer_op t xf op
      | None ->
          t.stats.skips <- t.stats.skips + 1;
          observe t (Skipped { credits }))
  | Op.Sync_read { reader; nonce; key } ->
      if reader = t.member_name then begin
        match t.xfer_in with
        | Some xf -> buffer_op t xf op
        | None -> serve_sync t ~nonce ~key
      end
  | Op.Put _ | Op.Del _ | Op.Cas _ | Op.Mcas _ | Op.Mdecide _ ->
      (* Primary-component gate: every member of the delivering
         configuration makes the same decision, so an op executes either
         at all of them or at none. (The daemon routes group traffic to a
         session from its local join request onward, so every view
         member's replica sees the same per-view op stream — including
         ops ordered before its re-announced Join lands.) *)
      if not t.primary then
        t.stats.rejected_writes <- t.stats.rejected_writes + 1
      else begin
        match t.xfer_in with
        | Some xf -> buffer_op t xf op
        | None ->
            (* Unsynced with no transfer running (between an abort and the
               next election): the pending install supersedes this state,
               so skip the apply rather than corrupt the counters. *)
            if t.synced_f then (
              match op with
              | Op.Mdecide { id; commit } -> deliver_decide t ~id ~commit
              | _ -> deliver_write t op)
      end

let on_message t ~sender:_ ~groups:_ _service payload =
  match Op.decode payload with
  | op -> handle_op t op
  | exception Codec.Decode_error _ ->
      t.stats.decode_errors <- t.stats.decode_errors + 1

let on_view t (v : Aring_ring.Participant.view) =
  t.primary <- 2 * List.length v.members > t.cluster_size;
  if not v.transitional then begin
    (* A regular configuration mid-transfer means the transfer's view is
       gone: discard and let this view's Hello round re-elect. *)
    abort_transfer t;
    t.view <- Some v.view_id;
    t.view_members <- v.members;
    Hashtbl.reset t.hellos;
    t.elected <- false;
    t.stats.hellos_sent <- t.stats.hellos_sent + 1;
    trace_xfer t ~phase:"hello" ~donor:t.me ~applied:t.applied_n
      ~entries:(Hashtbl.length t.store);
    multicast_op t
      (Op.Hello
         {
           view = v.view_id;
           daemon = t.me;
           applied = t.applied_n;
           digest = digest t;
           synced = t.synced_f;
         })
  end

(* --- client API ------------------------------------------------------ *)

let put t ~key ~value = multicast_op t (Op.Put { key; value })
let del t ~key = multicast_op t (Op.Del { key })

let cas t ~key ~expect ~value = multicast_op t (Op.Cas { key; expect; value })

let submit_mcas t ~id ~parts = multicast_op t (Op.Mcas { id; parts })
let submit_decide t ~id ~commit = multicast_op t (Op.Mdecide { id; commit })
let skip t ~credits = multicast_op t (Op.Skip { credits })

let read t ~key =
  t.stats.reads <- t.stats.reads + 1;
  let value = Hashtbl.find_opt t.store key in
  let token = t.applied_n in
  observe t (Read { key; value; token; sync = false });
  if Trace.enabled () then
    Trace.emit ~node:t.me
      (Trace.App_read { key; found = value <> None; token; sync = false });
  (value, token)

let sync_read t ~key ~on_result =
  let nonce = t.next_nonce in
  t.next_nonce <- nonce + 1;
  Hashtbl.replace t.pending nonce on_result;
  multicast_op ~service:Types.Safe t
    (Op.Sync_read { reader = t.member_name; nonce; key })

let create ?(bug = Bug_none) ?(max_chunk_bytes = 4096) ?(session_name = "kv")
    ?(ring = 0) ~cluster_size ~daemon () =
  if cluster_size < 1 then invalid_arg "Kv.create: cluster_size < 1";
  let tref = ref None in
  let callbacks =
    {
      Daemon.on_message =
        (fun ~sender ~groups service payload ->
          match !tref with
          | Some t -> on_message t ~sender ~groups service payload
          | None -> ());
      on_group_view = (fun ~group:_ ~members:_ -> ());
    }
  in
  let session = Daemon.connect daemon ~name:session_name callbacks in
  let t =
    {
      daemon;
      me = Daemon.pid daemon;
      session;
      member_name = Daemon.session_member_name daemon session;
      cluster_size;
      ring_id = ring;
      max_chunk_bytes;
      bug;
      bug_writes = 0;
      store = Hashtbl.create 64;
      applied_n = 0;
      synced_f = true;
      primary = true;
      view = None;
      view_members = [];
      hellos = Hashtbl.create 8;
      elected = false;
      xfer_in = None;
      pending = Hashtbl.create 8;
      mcas_meta = Hashtbl.create 8;
      mcas_head = None;
      mcas_q = Queue.create ();
      next_nonce = 0;
      observers = [];
      stats =
        {
          ops_applied = 0;
          cas_failures = 0;
          rejected_writes = 0;
          reads = 0;
          sync_reads = 0;
          hellos_sent = 0;
          snapshots_sent = 0;
          installs = 0;
          xfer_aborts = 0;
          cold_resets = 0;
          buffered_peak = 0;
          decode_errors = 0;
          mcas_votes = 0;
          mcas_wounds = 0;
          mcas_commits = 0;
          mcas_aborts = 0;
          mcas_dups = 0;
          skips = 0;
        };
    }
  in
  tref := Some t;
  Daemon.set_view_handler daemon (fun v -> on_view t v);
  Daemon.join daemon session group;
  t

let preload t entries =
  if t.applied_n > 0 || t.view <> None then
    invalid_arg "Kv.preload: replica already running";
  Hashtbl.reset t.store;
  List.iter (fun (k, v) -> Hashtbl.replace t.store k v) entries;
  (* Report as a self-installed snapshot so any attached oracle's shadow
     starts from the same contents. *)
  observe t (Installed { donor = t.me; applied = 0; entries })

let record_metrics ?(prefix = "") t reg =
  let c name v = Metrics.add (Metrics.counter reg (prefix ^ name)) v in
  let g name v = Metrics.set (Metrics.gauge reg (prefix ^ name)) v in
  c "app.ops_applied" t.stats.ops_applied;
  c "app.cas_failures" t.stats.cas_failures;
  c "app.rejected_writes" t.stats.rejected_writes;
  c "app.reads" t.stats.reads;
  c "app.sync_reads" t.stats.sync_reads;
  c "app.hellos_sent" t.stats.hellos_sent;
  c "app.snapshots_sent" t.stats.snapshots_sent;
  c "app.installs" t.stats.installs;
  c "app.xfer_aborts" t.stats.xfer_aborts;
  c "app.cold_resets" t.stats.cold_resets;
  c "app.decode_errors" t.stats.decode_errors;
  c "app.mcas_votes" t.stats.mcas_votes;
  c "app.mcas_commits" t.stats.mcas_commits;
  c "app.mcas_aborts" t.stats.mcas_aborts;
  c "app.mcas_dups" t.stats.mcas_dups;
  c "app.skips" t.stats.skips;
  g "app.store_size" (float_of_int (Hashtbl.length t.store));
  g "app.applied" (float_of_int t.applied_n);
  g "app.buffered_peak" (float_of_int t.stats.buffered_peak)
