open Aring_wire
module Daemon = Aring_daemon.Daemon
module Trace = Aring_obs.Trace
module Metrics = Aring_obs.Metrics

let group = "kv"

type observation =
  | Applied of { index : int; op : Op.t; value : string option }
  | Read of { key : string; value : string option; token : int; sync : bool }
  | Installed of {
      donor : Types.pid;
      applied : int;
      entries : (string * string) list;
    }
  | Aborted
  | Reset

type stats = {
  mutable ops_applied : int;
  mutable cas_failures : int;
  mutable rejected_writes : int;
  mutable reads : int;
  mutable sync_reads : int;
  mutable hellos_sent : int;
  mutable snapshots_sent : int;
  mutable installs : int;
  mutable xfer_aborts : int;
  mutable cold_resets : int;
  mutable buffered_peak : int;
  mutable decode_errors : int;
}

type bug = Bug_none | Bug_skip_apply of { every : int }

(* An incoming snapshot transfer: the donor and accumulating chunk /
   replay-buffer state, all keyed to the view that elected it. *)
type incoming = {
  xf_donor : Types.pid;
  mutable xf_total : int;  (* -1 until the first chunk arrives *)
  mutable xf_received : int;
  mutable xf_entries : (string * string) list;
  mutable xf_applied : int;
  mutable xf_buffer : Op.t list;  (* newest first *)
}

type t = {
  daemon : Daemon.t;
  me : Types.pid;
  session : Daemon.session;
  member_name : string;
  cluster_size : int;
  max_chunk_bytes : int;
  bug : bug;
  mutable bug_writes : int;
  store : (string, string) Hashtbl.t;
  mutable applied_n : int;
  mutable synced_f : bool;
  mutable primary : bool;
  mutable view : Types.ring_id option;
  mutable view_members : Types.pid list;
  hellos : (Types.pid, int * int64 * bool) Hashtbl.t;
  mutable elected : bool;
  mutable xfer_in : incoming option;
  pending : (int, string option -> token:int -> unit) Hashtbl.t;
  mutable next_nonce : int;
  mutable observers : (observation -> unit) list;  (* registration order *)
  stats : stats;
}

let node t = t.me
let applied t = t.applied_n
let synced t = t.synced_f
let in_transfer t = t.xfer_in <> None
let settled t = t.elected && t.xfer_in = None
let store_size t = Hashtbl.length t.store
let pending_sync_reads t = Hashtbl.length t.pending
let stats t = t.stats
let add_observer t f = t.observers <- t.observers @ [ f ]
let observe t obs = List.iter (fun f -> f obs) t.observers

let entries t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.store []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Order-independent store digest: per-entry FNV-1a hashes summed, seeded
   with the entry count. Election compares (applied, digest) pairs, so the
   digest need only separate states that differ in content. *)
let fnv_offset = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L

let fnv_string h s =
  let h = ref h in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

let digest t =
  Hashtbl.fold
    (fun k v acc ->
      Int64.add acc (fnv_string (fnv_string (fnv_string fnv_offset k) "\x00") v))
    t.store
    (Int64.of_int (Hashtbl.length t.store))

let trace_xfer t ~phase ~donor ~applied ~entries =
  if Trace.enabled () then
    match t.view with
    | Some view ->
        Trace.emit ~node:t.me
          (Trace.App_xfer { view; donor; phase; applied; entries })
    | None -> ()

let multicast_op ?service t op =
  Daemon.multicast t.daemon t.session ?service ~groups:[ group ] (Op.encode op)

(* --- op-log execution ------------------------------------------------ *)

let apply_write t op =
  t.applied_n <- t.applied_n + 1;
  let key = Option.get (Op.write_key op) in
  let skip =
    match t.bug with
    | Bug_none -> false
    | Bug_skip_apply { every } ->
        t.bug_writes <- t.bug_writes + 1;
        t.bug_writes mod every = 0
  in
  (match op with
  | Op.Put { key; value } -> if not skip then Hashtbl.replace t.store key value
  | Op.Del { key } -> if not skip then Hashtbl.remove t.store key
  | Op.Cas { key; expect; value } ->
      if Hashtbl.find_opt t.store key = expect then begin
        if not skip then Hashtbl.replace t.store key value
      end
      else t.stats.cas_failures <- t.stats.cas_failures + 1
  | Op.Sync_read _ | Op.Hello _ | Op.Chunk _ -> assert false);
  t.stats.ops_applied <- t.stats.ops_applied + 1;
  let value = Hashtbl.find_opt t.store key in
  observe t (Applied { index = t.applied_n; op; value });
  Aring_obs.Flight.record ~node:t.me ~code:Aring_obs.Flight.ev_apply
    ~a:t.applied_n ~b:(if value = None then 1 else 0) ~c:0 ~d:0;
  Aring_obs.Span.note_applied ~node:t.me;
  if Trace.enabled () then
    Trace.emit ~node:t.me
      (Trace.App_apply { index = t.applied_n; key; deleted = value = None })

let serve_sync t ~nonce ~key =
  t.stats.sync_reads <- t.stats.sync_reads + 1;
  let value = Hashtbl.find_opt t.store key in
  let token = t.applied_n in
  observe t (Read { key; value; token; sync = true });
  if Trace.enabled () then
    Trace.emit ~node:t.me
      (Trace.App_read { key; found = value <> None; token; sync = true });
  match Hashtbl.find_opt t.pending nonce with
  | Some cb ->
      Hashtbl.remove t.pending nonce;
      cb value ~token
  | None -> ()

let buffer_op t xf op =
  xf.xf_buffer <- op :: xf.xf_buffer;
  let depth = List.length xf.xf_buffer in
  if depth > t.stats.buffered_peak then t.stats.buffered_peak <- depth

(* --- state transfer -------------------------------------------------- *)

let cold_reset t =
  Hashtbl.reset t.store;
  t.applied_n <- 0;
  t.synced_f <- true;
  t.stats.cold_resets <- t.stats.cold_resets + 1;
  observe t Reset;
  trace_xfer t ~phase:"reset" ~donor:t.me ~applied:0 ~entries:0

(* Greedy size-bounded chunking of the sorted snapshot; an empty store
   still streams one empty chunk so receivers always see [total] >= 1. *)
let chunk_snapshot t =
  let budget = t.max_chunk_bytes in
  let cost (k, v) = String.length k + String.length v + 10 in
  let chunks, last, _ =
    List.fold_left
      (fun (chunks, cur, bytes) entry ->
        let c = cost entry in
        if cur <> [] && bytes + c > budget then
          (List.rev cur :: chunks, [ entry ], c)
        else (chunks, entry :: cur, bytes + c))
      ([], [], 0) (entries t)
  in
  List.rev (List.rev last :: chunks)

let stream_snapshot t ~view =
  let applied = t.applied_n in
  let chunks = chunk_snapshot t in
  let total = List.length chunks in
  t.stats.snapshots_sent <- t.stats.snapshots_sent + 1;
  trace_xfer t ~phase:"snapshot" ~donor:t.me ~applied
    ~entries:(Hashtbl.length t.store);
  List.iteri
    (fun index entries ->
      multicast_op t
        (Op.Chunk { view; donor = t.me; index; total; applied; entries }))
    chunks

let elect t ~view =
  t.elected <- true;
  let candidates =
    List.filter_map
      (fun m ->
        match Hashtbl.find_opt t.hellos m with
        | Some (a, d, true) -> Some (m, a, d)
        | Some (_, _, false) | None -> None)
      t.view_members
  in
  match candidates with
  | [] -> cold_reset t
  | first :: rest ->
      let donor, d_applied, d_digest =
        List.fold_left
          (fun (bm, ba, bd) (m, a, d) ->
            if a > ba || (a = ba && m < bm) then (m, a, d) else (bm, ba, bd))
          first rest
      in
      trace_xfer t ~phase:"elect" ~donor ~applied:d_applied ~entries:0;
      let differs m =
        match Hashtbl.find_opt t.hellos m with
        | Some (a, d, s) -> (not s) || a <> d_applied || d <> d_digest
        | None -> true
      in
      if t.me = donor then begin
        if List.exists differs t.view_members then stream_snapshot t ~view
      end
      else if differs t.me then begin
        t.synced_f <- false;
        t.xfer_in <-
          Some
            {
              xf_donor = donor;
              xf_total = -1;
              xf_received = 0;
              xf_entries = [];
              xf_applied = 0;
              xf_buffer = [];
            }
      end

let install t xf =
  Hashtbl.reset t.store;
  List.iter (fun (k, v) -> Hashtbl.replace t.store k v) xf.xf_entries;
  t.applied_n <- xf.xf_applied;
  t.synced_f <- true;
  t.xfer_in <- None;
  t.stats.installs <- t.stats.installs + 1;
  observe t
    (Installed
       { donor = xf.xf_donor; applied = xf.xf_applied; entries = xf.xf_entries });
  trace_xfer t ~phase:"install" ~donor:xf.xf_donor ~applied:xf.xf_applied
    ~entries:(List.length xf.xf_entries);
  (* Replay ops delivered (and accepted) during the transfer, in order. *)
  List.iter
    (fun op ->
      match op with
      | Op.Put _ | Op.Del _ | Op.Cas _ -> apply_write t op
      | Op.Sync_read { nonce; key; _ } -> serve_sync t ~nonce ~key
      | Op.Hello _ | Op.Chunk _ -> assert false)
    (List.rev xf.xf_buffer)

let abort_transfer t =
  match t.xfer_in with
  | None -> ()
  | Some xf ->
      t.xfer_in <- None;
      t.stats.xfer_aborts <- t.stats.xfer_aborts + 1;
      observe t Aborted;
      trace_xfer t ~phase:"abort" ~donor:xf.xf_donor ~applied:t.applied_n
        ~entries:0

(* --- delivery -------------------------------------------------------- *)

let handle_hello t (h : Op.t) =
  match (h, t.view) with
  | Op.Hello { view; daemon; applied; digest; synced }, Some v
    when view = v && not t.elected ->
      Hashtbl.replace t.hellos daemon (applied, digest, synced);
      if List.for_all (fun m -> Hashtbl.mem t.hellos m) t.view_members then
        elect t ~view:v
  | _ -> ()

let handle_chunk t (c : Op.t) =
  match (c, t.xfer_in, t.view) with
  | ( Op.Chunk { view; donor; total; applied; entries; _ },
      Some xf,
      Some v )
    when view = v && donor = xf.xf_donor ->
      if xf.xf_total < 0 then xf.xf_total <- total;
      xf.xf_received <- xf.xf_received + 1;
      xf.xf_entries <- List.rev_append entries xf.xf_entries;
      xf.xf_applied <- applied;
      if xf.xf_received >= xf.xf_total then install t xf
  | _ -> ()

let handle_op t op =
  match op with
  | Op.Hello _ -> handle_hello t op
  | Op.Chunk _ -> handle_chunk t op
  | Op.Sync_read { reader; nonce; key } ->
      if reader = t.member_name then begin
        match t.xfer_in with
        | Some xf -> buffer_op t xf op
        | None -> serve_sync t ~nonce ~key
      end
  | Op.Put _ | Op.Del _ | Op.Cas _ ->
      (* Primary-component gate: every member of the delivering
         configuration makes the same decision, so an op executes either
         at all of them or at none. (The daemon routes group traffic to a
         session from its local join request onward, so every view
         member's replica sees the same per-view op stream — including
         ops ordered before its re-announced Join lands.) *)
      if not t.primary then
        t.stats.rejected_writes <- t.stats.rejected_writes + 1
      else begin
        match t.xfer_in with
        | Some xf -> buffer_op t xf op
        | None ->
            (* Unsynced with no transfer running (between an abort and the
               next election): the pending install supersedes this state,
               so skip the apply rather than corrupt the counters. *)
            if t.synced_f then apply_write t op
      end

let on_message t ~sender:_ ~groups:_ _service payload =
  match Op.decode payload with
  | op -> handle_op t op
  | exception Codec.Decode_error _ ->
      t.stats.decode_errors <- t.stats.decode_errors + 1

let on_view t (v : Aring_ring.Participant.view) =
  t.primary <- 2 * List.length v.members > t.cluster_size;
  if not v.transitional then begin
    (* A regular configuration mid-transfer means the transfer's view is
       gone: discard and let this view's Hello round re-elect. *)
    abort_transfer t;
    t.view <- Some v.view_id;
    t.view_members <- v.members;
    Hashtbl.reset t.hellos;
    t.elected <- false;
    t.stats.hellos_sent <- t.stats.hellos_sent + 1;
    trace_xfer t ~phase:"hello" ~donor:t.me ~applied:t.applied_n
      ~entries:(Hashtbl.length t.store);
    multicast_op t
      (Op.Hello
         {
           view = v.view_id;
           daemon = t.me;
           applied = t.applied_n;
           digest = digest t;
           synced = t.synced_f;
         })
  end

(* --- client API ------------------------------------------------------ *)

let put t ~key ~value = multicast_op t (Op.Put { key; value })
let del t ~key = multicast_op t (Op.Del { key })

let cas t ~key ~expect ~value = multicast_op t (Op.Cas { key; expect; value })

let read t ~key =
  t.stats.reads <- t.stats.reads + 1;
  let value = Hashtbl.find_opt t.store key in
  let token = t.applied_n in
  observe t (Read { key; value; token; sync = false });
  if Trace.enabled () then
    Trace.emit ~node:t.me
      (Trace.App_read { key; found = value <> None; token; sync = false });
  (value, token)

let sync_read t ~key ~on_result =
  let nonce = t.next_nonce in
  t.next_nonce <- nonce + 1;
  Hashtbl.replace t.pending nonce on_result;
  multicast_op ~service:Types.Safe t
    (Op.Sync_read { reader = t.member_name; nonce; key })

let create ?(bug = Bug_none) ?(max_chunk_bytes = 4096) ?(session_name = "kv")
    ~cluster_size ~daemon () =
  if cluster_size < 1 then invalid_arg "Kv.create: cluster_size < 1";
  let tref = ref None in
  let callbacks =
    {
      Daemon.on_message =
        (fun ~sender ~groups service payload ->
          match !tref with
          | Some t -> on_message t ~sender ~groups service payload
          | None -> ());
      on_group_view = (fun ~group:_ ~members:_ -> ());
    }
  in
  let session = Daemon.connect daemon ~name:session_name callbacks in
  let t =
    {
      daemon;
      me = Daemon.pid daemon;
      session;
      member_name = Daemon.session_member_name daemon session;
      cluster_size;
      max_chunk_bytes;
      bug;
      bug_writes = 0;
      store = Hashtbl.create 64;
      applied_n = 0;
      synced_f = true;
      primary = true;
      view = None;
      view_members = [];
      hellos = Hashtbl.create 8;
      elected = false;
      xfer_in = None;
      pending = Hashtbl.create 8;
      next_nonce = 0;
      observers = [];
      stats =
        {
          ops_applied = 0;
          cas_failures = 0;
          rejected_writes = 0;
          reads = 0;
          sync_reads = 0;
          hellos_sent = 0;
          snapshots_sent = 0;
          installs = 0;
          xfer_aborts = 0;
          cold_resets = 0;
          buffered_peak = 0;
          decode_errors = 0;
        };
    }
  in
  tref := Some t;
  Daemon.set_view_handler daemon (fun v -> on_view t v);
  Daemon.join daemon session group;
  t

let preload t entries =
  if t.applied_n > 0 || t.view <> None then
    invalid_arg "Kv.preload: replica already running";
  Hashtbl.reset t.store;
  List.iter (fun (k, v) -> Hashtbl.replace t.store k v) entries;
  (* Report as a self-installed snapshot so any attached oracle's shadow
     starts from the same contents. *)
  observe t (Installed { donor = t.me; applied = 0; entries })

let record_metrics t reg =
  let c name v = Metrics.add (Metrics.counter reg name) v in
  c "app.ops_applied" t.stats.ops_applied;
  c "app.cas_failures" t.stats.cas_failures;
  c "app.rejected_writes" t.stats.rejected_writes;
  c "app.reads" t.stats.reads;
  c "app.sync_reads" t.stats.sync_reads;
  c "app.hellos_sent" t.stats.hellos_sent;
  c "app.snapshots_sent" t.stats.snapshots_sent;
  c "app.installs" t.stats.installs;
  c "app.xfer_aborts" t.stats.xfer_aborts;
  c "app.cold_resets" t.stats.cold_resets;
  c "app.decode_errors" t.stats.decode_errors;
  Metrics.set (Metrics.gauge reg "app.store_size")
    (float_of_int (Hashtbl.length t.store));
  Metrics.set (Metrics.gauge reg "app.applied") (float_of_int t.applied_n);
  Metrics.set
    (Metrics.gauge reg "app.buffered_peak")
    (float_of_int t.stats.buffered_peak)
