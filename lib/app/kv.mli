(** A deterministic replicated key-value store on the Accelerated Ring.

    One {!t} is a KV {e replica}: a daemon client session that multicasts
    writes ([Put]/[Del]/[Cas]) with Agreed delivery and applies the
    resulting totally-ordered op log to a local store. Reads are served
    locally and return a consistency token (the replica's applied-prefix
    length); {!sync_read} instead rides a Safe-delivered marker through
    the ring, so the answer reflects every write stably ordered before
    the marker.

    {2 Primary component}

    Replicas are created with the cluster size and apply client writes
    only while their current configuration holds a strict majority of the
    cluster ([2*|members| > cluster_size]). Writes delivered in a
    non-primary (minority) configuration are rejected by every member of
    that configuration — the same deterministic decision everywhere, so
    components never diverge on which ops executed. Minority replicas
    keep serving (stale) local reads from their frozen store.

    {2 View-synchronous state transfer}

    After every regular configuration, each replica multicasts an
    Agreed {!Op.Hello} announcing its [(applied, digest, synced)] state.
    Once Hellos from {e all} view members have been delivered — the same
    point of the total order at every replica — each replica runs the
    same deterministic election: the donor is the synced member with the
    highest applied count (ties broken by lowest pid). Members whose
    announced state differs from the donor's become receivers; the donor
    snapshots its store at that instant and streams it as chunked
    ordinary multicasts. Receivers buffer subsequently delivered writes,
    install the snapshot when the last chunk arrives, then replay the
    buffer — ending byte-identical to the donor. A new regular
    configuration delivered mid-transfer aborts and restarts the round,
    which covers donor crash, receiver crash and partitions healing
    mid-transfer. If no synced member exists, every member deterministically
    cold-resets to the empty store.

    One replica per daemon; all replicas join one group. *)

open Aring_wire

type t

(** Everything a replica observably does, reported to observers in
    execution order — the feed the consistency {!Oracle} checks. *)
type observation =
  | Applied of { index : int; op : Op.t; value : string option }
      (** Write [index] of the op log executed; [value] is the store's
          value for the written key {e after} the apply ([None] =
          absent), i.e. ground truth for an oracle's shadow
          comparison. *)
  | Read of { key : string; value : string option; token : int; sync : bool }
  | Installed of {
      donor : Types.pid;
      applied : int;
      entries : (string * string) list;
    }  (** A snapshot replaced this replica's store. *)
  | Aborted  (** An in-flight incoming transfer was discarded. *)
  | Reset  (** Cold restart: no synced member existed at an election. *)

type stats = {
  mutable ops_applied : int;
  mutable cas_failures : int;  (** Cas delivered whose expectation failed. *)
  mutable rejected_writes : int;  (** Writes delivered in a minority view. *)
  mutable reads : int;
  mutable sync_reads : int;
  mutable hellos_sent : int;
  mutable snapshots_sent : int;
  mutable installs : int;
  mutable xfer_aborts : int;
  mutable cold_resets : int;
  mutable buffered_peak : int;  (** Max ops buffered during one transfer. *)
  mutable decode_errors : int;
}

(** Fault injection for the fuzzer's seeded-bug self-test. *)
type bug =
  | Bug_none
  | Bug_skip_apply of { every : int }
      (** Every [every]-th write at this replica mutates nothing (the
          log position is still consumed) — a classic skipped-apply /
          stale-state bug an end-to-end oracle must catch. *)

val group : string
(** The group every replica joins (["kv"]). *)

val create :
  ?bug:bug ->
  ?max_chunk_bytes:int ->
  ?session_name:string ->
  cluster_size:int ->
  daemon:Aring_daemon.Daemon.t ->
  unit ->
  t
(** Attach a replica to [daemon]: connects a client session, joins
    {!group}, and installs the daemon's view hook (so creating a second
    replica on one daemon is not supported). [cluster_size] is the full
    ring size, used for the primary-component majority test.
    [max_chunk_bytes] bounds the encoded size of one snapshot chunk
    (default 4096). *)

val node : t -> Types.pid
(** The hosting daemon's pid — the replica's identity in observations,
    trace events and elections. *)

(** {1 Client operations} *)

val put : t -> key:string -> value:string -> unit
val del : t -> key:string -> unit

val cas : t -> key:string -> expect:string option -> value:string -> unit
(** Applies iff the value at delivery time equals [expect]; failed CAS
    still consumes its op-log position. *)

val read : t -> key:string -> string option * int
(** Local read: [(value, token)] where [token] is the replica's applied
    op count — compare tokens to order reads across replicas. *)

val sync_read : t -> key:string -> on_result:(string option -> token:int -> unit) -> unit
(** Safe-ordered read: multicasts a marker with Safe delivery and serves
    the read when the marker comes back, i.e. after every write stably
    ordered before it. [on_result] fires at most once. *)

(** {1 Introspection} *)

val applied : t -> int
val synced : t -> bool

val in_transfer : t -> bool
(** True while an incoming snapshot transfer is active. *)

val settled : t -> bool
(** No incoming transfer active and no pending election with this
    replica as a receiver candidate — the quiescence test fuzz
    convergence uses alongside digest equality. *)

val store_size : t -> int
val digest : t -> int64
(** Order-independent FNV-1a digest of the store contents. *)

val entries : t -> (string * string) list
(** Store contents sorted by key. *)

val pending_sync_reads : t -> int
val stats : t -> stats

val add_observer : t -> (observation -> unit) -> unit
(** Observers run in registration order at each observation. *)

val preload : t -> (string * string) list -> unit
(** Bench/test helper: install store contents directly, before the
    simulation starts (call it identically at every replica — the ring
    is bypassed). Reported to observers as a self-installed snapshot at
    applied 0 so oracle shadows stay consistent. Raises
    [Invalid_argument] once the replica has run. *)

val record_metrics : t -> Aring_obs.Metrics.t -> unit
(** Export replica counters and gauges under ["app.*"] names. *)
