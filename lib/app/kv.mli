(** A deterministic replicated key-value store on the Accelerated Ring.

    One {!t} is a KV {e replica}: a daemon client session that multicasts
    writes ([Put]/[Del]/[Cas]) with Agreed delivery and applies the
    resulting totally-ordered op log to a local store. Reads are served
    locally and return a consistency token (the replica's applied-prefix
    length); {!sync_read} instead rides a Safe-delivered marker through
    the ring, so the answer reflects every write stably ordered before
    the marker.

    {2 Primary component}

    Replicas are created with the cluster size and apply client writes
    only while their current configuration holds a strict majority of the
    cluster ([2*|members| > cluster_size]). Writes delivered in a
    non-primary (minority) configuration are rejected by every member of
    that configuration — the same deterministic decision everywhere, so
    components never diverge on which ops executed. Minority replicas
    keep serving (stale) local reads from their frozen store.

    {2 View-synchronous state transfer}

    After every regular configuration, each replica multicasts an
    Agreed {!Op.Hello} announcing its [(applied, digest, synced)] state.
    Once Hellos from {e all} view members have been delivered — the same
    point of the total order at every replica — each replica runs the
    same deterministic election: the donor is the synced member with the
    highest applied count (ties broken by lowest pid). Members whose
    announced state differs from the donor's become receivers; the donor
    snapshots its store at that instant and streams it as chunked
    ordinary multicasts. Receivers buffer subsequently delivered writes,
    install the snapshot when the last chunk arrives, then replay the
    buffer — ending byte-identical to the donor. A new regular
    configuration delivered mid-transfer aborts and restarts the round,
    which covers donor crash, receiver crash and partitions healing
    mid-transfer. If no synced member exists, every member deterministically
    cold-resets to the empty store.

    One replica per daemon; all replicas join one group. *)

open Aring_wire

type t

(** Everything a replica observably does, reported to observers in
    execution order — the feed the consistency {!Oracle} checks. *)
type observation =
  | Applied of { index : int; op : Op.t; value : string option }
      (** Write [index] of the op log executed; [value] is the store's
          value for the written key {e after} the apply ([None] =
          absent), i.e. ground truth for an oracle's shadow
          comparison. *)
  | Read of { key : string; value : string option; token : int; sync : bool }
  | Installed of {
      donor : Types.pid;
      applied : int;
      entries : (string * string) list;
    }  (** A snapshot replaced this replica's store. *)
  | Aborted  (** An in-flight incoming transfer was discarded. *)
  | Reset  (** Cold restart: no synced member existed at an election. *)
  | Voted of {
      id : string;
      vote : bool;
      rings : int list;
      parts : Op.mcas_part list;
    }
      (** An {!Op.Mcas} copy was delivered and this replica evaluated
          its ring's checks. On a true vote the op parks (later writes
          queue behind it) until an {!Op.Mdecide} is delivered; a false
          vote — failed checks, or a wait-die wound — already fixes the
          global outcome, so nothing parks. [rings] lists every involved
          ring; [parts] is the full op, so any observer can resubmit
          copies a crashed submitter never sent (cooperative
          termination). *)
  | Decided of { id : string; commit : bool }
      (** An {!Op.Mdecide} resolved this mcas at its delivery position;
          on a parked commit the writes were applied (each reported as an
          ordinary [Applied] with a [Put] op) and queued writes then
          drained. *)
  | Skipped of { credits : int }
      (** An {!Op.Skip} merge-liveness hint at this position of the
          ring's observation stream. *)

(** Per-mcas-id state retained for dedup of retried copies and for
    coordinator resolution (see [Aring_multiring.Cluster]). *)
type mcas_status = Mcas_voted of bool | Mcas_decided of bool

type stats = {
  mutable ops_applied : int;
  mutable cas_failures : int;  (** Cas delivered whose expectation failed. *)
  mutable rejected_writes : int;  (** Writes delivered in a minority view. *)
  mutable reads : int;
  mutable sync_reads : int;
  mutable hellos_sent : int;
  mutable snapshots_sent : int;
  mutable installs : int;
  mutable xfer_aborts : int;
  mutable cold_resets : int;
  mutable buffered_peak : int;  (** Max ops buffered during one transfer. *)
  mutable decode_errors : int;
  mutable mcas_votes : int;
  mutable mcas_commits : int;
  mutable mcas_aborts : int;
  mutable mcas_dups : int;  (** Retried Mcas/Mdecide copies deduplicated. *)
  mutable mcas_wounds : int;
      (** Mcas copies force-aborted by wait-die: delivered while an
          older mcas held this ring's park. *)
  mutable skips : int;
}

(** Fault injection for the fuzzer's seeded-bug self-test. *)
type bug =
  | Bug_none
  | Bug_skip_apply of { every : int }
      (** Every [every]-th write at this replica mutates nothing (the
          log position is still consumed) — a classic skipped-apply /
          stale-state bug an end-to-end oracle must catch. *)

val group : string
(** The group every replica joins (["kv"]). *)

val create :
  ?bug:bug ->
  ?max_chunk_bytes:int ->
  ?session_name:string ->
  ?ring:int ->
  cluster_size:int ->
  daemon:Aring_daemon.Daemon.t ->
  unit ->
  t
(** Attach a replica to [daemon]: connects a client session, joins
    {!group}, and installs the daemon's view hook (so creating a second
    replica on one daemon is not supported). [cluster_size] is the full
    ring size, used for the primary-component majority test.
    [max_chunk_bytes] bounds the encoded size of one snapshot chunk
    (default 4096). [ring] (default 0) names which ring of a multi-ring
    deployment this replica orders on — it selects the replica's
    {!Op.mcas_part} of a cross-shard cas. *)

val node : t -> Types.pid
(** The hosting daemon's pid — the replica's identity in observations,
    trace events and elections. *)

(** {1 Client operations} *)

val put : t -> key:string -> value:string -> unit
val del : t -> key:string -> unit

val cas : t -> key:string -> expect:string option -> value:string -> unit
(** Applies iff the value at delivery time equals [expect]; failed CAS
    still consumes its op-log position. *)

val read : t -> key:string -> string option * int
(** Local read: [(value, token)] where [token] is the replica's applied
    op count — compare tokens to order reads across replicas. *)

val sync_read : t -> key:string -> on_result:(string option -> token:int -> unit) -> unit
(** Safe-ordered read: multicasts a marker with Safe delivery and serves
    the read when the marker comes back, i.e. after every write stably
    ordered before it. [on_result] fires at most once. *)

(** {1 Cross-shard multi-key cas}

    An {!Op.Mcas} carries per-ring parts; an identical copy is submitted
    on every involved ring ({!submit_mcas} sends this ring's copy). At
    delivery, each replica evaluates its own part's checks — the same
    deterministic vote at every replica of the ring. A true vote
    {e parks} the op: every later write queues behind it, so the apply
    sequence stays identical ring-wide. A false vote fixes the global
    outcome (abort), so nothing parks. Wait-die breaks cross-ring park
    cycles: a fresh Mcas delivered while an {e older} one (by id order)
    is parked votes a forced abort instead of queueing, so parks only
    ever wait for younger parks and two rings can never park two
    cross-shard ops in opposite orders, each blocking the vote the other
    needs.

    A per-node coordinator (one per physical node, reading the node's
    own replicas — votes never cross the network) computes
    [commit = AND of all involved rings' votes] and multicasts the
    outcome on every involved ring ({!submit_decide}); the park resolves
    when the {!Op.Mdecide} is {e delivered}, i.e. at one deterministic
    position of the ring's op stream — commit applies the part's writes,
    abort applies nothing. Undecided parks survive view changes: the
    hello digest covers park and vote state, and a donor streams both
    ahead of its snapshot ({!Op.Mcas_table}), so receivers reconstruct
    the park instead of dropping it. *)

val submit_mcas : t -> id:string -> parts:Op.mcas_part list -> unit
(** Multicast this ring's copy of the cas. [id] must be globally unique;
    retried copies dedup on it. *)

val skip : t -> credits:int -> unit
(** Multicast an {!Op.Skip} merge-liveness hint on this ring. *)

val submit_decide : t -> id:string -> commit:bool -> unit
(** Multicast the coordinator's outcome for mcas [id] on this ring
    ({!Op.Mdecide}). At delivery, a matching park resolves; anywhere
    else (already resolved, voted false, superseded by a snapshot
    install, or never delivered) only the decision is recorded for
    dedup — writes are never applied out of delivery order. *)

val mcas_status : t -> string -> mcas_status option
val mcas_parked : t -> bool

val parked_op : t -> Op.t option
(** The undecided parked {!Op.Mcas} head, if any — snapshot installs
    restore it, so a replica that never saw the copy delivered still
    holds the full op and any observer can drive termination from it. *)

val ring : t -> int
(** The ring id this replica orders on (0 in single-ring deployments). *)

(** {1 Introspection} *)

val applied : t -> int
val synced : t -> bool

val in_transfer : t -> bool
(** True while an incoming snapshot transfer is active. *)

val settled : t -> bool
(** No incoming transfer active and no pending election with this
    replica as a receiver candidate — the quiescence test fuzz
    convergence uses alongside digest equality. *)

val store_size : t -> int
val digest : t -> int64
(** Order-independent FNV-1a digest of the store contents. *)

val entries : t -> (string * string) list
(** Store contents sorted by key. *)

val pending_sync_reads : t -> int
val stats : t -> stats

val add_observer : t -> (observation -> unit) -> unit
(** Observers run in registration order at each observation. *)

val preload : t -> (string * string) list -> unit
(** Bench/test helper: install store contents directly, before the
    simulation starts (call it identically at every replica — the ring
    is bypassed). Reported to observers as a self-installed snapshot at
    applied 0 so oracle shadows stay consistent. Raises
    [Invalid_argument] once the replica has run. *)

val record_metrics : ?prefix:string -> t -> Aring_obs.Metrics.t -> unit
(** Export replica counters and gauges under ["app.*"] names, optionally
    prefixed (e.g. ["ring1."] for per-ring registries). *)
