(** End-to-end consistency oracle for the replicated KV store.

    The oracle shadows every replica from its {!Kv.observation} feed: it
    re-executes each applied op against a shadow store and cross-checks
    the replica's reported ground truth. Because the shadow is rebuilt
    from the same totally-ordered op log the replica claims to have
    executed, any skipped, duplicated or misapplied op surfaces at the
    first write that touches the damaged state — not just at the end of
    the run.

    Checked properties, per replica:
    - {b state fidelity}: the store value reported after each apply
      equals the shadow's ([Stale_state] — catches skipped applies
      immediately);
    - {b op-log contiguity}: apply indices advance by exactly one,
      modulo snapshot installs and cold resets ([Apply_gap]);
    - {b read correctness}: a read served at token T returns the shadow
      value of the T-prefix ([Stale_read]) — subsumes read-your-writes
      for ops the replica has applied;
    - {b monotonic reads}: consistency tokens never move backward
      between snapshot installs ([Non_monotonic_read]); a snapshot
      install re-bases the token (the EVS merge edge where a frozen
      minority replica adopts the donor's shorter-but-authoritative
      log).

    And across replicas at end of run ({!check_convergence}):
    - every replica synced ([Unsynced]);
    - all (applied, digest) pairs equal and every store byte-identical
      to its shadow ([Divergence]). *)

open Aring_wire

type t

type violation_kind =
  | Stale_state
  | Stale_read
  | Non_monotonic_read
  | Apply_gap
  | Divergence
  | Unsynced

type violation = {
  o_node : Types.pid;
  o_kind : violation_kind;
  o_detail : string;
}

val create : ?max_violations:int -> unit -> t
(** Keeps the first [max_violations] (default 100) structured records;
    all are counted. *)

val attach : t -> Kv.t -> unit
(** Register as an observer of [kv] and remember it for
    {!check_convergence}. *)

val observe : t -> node:Types.pid -> Kv.observation -> unit
(** Feed one observation directly (unit tests; {!attach} does this
    automatically). *)

val check_convergence : t -> Kv.t list -> unit
(** End-of-run check over the replicas expected to have converged
    (typically the survivors): records [Unsynced] / [Divergence]
    violations. *)

val kind_label : violation_kind -> string
val violation_count : t -> int
val violations : t -> violation list
(** Recorded violations, oldest first. *)

val messages : t -> string list
val pp : Format.formatter -> t -> unit
