(** Replicated-KV operation codec.

    Every state-changing or protocol-relevant KV operation is one [Op.t],
    encoded as the {e payload} of an ordinary daemon application multicast
    ({!Aring_daemon.Envelope.App}) — an opaque client payload as far as
    the wire format is concerned. Nothing below the daemon layer changes;
    golden frames stay byte-identical.

    Operations split into three families:

    - client writes ([Put]/[Del]/[Cas]) — the replicated op log, submitted
      with Agreed delivery;
    - [Sync_read] markers — Safe-ordered read fences served by the
      issuing replica when the marker is delivered;
    - state-transfer protocol messages ([Hello]/[Chunk]) — the
      view-synchronous snapshot exchange (see {!Kv}). *)

open Aring_wire

(** One ring's share of a cross-shard multi-key cas ({!Mcas}): the checks
    and writes whose keys hash to ring [mp_ring]. Every involved ring
    orders an identical copy of the whole op; each ring's replicas vote
    on (and, on commit, apply) only their own part. *)
type mcas_part = {
  mp_ring : int;
  mp_checks : (string * string option) list;
  mp_writes : (string * string) list;
}

type t =
  | Put of { key : string; value : string }
  | Del of { key : string }
  | Cas of { key : string; expect : string option; value : string }
      (** Compare-and-set: applies [value] iff the current value of [key]
          equals [expect] ([None] = key absent). Deterministic at every
          replica because it executes at the op's total-order position. *)
  | Sync_read of { reader : string; nonce : int; key : string }
      (** Safe-delivered read fence. Served only by the replica whose
          session member name is [reader], when the marker is delivered —
          i.e. after every write stably ordered before it. *)
  | Hello of {
      view : Types.ring_id;
      daemon : Types.pid;
      applied : int;
      digest : int64;
      synced : bool;
    }
      (** Per-view state announcement. Every replica multicasts one after
          each regular configuration; when Hellos from all view members
          have been delivered, every replica runs the same deterministic
          donor election at the same point of the total order. *)
  | Chunk of {
      view : Types.ring_id;
      donor : Types.pid;
      index : int;
      total : int;
      applied : int;
      entries : (string * string) list;
    }
      (** One slice of the donor's snapshot (entries sorted by key across
          the whole stream; [applied] is the donor's op count at the
          snapshot point). *)
  | Mcas of { id : string; parts : mcas_part list }
      (** Cross-shard multi-key cas: an identical copy is multicast on
          every involved ring; each ring's replicas deterministically
          vote on their part's checks at the copy's delivery position,
          and a per-node coordinator resolves commit/abort once every
          involved ring has voted (see {!Kv} and [Aring_multiring]).
          [id] must be globally unique; retried copies dedup on it. *)
  | Mdecide of { id : string; commit : bool }
      (** Sequenced outcome of an {!Mcas}: multicast by a coordinator on
          every involved ring once all votes are known, so each replica
          resolves the park at one deterministic position of its ring's
          op stream. Dedups on [id]. *)
  | Skip of { credits : int }
      (** Merge liveness hint from an otherwise-idle ring: grants a
          learner's round-robin merge [credits] turn-passes at this
          position of the ring's stream (Ring-Paxos-style skip). Not a
          write — consumes no op-log position. *)
  | Mcas_table of {
      view : Types.ring_id;
      donor : Types.pid;
      entries : (string * int) list;
      parked : bytes list;
    }
      (** The donor's mcas vote/decision table ([id -> status code]) and
          parked-op state ([parked] = encoded ops: the undecided [Mcas]
          head, then every op queued behind it), streamed ahead of the
          snapshot chunks (only when non-empty) so a receiver dedups
          retried [Mcas] copies and reconstructs the donor's park instead
          of silently dropping an undecided cross-shard cas. *)

val is_write : t -> bool
(** True for [Put]/[Del]/[Cas]/[Mcas]/[Mdecide] — ops that take the
    replica-log delivery path (primary-gated, buffered during
    transfers). *)

val write_key : t -> string option
(** The key a write targets; [None] for non-writes. *)

val encode : t -> bytes

val decode : bytes -> t
(** @raise Aring_wire.Codec.Decode_error on malformed input. *)

val pp : Format.formatter -> t -> unit
