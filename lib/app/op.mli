(** Replicated-KV operation codec.

    Every state-changing or protocol-relevant KV operation is one [Op.t],
    encoded as the {e payload} of an ordinary daemon application multicast
    ({!Aring_daemon.Envelope.App}) — an opaque client payload as far as
    the wire format is concerned. Nothing below the daemon layer changes;
    golden frames stay byte-identical.

    Operations split into three families:

    - client writes ([Put]/[Del]/[Cas]) — the replicated op log, submitted
      with Agreed delivery;
    - [Sync_read] markers — Safe-ordered read fences served by the
      issuing replica when the marker is delivered;
    - state-transfer protocol messages ([Hello]/[Chunk]) — the
      view-synchronous snapshot exchange (see {!Kv}). *)

open Aring_wire

type t =
  | Put of { key : string; value : string }
  | Del of { key : string }
  | Cas of { key : string; expect : string option; value : string }
      (** Compare-and-set: applies [value] iff the current value of [key]
          equals [expect] ([None] = key absent). Deterministic at every
          replica because it executes at the op's total-order position. *)
  | Sync_read of { reader : string; nonce : int; key : string }
      (** Safe-delivered read fence. Served only by the replica whose
          session member name is [reader], when the marker is delivered —
          i.e. after every write stably ordered before it. *)
  | Hello of {
      view : Types.ring_id;
      daemon : Types.pid;
      applied : int;
      digest : int64;
      synced : bool;
    }
      (** Per-view state announcement. Every replica multicasts one after
          each regular configuration; when Hellos from all view members
          have been delivered, every replica runs the same deterministic
          donor election at the same point of the total order. *)
  | Chunk of {
      view : Types.ring_id;
      donor : Types.pid;
      index : int;
      total : int;
      applied : int;
      entries : (string * string) list;
    }
      (** One slice of the donor's snapshot (entries sorted by key across
          the whole stream; [applied] is the donor's op count at the
          snapshot point). *)

val is_write : t -> bool
(** True for [Put]/[Del]/[Cas] — the ops that advance the replica log. *)

val write_key : t -> string option
(** The key a write targets; [None] for non-writes. *)

val encode : t -> bytes

val decode : bytes -> t
(** @raise Aring_wire.Codec.Decode_error on malformed input. *)

val pp : Format.formatter -> t -> unit
