(** Scenario-driven KV workloads: build a daemon+replica cluster on the
    simulator, offer a skewed read/write mix, and measure applied
    throughput, write and sync-read latency, and state-transfer behavior
    — the app-level counterpart of {!Aring_harness.Scenario}, reusing
    its load-schedule builders (interpret the rate as aggregate ops/sec
    instead of Mbps).

    Every run attaches the consistency {!Oracle}; a result with
    [oracle_violations > 0] is a correctness failure, not a benchmark
    number. *)

open Aring_ring
open Aring_sim

type partition = {
  part_at_ns : int;
  heal_at_ns : int;
  island : int list;  (** Nodes cut away from the rest of the cluster. *)
}

type spec = {
  label : string;
  n_nodes : int;
  net : Profile.net;
  tier : Profile.tier;
  params : Params.t;
  key_space : int;
  hot_keys : int;  (** First [hot_keys] keys of the space. *)
  hot_permille : int;  (** Traffic share the hot keys receive. *)
  value_bytes : int;
  read_permille : int;
  sync_read_permille : int;
  cas_permille : int;
  del_permille : int;  (** Remainder after the four mixes = puts. *)
  ops_per_sec : float;  (** Aggregate offered op rate. *)
  load : (int * float) list;
      (** Piecewise-constant ops/sec schedule; same shape as
          {!Aring_harness.Scenario.spec.load} (use its builders).
          Empty = constant [ops_per_sec]. *)
  warmup_ns : int;
  measure_ns : int;
  drain_ns : int;  (** Post-workload budget to settle and converge. *)
  seed : int64;
  partition : partition option;
      (** Optional single partition window, for exercising freeze /
          merge / state transfer inside a workload run. *)
}

type result = {
  spec : spec;
  writes_submitted : int;
  writes_applied : int;  (** At node 0, inside the measurement window. *)
  write_ops_per_sec : float;
      (** Applied writes at node 0 over the measurement window. *)
  write_latency_us : Aring_util.Stats.t;
      (** Submit-to-apply at the submitting replica (puts and cas). *)
  sync_read_latency_us : Aring_util.Stats.t;
      (** Submit-to-answer for Safe-ordered reads. *)
  reads : int;  (** Local reads served across replicas. *)
  installs : int;
  transfer_us : Aring_util.Stats.t;
      (** Per-install regular-view-to-install durations. *)
  oracle : Oracle.t;
  oracle_violations : int;
  converged : bool;
      (** All replicas settled, synced and at equal (applied, digest)
          by the end of the run. *)
  final_store_size : int;  (** At node 0. *)
  end_ns : int;
  metrics : Aring_obs.Metrics.t;
      (** ["netsim.*"], ["daemon.*"]/["engine.*"] and ["app.*"] counters
          summed over nodes. *)
}

val snappy_params : unit -> Aring_ring.Params.t
(** Accelerated defaults with fast membership timeouts, sized so that
    partition merges complete well inside a scenario's drain budget.
    Shared by the KV and workload-harness scenarios. *)

val default_spec : spec
(** 4 nodes, 1-gigabit network, daemon tier, accelerated params, 64-key
    space with 8 hot keys taking 80% of traffic, 128-byte values,
    25% reads / 5% sync reads / 10% cas / 7% dels, 20k ops/sec,
    50 ms warmup + 200 ms measurement + 1 s drain, no partition. *)

val run : spec -> result

type transfer_result = {
  entries_transferred : int;
  bytes_transferred : int;  (** Sum of key+value bytes in the snapshot. *)
  xfer_us : float;  (** Merge-view-to-install at the rejoining node. *)
  total_installs : int;
}

val measure_transfer :
  ?n_nodes:int ->
  ?value_bytes:int ->
  ?seed:int64 ->
  store_entries:int ->
  unit ->
  transfer_result
(** Isolated state-transfer timing vs store size: preload every replica
    with [store_entries] identical entries, cut the last node away,
    run a short write burst on the majority so states diverge, heal, and
    time the rejoining node's snapshot install. Raises [Failure] if the
    transfer never completes. *)

val pp_result : Format.formatter -> result -> unit
