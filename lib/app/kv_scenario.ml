open Aring_ring
open Aring_sim
module Daemon = Aring_daemon.Daemon
module Prng = Aring_util.Prng
module Stats = Aring_util.Stats
module Metrics = Aring_obs.Metrics
module Span = Aring_obs.Span
module Scenario = Aring_harness.Scenario

type partition = { part_at_ns : int; heal_at_ns : int; island : int list }

type spec = {
  label : string;
  n_nodes : int;
  net : Profile.net;
  tier : Profile.tier;
  params : Params.t;
  key_space : int;
  hot_keys : int;
  hot_permille : int;
  value_bytes : int;
  read_permille : int;
  sync_read_permille : int;
  cas_permille : int;
  del_permille : int;
  ops_per_sec : float;
  load : (int * float) list;
  warmup_ns : int;
  measure_ns : int;
  drain_ns : int;
  seed : int64;
  partition : partition option;
}

type result = {
  spec : spec;
  writes_submitted : int;
  writes_applied : int;
  write_ops_per_sec : float;
  write_latency_us : Stats.t;
  sync_read_latency_us : Stats.t;
  reads : int;
  installs : int;
  transfer_us : Stats.t;
  oracle : Oracle.t;
  oracle_violations : int;
  converged : bool;
  final_store_size : int;
  end_ns : int;
  metrics : Metrics.t;
}

let ms n = n * 1_000_000

(* Fast membership timeouts: scenario runs are short, and partition
   merges must complete well inside the drain budget. *)
let snappy_params () =
  let p = Params.accelerated () in
  {
    p with
    Params.token_loss_ns = ms 50;
    token_retransmit_ns = ms 10;
    join_retransmit_ns = ms 20;
    consensus_timeout_ns = ms 100;
    merge_probe_ns = ms 80;
  }

let default_spec =
  {
    label = "kv";
    n_nodes = 4;
    net = Profile.gigabit;
    tier = Profile.daemon;
    params = snappy_params ();
    key_space = 64;
    hot_keys = 8;
    hot_permille = 800;
    value_bytes = 128;
    read_permille = 250;
    sync_read_permille = 50;
    cas_permille = 100;
    del_permille = 70;
    ops_per_sec = 20_000.0;
    load = [];
    warmup_ns = ms 50;
    measure_ns = ms 200;
    drain_ns = ms 1_000;
    seed = 11L;
    partition = None;
  }

type cluster = {
  sim : Netsim.t;
  kvs : Kv.t array;
  daemons : Daemon.t array;
  oracle : Oracle.t;
  view_ns : int array;  (** Last regular-view delivery time per node. *)
}

let build_cluster ~n ~net ~tier ~params ~seed =
  let initial_ring = Array.init n (fun i -> i) in
  let members =
    Array.init n (fun me -> Member.create ~params ~me ~initial_ring ())
  in
  let daemons = Array.init n (fun i -> Daemon.create ~member:members.(i) ()) in
  let kvs =
    Array.init n (fun i -> Kv.create ~cluster_size:n ~daemon:daemons.(i) ())
  in
  let oracle = Oracle.create () in
  Array.iter (fun kv -> Oracle.attach oracle kv) kvs;
  let participants = Array.map Daemon.participant daemons in
  let sim = Netsim.create ~net ~tiers:(Array.make n tier) ~participants ~seed () in
  let view_ns = Array.make n 0 in
  Netsim.on_view sim (fun ~at:node ~now (v : Participant.view) ->
      if not v.transitional then view_ns.(node) <- now);
  { sim; kvs; daemons; oracle; view_ns }

let install_partition sim n (p : partition) =
  let inside = Array.make n false in
  List.iter (fun i -> if i >= 0 && i < n then inside.(i) <- true) p.island;
  Netsim.set_drop sim (fun ~src ~dst _ ->
      let now = Netsim.now sim in
      now >= p.part_at_ns && now < p.heal_at_ns && inside.(src) <> inside.(dst))

let kv_converged kvs =
  let n = Array.length kvs in
  let ok = ref true in
  for i = 0 to n - 1 do
    if not (Kv.settled kvs.(i) && Kv.synced kvs.(i)) then ok := false
  done;
  for i = 1 to n - 1 do
    if
      Kv.applied kvs.(i) <> Kv.applied kvs.(0)
      || Kv.digest kvs.(i) <> Kv.digest kvs.(0)
    then ok := false
  done;
  !ok

let run spec =
  let n = spec.n_nodes in
  let cl =
    build_cluster ~n ~net:spec.net ~tier:spec.tier ~params:spec.params
      ~seed:spec.seed
  in
  let sim = cl.sim and kvs = cl.kvs in
  Option.iter (install_partition sim n) spec.partition;
  (* Latency spans are always collected here: the stage histograms land
     in the run's metrics registry under the span dotted names,
     decomposing the end-to-end write latency into ordering, delivery
     and apply stages. The collector is deterministic (virtual clock, no
     trace events), so it never perturbs results. *)
  let metrics = Metrics.create () in
  let span = Span.create ~metrics () in
  Span.attach span;
  let horizon = spec.warmup_ns + spec.measure_ns in
  let deadline = horizon + spec.drain_ns in
  let write_latency = Stats.create () in
  let sync_latency = Stats.create () in
  let transfer = Stats.create () in
  let installs = ref 0 in
  let writes_applied = ref 0 in
  (* Submit times of in-flight tracked writes, per node, keyed by the
     (unique) value string the op carries. *)
  let in_flight = Array.init n (fun _ -> Hashtbl.create 256) in
  Array.iteri
    (fun node kv ->
      Kv.add_observer kv (function
        | Kv.Applied { op; _ } -> (
            let now = Netsim.now sim in
            if node = 0 && now >= spec.warmup_ns && now < horizon then
              incr writes_applied;
            match op with
            | Op.Put { value; _ } | Op.Cas { value; _ } -> (
                match Hashtbl.find_opt in_flight.(node) value with
                | Some t0 ->
                    Hashtbl.remove in_flight.(node) value;
                    Stats.add write_latency
                      (float_of_int (Netsim.now sim - t0) /. 1e3)
                | None -> ())
            | _ -> ())
        | Kv.Installed { entries; _ } ->
            incr installs;
            let dt = Netsim.now sim - cl.view_ns.(node) in
            ignore entries;
            Stats.add transfer (float_of_int dt /. 1e3)
        | _ -> ()))
    kvs;
  (* Open-loop workload: each node offers its 1/n share of the scheduled
     aggregate op rate, with a skewed key distribution. *)
  let prng = Prng.create ~seed:(Int64.logxor spec.seed 0x6B767363L) in
  let writes_submitted = ref 0 in
  let pad tag =
    let len = max (String.length tag) spec.value_bytes in
    let b = Bytes.make len '.' in
    Bytes.blit_string tag 0 b 0 (String.length tag);
    Bytes.to_string b
  in
  for node = 0 to n - 1 do
    let counter = ref 0 in
    let key () =
      let j =
        if Prng.int prng 1000 < spec.hot_permille then
          Prng.int prng (max 1 spec.hot_keys)
        else
          spec.hot_keys
          + Prng.int prng (max 1 (spec.key_space - spec.hot_keys))
      in
      Printf.sprintf "k%04d" j
    in
    let rec tick () =
      let now = Netsim.now sim in
      if now < horizon then begin
        let rate =
          Scenario.rate_at_schedule ~default:spec.ops_per_sec spec.load now
        in
        if rate <= 0.0 then Netsim.call_at sim ~at:(now + ms 1) tick
        else begin
          incr counter;
          let kv = kvs.(node) in
          let key = key () in
          let r = Prng.int prng 1000 in
          let sync_edge = spec.read_permille + spec.sync_read_permille in
          let cas_edge = sync_edge + spec.cas_permille in
          let del_edge = cas_edge + spec.del_permille in
          if r < spec.read_permille then ignore (Kv.read kv ~key)
          else if r < sync_edge then begin
            let t0 = now in
            Kv.sync_read kv ~key ~on_result:(fun _ ~token:_ ->
                Stats.add sync_latency
                  (float_of_int (Netsim.now sim - t0) /. 1e3))
          end
          else if r < cas_edge then begin
            incr writes_submitted;
            let value = pad (Printf.sprintf "c:%d:%d:" node !counter) in
            Hashtbl.replace in_flight.(node) value now;
            let expect, _ = Kv.read kv ~key in
            Kv.cas kv ~key ~expect ~value
          end
          else if r < del_edge then begin
            incr writes_submitted;
            Kv.del kv ~key
          end
          else begin
            incr writes_submitted;
            let value = pad (Printf.sprintf "w:%d:%d:" node !counter) in
            Hashtbl.replace in_flight.(node) value now;
            Kv.put kv ~key ~value
          end;
          let interval =
            int_of_float (1e9 /. (rate /. float_of_int n))
          in
          Netsim.call_at sim ~at:(now + max 1_000 interval) tick
        end
      end
    in
    Netsim.call_at sim ~at:(ms 1 + (node * 83_000)) tick
  done;
  (* Chunked drain: stop as soon as the workload is over, every replica
     has settled on one state and all sync reads are answered. *)
  let pending () =
    Array.fold_left (fun acc kv -> acc + Kv.pending_sync_reads kv) 0 kvs
  in
  let t = ref 0 in
  let stop = ref false in
  Fun.protect ~finally:Span.detach (fun () ->
      while not !stop do
        t := min deadline (!t + ms 25);
        Netsim.run_until sim !t;
        if !t >= deadline then stop := true
        else if !t > horizon && kv_converged kvs && pending () = 0 then
          stop := true
      done);
  Oracle.check_convergence cl.oracle (Array.to_list kvs);
  Netsim.record_metrics sim metrics;
  Array.iter (fun d -> Daemon.record_metrics d metrics) cl.daemons;
  Array.iter (fun kv -> Kv.record_metrics kv metrics) kvs;
  {
    spec;
    writes_submitted = !writes_submitted;
    writes_applied = !writes_applied;
    write_ops_per_sec =
      float_of_int !writes_applied /. (float_of_int spec.measure_ns /. 1e9);
    write_latency_us = write_latency;
    sync_read_latency_us = sync_latency;
    reads = Array.fold_left (fun acc kv -> acc + (Kv.stats kv).Kv.reads) 0 kvs;
    installs = !installs;
    transfer_us = transfer;
    oracle = cl.oracle;
    oracle_violations = Oracle.violation_count cl.oracle;
    converged = kv_converged kvs;
    final_store_size = Kv.store_size kvs.(0);
    end_ns = Netsim.now sim;
    metrics;
  }

type transfer_result = {
  entries_transferred : int;
  bytes_transferred : int;
  xfer_us : float;
  total_installs : int;
}

let measure_transfer ?(n_nodes = 4) ?(value_bytes = 128) ?(seed = 7L)
    ~store_entries () =
  let n = n_nodes in
  if n < 3 then invalid_arg "Kv_scenario.measure_transfer: n_nodes < 3";
  let cl =
    build_cluster ~n ~net:Profile.gigabit ~tier:Profile.daemon
      ~params:(snappy_params ()) ~seed
  in
  let sim = cl.sim and kvs = cl.kvs in
  let value = String.make value_bytes 'x' in
  let preloaded =
    List.init store_entries (fun i -> (Printf.sprintf "p%06d" i, value))
  in
  Array.iter (fun kv -> Kv.preload kv preloaded) kvs;
  let joiner = n - 1 in
  let part = { part_at_ns = ms 5; heal_at_ns = ms 120; island = [ joiner ] } in
  install_partition sim n part;
  (* Diverge the majority so the healed minority member needs the
     snapshot; writes ride node 0's replica while the island is cut. *)
  let burst = 64 in
  for i = 0 to burst - 1 do
    Netsim.call_at sim
      ~at:(ms 20 + (i * 300_000))
      (fun () ->
        Kv.put kvs.(0) ~key:(Printf.sprintf "b%03d" i) ~value:"burst")
  done;
  let install = ref None in
  Kv.add_observer kvs.(joiner) (function
    | Kv.Installed { entries; _ } when Netsim.now sim > part.heal_at_ns ->
        let bytes =
          List.fold_left
            (fun acc (k, v) -> acc + String.length k + String.length v)
            0 entries
        in
        install :=
          Some
            ( List.length entries,
              bytes,
              float_of_int (Netsim.now sim - cl.view_ns.(joiner)) /. 1e3 )
    | _ -> ());
  let deadline = ms 2_000 in
  let t = ref 0 in
  while !install = None && !t < deadline do
    t := !t + ms 25;
    Netsim.run_until sim !t
  done;
  match !install with
  | None ->
      failwith
        (Printf.sprintf
           "Kv_scenario.measure_transfer: no install within %dms (entries=%d)"
           (deadline / ms 1) store_entries)
  | Some (entries_transferred, bytes_transferred, xfer_us) ->
      (* Let the replay settle, then sanity-check convergence. *)
      Netsim.run_until sim (!t + ms 200);
      Oracle.check_convergence cl.oracle (Array.to_list kvs);
      if Oracle.violation_count cl.oracle > 0 then
        failwith
          (Format.asprintf "Kv_scenario.measure_transfer: %a" Oracle.pp
             cl.oracle);
      {
        entries_transferred;
        bytes_transferred;
        xfer_us;
        total_installs =
          Array.fold_left
            (fun acc kv -> acc + (Kv.stats kv).Kv.installs)
            0 kvs;
      }

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>%s: %d nodes, %.0f ops/s offered@,\
    \  writes: %d submitted, %d applied@node0 (%.0f/s), latency p50=%.0fus \
     p99=%.0fus@,\
    \  sync reads: %d (p50=%.0fus p99=%.0fus), local reads: %d@,\
    \  transfers: %d installs%s@,\
    \  oracle: %d violation(s), converged=%b, store=%d entries"
    r.spec.label r.spec.n_nodes r.spec.ops_per_sec r.writes_submitted
    r.writes_applied r.write_ops_per_sec
    (Stats.percentile r.write_latency_us 50.0)
    (Stats.percentile r.write_latency_us 99.0)
    (Stats.count r.sync_read_latency_us)
    (Stats.percentile r.sync_read_latency_us 50.0)
    (Stats.percentile r.sync_read_latency_us 99.0)
    r.reads r.installs
    (if Stats.count r.transfer_us > 0 then
       Printf.sprintf " (xfer p50=%.0fus)"
         (Stats.percentile r.transfer_us 50.0)
     else "")
    r.oracle_violations r.converged r.final_store_size;
  (match Span.report_of_metrics r.metrics with
  | [] -> ()
  | stages ->
      Format.fprintf ppf "@,  latency by stage:";
      List.iter
        (fun (s : Span.stage_report) ->
          Format.fprintf ppf
            "@,    %-22s n=%-7d p50=%.1fus p99=%.1fus p99.9=%.1fus"
            s.Span.stage s.Span.count s.Span.p50_us s.Span.p99_us s.Span.p999_us)
        stages);
  Format.fprintf ppf "@]"
