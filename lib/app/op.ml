open Aring_wire

(* One ring's share of a cross-shard multi-key cas: the checks and writes
   whose keys hash to that ring. Every involved ring orders an identical
   copy of the whole op; each replica votes on its own part. *)
type mcas_part = {
  mp_ring : int;
  mp_checks : (string * string option) list;
  mp_writes : (string * string) list;
}

type t =
  | Put of { key : string; value : string }
  | Del of { key : string }
  | Cas of { key : string; expect : string option; value : string }
  | Sync_read of { reader : string; nonce : int; key : string }
  | Hello of {
      view : Types.ring_id;
      daemon : Types.pid;
      applied : int;
      digest : int64;
      synced : bool;
    }
  | Chunk of {
      view : Types.ring_id;
      donor : Types.pid;
      index : int;
      total : int;
      applied : int;
      entries : (string * string) list;
    }
  | Mcas of { id : string; parts : mcas_part list }
  | Mdecide of { id : string; commit : bool }
      (** Sequenced outcome of an {!Mcas}: a coordinator that has
          gathered every involved ring's vote multicasts the decision
          through each involved ring, so a park resolves at one
          deterministic position of the ring's op stream (replicas never
          unpark from node-local timing). Dedups on [id]. *)
  | Skip of { credits : int }
      (** Merge liveness hint from an idle ring: grants the learner merge
          [credits] turn-passes at this point of the ring's stream. *)
  | Mcas_table of {
      view : Types.ring_id;
      donor : Types.pid;
      entries : (string * int) list;  (* mcas id -> status code *)
      parked : bytes list;  (* encoded ops: parked head, then its queue *)
    }
      (** Donor's mcas vote/decision table plus its parked-op state,
          streamed ahead of the snapshot chunks so receivers dedup
          retried Mcas copies and reconstruct an undecided park. *)

let is_write = function
  | Put _ | Del _ | Cas _ | Mcas _ | Mdecide _ -> true
  | Sync_read _ | Hello _ | Chunk _ | Skip _ | Mcas_table _ -> false

let write_key = function
  | Put { key; _ } | Del { key } | Cas { key; _ } -> Some key
  | Sync_read _ | Hello _ | Chunk _ | Mcas _ | Mdecide _ | Skip _
  | Mcas_table _ ->
      None

(* Tags. The encoding reuses the wire codec primitives but lives entirely
   inside daemon App payloads — no frame-level format change. *)
let tag_put = 1
let tag_del = 2
let tag_cas = 3
let tag_sync_read = 4
let tag_hello = 5
let tag_chunk = 6
let tag_mcas = 7
let tag_skip = 8
let tag_mcas_table = 9
let tag_mdecide = 10

let write_str e s = Codec.write_bytes e (Bytes.unsafe_of_string s)
let read_str d = Bytes.unsafe_to_string (Codec.read_bytes d)

let write_ring e (r : Types.ring_id) =
  Codec.write_i32 e r.rep;
  Codec.write_i32 e r.ring_seq

let read_ring d : Types.ring_id =
  let rep = Codec.read_i32 d in
  let ring_seq = Codec.read_i32 d in
  { rep; ring_seq }

let encode op =
  let e = Codec.encoder () in
  (match op with
  | Put { key; value } ->
      Codec.write_u8 e tag_put;
      write_str e key;
      write_str e value
  | Del { key } ->
      Codec.write_u8 e tag_del;
      write_str e key
  | Cas { key; expect; value } ->
      Codec.write_u8 e tag_cas;
      write_str e key;
      (match expect with
      | None -> Codec.write_bool e false
      | Some x ->
          Codec.write_bool e true;
          write_str e x);
      write_str e value
  | Sync_read { reader; nonce; key } ->
      Codec.write_u8 e tag_sync_read;
      write_str e reader;
      Codec.write_i32 e nonce;
      write_str e key
  | Hello { view; daemon; applied; digest; synced } ->
      Codec.write_u8 e tag_hello;
      write_ring e view;
      Codec.write_i32 e daemon;
      Codec.write_i32 e applied;
      Codec.write_i64 e (Int64.to_int digest);
      Codec.write_bool e synced
  | Chunk { view; donor; index; total; applied; entries } ->
      Codec.write_u8 e tag_chunk;
      write_ring e view;
      Codec.write_i32 e donor;
      Codec.write_i32 e index;
      Codec.write_i32 e total;
      Codec.write_i32 e applied;
      Codec.write_list e
        (fun (k, v) ->
          write_str e k;
          write_str e v)
        entries
  | Mcas { id; parts } ->
      Codec.write_u8 e tag_mcas;
      write_str e id;
      Codec.write_list e
        (fun p ->
          Codec.write_i32 e p.mp_ring;
          Codec.write_list e
            (fun (k, x) ->
              write_str e k;
              match x with
              | None -> Codec.write_bool e false
              | Some v ->
                  Codec.write_bool e true;
                  write_str e v)
            p.mp_checks;
          Codec.write_list e
            (fun (k, v) ->
              write_str e k;
              write_str e v)
            p.mp_writes)
        parts
  | Mdecide { id; commit } ->
      Codec.write_u8 e tag_mdecide;
      write_str e id;
      Codec.write_bool e commit
  | Skip { credits } ->
      Codec.write_u8 e tag_skip;
      Codec.write_i32 e credits
  | Mcas_table { view; donor; entries; parked } ->
      Codec.write_u8 e tag_mcas_table;
      write_ring e view;
      Codec.write_i32 e donor;
      Codec.write_list e
        (fun (id, st) ->
          write_str e id;
          Codec.write_u8 e st)
        entries;
      Codec.write_list e (fun b -> Codec.write_bytes e b) parked);
  Codec.to_bytes e

let decode bytes =
  let d = Codec.decoder bytes in
  let tag = Codec.read_u8 d in
  let op =
    if tag = tag_put then
      let key = read_str d in
      let value = read_str d in
      Put { key; value }
    else if tag = tag_del then Del { key = read_str d }
    else if tag = tag_cas then begin
      let key = read_str d in
      let expect = if Codec.read_bool d then Some (read_str d) else None in
      let value = read_str d in
      Cas { key; expect; value }
    end
    else if tag = tag_sync_read then begin
      let reader = read_str d in
      let nonce = Codec.read_i32 d in
      let key = read_str d in
      Sync_read { reader; nonce; key }
    end
    else if tag = tag_hello then begin
      let view = read_ring d in
      let daemon = Codec.read_i32 d in
      let applied = Codec.read_i32 d in
      let digest = Int64.of_int (Codec.read_i64 d) in
      let synced = Codec.read_bool d in
      Hello { view; daemon; applied; digest; synced }
    end
    else if tag = tag_chunk then begin
      let view = read_ring d in
      let donor = Codec.read_i32 d in
      let index = Codec.read_i32 d in
      let total = Codec.read_i32 d in
      let applied = Codec.read_i32 d in
      let entries =
        Codec.read_list d (fun () ->
            let k = read_str d in
            let v = read_str d in
            (k, v))
      in
      Chunk { view; donor; index; total; applied; entries }
    end
    else if tag = tag_mcas then begin
      let id = read_str d in
      let parts =
        Codec.read_list d (fun () ->
            let mp_ring = Codec.read_i32 d in
            let mp_checks =
              Codec.read_list d (fun () ->
                  let k = read_str d in
                  let x =
                    if Codec.read_bool d then Some (read_str d) else None
                  in
                  (k, x))
            in
            let mp_writes =
              Codec.read_list d (fun () ->
                  let k = read_str d in
                  let v = read_str d in
                  (k, v))
            in
            { mp_ring; mp_checks; mp_writes })
      in
      Mcas { id; parts }
    end
    else if tag = tag_mdecide then begin
      let id = read_str d in
      let commit = Codec.read_bool d in
      Mdecide { id; commit }
    end
    else if tag = tag_skip then Skip { credits = Codec.read_i32 d }
    else if tag = tag_mcas_table then begin
      let view = read_ring d in
      let donor = Codec.read_i32 d in
      let entries =
        Codec.read_list d (fun () ->
            let id = read_str d in
            let st = Codec.read_u8 d in
            (id, st))
      in
      let parked = Codec.read_list d (fun () -> Codec.read_bytes d) in
      Mcas_table { view; donor; entries; parked }
    end
    else raise (Codec.Decode_error (Printf.sprintf "Op: unknown tag %d" tag))
  in
  Codec.expect_end d;
  op

let pp ppf = function
  | Put { key; value } ->
      Format.fprintf ppf "put(%s=%dB)" key (String.length value)
  | Del { key } -> Format.fprintf ppf "del(%s)" key
  | Cas { key; expect; value } ->
      Format.fprintf ppf "cas(%s %s->%dB)" key
        (match expect with None -> "absent" | Some x -> Printf.sprintf "%dB" (String.length x))
        (String.length value)
  | Sync_read { reader; nonce; key } ->
      Format.fprintf ppf "sync_read(%s #%d %s)" reader nonce key
  | Hello { view; daemon; applied; digest; synced } ->
      Format.fprintf ppf "hello(%a d%d applied=%d digest=%Lx%s)"
        Types.pp_ring_id view daemon applied digest
        (if synced then "" else " unsynced")
  | Chunk { view; donor; index; total; applied; entries } ->
      Format.fprintf ppf "chunk(%a donor=%d %d/%d applied=%d n=%d)"
        Types.pp_ring_id view donor (index + 1) total applied
        (List.length entries)
  | Mcas { id; parts } ->
      Format.fprintf ppf "mcas(%s rings=[%s])" id
        (String.concat ","
           (List.map (fun p -> string_of_int p.mp_ring) parts))
  | Mdecide { id; commit } ->
      Format.fprintf ppf "mdecide(%s %s)" id (if commit then "commit" else "abort")
  | Skip { credits } -> Format.fprintf ppf "skip(%d)" credits
  | Mcas_table { donor; entries; parked; _ } ->
      Format.fprintf ppf "mcas_table(donor=%d n=%d parked=%d)" donor
        (List.length entries) (List.length parked)
