open Aring_wire

type t =
  | Put of { key : string; value : string }
  | Del of { key : string }
  | Cas of { key : string; expect : string option; value : string }
  | Sync_read of { reader : string; nonce : int; key : string }
  | Hello of {
      view : Types.ring_id;
      daemon : Types.pid;
      applied : int;
      digest : int64;
      synced : bool;
    }
  | Chunk of {
      view : Types.ring_id;
      donor : Types.pid;
      index : int;
      total : int;
      applied : int;
      entries : (string * string) list;
    }

let is_write = function
  | Put _ | Del _ | Cas _ -> true
  | Sync_read _ | Hello _ | Chunk _ -> false

let write_key = function
  | Put { key; _ } | Del { key } | Cas { key; _ } -> Some key
  | Sync_read _ | Hello _ | Chunk _ -> None

(* Tags. The encoding reuses the wire codec primitives but lives entirely
   inside daemon App payloads — no frame-level format change. *)
let tag_put = 1
let tag_del = 2
let tag_cas = 3
let tag_sync_read = 4
let tag_hello = 5
let tag_chunk = 6

let write_str e s = Codec.write_bytes e (Bytes.unsafe_of_string s)
let read_str d = Bytes.unsafe_to_string (Codec.read_bytes d)

let write_ring e (r : Types.ring_id) =
  Codec.write_i32 e r.rep;
  Codec.write_i32 e r.ring_seq

let read_ring d : Types.ring_id =
  let rep = Codec.read_i32 d in
  let ring_seq = Codec.read_i32 d in
  { rep; ring_seq }

let encode op =
  let e = Codec.encoder () in
  (match op with
  | Put { key; value } ->
      Codec.write_u8 e tag_put;
      write_str e key;
      write_str e value
  | Del { key } ->
      Codec.write_u8 e tag_del;
      write_str e key
  | Cas { key; expect; value } ->
      Codec.write_u8 e tag_cas;
      write_str e key;
      (match expect with
      | None -> Codec.write_bool e false
      | Some x ->
          Codec.write_bool e true;
          write_str e x);
      write_str e value
  | Sync_read { reader; nonce; key } ->
      Codec.write_u8 e tag_sync_read;
      write_str e reader;
      Codec.write_i32 e nonce;
      write_str e key
  | Hello { view; daemon; applied; digest; synced } ->
      Codec.write_u8 e tag_hello;
      write_ring e view;
      Codec.write_i32 e daemon;
      Codec.write_i32 e applied;
      Codec.write_i64 e (Int64.to_int digest);
      Codec.write_bool e synced
  | Chunk { view; donor; index; total; applied; entries } ->
      Codec.write_u8 e tag_chunk;
      write_ring e view;
      Codec.write_i32 e donor;
      Codec.write_i32 e index;
      Codec.write_i32 e total;
      Codec.write_i32 e applied;
      Codec.write_list e
        (fun (k, v) ->
          write_str e k;
          write_str e v)
        entries);
  Codec.to_bytes e

let decode bytes =
  let d = Codec.decoder bytes in
  let tag = Codec.read_u8 d in
  let op =
    if tag = tag_put then
      let key = read_str d in
      let value = read_str d in
      Put { key; value }
    else if tag = tag_del then Del { key = read_str d }
    else if tag = tag_cas then begin
      let key = read_str d in
      let expect = if Codec.read_bool d then Some (read_str d) else None in
      let value = read_str d in
      Cas { key; expect; value }
    end
    else if tag = tag_sync_read then begin
      let reader = read_str d in
      let nonce = Codec.read_i32 d in
      let key = read_str d in
      Sync_read { reader; nonce; key }
    end
    else if tag = tag_hello then begin
      let view = read_ring d in
      let daemon = Codec.read_i32 d in
      let applied = Codec.read_i32 d in
      let digest = Int64.of_int (Codec.read_i64 d) in
      let synced = Codec.read_bool d in
      Hello { view; daemon; applied; digest; synced }
    end
    else if tag = tag_chunk then begin
      let view = read_ring d in
      let donor = Codec.read_i32 d in
      let index = Codec.read_i32 d in
      let total = Codec.read_i32 d in
      let applied = Codec.read_i32 d in
      let entries =
        Codec.read_list d (fun () ->
            let k = read_str d in
            let v = read_str d in
            (k, v))
      in
      Chunk { view; donor; index; total; applied; entries }
    end
    else raise (Codec.Decode_error (Printf.sprintf "Op: unknown tag %d" tag))
  in
  Codec.expect_end d;
  op

let pp ppf = function
  | Put { key; value } ->
      Format.fprintf ppf "put(%s=%dB)" key (String.length value)
  | Del { key } -> Format.fprintf ppf "del(%s)" key
  | Cas { key; expect; value } ->
      Format.fprintf ppf "cas(%s %s->%dB)" key
        (match expect with None -> "absent" | Some x -> Printf.sprintf "%dB" (String.length x))
        (String.length value)
  | Sync_read { reader; nonce; key } ->
      Format.fprintf ppf "sync_read(%s #%d %s)" reader nonce key
  | Hello { view; daemon; applied; digest; synced } ->
      Format.fprintf ppf "hello(%a d%d applied=%d digest=%Lx%s)"
        Types.pp_ring_id view daemon applied digest
        (if synced then "" else " unsynced")
  | Chunk { view; donor; index; total; applied; entries } ->
      Format.fprintf ppf "chunk(%a donor=%d %d/%d applied=%d n=%d)"
        Types.pp_ring_id view donor (index + 1) total applied
        (List.length entries)
