open Aring_wire

type violation_kind =
  | Stale_state
  | Stale_read
  | Non_monotonic_read
  | Apply_gap
  | Divergence
  | Unsynced

type violation = {
  o_node : Types.pid;
  o_kind : violation_kind;
  o_detail : string;
}

let kind_label = function
  | Stale_state -> "stale_state"
  | Stale_read -> "stale_read"
  | Non_monotonic_read -> "non_monotonic_read"
  | Apply_gap -> "apply_gap"
  | Divergence -> "divergence"
  | Unsynced -> "unsynced"

type shadow = {
  sh_store : (string, string) Hashtbl.t;
  mutable sh_index : int;
  mutable sh_token : int;
}

type t = {
  max_violations : int;
  mutable kept : violation list;  (* newest first *)
  mutable total : int;
  shadows : (Types.pid, shadow) Hashtbl.t;
  mutable replicas : Kv.t list;
}

let create ?(max_violations = 100) () =
  {
    max_violations;
    kept = [];
    total = 0;
    shadows = Hashtbl.create 8;
    replicas = [];
  }

let violation t ~node kind fmt =
  Printf.ksprintf
    (fun detail ->
      t.total <- t.total + 1;
      if List.length t.kept < t.max_violations then
        t.kept <- { o_node = node; o_kind = kind; o_detail = detail } :: t.kept)
    fmt

let shadow_of t node =
  match Hashtbl.find_opt t.shadows node with
  | Some s -> s
  | None ->
      let s = { sh_store = Hashtbl.create 64; sh_index = 0; sh_token = 0 } in
      Hashtbl.replace t.shadows node s;
      s

let str_opt = function None -> "absent" | Some v -> Printf.sprintf "%S" v

let observe t ~node (obs : Kv.observation) =
  let sh = shadow_of t node in
  match obs with
  | Kv.Applied { index; op; value } ->
      if index <> sh.sh_index + 1 then
        violation t ~node Apply_gap "apply index %d after shadow index %d"
          index sh.sh_index;
      sh.sh_index <- index;
      (match op with
      | Op.Put { key; value } -> Hashtbl.replace sh.sh_store key value
      | Op.Del { key } -> Hashtbl.remove sh.sh_store key
      | Op.Cas { key; expect; value } ->
          if Hashtbl.find_opt sh.sh_store key = expect then
            Hashtbl.replace sh.sh_store key value
      | Op.Sync_read _ | Op.Hello _ | Op.Chunk _ | Op.Mcas _ | Op.Mdecide _
      | Op.Skip _ | Op.Mcas_table _ ->
          ());
      let key = Option.value ~default:"" (Op.write_key op) in
      let expected = Hashtbl.find_opt sh.sh_store key in
      if expected <> value then begin
        violation t ~node Stale_state
          "apply %d (%s): store has %s, shadow expects %s" index
          (Format.asprintf "%a" Op.pp op)
          (str_opt value) (str_opt expected);
        (* Adopt the reported value so one bug is one violation, not a
           cascade on every later touch of the key. *)
        match value with
        | Some v -> Hashtbl.replace sh.sh_store key v
        | None -> Hashtbl.remove sh.sh_store key
      end
  | Kv.Read { key; value; token; sync } ->
      if token < sh.sh_token then
        violation t ~node Non_monotonic_read
          "read of %S at token %d after token %d" key token sh.sh_token;
      sh.sh_token <- max sh.sh_token token;
      (* The shadow models exactly the applied prefix; compare only when
         the read's token matches it. *)
      if token = sh.sh_index then begin
        let expected = Hashtbl.find_opt sh.sh_store key in
        if expected <> value then
          violation t ~node Stale_read
            "%sread of %S at token %d returned %s, shadow has %s"
            (if sync then "sync " else "")
            key token (str_opt value) (str_opt expected)
      end
  | Kv.Installed { applied; entries; _ } ->
      Hashtbl.reset sh.sh_store;
      List.iter (fun (k, v) -> Hashtbl.replace sh.sh_store k v) entries;
      sh.sh_index <- applied;
      (* A snapshot install re-bases the consistency token: the donor's
         log is authoritative even when shorter than the token a frozen
         minority replica last exposed. *)
      sh.sh_token <- applied
  | Kv.Aborted -> ()
  (* Mcas life-cycle and skip observations carry no store effect: commit
     writes arrive as ordinary [Applied] observations and flow through
     the shadow like any other op. *)
  | Kv.Voted _ | Kv.Decided _ | Kv.Skipped _ -> ()
  | Kv.Reset ->
      Hashtbl.reset sh.sh_store;
      sh.sh_index <- 0;
      sh.sh_token <- 0

let attach t kv =
  t.replicas <- t.replicas @ [ kv ];
  Kv.add_observer kv (fun obs -> observe t ~node:(Kv.node kv) obs)

let sorted_entries tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let check_convergence t kvs =
  List.iter
    (fun kv ->
      let node = Kv.node kv in
      if not (Kv.synced kv) then
        violation t ~node Unsynced "replica not synced at end of run";
      (* Final state must equal the shadow byte for byte. *)
      match Hashtbl.find_opt t.shadows node with
      | Some sh ->
          if sorted_entries sh.sh_store <> Kv.entries kv then
            violation t ~node Divergence
              "final store (%d entries) differs from shadow (%d entries)"
              (Kv.store_size kv)
              (Hashtbl.length sh.sh_store)
      | None -> ())
    kvs;
  match kvs with
  | [] | [ _ ] -> ()
  | first :: rest ->
      let a0 = Kv.applied first and d0 = Kv.digest first in
      List.iter
        (fun kv ->
          if Kv.applied kv <> a0 || Kv.digest kv <> d0 then
            violation t ~node:(Kv.node kv) Divergence
              "replica at applied=%d digest=%Lx but node %d at applied=%d \
               digest=%Lx"
              (Kv.applied kv) (Kv.digest kv) (Kv.node first) a0 d0)
        rest

let violation_count t = t.total
let violations t = List.rev t.kept

let messages t =
  List.rev_map
    (fun v ->
      Printf.sprintf "node %d %s: %s" v.o_node (kind_label v.o_kind) v.o_detail)
    t.kept

let pp ppf t =
  if t.total = 0 then Format.fprintf ppf "oracle OK"
  else begin
    Format.fprintf ppf "%d consistency violation(s):@." t.total;
    List.iter (fun m -> Format.fprintf ppf "  %s@." m) (messages t)
  end
