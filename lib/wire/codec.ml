exception Decode_error of string

type encoder = Buffer.t

let encoder () = Buffer.create 256
let to_bytes e = Buffer.to_bytes e
let encoded_size e = Buffer.length e

let write_u8 e n =
  if n < 0 || n > 0xFF then invalid_arg "Codec.write_u8: out of range";
  Buffer.add_char e (Char.chr n)

let write_bool e b = write_u8 e (if b then 1 else 0)

let write_i32 e n =
  if n < -0x8000_0000 || n > 0x7FFF_FFFF then
    invalid_arg "Codec.write_i32: out of range";
  Buffer.add_int32_be e (Int32.of_int n)

let write_i64 e n = Buffer.add_int64_be e (Int64.of_int n)

let write_bytes e b =
  write_i32 e (Bytes.length b);
  Buffer.add_bytes e b

let write_list e f l =
  write_i32 e (List.length l);
  List.iter f l

type decoder = { buf : bytes; mutable pos : int }

let decoder buf = { buf; pos = 0 }

let remaining d = Bytes.length d.buf - d.pos

let need d n =
  if remaining d < n then
    raise (Decode_error (Printf.sprintf "truncated input: need %d, have %d" n (remaining d)))

let read_u8 d =
  need d 1;
  let n = Char.code (Bytes.get d.buf d.pos) in
  d.pos <- d.pos + 1;
  n

let read_bool d =
  match read_u8 d with
  | 0 -> false
  | 1 -> true
  | n -> raise (Decode_error (Printf.sprintf "invalid bool byte %d" n))

let read_i32 d =
  need d 4;
  let n = Int32.to_int (Bytes.get_int32_be d.buf d.pos) in
  d.pos <- d.pos + 4;
  n

let read_i64 d =
  need d 8;
  let n = Int64.to_int (Bytes.get_int64_be d.buf d.pos) in
  d.pos <- d.pos + 8;
  n

let read_bytes d =
  let len = read_i32 d in
  if len < 0 then raise (Decode_error "negative byte-string length");
  need d len;
  let b = Bytes.sub d.buf d.pos len in
  d.pos <- d.pos + len;
  b

let read_list d f =
  let n = read_i32 d in
  if n < 0 then raise (Decode_error "negative list length");
  (* Every encoded element occupies at least one byte, so a count larger
     than the remaining input is malformed. Checking before allocating
     keeps a bit-flipped count field from provoking a giant List.init. *)
  if n > remaining d then
    raise
      (Decode_error
         (Printf.sprintf "list length %d exceeds %d remaining bytes" n
            (remaining d)));
  let acc = ref [] in
  for _ = 1 to n do
    acc := f () :: !acc
  done;
  List.rev !acc

let expect_end d =
  if remaining d <> 0 then
    raise (Decode_error (Printf.sprintf "%d trailing bytes" (remaining d)))
