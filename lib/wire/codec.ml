exception Decode_error of string

(* ------------------------------------------------------------------ *)
(* Explicit-offset primitives into caller-owned bytes                   *)

let set_u8 buf pos n =
  if n < 0 || n > 0xFF then invalid_arg "Codec.set_u8: out of range";
  Bytes.unsafe_set buf pos (Char.unsafe_chr n);
  pos + 1

let set_bool buf pos b = set_u8 buf pos (if b then 1 else 0)

let set_i32 buf pos n =
  if n < -0x8000_0000 || n > 0x7FFF_FFFF then
    invalid_arg "Codec.set_i32: out of range";
  Bytes.set_int32_be buf pos (Int32.of_int n);
  pos + 4

let set_i64 buf pos n =
  Bytes.set_int64_be buf pos (Int64.of_int n);
  pos + 8

let set_bytes buf pos b =
  let len = Bytes.length b in
  let pos = set_i32 buf pos len in
  Bytes.blit b 0 buf pos len;
  pos + len

(* ------------------------------------------------------------------ *)
(* Reusable scratch buffer: grows in place, allocates nothing once warm *)

type scratch = { mutable sbuf : bytes; mutable slen : int }

let scratch ?(initial_capacity = 256) () =
  { sbuf = Bytes.create (max 16 initial_capacity); slen = 0 }

let scratch_reset s = s.slen <- 0
let scratch_length s = s.slen
let scratch_buffer s = s.sbuf
let scratch_contents s = Bytes.sub s.sbuf 0 s.slen

let scratch_ensure s extra =
  let need = s.slen + extra in
  if need > Bytes.length s.sbuf then begin
    let cap = ref (2 * Bytes.length s.sbuf) in
    while need > !cap do
      cap := 2 * !cap
    done;
    let bigger = Bytes.create !cap in
    Bytes.blit s.sbuf 0 bigger 0 s.slen;
    s.sbuf <- bigger
  end

let put_u8 s n =
  scratch_ensure s 1;
  s.slen <- set_u8 s.sbuf s.slen n

let put_bool s b = put_u8 s (if b then 1 else 0)

let put_i32 s n =
  scratch_ensure s 4;
  s.slen <- set_i32 s.sbuf s.slen n

let put_i64 s n =
  scratch_ensure s 8;
  s.slen <- set_i64 s.sbuf s.slen n

let put_bytes s b =
  scratch_ensure s (4 + Bytes.length b);
  s.slen <- set_bytes s.sbuf s.slen b

let put_list s f l =
  put_i32 s (List.length l);
  List.iter f l

(* ------------------------------------------------------------------ *)
(* Buffer-based encoder (reference implementation)                      *)

type encoder = Buffer.t

let encoder () = Buffer.create 256
let to_bytes e = Buffer.to_bytes e
let encoded_size e = Buffer.length e

let write_u8 e n =
  if n < 0 || n > 0xFF then invalid_arg "Codec.write_u8: out of range";
  Buffer.add_char e (Char.chr n)

let write_bool e b = write_u8 e (if b then 1 else 0)

let write_i32 e n =
  if n < -0x8000_0000 || n > 0x7FFF_FFFF then
    invalid_arg "Codec.write_i32: out of range";
  Buffer.add_int32_be e (Int32.of_int n)

let write_i64 e n = Buffer.add_int64_be e (Int64.of_int n)

let write_bytes e b =
  write_i32 e (Bytes.length b);
  Buffer.add_bytes e b

let write_list e f l =
  write_i32 e (List.length l);
  List.iter f l

(* ------------------------------------------------------------------ *)
(* Decoder: a reusable cursor over a byte-string slice                  *)

type decoder = { mutable dbuf : bytes; mutable pos : int; mutable limit : int }

let decoder buf = { dbuf = buf; pos = 0; limit = Bytes.length buf }

let decoder_empty () = { dbuf = Bytes.empty; pos = 0; limit = 0 }

let decoder_reset d buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Codec.decoder_reset: slice out of bounds";
  d.dbuf <- buf;
  d.pos <- pos;
  d.limit <- pos + len

let remaining d = d.limit - d.pos

let need d n =
  if remaining d < n then
    raise (Decode_error (Printf.sprintf "truncated input: need %d, have %d" n (remaining d)))

let read_u8 d =
  need d 1;
  let n = Char.code (Bytes.get d.dbuf d.pos) in
  d.pos <- d.pos + 1;
  n

let read_bool d =
  match read_u8 d with
  | 0 -> false
  | 1 -> true
  | n -> raise (Decode_error (Printf.sprintf "invalid bool byte %d" n))

let read_i32 d =
  need d 4;
  let n = Int32.to_int (Bytes.get_int32_be d.dbuf d.pos) in
  d.pos <- d.pos + 4;
  n

let read_i64 d =
  need d 8;
  let n = Int64.to_int (Bytes.get_int64_be d.dbuf d.pos) in
  d.pos <- d.pos + 8;
  n

let read_bytes d =
  let len = read_i32 d in
  if len < 0 then raise (Decode_error "negative byte-string length");
  need d len;
  let b = Bytes.sub d.dbuf d.pos len in
  d.pos <- d.pos + len;
  b

let read_list d f =
  let n = read_i32 d in
  if n < 0 then raise (Decode_error "negative list length");
  (* Every encoded element occupies at least one byte, so a count larger
     than the remaining input is malformed. Checking before allocating
     keeps a bit-flipped count field from provoking a giant List.init. *)
  if n > remaining d then
    raise
      (Decode_error
         (Printf.sprintf "list length %d exceeds %d remaining bytes" n
            (remaining d)));
  let acc = ref [] in
  for _ = 1 to n do
    acc := f () :: !acc
  done;
  List.rev !acc

let expect_end d =
  if remaining d <> 0 then
    raise (Decode_error (Printf.sprintf "%d trailing bytes" (remaining d)))
