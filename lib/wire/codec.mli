(** Binary encoding primitives for the wire format.

    All integers are encoded big-endian. The format favours simplicity over
    compactness: fixed 8-byte integers, 4-byte lengths. Decoding raises
    {!Decode_error} on malformed input rather than returning partial
    values, so a corrupted packet can be dropped whole (the system model
    assumes no corruption; this guards against bugs and truncation).

    Two write paths produce byte-identical output:

    - the original {!encoder} (a [Buffer.t]) — the {e reference}
      implementation, kept for clarity and as the oracle in golden and
      property tests;
    - the {!scratch} path — explicit-offset stores into a caller-owned,
      grow-in-place byte buffer. Once the buffer has grown to the working
      set's frame size, encoding allocates {e nothing}; this is the hot
      path used by the pooled message codec (see {!Aring_wire.Message.Pool}). *)

exception Decode_error of string

(** {2 Explicit-offset primitives}

    Each [set_*] stores at [pos] in a caller-owned buffer and returns the
    position one past the written field. The caller is responsible for
    capacity ([Bytes.length buf]); these never grow the buffer. *)

val set_u8 : bytes -> int -> int -> int
val set_bool : bytes -> int -> bool -> int
val set_i32 : bytes -> int -> int -> int
(** [set_i32 buf pos n] requires [n] to fit in 32 signed bits. *)

val set_i64 : bytes -> int -> int -> int
val set_bytes : bytes -> int -> bytes -> int
(** Length-prefixed (4 bytes) byte string. *)

(** {2 Reusable scratch buffer}

    A {!scratch} owns a byte buffer that doubles in place on demand and is
    reused across encodes via {!scratch_reset} — steady-state writes are
    allocation-free. *)

type scratch

val scratch : ?initial_capacity:int -> unit -> scratch
val scratch_reset : scratch -> unit
(** Forget the contents; the backing buffer (and its capacity) is kept. *)

val scratch_length : scratch -> int
val scratch_buffer : scratch -> bytes
(** The backing buffer itself — valid up to {!scratch_length}, invalidated
    by the next write or reset. Zero-copy read access for sends. *)

val scratch_contents : scratch -> bytes
(** A fresh copy of the written bytes. *)

val put_u8 : scratch -> int -> unit
val put_bool : scratch -> bool -> unit
val put_i32 : scratch -> int -> unit
val put_i64 : scratch -> int -> unit
val put_bytes : scratch -> bytes -> unit
val put_list : scratch -> ('a -> unit) -> 'a list -> unit

(** {2 Buffer-based reference encoder} *)

type encoder
(** Mutable output buffer. *)

val encoder : unit -> encoder
val to_bytes : encoder -> bytes
val encoded_size : encoder -> int

val write_u8 : encoder -> int -> unit
val write_bool : encoder -> bool -> unit
val write_i32 : encoder -> int -> unit
(** [write_i32 e n] requires [n] to fit in 32 signed bits. *)

val write_i64 : encoder -> int -> unit
val write_bytes : encoder -> bytes -> unit
(** Length-prefixed (4 bytes) byte string. *)

val write_list : encoder -> ('a -> unit) -> 'a list -> unit
(** Count-prefixed (4 bytes) list; elements written with the callback. *)

(** {2 Decoder} *)

type decoder
(** Read cursor over a byte-string slice. Reusable: {!decoder_reset}
    re-points an existing cursor without allocating, so a long-lived
    decoder (e.g. over a receive buffer) costs nothing per packet. *)

val decoder : bytes -> decoder
(** Cursor over the whole byte string. *)

val decoder_empty : unit -> decoder
(** An exhausted cursor, for later {!decoder_reset}. *)

val decoder_reset : decoder -> bytes -> pos:int -> len:int -> unit
(** Re-point [d] at the slice [\[pos, pos+len)] of [buf].
    @raise Invalid_argument if the slice is out of bounds. *)

val remaining : decoder -> int

val read_u8 : decoder -> int
val read_bool : decoder -> bool
val read_i32 : decoder -> int
val read_i64 : decoder -> int
val read_bytes : decoder -> bytes
val read_list : decoder -> (unit -> 'a) -> 'a list
(** Elements are read in order. The count is validated against the bytes
    remaining (each element occupies at least one byte), so corrupted
    counts fail with {!Decode_error} instead of allocating. *)

val expect_end : decoder -> unit
(** [expect_end d] raises {!Decode_error} unless the input was fully
    consumed — every complete message must account for all its bytes. *)
