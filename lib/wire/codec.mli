(** Binary encoding primitives for the wire format.

    All integers are encoded big-endian. The format favours simplicity over
    compactness: fixed 8-byte integers, 4-byte lengths. Decoding raises
    {!Decode_error} on malformed input rather than returning partial
    values, so a corrupted packet can be dropped whole (the system model
    assumes no corruption; this guards against bugs and truncation). *)

exception Decode_error of string

type encoder
(** Mutable output buffer. *)

val encoder : unit -> encoder
val to_bytes : encoder -> bytes
val encoded_size : encoder -> int

val write_u8 : encoder -> int -> unit
val write_bool : encoder -> bool -> unit
val write_i32 : encoder -> int -> unit
(** [write_i32 e n] requires [n] to fit in 32 signed bits. *)

val write_i64 : encoder -> int -> unit
val write_bytes : encoder -> bytes -> unit
(** Length-prefixed (4 bytes) byte string. *)

val write_list : encoder -> ('a -> unit) -> 'a list -> unit
(** Count-prefixed (4 bytes) list; elements written with the callback. *)

type decoder
(** Read cursor over an input byte string. *)

val decoder : bytes -> decoder
val remaining : decoder -> int

val read_u8 : decoder -> int
val read_bool : decoder -> bool
val read_i32 : decoder -> int
val read_i64 : decoder -> int
val read_bytes : decoder -> bytes
val read_list : decoder -> (unit -> 'a) -> 'a list
(** Elements are read in order. The count is validated against the bytes
    remaining (each element occupies at least one byte), so corrupted
    counts fail with {!Decode_error} instead of allocating. *)

val expect_end : decoder -> unit
(** [expect_end d] raises {!Decode_error} unless the input was fully
    consumed — every complete message must account for all its bytes. *)
