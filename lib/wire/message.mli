(** Wire messages of the Accelerated Ring protocol.

    Four message kinds travel on the network:

    - {b Data} messages carry application payloads plus the ordering
      metadata of Section III-B of the paper ([seq], [pid], [round]), the
      delivery service level, and a [post_token] flag recording whether the
      message was multicast after the sender released the token (used by
      priority-switching method 2, Section III-C).
    - {b Token} messages carry the ordering/flow-control state of Section
      III-A ([seq], [aru], [fcc], [rtr]) plus the aru-lowering memory
      ([aru_id]) and a per-hop [token_id] for duplicate suppression when the
      token is retransmitted after a suspected loss.
    - {b Join} messages drive the gather stage of the membership algorithm.
    - {b Commit} tokens circulate (twice) around a proposed new ring to
      commit a membership and exchange recovery information. *)

open Types

type data = {
  d_ring : ring_id;  (** Configuration this message belongs to. *)
  seq : seqno;  (** Position in the total order. *)
  pid : pid;  (** Initiating participant. *)
  d_round : round;  (** Token round in which the message was initiated. *)
  post_token : bool;  (** Sent during the post-token multicast phase? *)
  service : service;  (** Requested delivery service. *)
  payload : bytes;  (** Application data; opaque to the protocol. *)
}

type token = {
  t_ring : ring_id;
  token_id : int;
      (** Monotonic per-hop counter; lets a participant discard stale
          retransmitted tokens. *)
  t_round : round;  (** Rotation count since installation. *)
  t_seq : seqno;  (** Last sequence number claimed by any participant. *)
  aru : seqno;  (** All-received-up-to (stability floor candidate). *)
  aru_id : pid option;  (** Participant that last lowered [aru], if any. *)
  fcc : int;  (** Messages multicast during the last token round. *)
  rtr : seqno list;  (** Outstanding retransmission requests, ascending. *)
}

type join = {
  j_pid : pid;
  proc_set : pid list;  (** Processes the sender considers reachable. *)
  fail_set : pid list;  (** Processes the sender has declared failed. *)
  join_seq : int;  (** Gather attempt number (monotonic per process). *)
}

type member_info = {
  m_pid : pid;
  m_old_ring : ring_id;  (** Ring the member previously belonged to. *)
  m_aru : seqno;  (** Member's local aru in its old ring. *)
  m_high_seq : seqno;  (** Highest sequence the member saw in its old ring. *)
  m_high_delivered : seqno;  (** Highest sequence the member delivered. *)
}

type commit = {
  c_ring : ring_id;  (** Proposed new ring identifier. *)
  c_token_id : int;
  c_pass : int;
      (** 1: collect members' old-ring state; 2: spread it; 3: barrier
          after the recovery exchange, accumulating which old-ring
          messages the survivors collectively hold; 4: verify the
          exchange completed and install. *)
  c_memb : member_info list;  (** Proposed membership, in ring order. *)
  c_holds : (ring_id * seqno list) list;
      (** Per old ring: the union of exchange-range sequence numbers held
          by the survivors, accumulated during pass 3. A member missing
          any of them at pass 4 must not install silently (it re-gathers
          instead), keeping survivors' delivered sets identical even when
          recovery floods are lost. *)
}

type t =
  | Data of data
  | Token of token
  | Join of join
  | Commit of commit

val kind : t -> string
(** Short human-readable tag ("data", "token", "join", "commit"). *)

val encode : t -> bytes
(** [encode m] is the wire representation of [m] — the {e reference}
    encoder, built on [Buffer]. The pooled paths below produce
    byte-identical output (asserted by the golden-vector and property
    suites) while allocating nothing in steady state. *)

val encode_into : Codec.scratch -> t -> unit
(** [encode_into s m] resets [s] and writes [m]'s wire representation into
    it. Once the scratch has grown to the working frame size this
    allocates nothing; read the result with {!Codec.scratch_buffer} /
    {!Codec.scratch_length} (zero-copy) or {!Codec.scratch_contents}. *)

(** Pooled encode/decode for the hot paths (regular token and data).

    A pool owns one scratch encoder and one decoder cursor, reused across
    calls: encoding into the pool and decoding from a caller-owned receive
    buffer touch no [Buffer], no intermediate [bytes], and no fresh cursor
    records. Pools are not thread-safe; use one per runtime loop. *)
module Pool : sig
  type pool

  val create : ?initial_capacity:int -> unit -> pool

  val encode_view : pool -> t -> bytes * int
  (** [(buf, len)] — the pool-owned encoding of the message, valid until
      the next [encode]/[encode_view] on this pool. The zero-allocation
      transmit path: hand [buf] up to [len] straight to [sendto]. *)

  val encode : pool -> t -> bytes
  (** Like {!encode_view} but returns a fresh copy (allocates only the
      result). Byte-identical to the top-level reference {!val:encode}. *)

  val decode_sub : pool -> bytes -> pos:int -> len:int -> t
  (** Decode the message occupying [\[pos, pos+len)] of a caller-owned
      buffer (e.g. a socket receive buffer) without copying the slice.
      @raise Codec.Decode_error on malformed input. *)

  val decode : pool -> bytes -> t
  (** [decode_sub] over the whole byte string. *)
end

val decode : bytes -> t
(** [decode b] parses a wire message.
    @raise Codec.Decode_error on malformed input. *)

val decode_result : bytes -> (t, string) result
(** [decode_result b] is [decode] with the {!Codec.Decode_error} captured
    as [Error]. Any truncation or corruption of a valid encoding lands
    here — decoding never raises any other exception and never allocates
    proportionally to a corrupted length field. *)

val header_overhead : int
(** Encoded size of a data message with an empty payload — used when
    accounting clean-payload vs on-wire throughput. *)

val data_wire_size : payload_len:int -> int
(** On-wire size of a data message with a [payload_len]-byte payload. *)

val wire_size : t -> int
(** [wire_size m] is [Bytes.length (encode m)], computed analytically —
    the simulator sizes packets without paying for encoding. *)

val pp : Format.formatter -> t -> unit
