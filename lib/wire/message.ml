open Types

type data = {
  d_ring : ring_id;
  seq : seqno;
  pid : pid;
  d_round : round;
  post_token : bool;
  service : service;
  payload : bytes;
}

type token = {
  t_ring : ring_id;
  token_id : int;
  t_round : round;
  t_seq : seqno;
  aru : seqno;
  aru_id : pid option;
  fcc : int;
  rtr : seqno list;
}

type join = {
  j_pid : pid;
  proc_set : pid list;
  fail_set : pid list;
  join_seq : int;
}

type member_info = {
  m_pid : pid;
  m_old_ring : ring_id;
  m_aru : seqno;
  m_high_seq : seqno;
  m_high_delivered : seqno;
}

type commit = {
  c_ring : ring_id;
  c_token_id : int;
  c_pass : int;
  c_memb : member_info list;
  c_holds : (ring_id * seqno list) list;
}

type t =
  | Data of data
  | Token of token
  | Join of join
  | Commit of commit

let kind = function
  | Data _ -> "data"
  | Token _ -> "token"
  | Join _ -> "join"
  | Commit _ -> "commit"

let tag_data = 1
let tag_token = 2
let tag_join = 3
let tag_commit = 4

let service_tag = function Fifo -> 0 | Causal -> 1 | Agreed -> 2 | Safe -> 3

let service_of_tag = function
  | 0 -> Fifo
  | 1 -> Causal
  | 2 -> Agreed
  | 3 -> Safe
  | n -> raise (Codec.Decode_error (Printf.sprintf "invalid service tag %d" n))

let write_ring_id e (r : ring_id) =
  Codec.write_i64 e r.rep;
  Codec.write_i64 e r.ring_seq

let read_ring_id d =
  let rep = Codec.read_i64 d in
  let ring_seq = Codec.read_i64 d in
  { rep; ring_seq }

let write_member_info e m =
  Codec.write_i64 e m.m_pid;
  write_ring_id e m.m_old_ring;
  Codec.write_i64 e m.m_aru;
  Codec.write_i64 e m.m_high_seq;
  Codec.write_i64 e m.m_high_delivered

let read_member_info d =
  let m_pid = Codec.read_i64 d in
  let m_old_ring = read_ring_id d in
  let m_aru = Codec.read_i64 d in
  let m_high_seq = Codec.read_i64 d in
  let m_high_delivered = Codec.read_i64 d in
  { m_pid; m_old_ring; m_aru; m_high_seq; m_high_delivered }

let encode m =
  let e = Codec.encoder () in
  (match m with
  | Data d ->
      Codec.write_u8 e tag_data;
      write_ring_id e d.d_ring;
      Codec.write_i64 e d.seq;
      Codec.write_i64 e d.pid;
      Codec.write_i64 e d.d_round;
      Codec.write_bool e d.post_token;
      Codec.write_u8 e (service_tag d.service);
      Codec.write_bytes e d.payload
  | Token t ->
      Codec.write_u8 e tag_token;
      write_ring_id e t.t_ring;
      Codec.write_i64 e t.token_id;
      Codec.write_i64 e t.t_round;
      Codec.write_i64 e t.t_seq;
      Codec.write_i64 e t.aru;
      (match t.aru_id with
      | None -> Codec.write_bool e false
      | Some pid ->
          Codec.write_bool e true;
          Codec.write_i64 e pid);
      Codec.write_i64 e t.fcc;
      Codec.write_list e (Codec.write_i64 e) t.rtr
  | Join j ->
      Codec.write_u8 e tag_join;
      Codec.write_i64 e j.j_pid;
      Codec.write_list e (Codec.write_i64 e) j.proc_set;
      Codec.write_list e (Codec.write_i64 e) j.fail_set;
      Codec.write_i64 e j.join_seq
  | Commit c ->
      Codec.write_u8 e tag_commit;
      write_ring_id e c.c_ring;
      Codec.write_i64 e c.c_token_id;
      Codec.write_i64 e c.c_pass;
      Codec.write_list e (write_member_info e) c.c_memb;
      Codec.write_list e
        (fun (ring, seqs) ->
          write_ring_id e ring;
          Codec.write_list e (Codec.write_i64 e) seqs)
        c.c_holds);
  Codec.to_bytes e

let decode buf =
  let d = Codec.decoder buf in
  let tag = Codec.read_u8 d in
  let m =
    if tag = tag_data then begin
      let d_ring = read_ring_id d in
      let seq = Codec.read_i64 d in
      let pid = Codec.read_i64 d in
      let d_round = Codec.read_i64 d in
      let post_token = Codec.read_bool d in
      let service = service_of_tag (Codec.read_u8 d) in
      let payload = Codec.read_bytes d in
      Data { d_ring; seq; pid; d_round; post_token; service; payload }
    end
    else if tag = tag_token then begin
      let t_ring = read_ring_id d in
      let token_id = Codec.read_i64 d in
      let t_round = Codec.read_i64 d in
      let t_seq = Codec.read_i64 d in
      let aru = Codec.read_i64 d in
      let aru_id =
        if Codec.read_bool d then Some (Codec.read_i64 d) else None
      in
      let fcc = Codec.read_i64 d in
      let rtr = Codec.read_list d (fun () -> Codec.read_i64 d) in
      Token { t_ring; token_id; t_round; t_seq; aru; aru_id; fcc; rtr }
    end
    else if tag = tag_join then begin
      let j_pid = Codec.read_i64 d in
      let proc_set = Codec.read_list d (fun () -> Codec.read_i64 d) in
      let fail_set = Codec.read_list d (fun () -> Codec.read_i64 d) in
      let join_seq = Codec.read_i64 d in
      Join { j_pid; proc_set; fail_set; join_seq }
    end
    else if tag = tag_commit then begin
      let c_ring = read_ring_id d in
      let c_token_id = Codec.read_i64 d in
      let c_pass = Codec.read_i64 d in
      let c_memb = Codec.read_list d (fun () -> read_member_info d) in
      let c_holds =
        Codec.read_list d (fun () ->
            let ring = read_ring_id d in
            let seqs = Codec.read_list d (fun () -> Codec.read_i64 d) in
            (ring, seqs))
      in
      Commit { c_ring; c_token_id; c_pass; c_memb; c_holds }
    end
    else raise (Codec.Decode_error (Printf.sprintf "unknown message tag %d" tag))
  in
  Codec.expect_end d;
  m

let decode_result buf =
  match decode buf with
  | m -> Ok m
  | exception Codec.Decode_error msg -> Error msg

let header_overhead =
  let empty =
    Data
      {
        d_ring = { rep = 0; ring_seq = 0 };
        seq = 0;
        pid = 0;
        d_round = 0;
        post_token = false;
        service = Agreed;
        payload = Bytes.empty;
      }
  in
  Bytes.length (encode empty)

let data_wire_size ~payload_len = header_overhead + payload_len

let ring_id_size = 16

let wire_size = function
  | Data d -> header_overhead + Bytes.length d.payload
  | Token t ->
      1 + ring_id_size + (8 * 4)
      + (match t.aru_id with None -> 1 | Some _ -> 9)
      + 8 + 4
      + (8 * List.length t.rtr)
  | Join j ->
      1 + 8 + 4
      + (8 * List.length j.proc_set)
      + 4
      + (8 * List.length j.fail_set)
      + 8
  | Commit c ->
      1 + ring_id_size + 8 + 8 + 4
      + (48 * List.length c.c_memb)
      + 4
      + List.fold_left
          (fun acc (_, seqs) -> acc + ring_id_size + 4 + (8 * List.length seqs))
          0 c.c_holds

let pp ppf = function
  | Data d ->
      Format.fprintf ppf "data(seq=%d pid=%d round=%d %s%s len=%d)" d.seq d.pid
        d.d_round
        (service_to_string d.service)
        (if d.post_token then " post" else "")
        (Bytes.length d.payload)
  | Token t ->
      Format.fprintf ppf "token(id=%d round=%d seq=%d aru=%d fcc=%d rtr=%d)"
        t.token_id t.t_round t.t_seq t.aru t.fcc (List.length t.rtr)
  | Join j ->
      Format.fprintf ppf "join(pid=%d procs=%d fails=%d seq=%d)" j.j_pid
        (List.length j.proc_set) (List.length j.fail_set) j.join_seq
  | Commit c ->
      Format.fprintf ppf "commit(%a pass=%d memb=%d)" pp_ring_id c.c_ring
        c.c_pass (List.length c.c_memb)
