open Types

type data = {
  d_ring : ring_id;
  seq : seqno;
  pid : pid;
  d_round : round;
  post_token : bool;
  service : service;
  payload : bytes;
}

type token = {
  t_ring : ring_id;
  token_id : int;
  t_round : round;
  t_seq : seqno;
  aru : seqno;
  aru_id : pid option;
  fcc : int;
  rtr : seqno list;
}

type join = {
  j_pid : pid;
  proc_set : pid list;
  fail_set : pid list;
  join_seq : int;
}

type member_info = {
  m_pid : pid;
  m_old_ring : ring_id;
  m_aru : seqno;
  m_high_seq : seqno;
  m_high_delivered : seqno;
}

type commit = {
  c_ring : ring_id;
  c_token_id : int;
  c_pass : int;
  c_memb : member_info list;
  c_holds : (ring_id * seqno list) list;
}

type t =
  | Data of data
  | Token of token
  | Join of join
  | Commit of commit

let kind = function
  | Data _ -> "data"
  | Token _ -> "token"
  | Join _ -> "join"
  | Commit _ -> "commit"

let tag_data = 1
let tag_token = 2
let tag_join = 3
let tag_commit = 4

let service_tag = function Fifo -> 0 | Causal -> 1 | Agreed -> 2 | Safe -> 3

let service_of_tag = function
  | 0 -> Fifo
  | 1 -> Causal
  | 2 -> Agreed
  | 3 -> Safe
  | n -> raise (Codec.Decode_error (Printf.sprintf "invalid service tag %d" n))

(* A single serializer parametrized over the output sink guarantees the
   Buffer-based reference path and the zero-allocation scratch path can
   never drift apart byte-wise (the golden-vector test pins the format
   itself). [w_list] writes only the 4-byte count; elements follow via
   the per-field writers. *)
type writer = {
  w_u8 : int -> unit;
  w_bool : bool -> unit;
  w_i64 : int -> unit;
  w_bytes : bytes -> unit;
  w_count : int -> unit;
}

let buffer_writer e =
  {
    w_u8 = Codec.write_u8 e;
    w_bool = Codec.write_bool e;
    w_i64 = Codec.write_i64 e;
    w_bytes = Codec.write_bytes e;
    w_count = Codec.write_i32 e;
  }

let scratch_writer s =
  {
    w_u8 = Codec.put_u8 s;
    w_bool = Codec.put_bool s;
    w_i64 = Codec.put_i64 s;
    w_bytes = Codec.put_bytes s;
    w_count = Codec.put_i32 s;
  }

let write_ring_id w (r : ring_id) =
  w.w_i64 r.rep;
  w.w_i64 r.ring_seq

let write_i64_list w l =
  w.w_count (List.length l);
  List.iter w.w_i64 l

let write_member_info w m =
  w.w_i64 m.m_pid;
  write_ring_id w m.m_old_ring;
  w.w_i64 m.m_aru;
  w.w_i64 m.m_high_seq;
  w.w_i64 m.m_high_delivered

let write_message w m =
  match m with
  | Data d ->
      w.w_u8 tag_data;
      write_ring_id w d.d_ring;
      w.w_i64 d.seq;
      w.w_i64 d.pid;
      w.w_i64 d.d_round;
      w.w_bool d.post_token;
      w.w_u8 (service_tag d.service);
      w.w_bytes d.payload
  | Token t ->
      w.w_u8 tag_token;
      write_ring_id w t.t_ring;
      w.w_i64 t.token_id;
      w.w_i64 t.t_round;
      w.w_i64 t.t_seq;
      w.w_i64 t.aru;
      (match t.aru_id with
      | None -> w.w_bool false
      | Some pid ->
          w.w_bool true;
          w.w_i64 pid);
      w.w_i64 t.fcc;
      write_i64_list w t.rtr
  | Join j ->
      w.w_u8 tag_join;
      w.w_i64 j.j_pid;
      write_i64_list w j.proc_set;
      write_i64_list w j.fail_set;
      w.w_i64 j.join_seq
  | Commit c ->
      w.w_u8 tag_commit;
      write_ring_id w c.c_ring;
      w.w_i64 c.c_token_id;
      w.w_i64 c.c_pass;
      w.w_count (List.length c.c_memb);
      List.iter (write_member_info w) c.c_memb;
      w.w_count (List.length c.c_holds);
      List.iter
        (fun (ring, seqs) ->
          write_ring_id w ring;
          write_i64_list w seqs)
        c.c_holds

let encode m =
  let e = Codec.encoder () in
  write_message (buffer_writer e) m;
  Codec.to_bytes e

let encode_into s m =
  Codec.scratch_reset s;
  write_message (scratch_writer s) m

let read_ring_id d =
  let rep = Codec.read_i64 d in
  let ring_seq = Codec.read_i64 d in
  { rep; ring_seq }

let read_member_info d =
  let m_pid = Codec.read_i64 d in
  let m_old_ring = read_ring_id d in
  let m_aru = Codec.read_i64 d in
  let m_high_seq = Codec.read_i64 d in
  let m_high_delivered = Codec.read_i64 d in
  { m_pid; m_old_ring; m_aru; m_high_seq; m_high_delivered }

let decode_from d =
  let tag = Codec.read_u8 d in
  let m =
    if tag = tag_data then begin
      let d_ring = read_ring_id d in
      let seq = Codec.read_i64 d in
      let pid = Codec.read_i64 d in
      let d_round = Codec.read_i64 d in
      let post_token = Codec.read_bool d in
      let service = service_of_tag (Codec.read_u8 d) in
      let payload = Codec.read_bytes d in
      Data { d_ring; seq; pid; d_round; post_token; service; payload }
    end
    else if tag = tag_token then begin
      let t_ring = read_ring_id d in
      let token_id = Codec.read_i64 d in
      let t_round = Codec.read_i64 d in
      let t_seq = Codec.read_i64 d in
      let aru = Codec.read_i64 d in
      let aru_id =
        if Codec.read_bool d then Some (Codec.read_i64 d) else None
      in
      let fcc = Codec.read_i64 d in
      let rtr = Codec.read_list d (fun () -> Codec.read_i64 d) in
      Token { t_ring; token_id; t_round; t_seq; aru; aru_id; fcc; rtr }
    end
    else if tag = tag_join then begin
      let j_pid = Codec.read_i64 d in
      let proc_set = Codec.read_list d (fun () -> Codec.read_i64 d) in
      let fail_set = Codec.read_list d (fun () -> Codec.read_i64 d) in
      let join_seq = Codec.read_i64 d in
      Join { j_pid; proc_set; fail_set; join_seq }
    end
    else if tag = tag_commit then begin
      let c_ring = read_ring_id d in
      let c_token_id = Codec.read_i64 d in
      let c_pass = Codec.read_i64 d in
      let c_memb = Codec.read_list d (fun () -> read_member_info d) in
      let c_holds =
        Codec.read_list d (fun () ->
            let ring = read_ring_id d in
            let seqs = Codec.read_list d (fun () -> Codec.read_i64 d) in
            (ring, seqs))
      in
      Commit { c_ring; c_token_id; c_pass; c_memb; c_holds }
    end
    else raise (Codec.Decode_error (Printf.sprintf "unknown message tag %d" tag))
  in
  Codec.expect_end d;
  m

let decode buf = decode_from (Codec.decoder buf)

(* ------------------------------------------------------------------ *)
(* Pooled codec: reusable scratch encoder + decoder cursor.             *)

module Pool = struct
  type pool = { enc : Codec.scratch; w : writer; dec : Codec.decoder }
  (* The writer (a record of closures over the scratch) is built once at
     pool creation — rebuilding it per encode costs ~240 bytes/message. *)

  let create ?(initial_capacity = 2048) () =
    let enc = Codec.scratch ~initial_capacity () in
    { enc; w = scratch_writer enc; dec = Codec.decoder_empty () }

  let encode_view p m =
    Codec.scratch_reset p.enc;
    write_message p.w m;
    (Codec.scratch_buffer p.enc, Codec.scratch_length p.enc)

  let encode p m =
    Codec.scratch_reset p.enc;
    write_message p.w m;
    Codec.scratch_contents p.enc

  let decode_sub p buf ~pos ~len =
    Codec.decoder_reset p.dec buf ~pos ~len;
    decode_from p.dec

  let decode p buf = decode_sub p buf ~pos:0 ~len:(Bytes.length buf)
end

let decode_result buf =
  match decode buf with
  | m -> Ok m
  | exception Codec.Decode_error msg -> Error msg

let header_overhead =
  let empty =
    Data
      {
        d_ring = { rep = 0; ring_seq = 0 };
        seq = 0;
        pid = 0;
        d_round = 0;
        post_token = false;
        service = Agreed;
        payload = Bytes.empty;
      }
  in
  Bytes.length (encode empty)

let data_wire_size ~payload_len = header_overhead + payload_len

let ring_id_size = 16

let wire_size = function
  | Data d -> header_overhead + Bytes.length d.payload
  | Token t ->
      1 + ring_id_size + (8 * 4)
      + (match t.aru_id with None -> 1 | Some _ -> 9)
      + 8 + 4
      + (8 * List.length t.rtr)
  | Join j ->
      1 + 8 + 4
      + (8 * List.length j.proc_set)
      + 4
      + (8 * List.length j.fail_set)
      + 8
  | Commit c ->
      1 + ring_id_size + 8 + 8 + 4
      + (48 * List.length c.c_memb)
      + 4
      + List.fold_left
          (fun acc (_, seqs) -> acc + ring_id_size + 4 + (8 * List.length seqs))
          0 c.c_holds

let pp ppf = function
  | Data d ->
      Format.fprintf ppf "data(seq=%d pid=%d round=%d %s%s len=%d)" d.seq d.pid
        d.d_round
        (service_to_string d.service)
        (if d.post_token then " post" else "")
        (Bytes.length d.payload)
  | Token t ->
      Format.fprintf ppf "token(id=%d round=%d seq=%d aru=%d fcc=%d rtr=%d)"
        t.token_id t.t_round t.t_seq t.aru t.fcc (List.length t.rtr)
  | Join j ->
      Format.fprintf ppf "join(pid=%d procs=%d fails=%d seq=%d)" j.j_pid
        (List.length j.proc_set) (List.length j.fail_set) j.join_seq
  | Commit c ->
      Format.fprintf ppf "commit(%a pass=%d memb=%d)" pp_ring_id c.c_ring
        c.c_pass (List.length c.c_memb)
