(** Intentional protocol bugs, injected at the participant boundary.

    The fuzzer is itself tested by seeding a known invariant violation
    and checking the campaign finds and shrinks it. A bug is a wrapper
    over {!Aring_ring.Participant.t} that tampers with the action stream
    the real protocol emits — the protocol code is untouched. *)

type t =
  | Clean  (** No tampering. *)
  | Skip_delivery of { node : int; every : int }
      (** Silently drop every [every]-th application delivery at [node]:
          a direct gap in that node's delivered sequence, caught by the
          trace checker's gap-free invariant. *)
  | Skip_retransmission
      (** Suppress every retransmitted data multicast at every node (a
          multicast whose sequence number is not above the highest that
          node has multicast in the ring so far). Any message actually
          lost on the wire then stays lost, stalling its losers — caught
          by the liveness (probe-convergence) check. *)
  | Kv_skip_apply of { node : int; every : int }
      (** Application-layer bug: the KV replica at [node] skips the store
          mutation of every [every]-th write while still consuming the op
          slot — a stale-state / skipped-apply defect caught by the
          end-to-end consistency oracle ({!Aring_app.Oracle}), not by the
          protocol checker. Only meaningful when the runner hosts the KV
          app; {!wrap} is the identity for it. *)
  | Recovery_flood
      (** Construction-time bug: build every member with
          [~legacy_flood:true], restoring the pre-overhaul recovery
          exchange (unpaced, undeduplicated, no retransmission). On
          schedules with near-MTU payloads and a small switch buffer this
          livelocks formation — caught by the health watchdog judge.
          {!wrap} is the identity for it. *)

val label : t -> string
val of_string : string -> (t, string) result
(** ["clean"], ["skip-delivery"], ["skip-retransmission"],
    ["kv-skip-apply"] or ["recovery-flood"]. *)

val wrap : t -> node:int -> Aring_ring.Participant.t -> Aring_ring.Participant.t
