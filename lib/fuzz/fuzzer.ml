module Prng = Aring_util.Prng

type config = {
  trials : int;
  seed : int64;
  max_nodes : int;
  rings : int;
  bug : Bug.t;
  adaptive : bool;
  app : Runner.app;
  shrink : bool;
  max_shrink_runs : int;
  stop : unit -> bool;
  log : string -> unit;
}

let default_config =
  {
    trials = 200;
    seed = 1L;
    max_nodes = 8;
    rings = 1;
    bug = Bug.Clean;
    adaptive = false;
    app = Runner.App_none;
    shrink = true;
    max_shrink_runs = 200;
    stop = (fun () -> false);
    log = ignore;
  }

type trial = { index : int; schedule : Schedule.t; outcome : Runner.outcome }

type report = {
  trials_run : int;
  failure : trial option;
  shrunk : Shrink.result option;
}

let run_campaign cfg =
  let master = Prng.create ~seed:cfg.seed in
  let trials_run = ref 0 in
  let failure = ref None in
  (let i = ref 0 in
   while !failure = None && !i < cfg.trials && not (cfg.stop ()) do
     let seed = Prng.next_int64 master in
     let schedule =
       Schedule.generate ~max_nodes:cfg.max_nodes ~rings:cfg.rings ~seed ()
     in
     let outcome =
       Runner.run ~bug:cfg.bug ~adaptive:cfg.adaptive ~app:cfg.app schedule
     in
     incr trials_run;
     (match outcome.Runner.failure with
     | None ->
         cfg.log
           (Printf.sprintf "trial %4d seed=%Ld pass (deliveries=%d views=%d)"
              !i seed outcome.Runner.deliveries outcome.Runner.views)
     | Some f ->
         cfg.log
           (Printf.sprintf "trial %4d seed=%Ld FAIL (%s)" !i seed
              (Runner.failure_label f));
         cfg.log (Format.asprintf "  %a" Schedule.pp schedule);
         cfg.log (Format.asprintf "  %a" Runner.pp_outcome outcome);
         failure := Some { index = !i; schedule; outcome });
     incr i
   done);
  let shrunk =
    match !failure with
    | Some t when cfg.shrink ->
        let r =
          Shrink.shrink ~bug:cfg.bug ~adaptive:cfg.adaptive ~app:cfg.app
            ~max_runs:cfg.max_shrink_runs t.schedule
            t.outcome
        in
        cfg.log
          (Printf.sprintf "shrunk: %d -> %d faults, %d -> %d nodes (%d runs)"
             (Schedule.fault_count t.schedule)
             (Schedule.fault_count r.Shrink.schedule)
             t.schedule.Schedule.config.Schedule.n_nodes
             r.Shrink.schedule.Schedule.config.Schedule.n_nodes r.Shrink.runs);
        cfg.log (Format.asprintf "  %a" Schedule.pp r.Shrink.schedule);
        Some r
    | _ -> None
  in
  { trials_run = !trials_run; failure = !failure; shrunk }

let replay ?(bug = Bug.Clean) ?(adaptive = false) ?(app = Runner.App_none)
    ?extra_sink schedule =
  Runner.run ~bug ~adaptive ~app ?extra_sink schedule
