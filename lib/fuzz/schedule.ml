module Prng = Aring_util.Prng
module Json = Aring_obs.Json
open Aring_sim

(* [ring] on a fault scopes it to one ordering ring of a multi-ring run
   (-1 = all rings, the only value single-ring schedules ever carry).
   Crashes are always physical: a crashed node dies in every ring. *)
type fault =
  | Crash of { at_ns : int; node : int }
  | Partition of { at_ns : int; until_ns : int; island : int list; ring : int }
  | Loss_burst of { at_ns : int; until_ns : int; permille : int }
  | Token_blackout of { at_ns : int; until_ns : int; ring : int }

type config = {
  n_nodes : int;
  rings : int;
  tier_ids : int list;
  ten_gig : bool;
  base_loss_permille : int;
  small_switch_buffer : bool;
  accelerated_window : int;
  personal_window : int;
  aggressive : bool;
  max_seq_gap : int;
  payload : int;
  submit_gap_ns : int;
  safe_permille : int;
  horizon_ns : int;
  drain_ns : int;
  liveness : bool;
}

type t = { seed : int64; config : config; faults : fault list }

let fault_count t = List.length t.faults

let fault_window = function
  | Crash { at_ns; _ } -> (at_ns, at_ns)
  | Partition { at_ns; until_ns; _ }
  | Loss_burst { at_ns; until_ns; _ }
  | Token_blackout { at_ns; until_ns; _ } ->
      (at_ns, until_ns)

let ms n = n * 1_000_000

(* Failure-detection timeouts are fixed short (as in the membership test
   suite) so gather/commit/recover cycles complete in a few hundred
   simulated milliseconds; the schedule varies the dimensions the paper's
   correctness argument actually depends on. *)
let params (c : config) : Aring_ring.Params.t =
  {
    (Aring_ring.Params.default) with
    personal_window = c.personal_window;
    accelerated_window = c.accelerated_window;
    max_seq_gap = c.max_seq_gap;
    priority_method =
      (if c.aggressive then Aring_ring.Params.Aggressive
       else Aring_ring.Params.Conservative);
    token_retransmit_ns = ms 10;
    token_loss_ns = ms 50;
    join_retransmit_ns = ms 20;
    consensus_timeout_ns = ms 100;
    merge_probe_ns = ms 80;
  }

let tier = function
  | 0 -> Profile.library
  | 1 -> Profile.daemon
  | _ -> Profile.spread

let net (c : config) =
  let base = if c.ten_gig then Profile.ten_gigabit else Profile.gigabit in
  let base =
    if c.base_loss_permille > 0 then
      Profile.with_loss base (float_of_int c.base_loss_permille /. 1000.0)
    else base
  in
  if c.small_switch_buffer then
    { base with Profile.switch_port_buffer = 32 * 1024 }
  else base

(* ------------------------------------------------------------------ *)
(* Generation                                                          *)

let gen_island prng n =
  (* A nonempty proper subset of the nodes. *)
  let size = 1 + Prng.int prng (n - 1) in
  let perm = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Prng.int prng (i + 1) in
    let tmp = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- tmp
  done;
  List.sort compare (Array.to_list (Array.sub perm 0 size))

let gen_window prng ~horizon ~max_len =
  let at_ns = Prng.int prng horizon in
  let len = 1 + Prng.int prng (min max_len (horizon - at_ns)) in
  (at_ns, at_ns + len)

(* Ring scope is drawn *after* each fault's own draws and only when the
   run is multi-ring, so single-ring schedules consume the exact
   historical PRNG stream and every pinned corpus schedule regenerates
   bit-identically. *)
let gen_ring prng ~rings =
  if rings <= 1 then -1
  else if Prng.int prng 3 = 0 then -1
  else Prng.int prng rings

let gen_fault prng ~n ~rings ~horizon =
  match Prng.int prng 4 with
  | 0 -> Crash { at_ns = Prng.int prng horizon; node = Prng.int prng n }
  | 1 ->
      let at_ns, until_ns = gen_window prng ~horizon ~max_len:(ms 120) in
      let island = gen_island prng n in
      Partition { at_ns; until_ns; island; ring = gen_ring prng ~rings }
  | 2 ->
      let at_ns, until_ns = gen_window prng ~horizon ~max_len:(ms 80) in
      Loss_burst { at_ns; until_ns; permille = 20 + Prng.int prng 280 }
  | _ ->
      let at_ns, until_ns = gen_window prng ~horizon ~max_len:(ms 60) in
      Token_blackout { at_ns; until_ns; ring = gen_ring prng ~rings }

let generate ?(max_nodes = 8) ?(rings = 1) ~seed () =
  let prng = Prng.create ~seed in
  (* The default bound reproduces the historical draw stream exactly:
     [max_nodes = 8] makes this [2 + Prng.int prng 7], so every pinned
     corpus schedule regenerates unchanged. Larger bounds (the CI runs a
     32-node pass) stress recovery pacing at scale. *)
  let n_nodes = 2 + Prng.int prng (max 1 (max_nodes - 1)) in
  let tier_ids = List.init n_nodes (fun _ -> Prng.int prng 3) in
  let ten_gig = Prng.bool prng in
  let base_loss_permille =
    if Prng.int prng 2 = 0 then 0 else 1 + Prng.int prng 30
  in
  (* Sustained loss must scale down with ring size or the liveness
     oracle demands the statistically impossible: a token rotation is
     [n_nodes] hops, so [n * p] is the expected token kills per
     rotation, and past ~1/4 the full ring falls apart faster than a
     formation plus one settled rotation can complete (no total-order
     protocol converges under that). Cap n*p at 1/4. The prng draw
     stream is untouched, and the cap is inert for the default 8-node
     bound (250/8 = 31 >= the drawn max of 30), so every pinned corpus
     schedule regenerates bit-identically. Bounded Loss_burst windows
     still push far past this cap transiently. *)
  let base_loss_permille = min base_loss_permille (250 / n_nodes) in
  let small_switch_buffer = Prng.int prng 4 = 0 in
  let accelerated_window = Prng.int prng 21 in
  let personal_window = max accelerated_window (10 + Prng.int prng 51) in
  let aggressive = Prng.bool prng in
  (* Default global_window is 300; keep max_seq_gap >= that, with the low
     end deliberately tight (sequencing bumps into the stability line). *)
  let max_seq_gap = 300 + Prng.int prng 1701 in
  let payload = 16 + Prng.int prng 1335 in
  let submit_gap_ns = 200_000 + Prng.int prng 1_800_001 in
  let safe_permille = if Prng.int prng 3 = 0 then Prng.int prng 301 else 0 in
  let horizon_ns = ms (80 + Prng.int prng 171) in
  let n_faults = Prng.int prng 7 in
  let faults =
    List.init n_faults (fun _ ->
        gen_fault prng ~n:n_nodes ~rings ~horizon:horizon_ns)
  in
  let faults =
    List.sort (fun a b -> compare (fault_window a) (fault_window b)) faults
  in
  {
    seed;
    config =
      {
        n_nodes;
        rings;
        tier_ids;
        ten_gig;
        base_loss_permille;
        small_switch_buffer;
        accelerated_window;
        personal_window;
        aggressive;
        max_seq_gap;
        payload;
        submit_gap_ns;
        safe_permille;
        horizon_ns;
        (* Convergence time grows superlinearly with ring size: the
           final merge needs a loss-free window of O(n) hops, every
           failed attempt burns a ~100 ms consensus timeout, and wider
           rings churn more under the same per-hop loss (a 29-node
           no_merge shrink was observed mid-commit of the full merge
           when a flat 2 s drain expired, converging 1 s later). The
           flat 2 s encoded the historical 8-node cap; scale it with
           the draw. n <= 8 keeps exactly 2 s, so pinned corpus
           schedules regenerate bit-identically. *)
        drain_ns = ms 2_000 * max 1 ((n_nodes + 7) / 8);
        liveness = true;
      };
    faults;
  }

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)

let fault_to_json = function
  | Crash { at_ns; node } ->
      Json.Obj [ ("fault", Json.String "crash"); ("at", Json.Int at_ns); ("node", Json.Int node) ]
  | Partition { at_ns; until_ns; island; ring } ->
      Json.Obj
        ([
           ("fault", Json.String "partition");
           ("at", Json.Int at_ns);
           ("until", Json.Int until_ns);
           ("island", Json.List (List.map (fun i -> Json.Int i) island));
         ]
        @ if ring >= 0 then [ ("ring", Json.Int ring) ] else [])
  | Loss_burst { at_ns; until_ns; permille } ->
      Json.Obj
        [
          ("fault", Json.String "loss_burst");
          ("at", Json.Int at_ns);
          ("until", Json.Int until_ns);
          ("permille", Json.Int permille);
        ]
  | Token_blackout { at_ns; until_ns; ring } ->
      Json.Obj
        ([
           ("fault", Json.String "token_blackout");
           ("at", Json.Int at_ns);
           ("until", Json.Int until_ns);
         ]
        @ if ring >= 0 then [ ("ring", Json.Int ring) ] else [])

let malformed what = raise (Json.Parse_error ("schedule: missing " ^ what))

let get_int j key =
  match Option.bind (Json.member key j) Json.to_int with
  | Some v -> v
  | None -> malformed key

let get_bool j key =
  match Option.bind (Json.member key j) Json.to_bool with
  | Some v -> v
  | None -> malformed key

let get_str j key =
  match Option.bind (Json.member key j) Json.to_str with
  | Some v -> v
  | None -> malformed key

let get_int_default j key ~default =
  match Option.bind (Json.member key j) Json.to_int with
  | Some v -> v
  | None -> default

let get_int_list j key =
  match Option.bind (Json.member key j) Json.to_list with
  | Some l ->
      List.map
        (fun v -> match Json.to_int v with Some i -> i | None -> malformed key)
        l
  | None -> malformed key

let fault_of_json j =
  match get_str j "fault" with
  | "crash" -> Crash { at_ns = get_int j "at"; node = get_int j "node" }
  | "partition" ->
      Partition
        {
          at_ns = get_int j "at";
          until_ns = get_int j "until";
          island = get_int_list j "island";
          ring = get_int_default j "ring" ~default:(-1);
        }
  | "loss_burst" ->
      Loss_burst
        {
          at_ns = get_int j "at";
          until_ns = get_int j "until";
          permille = get_int j "permille";
        }
  | "token_blackout" ->
      Token_blackout
        {
          at_ns = get_int j "at";
          until_ns = get_int j "until";
          ring = get_int_default j "ring" ~default:(-1);
        }
  | k -> raise (Json.Parse_error ("schedule: unknown fault kind " ^ k))

let to_json t =
  let c = t.config in
  Json.Obj
    ([
      ("seed", Json.String (Int64.to_string t.seed));
      ("n_nodes", Json.Int c.n_nodes);
    ]
    @ (if c.rings <> 1 then [ ("rings", Json.Int c.rings) ] else [])
    @ [
      ("tier_ids", Json.List (List.map (fun i -> Json.Int i) c.tier_ids));
      ("ten_gig", Json.Bool c.ten_gig);
      ("base_loss_permille", Json.Int c.base_loss_permille);
      ("small_switch_buffer", Json.Bool c.small_switch_buffer);
      ("accelerated_window", Json.Int c.accelerated_window);
      ("personal_window", Json.Int c.personal_window);
      ("aggressive", Json.Bool c.aggressive);
      ("max_seq_gap", Json.Int c.max_seq_gap);
      ("payload", Json.Int c.payload);
      ("submit_gap_ns", Json.Int c.submit_gap_ns);
      ("safe_permille", Json.Int c.safe_permille);
      ("horizon_ns", Json.Int c.horizon_ns);
      ("drain_ns", Json.Int c.drain_ns);
      ("liveness", Json.Bool c.liveness);
      ("faults", Json.List (List.map fault_to_json t.faults));
    ])

let of_json j =
  let faults =
    match Option.bind (Json.member "faults" j) Json.to_list with
    | Some l -> List.map fault_of_json l
    | None -> malformed "faults"
  in
  {
    seed = Int64.of_string (get_str j "seed");
    config =
      {
        n_nodes = get_int j "n_nodes";
        rings = get_int_default j "rings" ~default:1;
        tier_ids = get_int_list j "tier_ids";
        ten_gig = get_bool j "ten_gig";
        base_loss_permille = get_int j "base_loss_permille";
        small_switch_buffer = get_bool j "small_switch_buffer";
        accelerated_window = get_int j "accelerated_window";
        personal_window = get_int j "personal_window";
        aggressive = get_bool j "aggressive";
        max_seq_gap = get_int j "max_seq_gap";
        payload = get_int j "payload";
        submit_gap_ns = get_int j "submit_gap_ns";
        safe_permille = get_int j "safe_permille";
        horizon_ns = get_int j "horizon_ns";
        drain_ns = get_int j "drain_ns";
        liveness = get_bool j "liveness";
      };
    faults;
  }

let to_string t = Json.to_string (to_json t)
let of_string s = of_json (Json.of_string s)

let pp_ring ppf ring =
  if ring >= 0 then Format.fprintf ppf " ring=%d" ring

let pp_fault ppf = function
  | Crash { at_ns; node } ->
      Format.fprintf ppf "crash(node=%d at=%dus)" node (at_ns / 1000)
  | Partition { at_ns; until_ns; island; ring } ->
      Format.fprintf ppf "partition({%s} %d-%dus%a)"
        (String.concat "," (List.map string_of_int island))
        (at_ns / 1000) (until_ns / 1000) pp_ring ring
  | Loss_burst { at_ns; until_ns; permille } ->
      Format.fprintf ppf "loss(%d%%o %d-%dus)" permille (at_ns / 1000)
        (until_ns / 1000)
  | Token_blackout { at_ns; until_ns; ring } ->
      Format.fprintf ppf "token_blackout(%d-%dus%a)" (at_ns / 1000)
        (until_ns / 1000) pp_ring ring

let pp ppf t =
  let c = t.config in
  Format.fprintf ppf
    "schedule(seed=%Ld n=%d rings=%d net=%s loss=%d%%o aw=%d pw=%d gap=%d %s \
     payload=%d horizon=%dms faults=[%a])"
    t.seed c.n_nodes c.rings
    (if c.ten_gig then "10g" else "1g")
    c.base_loss_permille c.accelerated_window c.personal_window c.max_seq_gap
    (if c.aggressive then "aggr" else "cons")
    c.payload
    (c.horizon_ns / ms 1)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       pp_fault)
    t.faults
