let entry_name ~label (s : Schedule.t) =
  Printf.sprintf "%s-seed%Lu-f%d.json" label s.Schedule.seed
    (Schedule.fault_count s)

let save ~dir ~label s =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (entry_name ~label s) in
  let oc = open_out path in
  output_string oc (Schedule.to_string s);
  output_char oc '\n';
  close_out oc;
  path

let load_file path =
  let ic = open_in path in
  let line = try input_line ic with End_of_file -> close_in ic; "" in
  close_in ic;
  Schedule.of_string line

let load_dir dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.sort compare
    |> List.map (fun f -> (f, load_file (Filename.concat dir f)))
