(** Execute one fault schedule on the simulator and judge it.

    The runner builds a full membership-capable cluster ({!Aring_ring.Member})
    from the schedule's config, attaches the trace-driven EVS invariant
    checker as a live sink, injects the schedule's faults, drives a padded
    workload until the horizon, then submits per-node convergence probes
    and drains. Two oracles:

    - {b Safety}: any {!Aring_obs.Checker} violation (total order, delivery
      gaps, aru/safe-line regressions, duplicate token holders) fails the
      run immediately at the next chunk boundary.
    - {b Liveness}, in two EVS-compatible stages. After all fault windows
      close (the generator keeps them inside the horizon; crashes are
      permanent), every surviving node must first install one common
      regular configuration containing exactly the survivors — partitioned
      rings must re-merge. Only then are the probes submitted: EVS allows
      a message sequenced in a pre-merge configuration to be delivered
      only within it, so probing earlier would flag correct behavior.
      Once probed, every survivor must deliver every survivor's probe
      within the remaining drain budget.

    Everything — including the early-exit points — is a deterministic
    function of the schedule, so [run] is referentially transparent:
    {!outcome.trace_hash} is byte-stable across replays of equal
    schedules. *)

type app =
  | App_none  (** Raw ring members with a padded byte workload. *)
  | App_kv
      (** Every member hosts a daemon plus a replicated-KV replica
          ({!Aring_app.Kv}); the workload becomes a skewed
          put/del/cas/read mix (the schedule's safe-permille drives sync
          reads), and a shared end-to-end consistency oracle
          ({!Aring_app.Oracle}) becomes a third judge alongside the
          trace checker and probe liveness. *)

type failure =
  | Invariant of Aring_obs.Checker.verdict
      (** Safety violation; the verdict carries the recorded violations. *)
  | No_merge of { states : (int * string) list }
      (** Liveness stage 1: the survivors never installed a common
          all-survivor regular view within the drain budget; [states] is
          each survivor's membership state name at the deadline. *)
  | No_convergence of { missing : (int * string) list }
      (** Liveness stage 2: (node, probe) pairs never delivered within
          the drain budget, sorted. *)
  | Kv_violation of { total : int; messages : string list }
      (** The KV consistency oracle recorded violations (stale state or
          reads, op-log gaps, divergence); [messages] is a prefix. *)
  | Kv_unsettled of { nodes : (int * string) list }
      (** Probes converged but the KV replicas never reached a common
          settled (applied, digest) state within the drain budget. *)
  | Mcas_divergence of { id : string; decisions : (int * int * bool) list }
      (** Multi-ring only: one cross-shard mcas was decided commit on
          some (node, ring) observation and abort on another —
          cross-shard atomicity broken. *)
  | Health_stall of { report : Aring_obs.Health.report }
      (** The health watchdog (fourth judge, liveness schedules only)
          flagged a formation livelock or delivery stall before the
          drain deadline; the report carries per-node phase-cycle
          statistics and recent phase trails. The flight recorder still
          holds the run's tail at return — dump it for the post-mortem. *)
  | Run_exception of string
      (** The protocol or simulator raised; the string is the exception. *)

type outcome = {
  schedule : Schedule.t;
  failure : failure option;
  verdict : Aring_obs.Checker.verdict;
  deliveries : int;  (** Application deliveries across all nodes. *)
  views : int;  (** Configuration installations across all nodes. *)
  trace_hash : int64;
      (** FNV-1a over the JSONL rendering of the full trace stream. *)
  end_ns : int;  (** Simulated time at which the run stopped. *)
  health : Aring_obs.Health.report;
      (** End-of-run watchdog report, present on passing runs too: use it
          to assert convergence {e quality} (peak formation attempts,
          recovery-flood dedup savings), not just convergence. *)
}

val run :
  ?bug:Bug.t ->
  ?adaptive:bool ->
  ?app:app ->
  ?extra_sink:Aring_obs.Trace.sink ->
  Schedule.t ->
  outcome
(** Execute the schedule. [bug] (default {!Bug.Clean}) wraps every
    participant before the cluster is built — used to prove the fuzzer
    catches seeded protocol defects ({!Bug.Kv_skip_apply} instead plants
    inside the replica and needs [app = App_kv]; {!Bug.Recovery_flood}
    instead builds every member with the pre-overhaul recovery
    exchange). With [adaptive]
    (default [false]), every member runs the AIMD accelerated-window
    controller ({!Aring_control.Controller}), exercising the ordering and
    membership invariants while the per-node window moves; [app]
    (default {!App_none}) selects the hosted application. Runs stay
    deterministic per schedule for any fixed mode combination; the trace
    hash differs between modes (the controller changes send timing, the
    kv app adds its own traffic and trace events).

    A schedule with [config.rings > 1] runs on an
    {!Aring_multiring.Cluster} instead: every physical node joins all
    rings, the workload becomes the sharded put/del/cas/read mix plus
    cross-shard mcas, and convergence is judged per ring on replica
    equality, merge quiescence and cross-shard decision agreement
    (probes are never sent; [Bug.Recovery_flood] is not plumbed through
    the cluster builder and behaves as [Clean]). *)

val passed : outcome -> bool

val app_label : app -> string
val app_of_string : string -> (app, string) result
(** ["none"] or ["kv"]. *)

val failure_label : failure -> string
(** ["invariant"], ["no_merge"], ["no_convergence"], ["kv_violation"],
    ["kv_unsettled"], ["mcas_divergence"], ["health_stall"] or
    ["exception"]. *)

val pp_outcome : Format.formatter -> outcome -> unit
