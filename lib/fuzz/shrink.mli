(** Minimize a failing schedule to a small reproducer.

    Greedy delta-debugging over the three structural axes, in order of
    how much each simplifies the reproducer:

    + {b drop faults} — repeatedly try removing each fault event, keeping
      a removal whenever the reduced schedule still fails the same way;
    + {b shorten the run} — binary-reduce the horizon (dropping faults
      pushed outside it and clamping windows to it);
    + {b reduce the cluster} — remove the highest-numbered node, remapping
      faults (crashes of the node vanish; it leaves partition islands).

    A candidate counts as the same failure when its {!Runner.failure_label}
    matches the original's — a shrink is allowed to change the detail of a
    violation but not to morph a safety failure into a liveness one.
    Re-execution happens with the same injected bug as the original run,
    so the whole process is deterministic. *)

type result = {
  schedule : Schedule.t;  (** The minimized schedule; still fails. *)
  outcome : Runner.outcome;  (** Its outcome (same failure label). *)
  runs : int;  (** Candidate executions spent. *)
}

val shrink :
  ?bug:Bug.t ->
  ?adaptive:bool ->
  ?app:Runner.app ->
  ?max_runs:int ->
  Schedule.t ->
  Runner.outcome ->
  result
(** [shrink sched outcome] minimizes [sched], whose run produced the
    failing [outcome]. [max_runs] (default 200) bounds candidate
    executions; the best schedule found within the budget is returned.
    If [outcome] did not fail, [sched] is returned unchanged. [adaptive]
    and [app] must match the mode of the original run so candidates
    reproduce the same behavior (see {!Runner.run}). *)
