module Prng = Aring_util.Prng
module Checker = Aring_obs.Checker
module Trace = Aring_obs.Trace
module Trace_json = Aring_obs.Trace_json
module Flight = Aring_obs.Flight
module Health = Aring_obs.Health
module Daemon = Aring_daemon.Daemon
module Kv = Aring_app.Kv
module Oracle = Aring_app.Oracle
module Cluster = Aring_multiring.Cluster
open Aring_wire
open Aring_ring
open Aring_sim

type app = App_none | App_kv

let app_label = function App_none -> "none" | App_kv -> "kv"

let app_of_string = function
  | "none" -> Ok App_none
  | "kv" -> Ok App_kv
  | s -> Error (Printf.sprintf "unknown app %S" s)

type failure =
  | Invariant of Checker.verdict
  | No_merge of { states : (int * string) list }
  | No_convergence of { missing : (int * string) list }
  | Kv_violation of { total : int; messages : string list }
  | Kv_unsettled of { nodes : (int * string) list }
  | Mcas_divergence of { id : string; decisions : (int * int * bool) list }
  | Health_stall of { report : Health.report }
  | Run_exception of string

type outcome = {
  schedule : Schedule.t;
  failure : failure option;
  verdict : Checker.verdict;
  deliveries : int;
  views : int;
  trace_hash : int64;
  end_ns : int;
  health : Health.report;
      (* End-of-run watchdog report, also on passing runs: tests assert
         convergence quality (peak formation attempts, dedup savings),
         not just convergence. *)
}

let passed o = o.failure = None

let failure_label = function
  | Invariant _ -> "invariant"
  | No_merge _ -> "no_merge"
  | No_convergence _ -> "no_convergence"
  | Kv_violation _ -> "kv_violation"
  | Kv_unsettled _ -> "kv_unsettled"
  | Health_stall _ -> "health_stall"
  | Mcas_divergence _ -> "mcas_divergence"
  | Run_exception _ -> "exception"

let ms n = n * 1_000_000

(* FNV-1a, 64-bit, over the JSONL rendering of each trace event. *)
let fnv_offset = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L

let fnv_string h s =
  let h = ref h in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

let probe_payload node = Printf.sprintf "probe:%d" node

(* One static drop predicate closing over the simulated clock handles
   arbitrarily overlapping fault windows (the LIFO-scoped
   [Netsim.set_drop_until] cannot). Burst losses consume a dedicated PRNG;
   predicate evaluation order is deterministic, so the draw stream is
   too. *)
let install_faults sim (s : Schedule.t) =
  let n = s.config.Schedule.n_nodes in
  let partitions =
    List.filter_map
      (function
        | Schedule.Partition { at_ns; until_ns; island; ring = _ } ->
            let inside = Array.make n false in
            List.iter
              (fun i -> if i >= 0 && i < n then inside.(i) <- true)
              island;
            Some (at_ns, until_ns, inside)
        | _ -> None)
      s.faults
  in
  let bursts =
    List.filter_map
      (function
        | Schedule.Loss_burst { at_ns; until_ns; permille } ->
            Some (at_ns, until_ns, permille)
        | _ -> None)
      s.faults
  in
  let blackouts =
    List.filter_map
      (function
        | Schedule.Token_blackout { at_ns; until_ns; ring = _ } ->
            Some (at_ns, until_ns)
        | _ -> None)
      s.faults
  in
  let burst_prng = Prng.create ~seed:(Int64.logxor s.seed 0x6275727374L) in
  Netsim.set_drop sim (fun ~src ~dst msg ->
      let now = Netsim.now sim in
      let active at until = now >= at && now < until in
      List.exists
        (fun (at, until, inside) ->
          active at until && inside.(src) <> inside.(dst))
        partitions
      || (match msg with
         | Message.Token _ | Message.Commit _ ->
             List.exists (fun (at, until) -> active at until) blackouts
         | _ -> false)
      ||
      let permille =
        List.fold_left
          (fun acc (at, until, p) -> if active at until then max acc p else acc)
          0 bursts
      in
      permille > 0 && Prng.int burst_prng 1000 < permille);
  List.iter
    (function
      | Schedule.Crash { at_ns; node } ->
          if node >= 0 && node < n then
            Netsim.call_at sim ~at:at_ns (fun () ->
                Netsim.crash sim node;
                (* The watchdog must not flag a dead node as stuck. *)
                Health.note_crash ~node)
      | _ -> ())
    s.faults

let install_workload sim (s : Schedule.t) (members : Member.t array) =
  let c = s.config in
  let n = c.Schedule.n_nodes in
  let wl_prng = Prng.create ~seed:(Int64.logxor s.seed 0x776F726BL) in
  let pad tag =
    let len = max (String.length tag) c.Schedule.payload in
    let b = Bytes.make len '.' in
    Bytes.blit_string tag 0 b 0 (String.length tag);
    b
  in
  for node = 0 to n - 1 do
    let counter = ref 0 in
    let rec tick () =
      if Netsim.now sim < c.Schedule.horizon_ns && Netsim.is_alive sim node
      then begin
        incr counter;
        let service =
          if
            c.Schedule.safe_permille > 0
            && Prng.int wl_prng 1000 < c.Schedule.safe_permille
          then Types.Safe
          else Types.Agreed
        in
        Member.submit members.(node) service
          (pad (Printf.sprintf "m:%d:%d" node !counter));
        Netsim.call_at sim
          ~at:(Netsim.now sim + c.Schedule.submit_gap_ns)
          tick
      end
    in
    (* Stagger the start so nodes do not tick in lockstep. *)
    Netsim.call_at sim ~at:(ms 1 + (node * 97_000)) tick
  done

(* KV workload: every node's replica issues a skewed read/write mix at
   the schedule's submission rate. The schedule's safe-permille knob
   doubles as the sync-read fraction (sync reads are the Safe-service
   traffic of the app layer). Value padding follows the schedule's
   payload knob but is capped: full-MTU values on top of the per-op
   envelope framing would turn every membership-recovery exchange into a
   switch-buffer endurance test (the raw-member workload already covers
   full-size payloads); the kv suite is after consistency bugs, not
   congestion collapse. *)
let kv_key_space = 64
let kv_hot_keys = 8
let kv_max_value = 160

let install_kv_workload sim (s : Schedule.t) (kvs : Kv.t array) =
  let c = s.config in
  let n = c.Schedule.n_nodes in
  let wl_prng = Prng.create ~seed:(Int64.logxor s.seed 0x6B76776CL) in
  let pad tag =
    let len =
      max (String.length tag) (min c.Schedule.payload kv_max_value)
    in
    let b = Bytes.make len '.' in
    Bytes.blit_string tag 0 b 0 (String.length tag);
    Bytes.to_string b
  in
  for node = 0 to n - 1 do
    let counter = ref 0 in
    let key () =
      let j =
        if Prng.int wl_prng 1000 < 800 then Prng.int wl_prng kv_hot_keys
        else kv_hot_keys + Prng.int wl_prng (kv_key_space - kv_hot_keys)
      in
      Printf.sprintf "k%02d" j
    in
    let rec tick () =
      if Netsim.now sim < c.Schedule.horizon_ns && Netsim.is_alive sim node
      then begin
        incr counter;
        let kv = kvs.(node) in
        let key = key () in
        if
          c.Schedule.safe_permille > 0
          && Prng.int wl_prng 1000 < c.Schedule.safe_permille
        then Kv.sync_read kv ~key ~on_result:(fun _ ~token:_ -> ())
        else begin
          let r = Prng.int wl_prng 1000 in
          if r < 250 then ignore (Kv.read kv ~key)
          else if r < 320 then Kv.del kv ~key
          else if r < 420 then
            (* CAS against the local view: sometimes stale, so both the
               success and failure paths execute at every replica. *)
            let expect, _ = Kv.read kv ~key in
            Kv.cas kv ~key ~expect
              ~value:(pad (Printf.sprintf "c:%d:%d" node !counter))
          else
            Kv.put kv ~key
              ~value:(pad (Printf.sprintf "v:%d:%d" node !counter))
        end;
        Netsim.call_at sim
          ~at:(Netsim.now sim + c.Schedule.submit_gap_ns)
          tick
      end
    in
    Netsim.call_at sim ~at:(ms 1 + (node * 97_000)) tick
  done


(* ---------- Multi-ring runs (config.rings > 1) ---------- *)

(* Fault translation for an M-ring cluster: partitions and blackouts are
   drawn with an optional ring scope (-1 = every ring); islands stay
   physical, so a scoped partition cuts the same physical nodes but only
   inside one ordering ring's multicast domain. Crashes are physical:
   {!Cluster.crash} kills the node's participant in every ring. The
   burst PRNG seed matches the single-ring path, though the draw
   streams diverge (different message populations) — multi-ring
   schedules are a distinct reproducer universe in any case. *)
let install_faults_multiring cluster (s : Schedule.t) =
  let n = s.config.Schedule.n_nodes in
  let rings = s.config.Schedule.rings in
  let sim = Cluster.sim cluster in
  let partitions =
    List.filter_map
      (function
        | Schedule.Partition { at_ns; until_ns; island; ring } ->
            let inside = Array.make n false in
            List.iter
              (fun i -> if i >= 0 && i < n then inside.(i) <- true)
              island;
            Some (at_ns, until_ns, inside, ring)
        | _ -> None)
      s.faults
  in
  let bursts =
    List.filter_map
      (function
        | Schedule.Loss_burst { at_ns; until_ns; permille } ->
            Some (at_ns, until_ns, permille)
        | _ -> None)
      s.faults
  in
  let blackouts =
    List.filter_map
      (function
        | Schedule.Token_blackout { at_ns; until_ns; ring } ->
            Some (at_ns, until_ns, ring)
        | _ -> None)
      s.faults
  in
  let burst_prng = Prng.create ~seed:(Int64.logxor s.seed 0x6275727374L) in
  Netsim.set_drop sim (fun ~src ~dst msg ->
      let now = Netsim.now sim in
      let active at until = now >= at && now < until in
      (* Domains prune cross-ring traffic before this predicate runs, so
         src and dst always share a ring. *)
      let in_ring ring = ring < 0 || src / n = ring in
      List.exists
        (fun (at, until, inside, ring) ->
          active at until && in_ring ring
          && inside.(src mod n) <> inside.(dst mod n))
        partitions
      || (match msg with
         | Message.Token _ | Message.Commit _ ->
             List.exists
               (fun (at, until, ring) -> active at until && in_ring ring)
               blackouts
         | _ -> false)
      ||
      let permille =
        List.fold_left
          (fun acc (at, until, p) -> if active at until then max acc p else acc)
          0 bursts
      in
      permille > 0 && Prng.int burst_prng 1000 < permille);
  List.iter
    (function
      | Schedule.Crash { at_ns; node } ->
          if node >= 0 && node < n then
            Netsim.call_at sim ~at:at_ns (fun () ->
                Cluster.crash cluster ~node;
                for r = 0 to rings - 1 do
                  Health.note_crash ~node:(Cluster.pid cluster ~ring:r ~node)
                done)
      | _ -> ())
    s.faults

(* Multi-ring KV workload: the single-ring mix (same key space, skew,
   seed and pacing) with ops routed through the cluster's shard map,
   plus a cross-shard mcas slice. Half the mcas ops carry a check read
   from the local replica so both the commit and abort paths run. *)
let install_kv_workload_multiring cluster (s : Schedule.t) =
  let c = s.config in
  let n = c.Schedule.n_nodes in
  let sim = Cluster.sim cluster in
  let wl_prng = Prng.create ~seed:(Int64.logxor s.seed 0x6B76776CL) in
  let pad tag =
    let len =
      max (String.length tag) (min c.Schedule.payload kv_max_value)
    in
    let b = Bytes.make len '.' in
    Bytes.blit_string tag 0 b 0 (String.length tag);
    Bytes.to_string b
  in
  let key_j () =
    if Prng.int wl_prng 1000 < 800 then Prng.int wl_prng kv_hot_keys
    else kv_hot_keys + Prng.int wl_prng (kv_key_space - kv_hot_keys)
  in
  let key () = Printf.sprintf "k%02d" (key_j ()) in
  (* A pair of distinct keys, preferably on different rings; after 8
     failed draws settle for a same-shard (still multi-key) mcas. *)
  let cross_pair () =
    let j1 = key_j () in
    let k1 = Printf.sprintf "k%02d" j1 in
    let s1 = Cluster.shard_of_key cluster k1 in
    let rec go tries =
      let j = key_j () in
      let k = Printf.sprintf "k%02d" j in
      if j <> j1 && Cluster.shard_of_key cluster k <> s1 then k
      else if tries = 0 then Printf.sprintf "k%02d" ((j1 + 1) mod kv_key_space)
      else go (tries - 1)
    in
    (k1, go 8)
  in
  for node = 0 to n - 1 do
    let counter = ref 0 in
    let rec tick () =
      if Netsim.now sim < c.Schedule.horizon_ns && Cluster.alive cluster ~node
      then begin
        incr counter;
        let key = key () in
        if
          c.Schedule.safe_permille > 0
          && Prng.int wl_prng 1000 < c.Schedule.safe_permille
        then
          Kv.sync_read
            (Cluster.kv cluster
               ~ring:(Cluster.shard_of_key cluster key)
               ~node)
            ~key
            ~on_result:(fun _ ~token:_ -> ())
        else begin
          let r = Prng.int wl_prng 1000 in
          if r < 250 then ignore (Cluster.read cluster ~node ~key)
          else if r < 320 then Cluster.del cluster ~node ~key
          else if r < 420 then
            let expect, _ = Cluster.read cluster ~node ~key in
            Cluster.cas cluster ~node ~key ~expect
              ~value:(pad (Printf.sprintf "c:%d:%d" node !counter))
          else if r < 480 then begin
            let k1, k2 = cross_pair () in
            let checks =
              if Prng.bool wl_prng then
                [ (k1, fst (Cluster.read cluster ~node ~key:k1)) ]
              else []
            in
            Cluster.mcas cluster ~node
              ~id:(Printf.sprintf "fm:%d:%d" node !counter)
              ~checks
              ~writes:
                [
                  (k1, pad (Printf.sprintf "x:%d:%d:a" node !counter));
                  (k2, pad (Printf.sprintf "x:%d:%d:b" node !counter));
                ]
          end
          else
            Cluster.put cluster ~node ~key
              ~value:(pad (Printf.sprintf "v:%d:%d" node !counter))
        end;
        Netsim.call_at sim
          ~at:(Netsim.now sim + c.Schedule.submit_gap_ns)
          tick
      end
    in
    Netsim.call_at sim ~at:(ms 1 + (node * 97_000)) tick
  done

(* The multi-ring twin of [run_single]. Always KV-hosted ([App_none]
   merely skips the workload); probes are never sent — EVS raw payloads
   do not survive post-horizon membership churn, so convergence is
   judged on replica equality, merge quiescence and cross-shard
   decision agreement. [Bug.Recovery_flood] is not plumbed through the
   cluster builder and behaves as [Clean] here. *)
let run_multiring ~bug ~adaptive ~app ?extra_sink (s : Schedule.t) =
  let c = s.config in
  let n = c.Schedule.n_nodes in
  let rings = c.Schedule.rings in
  let params = Schedule.params c in
  let tiers =
    Array.of_list (List.map Schedule.tier c.Schedule.tier_ids)
  in
  let controller ~pid:_ =
    if adaptive then
      Some
        (Aring_control.Controller.create
           ~config:
             (Aring_control.Controller.default_config
                ~aw_max:params.Params.personal_window ())
           ~init:params.Params.accelerated_window ())
    else None
  in
  let kv_bug ~ring ~node =
    match bug with
    | Bug.Kv_skip_apply { node = bn; every } when bn = node && ring = 0 ->
        Some (Kv.Bug_skip_apply { every })
    | _ -> None
  in
  Flight.reset ();
  let health_config =
    let base = Health.default_config in
    let p = float_of_int c.Schedule.base_loss_permille /. 1000. in
    let attempt_fail = 1. -. ((1. -. p) ** float_of_int (2 * n)) in
    if attempt_fail <= 0. || attempt_fail >= 1. then base
    else
      let k = int_of_float (ceil (log 1e-4 /. log attempt_fail)) in
      { base with Health.k_formation = max base.Health.k_formation k }
  in
  let health = Health.create ~config:health_config ~n:(rings * n) () in
  Health.attach health;
  let cluster =
    Cluster.create ~params ~net:(Schedule.net c) ~tiers ~seed:s.seed
      ~controller
      ~wrap:(fun ~pid p -> Bug.wrap bug ~node:pid p)
      ~kv_bug ~rings ~nodes:n ()
  in
  let sim = Cluster.sim cluster in
  let checker = Checker.create () in
  let hash = ref fnv_offset in
  let hash_sink =
    Trace.fn_sink (fun ev ->
        hash := fnv_string (fnv_string !hash (Trace_json.to_line ev)) "\n")
  in
  let deliveries = ref 0 in
  let views = ref 0 in
  Netsim.on_deliver sim (fun ~at:_ ~now:_ _ -> incr deliveries);
  Netsim.on_view sim (fun ~at:_ ~now:_ _ -> incr views);
  install_faults_multiring cluster s;
  (match app with
  | App_none -> ()
  | App_kv -> install_kv_workload_multiring cluster s);
  let alive_phys () =
    List.filter (fun i -> Cluster.alive cluster ~node:i) (List.init n Fun.id)
  in
  (* Liveness stage 1, per ring: every ring's survivors operational in
     one common non-transitional view holding exactly that ring's
     survivor pids. A run only counts as merged when ALL rings have
     re-formed — an idle or slow ring must not be vacuously skipped. *)
  let merged () =
    match alive_phys () with
    | [] -> true
    | survivors ->
        let ring_ok r =
          let pids =
            List.sort compare
              (List.map (fun i -> Cluster.pid cluster ~ring:r ~node:i) survivors)
          in
          List.for_all
            (fun i ->
              Member.state_name (Cluster.member cluster ~ring:r ~node:i)
              = "operational")
            survivors
          &&
          let ring_views =
            List.map
              (fun i -> Member.current_view (Cluster.member cluster ~ring:r ~node:i))
              survivors
          in
          List.for_all
            (function
              | Some v ->
                  (not v.Participant.transitional)
                  && List.sort compare v.Participant.members = pids
              | None -> false)
            ring_views
          && (match ring_views with
             | Some v0 :: rest ->
                 List.for_all
                   (function
                     | Some v ->
                         Types.ring_id_equal v.Participant.view_id
                           v0.Participant.view_id
                     | None -> false)
                   rest
             | _ -> true)
        in
        List.for_all ring_ok (List.init rings Fun.id)
  in
  let kv_states () =
    List.concat_map
      (fun r ->
        List.map
          (fun i ->
            let kv = Cluster.kv cluster ~ring:r ~node:i in
            ( Cluster.pid cluster ~ring:r ~node:i,
              Printf.sprintf
                "ring=%d node=%d applied=%d digest=%Lx synced=%b settled=%b \
                 parked=%b merge_blocked=%d state=%s view=%s"
                r i (Kv.applied kv) (Kv.digest kv) (Kv.synced kv)
                (Kv.settled kv) (Kv.mcas_parked kv)
                (Cluster.merge_blocked cluster ~node:i ~ring:r)
                (Member.state_name (Cluster.member cluster ~ring:r ~node:i))
                (match Member.current_view (Cluster.member cluster ~ring:r ~node:i) with
                 | None -> "-"
                 | Some v ->
                     Format.asprintf "%a[%s]" Aring_wire.Types.pp_ring_id v.Participant.view_id
                       (String.concat "," (List.map string_of_int v.Participant.members))) ))
          (alive_phys ()))
      (List.init rings Fun.id)
  in
  let kv_violation_failure () =
    let messages =
      List.concat_map
        (fun r -> Oracle.messages (Cluster.oracle cluster ~ring:r))
        (List.init rings Fun.id)
    in
    let keep = List.filteri (fun i _ -> i < 8) messages in
    Kv_violation { total = Cluster.oracle_violations cluster; messages = keep }
  in
  (* Cross-shard atomicity: every decision observation for one mcas id —
     any node, any ring, any time — must carry the same commit bit. *)
  let mcas_divergence () =
    List.find_map
      (fun (id, _, _) ->
        match Cluster.decisions_for cluster id with
        | [] -> None
        | (_, _, c0) :: rest ->
            if List.exists (fun (_, _, c) -> c <> c0) rest then
              let decisions =
                List.filteri
                  (fun i _ -> i < 12)
                  (Cluster.decisions_for cluster id)
              in
              Some (Mcas_divergence { id; decisions })
            else None)
      (Cluster.mcas_ids cluster)
  in
  let converged () =
    merged () && Cluster.kv_converged cluster && Cluster.merge_settled cluster
  in
  let deadline = c.Schedule.horizon_ns + c.Schedule.drain_ns in
  let chunk = ms 25 in
  let failure = ref None in
  let finished = ref false in
  let sink =
    Trace.tee
      ([ Checker.as_sink checker; hash_sink ]
      @ Option.to_list extra_sink)
  in
  (try
     Trace.with_sink sink (fun () ->
         let t = ref 0 in
         while not !finished do
           t := min deadline (!t + chunk);
           Netsim.run_until sim !t;
           if Checker.violation_count checker > 0 then begin
             failure := Some (Invariant (Checker.verdict checker));
             finished := true
           end
           else if Cluster.oracle_violations cluster > 0 then begin
             failure := Some (kv_violation_failure ());
             finished := true
           end
           else
             match mcas_divergence () with
             | Some f ->
                 failure := Some f;
                 finished := true
             | None ->
                 if c.Schedule.liveness && converged () then finished := true
                 else if
                   c.Schedule.liveness && Health.check health ~now:!t <> []
                 then begin
                   failure :=
                     Some
                       (Health_stall
                          { report = Health.report health ~now:!t });
                   finished := true
                 end
                 else if !t >= deadline then begin
                   if c.Schedule.liveness then
                     if not (merged ()) then
                       failure :=
                         Some
                           (No_merge
                              {
                                states =
                                  List.concat_map
                                    (fun r ->
                                      List.map
                                        (fun i ->
                                          ( Cluster.pid cluster ~ring:r
                                              ~node:i,
                                            Member.state_name
                                              (Cluster.member cluster
                                                 ~ring:r ~node:i) ))
                                        (alive_phys ()))
                                    (List.init rings Fun.id);
                              })
                     else if
                       not
                         (Cluster.kv_converged cluster
                         && Cluster.merge_settled cluster)
                     then
                       failure := Some (Kv_unsettled { nodes = kv_states () });
                   finished := true
                 end
         done)
   with e -> failure := Some (Run_exception (Printexc.to_string e)));
  let health_report = Health.report health ~now:(Netsim.now sim) in
  Health.detach ();
  (match !failure with
  | None ->
      if c.Schedule.liveness then Cluster.check_convergence cluster;
      if Cluster.oracle_violations cluster > 0 then
        failure := Some (kv_violation_failure ())
      else failure := mcas_divergence ()
  | Some _ -> ());
  {
    schedule = s;
    failure = !failure;
    verdict = Checker.verdict checker;
    deliveries = !deliveries;
    views = !views;
    trace_hash = !hash;
    end_ns = Netsim.now sim;
    health = health_report;
  }

let run_single ~bug ~adaptive ~app ?extra_sink (s : Schedule.t) =
  let c = s.config in
  let n = c.Schedule.n_nodes in
  let params = Schedule.params c in
  let tiers =
    Array.of_list (List.map Schedule.tier c.Schedule.tier_ids)
  in
  let initial_ring = Array.init n (fun i -> i) in
  (* One controller per member: the adaptive window is node-local state, so
     each node learns independently. The controller draws no entropy of its
     own, so runs stay deterministic per schedule. *)
  let controller () =
    if adaptive then
      Some
        (Aring_control.Controller.create
           ~config:
             (Aring_control.Controller.default_config
                ~aw_max:params.Params.personal_window ())
           ~init:params.Params.accelerated_window ())
    else None
  in
  let legacy_flood = bug = Bug.Recovery_flood in
  let members =
    Array.init n (fun me ->
        Member.create ~params ~me ~initial_ring ?controller:(controller ())
          ~legacy_flood ())
  in
  (* With the kv app, each member hosts a daemon and a KV replica; the
     injected bug wraps the daemon participant (the full stack), and
     app-layer bugs are planted inside the replica itself. One shared
     oracle shadows every replica. *)
  let daemons, kvs, oracle =
    match app with
    | App_none -> (None, [||], None)
    | App_kv ->
        let daemons =
          Array.init n (fun i -> Daemon.create ~member:members.(i) ())
        in
        let kv_bug i =
          match bug with
          | Bug.Kv_skip_apply { node; every } when node = i ->
              Kv.Bug_skip_apply { every }
          | _ -> Kv.Bug_none
        in
        let kvs =
          Array.init n (fun i ->
              Kv.create ~bug:(kv_bug i) ~cluster_size:n ~daemon:daemons.(i) ())
        in
        let oracle = Oracle.create () in
        Array.iter (fun kv -> Oracle.attach oracle kv) kvs;
        (Some daemons, kvs, Some oracle)
  in
  let participants =
    Array.init n (fun i ->
        let inner =
          match daemons with
          | Some ds -> Daemon.participant ds.(i)
          | None -> Member.participant members.(i)
        in
        Bug.wrap bug ~node:i inner)
  in
  (* Fourth judge: the recovery/stall health watchdog, attached for the
     whole run and fed by Member/Engine through the global instrument.
     The flight recorder restarts empty so a post-mortem dump shows only
     this run. Neither touches the hashed trace stream. *)
  Flight.reset ();
  (* The formation-cycle threshold must scale with the schedule: a
     membership attempt rides token circuits of ~2n hops, so under
     sustained per-hop loss p each attempt fails with probability about
     1 - (1-p)^(2n) from loss alone -- at 27 nodes and 19 permille
     that is ~65%, and runs of 8+ consecutive loss-killed attempts are
     routine, not a livelock. Pick the smallest k that bounds the
     false-positive odds of k consecutive legitimate failures below
     ~1e-4; a true livelock (which never succeeds) still trips it, and
     the deadline oracles keep judging final convergence regardless. *)
  let health_config =
    let base = Health.default_config in
    let p = float_of_int c.Schedule.base_loss_permille /. 1000. in
    let attempt_fail = 1. -. ((1. -. p) ** float_of_int (2 * n)) in
    if attempt_fail <= 0. || attempt_fail >= 1. then base
    else
      let k = int_of_float (ceil (log 1e-4 /. log attempt_fail)) in
      { base with Health.k_formation = max base.Health.k_formation k }
  in
  let health = Health.create ~config:health_config ~n () in
  Health.attach health;
  let sim =
    Netsim.create ~net:(Schedule.net c) ~tiers ~participants ~seed:s.seed ()
  in
  let checker = Checker.create () in
  let hash = ref fnv_offset in
  let hash_sink =
    Trace.fn_sink (fun ev ->
        hash := fnv_string (fnv_string !hash (Trace_json.to_line ev)) "\n")
  in
  let deliveries = ref 0 in
  let views = ref 0 in
  (* (node, probe payload) pairs actually delivered. *)
  let got : (int * string, unit) Hashtbl.t = Hashtbl.create 64 in
  Netsim.on_deliver sim (fun ~at:node ~now:_ (d : Message.data) ->
      incr deliveries;
      let p = Bytes.to_string d.Message.payload in
      if String.length p >= 6 && String.sub p 0 6 = "probe:" then
        Hashtbl.replace got (node, p) ());
  Netsim.on_view sim (fun ~at:_ ~now:_ _ -> incr views);
  install_faults sim s;
  (match app with
  | App_none -> install_workload sim s members
  | App_kv -> install_kv_workload sim s kvs);
  let alive () = List.filter (Netsim.is_alive sim) (List.init n Fun.id) in
  (* Liveness stage 1: all survivors operational in one common regular
     view whose membership is exactly the survivor set. All fault windows
     close inside the horizon and crashes are permanent, so once reached
     this is stable (absent real liveness bugs). The state_name check is
     load-bearing: [current_view] reports the last *installed* view, so a
     node mid-formation still answers with a stale view — without the
     check, probes can be submitted while nodes are re-forming, land in
     client_pending, and get sequenced in whichever (possibly partial)
     ring installs next, never reaching the full membership. *)
  let merged () =
    match alive () with
    | [] -> true
    | survivors ->
        if
          not
            (List.for_all
               (fun i -> Member.state_name members.(i) = "operational")
               survivors)
        then false
        else
        let views =
          List.map (fun i -> Member.current_view members.(i)) survivors
        in
        List.for_all
          (function
            | Some v ->
                (not v.Participant.transitional)
                && List.sort compare v.Participant.members = survivors
            | None -> false)
          views
        && (match views with
           | Some v0 :: rest ->
               List.for_all
                 (function
                   | Some v ->
                       Types.ring_id_equal v.Participant.view_id
                         v0.Participant.view_id
                   | None -> false)
                 rest
           | _ -> true)
  in
  let probes = ref [] in
  let probes_sent = ref false in
  let send_probes () =
    probes_sent := true;
    (* Raw ring payloads are only delivered inside the configuration that
       ordered them — they are never state-transferred across a later
       merge. The KV app's per-view traffic makes post-horizon membership
       changes routine, so in KV mode convergence is judged on replica
       equality (which state transfer does guarantee) and the probe set
       stays empty. *)
    if app = App_none then begin
      List.iter
        (fun node ->
          probes := probe_payload node :: !probes;
          Member.submit members.(node) Types.Agreed
            (Bytes.of_string (probe_payload node)))
        (alive ());
      probes := List.rev !probes
    end
  in
  let missing_probes () =
    List.concat_map
      (fun node ->
        List.filter_map
          (fun p ->
            if Hashtbl.mem got (node, p) then None else Some (node, p))
          !probes)
      (alive ())
  in
  (* KV quiescence: every surviving replica settled (election done, no
     transfer in flight), synced, and at the same (applied, digest). *)
  let kv_ok () =
    match app with
    | App_none -> true
    | App_kv -> (
        match alive () with
        | [] -> true
        | first :: _ as survivors ->
            List.for_all
              (fun i -> Kv.settled kvs.(i) && Kv.synced kvs.(i))
              survivors
            && List.for_all
                 (fun i ->
                   Kv.applied kvs.(i) = Kv.applied kvs.(first)
                   && Kv.digest kvs.(i) = Kv.digest kvs.(first))
                 survivors)
  in
  let kv_states () =
    List.map
      (fun i ->
        let s = Kv.stats kvs.(i) in
        ( i,
          Printf.sprintf
            "applied=%d digest=%Lx synced=%b settled=%b rejected=%d \
             installs=%d aborts=%d resets=%d hellos=%d decode_errs=%d"
            (Kv.applied kvs.(i)) (Kv.digest kvs.(i)) (Kv.synced kvs.(i))
            (Kv.settled kvs.(i)) s.Kv.rejected_writes s.Kv.installs
            s.Kv.xfer_aborts s.Kv.cold_resets s.Kv.hellos_sent
            s.Kv.decode_errors ))
      (alive ())
  in
  let oracle_violations () =
    match oracle with Some o -> Oracle.violation_count o | None -> 0
  in
  let kv_violation_failure o =
    let messages = Oracle.messages o in
    let keep = List.filteri (fun i _ -> i < 8) messages in
    Kv_violation { total = Oracle.violation_count o; messages = keep }
  in
  let converged () =
    !probes_sent
    && missing_probes () = []
    && (app = App_none || merged ())
    && kv_ok ()
  in
  let deadline = c.Schedule.horizon_ns + c.Schedule.drain_ns in
  let chunk = ms 25 in
  (* Chunked execution: stop at the first chunk boundary with a violation
     (fast failure) or with full probe convergence (fast success). Chunk
     boundaries and the probe-submission point depend only on the
     schedule and the trace so far, so stopping early keeps the trace
     hash reproducible. *)
  let failure = ref None in
  let finished = ref false in
  let sink =
    Trace.tee
      ([ Checker.as_sink checker; hash_sink ]
      @ Option.to_list extra_sink)
  in
  (try
     Trace.with_sink sink (fun () ->
         let t = ref 0 in
         while not !finished do
           t := min deadline (!t + chunk);
           Netsim.run_until sim !t;
           if Checker.violation_count checker > 0 then begin
             failure := Some (Invariant (Checker.verdict checker));
             finished := true
           end
           else if oracle_violations () > 0 then begin
             failure := Some (kv_violation_failure (Option.get oracle));
             finished := true
           end
           else begin
             if
               (not !probes_sent)
               && !t > c.Schedule.horizon_ns
               && merged ()
             then send_probes ();
             if c.Schedule.liveness && converged () then finished := true
             else if
               c.Schedule.liveness && Health.check health ~now:!t <> []
             then begin
               (* Stalled: stop now with an explanation instead of
                  burning the rest of the drain budget to a timeout. *)
               failure :=
                 Some
                   (Health_stall { report = Health.report health ~now:!t });
               finished := true
             end
             else if !t >= deadline then begin
               if c.Schedule.liveness then
                 if not !probes_sent then
                   failure :=
                     Some
                       (No_merge
                          {
                            states =
                              List.map
                                (fun i -> (i, Member.state_name members.(i)))
                                (alive ());
                          })
                 else begin
                   let missing = List.sort compare (missing_probes ()) in
                   if missing <> [] then
                     failure := Some (No_convergence { missing })
                   else if not (kv_ok ()) then
                     failure := Some (Kv_unsettled { nodes = kv_states () })
                 end;
               finished := true
             end
           end
         done)
   with e -> failure := Some (Run_exception (Printexc.to_string e)));
  let health_report = Health.report health ~now:(Netsim.now sim) in
  Health.detach ();
  (* Final oracle pass: end-of-run convergence (survivor stores equal and
     byte-identical to their shadows) plus any violation recorded after
     the last chunk boundary. *)
  (match (!failure, oracle) with
  | None, Some o ->
      if c.Schedule.liveness then
        Oracle.check_convergence o (List.map (fun i -> kvs.(i)) (alive ()));
      if Oracle.violation_count o > 0 then
        failure := Some (kv_violation_failure o)
  | _ -> ());
  {
    schedule = s;
    failure = !failure;
    verdict = Checker.verdict checker;
    deliveries = !deliveries;
    views = !views;
    trace_hash = !hash;
    end_ns = Netsim.now sim;
    health = health_report;
  }

let run ?(bug = Bug.Clean) ?(adaptive = false) ?(app = App_none) ?extra_sink
    (s : Schedule.t) =
  if s.config.Schedule.rings > 1 then
    run_multiring ~bug ~adaptive ~app ?extra_sink s
  else run_single ~bug ~adaptive ~app ?extra_sink s

let pp_failure ppf = function
  | Invariant v ->
      Format.fprintf ppf "invariant violations (%d):" v.Checker.violation_total;
      List.iteri
        (fun i viol ->
          if i < 5 then
            Format.fprintf ppf "@,  %s" (Checker.violation_message viol))
        v.Checker.recorded
  | No_merge { states } ->
      Format.fprintf ppf "survivors never merged into one view:";
      List.iter
        (fun (node, st) -> Format.fprintf ppf "@,  node %d: %s" node st)
        states
  | No_convergence { missing } ->
      Format.fprintf ppf "no convergence; %d missing probe deliveries:"
        (List.length missing);
      List.iteri
        (fun i (node, p) ->
          if i < 8 then Format.fprintf ppf "@,  node %d never saw %s" node p)
        missing
  | Kv_violation { total; messages } ->
      Format.fprintf ppf "kv consistency violations (%d):" total;
      List.iter (fun m -> Format.fprintf ppf "@,  %s" m) messages
  | Kv_unsettled { nodes } ->
      Format.fprintf ppf "kv replicas never converged:";
      List.iter
        (fun (node, st) -> Format.fprintf ppf "@,  node %d: %s" node st)
        nodes
  | Health_stall { report } ->
      Format.fprintf ppf "health watchdog stall:@,%a" Health.pp_report report
  | Mcas_divergence { id; decisions } ->
      Format.fprintf ppf "cross-shard mcas %s decided differently:" id;
      List.iteri
        (fun i (node, ring, commit) ->
          if i < 12 then
            Format.fprintf ppf "@,  node %d ring %d: %s" node ring
              (if commit then "commit" else "abort"))
        decisions
  | Run_exception e -> Format.fprintf ppf "exception: %s" e

let pp_outcome ppf o =
  match o.failure with
  | None ->
      Format.fprintf ppf
        "@[<v>PASS deliveries=%d views=%d end=%dms hash=%Lx@]" o.deliveries
        o.views
        (o.end_ns / ms 1)
        o.trace_hash
  | Some f ->
      Format.fprintf ppf "@[<v>FAIL (%s) deliveries=%d views=%d end=%dms@,%a@]"
        (failure_label f) o.deliveries o.views
        (o.end_ns / ms 1)
        pp_failure f
