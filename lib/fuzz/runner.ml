module Prng = Aring_util.Prng
module Checker = Aring_obs.Checker
module Trace = Aring_obs.Trace
module Trace_json = Aring_obs.Trace_json
open Aring_wire
open Aring_ring
open Aring_sim

type failure =
  | Invariant of Checker.verdict
  | No_merge of { states : (int * string) list }
  | No_convergence of { missing : (int * string) list }
  | Run_exception of string

type outcome = {
  schedule : Schedule.t;
  failure : failure option;
  verdict : Checker.verdict;
  deliveries : int;
  views : int;
  trace_hash : int64;
  end_ns : int;
}

let passed o = o.failure = None

let failure_label = function
  | Invariant _ -> "invariant"
  | No_merge _ -> "no_merge"
  | No_convergence _ -> "no_convergence"
  | Run_exception _ -> "exception"

let ms n = n * 1_000_000

(* FNV-1a, 64-bit, over the JSONL rendering of each trace event. *)
let fnv_offset = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L

let fnv_string h s =
  let h = ref h in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

let probe_payload node = Printf.sprintf "probe:%d" node

(* One static drop predicate closing over the simulated clock handles
   arbitrarily overlapping fault windows (the LIFO-scoped
   [Netsim.set_drop_until] cannot). Burst losses consume a dedicated PRNG;
   predicate evaluation order is deterministic, so the draw stream is
   too. *)
let install_faults sim (s : Schedule.t) =
  let n = s.config.Schedule.n_nodes in
  let partitions =
    List.filter_map
      (function
        | Schedule.Partition { at_ns; until_ns; island } ->
            let inside = Array.make n false in
            List.iter
              (fun i -> if i >= 0 && i < n then inside.(i) <- true)
              island;
            Some (at_ns, until_ns, inside)
        | _ -> None)
      s.faults
  in
  let bursts =
    List.filter_map
      (function
        | Schedule.Loss_burst { at_ns; until_ns; permille } ->
            Some (at_ns, until_ns, permille)
        | _ -> None)
      s.faults
  in
  let blackouts =
    List.filter_map
      (function
        | Schedule.Token_blackout { at_ns; until_ns } -> Some (at_ns, until_ns)
        | _ -> None)
      s.faults
  in
  let burst_prng = Prng.create ~seed:(Int64.logxor s.seed 0x6275727374L) in
  Netsim.set_drop sim (fun ~src ~dst msg ->
      let now = Netsim.now sim in
      let active at until = now >= at && now < until in
      List.exists
        (fun (at, until, inside) ->
          active at until && inside.(src) <> inside.(dst))
        partitions
      || (match msg with
         | Message.Token _ | Message.Commit _ ->
             List.exists (fun (at, until) -> active at until) blackouts
         | _ -> false)
      ||
      let permille =
        List.fold_left
          (fun acc (at, until, p) -> if active at until then max acc p else acc)
          0 bursts
      in
      permille > 0 && Prng.int burst_prng 1000 < permille);
  List.iter
    (function
      | Schedule.Crash { at_ns; node } ->
          if node >= 0 && node < n then
            Netsim.call_at sim ~at:at_ns (fun () -> Netsim.crash sim node)
      | _ -> ())
    s.faults

let install_workload sim (s : Schedule.t) (members : Member.t array) =
  let c = s.config in
  let n = c.Schedule.n_nodes in
  let wl_prng = Prng.create ~seed:(Int64.logxor s.seed 0x776F726BL) in
  let pad tag =
    let len = max (String.length tag) c.Schedule.payload in
    let b = Bytes.make len '.' in
    Bytes.blit_string tag 0 b 0 (String.length tag);
    b
  in
  for node = 0 to n - 1 do
    let counter = ref 0 in
    let rec tick () =
      if Netsim.now sim < c.Schedule.horizon_ns && Netsim.is_alive sim node
      then begin
        incr counter;
        let service =
          if
            c.Schedule.safe_permille > 0
            && Prng.int wl_prng 1000 < c.Schedule.safe_permille
          then Types.Safe
          else Types.Agreed
        in
        Member.submit members.(node) service
          (pad (Printf.sprintf "m:%d:%d" node !counter));
        Netsim.call_at sim
          ~at:(Netsim.now sim + c.Schedule.submit_gap_ns)
          tick
      end
    in
    (* Stagger the start so nodes do not tick in lockstep. *)
    Netsim.call_at sim ~at:(ms 1 + (node * 97_000)) tick
  done

let run ?(bug = Bug.Clean) ?(adaptive = false) (s : Schedule.t) =
  let c = s.config in
  let n = c.Schedule.n_nodes in
  let params = Schedule.params c in
  let tiers =
    Array.of_list (List.map Schedule.tier c.Schedule.tier_ids)
  in
  let initial_ring = Array.init n (fun i -> i) in
  (* One controller per member: the adaptive window is node-local state, so
     each node learns independently. The controller draws no entropy of its
     own, so runs stay deterministic per schedule. *)
  let controller () =
    if adaptive then
      Some
        (Aring_control.Controller.create
           ~config:
             (Aring_control.Controller.default_config
                ~aw_max:params.Params.personal_window ())
           ~init:params.Params.accelerated_window ())
    else None
  in
  let members =
    Array.init n (fun me ->
        Member.create ~params ~me ~initial_ring ?controller:(controller ()) ())
  in
  let participants =
    Array.init n (fun i -> Bug.wrap bug ~node:i (Member.participant members.(i)))
  in
  let sim =
    Netsim.create ~net:(Schedule.net c) ~tiers ~participants ~seed:s.seed ()
  in
  let checker = Checker.create () in
  let hash = ref fnv_offset in
  let hash_sink =
    Trace.fn_sink (fun ev ->
        hash := fnv_string (fnv_string !hash (Trace_json.to_line ev)) "\n")
  in
  let deliveries = ref 0 in
  let views = ref 0 in
  (* (node, probe payload) pairs actually delivered. *)
  let got : (int * string, unit) Hashtbl.t = Hashtbl.create 64 in
  Netsim.on_deliver sim (fun ~at:node ~now:_ (d : Message.data) ->
      incr deliveries;
      let p = Bytes.to_string d.Message.payload in
      if String.length p >= 6 && String.sub p 0 6 = "probe:" then
        Hashtbl.replace got (node, p) ());
  Netsim.on_view sim (fun ~at:_ ~now:_ _ -> incr views);
  install_faults sim s;
  install_workload sim s members;
  let alive () = List.filter (Netsim.is_alive sim) (List.init n Fun.id) in
  (* Liveness stage 1: all survivors operational in one common regular
     view whose membership is exactly the survivor set. All fault windows
     close inside the horizon and crashes are permanent, so once reached
     this is stable (absent real liveness bugs). *)
  let merged () =
    match alive () with
    | [] -> true
    | survivors ->
        let views =
          List.map (fun i -> Member.current_view members.(i)) survivors
        in
        List.for_all
          (function
            | Some v ->
                (not v.Participant.transitional)
                && List.sort compare v.Participant.members = survivors
            | None -> false)
          views
        && (match views with
           | Some v0 :: rest ->
               List.for_all
                 (function
                   | Some v ->
                       Types.ring_id_equal v.Participant.view_id
                         v0.Participant.view_id
                   | None -> false)
                 rest
           | _ -> true)
  in
  let probes = ref [] in
  let probes_sent = ref false in
  let send_probes () =
    probes_sent := true;
    List.iter
      (fun node ->
        probes := probe_payload node :: !probes;
        Member.submit members.(node) Types.Agreed
          (Bytes.of_string (probe_payload node)))
      (alive ());
    probes := List.rev !probes
  in
  let missing_probes () =
    List.concat_map
      (fun node ->
        List.filter_map
          (fun p ->
            if Hashtbl.mem got (node, p) then None else Some (node, p))
          !probes)
      (alive ())
  in
  let converged () = !probes_sent && missing_probes () = [] in
  let deadline = c.Schedule.horizon_ns + c.Schedule.drain_ns in
  let chunk = ms 25 in
  (* Chunked execution: stop at the first chunk boundary with a violation
     (fast failure) or with full probe convergence (fast success). Chunk
     boundaries and the probe-submission point depend only on the
     schedule and the trace so far, so stopping early keeps the trace
     hash reproducible. *)
  let failure = ref None in
  let finished = ref false in
  let sink = Trace.tee [ Checker.as_sink checker; hash_sink ] in
  (try
     Trace.with_sink sink (fun () ->
         let t = ref 0 in
         while not !finished do
           t := min deadline (!t + chunk);
           Netsim.run_until sim !t;
           if Checker.violation_count checker > 0 then begin
             failure := Some (Invariant (Checker.verdict checker));
             finished := true
           end
           else begin
             if
               (not !probes_sent)
               && !t > c.Schedule.horizon_ns
               && merged ()
             then send_probes ();
             if c.Schedule.liveness && converged () then finished := true
             else if !t >= deadline then begin
               if c.Schedule.liveness then
                 if not !probes_sent then
                   failure :=
                     Some
                       (No_merge
                          {
                            states =
                              List.map
                                (fun i -> (i, Member.state_name members.(i)))
                                (alive ());
                          })
                 else begin
                   let missing = List.sort compare (missing_probes ()) in
                   if missing <> [] then
                     failure := Some (No_convergence { missing })
                 end;
               finished := true
             end
           end
         done)
   with e -> failure := Some (Run_exception (Printexc.to_string e)));
  {
    schedule = s;
    failure = !failure;
    verdict = Checker.verdict checker;
    deliveries = !deliveries;
    views = !views;
    trace_hash = !hash;
    end_ns = Netsim.now sim;
  }

let pp_failure ppf = function
  | Invariant v ->
      Format.fprintf ppf "invariant violations (%d):" v.Checker.violation_total;
      List.iteri
        (fun i viol ->
          if i < 5 then
            Format.fprintf ppf "@,  %s" (Checker.violation_message viol))
        v.Checker.recorded
  | No_merge { states } ->
      Format.fprintf ppf "survivors never merged into one view:";
      List.iter
        (fun (node, st) -> Format.fprintf ppf "@,  node %d: %s" node st)
        states
  | No_convergence { missing } ->
      Format.fprintf ppf "no convergence; %d missing probe deliveries:"
        (List.length missing);
      List.iteri
        (fun i (node, p) ->
          if i < 8 then Format.fprintf ppf "@,  node %d never saw %s" node p)
        missing
  | Run_exception e -> Format.fprintf ppf "exception: %s" e

let pp_outcome ppf o =
  match o.failure with
  | None ->
      Format.fprintf ppf
        "@[<v>PASS deliveries=%d views=%d end=%dms hash=%Lx@]" o.deliveries
        o.views
        (o.end_ns / ms 1)
        o.trace_hash
  | Some f ->
      Format.fprintf ppf "@[<v>FAIL (%s) deliveries=%d views=%d end=%dms@,%a@]"
        (failure_label f) o.deliveries o.views
        (o.end_ns / ms 1)
        pp_failure f
