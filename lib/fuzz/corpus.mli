(** The committed reproducer corpus.

    Every schedule the fuzzer ever minimized is saved as one single-line
    JSON file under a corpus directory (in this repo, [test/corpus/]) and
    replayed by the test suite forever after — a regression net that only
    grows. File names are a deterministic function of the schedule, so
    re-saving the same reproducer is idempotent. *)

val entry_name : label:string -> Schedule.t -> string
(** [label-seed<unsigned-seed>-f<faultcount>.json]; deterministic. *)

val save : dir:string -> label:string -> Schedule.t -> string
(** Write the schedule under its {!entry_name} in [dir] (created if
    missing); returns the path. *)

val load_file : string -> Schedule.t
(** @raise Aring_obs.Json.Parse_error on malformed content. *)

val load_dir : string -> (string * Schedule.t) list
(** All [*.json] entries, sorted by file name; empty if [dir] does not
    exist. *)
