(** Fault schedules: the genotype of the simulation fuzzer.

    A schedule is a fully explicit description of one adversarial run —
    cluster shape, protocol parameters, workload, and a list of timed
    fault events — plus the PRNG seed that drives the simulator's own
    randomness (per-receiver loss, workload jitter, burst sampling).
    Everything the runner does is a deterministic function of the
    schedule, so a schedule is also a reproducer: serialize it, commit
    it to the corpus, replay it forever.

    Schedules are generated from a single {!Aring_util.Prng} seed
    ({!generate}), mutated structurally by the shrinker, and serialized
    as single-line JSON ({!to_string}/{!of_string}) with integer-only
    fields so round-trips are exact. *)

(** One timed fault event. All times are simulated nanoseconds; the
    generator keeps every window inside [[0, horizon_ns)], so the network
    is whole again when the drain phase starts (crashes are permanent). *)
type fault =
  | Crash of { at_ns : int; node : int }
      (** Crashes are physical: the node dies in every ring. *)
  | Partition of { at_ns : int; until_ns : int; island : int list; ring : int }
      (** Physical nodes in [island] are cut from the rest in both
          directions; each side keeps talking internally. [ring] scopes
          the cut to one ordering ring of a multi-ring run ([-1] = all
          rings, the only value single-ring schedules carry). *)
  | Loss_burst of { at_ns : int; until_ns : int; permille : int }
      (** Extra random per-receiver loss during the window, on top of the
          configured base loss. *)
  | Token_blackout of { at_ns : int; until_ns : int; ring : int }
      (** All regular and commit tokens are dropped at the switch
          ([ring] scoped like partitions): forces token-retransmission,
          token-loss declaration, and membership re-formation. *)

type config = {
  n_nodes : int;
  rings : int;  (** Ordering rings; 1 = the classic single-ring run. *)
  tier_ids : int list;  (** Per node: 0 = library, 1 = daemon, 2 = spread. *)
  ten_gig : bool;
  base_loss_permille : int;
  small_switch_buffer : bool;
  accelerated_window : int;
  personal_window : int;
  aggressive : bool;  (** Priority method 1 (true) or 2 (false). *)
  max_seq_gap : int;
  payload : int;
  submit_gap_ns : int;  (** Per-node inter-submission interval. *)
  safe_permille : int;  (** Fraction of workload using Safe delivery. *)
  horizon_ns : int;  (** Fault + load window. *)
  drain_ns : int;  (** Post-heal settling budget for the liveness check. *)
  liveness : bool;  (** Require probe convergence after the drain. *)
}

type t = { seed : int64; config : config; faults : fault list }

val generate : ?max_nodes:int -> ?rings:int -> seed:int64 -> unit -> t
(** Derive a complete random schedule from [seed]. Equal seeds yield
    equal schedules. [max_nodes] (default 8, the historical bound — the
    default preserves the seed→schedule mapping exactly) caps the drawn
    cluster size; raise it to fuzz larger rings. [rings] (default 1)
    makes the run multi-ring; fault ring scopes are drawn after each
    fault's own draws and only when [rings > 1], so single-ring
    schedules consume the exact historical PRNG stream and pinned
    corpus schedules regenerate bit-identically. *)

val params : config -> Aring_ring.Params.t
(** Protocol parameters encoded by the schedule: windows, priority method
    and [max_seq_gap] vary per schedule; failure-detection timeouts are
    fixed short so membership events resolve quickly in simulated time. *)

val tier : int -> Aring_sim.Profile.tier
(** Decode one entry of [tier_ids]. *)

val net : config -> Aring_sim.Profile.net
(** Network profile: 1G/10G, base loss, optionally a tiny switch buffer. *)

val fault_count : t -> int
val fault_window : fault -> int * int  (** (start, end] of a fault's effect. *)

val to_json : t -> Aring_obs.Json.t
val of_json : Aring_obs.Json.t -> t
(** @raise Aring_obs.Json.Parse_error on missing or ill-typed fields. *)

val to_string : t -> string
(** Single-line JSON; [of_string (to_string s) = s] exactly. *)

val of_string : string -> t
val pp : Format.formatter -> t -> unit
