(** The fuzzing campaign: generate → run → (on failure) shrink.

    Trial seeds are drawn sequentially from one master PRNG seeded with
    the campaign seed, so a campaign is replayable end-to-end: equal
    campaign seeds explore exactly the same schedules in the same order,
    and every log line is byte-identical across replays (no wall-clock
    content). Wall-clock control enters only through the [stop] callback,
    which is consulted {e between} trials — it can cut a campaign short
    but cannot perturb any trial that does run. *)

type config = {
  trials : int;  (** Maximum schedules to try. *)
  seed : int64;  (** Campaign master seed. *)
  max_nodes : int;
      (** Cluster-size cap handed to {!Schedule.generate}. The default
          (8) preserves the historical seed→schedule mapping; the CI also
          runs a 32-node pass to stress recovery at scale. *)
  rings : int;
      (** Ordering rings per generated schedule (default 1). With more
          than one, every trial runs on an {!Aring_multiring.Cluster}
          with the sharded KV + cross-shard mcas workload and
          ring-scoped faults (see {!Runner.run}). *)
  bug : Bug.t;  (** Injected defect ({!Bug.Clean} for real fuzzing). *)
  adaptive : bool;
      (** Run every node with the AIMD accelerated-window controller
          enabled, fuzzing the protocol while the window moves (see
          {!Runner.run}). *)
  app : Runner.app;
      (** Hosted application: {!Runner.App_kv} fuzzes the full
          daemon + replicated-KV stack with its consistency oracle
          attached (composable with [adaptive]). *)
  shrink : bool;  (** Minimize the first failure. *)
  max_shrink_runs : int;
  stop : unit -> bool;
      (** Polled before each trial; [true] ends the campaign (time
          budgets live in the caller, keeping this library clock-free). *)
  log : string -> unit;  (** One line per noteworthy event. *)
}

val default_config : config
(** 200 trials, seed 1, max 8 nodes, 1 ring, clean, static window, no
    app, shrink on (budget 200), never stops early, silent log. *)

type trial = { index : int; schedule : Schedule.t; outcome : Runner.outcome }

type report = {
  trials_run : int;
  failure : trial option;  (** First failing trial, if any. *)
  shrunk : Shrink.result option;  (** Present iff a failure was shrunk. *)
}

val run_campaign : config -> report
(** Run schedules until one fails, [trials] pass, or [stop ()]. *)

val replay :
  ?bug:Bug.t ->
  ?adaptive:bool ->
  ?app:Runner.app ->
  ?extra_sink:Aring_obs.Trace.sink ->
  Schedule.t ->
  Runner.outcome
(** Re-execute one schedule (corpus entry or pasted reproducer).
    [extra_sink] additionally receives the full trace stream — e.g. a
    {!Aring_obs.Trace_json.jsonl_sink} to dump the replay for offline
    analysis. *)
