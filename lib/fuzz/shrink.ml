type result = {
  schedule : Schedule.t;
  outcome : Runner.outcome;
  runs : int;
}

let ms n = n * 1_000_000

(* Remove element [i] of a list. *)
let remove_nth i l = List.filteri (fun j _ -> j <> i) l

let clamp_to_horizon horizon faults =
  List.filter_map
    (fun f ->
      match f with
      | Schedule.Crash { at_ns; _ } -> if at_ns < horizon then Some f else None
      | Schedule.Partition p ->
          if p.at_ns >= horizon then None
          else Some (Schedule.Partition { p with until_ns = min p.until_ns horizon })
      | Schedule.Loss_burst p ->
          if p.at_ns >= horizon then None
          else
            Some (Schedule.Loss_burst { p with until_ns = min p.until_ns horizon })
      | Schedule.Token_blackout p ->
          if p.at_ns >= horizon then None
          else
            Some
              (Schedule.Token_blackout { p with until_ns = min p.until_ns horizon }))
    faults

(* Remove node [gone] (the highest id) from the schedule: crashes of it
   vanish, it leaves partition islands; a partition whose island becomes
   empty or total no longer partitions anything and is dropped. *)
let drop_node (s : Schedule.t) =
  let c = s.config in
  let n = c.Schedule.n_nodes in
  if n <= 2 then None
  else
    let gone = n - 1 in
    let faults =
      List.filter_map
        (fun f ->
          match f with
          | Schedule.Crash { node; _ } when node = gone -> None
          | Schedule.Crash _ -> Some f
          | Schedule.Partition p ->
              let island = List.filter (fun i -> i <> gone) p.island in
              if island = [] || List.length island = n - 1 then None
              else Some (Schedule.Partition { p with island })
          | Schedule.Loss_burst _ | Schedule.Token_blackout _ -> Some f)
        s.faults
    in
    let tier_ids = List.filteri (fun i _ -> i < n - 1) c.Schedule.tier_ids in
    Some
      { s with Schedule.config = { c with Schedule.n_nodes = n - 1; tier_ids }; faults }

let shrink ?(bug = Bug.Clean) ?(adaptive = false) ?(app = Runner.App_none)
    ?(max_runs = 200) (s0 : Schedule.t)
    (o0 : Runner.outcome) =
  match o0.Runner.failure with
  | None -> { schedule = s0; outcome = o0; runs = 0 }
  | Some f0 ->
      let target = Runner.failure_label f0 in
      let runs = ref 0 in
      let best = ref (s0, o0) in
      (* Try one candidate; adopt it when it reproduces the failure. *)
      let try_candidate cand =
        if !runs >= max_runs then false
        else begin
          incr runs;
          let o = Runner.run ~bug ~adaptive ~app cand in
          match o.Runner.failure with
          | Some f when Runner.failure_label f = target ->
              best := (cand, o);
              true
          | _ -> false
        end
      in
      (* Pass 1: greedily drop faults until no single removal reproduces. *)
      let rec drop_faults () =
        let s, _ = !best in
        let k = Schedule.fault_count s in
        let dropped = ref false in
        let i = ref 0 in
        while (not !dropped) && !i < k && !runs < max_runs do
          if try_candidate { s with Schedule.faults = remove_nth !i s.faults }
          then dropped := true
          else incr i
        done;
        if !dropped && !runs < max_runs then drop_faults ()
      in
      drop_faults ();
      (* Pass 2: shorten the horizon while the failure persists. *)
      let rec shorten () =
        let s, _ = !best in
        let horizon = s.config.Schedule.horizon_ns in
        let next = horizon / 2 in
        if next >= ms 20 && !runs < max_runs then begin
          let cand =
            {
              s with
              Schedule.config = { s.config with Schedule.horizon_ns = next };
              faults = clamp_to_horizon next s.faults;
            }
          in
          if try_candidate cand then shorten ()
        end
      in
      shorten ();
      (* Pass 3: remove nodes from the top while the failure persists. *)
      let rec fewer_nodes () =
        let s, _ = !best in
        match drop_node s with
        | Some cand when !runs < max_runs ->
            if try_candidate cand then fewer_nodes ()
        | _ -> ()
      in
      fewer_nodes ();
      (* One more fault-dropping round: a shorter, smaller run may no
         longer need faults that were load-bearing before. *)
      drop_faults ();
      let schedule, outcome = !best in
      { schedule; outcome; runs = !runs }
