open Aring_wire
open Aring_ring

type t =
  | Clean
  | Skip_delivery of { node : int; every : int }
  | Skip_retransmission
  | Kv_skip_apply of { node : int; every : int }
  | Recovery_flood

let label = function
  | Clean -> "clean"
  | Skip_delivery { node; every } ->
      Printf.sprintf "skip-delivery(node=%d,every=%d)" node every
  | Skip_retransmission -> "skip-retransmission"
  | Kv_skip_apply { node; every } ->
      Printf.sprintf "kv-skip-apply(node=%d,every=%d)" node every
  | Recovery_flood -> "recovery-flood"

let of_string = function
  | "clean" -> Ok Clean
  | "skip-delivery" -> Ok (Skip_delivery { node = 0; every = 10 })
  | "skip-retransmission" -> Ok Skip_retransmission
  | "kv-skip-apply" -> Ok (Kv_skip_apply { node = 0; every = 7 })
  | "recovery-flood" -> Ok Recovery_flood
  | s -> Error (Printf.sprintf "unknown bug %S" s)

(* Rewrite every action list a participant emits through [filter]. *)
let filtering (p : Participant.t) filter =
  {
    p with
    Participant.process = (fun msg -> filter (p.Participant.process msg));
    fire_timer = (fun timer -> filter (p.Participant.fire_timer timer));
    start = (fun () -> filter (p.Participant.start ()));
  }

let wrap bug ~node p =
  match bug with
  | Clean -> p
  (* An application-layer bug: injected inside the KV replica by the
     runner ({!Runner.run} with the kv app), not at the participant
     boundary. *)
  | Kv_skip_apply _ -> p
  (* A construction-time bug: the runner builds the members with
     [~legacy_flood:true], restoring the pre-overhaul recovery exchange.
     The action stream is not tampered with. *)
  | Recovery_flood -> p
  | Skip_delivery { node = target; every } when node = target ->
      let deliveries = ref 0 in
      filtering p
        (List.filter (fun action ->
             match action with
             | Participant.Deliver _ ->
                 incr deliveries;
                 !deliveries mod every <> 0
             | _ -> true))
  | Skip_delivery _ -> p
  | Skip_retransmission ->
      (* In the ring protocol a participant only multicasts fresh data at
         increasing sequence numbers; any data multicast at or below the
         highest it already sent is a retransmission. Suppress those. *)
      let high : (int * int, int) Hashtbl.t = Hashtbl.create 16 in
      filtering p
        (List.filter (fun action ->
             match action with
             | Participant.Multicast (Message.Data d) ->
                 let key = (d.d_ring.Types.rep, d.d_ring.Types.ring_seq) in
                 let prev = Option.value ~default:0 (Hashtbl.find_opt high key) in
                 if d.seq > prev then begin
                   Hashtbl.replace high key d.seq;
                   true
                 end
                 else false
             | _ -> true))
