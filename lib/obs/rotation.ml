module Stats = Aring_util.Stats

(* Per-round token-rotation profiling — the paper's Section IV
   instruments. An observer node anchors the measurement: each accepted
   token receipt at that node closes one full rotation, and the window
   between two receipts yields

   - rotation time (ns between anchor receipts),
   - messages per round (data sends ring-wide inside the window,
     retransmissions included),
   - aru progress (anchor-token aru delta across the window),
   - post-token overlap fraction (share of sends that ride behind the
     token — the accelerated protocol's defining behavior).

   Membership changes reset the anchor so half-rotations across a view
   change never pollute the sample. *)

type t = {
  node : int;
  mutable last_recv : (int * int) option;  (* t_ns, aru at anchor receipt *)
  mutable window_sends : int;
  mutable window_post : int;
  mutable total_sends : int;
  mutable total_post : int;
  rotation_us : Stats.t;
  msgs_per_round : Stats.t;
  aru_per_round : Stats.t;
}

type summary = {
  observer : int;
  rotations : int;
  rotation_us : Stats.t;
  msgs_per_round : Stats.t;
  aru_per_round : Stats.t;
  post_token_fraction : float;
}

let create ~node () =
  {
    node;
    last_recv = None;
    window_sends = 0;
    window_post = 0;
    total_sends = 0;
    total_post = 0;
    rotation_us = Stats.create ();
    msgs_per_round = Stats.create ();
    aru_per_round = Stats.create ();
  }

let observe t (ev : Trace.event) =
  match ev.kind with
  | Data_send { post_token; retrans = _; _ } ->
      t.window_sends <- t.window_sends + 1;
      t.total_sends <- t.total_sends + 1;
      if post_token then begin
        t.window_post <- t.window_post + 1;
        t.total_post <- t.total_post + 1
      end
  | Token_recv { aru; _ } when ev.node = t.node ->
      (match t.last_recv with
      | Some (prev_ns, prev_aru) ->
          Stats.add t.rotation_us (float_of_int (ev.t_ns - prev_ns) /. 1e3);
          Stats.add t.msgs_per_round (float_of_int t.window_sends);
          Stats.add t.aru_per_round (float_of_int (aru - prev_aru))
      | None -> ());
      t.last_recv <- Some (ev.t_ns, aru);
      t.window_sends <- 0;
      t.window_post <- 0
  | View_install _ ->
      t.last_recv <- None;
      t.window_sends <- 0;
      t.window_post <- 0
  | _ -> ()

let as_sink t = Trace.fn_sink (fun ev -> observe t ev)

let summary t =
  {
    observer = t.node;
    rotations = Stats.count t.rotation_us;
    rotation_us = t.rotation_us;
    msgs_per_round = t.msgs_per_round;
    aru_per_round = t.aru_per_round;
    post_token_fraction =
      (if t.total_sends = 0 then 0.0
       else float_of_int t.total_post /. float_of_int t.total_sends);
  }

let record_metrics s reg =
  Metrics.add (Metrics.counter reg "rotation.rotations") s.rotations;
  let h =
    Metrics.histogram
      ~bounds:(Metrics.exponential_bounds ~lo:10.0 ~factor:1.6 ~count:24)
      reg "rotation.time_us"
  in
  (* Re-observe the samples into the mergeable histogram form. *)
  let n = Stats.count s.rotation_us in
  if n > 0 then
    for i = 1 to n do
      Metrics.observe h (Stats.percentile s.rotation_us (100.0 *. float_of_int i /. float_of_int n))
    done;
  Metrics.set (Metrics.gauge reg "rotation.post_token_fraction") s.post_token_fraction

let pp_summary ppf s =
  if s.rotations = 0 then
    Format.fprintf ppf "no complete rotations observed at node %d" s.observer
  else
    Format.fprintf ppf
      "rotations=%d rotation_us(mean=%.1f p50=%.1f p99=%.1f) msgs/round(mean=%.1f \
       p99=%.0f) aru/round(mean=%.1f) post_token=%.1f%%"
      s.rotations (Stats.mean s.rotation_us)
      (Stats.median s.rotation_us)
      (Stats.percentile s.rotation_us 99.0)
      (Stats.mean s.msgs_per_round)
      (Stats.percentile s.msgs_per_round 99.0)
      (Stats.mean s.aru_per_round)
      (100.0 *. s.post_token_fraction)
