(** Chrome trace-event exporter ([chrome://tracing] / Perfetto JSON).

    Renders a trace as a per-node timeline: every node is a thread row,
    the interval between consecutive accepted token receipts is a
    duration slice on the receiving node's row (so one ring rotation
    reads as a staircase across the rows), data sends / deliveries /
    retransmissions / views / faults are instant events, and the token's
    [fcc] field is exported as a counter track. *)

val to_json : Trace.event list -> Json.t
(** Events need not be sorted; output object has a ["traceEvents"] list. *)

val to_string : Trace.event list -> string
val write_channel : out_channel -> Trace.event list -> unit
val write_file : string -> Trace.event list -> unit
