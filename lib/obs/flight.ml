(* Always-on flight recorder: a fixed-capacity ring of compact binary
   records per node, capturing the most recent protocol steps even when
   no trace sink is installed. The analogue of an aircraft flight
   recorder — cheap enough to leave on in every run, read out only after
   something goes wrong.

   Records are six machine words (timestamp, event code, four integer
   arguments) written into a preallocated flat [int array] per node, in
   the spirit of the Netsim event arena: after the first record from a
   node its ring exists and steady-state recording allocates nothing.
   The recorder is deliberately outside the {!Trace} sink stream — it
   never feeds the FNV-hashed JSONL rendering, so enabling or dumping it
   cannot perturb pinned corpus trace hashes. *)

let slot_words = 6
let default_capacity = 512

type ring = {
  buf : int array;  (* capacity * slot_words, flat *)
  cap : int;
  mutable next : int;  (* slot index, [0, cap) *)
  mutable total : int;  (* lifetime records, >= stored *)
}

let capacity = ref default_capacity
let rings : ring option array ref = ref [||]
let on = ref true

let enabled () = !on
let set_enabled b = on := b
let reset () = rings := [||]

let set_capacity n =
  if n <= 0 then invalid_arg "Flight.set_capacity: capacity must be > 0";
  capacity := n;
  reset ()

(* ------------------------------------------------------------------ *)
(* Event codes                                                         *)

let ev_token_recv = 1
let ev_token_send = 2
let ev_token_retransmit = 3
let ev_token_lost = 4
let ev_data_send = 5
let ev_data_recv = 6
let ev_deliver = 7
let ev_phase = 8
let ev_recheck = 9
let ev_recheck_giveup = 10
let ev_flood = 11
let ev_apply = 12
let ev_dedup = 13
let ev_burst = 14
let ev_nack = 15
let ev_resend = 16
let ev_mcas = 17
let ev_skip = 18
let ev_merge = 19

let code_name = function
  | 1 -> "token_recv"
  | 2 -> "token_send"
  | 3 -> "token_retransmit"
  | 4 -> "token_lost"
  | 5 -> "data_send"
  | 6 -> "data_recv"
  | 7 -> "deliver"
  | 8 -> "phase"
  | 9 -> "exchange_recheck"
  | 10 -> "recheck_giveup"
  | 11 -> "recovery_flood"
  | 12 -> "apply"
  | 13 -> "recovery_dedup"
  | 14 -> "recovery_burst"
  | 15 -> "recovery_nack"
  | 16 -> "recovery_resend"
  | 17 -> "mcas"
  | 18 -> "skip"
  | 19 -> "merge"
  | _ -> "unknown"

(* ------------------------------------------------------------------ *)
(* Recording (hot path)                                                *)

let grow node =
  let r = !rings in
  let grown = Array.make (max (node + 1) (2 * Array.length r)) None in
  Array.blit r 0 grown 0 (Array.length r);
  rings := grown

let record ~node ~code ~a ~b ~c ~d =
  if !on && node >= 0 then begin
    if node >= Array.length !rings then grow node;
    let ring =
      match (!rings).(node) with
      | Some ring -> ring
      | None ->
          let cap = !capacity in
          let ring = { buf = Array.make (cap * slot_words) 0; cap; next = 0; total = 0 } in
          (!rings).(node) <- Some ring;
          ring
    in
    let base = ring.next * slot_words in
    let buf = ring.buf in
    buf.(base) <- Trace.now ();
    buf.(base + 1) <- code;
    buf.(base + 2) <- a;
    buf.(base + 3) <- b;
    buf.(base + 4) <- c;
    buf.(base + 5) <- d;
    let next = ring.next + 1 in
    ring.next <- (if next = ring.cap then 0 else next);
    ring.total <- ring.total + 1
  end

(* ------------------------------------------------------------------ *)
(* Readout                                                             *)

type record_view = {
  r_ns : int;
  r_node : int;
  r_code : int;
  r_a : int;
  r_b : int;
  r_c : int;
  r_d : int;
}

let node_records node ring =
  let stored = min ring.total ring.cap in
  let first = (ring.next - stored + ring.cap) mod ring.cap in
  List.init stored (fun i ->
      let base = (first + i) mod ring.cap * slot_words in
      {
        r_ns = ring.buf.(base);
        r_node = node;
        r_code = ring.buf.(base + 1);
        r_a = ring.buf.(base + 2);
        r_b = ring.buf.(base + 3);
        r_c = ring.buf.(base + 4);
        r_d = ring.buf.(base + 5);
      })

(* All nodes, globally time-ordered (stable within a node). *)
let records () =
  let all = ref [] in
  Array.iteri
    (fun node -> function
      | Some ring -> all := node_records node ring :: !all
      | None -> ())
    !rings;
  List.concat !all
  |> List.stable_sort (fun a b ->
         match compare a.r_ns b.r_ns with 0 -> compare a.r_node b.r_node | c -> c)

let total () =
  Array.fold_left
    (fun acc -> function Some r -> acc + r.total | None -> acc)
    0 !rings

let stored () =
  Array.fold_left
    (fun acc -> function Some r -> acc + min r.total r.cap | None -> acc)
    0 !rings

(* ------------------------------------------------------------------ *)
(* Dumps                                                               *)

let dump_jsonl oc =
  List.iter
    (fun r ->
      Printf.fprintf oc
        "{\"ns\":%d,\"node\":%d,\"ev\":\"%s\",\"a\":%d,\"b\":%d,\"c\":%d,\"d\":%d}\n"
        r.r_ns r.r_node (code_name r.r_code) r.r_a r.r_b r.r_c r.r_d)
    (records ())

let chrome_json () =
  let instant r =
    Json.Obj
      [
        ("name", Json.String (code_name r.r_code));
        ("ph", Json.String "i");
        ("ts", Json.Int (r.r_ns / 1_000));
        ("pid", Json.Int 0);
        ("tid", Json.Int r.r_node);
        ("s", Json.String "t");
        ("args",
         Json.Obj
           [
             ("a", Json.Int r.r_a);
             ("b", Json.Int r.r_b);
             ("c", Json.Int r.r_c);
             ("d", Json.Int r.r_d);
           ]);
      ]
  in
  Json.Obj
    [
      ("traceEvents", Json.List (List.map instant (records ())));
      ("displayTimeUnit", Json.String "ms");
    ]

let dump_chrome oc =
  output_string oc (Json.to_string (chrome_json ()));
  output_char oc '\n'

let dump_jsonl_file path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> dump_jsonl oc)

let capacity () = !capacity
