open Aring_wire

(* Trace-driven EVS invariant checker. Consumes the event stream (live
   as a sink, or post-hoc from a list) and asserts, per configuration:

   - Total-order consistency: a given (ring, seq) delivers the same
     originator and service class at every node that delivers it.
   - Gap-free, in-order delivery: operational deliveries advance each
     node's per-ring cursor by exactly one; recovery deliveries (between
     a transitional and the following regular configuration, where EVS
     permits survivors to skip messages no one holds) need only be
     strictly increasing.
   - aru / safe-line monotonicity: a node's local aru and stability line
     never move backward within a ring (the token aru may dip — local
     state may not).
   - Single token holder: each (ring, token_id) is accepted by at most
     one node — two concurrent tokens would break total order at the
     root.

   Violations are recorded as structured {!violation} records (first
   [max_violations] kept, all counted); strings are rendered on demand. *)

type violation_kind =
  | Total_order
  | Delivery_regression
  | Delivery_gap
  | Aru_regression
  | Safe_line_regression
  | Duplicate_token_holder
  | Duplicate_token_accept

type violation = {
  v_t_ns : int;
  v_node : int;
  v_kind : violation_kind;
  v_detail : string;
}

type verdict = {
  deliveries : int;
  violation_total : int;
  recorded : violation list;
}

let kind_label = function
  | Total_order -> "total_order"
  | Delivery_regression -> "delivery_regression"
  | Delivery_gap -> "delivery_gap"
  | Aru_regression -> "aru_regression"
  | Safe_line_regression -> "safe_line_regression"
  | Duplicate_token_holder -> "duplicate_token_holder"
  | Duplicate_token_accept -> "duplicate_token_accept"

let violation_message v =
  Printf.sprintf "[%d] node %d %s: %s" v.v_t_ns v.v_node (kind_label v.v_kind)
    v.v_detail

type ring_key = int * int (* rep, ring_seq *)

let ring_key (r : Types.ring_id) : ring_key = (r.rep, r.ring_seq)

let ring_str (r : Types.ring_id) = Printf.sprintf "%d.%d" r.rep r.ring_seq

type t = {
  max_violations : int;
  mutable kept : violation list;  (* newest first *)
  mutable total : int;
  mutable deliveries : int;
  (* (ring, seq) -> (sender, service) as first delivered anywhere *)
  order : (ring_key * int, int * string) Hashtbl.t;
  (* (node, ring) -> delivery cursor *)
  cursors : (int * ring_key, int) Hashtbl.t;
  (* node -> inside a transitional (recovery) window *)
  in_recovery : (int, unit) Hashtbl.t;
  (* (node, ring) -> last seen (local_aru, safe_line) *)
  monotone : (int * ring_key, int * int) Hashtbl.t;
  (* (ring, token_id) -> accepting node *)
  holders : (ring_key * int, int) Hashtbl.t;
}

let create ?(max_violations = 100) () =
  {
    max_violations;
    kept = [];
    total = 0;
    deliveries = 0;
    order = Hashtbl.create 4096;
    cursors = Hashtbl.create 64;
    in_recovery = Hashtbl.create 16;
    monotone = Hashtbl.create 64;
    holders = Hashtbl.create 4096;
  }

let violation t ~t_ns ~node kind fmt =
  Printf.ksprintf
    (fun detail ->
      t.total <- t.total + 1;
      if List.length t.kept < t.max_violations then
        t.kept <-
          { v_t_ns = t_ns; v_node = node; v_kind = kind; v_detail = detail }
          :: t.kept)
    fmt

let check_monotone t ~node ~ring ~local_aru ~safe_line ~t_ns =
  let key = (node, ring_key ring) in
  (match Hashtbl.find_opt t.monotone key with
  | Some (prev_aru, prev_safe) ->
      if local_aru < prev_aru then
        violation t ~t_ns ~node Aru_regression
          "ring %s: local aru moved backward %d -> %d" (ring_str ring) prev_aru
          local_aru;
      if safe_line < prev_safe then
        violation t ~t_ns ~node Safe_line_regression
          "ring %s: safe line moved backward %d -> %d" (ring_str ring)
          prev_safe safe_line
  | None -> ());
  Hashtbl.replace t.monotone key (local_aru, safe_line)

let observe t (ev : Trace.event) =
  let node = ev.node in
  match ev.kind with
  | Token_recv { ring; token_id; local_aru; safe_line; _ } ->
      let key = (ring_key ring, token_id) in
      (match Hashtbl.find_opt t.holders key with
      | Some holder when holder <> node ->
          violation t ~t_ns:ev.t_ns ~node Duplicate_token_holder
            "ring %s token_id %d accepted by node %d and node %d (two token \
             holders)"
            (ring_str ring) token_id holder node
      | Some _ ->
          violation t ~t_ns:ev.t_ns ~node Duplicate_token_accept
            "ring %s token_id %d accepted twice" (ring_str ring) token_id
      | None -> Hashtbl.replace t.holders key node);
      check_monotone t ~node ~ring ~local_aru ~safe_line ~t_ns:ev.t_ns
  | Token_send { ring; local_aru; safe_line; _ } ->
      check_monotone t ~node ~ring ~local_aru ~safe_line ~t_ns:ev.t_ns
  | Deliver { ring; seq; sender; service } ->
      t.deliveries <- t.deliveries + 1;
      let okey = (ring_key ring, seq) in
      (match Hashtbl.find_opt t.order okey with
      | Some (s0, svc0) ->
          if s0 <> sender || svc0 <> service then
            violation t ~t_ns:ev.t_ns ~node Total_order
              "ring %s seq %d: delivered sender=%d/%s but it was first \
               delivered as sender=%d/%s (total order broken)"
              (ring_str ring) seq sender service s0 svc0
      | None -> Hashtbl.replace t.order okey (sender, service));
      let ckey = (node, ring_key ring) in
      let cursor = Option.value ~default:0 (Hashtbl.find_opt t.cursors ckey) in
      if seq <= cursor then
        violation t ~t_ns:ev.t_ns ~node Delivery_regression
          "ring %s: delivery not increasing (seq %d after cursor %d)"
          (ring_str ring) seq cursor
      else if seq <> cursor + 1 && not (Hashtbl.mem t.in_recovery node) then
        violation t ~t_ns:ev.t_ns ~node Delivery_gap
          "ring %s: delivery gap (seq %d after cursor %d outside recovery)"
          (ring_str ring) seq cursor;
      Hashtbl.replace t.cursors ckey seq
  | View_install { transitional; _ } ->
      if transitional then Hashtbl.replace t.in_recovery node ()
      else Hashtbl.remove t.in_recovery node
  | Token_dup _ | Token_retransmit _ | Token_lost | Data_send _ | Data_recv _
  | Flow_control _ | Timer_arm _ | Timer_fire _ | Phase _ | Crash | Drop _
  | Control _ | App_apply _ | App_read _ | App_xfer _ ->
      ()

let as_sink t = Trace.fn_sink (fun ev -> observe t ev)

let verdict t =
  {
    deliveries = t.deliveries;
    violation_total = t.total;
    recorded = List.rev t.kept;
  }

let violations t = List.rev_map violation_message t.kept
let violation_count t = t.total
let deliveries_checked t = t.deliveries

let check_events ?max_violations events =
  let t = create ?max_violations () in
  List.iter (observe t) events;
  violations t

let pp ppf t =
  if t.total = 0 then
    Format.fprintf ppf "invariants OK (%d deliveries checked)" t.deliveries
  else begin
    Format.fprintf ppf "%d violation(s) over %d deliveries:@." t.total
      t.deliveries;
    List.iter (fun v -> Format.fprintf ppf "  %s@." v) (violations t)
  end
