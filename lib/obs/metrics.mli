(** Metrics registry: named counters, gauges and fixed-bucket histograms.

    The unified surface over the per-subsystem stats records: each
    subsystem exports its counters under a stable dotted name (e.g.
    ["engine.rounds"], ["netsim.switch_drops"]), per-node registries
    merge into cluster totals, and the result prints as one table.
    Handles are mutable records — a hot path holding a handle pays one
    store per update. *)

type t
type counter
type gauge
type histogram

val create : unit -> t

(** {1 Counters} *)

val counter : t -> string -> counter
(** Get or create. The same name always returns the same handle. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val counter_value : t -> string -> int
(** 0 when the counter does not exist. *)

(** {1 Gauges} *)

val gauge : t -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

(** {1 Histograms} *)

val default_bounds : float array
(** Latency-flavored µs buckets, 1 µs … 10 s. *)

val exponential_bounds : lo:float -> factor:float -> count:int -> float array

val histogram : ?bounds:float array -> t -> string -> histogram
(** Get or create with the given strictly-increasing upper bounds (plus
    an implicit overflow bucket). [bounds] is ignored when the histogram
    already exists. *)

val observe : histogram -> float -> unit
val hist_count : histogram -> int
val hist_sum : histogram -> float
val hist_mean : histogram -> float

val hist_quantile : histogram -> float -> float
(** [hist_quantile h q] with [q] in [0,1]: linear interpolation within
    the landing bucket; [nan] when empty. *)

val hist_bucket_counts : histogram -> int array
(** Per-bucket counts, overflow bucket last. *)

val hist_bounds : histogram -> float array

val hist_merge : histogram -> histogram -> histogram
(** Sum of both; raises [Invalid_argument] on differing bounds. *)

(** {1 Registry operations} *)

val merge : t -> t -> t
(** Counters sum, histograms merge, gauges take the later registry's
    value. *)

val counters : t -> (string * int) list
(** Sorted by name. *)

val gauges : t -> (string * float) list
val histograms : t -> (string * histogram) list
val pp : Format.formatter -> t -> unit
