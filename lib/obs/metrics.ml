(* Metrics registry: named counters, gauges and fixed-bucket histograms.

   This is the unified surface over the ad-hoc per-subsystem stats
   records (Engine.stats, Netsim.stats, Node.queue_stats, Daemon.stats,
   …): each subsystem exports its counters into a registry under a
   stable dotted name, registries from different nodes merge, and the
   result prints as one table. Handles are plain mutable records, so a
   hot path that holds a handle pays one store per update. *)

type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : float }

type histogram = {
  h_name : string;
  bounds : float array;  (* strictly increasing upper bounds *)
  counts : int array;  (* length = Array.length bounds + 1 (overflow) *)
  mutable h_sum : float;
  mutable h_count : int;
}

type t = {
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 8;
    histograms = Hashtbl.create 8;
  }

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
      let c = { c_name = name; c_value = 0 } in
      Hashtbl.replace t.counters name c;
      c

let incr c = c.c_value <- c.c_value + 1
let add c n = c.c_value <- c.c_value + n
let value c = c.c_value

let counter_value t name =
  match Hashtbl.find_opt t.counters name with Some c -> c.c_value | None -> 0

(* ------------------------------------------------------------------ *)
(* Gauges                                                              *)

let gauge t name =
  match Hashtbl.find_opt t.gauges name with
  | Some g -> g
  | None ->
      let g = { g_name = name; g_value = 0.0 } in
      Hashtbl.replace t.gauges name g;
      g

let set g v = g.g_value <- v
let gauge_value g = g.g_value

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)

(* Default buckets suit latency-like values in µs: 1 µs to ~10 s. *)
let default_bounds =
  [|
    1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1_000.; 2_000.; 5_000.;
    10_000.; 20_000.; 50_000.; 100_000.; 200_000.; 500_000.; 1_000_000.;
    10_000_000.;
  |]

let exponential_bounds ~lo ~factor ~count =
  if lo <= 0.0 || factor <= 1.0 || count < 1 then
    invalid_arg "Metrics.exponential_bounds";
  Array.init count (fun i -> lo *. (factor ** float_of_int i))

let validate_bounds bounds =
  if Array.length bounds = 0 then invalid_arg "Metrics.histogram: empty bounds";
  Array.iteri
    (fun i b ->
      if i > 0 && bounds.(i - 1) >= b then
        invalid_arg "Metrics.histogram: bounds must be strictly increasing")
    bounds

let histogram ?(bounds = default_bounds) t name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> h
  | None ->
      validate_bounds bounds;
      let h =
        {
          h_name = name;
          bounds = Array.copy bounds;
          counts = Array.make (Array.length bounds + 1) 0;
          h_sum = 0.0;
          h_count = 0;
        }
      in
      Hashtbl.replace t.histograms name h;
      h

let bucket_index bounds v =
  (* First bucket whose upper bound holds v; binary search. *)
  let n = Array.length bounds in
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if v <= bounds.(mid) then go lo mid else go (mid + 1) hi
  in
  go 0 n

let observe h v =
  let i = bucket_index h.bounds v in
  h.counts.(i) <- h.counts.(i) + 1;
  h.h_sum <- h.h_sum +. v;
  h.h_count <- h.h_count + 1

let hist_count h = h.h_count
let hist_sum h = h.h_sum
let hist_mean h = if h.h_count = 0 then nan else h.h_sum /. float_of_int h.h_count

let hist_bucket_counts h = Array.copy h.counts
let hist_bounds h = Array.copy h.bounds

(* Quantile estimate by linear interpolation within the landing bucket;
   exact enough for fixed-bucket data, and mergeable (unlike samples). *)
let hist_quantile h q =
  if h.h_count = 0 then nan
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let target = q *. float_of_int h.h_count in
    let n = Array.length h.counts in
    let rec go i cum =
      if i >= n then h.bounds.(Array.length h.bounds - 1)
      else
        let cum' = cum +. float_of_int h.counts.(i) in
        if cum' >= target && h.counts.(i) > 0 then begin
          let lo = if i = 0 then 0.0 else h.bounds.(i - 1) in
          let hi =
            if i < Array.length h.bounds then h.bounds.(i)
            else h.bounds.(Array.length h.bounds - 1) *. 2.0
          in
          let frac = (target -. cum) /. float_of_int h.counts.(i) in
          lo +. (frac *. (hi -. lo))
        end
        else go (i + 1) cum'
    in
    go 0 0.0
  end

(* Counts saturate at [max_int] instead of wrapping: a merged registry
   aggregating many long runs should degrade to "a lot", never to a
   negative count that would corrupt every quantile downstream. *)
let sat_add a b =
  let s = a + b in
  if a > 0 && b > 0 && s < 0 then max_int else s

let hist_merge a b =
  if a.bounds <> b.bounds then
    invalid_arg "Metrics.hist_merge: incompatible bucket bounds";
  let m =
    {
      h_name = a.h_name;
      bounds = Array.copy a.bounds;
      counts =
        Array.init (Array.length a.counts) (fun i ->
            sat_add a.counts.(i) b.counts.(i));
      h_sum = a.h_sum +. b.h_sum;
      h_count = sat_add a.h_count b.h_count;
    }
  in
  m

(* ------------------------------------------------------------------ *)
(* Registry operations                                                 *)

let merge a b =
  let t = create () in
  let copy_counters src =
    Hashtbl.iter (fun name c -> add (counter t name) c.c_value) src.counters
  in
  copy_counters a;
  copy_counters b;
  (* Later registry wins for gauges (a gauge is "current value"). *)
  Hashtbl.iter (fun name g -> set (gauge t name) g.g_value) a.gauges;
  Hashtbl.iter (fun name g -> set (gauge t name) g.g_value) b.gauges;
  let merge_hists src =
    Hashtbl.iter
      (fun name h ->
        match Hashtbl.find_opt t.histograms name with
        | None ->
            let fresh = histogram ~bounds:h.bounds t name in
            Array.blit h.counts 0 fresh.counts 0 (Array.length h.counts);
            fresh.h_sum <- h.h_sum;
            fresh.h_count <- h.h_count
        | Some existing ->
            Hashtbl.replace t.histograms name (hist_merge existing h))
      src.histograms
  in
  merge_hists a;
  merge_hists b;
  t

let counters t =
  Hashtbl.fold (fun name c acc -> (name, c.c_value) :: acc) t.counters []
  |> List.sort compare

let gauges t =
  Hashtbl.fold (fun name g acc -> (name, g.g_value) :: acc) t.gauges []
  |> List.sort compare

let histograms t =
  Hashtbl.fold (fun name h acc -> (name, h) :: acc) t.histograms []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let pp ppf t =
  let pp_counter (name, v) = Format.fprintf ppf "  %-42s %12d@." name v in
  let pp_gauge (name, v) = Format.fprintf ppf "  %-42s %12.2f@." name v in
  let pp_hist (name, h) =
    Format.fprintf ppf "  %-42s n=%d mean=%.1f p50=%.1f p99=%.1f@." name
      h.h_count (hist_mean h) (hist_quantile h 0.5) (hist_quantile h 0.99)
  in
  List.iter pp_counter (counters t);
  List.iter pp_gauge (gauges t);
  List.iter pp_hist (histograms t)
