open Aring_wire

(* JSONL serialization of trace events: one JSON object per line, with a
   stable "ev" discriminator. The format round-trips through Json so the
   trace-dump tool can re-read files written by any run. *)

let ring_json (r : Types.ring_id) = Json.List [ Json.Int r.rep; Json.Int r.ring_seq ]

let ring_of_json j =
  match j with
  | Json.List [ a; b ] -> (
      match (Json.to_int a, Json.to_int b) with
      | Some rep, Some ring_seq -> ({ rep; ring_seq } : Types.ring_id)
      | _ -> raise (Json.Parse_error "bad ring id"))
  | _ -> raise (Json.Parse_error "bad ring id")

let kind_fields (k : Trace.kind) : (string * Json.t) list =
  match k with
  | Token_recv { ring; token_id; round; seq; aru; local_aru; safe_line } ->
      [
        ("ring", ring_json ring);
        ("token_id", Json.Int token_id);
        ("round", Json.Int round);
        ("seq", Json.Int seq);
        ("aru", Json.Int aru);
        ("local_aru", Json.Int local_aru);
        ("safe_line", Json.Int safe_line);
      ]
  | Token_send { ring; token_id; round; seq; aru; fcc; rtr; local_aru; safe_line }
    ->
      [
        ("ring", ring_json ring);
        ("token_id", Json.Int token_id);
        ("round", Json.Int round);
        ("seq", Json.Int seq);
        ("aru", Json.Int aru);
        ("fcc", Json.Int fcc);
        ("rtr", Json.Int rtr);
        ("local_aru", Json.Int local_aru);
        ("safe_line", Json.Int safe_line);
      ]
  | Token_dup { token_id } -> [ ("token_id", Json.Int token_id) ]
  | Token_retransmit { token_id; attempt } ->
      [ ("token_id", Json.Int token_id); ("attempt", Json.Int attempt) ]
  | Token_lost -> []
  | Data_send { ring; seq; size; post_token; retrans } ->
      [
        ("ring", ring_json ring);
        ("seq", Json.Int seq);
        ("size", Json.Int size);
        ("post_token", Json.Bool post_token);
        ("retrans", Json.Bool retrans);
      ]
  | Data_recv { ring; seq; sender; dup } ->
      [
        ("ring", ring_json ring);
        ("seq", Json.Int seq);
        ("sender", Json.Int sender);
        ("dup", Json.Bool dup);
      ]
  | Deliver { ring; seq; sender; service } ->
      [
        ("ring", ring_json ring);
        ("seq", Json.Int seq);
        ("sender", Json.Int sender);
        ("service", Json.String service);
      ]
  | Flow_control { allowed_new; n_post; fcc; pending; by_global; by_gap } ->
      [
        ("allowed_new", Json.Int allowed_new);
        ("n_post", Json.Int n_post);
        ("fcc", Json.Int fcc);
        ("pending", Json.Int pending);
        ("by_global", Json.Int by_global);
        ("by_gap", Json.Int by_gap);
      ]
  | Timer_arm { timer; delay_ns } ->
      [ ("timer", Json.String timer); ("delay_ns", Json.Int delay_ns) ]
  | Timer_fire { timer } -> [ ("timer", Json.String timer) ]
  | View_install { ring; members; transitional } ->
      [
        ("ring", ring_json ring);
        ("members", Json.List (List.map (fun p -> Json.Int p) members));
        ("transitional", Json.Bool transitional);
      ]
  | Phase { phase } -> [ ("phase", Json.String phase) ]
  | Crash -> []
  | Drop { reason; size } ->
      [ ("reason", Json.String reason); ("size", Json.Int size) ]
  | Control { round; aw_before; aw_after; congested; rotation_ns; fcc; retrans;
              backlog } ->
      [
        ("round", Json.Int round);
        ("aw_before", Json.Int aw_before);
        ("aw_after", Json.Int aw_after);
        ("congested", Json.Bool congested);
        ("rotation_ns", Json.Int rotation_ns);
        ("fcc", Json.Int fcc);
        ("retrans", Json.Int retrans);
        ("backlog", Json.Int backlog);
      ]
  | App_apply { index; key; deleted } ->
      [
        ("index", Json.Int index);
        ("key", Json.String key);
        ("deleted", Json.Bool deleted);
      ]
  | App_read { key; found; token; sync } ->
      [
        ("key", Json.String key);
        ("found", Json.Bool found);
        ("token", Json.Int token);
        ("sync", Json.Bool sync);
      ]
  | App_xfer { view; donor; phase; applied; entries } ->
      [
        ("view", ring_json view);
        ("donor", Json.Int donor);
        ("phase", Json.String phase);
        ("applied", Json.Int applied);
        ("entries", Json.Int entries);
      ]

let to_json (ev : Trace.event) =
  Json.Obj
    (("ts", Json.Int ev.t_ns)
    :: ("node", Json.Int ev.node)
    :: ("ev", Json.String (Trace.kind_name ev.kind))
    :: kind_fields ev.kind)

let req name conv j =
  match Option.bind (Json.member name j) conv with
  | Some v -> v
  | None -> raise (Json.Parse_error (Printf.sprintf "missing field %S" name))

let req_ring name j =
  match Json.member name j with
  | Some r -> ring_of_json r
  | None -> raise (Json.Parse_error (Printf.sprintf "missing field %S" name))

let kind_of_json name j : Trace.kind =
  match name with
  | "token_recv" ->
      Token_recv
        {
          ring = req_ring "ring" j;
          token_id = req "token_id" Json.to_int j;
          round = req "round" Json.to_int j;
          seq = req "seq" Json.to_int j;
          aru = req "aru" Json.to_int j;
          local_aru = req "local_aru" Json.to_int j;
          safe_line = req "safe_line" Json.to_int j;
        }
  | "token_send" ->
      Token_send
        {
          ring = req_ring "ring" j;
          token_id = req "token_id" Json.to_int j;
          round = req "round" Json.to_int j;
          seq = req "seq" Json.to_int j;
          aru = req "aru" Json.to_int j;
          fcc = req "fcc" Json.to_int j;
          rtr = req "rtr" Json.to_int j;
          local_aru = req "local_aru" Json.to_int j;
          safe_line = req "safe_line" Json.to_int j;
        }
  | "token_dup" -> Token_dup { token_id = req "token_id" Json.to_int j }
  | "token_retransmit" ->
      Token_retransmit
        {
          token_id = req "token_id" Json.to_int j;
          attempt = req "attempt" Json.to_int j;
        }
  | "token_lost" -> Token_lost
  | "data_send" ->
      Data_send
        {
          ring = req_ring "ring" j;
          seq = req "seq" Json.to_int j;
          size = req "size" Json.to_int j;
          post_token = req "post_token" Json.to_bool j;
          retrans = req "retrans" Json.to_bool j;
        }
  | "data_recv" ->
      Data_recv
        {
          ring = req_ring "ring" j;
          seq = req "seq" Json.to_int j;
          sender = req "sender" Json.to_int j;
          dup = req "dup" Json.to_bool j;
        }
  | "deliver" ->
      Deliver
        {
          ring = req_ring "ring" j;
          seq = req "seq" Json.to_int j;
          sender = req "sender" Json.to_int j;
          service = req "service" Json.to_str j;
        }
  | "flow_control" ->
      Flow_control
        {
          allowed_new = req "allowed_new" Json.to_int j;
          n_post = req "n_post" Json.to_int j;
          fcc = req "fcc" Json.to_int j;
          pending = req "pending" Json.to_int j;
          by_global = req "by_global" Json.to_int j;
          by_gap = req "by_gap" Json.to_int j;
        }
  | "timer_arm" ->
      Timer_arm
        {
          timer = req "timer" Json.to_str j;
          delay_ns = req "delay_ns" Json.to_int j;
        }
  | "timer_fire" -> Timer_fire { timer = req "timer" Json.to_str j }
  | "view_install" ->
      View_install
        {
          ring = req_ring "ring" j;
          members =
            req "members" Json.to_list j
            |> List.map (fun m ->
                   match Json.to_int m with
                   | Some i -> i
                   | None -> raise (Json.Parse_error "bad member pid"));
          transitional = req "transitional" Json.to_bool j;
        }
  | "phase" -> Phase { phase = req "phase" Json.to_str j }
  | "crash" -> Crash
  | "drop" ->
      Drop { reason = req "reason" Json.to_str j; size = req "size" Json.to_int j }
  | "control" ->
      Control
        {
          round = req "round" Json.to_int j;
          aw_before = req "aw_before" Json.to_int j;
          aw_after = req "aw_after" Json.to_int j;
          congested = req "congested" Json.to_bool j;
          rotation_ns = req "rotation_ns" Json.to_int j;
          fcc = req "fcc" Json.to_int j;
          retrans = req "retrans" Json.to_int j;
          backlog = req "backlog" Json.to_int j;
        }
  | "app_apply" ->
      App_apply
        {
          index = req "index" Json.to_int j;
          key = req "key" Json.to_str j;
          deleted = req "deleted" Json.to_bool j;
        }
  | "app_read" ->
      App_read
        {
          key = req "key" Json.to_str j;
          found = req "found" Json.to_bool j;
          token = req "token" Json.to_int j;
          sync = req "sync" Json.to_bool j;
        }
  | "app_xfer" ->
      App_xfer
        {
          view = req_ring "view" j;
          donor = req "donor" Json.to_int j;
          phase = req "phase" Json.to_str j;
          applied = req "applied" Json.to_int j;
          entries = req "entries" Json.to_int j;
        }
  | other -> raise (Json.Parse_error (Printf.sprintf "unknown event %S" other))

let of_json j : Trace.event =
  {
    t_ns = req "ts" Json.to_int j;
    node = req "node" Json.to_int j;
    kind = kind_of_json (req "ev" Json.to_str j) j;
  }

let to_line ev = Json.to_string (to_json ev)
let of_line line = of_json (Json.of_string line)

(* Streaming JSONL writer sink. *)
let jsonl_sink oc =
  {
    Trace.emit =
      (fun ev ->
        output_string oc (to_line ev);
        output_char oc '\n');
    flush = (fun () -> flush oc);
  }

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec loop lineno acc =
        match input_line ic with
        | exception End_of_file -> List.rev acc
        | "" -> loop (lineno + 1) acc
        | line -> (
            match of_line line with
            | ev -> loop (lineno + 1) (ev :: acc)
            | exception Json.Parse_error msg ->
                raise
                  (Json.Parse_error (Printf.sprintf "line %d: %s" lineno msg)))
      in
      loop 1 [])
