(** JSONL serialization of trace events: one JSON object per line with a
    stable ["ev"] discriminator. Round-trips exactly, so traces written
    with [--trace out.jsonl] can be re-read by the trace-dump tool. *)

val to_json : Trace.event -> Json.t
val of_json : Json.t -> Trace.event
(** Raises {!Json.Parse_error} on missing or ill-typed fields. *)

val to_line : Trace.event -> string
val of_line : string -> Trace.event

val jsonl_sink : out_channel -> Trace.sink
(** Streams each event as one line; [flush] flushes the channel. *)

val read_file : string -> Trace.event list
(** Read a JSONL trace file (blank lines ignored). *)
