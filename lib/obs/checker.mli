(** Trace-driven EVS invariant checker.

    Consumes the trace event stream (live as a sink, or post-hoc) and
    asserts per configuration: total-order consistency across nodes
    (same (ring, seq) ⇒ same originator everywhere), gap-free in-order
    delivery (exactly-once cursor advance while operational; strictly
    increasing during the transitional-to-regular recovery window, where
    EVS permits skips), local-aru / safe-line monotonicity, and a single
    token holder per (ring, token_id). *)

type t

val create : ?max_violations:int -> unit -> t
(** Keeps the first [max_violations] (default 100) violation messages;
    all are counted. *)

val observe : t -> Trace.event -> unit
val as_sink : t -> Trace.sink

val violations : t -> string list
(** Oldest first, capped at [max_violations]. *)

val violation_count : t -> int
val deliveries_checked : t -> int

val check_events : ?max_violations:int -> Trace.event list -> string list
(** One-shot: run a fresh checker over a recorded event list. *)

val pp : Format.formatter -> t -> unit
