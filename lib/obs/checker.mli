(** Trace-driven EVS invariant checker.

    Consumes the trace event stream (live as a sink, or post-hoc) and
    asserts per configuration: total-order consistency across nodes
    (same (ring, seq) ⇒ same originator everywhere), gap-free in-order
    delivery (exactly-once cursor advance while operational; strictly
    increasing during the transitional-to-regular recovery window, where
    EVS permits skips), local-aru / safe-line monotonicity, and a single
    token holder per (ring, token_id). *)

(** Which invariant a violation breaks. *)
type violation_kind =
  | Total_order  (** Same (ring, seq) delivered with different contents. *)
  | Delivery_regression  (** Delivery seq not strictly increasing. *)
  | Delivery_gap  (** Cursor skipped outside a recovery window. *)
  | Aru_regression  (** A node's local aru moved backward. *)
  | Safe_line_regression  (** A node's stability line moved backward. *)
  | Duplicate_token_holder  (** Two nodes accepted one (ring, token_id). *)
  | Duplicate_token_accept  (** One node accepted one token_id twice. *)

type violation = {
  v_t_ns : int;  (** Trace timestamp of the offending event. *)
  v_node : int;  (** Node at which the violation was observed. *)
  v_kind : violation_kind;
  v_detail : string;  (** Human-readable specifics (ring, seqs, peers). *)
}

(** One-shot summary of a finished (or in-flight) check, as data — the
    fuzzer and CI tooling branch on this rather than parsing strings. *)
type verdict = {
  deliveries : int;  (** Deliveries examined. *)
  violation_total : int;  (** All violations counted. *)
  recorded : violation list;
      (** The first [max_violations] violations, oldest first. *)
}

val kind_label : violation_kind -> string
(** Stable snake_case label (e.g. ["delivery_gap"]), for reports. *)

val violation_message : violation -> string
(** Render one violation the way {!violations} does. *)

type t

val create : ?max_violations:int -> unit -> t
(** Keeps the first [max_violations] (default 100) violation records;
    all are counted. *)

val observe : t -> Trace.event -> unit
val as_sink : t -> Trace.sink

val verdict : t -> verdict

val violations : t -> string list
(** Rendered {!verdict} records; oldest first, capped at
    [max_violations]. *)

val violation_count : t -> int
val deliveries_checked : t -> int

val check_events : ?max_violations:int -> Trace.event list -> string list
(** One-shot: run a fresh checker over a recorded event list. *)

val pp : Format.formatter -> t -> unit
