(* Health watchdog: per-node membership-phase accounting (time-in-state,
   entry counters, exchange-recheck and recovery-flood volume) plus a
   stall detector. Two triggers:

   - Formation_cycle: a node has started [k_formation] gather phases
     since it last reached operational, while *no* node anywhere has
     completed a formation for [stall_ns] of virtual time — the
     signature of the recovery-flood livelock, where every formation
     attempt dies in the exchange/recheck loop and re-gathers forever.
     The no-install gate is load-bearing: under sustained loss a ring
     churns through formations with a few unlucky nodes legitimately
     burning long runs of attempts, but as long as configurations keep
     installing somewhere (dozens of views per second in such runs),
     that is retry behavior working, not a livelock. Delivery idleness
     would be the wrong gate — in the post-horizon drain an already
     drained ring delivers nothing while it churns toward the final
     merge.
   - No_progress: no message delivered anywhere for [stall_ns] of
     virtual time while some live node is stuck outside operational.

   Like Trace and Span, the watchdog is a global attach/detach
   instrument: Member and Engine feed it through self-guarded notes, so
   a run without a watchdog pays one ref read per note site. It emits
   no trace events — pinned corpus hashes cannot see it. *)

type config = { k_formation : int; stall_ns : int }

let default_config = { k_formation = 8; stall_ns = 1_000_000_000 }

(* ------------------------------------------------------------------ *)
(* Phase codes (shared with Flight's ev_phase argument)                *)

let phase_operational = 0
let phase_gather = 1
let phase_commit = 2
let phase_recover = 3
let n_phases = 4

(* Trail entries extend the phase codes with watchdog-relevant moments. *)
let trail_crash = 4
let trail_recheck = 5
let trail_giveup = 6

let phase_name = function
  | 0 -> "operational"
  | 1 -> "gather"
  | 2 -> "commit"
  | 3 -> "recover"
  | 4 -> "crashed"
  | 5 -> "exchange-recheck"
  | 6 -> "recheck-giveup"
  | _ -> "unknown"

let trail_capacity = 64

type node_state = {
  mutable ns_phase : int;  (* current phase code; trail_crash once dead *)
  mutable ns_phase_since : int;
  ns_time_in : int array;  (* ns accumulated per phase, length n_phases *)
  ns_entries : int array;  (* lifetime phase entries, length n_phases *)
  mutable ns_attempts : int;  (* gather entries since last operational *)
  mutable ns_max_attempts : int;  (* peak ns_attempts over the node's lifetime *)
  mutable ns_rechecks : int;  (* recheck fires since last operational *)
  mutable ns_giveups : int;  (* recheck give-ups since last operational *)
  mutable ns_floods : int;  (* recovery messages flooded since last operational *)
  mutable ns_resends : int;  (* nack-triggered resends since last operational *)
  (* Lifetime recovery-traffic counters (never reset): the dedup/pacing
     efficiency measures the recovery bench gates on. *)
  mutable ns_flood_total : int;  (* exchange messages multicast, incl. resends *)
  mutable ns_dedup_saved : int;  (* sends avoided by designated-holder dedup *)
  mutable ns_bursts : int;  (* paced flood bursts fired *)
  mutable ns_resend_reqs : int;  (* cumulative nacks multicast *)
  mutable ns_resend_total : int;  (* messages re-sent answering nacks *)
  trail : int array;  (* recent trail codes, ring *)
  trail_ns : int array;
  mutable trail_next : int;
  mutable trail_total : int;
}

type t = {
  cfg : config;
  nodes : node_state array;
  mutable last_delivery_ns : int;
  mutable last_operational_ns : int;
  mutable deliveries : int;
}

let create ?(config = default_config) ~n () =
  if n <= 0 then invalid_arg "Health.create: n must be > 0";
  {
    cfg = config;
    nodes =
      Array.init n (fun _ ->
          {
            ns_phase = -1;
            ns_phase_since = 0;
            ns_time_in = Array.make n_phases 0;
            ns_entries = Array.make n_phases 0;
            ns_attempts = 0;
            ns_max_attempts = 0;
            ns_rechecks = 0;
            ns_giveups = 0;
            ns_floods = 0;
            ns_resends = 0;
            ns_flood_total = 0;
            ns_dedup_saved = 0;
            ns_bursts = 0;
            ns_resend_reqs = 0;
            ns_resend_total = 0;
            trail = Array.make trail_capacity (-1);
            trail_ns = Array.make trail_capacity 0;
            trail_next = 0;
            trail_total = 0;
          });
    last_delivery_ns = 0;
    last_operational_ns = 0;
    deliveries = 0;
  }

(* ------------------------------------------------------------------ *)
(* Global instrument                                                   *)

let current : t option ref = ref None

let enabled () = Option.is_some !current
let attach t = current := Some t
let detach () = current := None

let with_health t f =
  attach t;
  Fun.protect ~finally:detach f

(* ------------------------------------------------------------------ *)
(* Feeds                                                               *)

let push_trail ns code now =
  ns.trail.(ns.trail_next) <- code;
  ns.trail_ns.(ns.trail_next) <- now;
  ns.trail_next <- (ns.trail_next + 1) mod trail_capacity;
  ns.trail_total <- ns.trail_total + 1

let close_phase ns now =
  if ns.ns_phase >= 0 && ns.ns_phase < n_phases then
    ns.ns_time_in.(ns.ns_phase) <-
      ns.ns_time_in.(ns.ns_phase) + max 0 (now - ns.ns_phase_since)

let node_state t node =
  if node >= 0 && node < Array.length t.nodes then Some t.nodes.(node)
  else None

let note_phase ~node ~phase =
  match !current with
  | None -> ()
  | Some t -> (
      match node_state t node with
      | None -> ()
      | Some ns ->
          if ns.ns_phase <> trail_crash then begin
            let now = Trace.now () in
            close_phase ns now;
            ns.ns_phase <- phase;
            ns.ns_phase_since <- now;
            if phase >= 0 && phase < n_phases then
              ns.ns_entries.(phase) <- ns.ns_entries.(phase) + 1;
            if phase = phase_gather then begin
              ns.ns_attempts <- ns.ns_attempts + 1;
              ns.ns_max_attempts <- max ns.ns_max_attempts ns.ns_attempts
            end;
            if phase = phase_operational then begin
              t.last_operational_ns <- now;
              ns.ns_attempts <- 0;
              ns.ns_rechecks <- 0;
              ns.ns_giveups <- 0;
              ns.ns_floods <- 0;
              ns.ns_resends <- 0
            end;
            push_trail ns phase now
          end)

let note_recheck ~node =
  match !current with
  | None -> ()
  | Some t -> (
      match node_state t node with
      | None -> ()
      | Some ns ->
          ns.ns_rechecks <- ns.ns_rechecks + 1;
          push_trail ns trail_recheck (Trace.now ()))

let note_recheck_giveup ~node =
  match !current with
  | None -> ()
  | Some t -> (
      match node_state t node with
      | None -> ()
      | Some ns ->
          ns.ns_giveups <- ns.ns_giveups + 1;
          push_trail ns trail_giveup (Trace.now ()))

let note_flood ~node ~count =
  match !current with
  | None -> ()
  | Some t -> (
      match node_state t node with
      | None -> ()
      | Some ns ->
          ns.ns_floods <- ns.ns_floods + count;
          ns.ns_flood_total <- ns.ns_flood_total + count)

let note_dedup ~node ~saved =
  match !current with
  | None -> ()
  | Some t -> (
      match node_state t node with
      | None -> ()
      | Some ns -> ns.ns_dedup_saved <- ns.ns_dedup_saved + saved)

let note_burst ~node =
  match !current with
  | None -> ()
  | Some t -> (
      match node_state t node with
      | None -> ()
      | Some ns -> ns.ns_bursts <- ns.ns_bursts + 1)

let note_resend_req ~node =
  match !current with
  | None -> ()
  | Some t -> (
      match node_state t node with
      | None -> ()
      | Some ns -> ns.ns_resend_reqs <- ns.ns_resend_reqs + 1)

let note_resend ~node ~count =
  match !current with
  | None -> ()
  | Some t -> (
      match node_state t node with
      | None -> ()
      | Some ns ->
          ns.ns_resends <- ns.ns_resends + count;
          ns.ns_resend_total <- ns.ns_resend_total + count)

let note_delivery () =
  match !current with
  | None -> ()
  | Some t ->
      t.last_delivery_ns <- Trace.now ();
      t.deliveries <- t.deliveries + 1

let note_crash ~node =
  match !current with
  | None -> ()
  | Some t -> (
      match node_state t node with
      | None -> ()
      | Some ns ->
          let now = Trace.now () in
          close_phase ns now;
          ns.ns_phase <- trail_crash;
          ns.ns_phase_since <- now;
          push_trail ns trail_crash now)

(* ------------------------------------------------------------------ *)
(* Stall detection                                                     *)

type stall =
  | Formation_cycle of {
      fc_node : int;
      fc_attempts : int;
      fc_rechecks : int;
      fc_giveups : int;
      fc_floods : int;
    }
  | No_progress of { np_idle_ns : int; np_stuck : (int * string) list }

let check t ~now =
  let no_install = now - t.last_operational_ns > t.cfg.stall_ns in
  let cycles =
    Array.to_list t.nodes
    |> List.mapi (fun node ns -> (node, ns))
    |> List.filter_map (fun (node, ns) ->
           if
             ns.ns_phase <> trail_crash
             && ns.ns_attempts >= t.cfg.k_formation
             && no_install
           then
             Some
               (Formation_cycle
                  {
                    fc_node = node;
                    fc_attempts = ns.ns_attempts;
                    fc_rechecks = ns.ns_rechecks;
                    fc_giveups = ns.ns_giveups;
                    fc_floods = ns.ns_floods;
                  })
           else None)
  in
  let idle = now - t.last_delivery_ns in
  let stuck =
    Array.to_list t.nodes
    |> List.mapi (fun node ns -> (node, ns))
    |> List.filter_map (fun (node, ns) ->
           if
             ns.ns_phase >= 0
             && ns.ns_phase <> trail_crash
             && ns.ns_phase <> phase_operational
             && now - ns.ns_phase_since > t.cfg.stall_ns
           then Some (node, phase_name ns.ns_phase)
           else None)
  in
  let progress =
    if idle > t.cfg.stall_ns && stuck <> [] then
      [ No_progress { np_idle_ns = idle; np_stuck = stuck } ]
    else []
  in
  cycles @ progress

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)

type node_report = {
  nr_node : int;
  nr_phase : string;
  nr_attempts : int;
  nr_max_attempts : int;
  nr_rechecks : int;
  nr_giveups : int;
  nr_floods : int;
  nr_resends : int;
  nr_flood_total : int;
  nr_dedup_saved : int;
  nr_bursts : int;
  nr_resend_reqs : int;
  nr_resend_total : int;
  nr_entries : (string * int) list;
  nr_time_in_ms : (string * float) list;
  nr_trail : string list;  (* oldest first, run-length compressed *)
}

type report = {
  r_now_ns : int;
  r_deliveries : int;
  r_stalls : stall list;
  r_nodes : node_report list;
}

let trail_codes ns =
  let stored = min ns.trail_total trail_capacity in
  let first = (ns.trail_next - stored + trail_capacity) mod trail_capacity in
  List.init stored (fun i -> ns.trail.((first + i) mod trail_capacity))

(* "gather, recheck, recheck, recheck" -> ["gather"; "recheck x3"]. *)
let compress_trail codes =
  let rec go = function
    | [] -> []
    | code :: rest ->
        let rec span n = function
          | c :: tl when c = code -> span (n + 1) tl
          | tl -> (n, tl)
        in
        let n, rest = span 1 rest in
        let name = phase_name code in
        (if n = 1 then name else Printf.sprintf "%s x%d" name n) :: go rest
  in
  go codes

let report t ~now =
  let nodes =
    Array.to_list t.nodes
    |> List.mapi (fun node ns ->
           let label i = phase_name i in
           {
             nr_node = node;
             nr_phase = phase_name ns.ns_phase;
             nr_attempts = ns.ns_attempts;
             nr_max_attempts = ns.ns_max_attempts;
             nr_rechecks = ns.ns_rechecks;
             nr_giveups = ns.ns_giveups;
             nr_floods = ns.ns_floods;
             nr_resends = ns.ns_resends;
             nr_flood_total = ns.ns_flood_total;
             nr_dedup_saved = ns.ns_dedup_saved;
             nr_bursts = ns.ns_bursts;
             nr_resend_reqs = ns.ns_resend_reqs;
             nr_resend_total = ns.ns_resend_total;
             nr_entries =
               List.init n_phases (fun i -> (label i, ns.ns_entries.(i)));
             nr_time_in_ms =
               List.init n_phases (fun i ->
                   let extra =
                     if ns.ns_phase = i then max 0 (now - ns.ns_phase_since)
                     else 0
                   in
                   (label i,
                    float_of_int (ns.ns_time_in.(i) + extra) /. 1e6));
             nr_trail = compress_trail (trail_codes ns);
           })
  in
  {
    r_now_ns = now;
    r_deliveries = t.deliveries;
    r_stalls = check t ~now;
    r_nodes = nodes;
  }

let pp_stall ppf = function
  | Formation_cycle { fc_node; fc_attempts; fc_rechecks; fc_giveups; fc_floods } ->
      Format.fprintf ppf
        "node %d: repeated gather→exchange→recheck cycling — %d formation \
         attempts without reaching operational (%d exchange-recheck timeouts, \
         %d recheck give-ups, %d recovery floods)"
        fc_node fc_attempts fc_rechecks fc_giveups fc_floods
  | No_progress { np_idle_ns; np_stuck } ->
      Format.fprintf ppf
        "no delivery progress for %dms; nodes stuck outside operational:%s"
        (np_idle_ns / 1_000_000)
        (String.concat ""
           (List.map
              (fun (n, p) -> Printf.sprintf " %d(%s)" n p)
              np_stuck))

let pp_report ppf r =
  Format.fprintf ppf "@[<v>health verdict at %dms (%d deliveries):"
    (r.r_now_ns / 1_000_000) r.r_deliveries;
  List.iter (fun s -> Format.fprintf ppf "@,  stall: %a" pp_stall s) r.r_stalls;
  List.iter
    (fun nr ->
      Format.fprintf ppf
        "@,  node %d: phase=%s attempts=%d rechecks=%d giveups=%d floods=%d \
         resends=%d"
        nr.nr_node nr.nr_phase nr.nr_attempts nr.nr_rechecks nr.nr_giveups
        nr.nr_floods nr.nr_resends;
      Format.fprintf ppf
        "@,    recovery traffic: peak-attempts=%d floods=%d dedup-saved=%d \
         bursts=%d nacks=%d resent=%d"
        nr.nr_max_attempts nr.nr_flood_total nr.nr_dedup_saved nr.nr_bursts
        nr.nr_resend_reqs nr.nr_resend_total;
      Format.fprintf ppf "@,    entries:%s time:%s"
        (String.concat ""
           (List.map (fun (p, n) -> Printf.sprintf " %s=%d" p n) nr.nr_entries))
        (String.concat ""
           (List.map
              (fun (p, ms) -> Printf.sprintf " %s=%.1fms" p ms)
              nr.nr_time_in_ms));
      Format.fprintf ppf "@,    trail: %s" (String.concat " → " nr.nr_trail))
    r.r_nodes;
  Format.fprintf ppf "@]"
