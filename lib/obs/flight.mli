(** Always-on flight recorder: per-node fixed-capacity rings of compact
    six-word binary records (timestamp, event code, four int arguments),
    kept even when no {!Trace} sink is installed. Steady-state recording
    allocates nothing once a node's ring exists; the recorder never
    feeds the hashed trace stream, so pinned corpus hashes are
    unaffected by it. Dump on demand as JSONL or a Chrome trace. *)

val enabled : unit -> bool
val set_enabled : bool -> unit
(** Recording is on by default; disabling is for overhead baselines. *)

val reset : unit -> unit
(** Drop every ring (a fresh run should start from an empty recorder). *)

val set_capacity : int -> unit
(** Records retained per node (default 512). Resets the recorder. *)

val capacity : unit -> int

(** {2 Event codes} *)

val ev_token_recv : int
val ev_token_send : int
val ev_token_retransmit : int
val ev_token_lost : int
val ev_data_send : int
val ev_data_recv : int
val ev_deliver : int
val ev_phase : int
val ev_recheck : int
val ev_recheck_giveup : int
val ev_flood : int
val ev_apply : int

val ev_dedup : int
(** Designated-holder dedup at recovery entry: [a] = exchange-range
    messages held, [b] = queued for flooding (this node designated),
    [c] = sends saved by dedup, [d] = this node's survivor position. *)

val ev_burst : int
(** One paced flood burst: [a] = messages multicast, [b] = still
    queued after the burst. *)

val ev_nack : int
(** A recheck found advertised exchange messages still missing and
    multicast a cumulative nack: [a] = missing seqnos, [b] = compacted
    ranges, [c] = recheck number. *)

val ev_resend : int
(** This node answered a nack as the (re-)elected holder: [a] =
    messages queued for resend, [b] = nack'd seqnos examined. *)

val ev_mcas : int
(** Cross-shard cas life cycle at a replica: [a] = ring id, on park
    [b] = this ring's vote and [d] = involved-ring count; on resolve
    [b] = 2 (abort) / 3 (commit) with [c] = 1. *)

val ev_skip : int
(** A skip-generator fired on an idle ring: [a] = ring id, [b] =
    credits granted. *)

val ev_merge : int
(** Learner merge progress at a node: [a] = ring id popped, [b] =
    merged-stream length, [c] = credits consumed since the last pop. *)

val code_name : int -> string

(** {2 Recording} *)

val record : node:int -> code:int -> a:int -> b:int -> c:int -> d:int -> unit
(** Append one record to [node]'s ring, overwriting the oldest once
    full. Zero-allocation after the node's first record. No-op when
    disabled or [node < 0]. *)

(** {2 Readout} *)

type record_view = {
  r_ns : int;
  r_node : int;
  r_code : int;
  r_a : int;
  r_b : int;
  r_c : int;
  r_d : int;
}

val records : unit -> record_view list
(** Every retained record across all nodes, time-ordered. *)

val total : unit -> int
(** Lifetime records written (including overwritten ones). *)

val stored : unit -> int
(** Records currently retained. *)

val dump_jsonl : out_channel -> unit
val dump_jsonl_file : string -> unit
val dump_chrome : out_channel -> unit
