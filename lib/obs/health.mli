(** Recovery/stall health watchdog. Tracks per-node membership-phase
    time-in-state and entry counters (fed by [Member]), exchange-recheck
    and recovery-flood volume, and cluster-wide delivery progress (fed
    by [Engine]); detects formation livelock ("K gather attempts without
    reaching operational") and delivery stalls ("no progress for T
    virtual ns while a node is stuck outside operational"). Global
    attach/detach like {!Trace}; emits no trace events, so pinned corpus
    hashes never see it. *)

type config = { k_formation : int; stall_ns : int }

val default_config : config
(** [k_formation = 8] attempts, [stall_ns] = 1 virtual second. *)

(** {2 Phase codes} (shared with {!Flight}'s [ev_phase] argument) *)

val phase_operational : int
val phase_gather : int
val phase_commit : int
val phase_recover : int
val phase_name : int -> string

type t

val create : ?config:config -> n:int -> unit -> t

(** {2 Global instrument} *)

val enabled : unit -> bool
val attach : t -> unit
val detach : unit -> unit
val with_health : t -> (unit -> 'a) -> 'a

(** {2 Feeds} (self-guarded: no-ops when nothing is attached) *)

val note_phase : node:int -> phase:int -> unit
val note_recheck : node:int -> unit
val note_recheck_giveup : node:int -> unit

val note_flood : node:int -> count:int -> unit
(** Exchange messages actually multicast (initial bursts and resends). *)

val note_dedup : node:int -> saved:int -> unit
(** Sends avoided at recovery entry by designated-holder dedup. *)

val note_burst : node:int -> unit
(** One paced flood burst fired. *)

val note_resend_req : node:int -> unit
(** A cumulative nack multicast after a recheck found messages missing. *)

val note_resend : node:int -> count:int -> unit
(** Messages queued for re-flooding in answer to a nack. *)

val note_delivery : unit -> unit
val note_crash : node:int -> unit

(** {2 Stall detection} *)

type stall =
  | Formation_cycle of {
      fc_node : int;
      fc_attempts : int;  (** gather entries since last operational *)
      fc_rechecks : int;
      fc_giveups : int;
      fc_floods : int;
    }
  | No_progress of { np_idle_ns : int; np_stuck : (int * string) list }

val check : t -> now:int -> stall list
(** Empty when healthy. *)

(** {2 Reporting} *)

type node_report = {
  nr_node : int;
  nr_phase : string;
  nr_attempts : int;  (** gather entries since last operational *)
  nr_max_attempts : int;
      (** peak consecutive formation attempts over the node's lifetime;
          unlike [nr_attempts] this survives reaching operational, so a
          post-run assertion can bound how hard formation ever was *)
  nr_rechecks : int;
  nr_giveups : int;
  nr_floods : int;
  nr_resends : int;
  nr_flood_total : int;  (** lifetime exchange multicasts, incl. resends *)
  nr_dedup_saved : int;  (** lifetime sends avoided by holder dedup *)
  nr_bursts : int;  (** lifetime paced flood bursts *)
  nr_resend_reqs : int;  (** lifetime cumulative nacks sent *)
  nr_resend_total : int;  (** lifetime messages re-sent answering nacks *)
  nr_entries : (string * int) list;
  nr_time_in_ms : (string * float) list;
  nr_trail : string list;
}

type report = {
  r_now_ns : int;
  r_deliveries : int;
  r_stalls : stall list;
  r_nodes : node_report list;
}

val report : t -> now:int -> report
val pp_stall : Format.formatter -> stall -> unit
val pp_report : Format.formatter -> report -> unit
