(* Chrome trace-event exporter (chrome://tracing / Perfetto "JSON trace"
   format). Each protocol node becomes one thread row of a single
   process; the interval between consecutive accepted token receipts is
   rendered as a duration slice on the receiving node's row, so one ring
   rotation reads as a staircase of slices across the node rows. Data
   motion, retransmissions, views and faults are instant events, and the
   token's flow-control counter (fcc) is exported as a counter track.

   Timestamps are microseconds (the unit the format requires); the
   simulator's virtual nanoseconds are divided down. *)

let us_of_ns ns = ns / 1_000

let common ~name ~ph ~ts ~node rest =
  Json.Obj
    (("name", Json.String name)
    :: ("ph", Json.String ph)
    :: ("ts", Json.Int ts)
    :: ("pid", Json.Int 0)
    :: ("tid", Json.Int node)
    :: rest)

let instant ?(scope = "t") ~name ~ts ~node args =
  common ~name ~ph:"i" ~ts ~node
    [ ("s", Json.String scope); ("args", Json.Obj args) ]

let span ~name ~ts ~dur ~node args =
  common ~name ~ph:"X" ~ts ~node
    [ ("dur", Json.Int (max 1 dur)); ("args", Json.Obj args) ]

let thread_name ~node name =
  Json.Obj
    [
      ("name", Json.String "thread_name");
      ("ph", Json.String "M");
      ("pid", Json.Int 0);
      ("tid", Json.Int node);
      ("args", Json.Obj [ ("name", Json.String name) ]);
    ]

let counter ~name ~ts ~node value =
  Json.Obj
    [
      ("name", Json.String name);
      ("ph", Json.String "C");
      ("ts", Json.Int ts);
      ("pid", Json.Int node);
      ("args", Json.Obj [ ("value", Json.Int value) ]);
    ]

let ring_str (r : Aring_wire.Types.ring_id) =
  Printf.sprintf "%d.%d" r.rep r.ring_seq

let to_json (events : Trace.event list) =
  let events =
    List.stable_sort (fun (a : Trace.event) b -> compare a.t_ns b.t_ns) events
  in
  let nodes = List.sort_uniq compare (List.map (fun (e : Trace.event) -> e.node) events) in
  let out = ref [] in
  let push j = out := j :: !out in
  List.iter
    (fun node -> push (thread_name ~node (Printf.sprintf "node %d" node)))
    nodes;
  (* Token-holding slices: from one accepted receipt to the next receipt
     anywhere on the same ring. *)
  let pending_recv = ref None in
  let close_span ~until =
    match !pending_recv with
    | None -> ()
    | Some (ring, node, ts, round, token_id, seq, aru) ->
        push
          (span
             ~name:(Printf.sprintf "round %d" round)
             ~ts:(us_of_ns ts)
             ~dur:(us_of_ns until - us_of_ns ts)
             ~node
             [
               ("ring", Json.String (ring_str ring));
               ("token_id", Json.Int token_id);
               ("seq", Json.Int seq);
               ("aru", Json.Int aru);
             ]);
        pending_recv := None
  in
  List.iter
    (fun (ev : Trace.event) ->
      let ts = us_of_ns ev.t_ns in
      let node = ev.node in
      match ev.kind with
      | Token_recv { ring; token_id; round; seq; aru; _ } ->
          (match !pending_recv with
          | Some (prev_ring, _, _, _, _, _, _) when prev_ring = ring ->
              close_span ~until:ev.t_ns
          | Some _ -> pending_recv := None
          | None -> ());
          pending_recv := Some (ring, node, ev.t_ns, round, token_id, seq, aru)
      | Token_send { fcc; _ } -> push (counter ~name:"fcc" ~ts ~node fcc)
      | Token_retransmit { token_id; attempt } ->
          push
            (instant ~name:"token_retransmit" ~ts ~node
               [ ("token_id", Json.Int token_id); ("attempt", Json.Int attempt) ])
      | Token_lost -> push (instant ~scope:"g" ~name:"token_lost" ~ts ~node [])
      | Data_send { seq; size; post_token; retrans; _ } ->
          push
            (instant
               ~name:(if retrans then "retransmit" else "send")
               ~ts ~node
               [
                 ("seq", Json.Int seq);
                 ("size", Json.Int size);
                 ("post_token", Json.Bool post_token);
               ])
      | Deliver { seq; sender; service; _ } ->
          push
            (instant ~name:"deliver" ~ts ~node
               [ ("seq", Json.Int seq); ("sender", Json.Int sender);
                 ("service", Json.String service) ])
      | View_install { ring; members; transitional } ->
          push
            (instant ~scope:"p"
               ~name:(if transitional then "view (transitional)" else "view")
               ~ts ~node
               [
                 ("ring", Json.String (ring_str ring));
                 ("members", Json.Int (List.length members));
               ])
      | Phase { phase } ->
          push (instant ~name:("phase: " ^ phase) ~ts ~node [])
      | Crash -> push (instant ~scope:"g" ~name:"crash" ~ts ~node [])
      | Drop { reason; size } ->
          push
            (instant ~name:("drop: " ^ reason) ~ts ~node
               [ ("size", Json.Int size) ])
      | Control { aw_before; aw_after; congested; _ } ->
          push
            (instant ~name:"control" ~ts ~node
               [
                 ("aw_before", Json.Int aw_before);
                 ("aw_after", Json.Int aw_after);
                 ("congested", Json.Bool congested);
               ])
      | App_xfer { phase; donor; applied; entries; _ } ->
          push
            (instant ~scope:"p" ~name:("xfer: " ^ phase) ~ts ~node
               [
                 ("donor", Json.Int donor);
                 ("applied", Json.Int applied);
                 ("entries", Json.Int entries);
               ])
      | Token_dup _ | Data_recv _ | Flow_control _ | Timer_arm _ | Timer_fire _
      | App_apply _ | App_read _ ->
          (* High-volume bookkeeping; slices and counters carry the same
             information with far fewer objects. *)
          ())
    events;
  (match events with
  | [] -> ()
  | _ ->
      let last = List.fold_left (fun _ (e : Trace.event) -> e.t_ns) 0 events in
      close_span ~until:(last + 1_000));
  Json.Obj
    [
      ("traceEvents", Json.List (List.rev !out));
      ("displayTimeUnit", Json.String "ms");
    ]

let to_string events = Json.to_string (to_json events)

let write_channel oc events =
  output_string oc (to_string events);
  output_char oc '\n'

let write_file path events =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> write_channel oc events)
