(** Per-round token-rotation profiling — the paper's Section IV
    instruments: rotation time, messages per round, aru progress per
    round, and the post-token overlap fraction (share of data sends that
    ride behind the token, the accelerated protocol's defining
    behavior).

    An observer node anchors the measurement: each accepted token
    receipt at that node closes one full rotation. View changes reset
    the anchor so partial rotations across membership churn are never
    sampled. *)

module Stats = Aring_util.Stats

type t

type summary = {
  observer : int;
  rotations : int;
  rotation_us : Stats.t;
  msgs_per_round : Stats.t;
  aru_per_round : Stats.t;
  post_token_fraction : float;
}

val create : node:int -> unit -> t
(** [node] is the anchor (usually the ring representative, pid 0). *)

val observe : t -> Trace.event -> unit
val as_sink : t -> Trace.sink
val summary : t -> summary

val record_metrics : summary -> Metrics.t -> unit
(** Export into a registry: ["rotation.rotations"] counter,
    ["rotation.time_us"] histogram, ["rotation.post_token_fraction"]
    gauge. *)

val pp_summary : Format.formatter -> summary -> unit
