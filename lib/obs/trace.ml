open Aring_wire

(* Structured trace events covering the protocol's internal rhythm: token
   motion, data motion, delivery, timers, flow-control decisions,
   membership phases and faults. One event = one observable step of one
   node; timestamps come from a pluggable clock so the same hooks serve
   the discrete-event simulator (virtual ns) and the UDP runtime (wall
   clock ns). *)

type kind =
  | Token_recv of {
      ring : Types.ring_id;
      token_id : int;
      round : int;
      seq : int;
      aru : int;
      local_aru : int;
      safe_line : int;
    }
  | Token_send of {
      ring : Types.ring_id;
      token_id : int;
      round : int;
      seq : int;
      aru : int;
      fcc : int;
      rtr : int;
      local_aru : int;
      safe_line : int;
    }
  | Token_dup of { token_id : int }
  | Token_retransmit of { token_id : int; attempt : int }
  | Token_lost
  | Data_send of {
      ring : Types.ring_id;
      seq : int;
      size : int;
      post_token : bool;
      retrans : bool;
    }
  | Data_recv of { ring : Types.ring_id; seq : int; sender : int; dup : bool }
  | Deliver of { ring : Types.ring_id; seq : int; sender : int; service : string }
  | Flow_control of {
      allowed_new : int;
      n_post : int;
      fcc : int;
      pending : int;
      by_global : int;
      by_gap : int;
    }
  | Timer_arm of { timer : string; delay_ns : int }
  | Timer_fire of { timer : string }
  | View_install of {
      ring : Types.ring_id;
      members : Types.pid list;
      transitional : bool;
    }
  | Phase of { phase : string }
  | Crash
  | Drop of { reason : string; size : int }
  | Control of {
      round : int;
      aw_before : int;
      aw_after : int;
      congested : bool;
      rotation_ns : int;
      fcc : int;
      retrans : int;
      backlog : int;
    }
  | App_apply of { index : int; key : string; deleted : bool }
  | App_read of { key : string; found : bool; token : int; sync : bool }
  | App_xfer of {
      view : Types.ring_id;
      donor : Types.pid;
      phase : string;
      applied : int;
      entries : int;
    }

type event = { t_ns : int; node : int; kind : kind }

type sink = { emit : event -> unit; flush : unit -> unit }

(* ------------------------------------------------------------------ *)
(* Global sink + clock                                                 *)

let current_sink : sink option ref = ref None
let clock : (unit -> int) ref = ref (fun () -> 0)

let enabled () = Option.is_some !current_sink
let current () = !current_sink
let install s = current_sink := Some s

let uninstall () =
  (match !current_sink with Some s -> s.flush () | None -> ());
  current_sink := None

let set_clock f = clock := f
let now () = !clock ()

let emit ~node kind =
  match !current_sink with
  | None -> ()
  | Some s -> s.emit { t_ns = !clock (); node; kind }

let emit_at ~t_ns ~node kind =
  match !current_sink with
  | None -> ()
  | Some s -> s.emit { t_ns; node; kind }

let with_sink s f =
  let prev = !current_sink in
  current_sink := Some s;
  Fun.protect
    ~finally:(fun () ->
      s.flush ();
      current_sink := prev)
    f

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)

let tee sinks =
  {
    emit = (fun ev -> List.iter (fun s -> s.emit ev) sinks);
    flush = (fun () -> List.iter (fun s -> s.flush ()) sinks);
  }

let null_sink = { emit = (fun _ -> ()); flush = (fun () -> ()) }

let fn_sink f = { emit = f; flush = (fun () -> ()) }

(* Unbounded in-memory collector (tests, exporters). *)
type memory = { mutable rev_events : event list; mutable n : int }

let memory () = { rev_events = []; n = 0 }

let memory_sink m =
  {
    emit =
      (fun ev ->
        m.rev_events <- ev :: m.rev_events;
        m.n <- m.n + 1);
    flush = (fun () -> ());
  }

let memory_events m = List.rev m.rev_events
let memory_count m = m.n

(* Bounded ring buffer keeping the last [capacity] events: the
   always-on-able sink for long runs. *)
type ring_buffer = {
  buf : event option array;
  mutable next : int;
  mutable total : int;
}

let ring_buffer ~capacity =
  if capacity <= 0 then invalid_arg "Trace.ring_buffer: capacity must be > 0";
  { buf = Array.make capacity None; next = 0; total = 0 }

let ring_sink r =
  {
    emit =
      (fun ev ->
        r.buf.(r.next) <- Some ev;
        r.next <- (r.next + 1) mod Array.length r.buf;
        r.total <- r.total + 1);
    flush = (fun () -> ());
  }

(* Oldest first. *)
let ring_events r =
  let n = Array.length r.buf in
  let rec collect i acc =
    if i = 0 then acc
    else
      let idx = (r.next - i + (2 * n)) mod n in
      match r.buf.(idx) with
      | Some ev -> collect (i - 1) (ev :: acc)
      | None -> collect (i - 1) acc
  in
  List.rev (collect n [])

let ring_total r = r.total

(* ------------------------------------------------------------------ *)
(* Pretty-printing                                                     *)

let kind_name = function
  | Token_recv _ -> "token_recv"
  | Token_send _ -> "token_send"
  | Token_dup _ -> "token_dup"
  | Token_retransmit _ -> "token_retransmit"
  | Token_lost -> "token_lost"
  | Data_send _ -> "data_send"
  | Data_recv _ -> "data_recv"
  | Deliver _ -> "deliver"
  | Flow_control _ -> "flow_control"
  | Timer_arm _ -> "timer_arm"
  | Timer_fire _ -> "timer_fire"
  | View_install _ -> "view_install"
  | Phase _ -> "phase"
  | Crash -> "crash"
  | Drop _ -> "drop"
  | Control _ -> "control"
  | App_apply _ -> "app_apply"
  | App_read _ -> "app_read"
  | App_xfer _ -> "app_xfer"

let pp_kind ppf k =
  match k with
  | Token_recv { token_id; round; seq; aru; local_aru; safe_line; _ } ->
      Format.fprintf ppf
        "token_recv(id=%d round=%d seq=%d aru=%d local_aru=%d safe=%d)"
        token_id round seq aru local_aru safe_line
  | Token_send { token_id; round; seq; aru; fcc; rtr; _ } ->
      Format.fprintf ppf "token_send(id=%d round=%d seq=%d aru=%d fcc=%d rtr=%d)"
        token_id round seq aru fcc rtr
  | Token_dup { token_id } -> Format.fprintf ppf "token_dup(id=%d)" token_id
  | Token_retransmit { token_id; attempt } ->
      Format.fprintf ppf "token_retransmit(id=%d attempt=%d)" token_id attempt
  | Token_lost -> Format.pp_print_string ppf "token_lost"
  | Data_send { seq; size; post_token; retrans; _ } ->
      Format.fprintf ppf "data_send(seq=%d size=%d%s%s)" seq size
        (if post_token then " post" else "")
        (if retrans then " retrans" else "")
  | Data_recv { seq; sender; dup; _ } ->
      Format.fprintf ppf "data_recv(seq=%d from=%d%s)" seq sender
        (if dup then " dup" else "")
  | Deliver { seq; sender; service; _ } ->
      Format.fprintf ppf "deliver(seq=%d from=%d %s)" seq sender service
  | Flow_control { allowed_new; n_post; fcc; pending; by_global; by_gap } ->
      Format.fprintf ppf
        "flow_control(new=%d post=%d fcc=%d pending=%d by_global=%d by_gap=%d)"
        allowed_new n_post fcc pending by_global by_gap
  | Timer_arm { timer; delay_ns } ->
      Format.fprintf ppf "timer_arm(%s %dns)" timer delay_ns
  | Timer_fire { timer } -> Format.fprintf ppf "timer_fire(%s)" timer
  | View_install { ring; members; transitional } ->
      Format.fprintf ppf "view_install(%a %s n=%d)" Types.pp_ring_id ring
        (if transitional then "trans" else "reg")
        (List.length members)
  | Phase { phase } -> Format.fprintf ppf "phase(%s)" phase
  | Crash -> Format.pp_print_string ppf "crash"
  | Drop { reason; size } -> Format.fprintf ppf "drop(%s %dB)" reason size
  | Control { round; aw_before; aw_after; congested; rotation_ns; fcc; retrans;
              backlog } ->
      Format.fprintf ppf
        "control(round=%d aw=%d->%d%s rot=%dns fcc=%d retrans=%d backlog=%d)"
        round aw_before aw_after
        (if congested then " congested" else "")
        rotation_ns fcc retrans backlog
  | App_apply { index; key; deleted } ->
      Format.fprintf ppf "app_apply(#%d %s%s)" index key
        (if deleted then " del" else "")
  | App_read { key; found; token; sync } ->
      Format.fprintf ppf "app_read(%s%s tok=%d%s)" key
        (if found then "" else " miss")
        token
        (if sync then " sync" else "")
  | App_xfer { view; donor; phase; applied; entries } ->
      Format.fprintf ppf "app_xfer(%s %a donor=%d applied=%d entries=%d)" phase
        Types.pp_ring_id view donor applied entries

let pp_event ppf ev =
  Format.fprintf ppf "[%10d] n%d %a" ev.t_ns ev.node pp_kind ev.kind
