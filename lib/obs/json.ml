(* Minimal JSON value type, printer and parser.

   The observability layer writes JSONL traces and Chrome trace-event
   files, and the trace-dump tool reads them back; a hand-rolled JSON is
   enough for that closed loop and keeps the library dependency-free. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.6g" f)
  | String s -> escape buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

type cursor = { s : string; mutable pos : int }

let fail c msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected %C" ch)

let expect_lit c lit v =
  if
    c.pos + String.length lit <= String.length c.s
    && String.sub c.s c.pos (String.length lit) = lit
  then begin
    c.pos <- c.pos + String.length lit;
    v
  end
  else fail c (Printf.sprintf "expected %s" lit)

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some 'n' -> advance c; Buffer.add_char buf '\n'; loop ()
        | Some 't' -> advance c; Buffer.add_char buf '\t'; loop ()
        | Some 'r' -> advance c; Buffer.add_char buf '\r'; loop ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.s then fail c "bad \\u escape";
            let hex = String.sub c.s c.pos 4 in
            c.pos <- c.pos + 4;
            let code = int_of_string ("0x" ^ hex) in
            (* Traces only escape control characters, so one byte suffices. *)
            Buffer.add_char buf (Char.chr (code land 0xff));
            loop ()
        | Some ch -> advance c; Buffer.add_char buf ch; loop ()
        | None -> fail c "unterminated escape")
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec loop () =
    match peek c with Some ch when is_num_char ch -> advance c; loop () | _ -> ()
  in
  loop ();
  let text = String.sub c.s start (c.pos - start) in
  match int_of_string_opt text with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail c "invalid number")

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some 'n' -> expect_lit c "null" Null
  | Some 't' -> expect_lit c "true" (Bool true)
  | Some 'f' -> expect_lit c "false" (Bool false)
  | Some '"' -> String (parse_string c)
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin advance c; List [] end
      else begin
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' -> advance c; items (v :: acc)
          | Some ']' -> advance c; List.rev (v :: acc)
          | _ -> fail c "expected ',' or ']'"
        in
        List (items [])
      end
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin advance c; Obj [] end
      else begin
        let rec fields acc =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' -> advance c; fields ((k, v) :: acc)
          | Some '}' -> advance c; List.rev ((k, v) :: acc)
          | _ -> fail c "expected ',' or '}'"
        in
        Obj (fields [])
      end
  | Some _ -> parse_number c

let of_string s =
  let c = { s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail c "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_str = function String s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List l -> Some l | _ -> None
