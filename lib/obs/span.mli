(** End-to-end latency spans. Messages are stamped at submission with
    the virtual clock ({!Trace.now}); stage transitions (submit →
    packed → token-ordered → delivered → applied) land in per-stage
    mergeable {!Metrics} histograms, decomposing where end-to-end
    latency goes. Opt-in and global: when no collector is attached
    every hook is a single ref read, and spans never feed the hashed
    trace stream. *)

type t

val create : ?metrics:Metrics.t -> unit -> t
(** Histograms are registered in [metrics] (default: a fresh registry)
    under the [span.*] names below. *)

val metrics : t -> Metrics.t

(** {2 Global collector} *)

val enabled : unit -> bool
val attach : t -> unit
val detach : unit -> unit
val with_span : t -> (unit -> 'a) -> 'a

(** {2 Stage notes} (called by the protocol stack; self-guarded) *)

val submit_stamp : unit -> int
(** Submission timestamp to carry alongside the message; [0] when no
    collector is attached (callers skip later notes on a zero stamp). *)

val note_packed : submit_ns:int -> unit
val note_ordered : sender:int -> seq:int -> submit_ns:int -> unit
val note_delivered : node:int -> sender:int -> seq:int -> unit
val note_applied : node:int -> unit

(** {2 Stage names} *)

val stage_submit_wait : string
val stage_order : string
val stage_deliver : string
val stage_apply : string
val stage_e2e : string
val stage_names : string list

(** {2 Reporting} *)

type stage_report = {
  stage : string;
  count : int;
  p50_us : float;
  p99_us : float;
  p999_us : float;
}

val report : t -> stage_report list
val report_of_metrics : Metrics.t -> stage_report list
(** Stage quantiles from any registry holding [span.*] histograms
    (e.g. one merged across nodes); empty stages are omitted. *)

val pp_report : Format.formatter -> stage_report list -> unit
