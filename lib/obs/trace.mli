(** Structured protocol tracing.

    A trace event records one observable step of one node: token motion,
    data motion, delivery, timer activity, flow-control decisions,
    membership phase changes and faults. Events flow into a pluggable
    {!sink}; when no sink is installed, instrumentation costs one branch
    ([enabled ()] is false), so production and benchmark runs are
    unaffected — pay for what you use.

    The clock is pluggable so the same hooks serve the discrete-event
    simulator (virtual nanoseconds) and the UDP runtime (wall clock). *)

open Aring_wire

type kind =
  | Token_recv of {
      ring : Types.ring_id;
      token_id : int;
      round : int;
      seq : int;
      aru : int;
      local_aru : int;
      safe_line : int;
    }  (** A regular token accepted (not a duplicate). *)
  | Token_send of {
      ring : Types.ring_id;
      token_id : int;
      round : int;
      seq : int;
      aru : int;
      fcc : int;
      rtr : int;
      local_aru : int;
      safe_line : int;
    }  (** The updated token forwarded to the successor. *)
  | Token_dup of { token_id : int }
  | Token_retransmit of { token_id : int; attempt : int }
  | Token_lost
  | Data_send of {
      ring : Types.ring_id;
      seq : int;
      size : int;
      post_token : bool;
      retrans : bool;
    }
  | Data_recv of { ring : Types.ring_id; seq : int; sender : int; dup : bool }
  | Deliver of { ring : Types.ring_id; seq : int; sender : int; service : string }
  | Flow_control of {
      allowed_new : int;
      n_post : int;
      fcc : int;
      pending : int;
      by_global : int;
      by_gap : int;
    }  (** The per-round window decision (Section III-A.1). *)
  | Timer_arm of { timer : string; delay_ns : int }
  | Timer_fire of { timer : string }
  | View_install of {
      ring : Types.ring_id;
      members : Types.pid list;
      transitional : bool;
    }
  | Phase of { phase : string }  (** Membership phase entered. *)
  | Crash
  | Drop of { reason : string; size : int }
  | Control of {
      round : int;
      aw_before : int;
      aw_after : int;
      congested : bool;
      rotation_ns : int;
      fcc : int;
      retrans : int;
      backlog : int;
    }
      (** An adaptive-window controller decision that changed the
          node-local accelerated window. Emitted only when a controller
          is attached, so controller-off traces are byte-identical to
          pre-controller runs. *)
  | App_apply of { index : int; key : string; deleted : bool }
      (** A replicated-KV replica applied write [index] of its op log
          (see {!Aring_app.Kv}). Emitted only by KV replicas, so
          KV-less traces are byte-identical to earlier runs. *)
  | App_read of { key : string; found : bool; token : int; sync : bool }
      (** A KV read served ([token] = the replica's applied-prefix
          consistency token; [sync] = Safe-ordered SyncRead). *)
  | App_xfer of {
      view : Types.ring_id;
      donor : Types.pid;
      phase : string;
      applied : int;
      entries : int;
    }
      (** State-transfer progress at a replica: phase is ["hello"],
          ["elect"], ["snapshot"], ["install"], ["abort"] or ["reset"]. *)

type event = { t_ns : int; node : int; kind : kind }

type sink = { emit : event -> unit; flush : unit -> unit }

(** {1 Global sink and clock} *)

val enabled : unit -> bool
(** True when a sink is installed. Call sites guard event construction
    with this so disabled tracing is one load+branch. *)

val current : unit -> sink option
val install : sink -> unit

val uninstall : unit -> unit
(** Flushes the installed sink, then removes it. *)

val set_clock : (unit -> int) -> unit
(** Timestamp source for {!emit}, in nanoseconds. The simulator installs
    its virtual clock; the UDP runtime installs a wall clock. *)

val now : unit -> int
(** Current reading of the installed clock, in nanoseconds. Lets
    sans-IO layers (e.g. the adaptive-window controller) measure
    durations without owning a clock of their own. *)

val emit : node:int -> kind -> unit
(** Emit with a timestamp from the clock. No-op when no sink installed. *)

val emit_at : t_ns:int -> node:int -> kind -> unit
(** Emit with an explicit timestamp (interpreter layers that model CPU
    cursors know a better time than the global clock). *)

val with_sink : sink -> (unit -> 'a) -> 'a
(** [with_sink s f] installs [s] (stacking over any current sink, which
    is restored afterwards), runs [f], and flushes [s]. *)

(** {1 Sinks} *)

val tee : sink list -> sink
val null_sink : sink
val fn_sink : (event -> unit) -> sink

type memory
(** Unbounded in-memory collector, for tests and exporters. *)

val memory : unit -> memory
val memory_sink : memory -> sink
val memory_events : memory -> event list
(** In emission order. *)

val memory_count : memory -> int

type ring_buffer
(** Bounded buffer keeping the last [capacity] events. *)

val ring_buffer : capacity:int -> ring_buffer
val ring_sink : ring_buffer -> sink
val ring_events : ring_buffer -> event list
(** Oldest first; at most [capacity] events. *)

val ring_total : ring_buffer -> int
(** Total events ever emitted (including overwritten ones). *)

(** {1 Printing} *)

val kind_name : kind -> string
val pp_kind : Format.formatter -> kind -> unit
val pp_event : Format.formatter -> event -> unit
