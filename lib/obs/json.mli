(** Minimal JSON values: just enough to write and read back the JSONL
    trace format and to emit Chrome trace-event files, without pulling an
    external JSON dependency into the observability layer. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string
(** Compact (single-line) rendering with string escaping. *)

val of_string : string -> t
(** Parse one JSON value; raises {!Parse_error} on malformed input. *)

val member : string -> t -> t option
(** [member key (Obj fields)] looks up [key]; [None] on other values. *)

val to_int : t -> int option
val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
