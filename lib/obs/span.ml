(* End-to-end latency spans: each message is stamped with the virtual
   time of its submission, and stage transitions are folded into
   per-stage mergeable histograms of the {!Metrics} registry:

     submit -> packed         span.submit_wait_us  (daemon pack buffer)
     submit -> token-ordered  span.order_us        (queueing + flow control)
     ordered -> delivered     span.deliver_us      (propagation + stability)
     delivered -> applied     span.apply_us        (app apply, synchronous)
     submit -> delivered      span.e2e_us

   The collector is opt-in and global (attach/detach, like the Trace
   sink): when detached, the engine stamps nothing and every note is a
   single ref read. Spans never emit trace events, so pinned corpus
   hashes are unaffected. In-flight bookkeeping is bounded: the
   (sender, seq) table is cleared if it ever exceeds [max_inflight]
   entries, trading a few lost samples for a hard memory cap. *)

let max_inflight = 1 lsl 16

let stage_submit_wait = "span.submit_wait_us"
let stage_order = "span.order_us"
let stage_deliver = "span.deliver_us"
let stage_apply = "span.apply_us"
let stage_e2e = "span.e2e_us"

let stage_names =
  [ stage_submit_wait; stage_order; stage_deliver; stage_apply; stage_e2e ]

type t = {
  sp_metrics : Metrics.t;
  h_submit_wait : Metrics.histogram;
  h_order : Metrics.histogram;
  h_deliver : Metrics.histogram;
  h_apply : Metrics.histogram;
  h_e2e : Metrics.histogram;
  inflight : (int, int * int) Hashtbl.t;  (* key -> (submit_ns, ordered_ns) *)
  mutable deliver_ns : int array;  (* per node: ns of the delivery being processed *)
}

let create ?metrics () =
  let reg = match metrics with Some m -> m | None -> Metrics.create () in
  {
    sp_metrics = reg;
    h_submit_wait = Metrics.histogram reg stage_submit_wait;
    h_order = Metrics.histogram reg stage_order;
    h_deliver = Metrics.histogram reg stage_deliver;
    h_apply = Metrics.histogram reg stage_apply;
    h_e2e = Metrics.histogram reg stage_e2e;
    inflight = Hashtbl.create 1024;
    deliver_ns = Array.make 16 (-1);
  }

let metrics t = t.sp_metrics

(* ------------------------------------------------------------------ *)
(* Global collector                                                    *)

let current : t option ref = ref None

let enabled () = Option.is_some !current
let attach t = current := Some t
let detach () = current := None

let with_span t f =
  attach t;
  Fun.protect ~finally:detach f

(* ------------------------------------------------------------------ *)
(* Stage notes                                                         *)

let us ns = float_of_int ns /. 1_000.0

(* Submission stamp carried by the engine's pending entry; 0 ("no
   stamp") when no collector is attached, so a disabled run pays only
   this ref read per submit. *)
let submit_stamp () = match !current with None -> 0 | Some _ -> Trace.now ()

(* seq fits comfortably below 2^44 in any simulated run; sender pids are
   small ints. *)
let key ~sender ~seq = (sender lsl 44) lor (seq land ((1 lsl 44) - 1))

let note_packed ~submit_ns =
  match !current with
  | None -> ()
  | Some t ->
      if submit_ns > 0 then
        Metrics.observe t.h_submit_wait (us (Trace.now () - submit_ns))

let note_ordered ~sender ~seq ~submit_ns =
  match !current with
  | None -> ()
  | Some t ->
      if submit_ns > 0 then begin
        let now = Trace.now () in
        Metrics.observe t.h_order (us (now - submit_ns));
        if Hashtbl.length t.inflight >= max_inflight then
          Hashtbl.reset t.inflight;
        Hashtbl.replace t.inflight (key ~sender ~seq) (submit_ns, now)
      end

let ensure_node t node =
  if node >= Array.length t.deliver_ns then begin
    let grown = Array.make (max (node + 1) (2 * Array.length t.deliver_ns)) (-1) in
    Array.blit t.deliver_ns 0 grown 0 (Array.length t.deliver_ns);
    t.deliver_ns <- grown
  end

let note_delivered ~node ~sender ~seq =
  match !current with
  | None -> ()
  | Some t ->
      let now = Trace.now () in
      if node >= 0 then begin
        ensure_node t node;
        t.deliver_ns.(node) <- now
      end;
      (match Hashtbl.find_opt t.inflight (key ~sender ~seq) with
      | Some (submit_ns, ordered_ns) ->
          Metrics.observe t.h_deliver (us (now - ordered_ns));
          Metrics.observe t.h_e2e (us (now - submit_ns))
      | None -> ())

let note_applied ~node =
  match !current with
  | None -> ()
  | Some t ->
      if node >= 0 && node < Array.length t.deliver_ns
         && t.deliver_ns.(node) >= 0
      then Metrics.observe t.h_apply (us (Trace.now () - t.deliver_ns.(node)))

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)

type stage_report = {
  stage : string;
  count : int;
  p50_us : float;
  p99_us : float;
  p999_us : float;
}

(* Stage quantiles from any registry holding span histograms — works on
   a live collector's registry and on merged cross-node registries
   alike. Stages with no samples are omitted. *)
let report_of_metrics reg =
  List.filter_map
    (fun stage ->
      match
        List.assoc_opt stage (Metrics.histograms reg)
      with
      | Some h when Metrics.hist_count h > 0 ->
          Some
            {
              stage;
              count = Metrics.hist_count h;
              p50_us = Metrics.hist_quantile h 0.5;
              p99_us = Metrics.hist_quantile h 0.99;
              p999_us = Metrics.hist_quantile h 0.999;
            }
      | _ -> None)
    stage_names

let report t = report_of_metrics t.sp_metrics

let pp_report ppf reports =
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-22s n=%-8d p50=%8.1fus p99=%8.1fus p99.9=%8.1fus@."
        r.stage r.count r.p50_us r.p99_us r.p999_us)
    reports
