type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = seed }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = next_int64 t }

(* Draw uniformly from [0, 2^62) and reject the tail that does not divide
   evenly into [bound]: a plain [r mod bound] over-represents the low
   residues by one part in 2^62/bound, which is measurable for bounds near
   max_int. Rejection probability is bound/2^62 < 1/4, so the loop
   terminates after ~1 draw in expectation. *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* 2^62 mod bound, computed in Int64 because 2^62 overflows OCaml int. *)
  let rem62 = Int64.to_int (Int64.rem 0x4000_0000_0000_0000L (Int64.of_int bound)) in
  let rec draw () =
    (* Mask to 62 bits so the value is a non-negative OCaml int. *)
    let r = Int64.to_int (Int64.logand (next_int64 t) 0x3FFF_FFFF_FFFF_FFFFL) in
    (* Accept r < 2^62 - rem62, i.e. the largest multiple of bound. *)
    if rem62 > 0 && r >= Int64.to_int (Int64.sub 0x4000_0000_0000_0000L (Int64.of_int rem62))
    then draw ()
    else r mod bound
  in
  draw ()

let float t bound =
  (* 53 uniform bits, as in the standard double construction. *)
  let bits = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let exponential t ~mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

(* ------------------------------------------------------------------ *)
(* Zipf sampling via a Walker/Vose alias table: O(n) construction, O(1)
   per draw, exactly two PRNG draws per sample regardless of outcome so
   the consumed stream is a pure function of (seed, draw count). *)

type zipf = {
  z_n : int;
  z_theta : float;
  z_prob : float array;  (* per-column acceptance probability *)
  z_alias : int array;  (* fallback rank per column *)
}

let zipf_n z = z.z_n
let zipf_theta z = z.z_theta

let zipf_table ~n ~theta =
  if n <= 0 then invalid_arg "Prng.zipf_table: n must be positive";
  if theta < 0.0 then invalid_arg "Prng.zipf_table: theta must be >= 0";
  let w = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** theta)) in
  let total = Array.fold_left ( +. ) 0.0 w in
  (* Scale so the mean column weight is exactly 1: columns above the mean
     donate their excess to columns below it. *)
  let p = Array.map (fun x -> x /. total *. float_of_int n) w in
  let prob = Array.make n 1.0 in
  let alias = Array.init n (fun i -> i) in
  let small = Stack.create () and large = Stack.create () in
  Array.iteri
    (fun i x -> if x < 1.0 then Stack.push i small else Stack.push i large)
    p;
  while (not (Stack.is_empty small)) && not (Stack.is_empty large) do
    let s = Stack.pop small and l = Stack.pop large in
    prob.(s) <- p.(s);
    alias.(s) <- l;
    p.(l) <- p.(l) -. (1.0 -. p.(s));
    if p.(l) < 1.0 then Stack.push l small else Stack.push l large
  done;
  (* Leftovers hold numerical dust only; their mass is exactly 1. *)
  Stack.iter (fun i -> prob.(i) <- 1.0) small;
  Stack.iter (fun i -> prob.(i) <- 1.0) large;
  { z_n = n; z_theta = theta; z_prob = prob; z_alias = alias }

let zipf t z =
  let j = int t z.z_n in
  let u = float t 1.0 in
  if u < z.z_prob.(j) then j else z.z_alias.(j)
