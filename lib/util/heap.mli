(** Imperative binary min-heap with user-supplied priority function.

    Used as the event queue of the discrete-event simulator and for small
    priority scheduling tasks. All operations are O(log n) except
    {!val:peek}, {!val:length}, {!val:is_empty} which are O(1). *)

type 'a t
(** A min-heap of ['a] values. *)

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty heap ordered by [cmp] (smallest first). *)

val length : 'a t -> int
(** [length h] is the number of elements currently in [h]. *)

val is_empty : 'a t -> bool
(** [is_empty h] is [length h = 0]. *)

val push : 'a t -> 'a -> unit
(** [push h x] inserts [x] into [h]. *)

val peek : 'a t -> 'a option
(** [peek h] is the minimum element of [h] without removing it. *)

val top_exn : 'a t -> 'a
(** [top_exn h] is the minimum element of [h] without removing it — the
    non-allocating {!val:peek} ([Some] boxes) for hot loops.
    @raise Invalid_argument if [h] is empty. *)

val pop : 'a t -> 'a option
(** [pop h] removes and returns the minimum element of [h]. *)

val pop_exn : 'a t -> 'a
(** [pop_exn h] removes and returns the minimum element without boxing an
    option. @raise Invalid_argument if [h] is empty. *)

val reserve : 'a t -> int -> unit
(** [reserve h n] grows the backing array to hold at least [n] elements so
    subsequent pushes up to [n] never resize. On a heap that has never
    held an element the request is remembered and applied at the first
    push (there is no value to seed the array with yet). Never shrinks. *)

val clear : 'a t -> unit
(** [clear h] removes every element from [h]. *)

val to_list : 'a t -> 'a list
(** [to_list h] is the elements of [h] in unspecified order. *)
