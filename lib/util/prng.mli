(** Deterministic pseudo-random number generator (SplitMix64).

    The simulator must be fully reproducible: every run with the same seed
    produces the same event trace. SplitMix64 is small, fast, and passes
    BigCrush; it is more than adequate for workload generation and loss
    injection. *)

type t

val create : seed:int64 -> t
(** [create ~seed] is a fresh generator. Equal seeds give equal streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Used to give each simulated node its own stream so that adding a
    consumer does not perturb the others. *)

val next_int64 : t -> int64
(** [next_int64 t] is the next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)] — exactly uniform, via
    rejection sampling rather than a biased [mod]. Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> mean:float -> float
(** [exponential t ~mean] samples an exponential distribution; used for
    Poisson inter-arrival workloads. *)

(** {1 Zipf sampling}

    Skewed key-popularity draws for workload generation: rank [i] (from
    0) is drawn with probability proportional to [1/(i+1)^theta]. The
    table is a Walker/Vose alias structure — O(n) to build, O(1) per
    draw, and every draw consumes exactly two PRNG outputs, so the
    stream position after [k] draws depends only on the seed and [k]. *)

type zipf

val zipf_table : n:int -> theta:float -> zipf
(** [zipf_table ~n ~theta] builds the alias table for ranks
    [0 .. n-1]. [theta = 0.0] degenerates to the uniform distribution;
    typical workload skew is 0.9–1.1 (YCSB uses 0.99). Requires
    [n > 0] and [theta >= 0]. *)

val zipf : t -> zipf -> int
(** [zipf t z] draws a rank in [0 .. n-1]; lower ranks are more
    popular. Deterministic for a given seed and draw sequence. *)

val zipf_n : zipf -> int

val zipf_theta : zipf -> float
