(** Deterministic pseudo-random number generator (SplitMix64).

    The simulator must be fully reproducible: every run with the same seed
    produces the same event trace. SplitMix64 is small, fast, and passes
    BigCrush; it is more than adequate for workload generation and loss
    injection. *)

type t

val create : seed:int64 -> t
(** [create ~seed] is a fresh generator. Equal seeds give equal streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Used to give each simulated node its own stream so that adding a
    consumer does not perturb the others. *)

val next_int64 : t -> int64
(** [next_int64 t] is the next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)] — exactly uniform, via
    rejection sampling rather than a biased [mod]. Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> mean:float -> float
(** [exponential t ~mean] samples an exponential distribution; used for
    Poisson inter-arrival workloads. *)
