type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable size : int;
  mutable want_cap : int;
      (* Capacity requested by [reserve] before any element existed; an
         empty heap has no value to seed [Array.make] with, so the request
         is honoured at the first push. *)
}

let create ~cmp = { cmp; data = [||]; size = 0; want_cap = 0 }

let length h = h.size

let is_empty h = h.size = 0

(* The backing array doubles on demand; slot 0 is the root. *)
let ensure_capacity h =
  if h.size >= Array.length h.data then begin
    let cap = max 16 (2 * Array.length h.data) in
    let data = Array.make cap h.data.(0) in
    Array.blit h.data 0 data 0 h.size;
    h.data <- data
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.cmp h.data.(i) h.data.(parent) < 0 then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && h.cmp h.data.(l) h.data.(!smallest) < 0 then smallest := l;
  if r < h.size && h.cmp h.data.(r) h.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h x =
  if h.size = 0 && Array.length h.data = 0 then
    h.data <- Array.make (max 16 h.want_cap) x
  else ensure_capacity h;
  h.data.(h.size) <- x;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h = if h.size = 0 then None else Some h.data.(0)

let top_exn h =
  if h.size = 0 then invalid_arg "Heap.top_exn: empty heap";
  h.data.(0)

let pop_exn h =
  if h.size = 0 then invalid_arg "Heap.pop_exn: empty heap";
  let root = h.data.(0) in
  h.size <- h.size - 1;
  if h.size > 0 then begin
    h.data.(0) <- h.data.(h.size);
    sift_down h 0
  end;
  root

let pop h = if h.size = 0 then None else Some (pop_exn h)

let reserve h n =
  if n > Array.length h.data then
    if Array.length h.data = 0 then h.want_cap <- max h.want_cap n
    else begin
      let data = Array.make n h.data.(0) in
      Array.blit h.data 0 data 0 h.size;
      h.data <- data
    end

let clear h = h.size <- 0

let to_list h =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (h.data.(i) :: acc) in
  loop (h.size - 1) []
