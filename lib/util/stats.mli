(** Online sample statistics for latency/throughput measurement.

    Collects samples and reports count, mean, min, max, standard deviation,
    and percentiles. Percentiles retain all samples (the experiment harness
    collects bounded sample counts, so this is acceptable and exact). *)

type t

val create : unit -> t

val add : t -> float -> unit
(** [add t x] records sample [x]. *)

val count : t -> int
val mean : t -> float

val stddev : t -> float
(** Population standard deviation; [0.] when fewer than two samples. *)

val min_value : t -> float
(** [min_value t] is the smallest sample; [nan] when empty. *)

val max_value : t -> float
(** [max_value t] is the largest sample; [nan] when empty. *)

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0,100\]] is the nearest-rank percentile;
    [nan] when empty. *)

val median : t -> float

val p999 : t -> float
(** The 99.9th percentile — tail behavior at bench sample sizes. *)

val merge : t -> t -> t
(** [merge a b] is a statistic over the union of both sample sets. *)

val pp : Format.formatter -> t -> unit
(** Prints ["n=… mean=… p50=… p99=… p99.9=… max=…"]. *)
