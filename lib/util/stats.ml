type t = {
  mutable samples : float array;
  mutable size : int;
  mutable sum : float;
  mutable sum_sq : float;
  mutable lo : float;
  mutable hi : float;
  mutable sorted : bool;
}

let create () =
  {
    samples = [||];
    size = 0;
    sum = 0.0;
    sum_sq = 0.0;
    lo = infinity;
    hi = neg_infinity;
    sorted = true;
  }

let add t x =
  if t.size >= Array.length t.samples then begin
    let cap = max 64 (2 * Array.length t.samples) in
    let samples = Array.make cap 0.0 in
    Array.blit t.samples 0 samples 0 t.size;
    t.samples <- samples
  end;
  t.samples.(t.size) <- x;
  t.size <- t.size + 1;
  t.sum <- t.sum +. x;
  t.sum_sq <- t.sum_sq +. (x *. x);
  if x < t.lo then t.lo <- x;
  if x > t.hi then t.hi <- x;
  t.sorted <- false

let count t = t.size

let mean t = if t.size = 0 then nan else t.sum /. float_of_int t.size

let stddev t =
  if t.size < 2 then 0.0
  else begin
    let n = float_of_int t.size in
    let m = t.sum /. n in
    let v = (t.sum_sq /. n) -. (m *. m) in
    if v <= 0.0 then 0.0 else sqrt v
  end

let min_value t = if t.size = 0 then nan else t.lo

let max_value t = if t.size = 0 then nan else t.hi

let ensure_sorted t =
  if not t.sorted then begin
    let view = Array.sub t.samples 0 t.size in
    Array.sort Float.compare view;
    Array.blit view 0 t.samples 0 t.size;
    t.sorted <- true
  end

let percentile t p =
  if t.size = 0 then nan
  else begin
    ensure_sorted t;
    let p = Float.max 0.0 (Float.min 100.0 p) in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.size)) in
    let idx = max 0 (min (t.size - 1) (rank - 1)) in
    t.samples.(idx)
  end

let median t = percentile t 50.0
let p999 t = percentile t 99.9

let merge a b =
  let t = create () in
  for i = 0 to a.size - 1 do
    add t a.samples.(i)
  done;
  for i = 0 to b.size - 1 do
    add t b.samples.(i)
  done;
  t

let pp ppf t =
  if t.size = 0 then Format.fprintf ppf "n=0"
  else
    Format.fprintf ppf "n=%d mean=%.1f p50=%.1f p99=%.1f p99.9=%.1f max=%.1f"
      t.size (mean t) (median t) (percentile t 99.0) (p999 t) (max_value t)
