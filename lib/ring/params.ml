type priority_method = Aggressive | Conservative

type t = {
  personal_window : int;
  global_window : int;
  accelerated_window : int;
  max_seq_gap : int;
  priority_method : priority_method;
  token_retransmit_ns : int;
  token_loss_ns : int;
  join_retransmit_ns : int;
  consensus_timeout_ns : int;
  merge_probe_ns : int;
  recovery_burst_msgs : int;
  recovery_burst_gap_ns : int;
}

let ms n = n * 1_000_000

let default =
  {
    personal_window = 60;
    global_window = 300;
    accelerated_window = 20;
    max_seq_gap = 2000;
    priority_method = Aggressive;
    token_retransmit_ns = ms 20;
    token_loss_ns = ms 200;
    join_retransmit_ns = ms 50;
    consensus_timeout_ns = ms 500;
    merge_probe_ns = ms 300;
    recovery_burst_msgs = 8;
    recovery_burst_gap_ns = 400_000;
  }

let original =
  { default with accelerated_window = 0; priority_method = Conservative }

let accelerated ?personal_window ?global_window ?accelerated_window
    ?priority_method () =
  let p = default in
  let p =
    match personal_window with
    | None -> p
    | Some personal_window -> { p with personal_window }
  in
  let p =
    match global_window with
    | None -> p
    | Some global_window -> { p with global_window }
  in
  let p =
    match accelerated_window with
    | None -> p
    | Some accelerated_window -> { p with accelerated_window }
  in
  match priority_method with
  | None -> p
  | Some priority_method -> { p with priority_method }

let is_original p = p.accelerated_window = 0

let validate p =
  if p.personal_window <= 0 then Error "personal_window must be positive"
  else if p.global_window < p.personal_window then
    Error "global_window must be at least personal_window"
  else if p.accelerated_window < 0 then
    Error "accelerated_window must be non-negative"
  else if p.accelerated_window > p.personal_window then
    Error "accelerated_window must not exceed personal_window"
  else if p.max_seq_gap < p.global_window then
    Error "max_seq_gap must be at least global_window"
  else if p.token_retransmit_ns <= 0 || p.token_loss_ns <= p.token_retransmit_ns
  then Error "token_loss_ns must exceed token_retransmit_ns"
  else if p.join_retransmit_ns <= 0 || p.consensus_timeout_ns <= p.join_retransmit_ns
  then
    (* The consensus timeout declares processes not heard from since the
       previous timeout failed; a join cadence at or above it would let a
       healthy gather starve itself of fresh joins. *)
    Error "consensus_timeout_ns must exceed join_retransmit_ns"
  else if p.recovery_burst_msgs <= 0 then
    Error "recovery_burst_msgs must be positive"
  else if p.recovery_burst_gap_ns <= 0 then
    Error "recovery_burst_gap_ns must be positive"
  else Ok ()

let pp ppf p =
  Format.fprintf ppf
    "params(pw=%d gw=%d aw=%d gap=%d prio=%s)"
    p.personal_window p.global_window p.accelerated_window p.max_seq_gap
    (match p.priority_method with
    | Aggressive -> "aggressive"
    | Conservative -> "conservative")
