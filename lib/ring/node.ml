open Aring_wire
module Deque = Aring_util.Deque
module Trace = Aring_obs.Trace
module Controller = Aring_control.Controller

type Participant.timer += Engine_timer of Engine.timer_kind * int

type queue_stats = {
  mutable token_drops : int;
  mutable data_drops : int;
  mutable max_data_backlog : int;
}

type queue = {
  q : Message.t Deque.t;
  cap_bytes : int;
  mutable occupied : int;
}

type t = {
  engine : Engine.t;
  prio : Priority.t;
  token_q : queue;
  data_q : queue;
  qstats : queue_stats;
  (* Optional adaptive-window controller, consulted once per accepted
     token. Shared across engine rebuilds (Member passes the same
     instance into every installed configuration) so learned state
     survives membership changes. *)
  controller : Controller.t option;
  mutable last_token_ns : int;  (* -1 until the first accepted token *)
}

let make_queue cap_bytes = { q = Deque.create (); cap_bytes; occupied = 0 }

let create ~params ~ring_id ~ring ~me ?(token_queue_cap = 256 * 1024)
    ?(data_queue_cap = 2 * 1024 * 1024) ?controller () =
  let engine = Engine.create ~params ~ring_id ~ring ~me in
  (* A reinstalled engine starts back at the Params window; resume from
     the controller's learned window instead. *)
  (match controller with
  | Some c -> Engine.set_accelerated_window engine (Controller.window c)
  | None -> ());
  {
    engine;
    prio = Priority.create params.Params.priority_method;
    token_q = make_queue token_queue_cap;
    data_q = make_queue data_queue_cap;
    qstats = { token_drops = 0; data_drops = 0; max_data_backlog = 0 };
    controller;
    last_token_ns = -1;
  }

let engine t = t.engine
let queue_stats t = t.qstats
let controller t = t.controller

(* One controller step: translate the engine's per-round signals plus the
   inter-token time into a window decision, apply it, and trace it when
   it changed something. No controller, no cost — and no trace events,
   keeping controller-off runs byte-identical. *)
let run_controller t =
  match (t.controller, Engine.last_round_signals t.engine) with
  | None, _ | _, None -> ()
  | Some c, Some (s : Engine.round_signals) ->
      let now = Trace.now () in
      let rotation_ns = if t.last_token_ns < 0 then 0 else now - t.last_token_ns in
      t.last_token_ns <- now;
      let d =
        Controller.observe c
          {
            Controller.rotation_ns;
            fcc = s.sr_fcc;
            retrans = s.sr_retrans;
            backlog = s.sr_backlog;
          }
      in
      if d.Controller.aw_after <> d.Controller.aw_before then begin
        Engine.set_accelerated_window t.engine d.Controller.aw_after;
        if Trace.enabled () then
          Trace.emit ~node:(Engine.me t.engine)
            (Trace.Control
               {
                 round = s.sr_round;
                 aw_before = d.Controller.aw_before;
                 aw_after = d.Controller.aw_after;
                 congested = d.Controller.congested;
                 rotation_ns;
                 fcc = s.sr_fcc;
                 retrans = s.sr_retrans;
                 backlog = s.sr_backlog;
               })
      end

let action_of_output = function
  | Engine.Send_token (pid, tok) -> Participant.Unicast (pid, Message.Token tok)
  | Engine.Send_data d -> Participant.Multicast (Message.Data d)
  | Engine.Deliver d -> Participant.Deliver d
  | Engine.Set_timer (kind, gen, delay) ->
      Participant.Arm_timer (Engine_timer (kind, gen), delay)
  | Engine.Token_lost -> Participant.Token_loss_detected

let start t =
  let timers = List.map (action_of_output) (Engine.start_timers t.engine) in
  let me = Engine.me t.engine in
  if (Engine.ring t.engine).(0) = me then
    (* The representative holds the first token; route it through the
       normal receive path so processing cost and ordering are uniform. *)
    Participant.Unicast
      (me, Message.Token (Engine.initial_token (Engine.ring_id t.engine)))
    :: timers
  else timers

let submit t service payload =
  ignore (Engine.handle t.engine (Engine.Submit (service, payload)))

let enqueue queue stats_incr msg =
  let size = Message.wire_size msg in
  if queue.occupied + size > queue.cap_bytes then begin
    stats_incr ();
    `Dropped
  end
  else begin
    queue.occupied <- queue.occupied + size;
    Deque.push_back queue.q msg;
    `Queued
  end

let receive t msg =
  match msg with
  | Message.Token _ | Message.Commit _ ->
      enqueue t.token_q
        (fun () -> t.qstats.token_drops <- t.qstats.token_drops + 1)
        msg
  | Message.Data _ | Message.Join _ ->
      let r =
        enqueue t.data_q
          (fun () -> t.qstats.data_drops <- t.qstats.data_drops + 1)
          msg
      in
      if t.data_q.occupied > t.qstats.max_data_backlog then
        t.qstats.max_data_backlog <- t.data_q.occupied;
      r

let has_work t =
  not (Deque.is_empty t.token_q.q && Deque.is_empty t.data_q.q)

let queued_messages t = Deque.length t.token_q.q + Deque.length t.data_q.q

let dequeue queue =
  match Deque.pop_front queue.q with
  | None -> None
  | Some msg ->
      queue.occupied <- queue.occupied - Message.wire_size msg;
      Some msg

let take_next t =
  if Priority.token_has_priority t.prio then
    match dequeue t.token_q with None -> dequeue t.data_q | some -> some
  else
    match dequeue t.data_q with None -> dequeue t.token_q | some -> some

let process t msg =
  match msg with
  | Message.Token tok ->
      let round_before = Engine.round t.engine in
      let outputs = Engine.handle t.engine (Engine.Token_received tok) in
      if Engine.round t.engine > round_before then begin
        Priority.note_token_processed t.prio;
        run_controller t
      end;
      List.map action_of_output outputs
  | Message.Data d ->
      let outputs = Engine.handle t.engine (Engine.Data_received d) in
      Priority.note_data_processed t.prio
        ~predecessor:(Engine.predecessor t.engine)
        ~current_round:(Engine.round t.engine)
        d;
      List.map action_of_output outputs
  | Message.Join _ | Message.Commit _ ->
      (* Membership traffic is handled by the membership layer wrapping
         this node (see Member); an operational node alone ignores it. *)
      []

let fire_timer t timer =
  match timer with
  | Engine_timer (kind, gen) ->
      List.map action_of_output
        (Engine.handle t.engine (Engine.Timer_expired (kind, gen)))
  | _ -> []

let participant t : Participant.t =
  {
    pid = Engine.me t.engine;
    submit = (fun service payload -> submit t service payload);
    receive = (fun msg -> receive t msg);
    has_work = (fun () -> has_work t);
    take_next = (fun () -> take_next t);
    process = (fun msg -> process t msg);
    fire_timer = (fun timer -> fire_timer t timer);
    start = (fun () -> start t);
  }
