(** Membership-capable protocol participant: the full Accelerated Ring stack.

    [Member] wraps the operational {!Node} with a Totem-style membership
    algorithm and Extended Virtual Synchrony (EVS) configuration delivery.
    The paper uses the membership algorithm of Spread/Totem unchanged
    (Section II); this is a from-scratch implementation of its essential
    structure:

    {b States.}
    - {e Operational}: the ordering protocol runs; the ring's
      representative periodically multicasts a presence probe so healed
      partitions discover each other.
    - {e Gather}: entered on token loss, on receiving a join, or on
      foreign-ring traffic. Members multicast join messages carrying their
      proposed process set and fail set, and merge what they hear until
      every live proposed member advertises identical sets (consensus).
      A consensus timeout declares silent processes failed; a member alone
      at the timeout forms a singleton ring.
    - {e Commit}: the new ring's representative circulates a commit token
      around the proposed ring; pass 1 collects each member's old-ring
      state (ring id, aru, highest sequence), pass 2 spreads the complete
      picture to everyone.
    - {e Recover}: survivors of each old ring multicast ("flood") the
      old-ring messages that some survivor may be missing — every message
      between the survivors' minimum aru and maximum known sequence. Two
      further commit-token passes (3 and 4) confirm that every member
      finished the exchange; pass 4 installs the new configuration.

    {b EVS delivery at installation.} Each member delivers, in order: the
    {e transitional configuration} (survivors of its old ring), the
    remaining old-ring messages recovered by the exchange (in sequence
    order — after the exchange all survivors hold the same set, so all
    deliver the same messages in the same order), and finally the new
    {e regular configuration}. Client messages not yet sequenced carry over
    into the new configuration automatically.

    {b Known limitation} (documented in DESIGN.md): recovery floods are
    plain multicasts; packet loss {e during} the exchange itself can leave
    survivors with different recovered suffixes. Totem closes this window
    by running the full retransmission machinery on the recovery ring; here
    a lost formation times out and re-gathers, which converges but does not
    retransmit within one exchange. *)

open Aring_wire

type memb_timer_kind =
  | Join_retransmit
  | Consensus_timeout
  | Formation_timeout
  | Merge_probe
  | Exchange_recheck
      (** Re-examine a held-back pass-4 commit once late recovery floods
          have had a chance to arrive. *)

type Participant.timer +=
  | Memb_timer of memb_timer_kind * int
        (** Membership timers; the [int] is a generation — stale timers are
            ignored. *)
  | Epoch_timer of int * Participant.timer
        (** A node-level timer tagged with the node's epoch, so timers armed
            by a torn-down configuration cannot fire into its successor. *)

type t

val create :
  params:Params.t ->
  me:Types.pid ->
  ?initial_ring:Types.pid array ->
  ?controller:Aring_control.Controller.t ->
  unit ->
  t
(** [create ~params ~me ()] is a participant that starts alone and finds
    peers through the membership algorithm. With [?initial_ring] it starts
    directly operational in that pre-agreed configuration (ring_seq 1) —
    the usual production bootstrap where all daemons share a config file.

    With [?controller], every configuration this member installs runs the
    adaptive accelerated-window controller (see {!Node.create}); the same
    instance is reused across installs so the learned window survives
    membership changes. *)

val participant : t -> Participant.t
(** The uniform runtime interface (see {!Participant}). *)

val submit : t -> Types.service -> bytes -> unit
(** Submit a client message. Messages submitted while a membership change
    is in progress are buffered and sequenced in the next configuration. *)

(** {2 Introspection} *)

val me : t -> Types.pid

val state_name : t -> string
(** ["operational"], ["gather"], ["commit"] or ["recover"]. *)

val current_view : t -> Participant.view option
(** The last regular configuration delivered, if any. *)

val node : t -> Node.t option
(** The operational node, when in the operational state. *)

val installs : t -> int
(** Number of configurations installed so far. *)
