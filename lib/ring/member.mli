(** Membership-capable protocol participant: the full Accelerated Ring stack.

    [Member] wraps the operational {!Node} with a Totem-style membership
    algorithm and Extended Virtual Synchrony (EVS) configuration delivery.
    The paper uses the membership algorithm of Spread/Totem unchanged
    (Section II); this is a from-scratch implementation of its essential
    structure:

    {b States.}
    - {e Operational}: the ordering protocol runs; the ring's
      representative periodically multicasts a presence probe so healed
      partitions discover each other.
    - {e Gather}: entered on token loss, on receiving a join, or on
      foreign-ring traffic. Members multicast join messages carrying their
      proposed process set and fail set, and merge what they hear until
      every live proposed member advertises identical sets (consensus).
      A consensus timeout declares silent processes failed; a member alone
      at the timeout forms a singleton ring.
    - {e Commit}: the new ring's representative circulates a commit token
      around the proposed ring; pass 1 collects each member's old-ring
      state (ring id, aru, highest sequence), pass 2 spreads the complete
      picture to everyone.
    - {e Recover}: survivors of each old ring multicast ("flood") the
      old-ring messages that some survivor may be missing — every message
      between the survivors' minimum aru and maximum known sequence. The
      flood is {e deduplicated} (per sequence number only its designated
      holder — the highest-pid survivor holding it, computed identically
      by everyone from the commit token's member infos — sends it) and
      {e paced} (bursts of [recovery_burst_msgs] spaced
      [recovery_burst_gap_ns] apart, the first burst staggered by ring
      position, so a small switch buffer drains between bursts). Two
      further commit-token passes (3 and 4) confirm that every member
      finished the exchange; pass 4 installs the new configuration.

    {b EVS delivery at installation.} Each member delivers, in order: the
    {e transitional configuration} (survivors of its old ring), the
    remaining old-ring messages recovered by the exchange (in sequence
    order — after the exchange all survivors hold the same set, so all
    deliver the same messages in the same order), and finally the new
    {e regular configuration}. Client messages not yet sequenced carry over
    into the new configuration automatically.

    {b Exchange retransmission} (DESIGN.md §5f): recovery floods are plain
    multicasts, so packet loss during the exchange is expected. A member
    holding the pass-4 commit token with advertised messages still missing
    multicasts a cumulative nack — its missing sequence numbers as
    compacted ranges, carried on the commit channel as a sentinel pass 5 —
    and the designated holder re-floods them through its paced queue; the
    k-th nack for a sequence number is answered by the k-th candidate
    holder, rotating past crashed donors. Only after repeated nacks go
    unanswered does the member give up and re-gather. *)

open Aring_wire

type memb_timer_kind =
  | Join_retransmit
  | Consensus_timeout
  | Formation_timeout
  | Merge_probe
  | Exchange_recheck
      (** Re-examine a held-back pass-4 commit once late recovery floods
          have had a chance to arrive; requests retransmission of whatever
          is still missing. *)
  | Flood_burst
      (** Send the next paced burst from the recovery flood queue. *)

type Participant.timer +=
  | Memb_timer of memb_timer_kind * int
        (** Membership timers; the [int] is a generation — stale timers are
            ignored. *)
  | Epoch_timer of int * Participant.timer
        (** A node-level timer tagged with the node's epoch, so timers armed
            by a torn-down configuration cannot fire into its successor. *)

type t

val create :
  params:Params.t ->
  me:Types.pid ->
  ?initial_ring:Types.pid array ->
  ?controller:Aring_control.Controller.t ->
  ?legacy_flood:bool ->
  unit ->
  t
(** [create ~params ~me ()] is a participant that starts alone and finds
    peers through the membership algorithm. With [?initial_ring] it starts
    directly operational in that pre-agreed configuration (ring_seq 1) —
    the usual production bootstrap where all daemons share a config file.

    With [?controller], every configuration this member installs runs the
    adaptive accelerated-window controller (see {!Node.create}); the same
    instance is reused across installs so the learned window survives
    membership changes.

    [?legacy_flood] (default [false]) restores the pre-overhaul recovery
    exchange — every survivor floods its whole range at once and the
    recheck never retransmits. Exists so the fuzzer can demonstrate that
    the old behavior livelocks ({!Aring_fuzz.Bug.Recovery_flood}). *)

val participant : t -> Participant.t
(** The uniform runtime interface (see {!Participant}). *)

val submit : t -> Types.service -> bytes -> unit
(** Submit a client message. Messages submitted while a membership change
    is in progress are buffered and sequenced in the next configuration. *)

(** {2 Introspection} *)

val me : t -> Types.pid

val state_name : t -> string
(** ["operational"], ["gather"], ["commit"] or ["recover"]. *)

val current_view : t -> Participant.view option
(** The last regular configuration delivered, if any. *)

val node : t -> Node.t option
(** The operational node, when in the operational state. *)

val installs : t -> int
(** Number of configurations installed so far. *)
