open Aring_wire
module Deque = Aring_util.Deque
module Flight = Aring_obs.Flight
module Health = Aring_obs.Health

type memb_timer_kind =
  | Join_retransmit
  | Consensus_timeout
  | Formation_timeout
  | Merge_probe
  | Exchange_recheck
  | Flood_burst

type Participant.timer +=
  | Memb_timer of memb_timer_kind * int
  | Epoch_timer of int * Participant.timer

let log = Logs.Src.create "accelring.member" ~doc:"Membership algorithm"

module Log = (val Logs.src_log log : Logs.LOG)

(* ------------------------------------------------------------------ *)
(* Sorted pid-list set helpers                                         *)

let set_of l = List.sort_uniq compare l
let set_union a b = set_of (a @ b)
let set_mem = List.mem
let set_diff a b = List.filter (fun x -> not (List.mem x b)) a
let set_equal a b = set_of a = set_of b

(* ------------------------------------------------------------------ *)
(* Phases                                                              *)

type gather = {
  mutable proc_set : Types.pid list;  (* sorted *)
  mutable fail_set : Types.pid list;  (* sorted *)
  joins : (Types.pid, Message.join) Hashtbl.t;
  heard : (Types.pid, unit) Hashtbl.t;
      (* Processes whose join arrived since the last consensus timeout.
         The silent-process check runs against this, not [joins]: a
         crashed process whose pre-crash join still sits in [joins]
         must not stay immune to failure detection forever. *)
  mutable agreed : bool;  (* consensus reached, waiting for commit token *)
  mutable settled : bool;
      (* Consensus may only conclude after one join-retransmit interval:
         processes detect the failure at slightly different times, and
         concluding immediately would form a ring that excludes the
         laggards (they would merge back in, but with churn). *)
}

type commit_phase = {
  cp_ring : Types.ring_id;
  cp_order : Types.pid array;
}

type recover = {
  r_ring : Types.ring_id;
  r_order : Types.pid array;
  r_memb : Message.member_info list;
  r_survivors : Types.pid list;  (* of my old ring, sorted *)
  r_min_aru : Types.seqno;
  r_max_high : Types.seqno;
  r_exchange : (Types.seqno, Message.data) Hashtbl.t;
  r_flood_q : Types.seqno Deque.t;
      (* Exchange messages this node is designated to flood, ascending;
         drained in paced bursts by the [Flood_burst] timer. *)
  r_queued : (Types.seqno, unit) Hashtbl.t;  (* membership of [r_flood_q] *)
  r_nacked : (Types.seqno, int) Hashtbl.t;
      (* How many cumulative nacks have named each seqno. The k-th nack
         is answered by the k-th candidate holder, so a crashed donor is
         routed around without any extra agreement round. *)
  r_pos : int;  (* my index among the survivors, for burst staggering *)
  mutable r_burst_armed : bool;
  mutable r_pending : Message.commit option;
      (* A pass-4 commit held back while late recovery floods arrive. *)
  mutable r_rechecks : int;
}

type phase =
  | Operational of Node.t
  | Gather of gather
  | Commit_wait of commit_phase
  | Recover of recover

(* Flood work carried across an install. A member must install as soon as
   it verifies completeness — holding the pass-4 token while its own
   paced flood queue drains stalls the new ring's token rotation past
   the token-loss timeout and kills the formation. So the queue, the
   exchange table and the nack bookkeeping survive the install here, and
   the member keeps bursting (and answering pass-5 nacks) for peers
   still recovering the old ring while it is already operational. *)
type residual = {
  res_old_ring : Types.ring_id;  (* the exchanged (pre-install) ring *)
  res_memb : Message.member_info list;  (* for holder re-election *)
  res_exchange : (Types.seqno, Message.data) Hashtbl.t;
  res_q : Types.seqno Deque.t;
  res_queued : (Types.seqno, unit) Hashtbl.t;
  res_nacked : (Types.seqno, int) Hashtbl.t;
  mutable res_burst_armed : bool;
}

type t = {
  params : Params.t;
  me : Types.pid;
  legacy_flood : bool;
      (* Pre-overhaul recovery: every survivor floods its whole exchange
         range immediately and the recheck only re-verifies. Kept behind
         a flag so the fuzzer can prove the old behavior still livelocks
         (Bug.Recovery_flood). *)
  initial_ring : Types.pid array option;
  (* One controller for the member's lifetime: each installed
     configuration's Node gets the same instance, so the adapted window
     carries across membership changes. *)
  controller : Aring_control.Controller.t option;
  mutable phase : phase;
  mutable residual : residual option;  (* flood work from the last install *)
  mutable old_node : Node.t option;  (* engine of the dying configuration *)
  mutable old_ring : Types.ring_id;  (* ring I was last operational in *)
  mutable old_delivered : Types.seqno;  (* its delivery cursor *)
  mutable highest_ring_seq : int;
  mutable join_seq : int;
  mutable memb_gen : int;  (* invalidates membership timers on phase change *)
  mutable node_epoch : int;  (* invalidates node timers across installs *)
  mutable last_view : Participant.view option;
  mutable installs : int;
  known_rings : (Types.ring_id, unit) Hashtbl.t;  (* superseded rings *)
  seen_join_seq : (Types.pid, int) Hashtbl.t;
  client_pending : (Types.service * bytes) Queue.t;
  inbox : Message.t Deque.t;  (* receive queue outside Operational *)
  stash : (Types.seqno, Message.data) Hashtbl.t;  (* old-ring data *)
}

let me t = t.me
let installs t = t.installs
let current_view t = t.last_view

let node t = match t.phase with Operational n -> Some n | _ -> None

let state_name t =
  match t.phase with
  | Operational _ -> "operational"
  | Gather _ -> "gather"
  | Commit_wait _ -> "commit"
  | Recover _ -> "recover"

let phase_code t =
  match t.phase with
  | Operational _ -> Health.phase_operational
  | Gather _ -> Health.phase_gather
  | Commit_wait _ -> Health.phase_commit
  | Recover _ -> Health.phase_recover

(* Note the phase just entered (call after updating [t.phase]): flight
   recorder always, health watchdog when attached, trace sink when
   installed. Only the trace event is part of the hashed stream. *)
let trace_phase t =
  Flight.record ~node:t.me ~code:Flight.ev_phase ~a:(phase_code t)
    ~b:t.memb_gen ~c:0 ~d:0;
  Health.note_phase ~node:t.me ~phase:(phase_code t);
  if Aring_obs.Trace.enabled () then
    Aring_obs.Trace.emit ~node:t.me (Phase { phase = state_name t })

let create ~params ~me ?initial_ring ?controller ?(legacy_flood = false) () =
  let singleton_ring : Types.ring_id = { rep = me; ring_seq = 0 } in
  {
    params;
    me;
    legacy_flood;
    initial_ring;
    controller;
    phase =
      Gather
        {
          proc_set = [ me ];
          fail_set = [];
          joins = Hashtbl.create 8;
          heard = Hashtbl.create 8;
          agreed = false;
          settled = false;
        };
    residual = None;
    old_node = None;
    old_ring = singleton_ring;
    old_delivered = 0;
    highest_ring_seq = 0;
    join_seq = 0;
    memb_gen = 0;
    node_epoch = 0;
    last_view = None;
    installs = 0;
    known_rings = Hashtbl.create 8;
    seen_join_seq = Hashtbl.create 8;
    client_pending = Queue.create ();
    inbox = Deque.create ();
    stash = Hashtbl.create 64;
  }

(* A member may only install once it holds every exchange-range message
   some survivor of its old ring advertised (above what it already
   delivered) — otherwise survivors' delivered sets could diverge. *)
let missing_from_exchange t (r : recover) holds =
  match
    List.find_opt (fun (ring, _) -> Types.ring_id_equal ring t.old_ring) holds
  with
  | None -> []
  | Some (_, seqs) ->
      List.filter
        (fun seq -> seq > t.old_delivered && not (Hashtbl.mem r.r_exchange seq))
        seqs

(* ------------------------------------------------------------------ *)
(* Node action post-processing                                         *)

(* Tag node-armed timers with the current epoch so that timers armed by a
   torn-down configuration cannot fire into its successor (engine timer
   generations restart from zero in each new engine). *)
let rec rewrap_node_actions t actions =
  (* Direct recursion: one cons per action — the seed's [List.concat_map]
     built a closure plus a singleton list for every action on the hot
     token/data path. *)
  match actions with
  | [] -> []
  | action :: rest -> (
      match action with
      | Participant.Arm_timer (timer, delay) ->
          Participant.Arm_timer (Epoch_timer (t.node_epoch, timer), delay)
          :: rewrap_node_actions t rest
      | Participant.Token_loss_detected ->
          let gather = enter_gather t in
          gather @ rewrap_node_actions t rest
      | Participant.Unicast _ | Participant.Multicast _
      | Participant.Deliver _ | Participant.Deliver_config _ ->
          action :: rewrap_node_actions t rest)

(* ------------------------------------------------------------------ *)
(* Gather                                                              *)

and my_join t (g : gather) : Message.join =
  { j_pid = t.me; proc_set = g.proc_set; fail_set = g.fail_set; join_seq = t.join_seq }

and multicast_join t g = Participant.Multicast (Message.Join (my_join t g))

(* Leave the operational (or any) state and start gathering. *)
and enter_gather t =
  t.memb_gen <- t.memb_gen + 1;
  t.join_seq <- t.join_seq + 1;
  (match t.phase with
  | Operational node ->
      (* Preserve the dying configuration: its engine holds the messages
         recovery will exchange; unprocessed queued data still counts as
         received for that purpose. *)
      let engine = Node.engine node in
      t.old_node <- Some node;
      t.old_ring <- Engine.ring_id engine;
      t.old_delivered <- Engine.delivered_upto engine;
      Hashtbl.replace t.known_rings t.old_ring ();
      let rec drain () =
        match Node.take_next node with
        | None -> ()
        | Some (Message.Data d) ->
            if Types.ring_id_equal d.d_ring t.old_ring then
              Hashtbl.replace t.stash d.seq d;
            drain ()
        | Some (Message.Token _ | Message.Join _ | Message.Commit _) ->
            drain ()
      in
      drain ();
      List.iter
        (fun entry -> Queue.push entry t.client_pending)
        (Engine.drain_pending engine)
  | Gather _ | Commit_wait _ | Recover _ -> ());
  let g =
    {
      proc_set = [ t.me ];
      fail_set = [];
      joins = Hashtbl.create 8;
      heard = Hashtbl.create 8;
      agreed = false;
      settled = false;
    }
  in
  Hashtbl.replace g.joins t.me (my_join t g);
  t.phase <- Gather g;
  trace_phase t;
  Log.debug (fun m -> m "pid %d entering gather (join_seq %d)" t.me t.join_seq);
  [
    multicast_join t g;
    Participant.Arm_timer
      (Memb_timer (Join_retransmit, t.memb_gen), t.params.join_retransmit_ns);
    Participant.Arm_timer
      (Memb_timer (Consensus_timeout, t.memb_gen), t.params.consensus_timeout_ns);
  ]

(* ------------------------------------------------------------------ *)
(* Formation helpers                                                   *)

and members_of g = set_diff g.proc_set g.fail_set

and consensus_reached t g =
  let members = members_of g in
  List.for_all
    (fun p ->
      match Hashtbl.find_opt g.joins p with
      | Some (j : Message.join) ->
          set_equal j.proc_set g.proc_set && set_equal j.fail_set g.fail_set
      | None -> false)
    members
  && List.length members > 1
  && set_mem t.me members

(* My slot of the commit token: what I know about my old configuration. *)
and my_member_info t : Message.member_info =
  let stash_high = Hashtbl.fold (fun seq _ acc -> max seq acc) t.stash 0 in
  match t.old_node with
  | Some node ->
      let e = Node.engine node in
      {
        m_pid = t.me;
        m_old_ring = t.old_ring;
        m_aru = Engine.local_aru e;
        m_high_seq = max (Engine.high_seq e) stash_high;
        m_high_delivered = Engine.delivered_upto e;
      }
  | None ->
      {
        m_pid = t.me;
        m_old_ring = t.old_ring;
        m_aru = 0;
        m_high_seq = stash_high;
        m_high_delivered = 0;
      }

and successor_in order me =
  let n = Array.length order in
  let rec find i = if order.(i) = me then order.((i + 1) mod n) else find (i + 1) in
  find 0

(* The representative proposes the ring and launches commit pass 1. *)
and propose t g =
  let members = members_of g in
  let order = Array.of_list members in
  t.highest_ring_seq <- t.highest_ring_seq + 1;
  let new_ring : Types.ring_id = { rep = t.me; ring_seq = t.highest_ring_seq } in
  let placeholder p : Message.member_info =
    {
      m_pid = p;
      m_old_ring = { rep = p; ring_seq = 0 };
      m_aru = 0;
      m_high_seq = 0;
      m_high_delivered = 0;
    }
  in
  let memb =
    List.map (fun p -> if p = t.me then my_member_info t else placeholder p) members
  in
  let commit : Message.commit =
    { c_ring = new_ring; c_token_id = 0; c_pass = 1; c_memb = memb; c_holds = [] }
  in
  t.memb_gen <- t.memb_gen + 1;
  t.phase <- Commit_wait { cp_ring = new_ring; cp_order = order };
  trace_phase t;
  Log.debug (fun m ->
      m "pid %d proposing %a with %d members" t.me Types.pp_ring_id new_ring
        (List.length members));
  [
    Participant.Unicast (successor_in order t.me, Message.Commit commit);
    Participant.Arm_timer
      (Memb_timer (Formation_timeout, t.memb_gen), t.params.consensus_timeout_ns);
  ]

(* Consensus check, run after every join and on the consensus timeout. *)
and check_consensus t g =
  if (not g.agreed) && g.settled && consensus_reached t g then begin
    g.agreed <- true;
    let members = members_of g in
    if List.hd members = t.me then propose t g
    else
      (* Wait for the representative's commit token. The still-armed
         consensus timer doubles as the escape hatch: if it fires while we
         are agreed but uncommitted, we re-gather. *)
      []
  end
  else []

(* ------------------------------------------------------------------ *)
(* Joins                                                               *)

and stale_join t (j : Message.join) =
  match Hashtbl.find_opt t.seen_join_seq j.j_pid with
  | Some seen -> j.join_seq < seen
  | None -> false

and note_join t (j : Message.join) =
  Hashtbl.replace t.seen_join_seq j.j_pid
    (max j.join_seq
       (Option.value ~default:0 (Hashtbl.find_opt t.seen_join_seq j.j_pid)))

and handle_join t (j : Message.join) =
  if stale_join t j || set_mem t.me j.fail_set then []
  else begin
    note_join t j;
    match t.phase with
    | Operational node ->
        let engine = Node.engine node in
        let members = Array.to_list (Engine.ring engine) in
        let probe_from_own_ring =
          set_mem j.j_pid members && set_equal j.proc_set members
        in
        if probe_from_own_ring then []
        else begin
          let actions = enter_gather t in
          actions @ handle_join t j
        end
    | Gather g ->
        Hashtbl.replace g.joins j.j_pid j;
        Hashtbl.replace g.heard j.j_pid ();
        let proc' = set_union g.proc_set (j.j_pid :: j.proc_set) in
        let fail' = set_diff (set_union g.fail_set j.fail_set) [ t.me ] in
        let changed =
          (not (set_equal proc' g.proc_set)) || not (set_equal fail' g.fail_set)
        in
        g.proc_set <- proc';
        g.fail_set <- fail';
        if changed then begin
          g.agreed <- false;
          Hashtbl.replace g.joins t.me (my_join t g);
          multicast_join t g :: check_consensus t g
        end
        else check_consensus t g
    | Commit_wait _ | Recover _ ->
        (* Formation in progress; late joiners keep retransmitting and are
           merged right after installation. *)
        []
  end

(* ------------------------------------------------------------------ *)
(* Installation (EVS delivery)                                         *)

and install t (r : recover) =
  let members = Array.to_list r.r_order in
  let transitional : Participant.view =
    { view_id = r.r_ring; members = r.r_survivors; transitional = true }
  in
  let regular : Participant.view =
    { view_id = r.r_ring; members; transitional = false }
  in
  (* Old-ring messages recovered by the exchange, beyond what was already
     delivered, in sequence order. After a complete exchange all survivors
     hold the same set, so every survivor delivers the same sequence. *)
  let old_deliveries =
    Hashtbl.fold (fun seq d acc -> (seq, d) :: acc) r.r_exchange []
    |> List.filter (fun (seq, _) -> seq > t.old_delivered)
    |> List.sort compare
    |> List.map (fun (_, d) -> Participant.Deliver d)
  in
  List.iter (fun (mi : Message.member_info) ->
      Hashtbl.replace t.known_rings mi.m_old_ring ())
    r.r_memb;
  Hashtbl.replace t.known_rings t.old_ring ();
  (* Installing must not wait for this node's own paced floods: carry the
     unfinished queue (and the exchange table, for answering late pass-5
     nacks) across the install so peers still recovering the old ring keep
     being served while this node is already operational. *)
  t.residual <-
    (if t.legacy_flood then None
     else
       Some
         {
           res_old_ring = t.old_ring;
           res_memb = r.r_memb;
           res_exchange = r.r_exchange;
           res_q = r.r_flood_q;
           res_queued = r.r_queued;
           res_nacked = r.r_nacked;
           res_burst_armed = not (Deque.is_empty r.r_flood_q);
         });
  t.old_node <- None;
  t.old_ring <- r.r_ring;
  t.old_delivered <- 0;
  Hashtbl.reset t.stash;
  t.highest_ring_seq <- max t.highest_ring_seq r.r_ring.ring_seq;
  t.node_epoch <- t.node_epoch + 1;
  t.memb_gen <- t.memb_gen + 1;
  t.installs <- t.installs + 1;
  t.last_view <- Some regular;
  let node =
    Node.create ~params:t.params ~ring_id:r.r_ring
      ~ring:r.r_order ~me:t.me ?controller:t.controller ()
  in
  t.phase <- Operational node;
  trace_phase t;
  (* Unsequenced client messages carry over into the new configuration. *)
  let rec resubmit () =
    match Queue.take_opt t.client_pending with
    | None -> ()
    | Some (service, payload) ->
        Node.submit node service payload;
        resubmit ()
  in
  resubmit ();
  Log.info (fun m ->
      m "pid %d installed %a (%d members, %d survivors)" t.me Types.pp_ring_id
        r.r_ring (List.length members)
        (List.length r.r_survivors));
  let probe =
    if r.r_ring.rep = t.me then
      [
        Participant.Arm_timer
          (Memb_timer (Merge_probe, t.memb_gen), t.params.merge_probe_ns);
      ]
    else []
  in
  let residual_burst =
    match t.residual with
    | Some res when res.res_burst_armed ->
        [
          Participant.Arm_timer
            (Memb_timer (Flood_burst, t.memb_gen), 1);
        ]
    | _ -> []
  in
  Participant.Deliver_config transitional
  :: old_deliveries
  @ [ Participant.Deliver_config regular ]
  @ rewrap_node_actions t (Node.start node)
  @ probe @ residual_burst

(* A member alone at the consensus timeout installs a singleton ring
   without any commit/recover exchange. *)
and install_singleton t =
  t.highest_ring_seq <- t.highest_ring_seq + 1;
  let ring_id : Types.ring_id = { rep = t.me; ring_seq = t.highest_ring_seq } in
  let info = my_member_info t in
  let exchange = Hashtbl.create 16 in
  (match t.old_node with
  | Some node ->
      let e = Node.engine node in
      for seq = t.old_delivered + 1 to info.m_high_seq do
        match Engine.buffered_message e seq with
        | Some d -> Hashtbl.replace exchange seq d
        | None -> ()
      done
  | None -> ());
  Hashtbl.iter (fun seq d -> Hashtbl.replace exchange seq d) t.stash;
  install t
    {
      r_ring = ring_id;
      r_order = [| t.me |];
      r_memb = [ info ];
      r_survivors = [ t.me ];
      r_min_aru = info.m_aru;
      r_max_high = info.m_high_seq;
      r_exchange = exchange;
      r_flood_q = Deque.create ();
      r_queued = Hashtbl.create 1;
      r_nacked = Hashtbl.create 1;
      r_pos = 0;
      r_burst_armed = false;
      r_pending = None;
      r_rechecks = 0;
    }

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)

(* Entering recovery: stage everything we hold beyond our own delivery
   cursor — messages below the minimum aru are already received by every
   survivor but possibly still undelivered here, and must be delivered at
   installation too — and queue for flooding the exchange-range messages
   (above the minimum aru) this node is the designated holder of.

   The flood itself is deduplicated and paced: per sequence number exactly
   one survivor (the highest-pid holder, computed identically everywhere
   from the commit token's member infos) floods it, in bursts of
   [recovery_burst_msgs] spaced [recovery_burst_gap_ns] apart, with the
   first burst staggered by ring position. The pre-overhaul behavior —
   every survivor floods everything at once, overflowing a small switch
   buffer on every formation attempt — survives behind [legacy_flood]. *)
and enter_recover t (c : Message.commit) order =
  let survivors, min_aru, max_high =
    List.fold_left
      (fun (survivors, min_aru, max_high) (mi : Message.member_info) ->
        if Types.ring_id_equal mi.m_old_ring t.old_ring then
          (mi.m_pid :: survivors, min min_aru mi.m_aru, max max_high mi.m_high_seq)
        else (survivors, min_aru, max_high))
      ([], max_int, 0) c.c_memb
  in
  let survivors = set_of survivors in
  let exchange = Hashtbl.create 64 in
  let flood_q = Deque.create () in
  let queued_tbl = Hashtbl.create 16 in
  let held seq =
    match Hashtbl.find_opt t.stash seq with
    | Some d -> Some d
    | None -> (
        match t.old_node with
        | Some node -> Engine.buffered_message (Node.engine node) seq
        | None -> None)
  in
  let floods = ref [] in
  let held_in_range = ref 0 in
  let queued = ref 0 in
  (* Stage from the lower of (what we still need to deliver) and (what a
     lagging survivor may be missing): a survivor that already delivered a
     message must still hold it for peers below the minimum aru line. *)
  let lo = min t.old_delivered min_aru in
  if max_high > 0 then
    for seq = max_high downto lo + 1 do
      match held seq with
      | Some d ->
          Hashtbl.replace exchange seq d;
          if seq > min_aru then begin
            incr held_in_range;
            if t.legacy_flood then
              floods := Participant.Multicast (Message.Data d) :: !floods
            else if
              Recovery.designated ~infos:c.c_memb ~old_ring:t.old_ring seq
              = Some t.me
            then begin
              (* Descending loop + push_front = ascending flood order. *)
              Deque.push_front flood_q seq;
              Hashtbl.replace queued_tbl seq ();
              incr queued
            end
          end
      | None -> ()
    done;
  let pos =
    let rec idx i = function
      | [] -> 0
      | p :: _ when p = t.me -> i
      | _ :: tl -> idx (i + 1) tl
    in
    idx 0 survivors
  in
  let r =
    {
      r_ring = c.c_ring;
      r_order = order;
      r_memb = c.c_memb;
      r_survivors = survivors;
      r_min_aru = min_aru;
      r_max_high = max_high;
      r_exchange = exchange;
      r_flood_q = flood_q;
      r_queued = queued_tbl;
      r_nacked = Hashtbl.create 16;
      r_pos = pos;
      r_burst_armed = false;
      r_pending = None;
      r_rechecks = 0;
    }
  in
  t.memb_gen <- t.memb_gen + 1;
  t.phase <- Recover r;
  trace_phase t;
  let actions =
    if t.legacy_flood then begin
      let n_flood = List.length !floods in
      Flight.record ~node:t.me ~code:Flight.ev_flood ~a:n_flood ~b:min_aru
        ~c:max_high ~d:0;
      Health.note_flood ~node:t.me ~count:n_flood;
      !floods
    end
    else begin
      Flight.record ~node:t.me ~code:Flight.ev_flood ~a:!queued ~b:min_aru
        ~c:max_high ~d:0;
      Flight.record ~node:t.me ~code:Flight.ev_dedup ~a:!held_in_range
        ~b:!queued ~c:(!held_in_range - !queued) ~d:pos;
      Health.note_dedup ~node:t.me ~saved:(!held_in_range - !queued);
      if Deque.is_empty flood_q then []
      else begin
        r.r_burst_armed <- true;
        [
          Participant.Arm_timer
            (Memb_timer (Flood_burst, t.memb_gen),
             1 + (pos * (t.params.recovery_burst_gap_ns / 4)));
        ]
      end
    end
  in
  ( r,
    actions
    @ [
        Participant.Arm_timer
          (Memb_timer (Formation_timeout, t.memb_gen), t.params.consensus_timeout_ns);
      ] )

(* ------------------------------------------------------------------ *)
(* Commit token                                                        *)

(* Retransmission requests ride the commit channel as a sentinel pass 5
   (the pass field is a full integer on the wire, so no codec change):
   [c_memb] identifies the requester, [c_holds] carries its missing
   sequence numbers as compacted [lo;hi;...] ranges for its old ring.
   Each survivor counts how many nacks have named each seqno and answers
   as the k-th candidate holder for the k-th nack — exactly one resender
   per request when views agree, rotating past crashed donors. *)
and handle_nack t (c : Message.commit) =
  match t.phase with
  | Recover r when Types.ring_id_equal r.r_ring c.c_ring -> (
      match c.c_memb with
      | [ requester ]
        when requester.m_pid <> t.me
             && Types.ring_id_equal requester.m_old_ring t.old_ring ->
          let seqs =
            List.concat_map
              (fun (ring, encoded) ->
                if Types.ring_id_equal ring t.old_ring then
                  Recovery.expand (Recovery.decode_ranges encoded)
                else [])
              c.c_holds
          in
          let queued = ref 0 in
          List.iter
            (fun seq ->
              let k =
                1 + Option.value ~default:0 (Hashtbl.find_opt r.r_nacked seq)
              in
              Hashtbl.replace r.r_nacked seq k;
              (* First nack: only the k-th candidate answers (covers a
                 dropped flood without duplication). Repeated nacks mean
                 the info-based election keeps pointing at nodes that
                 discarded the message as stable — every actual holder
                 answers, trading a few duplicates for a bounded number
                 of rounds. *)
              if
                (not t.legacy_flood)
                && Hashtbl.mem r.r_exchange seq
                && (not (Hashtbl.mem r.r_queued seq))
                && (k >= 2
                   || Recovery.designated_nth ~infos:r.r_memb
                        ~old_ring:t.old_ring ~nth:(k - 1) seq
                      = Some t.me)
              then begin
                Deque.push_back r.r_flood_q seq;
                Hashtbl.replace r.r_queued seq ();
                incr queued
              end)
            seqs;
          if !queued = 0 then []
          else begin
            Flight.record ~node:t.me ~code:Flight.ev_resend ~a:!queued
              ~b:(List.length seqs) ~c:0 ~d:0;
            Health.note_resend ~node:t.me ~count:!queued;
            if r.r_burst_armed then []
            else begin
              (* Resends skip the position stagger: the requester has
                 already waited out a recheck interval. *)
              r.r_burst_armed <- true;
              [ Participant.Arm_timer (Memb_timer (Flood_burst, t.memb_gen), 1) ]
            end
          end
      | _ -> [])
  | Operational _ -> (
      (* Already installed, but the last exchange survives as residual
         state: keep answering nacks for the old ring so a straggling
         peer can finish without forcing a re-gather. *)
      match (t.residual, c.c_memb) with
      | Some res, [ requester ]
        when requester.m_pid <> t.me
             && Types.ring_id_equal requester.m_old_ring res.res_old_ring ->
          let seqs =
            List.concat_map
              (fun (ring, encoded) ->
                if Types.ring_id_equal ring res.res_old_ring then
                  Recovery.expand (Recovery.decode_ranges encoded)
                else [])
              c.c_holds
          in
          let queued = ref 0 in
          List.iter
            (fun seq ->
              let k =
                1
                + Option.value ~default:0 (Hashtbl.find_opt res.res_nacked seq)
              in
              Hashtbl.replace res.res_nacked seq k;
              if
                Hashtbl.mem res.res_exchange seq
                && (not (Hashtbl.mem res.res_queued seq))
                && (k >= 2
                   || Recovery.designated_nth ~infos:res.res_memb
                        ~old_ring:res.res_old_ring ~nth:(k - 1) seq
                      = Some t.me)
              then begin
                Deque.push_back res.res_q seq;
                Hashtbl.replace res.res_queued seq ();
                incr queued
              end)
            seqs;
          if !queued = 0 then []
          else begin
            Flight.record ~node:t.me ~code:Flight.ev_resend ~a:!queued
              ~b:(List.length seqs) ~c:0 ~d:0;
            Health.note_resend ~node:t.me ~count:!queued;
            if res.res_burst_armed then []
            else begin
              res.res_burst_armed <- true;
              [ Participant.Arm_timer (Memb_timer (Flood_burst, t.memb_gen), 1) ]
            end
          end
      | _ -> [])
  | Gather _ | Commit_wait _ | Recover _ ->
      (* Not recovering the requester's ring (or our own nack echoed
         back): the formation-timeout re-gather is the backstop. *)
      []

and handle_commit t (c : Message.commit) =
  if c.c_pass = 5 then handle_nack t c
  else begin
  let memb_pids = List.map (fun (mi : Message.member_info) -> mi.m_pid) c.c_memb in
  if not (set_mem t.me memb_pids) then []
  else begin
    t.highest_ring_seq <- max t.highest_ring_seq c.c_ring.ring_seq;
    let order = Array.of_list memb_pids in
    let forward ?(holds = c.c_holds) pass memb =
      Participant.Unicast
        (successor_in order t.me,
         Message.Commit
           {
             c with
             c_token_id = c.c_token_id + 1;
             c_pass = pass;
             c_memb = memb;
             c_holds = holds;
           })
    in
    (* Merge the exchange-range sequence numbers we hold into the pass-3
       accumulator for our old ring. *)
    let merged_holds (r : recover) =
      let mine =
        Hashtbl.fold (fun seq _ acc -> seq :: acc) r.r_exchange []
      in
      let rec update = function
        | [] -> [ (t.old_ring, List.sort_uniq compare mine) ]
        | (ring, seqs) :: rest ->
            if Types.ring_id_equal ring t.old_ring then
              (ring, List.sort_uniq compare (mine @ seqs)) :: rest
            else (ring, seqs) :: update rest
      in
      update c.c_holds
    in
    let i_am_rep = c.c_ring.rep = t.me in
    match (c.c_pass, t.phase) with
    | 1, Commit_wait cp when i_am_rep && Types.ring_id_equal cp.cp_ring c.c_ring ->
        (* Pass 1 returned: everyone filled their slot; spread the full
           picture (pass 2) and enter recovery ourselves. *)
        let r, actions = enter_recover t c order in
        ignore r;
        forward 2 c.c_memb :: actions
    | 1, Gather _ ->
        (* Fill my slot and pass it on. *)
        let memb =
          List.map
            (fun (mi : Message.member_info) ->
              if mi.m_pid = t.me then my_member_info t else mi)
            c.c_memb
        in
        t.memb_gen <- t.memb_gen + 1;
        t.phase <- Commit_wait { cp_ring = c.c_ring; cp_order = order };
        trace_phase t;
        [
          forward 1 memb;
          Participant.Arm_timer
            (Memb_timer (Formation_timeout, t.memb_gen), t.params.consensus_timeout_ns);
        ]
    | 2, Commit_wait cp when Types.ring_id_equal cp.cp_ring c.c_ring ->
        if i_am_rep then
          (* Our own pass 2 returned before we entered recovery; recover
             now and launch pass 3 (exchange barrier) with our holds. *)
          let r, actions = enter_recover t c order in
          (forward ~holds:(merged_holds r) 3 c.c_memb :: actions)
        else begin
          let _, actions = enter_recover t c order in
          forward 2 c.c_memb :: actions
        end
    | 2, Recover r when i_am_rep && Types.ring_id_equal r.r_ring c.c_ring ->
        [ forward ~holds:(merged_holds r) 3 c.c_memb ]
    | 3, Recover r when Types.ring_id_equal r.r_ring c.c_ring ->
        if i_am_rep then
          (* Pass 3 returned with the union of held messages: every member
             flooded. Pass 4 verifies completeness and installs. *)
          [ forward 4 c.c_memb ]
        else [ forward ~holds:(merged_holds r) 3 c.c_memb ]
    | 4, Recover r when Types.ring_id_equal r.r_ring c.c_ring ->
        if missing_from_exchange t r c.c_holds = [] then
          (* Complete. Install immediately even if our own flood queue is
             still draining — the queue survives the install as [residual]
             work, so peers still recovering are served while the new
             ring's token starts rotating. Holding pass 4 here instead
             would stall the already-installed members past token loss. *)
          if i_am_rep then install t r
          else forward 4 c.c_memb :: install t r
        else begin
          (* Some advertised messages have not arrived (floods still in
             flight, or lost). Hold the commit token and re-check shortly;
             the recheck requests retransmission of whatever is still
             missing, and gives up into a re-gather only after repeated
             nacks go unanswered. *)
          r.r_pending <- Some c;
          [
            Participant.Arm_timer
              (Memb_timer (Exchange_recheck, t.memb_gen),
               t.params.token_retransmit_ns);
          ]
        end
    | _ ->
        (* Stale or duplicate commit traffic. *)
        []
  end
  end

(* ------------------------------------------------------------------ *)
(* Data and token routing                                              *)

and handle_data t (d : Message.data) =
  match t.phase with
  | Operational node ->
      let engine = Node.engine node in
      if Types.ring_id_equal d.d_ring (Engine.ring_id engine) then
        rewrap_node_actions t (Node.process node (Message.Data d))
      else if Hashtbl.mem t.known_rings d.d_ring then []
      else
        (* Traffic from an unknown configuration: a merge candidate. *)
        enter_gather t
  | Gather _ | Commit_wait _ ->
      if Types.ring_id_equal d.d_ring t.old_ring then
        Hashtbl.replace t.stash d.seq d;
      []
  | Recover r ->
      if
        Types.ring_id_equal d.d_ring t.old_ring
        && d.seq > r.r_min_aru
        && d.seq <= r.r_max_high
      then begin
        Hashtbl.replace r.r_exchange d.seq d;
        (* If this arrival completes a held pass-4 verification, install
           now instead of waiting out the next recheck tick — every
           millisecond the token is held brings the already-installed
           members closer to declaring token loss. *)
        match r.r_pending with
        | Some c when missing_from_exchange t r c.c_holds = [] ->
            r.r_pending <- None;
            handle_commit t c
        | Some _ | None -> []
      end
      else []

and handle_token t (tok : Message.token) =
  match t.phase with
  | Operational node ->
      let engine = Node.engine node in
      if Types.ring_id_equal tok.t_ring (Engine.ring_id engine) then
        rewrap_node_actions t (Node.process node (Message.Token tok))
      else []
  | Gather _ | Commit_wait _ | Recover _ -> []

(* ------------------------------------------------------------------ *)
(* Timers                                                              *)

(* Send one paced flood burst from a queue (in-recovery or residual):
   up to [recovery_burst_msgs] messages, re-arming the timer while work
   remains. The same timer kind serves both phases; [set_armed] records
   quiescence so the next nack can re-arm. *)
let drain_burst t ~q ~queued ~exchange ~set_armed =
  let burst = ref [] in
  let sent = ref 0 in
  while !sent < t.params.recovery_burst_msgs && not (Deque.is_empty q) do
    match Deque.pop_front q with
    | None -> ()
    | Some seq -> (
        Hashtbl.remove queued seq;
        match Hashtbl.find_opt exchange seq with
        | Some d ->
            burst := Participant.Multicast (Message.Data d) :: !burst;
            incr sent
        | None -> ())
  done;
  let remaining = Deque.length q in
  Flight.record ~node:t.me ~code:Flight.ev_burst ~a:!sent ~b:remaining ~c:0
    ~d:0;
  Health.note_burst ~node:t.me;
  Health.note_flood ~node:t.me ~count:!sent;
  let follow =
    if remaining > 0 then
      [
        Participant.Arm_timer
          (Memb_timer (Flood_burst, t.memb_gen), t.params.recovery_burst_gap_ns);
      ]
    else begin
      set_armed false;
      []
    end
  in
  List.rev !burst @ follow

let fire_memb_timer t kind gen =
  if gen <> t.memb_gen then []
  else
    match (kind, t.phase) with
    | Join_retransmit, Gather g ->
        g.settled <- true;
        multicast_join t g
        :: Participant.Arm_timer
             (Memb_timer (Join_retransmit, t.memb_gen), t.params.join_retransmit_ns)
        :: check_consensus t g
    | Consensus_timeout, Gather g ->
        g.settled <- true;
        let members = members_of g in
        if members = [ t.me ] then install_singleton t
        else if g.agreed then
          (* Agreed but the representative's commit token never came. *)
          enter_gather t
        else begin
          (* Declare silent processes failed and keep gathering. A live
             process re-joins at least once per consensus interval
             (validate enforces join_retransmit < consensus_timeout), so
             "no join since the previous timeout" is the failure signal —
             a stale pre-crash entry in [g.joins] grants no immunity. *)
          let silent =
            List.filter
              (fun p ->
                p <> t.me
                && (not (set_mem p g.fail_set))
                && not (Hashtbl.mem g.heard p))
              g.proc_set
          in
          Hashtbl.reset g.heard;
          let actions =
            if silent <> [] then begin
              g.fail_set <- set_diff (set_union g.fail_set silent) [ t.me ];
              g.agreed <- false;
              Hashtbl.replace g.joins t.me (my_join t g);
              multicast_join t g :: check_consensus t g
            end
            else check_consensus t g
          in
          actions
          @ [
              Participant.Arm_timer
                (Memb_timer (Consensus_timeout, t.memb_gen),
                 t.params.consensus_timeout_ns);
            ]
        end
    | Formation_timeout, (Gather _ | Commit_wait _ | Recover _) ->
        (* The commit token or the exchange stalled: start over. *)
        enter_gather t
    | Exchange_recheck, Recover r -> (
        match r.r_pending with
        | None -> []
        | Some c ->
            if t.legacy_flood then begin
              (* Pre-overhaul recheck: verify-only. A lost flood is never
                 re-sent; five fruitless rechecks force a full re-gather
                 and the whole exchange starts over. *)
              r.r_pending <- None;
              r.r_rechecks <- r.r_rechecks + 1;
              Flight.record ~node:t.me ~code:Flight.ev_recheck ~a:r.r_rechecks
                ~b:t.memb_gen ~c:0 ~d:0;
              Health.note_recheck ~node:t.me;
              if r.r_rechecks > 5 then begin
                Flight.record ~node:t.me ~code:Flight.ev_recheck_giveup
                  ~a:r.r_rechecks ~b:t.memb_gen ~c:0 ~d:0;
                Health.note_recheck_giveup ~node:t.me;
                enter_gather t
              end
              else handle_commit t c
            end
            else begin
              let missing = missing_from_exchange t r c.c_holds in
              if missing = [] then begin
                (* Only our own flood queue was in the way (or the last
                   resends just landed): re-run the pass-4 decision. *)
                r.r_pending <- None;
                handle_commit t c
              end
              else begin
                r.r_rechecks <- r.r_rechecks + 1;
                Flight.record ~node:t.me ~code:Flight.ev_recheck
                  ~a:r.r_rechecks ~b:t.memb_gen ~c:0 ~d:0;
                Health.note_recheck ~node:t.me;
                if r.r_rechecks > 5 then begin
                  (* Repeated nacks went unanswered: every candidate
                     holder is gone or partitioned away. This formation
                     attempt cannot install consistently. *)
                  Flight.record ~node:t.me ~code:Flight.ev_recheck_giveup
                    ~a:r.r_rechecks ~b:t.memb_gen ~c:0 ~d:0;
                  Health.note_recheck_giveup ~node:t.me;
                  enter_gather t
                end
                else begin
                  (* Keep holding the pass-4 token and ask the designated
                     holders to re-send what is still missing, as
                     compacted ranges on the commit channel (pass 5). *)
                  let ranges = Recovery.compact missing in
                  Flight.record ~node:t.me ~code:Flight.ev_nack
                    ~a:(List.length missing) ~b:(List.length ranges)
                    ~c:r.r_rechecks ~d:0;
                  Health.note_resend_req ~node:t.me;
                  let nack : Message.commit =
                    {
                      c_ring = r.r_ring;
                      c_token_id = 0;
                      c_pass = 5;
                      c_memb = [ my_member_info t ];
                      c_holds = [ (t.old_ring, Recovery.encode_ranges ranges) ];
                    }
                  in
                  [
                    Participant.Multicast (Message.Commit nack);
                    Participant.Arm_timer
                      (Memb_timer (Exchange_recheck, t.memb_gen),
                       t.params.token_retransmit_ns);
                  ]
                end
              end
            end)
    | Flood_burst, Recover r ->
        drain_burst t ~q:r.r_flood_q ~queued:r.r_queued ~exchange:r.r_exchange
          ~set_armed:(fun armed -> r.r_burst_armed <- armed)
    | Flood_burst, Operational _ -> (
        (* Residual floods: finish serving the old ring's exchange after
           installing, for peers still recovering it. *)
        match t.residual with
        | Some res ->
            drain_burst t ~q:res.res_q ~queued:res.res_queued
              ~exchange:res.res_exchange
              ~set_armed:(fun armed -> res.res_burst_armed <- armed)
        | None -> [])
    | Exchange_recheck, (Operational _ | Gather _ | Commit_wait _)
    | Flood_burst, (Gather _ | Commit_wait _) ->
        []
    | Merge_probe, Operational node ->
        let engine = Node.engine node in
        let members = Array.to_list (Engine.ring engine) in
        let probe : Message.join =
          { j_pid = t.me; proc_set = members; fail_set = []; join_seq = t.join_seq }
        in
        [
          Participant.Multicast (Message.Join probe);
          Participant.Arm_timer
            (Memb_timer (Merge_probe, t.memb_gen), t.params.merge_probe_ns);
        ]
    | (Join_retransmit | Consensus_timeout), (Operational _ | Commit_wait _ | Recover _)
    | Formation_timeout, Operational _
    | Merge_probe, (Gather _ | Commit_wait _ | Recover _) ->
        []

let fire_timer t timer =
  match timer with
  | Memb_timer (kind, gen) -> fire_memb_timer t kind gen
  | Epoch_timer (epoch, inner) -> (
      if epoch <> t.node_epoch then []
      else
        match t.phase with
        | Operational node -> rewrap_node_actions t (Node.fire_timer node inner)
        | Gather _ | Commit_wait _ | Recover _ -> [])
  | _ -> []

(* ------------------------------------------------------------------ *)
(* Participant interface                                               *)

let submit t service payload =
  match t.phase with
  | Operational node -> Node.submit node service payload
  | Gather _ | Commit_wait _ | Recover _ ->
      Queue.push (service, payload) t.client_pending

let receive t msg =
  match t.phase with
  | Operational node -> (
      match msg with
      | Message.Data _ | Message.Token _ -> Node.receive node msg
      | Message.Join _ | Message.Commit _ ->
          Deque.push_back t.inbox msg;
          `Queued)
  | Gather _ | Commit_wait _ | Recover _ ->
      Deque.push_back t.inbox msg;
      `Queued

let has_work t =
  (not (Deque.is_empty t.inbox))
  || match t.phase with Operational node -> Node.has_work node | _ -> false

let take_next t =
  (* Membership traffic first: it is rare and must never starve behind a
     data backlog. *)
  match Deque.pop_front t.inbox with
  | Some msg -> Some msg
  | None -> (
      match t.phase with
      | Operational node -> Node.take_next node
      | Gather _ | Commit_wait _ | Recover _ -> None)

let process t msg =
  match msg with
  | Message.Data d -> handle_data t d
  | Message.Token tok -> handle_token t tok
  | Message.Join j -> handle_join t j
  | Message.Commit c -> handle_commit t c

let start t =
  match t.initial_ring with
  | Some ring ->
      let ring_id : Types.ring_id = { rep = ring.(0); ring_seq = 1 } in
      t.highest_ring_seq <- 1;
      let node =
        Node.create ~params:t.params ~ring_id ~ring ~me:t.me
          ?controller:t.controller ()
      in
      let view : Participant.view =
        { view_id = ring_id; members = Array.to_list ring; transitional = false }
      in
      t.last_view <- Some view;
      t.old_ring <- ring_id;
      t.installs <- 1;
      t.phase <- Operational node;
      trace_phase t;
      let probe =
        if ring.(0) = t.me then
          [
            Participant.Arm_timer
              (Memb_timer (Merge_probe, t.memb_gen), t.params.merge_probe_ns);
          ]
        else []
      in
      (Participant.Deliver_config view :: rewrap_node_actions t (Node.start node))
      @ probe
  | None -> enter_gather t

let participant t : Participant.t =
  {
    pid = t.me;
    submit = (fun service payload -> submit t service payload);
    receive = (fun msg -> receive t msg);
    has_work = (fun () -> has_work t);
    take_next = (fun () -> take_next t);
    process = (fun msg -> process t msg);
    fire_timer = (fun timer -> fire_timer t timer);
    start = (fun () -> start t);
  }
