open Aring_wire
module Trace = Aring_obs.Trace
module Metrics = Aring_obs.Metrics
module Flight = Aring_obs.Flight
module Span = Aring_obs.Span
module Health = Aring_obs.Health

type timer_kind = Token_retransmit | Token_loss

type input =
  | Token_received of Message.token
  | Data_received of Message.data
  | Submit of Types.service * bytes
  | Timer_expired of timer_kind * int

type output =
  | Send_token of Types.pid * Message.token
  | Send_data of Message.data
  | Deliver of Message.data
  | Set_timer of timer_kind * int * int
  | Token_lost

type stats = {
  mutable rounds : int;
  mutable new_sent : int;
  mutable retrans_sent : int;
  mutable rtr_requested : int;
  mutable delivered : int;
  mutable dup_tokens : int;
  mutable dup_data : int;
  mutable token_retransmits : int;
}

(* Retransmission requests added to the token per round are capped so the
   token stays within a single datagram even after catastrophic loss. *)
let max_rtr_per_round = 512

(* What one token rotation looked like from this node, captured for
   adaptive-window controllers. Purely observational: nothing in the
   engine reads it back. *)
(* A queued client submission. The submit stamp is 0 unless a latency
   span collector is attached at submission time. *)
type pending = {
  p_service : Types.service;
  p_payload : bytes;
  p_submit_ns : int;
}

type round_signals = {
  sr_round : Types.round;
  sr_fcc : int;  (* fcc carried by the incoming token *)
  sr_retrans : int;  (* retransmissions served + newly requested *)
  sr_backlog : int;  (* pending submissions waiting when the token arrived *)
  sr_allowed_new : int;  (* new messages flow control admitted (= sent) *)
}

type t = {
  params : Params.t;
  ring_id : Types.ring_id;
  ring : Types.pid array;
  me : Types.pid;
  my_pos : int;
  buffer : (Types.seqno, Message.data) Hashtbl.t;
  pending : pending Queue.t;
  mutable round : Types.round;
  mutable last_token_id : int;
  mutable local_aru : Types.seqno;
  mutable delivered : Types.seqno;
  mutable safe_line : Types.seqno;
  mutable discard_floor : Types.seqno;
  mutable high_seq : Types.seqno;
  mutable last_sent_aru : Types.seqno;
  mutable prev_sent_aru : Types.seqno;
  mutable prev_recv_seq : Types.seqno;
  mutable last_round_sent : int;
  mutable saved_token : Message.token option;
  mutable progress_gen : int;
  mutable loss_gen : int;
  mutable retransmit_count : int;
  (* Node-local accelerated window for the next round. Seeded from
     [params] and adjustable between rounds (adaptive control): it only
     decides how many admitted messages precede the token, so changing
     it never affects flow control or any ring-wide agreement. *)
  mutable accelerated_window : int;
  mutable last_signals : round_signals option;
  stats : stats;
}

let position ring pid =
  let rec loop i =
    if i >= Array.length ring then None
    else if ring.(i) = pid then Some i
    else loop (i + 1)
  in
  loop 0

let create ~params ~ring_id ~ring ~me =
  (match Params.validate params with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Engine.create: " ^ msg));
  let my_pos =
    match position ring me with
    | Some i -> i
    | None -> invalid_arg "Engine.create: me not in ring"
  in
  {
    params;
    ring_id;
    ring = Array.copy ring;
    me;
    my_pos;
    buffer = Hashtbl.create 1024;
    pending = Queue.create ();
    round = 0;
    last_token_id = -1;
    local_aru = 0;
    delivered = 0;
    safe_line = 0;
    discard_floor = 0;
    high_seq = 0;
    last_sent_aru = 0;
    prev_sent_aru = 0;
    prev_recv_seq = 0;
    last_round_sent = 0;
    saved_token = None;
    progress_gen = 0;
    loss_gen = 0;
    retransmit_count = 0;
    accelerated_window = params.accelerated_window;
    last_signals = None;
    stats =
      {
        rounds = 0;
        new_sent = 0;
        retrans_sent = 0;
        rtr_requested = 0;
        delivered = 0;
        dup_tokens = 0;
        dup_data = 0;
        token_retransmits = 0;
      };
  }

let initial_token ring_id : Message.token =
  {
    t_ring = ring_id;
    token_id = 0;
    t_round = 0;
    t_seq = 0;
    aru = 0;
    aru_id = None;
    fcc = 0;
    rtr = [];
  }

let me t = t.me
let ring_id t = t.ring_id
let ring t = Array.copy t.ring
let successor t = t.ring.((t.my_pos + 1) mod Array.length t.ring)

let predecessor t =
  let n = Array.length t.ring in
  t.ring.((t.my_pos - 1 + n) mod n)

let round t = t.round
let local_aru t = t.local_aru
let delivered_upto t = t.delivered
let safe_line t = t.safe_line
let high_seq t = t.high_seq
let pending_count t = Queue.length t.pending
let buffered_count t = Hashtbl.length t.buffer
let stats t = t.stats
let buffered_message t seq = Hashtbl.find_opt t.buffer seq
let accelerated_window t = t.accelerated_window

(* Clamp to the personal window: more than personal_window post-token
   sends is meaningless (flow control never admits that many), and a
   negative window is just 0. *)
let set_accelerated_window t w =
  t.accelerated_window <- max 0 (min t.params.personal_window w)

let last_round_signals t = t.last_signals

let undelivered_after_cursor t =
  Hashtbl.fold
    (fun seq d acc -> if seq > t.delivered then d :: acc else acc)
    t.buffer []
  |> List.sort (fun (a : Message.data) b -> compare a.seq b.seq)

let advance_local_aru t =
  while Hashtbl.mem t.buffer (t.local_aru + 1) do
    t.local_aru <- t.local_aru + 1
  done

(* Deliver every message the cursor can reach: in sequence order, stopping
   at a gap or at an undelivered Safe message above the stability line.
   Agreed messages beyond an undelivered Safe message are thereby held back,
   preserving the total order. [deliver_ready_into] prepends the deliveries
   to [tail] so callers assembling an action list pay no extra append. *)
let deliver_ready_into t tail =
  let rec loop acc =
    let next = t.delivered + 1 in
    match Hashtbl.find_opt t.buffer next with
    | None -> List.rev_append acc tail
    | Some d ->
        if Types.service_requires_stability d.service && next > t.safe_line
        then List.rev_append acc tail
        else begin
          t.delivered <- next;
          t.stats.delivered <- t.stats.delivered + 1;
          Flight.record ~node:t.me ~code:Flight.ev_deliver ~a:next ~b:d.pid
            ~c:0 ~d:0;
          Span.note_delivered ~node:t.me ~sender:d.pid ~seq:next;
          Health.note_delivery ();
          loop (Deliver d :: acc)
        end
  in
  loop []

let deliver_ready t = deliver_ready_into t []

(* Garbage-collect messages that are both delivered locally and known
   received by every participant: they can never be requested again. *)
let collect_garbage t =
  let floor = min t.safe_line t.delivered in
  if floor > t.discard_floor then begin
    for seq = t.discard_floor + 1 to floor do
      Hashtbl.remove t.buffer seq
    done;
    t.discard_floor <- floor
  end

(* Progress evidence: data initiated in a later round, or in the current
   round by a participant downstream of us, proves the token we forwarded
   was received — it cancels our retransmission responsibility. *)
let is_progress_evidence t (d : Message.data) =
  d.d_round > t.round
  || d.d_round = t.round
     &&
     match position t.ring d.pid with
     | Some pos -> pos > t.my_pos
     | None -> false

let handle_data t (d : Message.data) =
  if is_progress_evidence t d then t.progress_gen <- t.progress_gen + 1;
  let dup = d.seq <= t.discard_floor || Hashtbl.mem t.buffer d.seq in
  Flight.record ~node:t.me ~code:Flight.ev_data_recv ~a:d.seq ~b:d.pid
    ~c:(if dup then 1 else 0) ~d:0;
  if Trace.enabled () then
    Trace.emit ~node:t.me
      (Trace.Data_recv { ring = t.ring_id; seq = d.seq; sender = d.pid; dup });
  if dup then begin
    t.stats.dup_data <- t.stats.dup_data + 1;
    []
  end
  else begin
    Hashtbl.replace t.buffer d.seq d;
    if d.seq > t.high_seq then t.high_seq <- d.seq;
    advance_local_aru t;
    deliver_ready t
  end

(* Sequence numbers we have not received, in (local_aru, cap], that are not
   already requested on the token. [already] is ascending (the token's rtr
   invariant), so one lockstep cursor replaces the seed's O(n^2) List.mem
   probe per candidate. *)
let missing_requests t ~cap ~already =
  let rec loop seq budget already acc =
    if seq > cap || budget = 0 then List.rev acc
    else
      match already with
      | a :: rest when a < seq -> loop seq budget rest acc
      | a :: rest when a = seq -> loop (seq + 1) budget rest acc
      | _ ->
          if Hashtbl.mem t.buffer seq then loop (seq + 1) budget already acc
          else loop (seq + 1) (budget - 1) already (seq :: acc)
  in
  loop (t.local_aru + 1) max_rtr_per_round already []

(* Merge two ascending, disjoint seqno lists — equivalent to
   [List.sort compare (a @ b)] for such inputs, without the intermediate
   concatenation or the sort. *)
let rec merge_sorted a b =
  match (a, b) with
  | [], l | l, [] -> l
  | x :: xs, (y :: _ as yl) when x <= y -> x :: merge_sorted xs yl
  | xl, y :: ys -> y :: merge_sorted xl ys

let handle_token t (tok : Message.token) =
  if tok.token_id <= t.last_token_id then begin
    t.stats.dup_tokens <- t.stats.dup_tokens + 1;
    if Trace.enabled () then
      Trace.emit ~node:t.me (Trace.Token_dup { token_id = tok.token_id });
    []
  end
  else begin
    t.last_token_id <- tok.token_id;
    t.round <- t.round + 1;
    t.stats.rounds <- t.stats.rounds + 1;
    t.progress_gen <- t.progress_gen + 1;
    t.loss_gen <- t.loss_gen + 1;
    t.retransmit_count <- 0;
    Flight.record ~node:t.me ~code:Flight.ev_token_recv ~a:tok.token_id
      ~b:tok.t_seq ~c:tok.aru ~d:t.local_aru;
    if Trace.enabled () then
      Trace.emit ~node:t.me
        (Trace.Token_recv
           {
             ring = t.ring_id;
             token_id = tok.token_id;
             round = t.round;
             seq = tok.t_seq;
             aru = tok.aru;
             local_aru = t.local_aru;
             safe_line = t.safe_line;
           });
    (* 1. Answer retransmission requests we can serve (always pre-token).
       The same pass partitions the token's rtr into answered (counted,
       dropped) and kept (still missing here) — new messages this round all
       carry seqs above tok.t_seq, so nothing buffered later in the round
       can retroactively answer an rtr entry. *)
    let rec scan_rtr rtr rev_sends num kept_rev =
      match rtr with
      | [] -> (rev_sends, num, List.rev kept_rev)
      | seq :: rest -> (
          match Hashtbl.find_opt t.buffer seq with
          | Some d ->
              t.stats.retrans_sent <- t.stats.retrans_sent + 1;
              Flight.record ~node:t.me ~code:Flight.ev_data_send ~a:d.seq
                ~b:0 ~c:1 ~d:0;
              if Trace.enabled () then
                Trace.emit ~node:t.me
                  (Trace.Data_send
                     {
                       ring = t.ring_id;
                       seq = d.seq;
                       size = Message.wire_size (Message.Data d);
                       post_token = false;
                       retrans = true;
                     });
              scan_rtr rest (Send_data d :: rev_sends) (num + 1) kept_rev
          | None -> scan_rtr rest rev_sends num (seq :: kept_rev))
    in
    let rev_retrans, num_retrans, kept_rtr = scan_rtr tok.rtr [] 0 [] in
    (* Backlog as the token arrives — the round's arrival count, which is
       the scale an adaptive accelerated window has to cover. *)
    let backlog_at_token = Queue.length t.pending in
    (* 2. Flow control (Section III-A.1). *)
    let by_global = t.params.global_window - tok.fcc - num_retrans in
    let by_gap = tok.aru + t.params.max_seq_gap - tok.t_seq in
    let allowed_new =
      max 0
        (min
           (Queue.length t.pending)
           (min t.params.personal_window (min by_global by_gap)))
    in
    (* 3. Prepare all new messages for the round; split them into the
       pre-token phase and the post-token phase (at most
       accelerated_window messages follow the token). *)
    let n_pre = max 0 (allowed_new - t.accelerated_window) in
    if Trace.enabled () then
      Trace.emit ~node:t.me
        (Trace.Flow_control
           {
             allowed_new;
             n_post = allowed_new - n_pre;
             fcc = tok.fcc;
             pending = Queue.length t.pending;
             by_global;
             by_gap;
           });
    let rev_pre = ref [] and rev_post = ref [] in
    for i = 0 to allowed_new - 1 do
      let p = Queue.pop t.pending in
      let d : Message.data =
        {
          d_ring = t.ring_id;
          seq = tok.t_seq + i + 1;
          pid = t.me;
          d_round = t.round;
          post_token = i >= n_pre;
          service = p.p_service;
          payload = p.p_payload;
        }
      in
      (* We trivially "have" our own message the moment it exists. *)
      Hashtbl.replace t.buffer d.seq d;
      t.stats.new_sent <- t.stats.new_sent + 1;
      if p.p_submit_ns > 0 then
        Span.note_ordered ~sender:t.me ~seq:d.seq ~submit_ns:p.p_submit_ns;
      Flight.record ~node:t.me ~code:Flight.ev_data_send ~a:d.seq
        ~b:(if d.post_token then 1 else 0) ~c:0 ~d:0;
      if Trace.enabled () then
        Trace.emit ~node:t.me
          (Trace.Data_send
             {
               ring = t.ring_id;
               seq = d.seq;
               size = Message.wire_size (Message.Data d);
               post_token = d.post_token;
               retrans = false;
             });
      if i < n_pre then rev_pre := Send_data d :: !rev_pre
      else rev_post := Send_data d :: !rev_post
    done;
    let new_seq = tok.t_seq + allowed_new in
    if new_seq > t.high_seq then t.high_seq <- new_seq;
    advance_local_aru t;
    (* 4. aru update (Section III-A.2): lower to our local aru when we are
       missing messages; if we lowered it before (aru_id is ours) or the
       token was fully caught up (aru = seq), set it to our local aru so it
       can rise — possibly riding along with the new seq. *)
    let new_aru, new_aru_id =
      if
        t.local_aru < tok.aru
        || tok.aru_id = Some t.me
        || tok.aru = tok.t_seq
      then
        (t.local_aru, if t.local_aru = new_seq then None else Some t.me)
      else (tok.aru, tok.aru_id)
    in
    (* 5. fcc: replace our contribution from last round with this round's. *)
    let sent_this_round = num_retrans + allowed_new in
    let new_fcc = tok.fcc - t.last_round_sent + sent_this_round in
    t.last_round_sent <- sent_this_round;
    (* 6. rtr: drop what we answered; add what we are missing, capped at the
       seq of the token we received in the *previous* round so that
       messages still in a predecessor's post-token phase are not requested
       (the key retransmission subtlety of the accelerated protocol). *)
    let my_missing = missing_requests t ~cap:t.prev_recv_seq ~already:kept_rtr in
    t.stats.rtr_requested <- t.stats.rtr_requested + List.length my_missing;
    let new_rtr = merge_sorted kept_rtr my_missing in
    let token' : Message.token =
      {
        t_ring = t.ring_id;
        token_id = tok.token_id + 1;
        t_round = t.round;
        t_seq = new_seq;
        aru = new_aru;
        aru_id = new_aru_id;
        fcc = new_fcc;
        rtr = new_rtr;
      }
    in
    t.saved_token <- Some token';
    t.prev_recv_seq <- tok.t_seq;
    (* 7. Stability: every participant could have lowered the aru during the
       last full rotation, so min(aru sent this round, aru sent last round)
       is received by all (Section III-A.4). *)
    t.prev_sent_aru <- t.last_sent_aru;
    t.last_sent_aru <- new_aru;
    let line = min t.prev_sent_aru t.last_sent_aru in
    if line > t.safe_line then t.safe_line <- line;
    Flight.record ~node:t.me ~code:Flight.ev_token_send ~a:token'.token_id
      ~b:token'.t_seq ~c:token'.aru ~d:(List.length token'.rtr);
    if Trace.enabled () then begin
      Trace.emit ~node:t.me
        (Trace.Token_send
           {
             ring = t.ring_id;
             token_id = token'.token_id;
             round = token'.t_round;
             seq = token'.t_seq;
             aru = token'.aru;
             fcc = token'.fcc;
             rtr = List.length token'.rtr;
             local_aru = t.local_aru;
             safe_line = t.safe_line;
           });
      Trace.emit ~node:t.me
        (Trace.Timer_arm
           {
             timer = "token_retransmit";
             delay_ns = t.params.token_retransmit_ns;
           });
      Trace.emit ~node:t.me
        (Trace.Timer_arm { timer = "token_loss"; delay_ns = t.params.token_loss_ns })
    end;
    (* 8. Deliver and discard; assemble the action list back to front so
       each phase is prepended once — no intermediate lists, no appends. *)
    let deliveries_on =
      deliver_ready_into t
        [
          Set_timer
            (Token_retransmit, t.progress_gen, t.params.token_retransmit_ns);
          Set_timer (Token_loss, t.loss_gen, t.params.token_loss_ns);
        ]
    in
    collect_garbage t;
    t.last_signals <-
      Some
        {
          sr_round = t.round;
          sr_fcc = tok.fcc;
          sr_retrans = num_retrans + List.length my_missing;
          sr_backlog = backlog_at_token;
          sr_allowed_new = allowed_new;
        };
    List.rev_append rev_retrans
      (List.rev_append !rev_pre
         (Send_token (successor t, token')
         :: List.rev_append !rev_post deliveries_on))
  end

let max_token_retransmits t =
  max 1 (t.params.token_loss_ns / t.params.token_retransmit_ns)

let handle_timer t kind gen =
  match kind with
  | Token_retransmit -> (
      if gen <> t.progress_gen then []
      else
        match t.saved_token with
        | None -> []
        | Some tok ->
            if t.retransmit_count >= max_token_retransmits t then []
            else begin
              t.retransmit_count <- t.retransmit_count + 1;
              t.stats.token_retransmits <- t.stats.token_retransmits + 1;
              Flight.record ~node:t.me ~code:Flight.ev_token_retransmit
                ~a:tok.token_id ~b:t.retransmit_count ~c:0 ~d:0;
              if Trace.enabled () then begin
                Trace.emit ~node:t.me
                  (Trace.Timer_fire { timer = "token_retransmit" });
                Trace.emit ~node:t.me
                  (Trace.Token_retransmit
                     { token_id = tok.token_id; attempt = t.retransmit_count })
              end;
              [
                Send_token (successor t, tok);
                Set_timer
                  (Token_retransmit, t.progress_gen, t.params.token_retransmit_ns);
              ]
            end)
  | Token_loss ->
      if gen <> t.loss_gen then []
      else begin
        Flight.record ~node:t.me ~code:Flight.ev_token_lost ~a:t.round ~b:0
          ~c:0 ~d:0;
        if Trace.enabled () then begin
          Trace.emit ~node:t.me (Trace.Timer_fire { timer = "token_loss" });
          Trace.emit ~node:t.me Trace.Token_lost
        end;
        [ Token_lost ]
      end

let handle t input =
  match input with
  | Token_received tok ->
      if Types.ring_id_equal tok.t_ring t.ring_id then handle_token t tok
      else []
  | Data_received d ->
      if Types.ring_id_equal d.d_ring t.ring_id then handle_data t d else []
  | Submit (service, payload) ->
      Queue.push
        { p_service = service; p_payload = payload;
          p_submit_ns = Span.submit_stamp () }
        t.pending;
      []
  | Timer_expired (kind, gen) -> handle_timer t kind gen

let drain_pending t =
  let rec loop acc =
    match Queue.take_opt t.pending with
    | None -> List.rev acc
    | Some p -> loop ((p.p_service, p.p_payload) :: acc)
  in
  loop []

let start_timers t =
  [ Set_timer (Token_loss, t.loss_gen, t.params.token_loss_ns) ]

let record_metrics ?(prefix = "") t reg =
  let c name v = Metrics.add (Metrics.counter reg (prefix ^ name)) v in
  c "engine.rounds" t.stats.rounds;
  c "engine.new_sent" t.stats.new_sent;
  c "engine.retrans_sent" t.stats.retrans_sent;
  c "engine.rtr_requested" t.stats.rtr_requested;
  c "engine.delivered" t.stats.delivered;
  c "engine.dup_tokens" t.stats.dup_tokens;
  c "engine.dup_data" t.stats.dup_data;
  c "engine.token_retransmits" t.stats.token_retransmits
