open Aring_wire

(* ------------------------------------------------------------------ *)
(* Range compaction                                                    *)

let compact seqs =
  match List.sort_uniq compare seqs with
  | [] -> []
  | first :: rest ->
      let rec go lo hi acc = function
        | [] -> List.rev ((lo, hi) :: acc)
        | s :: tl ->
            if s = hi + 1 then go lo s acc tl
            else go s s ((lo, hi) :: acc) tl
      in
      go first first [] rest

let expand ranges =
  List.concat_map
    (fun (lo, hi) -> if lo > hi then [] else List.init (hi - lo + 1) (fun i -> lo + i))
    ranges

let encode_ranges ranges =
  List.concat_map (fun (lo, hi) -> [ lo; hi ]) ranges

let rec decode_ranges = function
  | [] -> []
  | [ x ] -> [ (x, x) ]
  | lo :: hi :: rest -> (lo, hi) :: decode_ranges rest

(* ------------------------------------------------------------------ *)
(* Designated-holder election                                          *)

(* Sorting the filtered pid lists descending keeps the election a pure
   function of the (unordered) member-info set: any permutation of the
   commit token's slots yields the same candidate order. *)
let holders ~infos ~old_ring seq =
  let survivors =
    List.filter
      (fun (mi : Message.member_info) ->
        Types.ring_id_equal mi.m_old_ring old_ring)
      infos
  in
  let sure =
    List.filter_map
      (fun (mi : Message.member_info) ->
        if mi.m_aru >= seq then Some mi.m_pid else None)
      survivors
    |> List.sort_uniq compare |> List.rev
  in
  let maybe =
    List.filter_map
      (fun (mi : Message.member_info) ->
        if mi.m_aru < seq && mi.m_high_seq >= seq then Some mi.m_pid else None)
      survivors
    |> List.sort_uniq compare |> List.rev
    |> List.filter (fun p -> not (List.mem p sure))
  in
  sure @ maybe

let designated ~infos ~old_ring seq =
  match holders ~infos ~old_ring seq with [] -> None | p :: _ -> Some p

let designated_nth ~infos ~old_ring ~nth seq =
  match holders ~infos ~old_ring seq with
  | [] -> None
  | candidates -> List.nth_opt candidates (nth mod List.length candidates)
