(** A protocol participant: ordering engine + bounded receive queues +
    priority policy.

    [Node] is the runtime-agnostic composition both the discrete-event
    simulator and the real UDP runtime drive. It models what the paper's
    implementations do with two UDP sockets (Section III-D): tokens and data
    arrive on separate queues, and the {!Priority} policy decides which
    queue to serve when both are non-empty. Queues are bounded in bytes,
    like kernel socket buffers — enqueueing beyond the bound drops the
    message, which is precisely the failure mode an excessive accelerated
    window provokes.

    The caller loop is:
    {v
      Node.receive node msg        (* on packet arrival; may drop *)
      ...
      match Node.take_next node with
      | Some msg -> interpret (Node.process node msg)   (* charge CPU *)
      | None -> idle
    v} *)

open Aring_wire

type t

type Participant.timer +=
  | Engine_timer of Engine.timer_kind * int
        (** Ordering-engine timers (exposed for tests). *)

type queue_stats = {
  mutable token_drops : int;
  mutable data_drops : int;
  mutable max_data_backlog : int;  (** Peak data-queue occupancy (bytes). *)
}

val create :
  params:Params.t ->
  ring_id:Types.ring_id ->
  ring:Types.pid array ->
  me:Types.pid ->
  ?token_queue_cap:int ->
  ?data_queue_cap:int ->
  ?controller:Aring_control.Controller.t ->
  unit ->
  t
(** [create] builds an operational participant of an installed ring.
    Queue capacities are in bytes and default to 256 KiB (token) and
    2 MiB (data), matching a tuned production socket-buffer setup.

    When [controller] is given, it is consulted after every accepted
    token with that rotation's {!Engine.round_signals} (plus the
    inter-token time from the {!Aring_obs.Trace} clock) and its window
    becomes the engine's accelerated window for the next round. The same
    controller instance may be passed into successive configurations so
    its learned window survives membership changes. *)

val start : t -> Participant.action list
(** Actions to perform at installation time: arming the token-loss timer,
    and — only on the ring's representative — sending itself the initial
    token (returned as a [Unicast] to self so the runtime loops it through
    the normal receive path). *)

val submit : t -> Types.service -> bytes -> unit
(** Queue a client message for multicast on a future token visit. *)

val receive : t -> Message.t -> [ `Queued | `Dropped ]
(** A packet arrived from the network. It is classified (token queue vs
    data queue) and buffered, or dropped when the queue is full. *)

val has_work : t -> bool
val queued_messages : t -> int

val take_next : t -> Message.t option
(** Remove the next message to process, per the priority policy: data
    messages have high priority after a token was processed; the token
    regains priority per method 1/2 once the predecessor's next-round data
    is seen; an empty queue never blocks the other type. *)

val process : t -> Message.t -> Participant.action list
(** Run the protocol on one message previously obtained from
    {!take_next}. *)

val fire_timer : t -> Participant.timer -> Participant.action list
(** Timers not created by this node are ignored (empty action list). *)

val participant : t -> Participant.t
(** Package this node behind the uniform runtime interface. *)

val engine : t -> Engine.t
(** The underlying ordering engine (introspection for tests/stats). *)

val controller : t -> Aring_control.Controller.t option
(** The adaptive-window controller, when one was attached. *)

val queue_stats : t -> queue_stats
