(** The Accelerated Ring ordering engine (Section III of the paper).

    The engine is a sans-IO state machine: it owns no sockets, no clock and
    no threads. Callers feed it {!type:input} events (a received token, a
    received data message, a client submission, an expired timer) and
    interpret the returned {!type:output} list. The {b order} of the output
    list is the protocol's send order and encodes the acceleration:

    {v
      [ retransmissions ...        (pre-token, answering rtr)
      ; new multicasts ...         (pre-token overflow beyond the
                                    accelerated window)
      ; Send_token                 (the token leaves here)
      ; new multicasts ...         (post-token phase: at most
                                    accelerated_window messages)
      ; Deliver ... ]              (newly deliverable messages)
    v}

    With [accelerated_window = 0] the post-token phase is empty and the
    engine behaves as the original Totem/Spread Ring protocol.

    One engine instance serves one installed ring configuration. Membership
    changes tear the engine down and build a fresh one (see {!Membership});
    the engine itself only reports the loss of the token. *)

open Aring_wire

type timer_kind =
  | Token_retransmit
      (** Re-send the saved token if no progress was observed. *)
  | Token_loss  (** Declare the token lost and ask for membership. *)

type input =
  | Token_received of Message.token
  | Data_received of Message.data
  | Submit of Types.service * bytes
      (** A client message enters the pending queue; it is multicast on a
          future token visit, subject to flow control. *)
  | Timer_expired of timer_kind * int
      (** [Timer_expired (kind, generation)]: only acted upon when
          [generation] matches the engine's current generation for [kind] —
          stale timers are ignored. *)

type output =
  | Send_token of Types.pid * Message.token
      (** Unicast the token to the ring successor. *)
  | Send_data of Message.data
      (** Multicast a data message to all other participants. *)
  | Deliver of Message.data
      (** Hand the message to the application, in total order. *)
  | Set_timer of timer_kind * int * int
      (** [Set_timer (kind, generation, delay_ns)]: the runtime must feed
          back [Timer_expired (kind, generation)] after [delay_ns]. *)
  | Token_lost
      (** No token activity within [token_loss_ns]; the membership algorithm
          must take over. *)

type round_signals = {
  sr_round : Types.round;  (** The round these signals describe. *)
  sr_fcc : int;  (** Flow-control count on the incoming token. *)
  sr_retrans : int;
      (** Retransmissions served plus requests newly added this round. *)
  sr_backlog : int;
      (** Pending submissions waiting when the token arrived, i.e. the
          round's arrival count — the scale the accelerated window has to
          cover for every send to ride behind the token. *)
  sr_allowed_new : int;  (** New messages flow control admitted (= sent). *)
}
(** What one token rotation looked like from this node — the signal set an
    adaptive-window controller consumes. Purely observational. *)

type stats = {
  mutable rounds : int;  (** Tokens accepted (rotations seen locally). *)
  mutable new_sent : int;  (** New messages initiated. *)
  mutable retrans_sent : int;  (** Retransmissions answered. *)
  mutable rtr_requested : int;  (** Retransmission requests added. *)
  mutable delivered : int;  (** Messages delivered to the application. *)
  mutable dup_tokens : int;  (** Duplicate/stale tokens discarded. *)
  mutable dup_data : int;  (** Duplicate data messages discarded. *)
  mutable token_retransmits : int;  (** Tokens re-sent on timeout. *)
}

type t

val create :
  params:Params.t ->
  ring_id:Types.ring_id ->
  ring:Types.pid array ->
  me:Types.pid ->
  t
(** [create ~params ~ring_id ~ring ~me] is a participant engine for the
    installed configuration [ring] (pids in ring order; the token flows in
    array order, wrapping). [me] must occur in [ring]. The engine is idle
    until it receives the initial token (see {!initial_token}) or data. *)

val initial_token : Types.ring_id -> Message.token
(** The first regular token of a freshly installed ring. The installer
    hands it to the representative by feeding
    [Token_received (initial_token rid)] to its engine. *)

val handle : t -> input -> output list
(** [handle t input] advances the state machine. See the module preamble
    for output ordering guarantees. *)

val start_timers : t -> output list
(** Timers the runtime must arm right after installation (token loss
    detection). *)

(** {2 Introspection} *)

val me : t -> Types.pid
val ring_id : t -> Types.ring_id
val ring : t -> Types.pid array
val successor : t -> Types.pid
val predecessor : t -> Types.pid
val round : t -> Types.round
(** Rounds completed locally (= tokens accepted). *)

val local_aru : t -> Types.seqno
(** Highest contiguously received sequence number. *)

val delivered_upto : t -> Types.seqno
(** Delivery cursor: every message with a sequence number at or below this
    has been delivered. *)

val safe_line : t -> Types.seqno
(** Stability floor: messages at or below are known received by all. *)

val high_seq : t -> Types.seqno
(** Highest sequence number seen (token or data). *)

val pending_count : t -> int
(** Client messages waiting for a token visit. *)

val accelerated_window : t -> int
(** The accelerated window the next round will use. Starts at
    [params.accelerated_window]. *)

val set_accelerated_window : t -> int -> unit
(** Set the window used from the next round on, clamped to
    [[0, personal_window]]. Safe to call between rounds: the window only
    governs how many of this node's admitted messages trail the token,
    never what flow control admits, so no ring-wide agreement is needed. *)

val last_round_signals : t -> round_signals option
(** Signals captured by the most recent accepted token, or [None] before
    the first rotation. *)

val buffered_count : t -> int
(** Messages held for delivery or possible retransmission. *)

val stats : t -> stats

val record_metrics : ?prefix:string -> t -> Aring_obs.Metrics.t -> unit
(** Export the engine counters into a metrics registry under
    ["engine.*"] names, adding to any values already there (so per-node
    exports accumulate into cluster totals). [prefix] is prepended to
    every name (e.g. ["ring1."] for per-ring registries). *)

val buffered_message : t -> Types.seqno -> Message.data option
(** [buffered_message t seq] is the retained message with sequence [seq],
    if any — used by recovery to re-originate old-ring messages. *)

val drain_pending : t -> (Types.service * bytes) list
(** Remove and return the client messages still waiting for a token visit —
    the membership layer carries them into the next configuration. *)

val undelivered_after_cursor : t -> Message.data list
(** Messages received but not yet delivered, ascending by sequence — used
    by recovery when a configuration dies. *)
