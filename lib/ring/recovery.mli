(** Recovery-exchange arithmetic: cumulative-nack range compaction and
    designated-holder election.

    Both are pure functions of data every survivor already shares — the
    commit token's member-info slots and plain sequence-number lists — so
    every survivor computes identical answers from its local copy, with
    no extra agreement round. The member uses them to deduplicate the
    recovery flood (only the designated holder of a sequence number
    multicasts it), to compact a recheck's missing set into ranges small
    enough to ride in a commit-token nack, and to walk the candidate
    list deterministically when a designated holder fails to respond. *)

open Aring_wire

(** {2 Range compaction} *)

val compact : Types.seqno list -> (Types.seqno * Types.seqno) list
(** [compact seqs] is the minimal list of inclusive [(lo, hi)] ranges
    covering exactly the set of [seqs]: sorted ascending, duplicate-free,
    non-overlapping, non-adjacent. Input order and duplicates are
    irrelevant. *)

val expand : (Types.seqno * Types.seqno) list -> Types.seqno list
(** Inverse of {!compact} on well-formed ranges: the covered sequence
    numbers, ascending. Empty ranges ([lo > hi]) contribute nothing. *)

val encode_ranges : (Types.seqno * Types.seqno) list -> Types.seqno list
(** Flatten ranges to [lo1; hi1; lo2; hi2; ...] so they travel in the
    commit token's existing per-ring seqno-list channel ([c_holds])
    without any wire-format change. *)

val decode_ranges : Types.seqno list -> (Types.seqno * Types.seqno) list
(** Inverse of {!encode_ranges}. A trailing odd element (malformed) is
    treated as the singleton range [(x, x)]. *)

(** {2 Designated-holder election} *)

val holders :
  infos:Message.member_info list ->
  old_ring:Types.ring_id ->
  Types.seqno ->
  Types.pid list
(** The deterministic candidate list for sequence number [seq] among the
    survivors of [old_ring] advertised in [infos]: first every survivor
    whose [m_aru >= seq] (guaranteed to have received it), highest pid
    first, then every survivor whose [m_high_seq >= seq] (may hold it),
    highest pid first. Duplicate-free; empty when no survivor can hold
    [seq]. Survivors of other old rings are ignored. *)

val designated :
  infos:Message.member_info list ->
  old_ring:Types.ring_id ->
  Types.seqno ->
  Types.pid option
(** The head of {!holders}: the single survivor expected to flood [seq].
    Identical at every survivor that shares the commit token's member
    info, so each exchange-range message is flooded exactly once. *)

val designated_nth :
  infos:Message.member_info list ->
  old_ring:Types.ring_id ->
  nth:int ->
  Types.seqno ->
  Types.pid option
(** The [nth] candidate of {!holders} (0 = {!designated}), used to
    re-elect a responder after repeated nacks for the same sequence
    number: the k-th nack is answered by candidate [(k - 1) mod
    length holders], so a crashed or deaf designated holder is routed
    around without re-gathering. [None] when no candidate exists. *)
