(** Protocol configuration: flow-control windows, acceleration, priority
    policy, and failure-detection timeouts.

    The Original Ring protocol of Totem/Spread is exactly the configuration
    with [accelerated_window = 0] and the conservative priority method
    (Section III-D of the paper: "When the accelerated window is set to zero
    at all participants, the second method is identical to the original Ring
    protocol"). *)

type priority_method =
  | Aggressive
      (** Method 1: raise token priority as soon as any data message from
          the ring predecessor initiated in the next round is processed. *)
  | Conservative
      (** Method 2: raise token priority only upon a next-round data message
          the predecessor sent {e after} releasing the token (its
          post-token phase). Identical to the original protocol when the
          accelerated window is zero. *)

type t = {
  personal_window : int;
      (** Maximum new messages one participant may initiate per round. *)
  global_window : int;
      (** Maximum messages (new + retransmissions) all participants combined
          may multicast per round, enforced through the token's [fcc]. *)
  accelerated_window : int;
      (** Maximum messages a participant may multicast after passing the
          token. [0] disables acceleration (original protocol). *)
  max_seq_gap : int;
      (** Bound on [token.seq - global_aru]: limits how far sequencing may
          run ahead of stability, bounding buffer occupancy. *)
  priority_method : priority_method;
  token_retransmit_ns : int;
      (** Token holder resends the token if it observes no progress within
          this delay. *)
  token_loss_ns : int;
      (** A participant that sees no token activity for this long declares
          token loss and triggers the membership algorithm. *)
  join_retransmit_ns : int;
      (** Gather state: interval between join message re-multicasts. *)
  consensus_timeout_ns : int;
      (** Gather state: deadline to reach agreement on a membership before
          declaring unreachable processes failed and retrying. Also bounds
          the commit/recovery phases (formation timeout). *)
  merge_probe_ns : int;
      (** Interval at which a ring's representative multicasts a presence
          probe so that healed partitions discover each other and merge
          even when idle. *)
  recovery_burst_msgs : int;
      (** Recovery exchange: maximum messages a designated holder
          multicasts per flood burst. Bursts are spaced
          [recovery_burst_gap_ns] apart so a small switch buffer drains
          between them. *)
  recovery_burst_gap_ns : int;
      (** Recovery exchange: delay between a holder's flood bursts; also
          scales the per-ring-position stagger of the first burst. *)
}

val default : t
(** Accelerated protocol defaults used across tests and examples:
    [personal_window = 60], [global_window = 300],
    [accelerated_window = 20], [max_seq_gap = 2000], aggressive priority. *)

val original : t
(** The original Ring protocol: [default] with [accelerated_window = 0] and
    the conservative priority method. *)

val accelerated :
  ?personal_window:int ->
  ?global_window:int ->
  ?accelerated_window:int ->
  ?priority_method:priority_method ->
  unit ->
  t
(** [accelerated ()] is [default] with selective overrides. *)

val is_original : t -> bool
(** [is_original p] holds when [p] disables acceleration entirely. *)

val validate : t -> (unit, string) result
(** Checks internal consistency (windows positive, accelerated window not
    exceeding the personal window, timeouts ordered). *)

val pp : Format.formatter -> t -> unit
