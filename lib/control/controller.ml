open Aring_obs

(* Online AIMD controller for the node-local accelerated window.

   Each token rotation the engine exposes four cheap signals: how long
   the rotation took, the flow-control count the token carried (total
   new messages multicast ring-wide during the previous rotation), how
   many retransmissions this node saw or served, and the depth of its
   own pending backlog. From these the controller picks the accelerated
   window for the NEXT rotation.

   The accelerated window only governs how many of a node's admitted
   messages leave before the token rather than after it — it never
   changes what flow control admits, so two nodes running different
   windows (or different controller configs) still agree on every
   safety-relevant quantity. That locality is what makes runtime
   adaptation free: no ring-wide consensus, no wire change, each node
   converges on its own.

   The rule is additive-increase / multiplicative-decrease:
   - congestion (any retransmission, fcc at/above the high-water mark,
     or a rotation slower than the target) multiplies the window down;
     a congested rotation can NEVER raise the window.
   - a backlog deeper than the current window raises it additively,
     up to [aw_max].
   - an idle node (backlog under half the window) decays the window by
     one, but only after [decay_after] consecutive idle rotations: the
     arrival process is bursty at the rotation scale, and decaying on
     every momentarily-quiet rotation makes the window sag well below
     the burst size it still has to absorb. A sustained quiet spell
     still walks the ring back to low-burstiness behaviour instead of
     parking at its high-load setting. *)

type config = {
  aw_min : int;  (* lower clamp, usually 0 *)
  aw_max : int;  (* upper clamp; must stay <= personal_window *)
  increase : int;  (* additive step when the backlog wants more *)
  decrease : float;  (* multiplicative factor in (0,1) on congestion *)
  decay_after : int;  (* consecutive idle rotations before a -1 decay *)
  fcc_high : int;  (* fcc at/above this counts as congestion *)
  target_rotation_ns : int;  (* rotations slower than this count as
                                congestion; 0 disables the clock signal *)
}

let default_config ?(aw_min = 0) ?(increase = 2) ?(decrease = 0.5)
    ?(decay_after = 8) ?(fcc_high = max_int) ?(target_rotation_ns = 0) ~aw_max
    () =
  if aw_max < aw_min then invalid_arg "Controller.default_config: aw_max < aw_min";
  if decrease <= 0.0 || decrease >= 1.0 then
    invalid_arg "Controller.default_config: decrease must be in (0,1)";
  if increase <= 0 then invalid_arg "Controller.default_config: increase <= 0";
  if decay_after <= 0 then
    invalid_arg "Controller.default_config: decay_after <= 0";
  { aw_min; aw_max; increase; decrease; decay_after; fcc_high; target_rotation_ns }

type signals = {
  rotation_ns : int;  (* time since this node last forwarded the token *)
  fcc : int;  (* flow-control count the incoming token carried *)
  retrans : int;  (* retransmissions sent plus requested this round *)
  backlog : int;  (* pending submissions waiting as the token arrived *)
}

type decision = { aw_before : int; aw_after : int; congested : bool }

type t = {
  config : config;
  mutable aw : int;
  mutable idle_streak : int;  (* consecutive rotations with 2*backlog < aw *)
  (* counters for control.* metrics *)
  mutable decisions : int;
  mutable increases : int;
  mutable decreases : int;
  mutable congestions : int;
}

let clamp config v = max config.aw_min (min config.aw_max v)

let create ?config ~init () =
  let config =
    match config with Some c -> c | None -> default_config ~aw_max:init ()
  in
  {
    config;
    aw = clamp config init;
    idle_streak = 0;
    decisions = 0;
    increases = 0;
    decreases = 0;
    congestions = 0;
  }

let window t = t.aw
let config t = t.config

let congested config s =
  s.retrans > 0
  || s.fcc >= config.fcc_high
  || (config.target_rotation_ns > 0 && s.rotation_ns > config.target_rotation_ns)

let observe t s =
  let c = t.config in
  let aw_before = t.aw in
  let congested = congested c s in
  let aw_after =
    if congested then begin
      t.idle_streak <- 0;
      (* Multiplicative decrease; never an increase, whatever the backlog. *)
      clamp c (int_of_float (float_of_int aw_before *. c.decrease))
    end
    else if s.backlog > aw_before then begin
      t.idle_streak <- 0;
      clamp c (aw_before + c.increase)
    end
    else if 2 * s.backlog < aw_before then begin
      t.idle_streak <- t.idle_streak + 1;
      if t.idle_streak >= c.decay_after then begin
        t.idle_streak <- 0;
        clamp c (aw_before - 1)
      end
      else aw_before
    end
    else begin
      t.idle_streak <- 0;
      aw_before
    end
  in
  t.aw <- aw_after;
  t.decisions <- t.decisions + 1;
  if congested then t.congestions <- t.congestions + 1;
  if aw_after > aw_before then t.increases <- t.increases + 1
  else if aw_after < aw_before then t.decreases <- t.decreases + 1;
  { aw_before; aw_after; congested }

let record_metrics t reg =
  let c name v = Metrics.add (Metrics.counter reg name) v in
  c "control.decisions" t.decisions;
  c "control.congestions" t.congestions;
  c "control.increases" t.increases;
  c "control.decreases" t.decreases;
  Metrics.set (Metrics.gauge reg "control.window") (float_of_int t.aw)
