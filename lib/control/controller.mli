(** Online AIMD controller for the node-local accelerated window.

    The accelerated window only decides how many admitted messages a
    node multicasts before forwarding the token instead of after it; it
    never changes what flow control admits. Adapting it is therefore a
    purely local decision — no ring-wide agreement, no wire-format
    change — and each node may run its own controller (or none).

    Per token rotation the engine hands the controller four signals
    (rotation time, the token's flow-control count, retransmission
    activity, local backlog depth) and receives the window for the next
    rotation, driven by an additive-increase / multiplicative-decrease
    rule:

    - any congestion evidence (retransmissions, fcc at the high-water
      mark, an over-target rotation time) multiplies the window down —
      a congested rotation can never raise it;
    - a backlog deeper than the window raises it additively up to
      [aw_max];
    - after [decay_after] consecutive near-idle rotations the window
      decays by one, returning a quiet ring to low-burstiness behaviour
      without sagging below the burst size a loaded ring still sees.

    Decisions are a pure function of the controller state and the
    signal sequence, so identical signal streams yield identical window
    trajectories (replay-stable). *)

type config = {
  aw_min : int;  (** lower clamp, usually 0 *)
  aw_max : int;  (** upper clamp; keep [<= personal_window] *)
  increase : int;  (** additive step when the backlog wants more *)
  decrease : float;  (** multiplicative factor in (0,1) on congestion *)
  decay_after : int;  (** consecutive idle rotations before a -1 decay *)
  fcc_high : int;  (** fcc at/above this counts as congestion *)
  target_rotation_ns : int;
      (** rotations slower than this count as congestion; 0 disables
          the clock signal *)
}

val default_config :
  ?aw_min:int ->
  ?increase:int ->
  ?decrease:float ->
  ?decay_after:int ->
  ?fcc_high:int ->
  ?target_rotation_ns:int ->
  aw_max:int ->
  unit ->
  config
(** Defaults: [aw_min = 0], [increase = 2], [decrease = 0.5],
    [decay_after = 8], fcc and rotation-time signals disabled. Raises
    [Invalid_argument] on an empty window range, a non-(0,1) [decrease]
    or a non-positive [increase] or [decay_after]. *)

type signals = {
  rotation_ns : int;  (** time since this node last forwarded the token *)
  fcc : int;  (** flow-control count the incoming token carried *)
  retrans : int;  (** retransmissions sent plus requested this round *)
  backlog : int;
      (** pending submissions waiting as the token arrived — the
          round's arrival count *)
}

type decision = { aw_before : int; aw_after : int; congested : bool }

type t

val create : ?config:config -> init:int -> unit -> t
(** [create ~init ()] starts at [clamp init]. Without [config], uses
    [default_config ~aw_max:init ()] (pure decay/recovery around the
    static setting). *)

val window : t -> int
(** The accelerated window the next rotation should use. *)

val config : t -> config

val observe : t -> signals -> decision
(** Feed one rotation's signals; updates {!window} and returns what
    changed. Deterministic: no clocks, no randomness. *)

val record_metrics : t -> Aring_obs.Metrics.t -> unit
(** Export [control.decisions], [control.congestions],
    [control.increases], [control.decreases] counters and the
    [control.window] gauge. *)
