(* Multi-ring sharded ordering: qcheck properties of the deterministic
   learner merge, cluster end-to-end smoke, cross-shard multi-key cas
   regressions under ring-scoped faults, and the multi-ring load driver.

   The merge properties are the heart of the design: the merged order
   must be a pure function of the per-ring input sequences, so that any
   two learners that receive the same per-ring streams — no matter how
   deliveries interleave in real time — emit identical total orders. *)

open Aring_multiring
module Kv = Aring_app.Kv
module Op = Aring_app.Op
module Netsim = Aring_sim.Netsim
module Load = Aring_load.Load
module Stats = Aring_util.Stats

let check = Alcotest.check
let ms n = n * 1_000_000

(* ---------------- merge: generators ---------------- *)

(* Per-ring input sequences: items carry (ring, seq) so properties can
   check provenance; skips are small. *)
let gen_inputs =
  QCheck.Gen.(
    let* rings = int_range 1 4 in
    let* seqs =
      array_repeat rings
        (list_size (int_bound 30)
           (frequency
              [ (4, return `Item); (1, map (fun k -> `Skip (k + 1)) (int_bound 3)) ]))
    in
    return (rings, seqs))

let arb_inputs =
  QCheck.make ~print:(fun (rings, seqs) ->
      Printf.sprintf "rings=%d seqs=[%s]" rings
        (String.concat "; "
           (Array.to_list
              (Array.map
                 (fun l ->
                   String.concat ","
                     (List.map
                        (function `Item -> "I" | `Skip k -> "S" ^ string_of_int k)
                        l))
                 seqs))))
    gen_inputs

(* Number each ring's items, then append one big flush-skip per ring so
   a fully-fed merge always drains (liveness by construction — the
   *properties* are about order, not about idle-ring stalls). *)
let materialize (rings, seqs) =
  Array.init rings (fun r ->
      let n = ref 0 in
      List.map
        (function
          | `Item ->
              incr n;
              Merge.Item (r, !n)
          | `Skip k -> Merge.Skip k)
        seqs.(r)
      @ [ Merge.Skip 1_000_000 ])

(* Reference order: push everything ring by ring, then drain. *)
let reference_order rings inputs =
  let m = Merge.create ~rings in
  Array.iteri
    (fun r l -> List.iter (fun i -> Merge.push m ~ring:r i) l)
    inputs;
  Merge.pop_all m

(* Deterministic "random" interleaving of the per-ring pushes (seeded
   LCG — qcheck shrinking stays reproducible), popping greedily after
   every push. *)
let interleaved_order ~seed rings inputs =
  let m = Merge.create ~rings in
  let queues = Array.map (fun l -> ref l) inputs in
  let state = ref (seed land 0x3FFFFFFF) in
  let rand bound =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod bound
  in
  let out = ref [] in
  let remaining () =
    Array.fold_left (fun acc q -> acc + List.length !q) 0 queues
  in
  while remaining () > 0 do
    (* pick a non-empty ring *)
    let r = ref (rand rings) in
    while !(queues.(!r)) = [] do
      r := (!r + 1) mod rings
    done;
    (match !(queues.(!r)) with
    | [] -> assert false
    | i :: rest ->
        queues.(!r) := rest;
        Merge.push m ~ring:!r i);
    if rand 3 > 0 then out := List.rev_append (Merge.pop_all m) !out
  done;
  out := List.rev_append (Merge.pop_all m) !out;
  List.rev !out

(* ---------------- merge: properties ---------------- *)

(* Any interleaving of pushes and pops yields the reference order. *)
let prop_merge_deterministic =
  QCheck.Test.make ~name:"merge order independent of push/pop interleaving"
    ~count:400
    QCheck.(pair arb_inputs small_int)
    (fun ((rings, seqs), seed) ->
      let inputs = materialize (rings, seqs) in
      reference_order rings inputs = interleaved_order ~seed rings inputs)

(* The merged stream restricted to one ring is exactly that ring's item
   sequence (FIFO, nothing dropped, nothing duplicated), and the union
   is the full multiset. *)
let prop_merge_fifo_complete =
  QCheck.Test.make ~name:"merge is per-ring FIFO and loses nothing"
    ~count:400 arb_inputs (fun (rings, seqs) ->
      let inputs = materialize (rings, seqs) in
      let out = reference_order rings inputs in
      let total_items =
        Array.fold_left
          (fun acc l ->
            acc
            + List.length
                (List.filter (function Merge.Item _ -> true | _ -> false) l))
          0 inputs
      in
      List.length out = total_items
      && List.for_all
           (fun r ->
             let expect =
               List.filter_map
                 (function Merge.Item (_, n) -> Some n | _ -> None)
                 inputs.(r)
             in
             let got =
               List.filter_map
                 (fun (r', (_, n)) -> if r' = r then Some n else None)
                 out
             in
             got = expect)
           (List.init rings Fun.id))

(* One ring: the merge is the identity on items; skips are transparent. *)
let prop_merge_single_ring_identity =
  QCheck.Test.make ~name:"merge with one ring is the identity" ~count:200
    arb_inputs (fun (_, seqs) ->
      let inputs = materialize (1, [| Array.to_list seqs |> List.concat |]) in
      let out = reference_order 1 inputs in
      let expect =
        List.filter_map
          (function Merge.Item x -> Some (0, x) | _ -> None)
          inputs.(0)
      in
      out = expect)

(* Blocking: with an item-holding ring and a silent one, nothing emits
   until the silent ring speaks — then everything does. *)
let test_merge_blocks_on_silent_ring () =
  let m = Merge.create ~rings:2 in
  Merge.push m ~ring:1 (Merge.Item "b1");
  check Alcotest.bool "blocked while ring 0 silent" true (Merge.pop m = None);
  Merge.push m ~ring:0 (Merge.Item "a1");
  check Alcotest.bool "ring 0 emits first" true (Merge.pop m = Some (0, "a1"));
  check Alcotest.bool "then ring 1" true (Merge.pop m = Some (1, "b1"));
  Merge.push m ~ring:1 (Merge.Item "b2");
  check Alcotest.bool "blocked again" true (Merge.pop m = None);
  Merge.push m ~ring:0 (Merge.Skip 5);
  check Alcotest.bool "skip unblocks" true (Merge.pop m = Some (1, "b2"));
  check Alcotest.int "credit spent" 1 (Merge.credits_spent m)

(* Skip credits must not let later-pushed items jump unconsumed
   credit: units are consumed in queue position. *)
let test_merge_skip_queue_position () =
  let m = Merge.create ~rings:2 in
  Merge.push m ~ring:0 (Merge.Skip 3);
  Merge.push m ~ring:1 (Merge.Item "b1");
  check Alcotest.bool "b1 emits through the skip" true
    (Merge.pop m = Some (1, "b1"));
  (* An item pushed on ring 0 now queues *behind* the skip's remaining
     units — ring 1 still owns the next turns the skip ceded. *)
  Merge.push m ~ring:0 (Merge.Item "a1");
  Merge.push m ~ring:1 (Merge.Item "b2");
  check Alcotest.bool "remaining credit still cedes to ring 1" true
    (Merge.pop m = Some (1, "b2"));
  Merge.push m ~ring:1 (Merge.Skip 1_000);
  check Alcotest.bool "a1 emits after the credit runs out" true
    (Merge.pop m = Some (0, "a1"))

(* ---------------- cluster: end-to-end ---------------- *)

let drive ?(deadline = ms 3_000) ?(settle_after = ms 200) cluster =
  let sim = Cluster.sim cluster in
  let t = ref 0 in
  let stop = ref false in
  while not !stop do
    t := min deadline (!t + ms 20);
    Netsim.run_until sim !t;
    if !t >= deadline then stop := true
    else if
      !t > settle_after
      && Cluster.kv_converged cluster
      && Cluster.merge_settled cluster
    then stop := true
  done

let keys_per_ring cluster ~count =
  (* First [count] keys of each shard, by probing. *)
  let rings = Cluster.rings cluster in
  let buckets = Array.make rings [] in
  let i = ref 0 in
  while Array.exists (fun l -> List.length l < count) buckets do
    let k = Printf.sprintf "mk%04d" !i in
    incr i;
    let s = Cluster.shard_of_key cluster k in
    if List.length buckets.(s) < count then buckets.(s) <- buckets.(s) @ [ k ]
  done;
  buckets

let test_cluster_smoke () =
  let cluster = Cluster.create ~rings:2 ~nodes:3 ~seed:7L () in
  let sim = Cluster.sim cluster in
  (* Record each node's merged stream of (ring, index). *)
  let streams = Array.make 3 [] in
  Cluster.on_merged cluster (fun ~node ~ring it ->
      streams.(node) <- (ring, it.Cluster.mi_index) :: streams.(node));
  let buckets = keys_per_ring cluster ~count:4 in
  Netsim.call_at sim ~at:(ms 30) (fun () ->
      Array.iter
        (fun ks ->
          List.iteri
            (fun i k ->
              Cluster.put cluster ~node:(i mod 3) ~key:k ~value:("v" ^ k))
            ks)
        buckets);
  drive cluster;
  check Alcotest.bool "kv converged" true (Cluster.kv_converged cluster);
  check Alcotest.bool "merge settled" true (Cluster.merge_settled cluster);
  Cluster.check_convergence cluster;
  check Alcotest.int "no oracle violations" 0
    (Cluster.oracle_violations cluster);
  check Alcotest.bool "merged something" true (streams.(0) <> []);
  (* Every learner merged the identical total order. *)
  check Alcotest.bool "identical merged streams" true
    (streams.(1) = streams.(0) && streams.(2) = streams.(0));
  (* All eight writes reached their shard. *)
  Array.iteri
    (fun r ks ->
      List.iter
        (fun k ->
          let v, _ = Kv.read (Cluster.kv cluster ~ring:r ~node:0) ~key:k in
          check
            Alcotest.(option string)
            (k ^ " applied on its shard") (Some ("v" ^ k)) v)
        ks)
    buckets

let test_cluster_mcas_commit_and_abort () =
  let cluster = Cluster.create ~rings:2 ~nodes:3 ~seed:9L () in
  let sim = Cluster.sim cluster in
  let buckets = keys_per_ring cluster ~count:1 in
  let k0 = List.hd buckets.(0) and k1 = List.hd buckets.(1) in
  Netsim.call_at sim ~at:(ms 30) (fun () ->
      Cluster.put cluster ~node:0 ~key:k0 ~value:"a0";
      Cluster.put cluster ~node:1 ~key:k1 ~value:"b0");
  (* Committing mcas: checks match on both shards. *)
  Netsim.call_at sim ~at:(ms 120) (fun () ->
      Cluster.mcas cluster ~node:0 ~id:"m-commit"
        ~checks:[ (k0, Some "a0"); (k1, Some "b0") ]
        ~writes:[ (k0, "a1"); (k1, "b1") ]);
  (* Aborting mcas: the check on shard 1 is stale. *)
  Netsim.call_at sim ~at:(ms 240) (fun () ->
      Cluster.mcas cluster ~node:2 ~id:"m-abort"
        ~checks:[ (k0, Some "a1"); (k1, Some "wrong") ]
        ~writes:[ (k0, "a2"); (k1, "b2") ]);
  drive cluster ~settle_after:(ms 300);
  check Alcotest.bool "converged" true (Cluster.kv_converged cluster);
  Cluster.check_convergence cluster;
  check Alcotest.int "no oracle violations" 0
    (Cluster.oracle_violations cluster);
  (* Atomic: commit applied on both shards, abort on neither. *)
  let read r k = fst (Kv.read (Cluster.kv cluster ~ring:r ~node:2) ~key:k) in
  check Alcotest.(option string) "commit shard 0" (Some "a1") (read 0 k0);
  check Alcotest.(option string) "commit shard 1" (Some "b1") (read 1 k1);
  (* Decisions agree everywhere, with the expected outcome bit. *)
  List.iter
    (fun (id, expect) ->
      let ds = Cluster.decisions_for cluster id in
      check Alcotest.bool (id ^ " decided somewhere") true (ds <> []);
      List.iter
        (fun (_, _, commit) ->
          check Alcotest.bool (id ^ " outcome uniform") expect commit)
        ds)
    [ ("m-commit", true); ("m-abort", false) ]

(* ---------------- cross-shard cas regressions ---------------- *)

(* Partition one ring mid-cas: isolate one node of ring 1 (only ring
   1's traffic crosses the cut) just as the mcas is submitted. The op
   must decide exactly once, atomically, and the healed ring must
   reconverge with the parked state resolved everywhere. *)
let test_mcas_partition_one_ring () =
  let cluster = Cluster.create ~rings:2 ~nodes:4 ~seed:13L () in
  let sim = Cluster.sim cluster in
  let buckets = keys_per_ring cluster ~count:1 in
  let k0 = List.hd buckets.(0) and k1 = List.hd buckets.(1) in
  Netsim.call_at sim ~at:(ms 30) (fun () ->
      Cluster.put cluster ~node:0 ~key:k0 ~value:"p0";
      Cluster.put cluster ~node:0 ~key:k1 ~value:"q0");
  (* Cut: ring 1's participant at node 3 is alone; ring 0 untouched. *)
  let lone = Cluster.pid cluster ~ring:1 ~node:3 in
  Netsim.call_at sim ~at:(ms 150) (fun () ->
      Netsim.set_drop_until sim ~until:(ms 700) (fun ~src ~dst _ ->
          (src = lone) <> (dst = lone)));
  Netsim.call_at sim ~at:(ms 160) (fun () ->
      Cluster.mcas cluster ~node:1 ~id:"m-part"
        ~checks:[ (k0, Some "p0"); (k1, Some "q0") ]
        ~writes:[ (k0, "p1"); (k1, "q1") ]);
  drive cluster ~deadline:(ms 5_000) ~settle_after:(ms 800);
  check Alcotest.bool "converged after heal" true
    (Cluster.kv_converged cluster);
  check Alcotest.bool "merge settled" true (Cluster.merge_settled cluster);
  Cluster.check_convergence cluster;
  check Alcotest.int "no oracle violations" 0
    (Cluster.oracle_violations cluster);
  (* Atomicity: both writes applied or neither — never half. *)
  let v0 = fst (Kv.read (Cluster.kv cluster ~ring:0 ~node:2) ~key:k0) in
  let v1 = fst (Kv.read (Cluster.kv cluster ~ring:1 ~node:2) ~key:k1) in
  let applied = (v0 = Some "p1", v1 = Some "q1") in
  check Alcotest.bool "atomic across the partitioned ring" true
    (applied = (true, true) || applied = (false, false));
  let ds = Cluster.decisions_for cluster "m-part" in
  check Alcotest.bool "decided" true (ds <> []);
  List.iter
    (fun (_, _, commit) ->
      check Alcotest.bool "uniform outcome" (fst applied) commit)
    ds

(* Ring membership change between the two shard submissions: ring 1's
   copy is submitted only after a node of ring 1 crashed (staged
   Kv.submit_mcas, not the atomic Cluster.mcas) — the vote table and
   park must survive the view change and the op still decides
   atomically. *)
let test_mcas_membership_change_between_writes () =
  let cluster = Cluster.create ~rings:2 ~nodes:4 ~seed:17L () in
  let sim = Cluster.sim cluster in
  let buckets = keys_per_ring cluster ~count:1 in
  let k0 = List.hd buckets.(0) and k1 = List.hd buckets.(1) in
  Netsim.call_at sim ~at:(ms 30) (fun () ->
      Cluster.put cluster ~node:0 ~key:k0 ~value:"s0";
      Cluster.put cluster ~node:0 ~key:k1 ~value:"t0");
  let parts =
    [
      { Op.mp_ring = 0; mp_checks = [ (k0, Some "s0") ]; mp_writes = [ (k0, "s1") ] };
      { Op.mp_ring = 1; mp_checks = [ (k1, Some "t0") ]; mp_writes = [ (k1, "t1") ] };
    ]
  in
  (* Stage 1: ring 0's copy goes out; ring 0 parks on its vote. *)
  Netsim.call_at sim ~at:(ms 150) (fun () ->
      Kv.submit_mcas (Cluster.kv cluster ~ring:0 ~node:1) ~id:"m-mem" ~parts);
  (* Ring 1 (and only ring 1, physically: the whole node) loses node 3
     — but crash the node entirely so both rings change view. *)
  Netsim.call_at sim ~at:(ms 250) (fun () -> Cluster.crash cluster ~node:3);
  (* Stage 2: ring 1's copy goes out after the membership change. *)
  Netsim.call_at sim ~at:(ms 600) (fun () ->
      Kv.submit_mcas (Cluster.kv cluster ~ring:1 ~node:1) ~id:"m-mem" ~parts);
  drive cluster ~deadline:(ms 6_000) ~settle_after:(ms 700);
  check Alcotest.bool "converged" true (Cluster.kv_converged cluster);
  Cluster.check_convergence cluster;
  check Alcotest.int "no oracle violations" 0
    (Cluster.oracle_violations cluster);
  let v0 = fst (Kv.read (Cluster.kv cluster ~ring:0 ~node:1) ~key:k0) in
  let v1 = fst (Kv.read (Cluster.kv cluster ~ring:1 ~node:1) ~key:k1) in
  let applied = (v0 = Some "s1", v1 = Some "t1") in
  check Alcotest.bool "atomic across the view change" true
    (applied = (true, true) || applied = (false, false));
  check Alcotest.bool "eventually decided" true
    (Cluster.decisions_for cluster "m-mem" <> [])

(* One ring 100x slower than the other: the merge must stay live (skips
   from the slow ring keep fast-ring items emerging) and the skew must
   not break mcas atomicity. *)
let test_mcas_slow_ring_skew () =
  let cluster = Cluster.create ~rings:2 ~nodes:3 ~seed:23L () in
  let sim = Cluster.sim cluster in
  (* Ring 1's links at 1% speed. *)
  for node = 0 to 2 do
    let p = Cluster.pid cluster ~ring:1 ~node in
    Netsim.set_link_rates sim ~node:p ~up_bps:10_000_000 ~down_bps:10_000_000 ()
  done;
  let buckets = keys_per_ring cluster ~count:3 in
  let k0 = List.hd buckets.(0) and k1 = List.hd buckets.(1) in
  Netsim.call_at sim ~at:(ms 30) (fun () ->
      (* Traffic on the fast ring... *)
      List.iteri
        (fun i k -> Cluster.put cluster ~node:(i mod 3) ~key:k ~value:"f")
        buckets.(0);
      (* ...and a trickle on the slow one. *)
      Cluster.put cluster ~node:0 ~key:k1 ~value:"u0");
  Netsim.call_at sim ~at:(ms 400) (fun () ->
      Cluster.mcas cluster ~node:0 ~id:"m-skew"
        ~checks:[ (k1, Some "u0") ]
        ~writes:[ (k0, "fx"); (k1, "u1") ]);
  drive cluster ~deadline:(ms 8_000) ~settle_after:(ms 500);
  check Alcotest.bool "converged despite skew" true
    (Cluster.kv_converged cluster);
  check Alcotest.bool "merge stayed live" true (Cluster.merge_settled cluster);
  Cluster.check_convergence cluster;
  check Alcotest.int "no oracle violations" 0
    (Cluster.oracle_violations cluster);
  let v0 = fst (Kv.read (Cluster.kv cluster ~ring:0 ~node:1) ~key:k0) in
  let v1 = fst (Kv.read (Cluster.kv cluster ~ring:1 ~node:1) ~key:k1) in
  let applied = (v0 = Some "fx", v1 = Some "u1") in
  check Alcotest.bool "atomic under 100x skew" true
    (applied = (true, true) || applied = (false, false));
  check Alcotest.bool "merge consumed skip credits" true
    (Cluster.mcas_submitted cluster = 1)

(* ---------------- multi-ring load driver ---------------- *)

let mload_spec =
  {
    Load.default_spec with
    label = "mload-test";
    rings = 2;
    sessions_per_node = 20;
    n_groups = 8;
    ops_per_sec = 2_000.0;
    key_space = 64;
    mcas_permille = 40;
    sync_read_permille = 0;
    warmup_ns = ms 60;
    measure_ns = ms 200;
    drain_ns = ms 1_500;
    seed = 31L;
  }

let test_mload_smoke () =
  let r = Mload.run mload_spec in
  check Alcotest.int "no oracle violations" 0 r.Mload.oracle_violations;
  check Alcotest.bool "converged" true r.Mload.converged;
  check Alcotest.bool "merged traffic" true (r.Mload.merged_total > 0);
  check Alcotest.bool "both rings carried load" true
    (Array.for_all (fun c -> c > 0) r.Mload.per_ring_applied);
  check Alcotest.bool "mcas committed" true (r.Mload.mcas_commits > 0);
  check Alcotest.bool "write latency measured" true
    (Stats.count r.Mload.write_latency_us > 0);
  check Alcotest.int "queue drained" 0 r.Mload.queue_depth_end

let test_mload_deterministic () =
  let a = Mload.run mload_spec and b = Mload.run mload_spec in
  check Alcotest.int "offered equal" a.Mload.ops_offered b.Mload.ops_offered;
  check Alcotest.int "merged equal" a.Mload.merged_total b.Mload.merged_total;
  check Alcotest.int "mcas commits equal" a.Mload.mcas_commits
    b.Mload.mcas_commits;
  check Alcotest.int "end time equal" a.Mload.end_ns b.Mload.end_ns

(* Single-ring spec must be rejected by Mload only on bad dims, and
   Load must reject multi-ring specs. *)
let test_dispatch_guards () =
  Alcotest.check_raises "Load rejects rings=2"
    (Invalid_argument "Load.run: multi-ring specs run via Aring_multiring.Mload.run")
    (fun () -> ignore (Load.run { Load.default_spec with rings = 2 }));
  Alcotest.check_raises "Mload rejects churn"
    (Invalid_argument "Mload.run: churn unsupported") (fun () ->
      ignore
        (Mload.run
           {
             mload_spec with
             churn =
               Some
                 {
                   Load.mean_lifetime_ns = ms 50;
                   reconnect_delay_ns = ms 5;
                   storm = None;
                 };
           }))

let qtest = QCheck_alcotest.to_alcotest

let suite =
  [
    qtest prop_merge_deterministic;
    qtest prop_merge_fifo_complete;
    qtest prop_merge_single_ring_identity;
    ("merge blocks on silent ring", `Quick, test_merge_blocks_on_silent_ring);
    ("merge skips keep queue position", `Quick, test_merge_skip_queue_position);
    ("cluster smoke: identical merged streams", `Quick, test_cluster_smoke);
    ("mcas commit and abort", `Quick, test_cluster_mcas_commit_and_abort);
    ("mcas vs partition of one ring", `Quick, test_mcas_partition_one_ring);
    ( "mcas vs membership change between writes",
      `Quick,
      test_mcas_membership_change_between_writes );
    ("mcas vs 100x ring skew", `Quick, test_mcas_slow_ring_skew);
    ("mload smoke", `Quick, test_mload_smoke);
    ("mload deterministic", `Quick, test_mload_deterministic);
    ("dispatch guards", `Quick, test_dispatch_guards);
  ]
