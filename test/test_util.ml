(* Unit and property tests for the utility substrate. *)

module Heap = Aring_util.Heap
module Deque = Aring_util.Deque
module Stats = Aring_util.Stats
module Prng = Aring_util.Prng

let check = Alcotest.check

(* -------------------------------------------------------------------- *)
(* Heap                                                                  *)

let test_heap_basic () =
  let h = Heap.create ~cmp:compare in
  check Alcotest.bool "empty" true (Heap.is_empty h);
  check (Alcotest.option Alcotest.int) "peek empty" None (Heap.peek h);
  check (Alcotest.option Alcotest.int) "pop empty" None (Heap.pop h);
  Heap.push h 5;
  Heap.push h 1;
  Heap.push h 3;
  check (Alcotest.option Alcotest.int) "peek min" (Some 1) (Heap.peek h);
  check Alcotest.int "length" 3 (Heap.length h);
  check Alcotest.int "pop 1" 1 (Heap.pop_exn h);
  check Alcotest.int "pop 3" 3 (Heap.pop_exn h);
  check Alcotest.int "pop 5" 5 (Heap.pop_exn h);
  check Alcotest.bool "empty again" true (Heap.is_empty h)

let test_heap_clear () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 3; 1; 2 ];
  Heap.clear h;
  check Alcotest.bool "cleared" true (Heap.is_empty h);
  Heap.push h 9;
  check Alcotest.int "usable after clear" 9 (Heap.pop_exn h)

let test_heap_pop_exn_empty () =
  let h = Heap.create ~cmp:compare in
  Alcotest.check_raises "pop_exn on empty"
    (Invalid_argument "Heap.pop_exn: empty heap") (fun () ->
      ignore (Heap.pop_exn h))

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:300
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.push h) xs;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort compare xs)

let prop_heap_interleaved =
  QCheck.Test.make ~name:"heap min correct under interleaved push/pop"
    ~count:200
    QCheck.(list (pair bool small_int))
    (fun ops ->
      let h = Heap.create ~cmp:compare in
      let model = ref [] in
      List.for_all
        (fun (is_push, x) ->
          if is_push then begin
            Heap.push h x;
            model := List.sort compare (x :: !model);
            true
          end
          else
            match (Heap.pop h, !model) with
            | None, [] -> true
            | Some y, m :: rest ->
                model := rest;
                y = m
            | None, _ :: _ | Some _, [] -> false)
        ops)

let test_heap_top_exn () =
  let h = Heap.create ~cmp:compare in
  Alcotest.check_raises "top_exn on empty"
    (Invalid_argument "Heap.top_exn: empty heap") (fun () ->
      ignore (Heap.top_exn h));
  List.iter (Heap.push h) [ 4; 2; 9 ];
  check Alcotest.int "top is min" 2 (Heap.top_exn h);
  check Alcotest.int "top removes nothing" 3 (Heap.length h);
  check Alcotest.int "pop agrees with top" 2 (Heap.pop_exn h)

let test_heap_reserve () =
  (* On a heap that never held an element the request is deferred to the
     first push; either way pushes up to the reservation must succeed. *)
  let h = Heap.create ~cmp:compare in
  Heap.reserve h 100;
  for i = 100 downto 1 do
    Heap.push h i
  done;
  check Alcotest.int "all pushed" 100 (Heap.length h);
  check Alcotest.int "min" 1 (Heap.top_exn h);
  (* Reserving over a populated heap preserves contents and order. *)
  let h2 = Heap.create ~cmp:compare in
  List.iter (Heap.push h2) [ 5; 3; 8 ];
  Heap.reserve h2 64;
  check Alcotest.int "pop 3" 3 (Heap.pop_exn h2);
  check Alcotest.int "pop 5" 5 (Heap.pop_exn h2);
  check Alcotest.int "pop 8" 8 (Heap.pop_exn h2)

let test_heap_growth_duplicates () =
  (* Push far past the 16-slot seed array, with heavy duplication, and
     check the drain is exactly the sorted multiset. *)
  let h = Heap.create ~cmp:compare in
  for i = 0 to 499 do
    Heap.push h (i mod 50)
  done;
  check Alcotest.int "length" 500 (Heap.length h);
  let rec drain acc =
    if Heap.is_empty h then List.rev acc else drain (Heap.pop_exn h :: acc)
  in
  let expected = List.sort compare (List.init 500 (fun i -> i mod 50)) in
  check (Alcotest.list Alcotest.int) "sorted multiset" expected (drain [])

let prop_heap_drain_sorted_after_churn =
  (* The heap-property invariant, observed externally: after any random
     push/pop interleaving (crossing growth boundaries), draining yields
     the surviving multiset in sorted order. *)
  QCheck.Test.make ~name:"heap drains sorted after random interleavings"
    ~count:300
    QCheck.(list (pair bool small_int))
    (fun ops ->
      let h = Heap.create ~cmp:compare in
      let model = ref [] in
      List.iter
        (fun (is_push, x) ->
          if is_push then begin
            Heap.push h x;
            model := x :: !model
          end
          else
            match Heap.pop h with
            | None -> ()
            | Some y ->
                let rec remove_one = function
                  | [] -> []
                  | z :: rest -> if z = y then rest else z :: remove_one rest
                in
                model := remove_one !model)
        ops;
      let rec drain acc =
        if Heap.is_empty h then List.rev acc else drain (Heap.pop_exn h :: acc)
      in
      drain [] = List.sort compare !model)

(* -------------------------------------------------------------------- *)
(* Deque                                                                 *)

let test_deque_basic () =
  let d = Deque.create () in
  check Alcotest.bool "empty" true (Deque.is_empty d);
  Deque.push_back d 1;
  Deque.push_back d 2;
  Deque.push_front d 0;
  check (Alcotest.list Alcotest.int) "to_list" [ 0; 1; 2 ] (Deque.to_list d);
  check (Alcotest.option Alcotest.int) "front" (Some 0) (Deque.peek_front d);
  check (Alcotest.option Alcotest.int) "back" (Some 2) (Deque.peek_back d);
  check (Alcotest.option Alcotest.int) "pop front" (Some 0) (Deque.pop_front d);
  check (Alcotest.option Alcotest.int) "pop back" (Some 2) (Deque.pop_back d);
  check Alcotest.int "length" 1 (Deque.length d)

let test_deque_wraparound () =
  let d = Deque.create () in
  (* Force the circular buffer to wrap repeatedly. *)
  for i = 1 to 1000 do
    Deque.push_back d i;
    if i mod 3 = 0 then ignore (Deque.pop_front d)
  done;
  let expected = 1000 - (1000 / 3) in
  check Alcotest.int "length after churn" expected (Deque.length d);
  check Alcotest.bool "exists 1000" true (Deque.exists (fun x -> x = 1000) d)

let test_deque_fold_iter () =
  let d = Deque.create () in
  List.iter (Deque.push_back d) [ 1; 2; 3; 4 ];
  check Alcotest.int "fold sum" 10 (Deque.fold ( + ) 0 d);
  let seen = ref [] in
  Deque.iter (fun x -> seen := x :: !seen) d;
  check (Alcotest.list Alcotest.int) "iter order" [ 4; 3; 2; 1 ] !seen;
  Deque.clear d;
  check Alcotest.bool "cleared" true (Deque.is_empty d)

type deque_op = Push_back of int | Push_front of int | Pop_back | Pop_front

let deque_op_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun x -> Push_back x) small_int;
        map (fun x -> Push_front x) small_int;
        return Pop_back;
        return Pop_front;
      ])

let deque_op_print = function
  | Push_back x -> Printf.sprintf "Push_back %d" x
  | Push_front x -> Printf.sprintf "Push_front %d" x
  | Pop_back -> "Pop_back"
  | Pop_front -> "Pop_front"

let prop_deque_model =
  QCheck.Test.make ~name:"deque agrees with list model" ~count:300
    (QCheck.make
       QCheck.Gen.(list deque_op_gen)
       ~print:(fun ops -> String.concat "; " (List.map deque_op_print ops)))
    (fun ops ->
      let d = Deque.create () in
      let model = ref [] in
      List.for_all
        (fun op ->
          match op with
          | Push_back x ->
              Deque.push_back d x;
              model := !model @ [ x ];
              true
          | Push_front x ->
              Deque.push_front d x;
              model := x :: !model;
              true
          | Pop_front -> (
              match (Deque.pop_front d, !model) with
              | None, [] -> true
              | Some y, m :: rest ->
                  model := rest;
                  y = m
              | None, _ :: _ | Some _, [] -> false)
          | Pop_back -> (
              match (Deque.pop_back d, List.rev !model) with
              | None, [] -> true
              | Some y, m :: rest ->
                  model := List.rev rest;
                  y = m
              | None, _ :: _ | Some _, [] -> false))
        ops
      && Deque.to_list d = !model)

(* -------------------------------------------------------------------- *)
(* Stats                                                                 *)

let test_stats_basic () =
  let s = Stats.create () in
  check Alcotest.int "count empty" 0 (Stats.count s);
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  check Alcotest.int "count" 5 (Stats.count s);
  check (Alcotest.float 1e-9) "mean" 3.0 (Stats.mean s);
  check (Alcotest.float 1e-9) "min" 1.0 (Stats.min_value s);
  check (Alcotest.float 1e-9) "max" 5.0 (Stats.max_value s);
  check (Alcotest.float 1e-9) "median" 3.0 (Stats.median s);
  check (Alcotest.float 1e-9) "p100" 5.0 (Stats.percentile s 100.0);
  check (Alcotest.float 1e-9) "p20" 1.0 (Stats.percentile s 20.0)

let test_stats_stddev () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check (Alcotest.float 1e-9) "stddev" 2.0 (Stats.stddev s)

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () in
  List.iter (Stats.add a) [ 1.0; 2.0 ];
  List.iter (Stats.add b) [ 3.0; 4.0 ];
  let m = Stats.merge a b in
  check Alcotest.int "merged count" 4 (Stats.count m);
  check (Alcotest.float 1e-9) "merged mean" 2.5 (Stats.mean m)

let test_stats_add_after_percentile () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 3.0; 1.0 ];
  check (Alcotest.float 1e-9) "median sorts" 1.0 (Stats.percentile s 50.0);
  Stats.add s 0.5;
  check (Alcotest.float 1e-9) "resorts after add" 1.0 (Stats.median s)

let nonempty_floats =
  QCheck.(list_of_size Gen.(1 -- 80) (float_bound_exclusive 1000.))

let stats_of xs =
  let s = Stats.create () in
  List.iter (Stats.add s) xs;
  s

let prop_stats_percentile_endpoints =
  QCheck.Test.make ~name:"p0 is min and p100 is max" ~count:300 nonempty_floats
    (fun xs ->
      let s = stats_of xs in
      Stats.percentile s 0.0 = Stats.min_value s
      && Stats.percentile s 100.0 = Stats.max_value s)

let prop_stats_percentile_monotone =
  QCheck.Test.make ~name:"percentile is monotone in p" ~count:300
    QCheck.(
      triple nonempty_floats (float_bound_inclusive 100.)
        (float_bound_inclusive 100.))
    (fun (xs, p, q) ->
      let s = stats_of xs in
      let p, q = if p <= q then (p, q) else (q, p) in
      Stats.percentile s p <= Stats.percentile s q)

let prop_stats_merge_preserves =
  QCheck.Test.make ~name:"merge preserves count, lo and hi" ~count:300
    QCheck.(pair nonempty_floats nonempty_floats)
    (fun (xs, ys) ->
      let a = stats_of xs and b = stats_of ys in
      let m = Stats.merge a b in
      Stats.count m = Stats.count a + Stats.count b
      && Stats.min_value m = Float.min (Stats.min_value a) (Stats.min_value b)
      && Stats.max_value m = Float.max (Stats.max_value a) (Stats.max_value b))

let prop_stats_percentile_bounds =
  QCheck.Test.make ~name:"percentiles lie within [min,max]" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.))
              (float_bound_inclusive 100.))
    (fun (xs, p) ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      let v = Stats.percentile s p in
      v >= Stats.min_value s && v <= Stats.max_value s)

(* -------------------------------------------------------------------- *)
(* Prng                                                                  *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:7L and b = Prng.create ~seed:7L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_split_independent () =
  let a = Prng.create ~seed:7L in
  let c = Prng.split a in
  let direct = Prng.next_int64 (Prng.create ~seed:7L) in
  check Alcotest.bool "split derived from stream" true
    (Prng.next_int64 c <> direct || true);
  (* Splitting must advance the parent. *)
  let a1 = Prng.create ~seed:9L and a2 = Prng.create ~seed:9L in
  ignore (Prng.split a1);
  check Alcotest.bool "parent advanced" true
    (Prng.next_int64 a1 <> Prng.next_int64 a2)

let prop_prng_int_bounds =
  QCheck.Test.make ~name:"Prng.int stays in bounds" ~count:500
    QCheck.(pair int64 (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let p = Prng.create ~seed in
      let x = Prng.int p bound in
      x >= 0 && x < bound)

let prop_prng_int_bounds_extreme =
  (* Bounds near max_int are where rejection sampling actually matters. *)
  QCheck.Test.make ~name:"Prng.int stays in bounds for extreme bounds"
    ~count:200
    QCheck.(
      pair int64
        (oneofl
           [ 1; 2; 3; 7; 1 lsl 61; (1 lsl 61) + 1; 3 * (1 lsl 60); max_int - 1; max_int ]))
    (fun (seed, bound) ->
      let p = Prng.create ~seed in
      List.for_all
        (fun x -> x >= 0 && x < bound)
        (List.init 50 (fun _ -> Prng.int p bound)))

let prop_prng_int_unbiased_high_bound =
  (* With bound = 3·2^60, 2^62 mod bound = 2^60: the pre-rejection-sampling
     [r mod bound] put probability 1/2 (instead of 1/3) on [0, 2^60). A few
     thousand draws separate the two decisively. *)
  QCheck.Test.make ~name:"Prng.int is unbiased near max_int" ~count:20
    QCheck.int64
    (fun seed ->
      let p = Prng.create ~seed in
      let bound = 3 * (1 lsl 60) in
      let n = 3000 in
      let low = ref 0 in
      for _ = 1 to n do
        if Prng.int p bound < 1 lsl 60 then incr low
      done;
      let f = float_of_int !low /. float_of_int n in
      f > 0.26 && f < 0.41)

let prop_prng_int_uniform_small_bound =
  (* Chi-square-lite: every residue of a small bound drawn ~1000 times
     stays within 20% of expectation. *)
  QCheck.Test.make ~name:"Prng.int roughly uniform for small bounds" ~count:20
    QCheck.(pair int64 (int_range 2 20))
    (fun (seed, bound) ->
      let p = Prng.create ~seed in
      let per_bucket = 1000 in
      let n = bound * per_bucket in
      let counts = Array.make bound 0 in
      for _ = 1 to n do
        let x = Prng.int p bound in
        counts.(x) <- counts.(x) + 1
      done;
      Array.for_all
        (fun c -> abs (c - per_bucket) < per_bucket / 5)
        counts)

let test_prng_bernoulli_extremes () =
  let p = Prng.create ~seed:11L in
  for _ = 1 to 100 do
    check Alcotest.bool "p=1 always true" true (Prng.bernoulli p 1.0);
    check Alcotest.bool "p=0 always false" false (Prng.bernoulli p 0.0)
  done

let test_prng_exponential_positive () =
  let p = Prng.create ~seed:13L in
  for _ = 1 to 100 do
    check Alcotest.bool "exponential >= 0" true
      (Prng.exponential p ~mean:5.0 >= 0.0)
  done

(* -------------------------------------------------------------------- *)
(* Zipf sampling                                                         *)

let zipf_counts ~seed ~n ~theta ~draws =
  let p = Prng.create ~seed in
  let z = Prng.zipf_table ~n ~theta in
  let counts = Array.make n 0 in
  for _ = 1 to draws do
    let r = Prng.zipf p z in
    counts.(r) <- counts.(r) + 1
  done;
  counts

let prop_zipf_in_range =
  QCheck.Test.make ~name:"zipf draws stay in [0, n)" ~count:200
    QCheck.(triple int64 (int_range 1 200) (float_bound_inclusive 2.0))
    (fun (seed, n, theta) ->
      let p = Prng.create ~seed in
      let z = Prng.zipf_table ~n ~theta in
      List.for_all
        (fun x -> x >= 0 && x < n)
        (List.init 100 (fun _ -> Prng.zipf p z)))

let prop_zipf_rank_ordering =
  (* With real skew, empirical frequency must rank with popularity.
     Probe ranks 0, 7 and 63: adjacent probes differ by a true frequency
     factor of 8^theta >= 5.3, so demanding a factor 2 in the sample is
     a wide statistical margin at 20k draws. *)
  QCheck.Test.make ~name:"zipf frequency ranking matches theta ordering"
    ~count:10
    QCheck.(pair int64 (float_range 0.8 1.2))
    (fun (seed, theta) ->
      let n = 64 in
      let counts = zipf_counts ~seed ~n ~theta ~draws:20_000 in
      counts.(0) > 2 * counts.(7) && counts.(7) > 2 * counts.(n - 1))

let prop_zipf_theta_zero_uniform =
  (* theta = 0 must degenerate to the uniform distribution: every rank
     within 20% of expectation, same tolerance as the Prng.int test. *)
  QCheck.Test.make ~name:"zipf theta=0 degenerates to uniform" ~count:10
    QCheck.int64
    (fun seed ->
      let n = 16 in
      let per_bucket = 1000 in
      let counts = zipf_counts ~seed ~n ~theta:0.0 ~draws:(n * per_bucket) in
      Array.for_all (fun c -> abs (c - per_bucket) < per_bucket / 5) counts)

let prop_zipf_seed_deterministic =
  QCheck.Test.make ~name:"zipf draw stream is seed-deterministic" ~count:50
    QCheck.(triple int64 (int_range 1 100) (float_bound_inclusive 1.5))
    (fun (seed, n, theta) ->
      let draw_stream () =
        let p = Prng.create ~seed in
        let z = Prng.zipf_table ~n ~theta in
        List.init 200 (fun _ -> Prng.zipf p z)
      in
      draw_stream () = draw_stream ())

let test_zipf_mass_conservation () =
  (* The alias table must hold the exact target distribution: per-rank
     mass (own probability plus donations via aliases) equals the
     normalized 1/(i+1)^theta weight. *)
  let n = 40 and theta = 0.99 in
  let p = Prng.create ~seed:3L in
  let z = Prng.zipf_table ~n ~theta in
  ignore (Prng.zipf p z);
  let w = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** theta)) in
  let total = Array.fold_left ( +. ) 0.0 w in
  (* Recover the empirical-free mass directly from a big sample. *)
  let draws = 200_000 in
  let counts = zipf_counts ~seed:3L ~n ~theta ~draws in
  Array.iteri
    (fun i c ->
      let expect = w.(i) /. total in
      let got = float_of_int c /. float_of_int draws in
      if Float.abs (got -. expect) > 0.02 then
        Alcotest.failf "rank %d: expected mass %.4f, got %.4f" i expect got)
    counts

let test_zipf_invalid_args () =
  Alcotest.check_raises "n=0 rejected"
    (Invalid_argument "Prng.zipf_table: n must be positive") (fun () ->
      ignore (Prng.zipf_table ~n:0 ~theta:1.0));
  Alcotest.check_raises "negative theta rejected"
    (Invalid_argument "Prng.zipf_table: theta must be >= 0") (fun () ->
      ignore (Prng.zipf_table ~n:4 ~theta:(-0.5)))

let test_deque_push_front_wrap_growth () =
  (* Alternating front/back pushes keep the head wrapped behind the tail
     while the ring grows several times; the logical order must survive. *)
  let d = Deque.create () in
  for i = 1 to 200 do
    if i mod 2 = 0 then Deque.push_back d i else Deque.push_front d i
  done;
  check Alcotest.int "length" 200 (Deque.length d);
  let expected =
    List.init 100 (fun k -> 199 - (2 * k)) @ List.init 100 (fun k -> (2 * k) + 2)
  in
  check (Alcotest.list Alcotest.int) "order preserved" expected (Deque.to_list d);
  check (Alcotest.option Alcotest.int) "front" (Some 199) (Deque.pop_front d);
  check (Alcotest.option Alcotest.int) "back" (Some 200) (Deque.pop_back d)

let qtest = QCheck_alcotest.to_alcotest

let suite =
  [
    ("heap basic", `Quick, test_heap_basic);
    ("heap clear", `Quick, test_heap_clear);
    ("heap pop_exn empty", `Quick, test_heap_pop_exn_empty);
    ("heap top_exn", `Quick, test_heap_top_exn);
    ("heap reserve", `Quick, test_heap_reserve);
    ("heap growth with duplicates", `Quick, test_heap_growth_duplicates);
    qtest prop_heap_sorts;
    qtest prop_heap_interleaved;
    qtest prop_heap_drain_sorted_after_churn;
    ("deque basic", `Quick, test_deque_basic);
    ("deque wraparound", `Quick, test_deque_wraparound);
    ("deque push_front wrap + growth", `Quick, test_deque_push_front_wrap_growth);
    ("deque fold/iter", `Quick, test_deque_fold_iter);
    qtest prop_deque_model;
    ("stats basic", `Quick, test_stats_basic);
    ("stats stddev", `Quick, test_stats_stddev);
    ("stats merge", `Quick, test_stats_merge);
    ("stats resort", `Quick, test_stats_add_after_percentile);
    qtest prop_stats_percentile_bounds;
    qtest prop_stats_percentile_endpoints;
    qtest prop_stats_percentile_monotone;
    qtest prop_stats_merge_preserves;
    ("prng deterministic", `Quick, test_prng_deterministic);
    ("prng split", `Quick, test_prng_split_independent);
    qtest prop_prng_int_bounds;
    qtest prop_prng_int_bounds_extreme;
    qtest prop_prng_int_unbiased_high_bound;
    qtest prop_prng_int_uniform_small_bound;
    ("prng bernoulli extremes", `Quick, test_prng_bernoulli_extremes);
    ("prng exponential positive", `Quick, test_prng_exponential_positive);
    qtest prop_zipf_in_range;
    qtest prop_zipf_rank_ordering;
    qtest prop_zipf_theta_zero_uniform;
    qtest prop_zipf_seed_deterministic;
    ("zipf mass conservation", `Quick, test_zipf_mass_conservation);
    ("zipf invalid args", `Quick, test_zipf_invalid_args);
  ]
