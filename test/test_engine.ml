(* Ordering-engine tests: output structure of the accelerated and original
   protocols, duplicate/timer handling, flow control, retransmission
   recovery, Safe-delivery gating, and end-to-end total-order properties on
   the instant-delivery toy network. *)

open Aring_wire
open Aring_ring

let check = Alcotest.check

let rid : Types.ring_id = Toy_net.ring_id

let payload tag = Bytes.of_string (Printf.sprintf "m%04d" tag)

let tokens_of outputs =
  List.filter_map
    (function Engine.Send_token (p, t) -> Some (p, t) | _ -> None)
    outputs

let datas_of outputs =
  List.filter_map (function Engine.Send_data d -> Some d | _ -> None) outputs

let delivers_of outputs =
  List.filter_map (function Engine.Deliver d -> Some d | _ -> None) outputs

(* -------------------------------------------------------------------- *)
(* Output structure                                                      *)

(* The positions of sends relative to the token encode the acceleration. *)
let output_positions outputs =
  let rec loop i pre tok post = function
    | [] -> (List.rev pre, tok, List.rev post)
    | Engine.Send_data d :: rest ->
        if tok = None then loop (i + 1) (d :: pre) tok post rest
        else loop (i + 1) pre tok (d :: post) rest
    | Engine.Send_token _ :: rest -> loop (i + 1) pre (Some i) post rest
    | (Engine.Deliver _ | Engine.Set_timer _ | Engine.Token_lost) :: rest ->
        loop (i + 1) pre tok post rest
  in
  loop 0 [] None [] outputs

let test_accelerated_output_shape () =
  let params = Params.accelerated () in
  let eng = Engine.create ~params ~ring_id:rid ~ring:[| 0; 1 |] ~me:0 in
  for i = 1 to 30 do
    ignore (Engine.handle eng (Engine.Submit (Types.Agreed, payload i)))
  done;
  check Alcotest.int "pending" 30 (Engine.pending_count eng);
  let outputs = Engine.handle eng (Engine.Token_received (Engine.initial_token rid)) in
  let pre, tok_pos, post = output_positions outputs in
  check Alcotest.bool "token present" true (tok_pos <> None);
  (* accelerated_window = 20, so 30 - 20 = 10 messages go out pre-token. *)
  check Alcotest.int "pre-token sends" 10 (List.length pre);
  check Alcotest.int "post-token sends" 20 (List.length post);
  check Alcotest.bool "pre msgs flagged pre" true
    (List.for_all (fun (d : Message.data) -> not d.post_token) pre);
  check Alcotest.bool "post msgs flagged post" true
    (List.for_all (fun (d : Message.data) -> d.post_token) post);
  (* Sequence numbers are contiguous from 1 and split in order. *)
  check (Alcotest.list Alcotest.int) "seqs"
    (List.init 30 (fun i -> i + 1))
    (List.map (fun (d : Message.data) -> d.seq) (pre @ post));
  (* All 30 agreed messages self-deliver immediately. *)
  check Alcotest.int "deliveries" 30 (List.length (delivers_of outputs));
  let _, tok = List.hd (tokens_of outputs) in
  check Alcotest.int "token seq" 30 tok.t_seq;
  check Alcotest.int "token aru rides" 30 tok.aru;
  check (Alcotest.option Alcotest.int) "aru_id clear" None tok.aru_id;
  check Alcotest.int "fcc" 30 tok.fcc

let test_original_output_shape () =
  let eng =
    Engine.create ~params:Params.original ~ring_id:rid ~ring:[| 0; 1 |] ~me:0
  in
  for i = 1 to 30 do
    ignore (Engine.handle eng (Engine.Submit (Types.Agreed, payload i)))
  done;
  let outputs = Engine.handle eng (Engine.Token_received (Engine.initial_token rid)) in
  let pre, _, post = output_positions outputs in
  check Alcotest.int "all sends pre-token" 30 (List.length pre);
  check Alcotest.int "no post-token sends" 0 (List.length post);
  check Alcotest.bool "none flagged post" true
    (List.for_all (fun (d : Message.data) -> not d.post_token) pre)

let test_small_batch_all_post_token () =
  (* Fewer messages than the accelerated window: everything follows the
     token, so it leaves as early as possible. *)
  let params = Params.accelerated () in
  let eng = Engine.create ~params ~ring_id:rid ~ring:[| 0; 1 |] ~me:0 in
  for i = 1 to 5 do
    ignore (Engine.handle eng (Engine.Submit (Types.Agreed, payload i)))
  done;
  let outputs = Engine.handle eng (Engine.Token_received (Engine.initial_token rid)) in
  let pre, _, post = output_positions outputs in
  check Alcotest.int "no pre sends" 0 (List.length pre);
  check Alcotest.int "all post sends" 5 (List.length post)

let test_duplicate_token_ignored () =
  let params = Params.accelerated () in
  let eng = Engine.create ~params ~ring_id:rid ~ring:[| 0; 1 |] ~me:0 in
  let tok = Engine.initial_token rid in
  let first = Engine.handle eng (Engine.Token_received tok) in
  check Alcotest.bool "first accepted" true (tokens_of first <> []);
  let second = Engine.handle eng (Engine.Token_received tok) in
  check (Alcotest.list Alcotest.string) "duplicate produces nothing" []
    (List.map (fun _ -> "x") second);
  check Alcotest.int "dup counted" 1 (Engine.stats eng).dup_tokens

let test_foreign_ring_ignored () =
  let params = Params.accelerated () in
  let eng = Engine.create ~params ~ring_id:rid ~ring:[| 0; 1 |] ~me:0 in
  let foreign : Types.ring_id = { rep = 9; ring_seq = 99 } in
  let out = Engine.handle eng (Engine.Token_received (Engine.initial_token foreign)) in
  check Alcotest.int "foreign token ignored" 0 (List.length out);
  check Alcotest.int "round unchanged" 0 (Engine.round eng)

(* -------------------------------------------------------------------- *)
(* Token retransmission and loss timers                                  *)

let test_token_retransmit_then_evidence () =
  let params = Params.accelerated () in
  let eng = Engine.create ~params ~ring_id:rid ~ring:[| 0; 1 |] ~me:0 in
  let outputs = Engine.handle eng (Engine.Token_received (Engine.initial_token rid)) in
  let retrans_timer =
    List.find_map
      (function
        | Engine.Set_timer (Engine.Token_retransmit, g, _) -> Some g
        | _ -> None)
      outputs
  in
  let gen = Option.get retrans_timer in
  (* No progress observed: the timer fires and the token is re-sent. *)
  let fired = Engine.handle eng (Engine.Timer_expired (Engine.Token_retransmit, gen)) in
  check Alcotest.int "token re-sent" 1 (List.length (tokens_of fired));
  check Alcotest.int "retransmit counted" 1 (Engine.stats eng).token_retransmits;
  (* Evidence: data initiated by the successor in our round. *)
  let evidence : Message.data =
    {
      d_ring = rid;
      seq = 1;
      pid = 1;
      d_round = 1;
      post_token = false;
      service = Types.Agreed;
      payload = payload 0;
    }
  in
  ignore (Engine.handle eng (Engine.Data_received evidence));
  let stale = Engine.handle eng (Engine.Timer_expired (Engine.Token_retransmit, gen)) in
  check Alcotest.int "stale timer does nothing" 0 (List.length stale)

let test_token_loss_fires () =
  let params = Params.accelerated () in
  let eng = Engine.create ~params ~ring_id:rid ~ring:[| 0; 1 |] ~me:0 in
  let outputs = Engine.handle eng (Engine.Token_received (Engine.initial_token rid)) in
  let loss_gen =
    List.find_map
      (function
        | Engine.Set_timer (Engine.Token_loss, g, _) -> Some g | _ -> None)
      outputs
    |> Option.get
  in
  let fired = Engine.handle eng (Engine.Timer_expired (Engine.Token_loss, loss_gen)) in
  check Alcotest.bool "token lost reported" true
    (List.exists (function Engine.Token_lost -> true | _ -> false) fired);
  (* A stale loss timer (after a newer token) must not fire. *)
  let eng2 = Engine.create ~params ~ring_id:rid ~ring:[| 0; 1 |] ~me:0 in
  let out1 = Engine.handle eng2 (Engine.Token_received (Engine.initial_token rid)) in
  let gen1 =
    List.find_map
      (function
        | Engine.Set_timer (Engine.Token_loss, g, _) -> Some g | _ -> None)
      out1
    |> Option.get
  in
  let _, tok1 = List.hd (tokens_of out1) in
  ignore (Engine.handle eng2 (Engine.Token_received tok1));
  let stale = Engine.handle eng2 (Engine.Timer_expired (Engine.Token_loss, gen1)) in
  check Alcotest.int "stale loss timer ignored" 0 (List.length stale)

(* -------------------------------------------------------------------- *)
(* Safe-delivery gating: a two-participant hand-driven scenario          *)

let test_safe_gating_two_engines () =
  let params = Params.accelerated () in
  let a = Engine.create ~params ~ring_id:rid ~ring:[| 0; 1 |] ~me:0 in
  let b = Engine.create ~params ~ring_id:rid ~ring:[| 0; 1 |] ~me:1 in
  ignore (Engine.handle a (Engine.Submit (Types.Safe, payload 1)));
  (* Round 1 at A: the message is sequenced but cannot be Safe-delivered. *)
  let out_a1 = Engine.handle a (Engine.Token_received (Engine.initial_token rid)) in
  check Alcotest.int "A: no delivery in round 1" 0 (List.length (delivers_of out_a1));
  let m1 = List.hd (datas_of out_a1) in
  check Alcotest.bool "message is safe" true (Types.service_equal m1.service Types.Safe);
  let _, tok1 = List.hd (tokens_of out_a1) in
  check Alcotest.int "token aru rides to 1" 1 tok1.aru;
  (* B processes the data then the token. Still no delivery at B: its safe
     line is min(sent this round, sent last round) = min(1, 0) = 0. *)
  let out_b_data = Engine.handle b (Engine.Data_received m1) in
  check Alcotest.int "B: data alone delivers nothing" 0 (List.length (delivers_of out_b_data));
  let out_b1 = Engine.handle b (Engine.Token_received tok1) in
  check Alcotest.int "B: no delivery in round 1" 0 (List.length (delivers_of out_b1));
  let _, tok2 = List.hd (tokens_of out_b1) in
  (* Round 2 at A: aru was 1 on both the token A sent in round 1 and the
     one it sends now, so seq 1 becomes stable and is delivered. *)
  let out_a2 = Engine.handle a (Engine.Token_received tok2) in
  let delivered = delivers_of out_a2 in
  check Alcotest.int "A delivers in round 2" 1 (List.length delivered);
  check Alcotest.int "A delivers seq 1" 1 (List.hd delivered).seq;
  check Alcotest.int "A safe line" 1 (Engine.safe_line a);
  (* And B delivers on its round-2 token. *)
  let _, tok3 = List.hd (tokens_of out_a2) in
  let out_b2 = Engine.handle b (Engine.Token_received tok3) in
  check Alcotest.int "B delivers in round 2" 1 (List.length (delivers_of out_b2))

let test_agreed_blocked_behind_safe () =
  (* An agreed message sequenced after an unstable safe message must wait
     for it, preserving the single total order. *)
  let params = Params.accelerated () in
  let a = Engine.create ~params ~ring_id:rid ~ring:[| 0; 1 |] ~me:0 in
  ignore (Engine.handle a (Engine.Submit (Types.Safe, payload 1)));
  ignore (Engine.handle a (Engine.Submit (Types.Agreed, payload 2)));
  let out1 = Engine.handle a (Engine.Token_received (Engine.initial_token rid)) in
  check Alcotest.int "nothing delivered while safe pending" 0
    (List.length (delivers_of out1));
  check Alcotest.int "cursor stuck before safe msg" 0 (Engine.delivered_upto a)

let test_agreed_held_behind_lost_safe () =
  (* The holdback under loss: a Safe message is lost on the way to B, the
     Agreed messages sequenced after it arrive fine, and B must hold them
     — first for the gap, then (once the retransmission fills the gap) for
     the safe line — and finally deliver all three in order. *)
  let params = Params.accelerated () in
  let a = Engine.create ~params ~ring_id:rid ~ring:[| 0; 1 |] ~me:0 in
  let b = Engine.create ~params ~ring_id:rid ~ring:[| 0; 1 |] ~me:1 in
  ignore (Engine.handle a (Engine.Submit (Types.Safe, payload 1)));
  ignore (Engine.handle a (Engine.Submit (Types.Agreed, payload 2)));
  ignore (Engine.handle a (Engine.Submit (Types.Agreed, payload 3)));
  let out_a1 = Engine.handle a (Engine.Token_received (Engine.initial_token rid)) in
  let sent = datas_of out_a1 in
  check Alcotest.int "A multicast three messages" 3 (List.length sent);
  (* Seq 1 (the Safe message) is lost; the Agreed ones behind it arrive. *)
  List.iter
    (fun (m : Message.data) ->
      if m.seq > 1 then begin
        let out = Engine.handle b (Engine.Data_received m) in
        check Alcotest.int "B holds the out-of-order agreed" 0
          (List.length (delivers_of out))
      end)
    sent;
  check Alcotest.int "B delivered nothing behind the gap" 0
    (Engine.delivered_upto b);
  (* Tokens circulate: B lowers the aru, requests seq 1 once its cap
     allows, and A retransmits — exactly the rtr flow. *)
  let _, tok1 = List.hd (tokens_of out_a1) in
  let out_b1 = Engine.handle b (Engine.Token_received tok1) in
  let _, tok2 = List.hd (tokens_of out_b1) in
  let out_a2 = Engine.handle a (Engine.Token_received tok2) in
  let _, tok3 = List.hd (tokens_of out_a2) in
  let out_b2 = Engine.handle b (Engine.Token_received tok3) in
  let _, tok4 = List.hd (tokens_of out_b2) in
  check (Alcotest.list Alcotest.int) "B requests the lost safe" [ 1 ] tok4.rtr;
  let out_a3 = Engine.handle a (Engine.Token_received tok4) in
  let retrans = datas_of out_a3 in
  check Alcotest.int "A retransmits seq 1" 1 (List.length retrans);
  let out_b_fill = Engine.handle b (Engine.Data_received (List.hd retrans)) in
  (* B now holds the complete prefix — but seq 1 is Safe and the safe line
     has not advanced, so the Agreed messages behind it stay held. *)
  check Alcotest.int "B has everything" 3 (Engine.local_aru b);
  check Alcotest.int "gap fill delivers nothing (safe holdback)" 0
    (List.length (delivers_of out_b_fill));
  check Alcotest.int "cursor still before the safe message" 0
    (Engine.delivered_upto b);
  check Alcotest.int "safe line still zero" 0 (Engine.safe_line b);
  (* Two more full rotations let the all-received aru stabilise; only then
     does the safe line advance and delivery resumes, in order. *)
  let _, tok5 = List.hd (tokens_of out_a3) in
  let out_b3 = Engine.handle b (Engine.Token_received tok5) in
  check Alcotest.int "B still held before stability" 0
    (List.length (delivers_of out_b3));
  let _, tok6 = List.hd (tokens_of out_b3) in
  let out_a4 = Engine.handle a (Engine.Token_received tok6) in
  let _, tok7 = List.hd (tokens_of out_a4) in
  let out_b4 = Engine.handle b (Engine.Token_received tok7) in
  let delivered = delivers_of out_b4 in
  check (Alcotest.list Alcotest.int) "B delivers the full prefix in order"
    [ 1; 2; 3 ]
    (List.map (fun (m : Message.data) -> m.seq) delivered);
  (match delivered with
  | first :: rest ->
      check Alcotest.bool "head of the release is the safe message" true
        (Types.service_equal first.service Types.Safe);
      List.iter
        (fun (m : Message.data) ->
          check Alcotest.bool "rest are the agreed messages" true
            (Types.service_equal m.service Types.Agreed))
        rest
  | [] -> Alcotest.fail "no deliveries");
  check Alcotest.int "safe line advanced" 3 (Engine.safe_line b);
  check Alcotest.int "cursor caught up" 3 (Engine.delivered_upto b)

(* -------------------------------------------------------------------- *)
(* Retransmission via the rtr list (hand-driven loss)                    *)

let test_rtr_recovery_two_engines () =
  let params = Params.accelerated () in
  let a = Engine.create ~params ~ring_id:rid ~ring:[| 0; 1 |] ~me:0 in
  let b = Engine.create ~params ~ring_id:rid ~ring:[| 0; 1 |] ~me:1 in
  ignore (Engine.handle a (Engine.Submit (Types.Agreed, payload 1)));
  let out_a1 = Engine.handle a (Engine.Token_received (Engine.initial_token rid)) in
  check Alcotest.int "A multicast one message" 1 (List.length (datas_of out_a1));
  let _, tok1 = List.hd (tokens_of out_a1) in
  (* The message is LOST on the way to B. B handles the token without it. The rtr
     cap is the seq of the token B received in the previous round (0), so B
     must NOT request seq 1 yet — it may still be in A's post-token phase. *)
  let out_b1 = Engine.handle b (Engine.Token_received tok1) in
  let _, tok2 = List.hd (tokens_of out_b1) in
  check (Alcotest.list Alcotest.int) "no premature request" [] tok2.rtr;
  check Alcotest.int "B lowered aru" 0 tok2.aru;
  check (Alcotest.option Alcotest.int) "B is aru holder" (Some 1) tok2.aru_id;
  (* Round 2: now B's cap is 1, so it requests seq 1. *)
  let out_a2 = Engine.handle a (Engine.Token_received tok2) in
  let _, tok3 = List.hd (tokens_of out_a2) in
  let out_b2 = Engine.handle b (Engine.Token_received tok3) in
  let _, tok4 = List.hd (tokens_of out_b2) in
  check (Alcotest.list Alcotest.int) "B requests seq 1" [ 1 ] tok4.rtr;
  check Alcotest.int "request counted" 1 (Engine.stats b).rtr_requested;
  (* Round 3: A answers the request pre-token; B finally delivers. *)
  let out_a3 = Engine.handle a (Engine.Token_received tok4) in
  let retrans = datas_of out_a3 in
  check Alcotest.int "A retransmits seq 1" 1 (List.length retrans);
  check Alcotest.int "retransmission is seq 1" 1 (List.hd retrans).seq;
  check Alcotest.int "retrans counted" 1 (Engine.stats a).retrans_sent;
  let _, tok5 = List.hd (tokens_of out_a3) in
  check (Alcotest.list Alcotest.int) "request cleared" [] tok5.rtr;
  ignore (Engine.handle b (Engine.Data_received (List.hd retrans)));
  check Alcotest.int "B received it" 1 (Engine.local_aru b);
  check Alcotest.int "B delivered it" 1 (Engine.delivered_upto b)

(* -------------------------------------------------------------------- *)
(* Toy-network end-to-end properties                                     *)

let check_total_order net =
  let n = Toy_net.size net in
  let lists = List.init n (fun i -> Toy_net.delivered_seqs net i) in
  (* Same total order: every delivery list is a prefix of the longest. *)
  let longest =
    List.fold_left (fun a l -> if List.length l > List.length a then l else a)
      [] lists
  in
  List.iteri
    (fun i l ->
      let rec is_prefix p full =
        match (p, full) with
        | [], _ -> true
        | x :: p', y :: full' -> x = y && is_prefix p' full'
        | _ :: _, [] -> false
      in
      if not (is_prefix l longest) then
        Alcotest.failf "node %d delivery order diverges" i)
    lists;
  (* No gaps, no duplicates: each list is 1..k. *)
  List.iteri
    (fun i l ->
      List.iteri
        (fun idx seq ->
          if seq <> idx + 1 then
            Alcotest.failf "node %d delivered seq %d at position %d" i seq idx)
        l)
    lists

let run_cluster ~params ~n ~per_node ~service ~steps ?(data_loss = 0.0) ?seed ()
    =
  let net = Toy_net.create ?seed ~data_loss ~params n in
  for node = 0 to n - 1 do
    for i = 1 to per_node do
      Toy_net.submit net node service (payload ((node * 1000) + i))
    done
  done;
  Toy_net.run net ~steps;
  net

let test_cluster_agreed_all_delivered () =
  let net =
    run_cluster ~params:(Params.accelerated ()) ~n:4 ~per_node:50
      ~service:Types.Agreed ~steps:20_000 ()
  in
  check_total_order net;
  for i = 0 to 3 do
    check Alcotest.int
      (Printf.sprintf "node %d delivered all" i)
      200
      (List.length (Toy_net.delivered_seqs net i))
  done

let test_cluster_safe_all_delivered () =
  let net =
    run_cluster ~params:(Params.accelerated ()) ~n:4 ~per_node:50
      ~service:Types.Safe ~steps:20_000 ()
  in
  check_total_order net;
  for i = 0 to 3 do
    check Alcotest.int
      (Printf.sprintf "node %d delivered all safe" i)
      200
      (List.length (Toy_net.delivered_seqs net i))
  done

let test_cluster_original_protocol () =
  let net =
    run_cluster ~params:Params.original ~n:4 ~per_node:50 ~service:Types.Agreed
      ~steps:20_000 ()
  in
  check_total_order net;
  for i = 0 to 3 do
    check Alcotest.int
      (Printf.sprintf "node %d delivered all" i)
      200
      (List.length (Toy_net.delivered_seqs net i))
  done

let test_cluster_mixed_services () =
  let params = Params.accelerated () in
  let net = Toy_net.create ~params 4 in
  for node = 0 to 3 do
    for i = 1 to 25 do
      let service = if i mod 2 = 0 then Types.Safe else Types.Agreed in
      Toy_net.submit net node service (payload ((node * 1000) + i))
    done
  done;
  Toy_net.run net ~steps:20_000;
  check_total_order net;
  for i = 0 to 3 do
    check Alcotest.int
      (Printf.sprintf "node %d mixed delivered" i)
      100
      (List.length (Toy_net.delivered_seqs net i))
  done

let test_single_node_ring () =
  let net = run_cluster ~params:(Params.accelerated ()) ~n:1 ~per_node:30
      ~service:Types.Safe ~steps:2_000 ()
  in
  check Alcotest.int "self-ring delivers everything" 30
    (List.length (Toy_net.delivered_seqs net 0))

let test_lossy_cluster_recovers () =
  let net =
    run_cluster ~params:(Params.accelerated ()) ~n:4 ~per_node:30
      ~service:Types.Agreed ~steps:200_000 ~data_loss:0.2 ~seed:7L ()
  in
  check_total_order net;
  for i = 0 to 3 do
    check Alcotest.int
      (Printf.sprintf "node %d recovered all" i)
      120
      (List.length (Toy_net.delivered_seqs net i))
  done;
  let total_retrans =
    List.init 4 (fun i -> (Engine.stats (Toy_net.engine net i)).retrans_sent)
    |> List.fold_left ( + ) 0
  in
  check Alcotest.bool "loss forced retransmissions" true (total_retrans > 0)

let test_personal_window_respected () =
  let params = Params.accelerated ~personal_window:5 ~accelerated_window:5 () in
  let net = Toy_net.create ~params 2 in
  for i = 1 to 60 do
    Toy_net.submit net 0 Types.Agreed (payload i)
  done;
  Toy_net.run net ~steps:10_000;
  let eng = Toy_net.engine net 0 in
  let s = Engine.stats eng in
  check Alcotest.int "all sent eventually" 60 s.new_sent;
  check Alcotest.bool "personal window bounds per-round sends" true
    (s.new_sent <= 5 * s.rounds);
  (* 60 messages at 5 per round need at least 12 rounds. *)
  check Alcotest.bool "needed many rounds" true (s.rounds >= 12)

let test_global_window_bounds_total () =
  let params =
    Params.accelerated ~personal_window:10 ~global_window:10
      ~accelerated_window:5 ()
  in
  let net = Toy_net.create ~params 4 in
  for node = 0 to 3 do
    for i = 1 to 40 do
      Toy_net.submit net node Types.Agreed (payload ((node * 1000) + i))
    done
  done;
  Toy_net.run net ~steps:60_000;
  check_total_order net;
  let rounds =
    List.init 4 (fun i -> (Engine.stats (Toy_net.engine net i)).rounds)
    |> List.fold_left max 0
  in
  let total_new =
    List.init 4 (fun i -> (Engine.stats (Toy_net.engine net i)).new_sent)
    |> List.fold_left ( + ) 0
  in
  check Alcotest.int "all eventually sent" 160 total_new;
  check Alcotest.bool "global window bounds aggregate rate" true
    (total_new <= 10 * (rounds + 1))

let test_max_seq_gap_stalls_sequencing () =
  (* Node 3 never receives data: its aru pins the global aru at 0, so the
     token's seq must never run more than max_seq_gap ahead. *)
  let params =
    Params.accelerated ~personal_window:10 ~global_window:20
      ~accelerated_window:5 ()
  in
  let params = { params with Params.max_seq_gap = 20 } in
  let drop ~src:_ ~dst (_ : Message.data) = dst = 3 in
  let net = Toy_net.create ~drop ~params 4 in
  for node = 0 to 2 do
    for i = 1 to 100 do
      Toy_net.submit net node Types.Agreed (payload ((node * 1000) + i))
    done
  done;
  Toy_net.run net ~steps:50_000;
  for i = 0 to 3 do
    check Alcotest.bool
      (Printf.sprintf "node %d seq capped by gap" i)
      true
      (Engine.high_seq (Toy_net.engine net i) <= 20)
  done

(* -------------------------------------------------------------------- *)
(* Priority policy unit tests                                            *)

let data_from ~pid ~round ~post : Message.data =
  {
    d_ring = rid;
    seq = 1;
    pid;
    d_round = round;
    post_token = post;
    service = Types.Agreed;
    payload = Bytes.empty;
  }

let test_priority_method_aggressive () =
  let p = Priority.create Params.Aggressive in
  check Alcotest.bool "initially data-high" false (Priority.token_has_priority p);
  (* Wrong sender: no switch. *)
  Priority.note_data_processed p ~predecessor:2 ~current_round:5
    (data_from ~pid:1 ~round:6 ~post:false);
  check Alcotest.bool "other sender ignored" false (Priority.token_has_priority p);
  (* Same round: no switch. *)
  Priority.note_data_processed p ~predecessor:2 ~current_round:5
    (data_from ~pid:2 ~round:5 ~post:false);
  check Alcotest.bool "same round ignored" false (Priority.token_has_priority p);
  (* Predecessor, next round, pre-token: method 1 switches. *)
  Priority.note_data_processed p ~predecessor:2 ~current_round:5
    (data_from ~pid:2 ~round:6 ~post:false);
  check Alcotest.bool "switched" true (Priority.token_has_priority p);
  Priority.note_token_processed p;
  check Alcotest.bool "reset after token" false (Priority.token_has_priority p)

let test_priority_method_conservative () =
  let p = Priority.create Params.Conservative in
  (* Pre-token next-round data does NOT switch under method 2. *)
  Priority.note_data_processed p ~predecessor:2 ~current_round:5
    (data_from ~pid:2 ~round:6 ~post:false);
  check Alcotest.bool "pre-token data ignored" false (Priority.token_has_priority p);
  (* Post-token next-round data does. *)
  Priority.note_data_processed p ~predecessor:2 ~current_round:5
    (data_from ~pid:2 ~round:6 ~post:true);
  check Alcotest.bool "post-token data switches" true (Priority.token_has_priority p)

(* -------------------------------------------------------------------- *)
(* Property tests                                                        *)

let prop_total_order_under_loss =
  QCheck.Test.make ~name:"total order holds under random loss" ~count:25
    QCheck.(
      triple (int_range 2 6) (float_bound_inclusive 0.3) (int_range 1 1000))
    (fun (n, loss, seed) ->
      let params = Params.accelerated () in
      let net =
        Toy_net.create ~data_loss:loss ~seed:(Int64.of_int seed) ~params n
      in
      for node = 0 to n - 1 do
        for i = 1 to 20 do
          Toy_net.submit net node Types.Agreed (payload ((node * 1000) + i))
        done
      done;
      Toy_net.run net ~steps:150_000;
      let lists = List.init n (fun i -> Toy_net.delivered_seqs net i) in
      (* Everything recovered (token survives, so rtr heals all loss)... *)
      List.for_all (fun l -> List.length l = 20 * n) lists
      (* ...and the order is the same 1..k everywhere. *)
      && List.for_all (fun l -> l = List.init (20 * n) (fun i -> i + 1)) lists)

let prop_safe_never_outruns_stability =
  QCheck.Test.make ~name:"safe delivery never outruns the aru line" ~count:25
    QCheck.(pair (int_range 2 5) (int_range 1 1000))
    (fun (n, seed) ->
      let params = Params.accelerated () in
      let net = Toy_net.create ~seed:(Int64.of_int seed) ~params n in
      for node = 0 to n - 1 do
        for i = 1 to 15 do
          Toy_net.submit net node Types.Safe (payload i)
        done
      done;
      Toy_net.run net ~steps:100_000;
      List.init n (fun i -> i)
      |> List.for_all (fun i ->
             let eng = Toy_net.engine net i in
             (* After the run, every delivered safe message is at or below
                the stability line the engine established. *)
             Engine.delivered_upto eng <= Engine.safe_line eng
             && List.length (Toy_net.delivered_seqs net i) = 15 * n))

let prop_both_protocols_agree =
  QCheck.Test.make ~name:"original and accelerated deliver identical orders"
    ~count:15
    QCheck.(int_range 1 500)
    (fun seed ->
      let run params =
        let net =
          Toy_net.create ~seed:(Int64.of_int seed) ~params 3
        in
        for node = 0 to 2 do
          for i = 1 to 20 do
            Toy_net.submit net node Types.Agreed (payload ((node * 100) + i))
          done
        done;
        Toy_net.run net ~steps:50_000;
        List.init 3 (fun i ->
            List.map
              (fun d -> (d.Toy_net.from, Bytes.to_string d.Toy_net.payload))
              (Toy_net.deliveries net i))
      in
      let acc = run (Params.accelerated ()) in
      let orig = run Params.original in
      (* Both runs deliver all 60 messages consistently within themselves.
         (The two protocols need not produce the same interleaving as each
         other — only internal agreement is required.) *)
      let self_consistent lists =
        match lists with
        | [] -> true
        | first :: rest -> List.for_all (fun l -> l = first) rest
      in
      self_consistent acc && self_consistent orig
      && List.for_all (fun l -> List.length l = 60) acc
      && List.for_all (fun l -> List.length l = 60) orig)


(* -------------------------------------------------------------------- *)
(* Additional engine behaviours                                          *)

let test_fcc_decays_when_idle () =
  (* fcc counts last round's multicasts; once the burst is over it must
     return to zero so flow control frees the window again. *)
  let params = Params.accelerated () in
  let net = Toy_net.create ~params 2 in
  for i = 1 to 30 do
    Toy_net.submit net 0 Types.Agreed (payload i)
  done;
  Toy_net.run net ~steps:2_000;
  (* Run plenty of idle rounds after the burst; the last tokens observed
     must carry fcc = 0. We observe it indirectly: a fresh burst is again
    admitted at full personal-window rate. *)
  for i = 31 to 60 do
    Toy_net.submit net 0 Types.Agreed (payload i)
  done;
  Toy_net.run net ~steps:4_000;
  check Alcotest.int "all 60 delivered at node 1" 60
    (List.length (Toy_net.delivered_seqs net 1))

let test_gc_discards_stable_messages () =
  let params = Params.accelerated () in
  let net = Toy_net.create ~params 3 in
  for i = 1 to 100 do
    Toy_net.submit net (i mod 3) Types.Safe (payload i)
  done;
  Toy_net.run net ~steps:20_000;
  for i = 0 to 2 do
    let eng = Toy_net.engine net i in
    check Alcotest.int (Printf.sprintf "node %d delivered" i) 100
      (Engine.delivered_upto eng);
    (* Everything delivered and stable: buffers must be garbage collected. *)
    check Alcotest.int (Printf.sprintf "node %d buffer emptied" i) 0
      (Engine.buffered_count eng)
  done

let test_fifo_causal_behave_like_agreed () =
  let params = Params.accelerated () in
  let net = Toy_net.create ~params 3 in
  List.iteri
    (fun i service ->
      Toy_net.submit net (i mod 3) service (payload i))
    [ Types.Fifo; Types.Causal; Types.Agreed; Types.Fifo; Types.Causal ];
  Toy_net.run net ~steps:5_000;
  for i = 0 to 2 do
    check Alcotest.int
      (Printf.sprintf "node %d delivered all services" i)
      5
      (List.length (Toy_net.delivered_seqs net i))
  done;
  check_total_order net

let test_drain_pending () =
  let eng =
    Engine.create ~params:(Params.accelerated ()) ~ring_id:rid ~ring:[| 0; 1 |]
      ~me:0
  in
  ignore (Engine.handle eng (Engine.Submit (Types.Agreed, payload 1)));
  ignore (Engine.handle eng (Engine.Submit (Types.Safe, payload 2)));
  check Alcotest.int "two pending" 2 (Engine.pending_count eng);
  let drained = Engine.drain_pending eng in
  check Alcotest.int "drained both" 2 (List.length drained);
  check Alcotest.int "now empty" 0 (Engine.pending_count eng);
  (match drained with
  | [ (s1, p1); (s2, p2) ] ->
      check Alcotest.bool "order and content kept" true
        (Types.service_equal s1 Types.Agreed
        && Types.service_equal s2 Types.Safe
        && Bytes.equal p1 (payload 1)
        && Bytes.equal p2 (payload 2))
  | _ -> Alcotest.fail "wrong drain shape")

let test_aru_id_set_and_cleared () =
  (* When a participant lowers the aru it must stamp itself as aru_id, and
     clear it once it has caught back up to the token seq. *)
  let params = Params.accelerated () in
  let a = Engine.create ~params ~ring_id:rid ~ring:[| 0; 1 |] ~me:0 in
  let b = Engine.create ~params ~ring_id:rid ~ring:[| 0; 1 |] ~me:1 in
  ignore (Engine.handle a (Engine.Submit (Types.Agreed, payload 1)));
  let out_a1 = Engine.handle a (Engine.Token_received (Engine.initial_token rid)) in
  let m1 = List.hd (datas_of out_a1) in
  let _, tok1 = List.hd (tokens_of out_a1) in
  (* B misses m1: lowers and stamps itself. *)
  let out_b1 = Engine.handle b (Engine.Token_received tok1) in
  let _, tok2 = List.hd (tokens_of out_b1) in
  check (Alcotest.option Alcotest.int) "B stamped" (Some 1) tok2.aru_id;
  (* B then receives m1 late; on its next token it may raise the aru back
     to the seq and clear the stamp. *)
  ignore (Engine.handle b (Engine.Data_received m1));
  let out_a2 = Engine.handle a (Engine.Token_received tok2) in
  let _, tok3 = List.hd (tokens_of out_a2) in
  let out_b2 = Engine.handle b (Engine.Token_received tok3) in
  let _, tok4 = List.hd (tokens_of out_b2) in
  check Alcotest.int "aru raised" 1 tok4.aru;
  check (Alcotest.option Alcotest.int) "stamp cleared" None tok4.aru_id

let test_deliveries_strictly_ascending () =
  let params = Params.accelerated () in
  let net = Toy_net.create ~data_loss:0.15 ~seed:3L ~params 4 in
  for node = 0 to 3 do
    for i = 1 to 25 do
      let service = if i mod 3 = 0 then Types.Safe else Types.Agreed in
      Toy_net.submit net node service (payload ((node * 100) + i))
    done
  done;
  Toy_net.run net ~steps:100_000;
  for i = 0 to 3 do
    let seqs = Toy_net.delivered_seqs net i in
    let rec ascending = function
      | a :: (b :: _ as rest) -> a < b && ascending rest
      | [ _ ] | [] -> true
    in
    check Alcotest.bool (Printf.sprintf "node %d ascending" i) true
      (ascending seqs)
  done


let prop_total_order_any_windows =
  QCheck.Test.make ~name:"total order holds for any valid window settings"
    ~count:20
    QCheck.(
      quad (int_range 1 80) (int_range 0 80) (int_range 2 5) (int_range 1 999))
    (fun (pw, aw, n, seed) ->
      let aw = min aw pw in
      let params =
        Params.accelerated ~personal_window:pw ~global_window:(8 * pw)
          ~accelerated_window:aw ()
      in
      let net = Toy_net.create ~seed:(Int64.of_int seed) ~params n in
      for node = 0 to n - 1 do
        for i = 1 to 15 do
          Toy_net.submit net node Types.Agreed (payload ((node * 100) + i))
        done
      done;
      Toy_net.run net ~steps:100_000;
      let expected = List.init (15 * n) (fun i -> i + 1) in
      List.for_all
        (fun i -> Toy_net.delivered_seqs net i = expected)
        (List.init n (fun i -> i)))

let qtest = QCheck_alcotest.to_alcotest

let suite =
  [
    ("accelerated output shape", `Quick, test_accelerated_output_shape);
    ("original output shape", `Quick, test_original_output_shape);
    ("small batch all post-token", `Quick, test_small_batch_all_post_token);
    ("duplicate token ignored", `Quick, test_duplicate_token_ignored);
    ("foreign ring ignored", `Quick, test_foreign_ring_ignored);
    ("token retransmit + evidence", `Quick, test_token_retransmit_then_evidence);
    ("token loss timer", `Quick, test_token_loss_fires);
    ("safe gating (2 engines)", `Quick, test_safe_gating_two_engines);
    ("agreed blocked behind safe", `Quick, test_agreed_blocked_behind_safe);
    ("agreed held behind lost safe", `Quick, test_agreed_held_behind_lost_safe);
    ("rtr recovery (2 engines)", `Quick, test_rtr_recovery_two_engines);
    ("cluster agreed", `Quick, test_cluster_agreed_all_delivered);
    ("cluster safe", `Quick, test_cluster_safe_all_delivered);
    ("cluster original protocol", `Quick, test_cluster_original_protocol);
    ("cluster mixed services", `Quick, test_cluster_mixed_services);
    ("single-node ring", `Quick, test_single_node_ring);
    ("lossy cluster recovers", `Slow, test_lossy_cluster_recovers);
    ("personal window respected", `Quick, test_personal_window_respected);
    ("global window bounds total", `Quick, test_global_window_bounds_total);
    ("max_seq_gap stalls sequencing", `Quick, test_max_seq_gap_stalls_sequencing);
    ("priority method 1", `Quick, test_priority_method_aggressive);
    ("priority method 2", `Quick, test_priority_method_conservative);
    ("fcc decays when idle", `Quick, test_fcc_decays_when_idle);
    ("gc discards stable messages", `Quick, test_gc_discards_stable_messages);
    ("fifo/causal behave like agreed", `Quick, test_fifo_causal_behave_like_agreed);
    ("drain_pending", `Quick, test_drain_pending);
    ("aru_id set and cleared", `Quick, test_aru_id_set_and_cleared);
    ("deliveries strictly ascending", `Quick, test_deliveries_strictly_ascending);
    qtest prop_total_order_under_loss;
    qtest prop_safe_never_outruns_stability;
    qtest prop_both_protocols_agree;
    qtest prop_total_order_any_windows;
  ]
