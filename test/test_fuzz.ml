(* Tests for the deterministic simulation fuzzer: schedule generation and
   serialization, runner determinism (the Netsim regression test — equal
   seeds must produce bit-equal trace streams), seeded-bug detection with
   shrinking, and replay of the committed corpus. *)

open Aring_fuzz

(* A small hand-built schedule with both fault kinds that exercise the
   drop predicate; converges in well under a simulated second. *)
let small_schedule seed =
  {
    Schedule.seed;
    config =
      {
        Schedule.n_nodes = 3;
        rings = 1;
        tier_ids = [ 1; 1; 1 ];
        ten_gig = true;
        base_loss_permille = 10;
        small_switch_buffer = false;
        accelerated_window = 5;
        personal_window = 20;
        aggressive = true;
        max_seq_gap = 400;
        payload = 64;
        submit_gap_ns = 1_000_000;
        safe_permille = 100;
        horizon_ns = 60_000_000;
        drain_ns = 2_000_000_000;
        liveness = true;
      };
    faults =
      [
        Schedule.Token_blackout
          { at_ns = 10_000_000; until_ns = 25_000_000; ring = -1 };
        Schedule.Partition
          {
            at_ns = 30_000_000;
            until_ns = 50_000_000;
            island = [ 0 ];
            ring = -1;
          };
      ];
  }

(* ------------------------------------------------------------------ *)
(* Schedule generation and serialization                               *)

let test_generate_deterministic () =
  let a = Schedule.generate ~seed:42L () in
  let b = Schedule.generate ~seed:42L () in
  Alcotest.(check string)
    "same seed, same schedule" (Schedule.to_string a) (Schedule.to_string b);
  let c = Schedule.generate ~seed:43L () in
  Alcotest.(check bool)
    "different seed, different schedule" false
    (Schedule.to_string a = Schedule.to_string c)

let test_generate_well_formed () =
  for seed = 0 to 49 do
    let s = Schedule.generate ~seed:(Int64.of_int seed) () in
    let c = s.Schedule.config in
    Alcotest.(check bool) "node count" true (c.Schedule.n_nodes >= 2);
    Alcotest.(check int)
      "one tier per node" c.Schedule.n_nodes
      (List.length c.Schedule.tier_ids);
    (* The generated parameters must satisfy the engine's own validator. *)
    (match Aring_ring.Params.validate (Schedule.params c) with
    | Ok () -> ()
    | Error e -> Alcotest.failf "seed %d: invalid params: %s" seed e);
    (* Every fault window must close inside the horizon, so the network
       is whole when the drain starts. *)
    List.iter
      (fun f ->
        let at, until = Schedule.fault_window f in
        Alcotest.(check bool) "window starts in run" true (at >= 0);
        Alcotest.(check bool)
          "window closes before horizon" true
          (until <= c.Schedule.horizon_ns))
      s.Schedule.faults
  done

let prop_schedule_roundtrip =
  QCheck.Test.make ~count:100 ~name:"schedule JSON round-trips exactly"
    QCheck.int64 (fun seed ->
      let s = Schedule.generate ~seed () in
      Schedule.of_string (Schedule.to_string s) = s)

(* ------------------------------------------------------------------ *)
(* Runner determinism (Netsim regression: same seed + same schedule ⇒
   identical trace event stream)                                       *)

let test_runner_deterministic () =
  let s = small_schedule 7L in
  let a = Runner.run s in
  let b = Runner.run s in
  Alcotest.(check bool) "clean schedule passes" true (Runner.passed a);
  Alcotest.(check int64) "identical trace hash" a.Runner.trace_hash
    b.Runner.trace_hash;
  Alcotest.(check int) "identical delivery count" a.Runner.deliveries
    b.Runner.deliveries;
  Alcotest.(check int) "identical stop time" a.Runner.end_ns b.Runner.end_ns;
  let c = Runner.run (small_schedule 8L) in
  Alcotest.(check bool)
    "different seed diverges" false
    (a.Runner.trace_hash = c.Runner.trace_hash)

let test_clean_schedule_delivers () =
  let o = Runner.run (small_schedule 7L) in
  Alcotest.(check bool) "passed" true (Runner.passed o);
  Alcotest.(check bool) "delivered workload" true (o.Runner.deliveries > 100);
  (* The partition forces at least one re-formation and one re-merge. *)
  Alcotest.(check bool) "membership churned" true (o.Runner.views > 3)

(* ------------------------------------------------------------------ *)
(* Seeded bugs: the fuzzer must find them and shrink the reproducer    *)

let quiet_campaign ~bug ~shrink =
  {
    Fuzzer.default_config with
    Fuzzer.trials = 200;
    seed = 1L;
    bug;
    shrink;
    max_shrink_runs = 100;
  }

let test_finds_skip_delivery () =
  let report =
    Fuzzer.run_campaign
      (quiet_campaign ~bug:(Bug.Skip_delivery { node = 0; every = 10 })
         ~shrink:true)
  in
  match (report.Fuzzer.failure, report.Fuzzer.shrunk) with
  | None, _ -> Alcotest.fail "skip-delivery bug not found within 200 trials"
  | Some t, Some r ->
      (match t.Fuzzer.outcome.Runner.failure with
      | Some (Runner.Invariant v) ->
          Alcotest.(check bool)
            "checker recorded violations" true
            (v.Aring_obs.Checker.violation_total > 0)
      | _ -> Alcotest.fail "expected an invariant violation");
      Alcotest.(check bool)
        "shrunk to <= 5 faults" true
        (Schedule.fault_count r.Shrink.schedule <= 5);
      Alcotest.(check bool)
        "shrunk schedule still fails" false
        (Runner.passed r.Shrink.outcome)
  | Some _, None -> Alcotest.fail "shrinking was requested but did not run"

let test_finds_skip_retransmission () =
  let report =
    Fuzzer.run_campaign (quiet_campaign ~bug:Bug.Skip_retransmission ~shrink:false)
  in
  match report.Fuzzer.failure with
  | None ->
      Alcotest.fail "skip-retransmission bug not found within 200 trials"
  | Some _ -> ()

(* ------------------------------------------------------------------ *)
(* Corpus replay: every committed reproducer must stay green           *)

(* [corpus/trace_hashes.txt] pins the FNV-1a trace hash of every committed
   schedule replayed with a static window, [corpus/trace_hashes_adaptive.txt]
   with the adaptive controller on every node. Lines are
   "<basename> <16-hex-digit hash>"; '#' starts a comment. *)
let committed_hashes path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec loop acc =
        match input_line ic with
        | exception End_of_file -> List.rev acc
        | line ->
            let line = String.trim line in
            if line = "" || line.[0] = '#' then loop acc
            else
              Scanf.sscanf line "%s %Lx" (fun name h -> loop ((name, h) :: acc))
      in
      loop [])

let check_corpus_against ~adaptive oracle_path =
  let entries = Corpus.load_dir "corpus" in
  Alcotest.(check bool) "corpus is not empty" true (List.length entries >= 3);
  let oracle = committed_hashes oracle_path in
  Alcotest.(check int)
    "every corpus entry has a committed hash" (List.length entries)
    (List.length oracle);
  List.iter
    (fun (name, schedule) ->
      let o = Fuzzer.replay ~adaptive schedule in
      if not (Runner.passed o) then
        Alcotest.failf "corpus entry %s regressed: %s" name
          (Format.asprintf "%a" Runner.pp_outcome o);
      match List.assoc_opt (Filename.basename name) oracle with
      | None -> Alcotest.failf "no committed trace hash for %s" name
      | Some expected ->
          if o.Runner.trace_hash <> expected then
            Alcotest.failf
              "corpus entry %s trace drifted: hash %Lx, committed %Lx" name
              o.Runner.trace_hash expected)
    entries

let test_corpus_replays_green () =
  check_corpus_against ~adaptive:false "corpus/trace_hashes.txt"

(* The same reproducers with the adaptive controller live: the fault
   schedules must still pass every invariant while the per-node window
   moves, and the controller's decisions must be deterministic (pinned
   hashes). *)
let test_corpus_replays_green_adaptive () =
  check_corpus_against ~adaptive:true "corpus/trace_hashes_adaptive.txt"

(* ------------------------------------------------------------------ *)
(* KV app mode: determinism, seeded-bug self-test, corpus pinning      *)

let test_kv_runner_deterministic () =
  let s = small_schedule 7L in
  let a = Runner.run ~app:Runner.App_kv s in
  let b = Runner.run ~app:Runner.App_kv s in
  Alcotest.(check bool)
    "clean kv schedule passes" true (Runner.passed a);
  Alcotest.(check int64) "identical kv trace hash" a.Runner.trace_hash
    b.Runner.trace_hash;
  let raw = Runner.run s in
  Alcotest.(check bool)
    "kv traffic changes the trace" false
    (a.Runner.trace_hash = raw.Runner.trace_hash)

let test_finds_kv_skip_apply () =
  let report =
    Fuzzer.run_campaign
      {
        (quiet_campaign
           ~bug:(Bug.Kv_skip_apply { node = 0; every = 7 })
           ~shrink:true)
        with
        Fuzzer.app = Runner.App_kv;
      }
  in
  match (report.Fuzzer.failure, report.Fuzzer.shrunk) with
  | None, _ -> Alcotest.fail "kv-skip-apply bug not found within 200 trials"
  | Some t, Some _ ->
      Alcotest.(check int) "caught on the very first schedule" 0 t.Fuzzer.index;
      (match t.Fuzzer.outcome.Runner.failure with
      | Some (Runner.Kv_violation { total; _ }) ->
          Alcotest.(check bool) "oracle recorded violations" true (total > 0)
      | Some f ->
          Alcotest.failf "expected a kv_violation, got %s"
            (Runner.failure_label f)
      | None -> Alcotest.fail "expected a kv_violation")
  | Some _, None -> Alcotest.fail "shrinking was requested but did not run"

(* The protocol-level seeded bug must still be caught with the KV app
   stacked on top: the trace checker watches the same engine underneath. *)
let test_finds_skip_delivery_under_kv () =
  let report =
    Fuzzer.run_campaign
      {
        (quiet_campaign
           ~bug:(Bug.Skip_delivery { node = 0; every = 10 })
           ~shrink:false)
        with
        Fuzzer.app = Runner.App_kv;
      }
  in
  match report.Fuzzer.failure with
  | None -> Alcotest.fail "skip-delivery bug not found under the kv app"
  | Some t -> (
      match t.Fuzzer.outcome.Runner.failure with
      | Some (Runner.Invariant _) | Some (Runner.Kv_violation _) -> ()
      | Some f ->
          Alcotest.failf "expected invariant or kv_violation, got %s"
            (Runner.failure_label f)
      | None -> Alcotest.fail "expected a failure")

(* [corpus/kv/trace_hashes_kv.txt] lines are
   "<basename> <clean hash> <adaptive hash>"; '#' starts a comment. *)
let committed_kv_hashes path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec loop acc =
        match input_line ic with
        | exception End_of_file -> List.rev acc
        | line ->
            let line = String.trim line in
            if line = "" || line.[0] = '#' then loop acc
            else
              Scanf.sscanf line "%s %Lx %Lx" (fun name h ha ->
                  loop ((name, (h, ha)) :: acc))
      in
      loop [])

(* Every committed KV reproducer must (a) replay green without the bug,
   at exactly the pinned trace hashes with and without the adaptive
   controller, and (b) still fail when the bug that minted it is
   re-planted — the corpus stays a working self-test, not a fossil. *)
let test_kv_corpus_replays_green () =
  let entries = Corpus.load_dir "corpus/kv" in
  Alcotest.(check bool) "kv corpus is not empty" true (entries <> []);
  let oracle = committed_kv_hashes "corpus/kv/trace_hashes_kv.txt" in
  Alcotest.(check int)
    "every kv corpus entry has committed hashes" (List.length entries)
    (List.length oracle);
  List.iter
    (fun (name, schedule) ->
      let clean = Fuzzer.replay ~app:Runner.App_kv schedule in
      if not (Runner.passed clean) then
        Alcotest.failf "kv corpus entry %s regressed: %s" name
          (Format.asprintf "%a" Runner.pp_outcome clean);
      let adaptive = Fuzzer.replay ~adaptive:true ~app:Runner.App_kv schedule in
      if not (Runner.passed adaptive) then
        Alcotest.failf "kv corpus entry %s regressed (adaptive): %s" name
          (Format.asprintf "%a" Runner.pp_outcome adaptive);
      (match List.assoc_opt (Filename.basename name) oracle with
      | None -> Alcotest.failf "no committed trace hashes for %s" name
      | Some (h, ha) ->
          if clean.Runner.trace_hash <> h then
            Alcotest.failf "kv entry %s trace drifted: %Lx, committed %Lx"
              name clean.Runner.trace_hash h;
          if adaptive.Runner.trace_hash <> ha then
            Alcotest.failf
              "kv entry %s adaptive trace drifted: %Lx, committed %Lx" name
              adaptive.Runner.trace_hash ha);
      let buggy =
        Fuzzer.replay
          ~bug:(Bug.Kv_skip_apply { node = 0; every = 3 })
          ~app:Runner.App_kv schedule
      in
      match buggy.Runner.failure with
      | Some (Runner.Kv_violation _) -> ()
      | _ ->
          Alcotest.failf
            "kv entry %s no longer catches the seeded bug it was minted by"
            name)
    entries

(* Same contract for the multi-ring corpus: the committed schedules
   carry [rings > 1], so replay drives the sharded multi-ring stack —
   M independent rings, the cross-ring KV oracle, and the deterministic
   learner merge. Hashes live in
   [corpus/multiring/trace_hashes_multiring.txt], same line format. *)
let test_multiring_corpus_replays_green () =
  let entries = Corpus.load_dir "corpus/multiring" in
  Alcotest.(check bool) "multiring corpus is not empty" true (entries <> []);
  let oracle =
    committed_kv_hashes "corpus/multiring/trace_hashes_multiring.txt"
  in
  Alcotest.(check int)
    "every multiring corpus entry has committed hashes" (List.length entries)
    (List.length oracle);
  List.iter
    (fun (name, schedule) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s is a multi-ring schedule" name)
        true
        (schedule.Schedule.config.Schedule.rings > 1);
      let clean = Fuzzer.replay ~app:Runner.App_kv schedule in
      if not (Runner.passed clean) then
        Alcotest.failf "multiring corpus entry %s regressed: %s" name
          (Format.asprintf "%a" Runner.pp_outcome clean);
      let adaptive = Fuzzer.replay ~adaptive:true ~app:Runner.App_kv schedule in
      if not (Runner.passed adaptive) then
        Alcotest.failf "multiring corpus entry %s regressed (adaptive): %s"
          name
          (Format.asprintf "%a" Runner.pp_outcome adaptive);
      (match List.assoc_opt (Filename.basename name) oracle with
      | None -> Alcotest.failf "no committed trace hashes for %s" name
      | Some (h, ha) ->
          if clean.Runner.trace_hash <> h then
            Alcotest.failf
              "multiring entry %s trace drifted: %Lx, committed %Lx" name
              clean.Runner.trace_hash h;
          if adaptive.Runner.trace_hash <> ha then
            Alcotest.failf
              "multiring entry %s adaptive trace drifted: %Lx, committed %Lx"
              name adaptive.Runner.trace_hash ha);
      let buggy =
        Fuzzer.replay
          ~bug:(Bug.Kv_skip_apply { node = 0; every = 3 })
          ~app:Runner.App_kv schedule
      in
      match buggy.Runner.failure with
      | Some (Runner.Kv_violation _) -> ()
      | _ ->
          Alcotest.failf
            "multiring entry %s no longer catches the seeded bug it was \
             minted by"
            name)
    entries

(* ------------------------------------------------------------------ *)
(* Recovery overhaul regressions + health watchdog                     *)

(* Near-MTU payloads + a small switch buffer + a heavy loss burst: the
   seed tree's unpaced, un-deduplicated recovery flood overflowed the
   switch ports on every formation attempt, pass 4 re-checked 5x then
   re-gathered, and the cycle repeated past the drain deadline
   ([No_convergence] after the full 2 s drain). With designated-holder
   dedup, paced bursts and recheck-triggered resends the same schedule
   converges; [test_recovery_livelock_schedule_converges] pins that, and
   the schedule is also committed to the corpus (both hash oracles).
   The legacy behaviour lives on behind [Bug.Recovery_flood] so the
   watchdog test below keeps exercising the failure path. *)
let livelock_schedule_json =
  {|{"seed":"2092789425003139053","n_nodes":7,"tier_ids":[2,0,2,1,2,2,0],"ten_gig":false,"base_loss_permille":0,"small_switch_buffer":true,"accelerated_window":3,"personal_window":31,"aggressive":true,"max_seq_gap":816,"payload":1350,"submit_gap_ns":679192,"safe_permille":249,"horizon_ns":90500000,"drain_ns":2000000000,"liveness":true,"faults":[{"fault":"loss_burst","at":29230061,"until":90000000,"permille":400}]}|}

let peak_formation_attempts (o : Runner.outcome) =
  List.fold_left
    (fun acc (n : Aring_obs.Health.node_report) ->
      max acc n.Aring_obs.Health.nr_max_attempts)
    0 o.Runner.health.Aring_obs.Health.r_nodes

(* The former livelock schedule must now converge — well before the
   drain deadline, with every node needing at most 3 consecutive
   formation attempts (the watchdog flags at 8) — in both window
   modes. *)
let test_recovery_livelock_schedule_converges () =
  let s = Schedule.of_string livelock_schedule_json in
  let deadline =
    s.Schedule.config.Schedule.horizon_ns + s.Schedule.config.Schedule.drain_ns
  in
  List.iter
    (fun adaptive ->
      let mode = if adaptive then "adaptive" else "static" in
      let o = Fuzzer.replay ~adaptive s in
      if not (Runner.passed o) then
        Alcotest.failf "former livelock schedule regressed (%s): %s" mode
          (Format.asprintf "%a" Runner.pp_outcome o);
      Alcotest.(check bool)
        (mode ^ ": converged well before the drain deadline")
        true
        (o.Runner.end_ns < deadline / 2);
      let peak = peak_formation_attempts o in
      if peak > 3 then
        Alcotest.failf
          "%s: some node needed %d consecutive formation attempts (want <= 3)"
          mode peak)
    [ false; true ]

(* The adaptive singleton-gather stall (ROADMAP known bug, campaign
   trial 72): a 2-node ring where node 0 crashes near the horizon. The
   survivor's first solo gather used to stall under the adaptive
   controller — consensus on a singleton membership never completed —
   leaving the run to time out. Both modes must now converge; the
   schedule is also committed to the corpus (both hash oracles). *)
let gather_stall_schedule_json =
  {|{"seed":"-8724047567367088020","n_nodes":2,"tier_ids":[2,0],"ten_gig":false,"base_loss_permille":15,"small_switch_buffer":false,"accelerated_window":8,"personal_window":31,"aggressive":false,"max_seq_gap":1795,"payload":492,"submit_gap_ns":427377,"safe_permille":46,"horizon_ns":114000000,"drain_ns":2000000000,"liveness":true,"faults":[{"fault":"partition","at":1784014,"until":39640280,"island":[1]},{"fault":"token_blackout","at":17917665,"until":75715064},{"fault":"loss_burst","at":48239399,"until":86904299,"permille":120},{"fault":"crash","at":55677543,"node":0}]}|}

let test_gather_stall_schedule_converges () =
  let s = Schedule.of_string gather_stall_schedule_json in
  List.iter
    (fun adaptive ->
      let mode = if adaptive then "adaptive" else "static" in
      let o = Fuzzer.replay ~adaptive s in
      if not (Runner.passed o) then
        Alcotest.failf "gather-stall schedule regressed (%s): %s" mode
          (Format.asprintf "%a" Runner.pp_outcome o))
    [ false; true ]

(* With the legacy flood re-planted ([Bug.Recovery_flood]), the watchdog
   must (a) flag the livelock well before the drain deadline, (b) name
   the repeated gather→exchange→recheck cycle in its verdict so the
   post-mortem starts from the mechanism instead of a bare timeout, and
   (c) leave the flight recorder holding the run's tail for the dump. *)
let test_watchdog_flags_recovery_flood_livelock () =
  let s = Schedule.of_string livelock_schedule_json in
  let o = Fuzzer.replay ~bug:Bug.Recovery_flood s in
  match o.Runner.failure with
  | Some (Runner.Health_stall { report } as f) ->
      Alcotest.(check string)
        "failure label" "health_stall" (Runner.failure_label f);
      let deadline =
        s.Schedule.config.Schedule.horizon_ns
        + s.Schedule.config.Schedule.drain_ns
      in
      Alcotest.(check bool)
        "stalled run cut short of the drain deadline" true
        (o.Runner.end_ns < deadline);
      let text = Format.asprintf "%a" Aring_obs.Health.pp_report report in
      let contains needle =
        let nl = String.length needle and tl = String.length text in
        let rec scan i =
          i + nl <= tl && (String.sub text i nl = needle || scan (i + 1))
        in
        scan 0
      in
      List.iter
        (fun needle ->
          Alcotest.(check bool)
            (Printf.sprintf "verdict names %S" needle)
            true (contains needle))
        [
          "repeated gather\xe2\x86\x92exchange\xe2\x86\x92recheck cycling";
          "formation attempts without reaching operational";
          "exchange-recheck timeouts";
          "recovery floods";
        ];
      Alcotest.(check bool)
        "flight recorder holds the run tail" true
        (Aring_obs.Flight.stored () > 0)
  | Some f ->
      Alcotest.failf "expected health_stall, got %s: %s"
        (Runner.failure_label f)
        (Format.asprintf "%a" Runner.pp_outcome o)
  | None ->
      Alcotest.fail
        "recovery-flood bug injected but schedule passed — either the \
         legacy-flood gate is dead or the watchdog regressed"

let test_corpus_save_load () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "aring-corpus-test" in
  let s = Schedule.generate ~seed:99L () in
  let path = Corpus.save ~dir ~label:"unit" s in
  let s' = Corpus.load_file path in
  Alcotest.(check string) "save/load round-trip" (Schedule.to_string s)
    (Schedule.to_string s');
  Sys.remove path

let suite =
  [
    ("schedule generation deterministic", `Quick, test_generate_deterministic);
    ("schedules well-formed", `Quick, test_generate_well_formed);
    QCheck_alcotest.to_alcotest prop_schedule_roundtrip;
    ("runner deterministic per seed", `Quick, test_runner_deterministic);
    ("clean schedule passes with churn", `Quick, test_clean_schedule_delivers);
    ("finds + shrinks skip-delivery", `Quick, test_finds_skip_delivery);
    ("finds skip-retransmission", `Quick, test_finds_skip_retransmission);
    ("corpus replays green", `Quick, test_corpus_replays_green);
    ("corpus replays green (adaptive)", `Quick, test_corpus_replays_green_adaptive);
    ("kv runner deterministic per seed", `Quick, test_kv_runner_deterministic);
    ("finds + shrinks kv-skip-apply", `Slow, test_finds_kv_skip_apply);
    ("finds skip-delivery under kv app", `Slow, test_finds_skip_delivery_under_kv);
    ("kv corpus replays green + catches its bug", `Quick,
     test_kv_corpus_replays_green);
    ("multiring corpus replays green + catches its bug", `Quick,
     test_multiring_corpus_replays_green);
    ("former recovery-flood livelock converges", `Quick,
     test_recovery_livelock_schedule_converges);
    ("adaptive singleton-gather stall converges", `Quick,
     test_gather_stall_schedule_converges);
    ("watchdog flags recovery-flood livelock", `Slow,
     test_watchdog_flags_recovery_flood_livelock);
    ("corpus save/load", `Quick, test_corpus_save_load);
  ]
