(* Daemon-layer tests: envelope codec, group bookkeeping, and end-to-end
   group semantics (membership notifications, multi-group multicast,
   open-group sends, daemon crash pruning) on a simulated cluster. *)

open Aring_wire
open Aring_ring
open Aring_sim
open Aring_daemon

let check = Alcotest.check

let ms n = n * 1_000_000

(* -------------------------------------------------------------------- *)
(* Envelope codec                                                        *)

let test_envelope_roundtrips () =
  let samples =
    [
      Envelope.App
        { sender = "#a#0"; groups = [ "g1"; "g2" ]; payload = Bytes.of_string "xyz" };
      Envelope.Join { member = "#b#1"; group = "chat" };
      Envelope.Leave { member = "#c#2"; group = "chat" };
    ]
  in
  List.iter
    (fun env ->
      let env' = Envelope.decode (Envelope.encode env) in
      check Alcotest.string "roundtrip"
        (Fmt.str "%a" Envelope.pp env)
        (Fmt.str "%a" Envelope.pp env');
      check Alcotest.bool "equal" true (env = env'))
    samples

let prop_envelope_roundtrip =
  QCheck.Test.make ~name:"envelope roundtrips" ~count:200
    QCheck.(
      triple (string_of_size Gen.(0 -- 30))
        (list_of_size Gen.(0 -- 5) (string_of_size Gen.(1 -- 20)))
        (string_of_size Gen.(0 -- 200)))
    (fun (sender, groups, payload) ->
      let env =
        Envelope.App { sender; groups; payload = Bytes.of_string payload }
      in
      Envelope.decode (Envelope.encode env) = env)

let test_envelope_rejects_garbage () =
  Alcotest.check_raises "bad tag"
    (Codec.Decode_error "unknown envelope tag 99")
    (fun () -> ignore (Envelope.decode (Bytes.make 1 'c')))

(* -------------------------------------------------------------------- *)
(* Groups                                                                *)

let test_groups_join_leave () =
  let g = Groups.create () in
  check (Alcotest.option (Alcotest.list Alcotest.string)) "first join"
    (Some [ "#a#0" ])
    (Groups.join g ~group:"g" ~member:"#a#0");
  check (Alcotest.option (Alcotest.list Alcotest.string)) "second join"
    (Some [ "#a#0"; "#b#1" ])
    (Groups.join g ~group:"g" ~member:"#b#1");
  check (Alcotest.option (Alcotest.list Alcotest.string)) "duplicate join" None
    (Groups.join g ~group:"g" ~member:"#a#0");
  check (Alcotest.option (Alcotest.list Alcotest.string)) "leave"
    (Some [ "#b#1" ])
    (Groups.leave g ~group:"g" ~member:"#a#0");
  check (Alcotest.option (Alcotest.list Alcotest.string)) "leave unknown" None
    (Groups.leave g ~group:"g" ~member:"#zz#9");
  check (Alcotest.option (Alcotest.list Alcotest.string)) "last leave empties"
    (Some [])
    (Groups.leave g ~group:"g" ~member:"#b#1");
  check (Alcotest.list Alcotest.string) "group gone" [] (Groups.members g "g")

let test_groups_prune () =
  let g = Groups.create () in
  ignore (Groups.join g ~group:"g1" ~member:"#a#0");
  ignore (Groups.join g ~group:"g1" ~member:"#b#1");
  ignore (Groups.join g ~group:"g2" ~member:"#c#1");
  ignore (Groups.join g ~group:"g3" ~member:"#d#2");
  let changed = Groups.prune g ~keep:(fun pid -> pid <> 1) in
  check Alcotest.int "two groups changed" 2 (List.length changed);
  check (Alcotest.list Alcotest.string) "g1 pruned" [ "#a#0" ] (Groups.members g "g1");
  check (Alcotest.list Alcotest.string) "g2 emptied" [] (Groups.members g "g2");
  check (Alcotest.list Alcotest.string) "g3 untouched" [ "#d#2" ] (Groups.members g "g3")

let test_daemon_of_member () =
  check (Alcotest.option Alcotest.int) "parse" (Some 3)
    (Groups.daemon_of_member "#sess#3");
  check (Alcotest.option Alcotest.int) "no hash" None
    (Groups.daemon_of_member "plain");
  check (Alcotest.option Alcotest.int) "bad pid" None
    (Groups.daemon_of_member "#sess#xyz")

let test_groups_reject_malformed_names () =
  let g = Groups.create () in
  check (Alcotest.option (Alcotest.list Alcotest.string))
    "name without daemon pid rejected" None
    (Groups.join g ~group:"g" ~member:"plain");
  check (Alcotest.option (Alcotest.list Alcotest.string))
    "unparsable pid rejected" None
    (Groups.join g ~group:"g" ~member:"#sess#xyz");
  check (Alcotest.list Alcotest.string) "table untouched" []
    (Groups.members g "g");
  check (Alcotest.list Alcotest.string) "no group created" []
    (Groups.group_names g);
  check Alcotest.bool "valid_member_name agrees" false
    (Groups.valid_member_name "plain");
  check Alcotest.bool "valid name accepted" true
    (Groups.valid_member_name "#sess#3")

(* --------------------------------------------------------------------
   Groups properties: drive the table with random join/leave/prune
   sequences and check the structural invariants the daemon layer
   depends on (sorted dup-free member lists, no empty groups, prune
   exactly removes dead daemons' members). *)

type groups_op =
  | Op_join of string * string
  | Op_leave of string * string
  | Op_prune of int  (* kill this daemon pid *)

let groups_member_pool =
  (* Mostly valid names across four daemons, plus malformed ones that
     must bounce off [join] without corrupting the table. *)
  [
    "#a#0"; "#b#0"; "#c#1"; "#d#1"; "#e#2"; "#f#3"; "#g#3";
    "plain"; "#nopid#"; "#x#4x4";
  ]

let groups_op_gen =
  QCheck.Gen.(
    let group = oneofl [ "g1"; "g2"; "g3" ] in
    let member = oneofl groups_member_pool in
    frequency
      [
        (6, map2 (fun g m -> Op_join (g, m)) group member);
        (3, map2 (fun g m -> Op_leave (g, m)) group member);
        (1, map (fun pid -> Op_prune pid) (int_bound 3));
      ])

let groups_ops_arb =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Op_join (g, m) -> Printf.sprintf "join(%s,%s)" g m
             | Op_leave (g, m) -> Printf.sprintf "leave(%s,%s)" g m
             | Op_prune pid -> Printf.sprintf "prune(%d)" pid)
           ops))
    QCheck.Gen.(list_size (int_range 1 80) groups_op_gen)

(* Replay [ops] against the real table and a reference model (an assoc
   list of group -> member set), checking invariants after every step. *)
let check_groups_invariants ops =
  let g = Groups.create () in
  let model = Hashtbl.create 8 in
  let model_members grp =
    Option.value ~default:[] (Hashtbl.find_opt model grp)
  in
  let model_set grp = function
    | [] -> Hashtbl.remove model grp
    | ms -> Hashtbl.replace model grp ms
  in
  let step op =
    (match op with
    | Op_join (grp, m) ->
        let r = Groups.join g ~group:grp ~member:m in
        let valid = Groups.valid_member_name m in
        let fresh = not (List.mem m (model_members grp)) in
        if valid && fresh then
          model_set grp (List.sort compare (m :: model_members grp))
        else if r <> None then failwith "join accepted a duplicate/invalid"
    | Op_leave (grp, m) ->
        ignore (Groups.leave g ~group:grp ~member:m);
        model_set grp (List.filter (fun x -> x <> m) (model_members grp))
    | Op_prune pid ->
        let keep d = d <> pid in
        ignore (Groups.prune g ~keep);
        Hashtbl.iter
          (fun grp ms ->
            model_set grp
              (List.filter
                 (fun m ->
                   match Groups.daemon_of_member m with
                   | Some d -> keep d
                   | None -> false)
                 ms))
          (Hashtbl.copy model));
    (* Invariants after every step. *)
    List.for_all
      (fun grp ->
        let ms = Groups.members g grp in
        ms <> []  (* no empty groups are ever listed *)
        && ms = List.sort_uniq compare ms  (* sorted, dup-free *)
        && List.for_all Groups.valid_member_name ms
        && ms = model_members grp)
      (Groups.group_names g)
    && (* and the model has nothing the table lost *)
    Hashtbl.fold
      (fun grp ms acc -> acc && Groups.members g grp = ms)
      model true
  in
  List.for_all step ops

let prop_groups_invariants =
  QCheck.Test.make ~count:200
    ~name:"groups table matches model; sorted dup-free, no empty groups"
    groups_ops_arb check_groups_invariants

(* -------------------------------------------------------------------- *)
(* Simulated daemon cluster                                              *)

type client = {
  mutable inbox : (string * string list * string) list;  (* newest first *)
  mutable group_views : (string * string list) list;  (* newest first *)
}

type dcluster = {
  sim : Netsim.t;
  daemons : Daemon.t array;
  members : Member.t array;
}

let test_params =
  {
    (Params.accelerated ()) with
    token_loss_ns = ms 50;
    token_retransmit_ns = ms 10;
    join_retransmit_ns = ms 20;
    consensus_timeout_ns = ms 100;
    merge_probe_ns = ms 80;
  }

let make_dcluster ?(n = 3) () =
  let ring = Array.init n (fun i -> i) in
  let members =
    Array.init n (fun me ->
        Member.create ~params:test_params ~me ~initial_ring:ring ())
  in
  let daemons = Array.map (fun m -> Daemon.create ~member:m ()) members in
  let sim =
    Netsim.create ~net:Profile.gigabit
      ~tiers:(Array.make n Profile.daemon)
      ~participants:(Array.map Daemon.participant daemons)
      ~seed:3L ()
  in
  { sim; daemons; members }

let fresh_client () = { inbox = []; group_views = [] }

let callbacks_of client =
  {
    Daemon.on_message =
      (fun ~sender ~groups _service payload ->
        client.inbox <- (sender, groups, Bytes.to_string payload) :: client.inbox);
    on_group_view =
      (fun ~group ~members ->
        client.group_views <- (group, members) :: client.group_views);
  }

let test_group_multicast_members_only () =
  let c = make_dcluster () in
  let alice = fresh_client () and bob = fresh_client () and carol = fresh_client () in
  let s0 = Daemon.connect c.daemons.(0) ~name:"alice" (callbacks_of alice) in
  let s1 = Daemon.connect c.daemons.(1) ~name:"bob" (callbacks_of bob) in
  let _s2 = Daemon.connect c.daemons.(2) ~name:"carol" (callbacks_of carol) in
  Daemon.join c.daemons.(0) s0 "chat";
  Daemon.join c.daemons.(1) s1 "chat";
  Netsim.run_until c.sim (ms 20);
  (* Open-group semantics: carol sends without being a member. *)
  let carol_session = Daemon.connect c.daemons.(2) ~name:"carol2" (callbacks_of carol) in
  Daemon.multicast c.daemons.(2) carol_session ~groups:[ "chat" ]
    (Bytes.of_string "hi from outside");
  Netsim.run_until c.sim (ms 40);
  check Alcotest.int "alice got it" 1 (List.length alice.inbox);
  check Alcotest.int "bob got it" 1 (List.length bob.inbox);
  check Alcotest.int "carol (non-member) did not" 0 (List.length carol.inbox);
  let sender, groups, payload = List.hd alice.inbox in
  check Alcotest.string "sender name" "#carol2#2" sender;
  check (Alcotest.list Alcotest.string) "groups" [ "chat" ] groups;
  check Alcotest.string "payload" "hi from outside" payload

let test_multi_group_delivered_once () =
  let c = make_dcluster () in
  let both = fresh_client () and g1only = fresh_client () in
  let s_both = Daemon.connect c.daemons.(0) ~name:"both" (callbacks_of both) in
  let s_g1 = Daemon.connect c.daemons.(1) ~name:"g1only" (callbacks_of g1only) in
  Daemon.join c.daemons.(0) s_both "g1";
  Daemon.join c.daemons.(0) s_both "g2";
  Daemon.join c.daemons.(1) s_g1 "g1";
  Netsim.run_until c.sim (ms 20);
  Daemon.multicast c.daemons.(1) s_g1 ~groups:[ "g1"; "g2" ]
    (Bytes.of_string "cross-post");
  Netsim.run_until c.sim (ms 40);
  check Alcotest.int "member of both groups gets one copy" 1
    (List.length both.inbox);
  check Alcotest.int "g1 member gets one copy" 1 (List.length g1only.inbox)

let test_group_views_consistent () =
  let c = make_dcluster () in
  let a = fresh_client () and b = fresh_client () in
  let sa = Daemon.connect c.daemons.(0) ~name:"a" (callbacks_of a) in
  let sb = Daemon.connect c.daemons.(1) ~name:"b" (callbacks_of b) in
  Daemon.join c.daemons.(0) sa "room";
  Netsim.run_until c.sim (ms 20);
  Daemon.join c.daemons.(1) sb "room";
  Netsim.run_until c.sim (ms 40);
  check (Alcotest.list Alcotest.string) "daemon 0 view" [ "#a#0"; "#b#1" ]
    (Daemon.group_members c.daemons.(0) "room");
  check (Alcotest.list Alcotest.string) "daemon 2 view" [ "#a#0"; "#b#1" ]
    (Daemon.group_members c.daemons.(2) "room");
  (* Clients were notified of each change, in order. *)
  check
    (Alcotest.list (Alcotest.pair Alcotest.string (Alcotest.list Alcotest.string)))
    "a's view history"
    [ ("room", [ "#a#0" ]); ("room", [ "#a#0"; "#b#1" ]) ]
    (List.rev a.group_views);
  Daemon.leave c.daemons.(0) sa "room";
  Netsim.run_until c.sim (ms 60);
  check (Alcotest.list Alcotest.string) "after leave" [ "#b#1" ]
    (Daemon.group_members c.daemons.(2) "room")

let test_total_order_across_daemons () =
  let c = make_dcluster () in
  let clients = Array.init 3 (fun _ -> fresh_client ()) in
  let sessions =
    Array.init 3 (fun i ->
        Daemon.connect c.daemons.(i)
          ~name:(Printf.sprintf "cl%d" i)
          (callbacks_of clients.(i)))
  in
  Array.iteri (fun i s -> Daemon.join c.daemons.(i) s "g") sessions;
  Netsim.run_until c.sim (ms 20);
  for k = 1 to 20 do
    let i = k mod 3 in
    Daemon.multicast c.daemons.(i) sessions.(i) ~groups:[ "g" ]
      (Bytes.of_string (Printf.sprintf "m%d" k))
  done;
  Netsim.run_until c.sim (ms 100);
  let stream cl = List.rev_map (fun (_, _, p) -> p) cl.inbox in
  let s0 = stream clients.(0) in
  check Alcotest.int "all delivered" 20 (List.length s0);
  check Alcotest.bool "same order at 1" true (stream clients.(1) = s0);
  check Alcotest.bool "same order at 2" true (stream clients.(2) = s0)

let test_daemon_crash_prunes_groups () =
  let c = make_dcluster () in
  let a = fresh_client () and b = fresh_client () in
  let sa = Daemon.connect c.daemons.(0) ~name:"a" (callbacks_of a) in
  let sb = Daemon.connect c.daemons.(1) ~name:"b" (callbacks_of b) in
  Daemon.join c.daemons.(0) sa "room";
  Daemon.join c.daemons.(1) sb "room";
  Netsim.run_until c.sim (ms 20);
  Netsim.call_at c.sim ~at:(ms 25) (fun () -> Netsim.crash c.sim 1);
  Netsim.run_until c.sim (ms 2000);
  (* Daemon 1 is gone: the ring reformed and its members were pruned. *)
  check Alcotest.string "daemon 0 operational" "operational"
    (Member.state_name c.members.(0));
  check (Alcotest.list Alcotest.string) "room pruned to a" [ "#a#0" ]
    (Daemon.group_members c.daemons.(0) "room");
  check (Alcotest.list Alcotest.string) "daemon 2 agrees" [ "#a#0" ]
    (Daemon.group_members c.daemons.(2) "room");
  (* The surviving member saw the membership shrink. *)
  check Alcotest.bool "a notified of pruning" true
    (List.exists (fun (g, ms) -> g = "room" && ms = [ "#a#0" ]) a.group_views);
  (* And the group still works. *)
  Daemon.multicast c.daemons.(2)
    (Daemon.connect c.daemons.(2) ~name:"late" (callbacks_of (fresh_client ())))
    ~groups:[ "room" ]
    (Bytes.of_string "still alive");
  Netsim.run_until c.sim (ms 2100);
  check Alcotest.bool "a still receives" true
    (List.exists (fun (_, _, p) -> p = "still alive") a.inbox)

let test_disconnect_leaves_groups () =
  let c = make_dcluster () in
  let a = fresh_client () and b = fresh_client () in
  let sa = Daemon.connect c.daemons.(0) ~name:"a" (callbacks_of a) in
  let sb = Daemon.connect c.daemons.(1) ~name:"b" (callbacks_of b) in
  Daemon.join c.daemons.(0) sa "room";
  Daemon.join c.daemons.(1) sb "room";
  Netsim.run_until c.sim (ms 20);
  Daemon.disconnect c.daemons.(0) sa;
  Netsim.run_until c.sim (ms 40);
  check (Alcotest.list Alcotest.string) "only b remains" [ "#b#1" ]
    (Daemon.group_members c.daemons.(2) "room")

(* --------------------------------------------------------------------
   Session lifecycle. A disconnect must act like an atomic leave of every
   joined group, sequenced in the ring's total order AFTER anything the
   session multicast beforehand — so remote members never observe the
   departure before the departed session's last words. *)

(* A client that records messages and group views into one interleaved
   log, so ordering between deliveries and membership changes is
   observable. *)
type event = Msg of string * string | View of string * string list

let fresh_log () = ref []

let logging_callbacks log =
  {
    Daemon.on_message =
      (fun ~sender ~groups:_ _service payload ->
        log := Msg (sender, Bytes.to_string payload) :: !log);
    on_group_view =
      (fun ~group ~members -> log := View (group, members) :: !log);
  }

let test_disconnect_is_ordered_after_in_flight () =
  let c = make_dcluster () in
  let a = fresh_client () in
  let blog = fresh_log () in
  let sa = Daemon.connect c.daemons.(0) ~name:"a" (callbacks_of a) in
  let sb = Daemon.connect c.daemons.(1) ~name:"b" (logging_callbacks blog) in
  Daemon.join c.daemons.(0) sa "g1";
  Daemon.join c.daemons.(0) sa "g2";
  Daemon.join c.daemons.(1) sb "g1";
  Daemon.join c.daemons.(1) sb "g2";
  Netsim.run_until c.sim (ms 20);
  (* a multicasts to both groups and disconnects in the same instant: the
     messages were submitted first, so per-sender FIFO must order them
     before both Leave envelopes everywhere. *)
  Daemon.multicast c.daemons.(0) sa ~groups:[ "g1" ] (Bytes.of_string "last-1");
  Daemon.multicast c.daemons.(0) sa ~groups:[ "g2" ] (Bytes.of_string "last-2");
  Daemon.disconnect c.daemons.(0) sa;
  Netsim.run_until c.sim (ms 60);
  (* Every group lost exactly the departed member, at every daemon. *)
  List.iter
    (fun (g, who) ->
      for i = 0 to 2 do
        check (Alcotest.list Alcotest.string)
          (Printf.sprintf "daemon %d: %s pruned to %s" i g who)
          [ who ]
          (Daemon.group_members c.daemons.(i) g)
      done)
    [ ("g1", "#b#1"); ("g2", "#b#1") ];
  (* b's interleaved log shows each farewell BEFORE the matching shrink. *)
  let events = List.rev !blog in
  let index p =
    let rec go i = function
      | [] -> Alcotest.failf "event not found in b's log"
      | e :: _ when p e -> i
      | _ :: tl -> go (i + 1) tl
    in
    go 0 events
  in
  let msg_ix payload = index (function Msg (_, p) -> p = payload | _ -> false)
  and shrink_ix group =
    index (function View (g, ms) -> g = group && ms = [ "#b#1" ] | _ -> false)
  in
  check Alcotest.bool "last-1 before g1 shrink" true
    (msg_ix "last-1" < shrink_ix "g1");
  check Alcotest.bool "last-2 before g2 shrink" true
    (msg_ix "last-2" < shrink_ix "g2");
  (* The disconnected session received nothing after the disconnect (its
     own farewells included: it was already gone locally). *)
  check Alcotest.int "a's inbox stays empty" 0 (List.length a.inbox)

let test_double_disconnect_idempotent () =
  let c = make_dcluster () in
  let olog = fresh_log () in
  let sa =
    Daemon.connect c.daemons.(0) ~name:"a" (callbacks_of (fresh_client ()))
  in
  let so = Daemon.connect c.daemons.(2) ~name:"obs" (logging_callbacks olog) in
  Daemon.join c.daemons.(0) sa "room";
  Daemon.join c.daemons.(2) so "room";
  Netsim.run_until c.sim (ms 20);
  Daemon.disconnect c.daemons.(0) sa;
  (* Second disconnect, and post-disconnect operations on the dead
     session handle, must all be silent no-ops. *)
  Daemon.disconnect c.daemons.(0) sa;
  Daemon.join c.daemons.(0) sa "room";
  Daemon.leave c.daemons.(0) sa "room";
  Daemon.multicast c.daemons.(0) sa ~groups:[ "room" ]
    (Bytes.of_string "ghost");
  Netsim.run_until c.sim (ms 60);
  check (Alcotest.list Alcotest.string) "room settled everywhere"
    [ "#obs#2" ]
    (Daemon.group_members c.daemons.(1) "room");
  let shrinks =
    List.length
      (List.filter
         (function View ("room", [ "#obs#2" ]) -> true | _ -> false)
         !olog)
  in
  check Alcotest.int "exactly one leave notification" 1 shrinks;
  check Alcotest.bool "no ghost message" true
    (List.for_all (function Msg (_, "ghost") -> false | _ -> true) !olog)

let test_leave_of_non_member_is_noop () =
  let c = make_dcluster () in
  let olog = fresh_log () in
  let sa =
    Daemon.connect c.daemons.(0) ~name:"a" (callbacks_of (fresh_client ()))
  in
  let so = Daemon.connect c.daemons.(2) ~name:"obs" (logging_callbacks olog) in
  Daemon.join c.daemons.(2) so "room";
  Netsim.run_until c.sim (ms 20);
  let before = List.length !olog in
  (* a never joined "room" (nor "ghost-room"): no Leave may ride the ring,
     so no daemon processes a spurious membership change. *)
  Daemon.leave c.daemons.(0) sa "room";
  Daemon.leave c.daemons.(0) sa "ghost-room";
  Netsim.run_until c.sim (ms 60);
  check Alcotest.int "observer saw no new events" before (List.length !olog);
  check (Alcotest.list Alcotest.string) "room unchanged" [ "#obs#2" ]
    (Daemon.group_members c.daemons.(1) "room")


(* -------------------------------------------------------------------- *)
(* Packing                                                               *)

let test_batch_envelope_roundtrip () =
  let batch =
    Envelope.Batch
      [
        Envelope.App { sender = "#a#0"; groups = [ "g" ]; payload = Bytes.of_string "1" };
        Envelope.Join { member = "#b#1"; group = "g" };
        Envelope.App { sender = "#a#0"; groups = [ "g" ]; payload = Bytes.of_string "2" };
      ]
  in
  check Alcotest.bool "batch roundtrips" true
    (Envelope.decode (Envelope.encode batch) = batch);
  Alcotest.check_raises "nested batch rejected"
    (Invalid_argument "Envelope.encode: nested batch") (fun () ->
      ignore (Envelope.encode (Envelope.Batch [ Envelope.Batch [] ])))

let make_packing_dcluster ?(n = 3) () =
  let ring = Array.init n (fun i -> i) in
  let members =
    Array.init n (fun me ->
        Member.create ~params:test_params ~me ~initial_ring:ring ())
  in
  let daemons =
    Array.map (fun m -> Daemon.create ~packing:true ~member:m ()) members
  in
  let sim =
    Netsim.create ~net:Profile.gigabit
      ~tiers:(Array.make n Profile.daemon)
      ~participants:(Array.map Daemon.participant daemons)
      ~seed:3L ()
  in
  { sim; daemons; members }

let test_packing_delivers_all_in_order () =
  let c = make_packing_dcluster () in
  let rx = fresh_client () in
  let s_rx = Daemon.connect c.daemons.(1) ~name:"rx" (callbacks_of rx) in
  Daemon.join c.daemons.(1) s_rx "small";
  Netsim.run_until c.sim (ms 20);
  let tx = Daemon.connect c.daemons.(0) ~name:"tx" (callbacks_of (fresh_client ())) in
  (* A burst of 50 tiny messages, submitted back to back: they must be
     packed into far fewer ring messages yet all arrive once, in order. *)
  for k = 1 to 50 do
    Daemon.multicast c.daemons.(0) tx ~groups:[ "small" ]
      (Bytes.of_string (Printf.sprintf "tiny-%02d" k))
  done;
  Netsim.run_until c.sim (ms 60);
  let payloads = List.rev_map (fun (_, _, p) -> p) rx.inbox in
  check Alcotest.int "all 50 delivered" 50 (List.length payloads);
  check Alcotest.bool "in submission order" true
    (payloads = List.init 50 (fun i -> Printf.sprintf "tiny-%02d" (i + 1)));
  let st = Daemon.stats c.daemons.(0) in
  check Alcotest.bool "packing actually happened" true (st.packs_sent > 0);
  check Alcotest.bool "many envelopes per pack" true (st.envelopes_packed >= 40);
  (* Far fewer protocol messages than client messages. *)
  (match Member.node c.members.(0) with
  | Some node ->
      check Alcotest.bool "few ring messages" true
        ((Engine.stats (Node.engine node)).new_sent < 20)
  | None -> Alcotest.fail "daemon not operational")

let test_packing_respects_threshold () =
  let c = make_packing_dcluster () in
  let rx = fresh_client () in
  let s_rx = Daemon.connect c.daemons.(1) ~name:"rx" (callbacks_of rx) in
  Daemon.join c.daemons.(1) s_rx "big";
  Netsim.run_until c.sim (ms 20);
  let tx = Daemon.connect c.daemons.(0) ~name:"tx" (callbacks_of (fresh_client ())) in
  (* Large messages bypass packing entirely. *)
  for _ = 1 to 5 do
    Daemon.multicast c.daemons.(0) tx ~groups:[ "big" ] (Bytes.create 2000)
  done;
  Netsim.run_until c.sim (ms 60);
  check Alcotest.int "all large delivered" 5 (List.length rx.inbox);
  check Alcotest.int "no packs for large messages" 0
    (Daemon.stats c.daemons.(0)).packs_sent

let test_packing_mixed_services_flush () =
  let c = make_packing_dcluster () in
  let rx = fresh_client () in
  let s_rx = Daemon.connect c.daemons.(1) ~name:"rx" (callbacks_of rx) in
  Daemon.join c.daemons.(1) s_rx "g";
  Netsim.run_until c.sim (ms 20);
  let tx = Daemon.connect c.daemons.(0) ~name:"tx" (callbacks_of (fresh_client ())) in
  (* Alternate services: the packer flushes at each boundary but delivery
     order must still match submission order. *)
  for k = 1 to 10 do
    let service = if k mod 2 = 0 then Types.Safe else Types.Agreed in
    Daemon.multicast c.daemons.(0) tx ~service ~groups:[ "g" ]
      (Bytes.of_string (Printf.sprintf "mix-%02d" k))
  done;
  Netsim.run_until c.sim (ms 80);
  let payloads = List.rev_map (fun (_, _, p) -> p) rx.inbox in
  check Alcotest.int "all delivered" 10 (List.length payloads);
  check Alcotest.bool "submission order preserved" true
    (payloads = List.init 10 (fun i -> Printf.sprintf "mix-%02d" (i + 1)))


(* --------------------------------------------------------------------
   Packing properties. The packer is deterministic and synchronous, so we
   can drive it without a simulator: a single-node bootstrapped member is
   operational immediately after [start], and everything the daemon
   submits lands in its engine's pending queue, where [drain_pending]
   shows exactly the (service, payload) pairs that would hit the ring. *)

type pack_op = {
  op_sender : int;  (* which of three sessions submits *)
  op_safe : bool;  (* Safe instead of Agreed *)
  op_len : int;  (* payload padding length *)
  op_flush : bool;  (* force a flush after this submission *)
}

let pack_op_gen =
  QCheck.Gen.(
    map
      (fun (op_sender, op_safe, op_len, op_flush) ->
        { op_sender; op_safe; op_len; op_flush })
      (quad (int_bound 2) bool (int_bound 300)
         (map (fun n -> n = 0) (int_bound 4))))

let pack_ops_arb =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (fun o ->
             Printf.sprintf "(s%d %s len=%d%s)" o.op_sender
               (if o.op_safe then "safe" else "agreed")
               o.op_len
               (if o.op_flush then " flush" else ""))
           ops))
    QCheck.Gen.(list_size (int_range 1 60) pack_op_gen)

(* Run a submission schedule through a packing daemon; returns what
   reached the ring, oldest first, and the submission log (sender,
   service, payload string), also oldest first. *)
let run_packer ?(pack_threshold = 1300) ops =
  let member = Member.create ~params:test_params ~me:0 ~initial_ring:[| 0 |] () in
  ignore ((Member.participant member).Participant.start ());
  let d = Daemon.create ~packing:true ~pack_threshold ~member () in
  let sessions =
    Array.init 3 (fun i ->
        Daemon.connect d
          ~name:(Printf.sprintf "s%d" i)
          (callbacks_of (fresh_client ())))
  in
  let log =
    List.mapi
      (fun k op ->
        let payload =
          Printf.sprintf "%d/%d/%s" op.op_sender k (String.make op.op_len 'x')
        in
        let service = if op.op_safe then Types.Safe else Types.Agreed in
        Daemon.multicast d sessions.(op.op_sender) ~service ~groups:[ "g" ]
          (Bytes.of_string payload);
        if op.op_flush then Daemon.flush d;
        (op.op_sender, service, payload))
      ops
  in
  Daemon.flush d;
  let ring_submissions =
    match Member.node member with
    | None -> failwith "single-node member not operational"
    | Some node -> Engine.drain_pending (Node.engine node)
  in
  (ring_submissions, log)

(* Flatten one ring submission into the App payloads it carries, in ring
   order. *)
let apps_of_submission (_service, bytes) =
  let rec apps env =
    match env with
    | Envelope.Batch entries -> List.concat_map apps entries
    | Envelope.App { sender; payload; _ } ->
        [ (sender, Bytes.to_string payload) ]
    | Envelope.Join _ | Envelope.Leave _ -> []
  in
  apps (Envelope.decode bytes)

let prop_packing_fifo_per_sender =
  QCheck.Test.make ~count:100
    ~name:"packing preserves per-sender FIFO across flushes" pack_ops_arb
    (fun ops ->
      let ring_submissions, log = run_packer ops in
      let delivered = List.concat_map apps_of_submission ring_submissions in
      List.for_all
        (fun s ->
          let sender = Printf.sprintf "#s%d#0" s in
          let got =
            List.filter_map
              (fun (who, p) -> if who = sender then Some p else None)
              delivered
          in
          let submitted =
            List.filter_map
              (fun (who, _, p) -> if who = s then Some p else None)
              log
          in
          got = submitted)
        [ 0; 1; 2 ])

let prop_packing_batches_single_service =
  QCheck.Test.make ~count:100 ~name:"a batch never mixes services"
    pack_ops_arb (fun ops ->
      let ring_submissions, log = run_packer ops in
      let service_of_payload =
        List.map (fun (_, service, p) -> (p, service)) log
      in
      List.for_all
        (fun (ring_service, bytes) ->
          match Envelope.decode bytes with
          | Envelope.Batch entries ->
              List.for_all
                (function
                  | Envelope.App { payload; _ } ->
                      Types.service_equal ring_service
                        (List.assoc (Bytes.to_string payload) service_of_payload)
                  | _ -> true)
                entries
          | _ -> true)
        ring_submissions)

let prop_packing_respects_threshold =
  QCheck.Test.make ~count:100
    ~name:"packed batches never exceed the pack threshold" pack_ops_arb
    (fun ops ->
      let threshold = 700 in
      let ring_submissions, _ = run_packer ~pack_threshold:threshold ops in
      List.for_all
        (fun (_, bytes) ->
          match Envelope.decode bytes with
          | Envelope.Batch entries ->
              List.length entries >= 2
              && List.fold_left
                   (fun acc e -> acc + Envelope.encoded_size e)
                   0 entries
                 <= threshold
          | env ->
              (* Unpacked submissions are single envelopes: either they fit
                 under the threshold but had no companion, or they were too
                 large to pack at all. *)
              ignore env;
              true)
        ring_submissions)

let test_group_state_reconverges_after_merge () =
  (* Group membership diverges during a partition (each side only sees its
     own joins); the post-merge re-announcement rebuilds one consistent
     view everywhere. *)
  let c = make_dcluster ~n:4 () in
  let clients = Array.init 4 (fun _ -> fresh_client ()) in
  let sessions =
    Array.init 4 (fun i ->
        Daemon.connect c.daemons.(i)
          ~name:(Printf.sprintf "u%d" i)
          (callbacks_of clients.(i)))
  in
  Daemon.join c.daemons.(0) sessions.(0) "shared";
  Netsim.run_until c.sim (ms 20);
  (* Partition {0,1} | {2,3}; each side gains a member of "shared". *)
  Netsim.set_drop c.sim (fun ~src ~dst _ -> src / 2 <> dst / 2);
  Netsim.call_at c.sim ~at:(ms 30) (fun () ->
      Daemon.join c.daemons.(1) sessions.(1) "shared");
  Netsim.call_at c.sim ~at:(ms 30) (fun () ->
      Daemon.join c.daemons.(3) sessions.(3) "shared");
  Netsim.run_until c.sim (ms 1500);
  (* Divergent views while partitioned. *)
  check (Alcotest.list Alcotest.string) "left view" [ "#u0#0"; "#u1#1" ]
    (Daemon.group_members c.daemons.(0) "shared");
  check (Alcotest.list Alcotest.string) "right view" [ "#u3#3" ]
    (Daemon.group_members c.daemons.(2) "shared");
  (* Heal and let the rings merge + re-announce. *)
  Netsim.call_at c.sim ~at:(ms 1600) (fun () ->
      Netsim.set_drop c.sim (fun ~src:_ ~dst:_ _ -> false));
  Netsim.run_until c.sim (ms 5000);
  let expected = [ "#u0#0"; "#u1#1"; "#u3#3" ] in
  for i = 0 to 3 do
    check (Alcotest.list Alcotest.string)
      (Printf.sprintf "daemon %d reconverged" i)
      expected
      (Daemon.group_members c.daemons.(i) "shared")
  done;
  (* And the group works cluster-wide again. *)
  Daemon.multicast c.daemons.(2) sessions.(2) ~groups:[ "shared" ]
    (Bytes.of_string "post-merge");
  Netsim.run_until c.sim (ms 5200);
  List.iter
    (fun i ->
      check Alcotest.bool
        (Printf.sprintf "client %d got post-merge" i)
        true
        (List.exists (fun (_, _, p) -> p = "post-merge") clients.(i).inbox))
    [ 0; 1; 3 ]

(* -------------------------------------------------------------------- *)
(* Slow receivers                                                        *)

let payloads_oldest_first (cl : client) =
  List.rev_map (fun (_, _, p) -> p) cl.inbox

let test_slow_receiver_isolation () =
  (* A slow receiver that never drains must not delay delivery to a
     healthy session on the same daemon; its messages park in the inbox
     in FIFO order and pump out in bounded batches. *)
  let c = make_dcluster ~n:3 () in
  let fast = fresh_client () and slow = fresh_client () and src = fresh_client () in
  let fast_s = Daemon.connect c.daemons.(0) ~name:"fast" (callbacks_of fast) in
  let slow_s = Daemon.connect c.daemons.(0) ~name:"slow" (callbacks_of slow) in
  let src_s = Daemon.connect c.daemons.(1) ~name:"src" (callbacks_of src) in
  Daemon.join c.daemons.(0) fast_s "g";
  Daemon.join c.daemons.(0) slow_s "g";
  Netsim.run_until c.sim (ms 10);
  Daemon.set_slow_receiver c.daemons.(0) slow_s true;
  for i = 0 to 19 do
    Netsim.call_at c.sim
      ~at:(ms 12 + (i * 200_000))
      (fun () ->
        Daemon.multicast c.daemons.(1) src_s ~groups:[ "g" ]
          (Bytes.of_string (Printf.sprintf "m%02d" i)))
  done;
  Netsim.run_until c.sim (ms 40);
  check Alcotest.int "healthy session got everything" 20
    (List.length fast.inbox);
  check Alcotest.int "slow callback never fired" 0 (List.length slow.inbox);
  check Alcotest.int "messages parked" 20
    (Daemon.inbox_depth c.daemons.(0) slow_s);
  check Alcotest.int "pump batch 1" 7 (Daemon.pump c.daemons.(0) slow_s ~max:7);
  check Alcotest.int "pump batch 2" 7 (Daemon.pump c.daemons.(0) slow_s ~max:7);
  check Alcotest.int "pump remainder" 6
    (Daemon.pump c.daemons.(0) slow_s ~max:100);
  check Alcotest.int "pump empty" 0 (Daemon.pump c.daemons.(0) slow_s ~max:4);
  check Alcotest.int "inbox drained" 0
    (Daemon.inbox_depth c.daemons.(0) slow_s);
  check (Alcotest.list Alcotest.string) "same stream, same order"
    (payloads_oldest_first fast)
    (payloads_oldest_first slow)

let test_slow_receiver_unmark_and_disconnect () =
  let c = make_dcluster ~n:3 () in
  let slow = fresh_client () and src = fresh_client () in
  let slow_s = Daemon.connect c.daemons.(0) ~name:"slow" (callbacks_of slow) in
  let src_s = Daemon.connect c.daemons.(1) ~name:"src" (callbacks_of src) in
  Daemon.join c.daemons.(0) slow_s "g";
  Netsim.run_until c.sim (ms 10);
  Daemon.set_slow_receiver c.daemons.(0) slow_s true;
  for i = 0 to 4 do
    Netsim.call_at c.sim
      ~at:(ms 12 + (i * 200_000))
      (fun () ->
        Daemon.multicast c.daemons.(1) src_s ~groups:[ "g" ]
          (Bytes.of_string (Printf.sprintf "m%d" i)))
  done;
  Netsim.run_until c.sim (ms 30);
  check Alcotest.int "backlog parked" 5 (Daemon.inbox_depth c.daemons.(0) slow_s);
  (* Unmarking hands the backlog over in order and reverts to direct
     delivery. *)
  Daemon.set_slow_receiver c.daemons.(0) slow_s false;
  check (Alcotest.list Alcotest.string) "backlog delivered in order"
    [ "m0"; "m1"; "m2"; "m3"; "m4" ]
    (payloads_oldest_first slow);
  check Alcotest.int "inbox gone" 0 (Daemon.inbox_depth c.daemons.(0) slow_s);
  Netsim.call_at c.sim ~at:(ms 32) (fun () ->
      Daemon.multicast c.daemons.(1) src_s ~groups:[ "g" ]
        (Bytes.of_string "direct"));
  Netsim.run_until c.sim (ms 50);
  check Alcotest.bool "direct delivery resumed" true
    (List.exists (fun (_, _, p) -> p = "direct") slow.inbox);
  (* A disconnected slow receiver drops its parked backlog. *)
  Daemon.set_slow_receiver c.daemons.(0) slow_s true;
  Netsim.call_at c.sim ~at:(ms 52) (fun () ->
      Daemon.multicast c.daemons.(1) src_s ~groups:[ "g" ]
        (Bytes.of_string "doomed"));
  Netsim.run_until c.sim (ms 70);
  check Alcotest.int "parked again" 1 (Daemon.inbox_depth c.daemons.(0) slow_s);
  Daemon.disconnect c.daemons.(0) slow_s;
  check Alcotest.int "dropped with the connection" 0
    (Daemon.inbox_depth c.daemons.(0) slow_s)

(* -------------------------------------------------------------------- *)
(* Reconnect storm mid-view                                              *)

type storm_sess = {
  st_name : string;
  st_daemon : int;
  mutable st_handle : Daemon.session option;
  mutable st_counter : int;
  st_client : client;
}

let test_reconnect_storm_mid_view () =
  (* 24 chatty sessions all disconnect at once and reconnect 3 ms later,
     while a partition cuts the observer's daemon away and heals — the
     Leave/Join flood is ordered across a view change and a merge. The
     invariants: per-sender FIFO (counters strictly increase in delivery
     order, gaps allowed across views), exactly-once delivery, and
     reconverged group state that routes to every reconnected session. *)
  let c = make_dcluster ~n:3 () in
  let obs = fresh_client () in
  let obs_s = Daemon.connect c.daemons.(2) ~name:"obs" (callbacks_of obs) in
  Daemon.join c.daemons.(2) obs_s "storm";
  let sessions =
    Array.init 24 (fun i ->
        {
          st_name = Printf.sprintf "s%02d" i;
          st_daemon = i mod 2;
          st_handle = None;
          st_counter = 0;
          st_client = fresh_client ();
        })
  in
  let connect ss =
    let h =
      Daemon.connect c.daemons.(ss.st_daemon) ~name:ss.st_name
        (callbacks_of ss.st_client)
    in
    Daemon.join c.daemons.(ss.st_daemon) h "storm";
    ss.st_handle <- Some h
  in
  Array.iter connect sessions;
  Array.iter
    (fun ss ->
      let rec tick () =
        let now = Netsim.now c.sim in
        if now < ms 60 then begin
          (match ss.st_handle with
          | Some h ->
              ss.st_counter <- ss.st_counter + 1;
              Daemon.multicast c.daemons.(ss.st_daemon) h ~groups:[ "storm" ]
                (Bytes.of_string
                   (Printf.sprintf "%s:%d" ss.st_name ss.st_counter))
          | None -> ());
          Netsim.call_at c.sim ~at:(now + ms 2) tick
        end
      in
      Netsim.call_at c.sim ~at:(ms 5) tick)
    sessions;
  (* Cut the observer's daemon away across the storm window. *)
  Netsim.call_at c.sim ~at:(ms 28) (fun () ->
      Netsim.set_drop_until c.sim ~until:(ms 55) (fun ~src ~dst _ ->
          src = 2 <> (dst = 2)));
  Netsim.call_at c.sim ~at:(ms 30) (fun () ->
      Array.iter
        (fun ss ->
          match ss.st_handle with
          | Some h ->
              Daemon.disconnect c.daemons.(ss.st_daemon) h;
              ss.st_handle <- None
          | None -> ())
        sessions);
  Netsim.call_at c.sim ~at:(ms 33) (fun () -> Array.iter connect sessions);
  Netsim.call_at c.sim ~at:(ms 150) (fun () ->
      Daemon.multicast c.daemons.(2) obs_s ~groups:[ "storm" ]
        (Bytes.of_string "obs:probe"));
  Netsim.run_until c.sim (ms 400);
  (* Per-sender FIFO and exactly-once, at the observer and at every
     storm session. *)
  let check_stream who (cl : client) =
    let seen = Hashtbl.create 256 in
    let last = Hashtbl.create 64 in
    List.iter
      (fun (_, _, payload) ->
        match String.split_on_char ':' payload with
        | [ name; num ] when num <> "probe" ->
            let k = int_of_string num in
            if Hashtbl.mem seen (name, k) then
              Alcotest.failf "%s saw %s:%d twice" who name k;
            Hashtbl.replace seen (name, k) ();
            (match Hashtbl.find_opt last name with
            | Some prev when prev >= k ->
                Alcotest.failf "%s: sender %s went %d -> %d" who name prev k
            | _ -> ());
            Hashtbl.replace last name k
        | _ -> ())
      (List.rev cl.inbox)
  in
  check_stream "obs" obs;
  Array.iter (fun ss -> check_stream ss.st_name ss.st_client) sessions;
  (* The post-storm probe reached every reconnected session exactly
     once. *)
  let probes (cl : client) =
    List.length (List.filter (fun (_, _, p) -> p = "obs:probe") cl.inbox)
  in
  check Alcotest.int "observer sees its own probe" 1 (probes obs);
  Array.iter
    (fun ss ->
      check Alcotest.int
        (Printf.sprintf "%s got the probe once" ss.st_name)
        1
        (probes ss.st_client))
    sessions;
  (* Group state reconverged identically on every daemon: 24 storm
     sessions plus the observer. *)
  let reference = Daemon.group_members c.daemons.(0) "storm" in
  check Alcotest.int "full membership" 25 (List.length reference);
  for i = 1 to 2 do
    check (Alcotest.list Alcotest.string)
      (Printf.sprintf "daemon %d group view" i)
      reference
      (Daemon.group_members c.daemons.(i) "storm")
  done

let qtest = QCheck_alcotest.to_alcotest

let suite =
  [
    ("envelope roundtrips", `Quick, test_envelope_roundtrips);
    qtest prop_envelope_roundtrip;
    ("envelope rejects garbage", `Quick, test_envelope_rejects_garbage);
    ("groups join/leave", `Quick, test_groups_join_leave);
    ("groups prune", `Quick, test_groups_prune);
    ("daemon_of_member", `Quick, test_daemon_of_member);
    ("groups reject malformed names", `Quick, test_groups_reject_malformed_names);
    qtest prop_groups_invariants;
    ("group multicast members only", `Quick, test_group_multicast_members_only);
    ("multi-group delivered once", `Quick, test_multi_group_delivered_once);
    ("group views consistent", `Quick, test_group_views_consistent);
    ("total order across daemons", `Quick, test_total_order_across_daemons);
    ("daemon crash prunes groups", `Quick, test_daemon_crash_prunes_groups);
    ("disconnect leaves groups", `Quick, test_disconnect_leaves_groups);
    ("disconnect ordered after in-flight", `Quick,
     test_disconnect_is_ordered_after_in_flight);
    ("double disconnect idempotent", `Quick, test_double_disconnect_idempotent);
    ("leave of non-member is a no-op", `Quick, test_leave_of_non_member_is_noop);
    ("batch envelope roundtrip", `Quick, test_batch_envelope_roundtrip);
    ("packing delivers all in order", `Quick, test_packing_delivers_all_in_order);
    ("packing respects threshold", `Quick, test_packing_respects_threshold);
    ("packing mixed services flush", `Quick, test_packing_mixed_services_flush);
    qtest prop_packing_fifo_per_sender;
    qtest prop_packing_batches_single_service;
    qtest prop_packing_respects_threshold;
    ("group state reconverges after merge", `Quick,
      test_group_state_reconverges_after_merge);
    ("slow receiver head-of-line isolation", `Quick,
      test_slow_receiver_isolation);
    ("slow receiver unmark + disconnect", `Quick,
      test_slow_receiver_unmark_and_disconnect);
    ("reconnect storm mid-view", `Quick, test_reconnect_storm_mid_view);
  ]
