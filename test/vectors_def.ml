(* Canonical golden-vector message set for the wire format.

   Every [Message.t] variant appears with both typical and edge values:
   empty and maximal payloads, zero and [max_int] sequence numbers,
   present/absent [aru_id], empty and long [rtr] lists, empty and
   populated membership/holds structures. The committed
   [test/vectors/frames.bin] stores the byte-exact encoding of each entry
   (see {!write_file} for the framing); the golden test asserts that both
   the reference and the pooled encoder reproduce those bytes exactly and
   that decoding them is lossless. Changing the wire format therefore
   requires deliberately regenerating the file with [gen_vectors.exe]. *)

open Aring_wire

let ring0 : Types.ring_id = { rep = 0; ring_seq = 0 }
let ring1 : Types.ring_id = { rep = 3; ring_seq = 17 }
let ring_max : Types.ring_id = { rep = max_int; ring_seq = max_int }

let data ?(ring = ring1) ?(seq = 101) ?(pid = 4) ?(round = 12)
    ?(post_token = false) ?(service = Types.Agreed) payload : Message.t =
  Message.Data
    {
      d_ring = ring;
      seq;
      pid;
      d_round = round;
      post_token;
      service;
      payload;
    }

let byte_ramp n = Bytes.init n (fun i -> Char.chr (i land 0xFF))

let all : (string * Message.t) list =
  [
    (* Data: every service level, both post_token values, payload edges. *)
    ("data-empty", data ~ring:ring0 ~seq:0 ~pid:0 ~round:0 Bytes.empty);
    ("data-fifo", data ~service:Types.Fifo (Bytes.of_string "fifo"));
    ("data-causal", data ~service:Types.Causal (Bytes.of_string "causal"));
    ("data-agreed", data ~service:Types.Agreed (Bytes.of_string "agreed"));
    ("data-safe", data ~service:Types.Safe (Bytes.of_string "safe"));
    ("data-post-token", data ~post_token:true (Bytes.of_string "post"));
    ("data-1350", data ~seq:123456789 ~round:100_000 (byte_ramp 1350));
    ("data-8850-jumbo", data ~pid:63 (byte_ramp 8850));
    ("data-max-seq", data ~ring:ring_max ~seq:max_int ~round:max_int Bytes.empty);
    (* Token: aru_id presence, rtr list edges. *)
    ( "token-plain",
      Message.Token
        {
          t_ring = ring1;
          token_id = 55;
          t_round = 7;
          t_seq = 140;
          aru = 120;
          aru_id = Some 2;
          fcc = 33;
          rtr = [ 121; 125; 130 ];
        } );
    ( "token-no-aru-id-empty-rtr",
      Message.Token
        {
          t_ring = ring0;
          token_id = 0;
          t_round = 0;
          t_seq = 0;
          aru = 0;
          aru_id = None;
          fcc = 0;
          rtr = [];
        } );
    ( "token-max-fields-long-rtr",
      Message.Token
        {
          t_ring = ring_max;
          token_id = max_int;
          t_round = max_int;
          t_seq = max_int;
          aru = max_int - 1;
          aru_id = Some max_int;
          fcc = 512;
          rtr = List.init 512 (fun i -> (i * 7) + 1);
        } );
    (* Join: empty and populated sets. *)
    ( "join-empty-sets",
      Message.Join { j_pid = 0; proc_set = []; fail_set = []; join_seq = 0 } );
    ( "join-populated",
      Message.Join
        {
          j_pid = 5;
          proc_set = [ 0; 1; 2; 5 ];
          fail_set = [ 3 ];
          join_seq = 9;
        } );
    ( "join-max",
      Message.Join
        {
          j_pid = max_int;
          proc_set = List.init 64 (fun i -> i);
          fail_set = [ max_int ];
          join_seq = max_int;
        } );
    (* Commit: every pass, empty and populated memb/holds. *)
    ( "commit-empty",
      Message.Commit
        { c_ring = ring0; c_token_id = 0; c_pass = 1; c_memb = []; c_holds = [] }
    );
    ( "commit-populated",
      Message.Commit
        {
          c_ring = { rep = 0; ring_seq = 18 };
          c_token_id = 2;
          c_pass = 3;
          c_memb =
            [
              {
                m_pid = 0;
                m_old_ring = ring1;
                m_aru = 100;
                m_high_seq = 120;
                m_high_delivered = 95;
              };
              {
                m_pid = 5;
                m_old_ring = { rep = 5; ring_seq = 11 };
                m_aru = 0;
                m_high_seq = 0;
                m_high_delivered = 0;
              };
            ];
          c_holds =
            [ (ring1, [ 101; 102; 105 ]); ({ rep = 5; ring_seq = 11 }, []) ];
        } );
    ( "commit-pass4-max",
      Message.Commit
        {
          c_ring = ring_max;
          c_token_id = max_int;
          c_pass = 4;
          c_memb =
            [
              {
                m_pid = max_int;
                m_old_ring = ring_max;
                m_aru = max_int;
                m_high_seq = max_int;
                m_high_delivered = max_int;
              };
            ];
          c_holds = [ (ring_max, List.init 64 (fun i -> max_int - i)) ];
        } );
    (* Daemon packing: a Batch envelope riding as an ordinary Data payload
       pins the packing wire format (batch tag, entry count, per-entry
       framing) alongside the ring frames it travels in. *)
    ( "data-batch-envelope",
      data ~seq:4242 ~post_token:true
        (Aring_daemon.Envelope.encode
           (Aring_daemon.Envelope.Batch
              [
                Aring_daemon.Envelope.App
                  {
                    sender = "#tx#0";
                    groups = [ "g1"; "g2" ];
                    payload = Bytes.of_string "packed-1";
                  };
                Aring_daemon.Envelope.Join { member = "#rx#1"; group = "g1" };
                Aring_daemon.Envelope.App
                  { sender = "#tx#0"; groups = [ "g1" ]; payload = byte_ramp 64 };
                Aring_daemon.Envelope.Leave { member = "#rx#1"; group = "g2" };
              ])) );
  ]

(* ------------------------------------------------------------------ *)
(* Frame file format: magic, frame count, then length-prefixed frames.  *)

let magic = "ARINGVEC"

let write_file path =
  let oc = open_out_bin path in
  output_string oc magic;
  let u32 n =
    let b = Bytes.create 4 in
    Bytes.set_int32_be b 0 (Int32.of_int n);
    output_bytes oc b
  in
  u32 (List.length all);
  List.iter
    (fun (_, m) ->
      let b = Message.encode m in
      u32 (Bytes.length b);
      output_bytes oc b)
    all;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let raw = really_input_string ic len in
  close_in ic;
  let m = String.length magic in
  if len < m + 4 || String.sub raw 0 m <> magic then
    failwith (path ^ ": bad golden-vector magic");
  let u32 pos = Int32.to_int (String.get_int32_be raw pos) in
  let count = u32 m in
  let frames = ref [] in
  let pos = ref (m + 4) in
  for _ = 1 to count do
    let flen = u32 !pos in
    pos := !pos + 4;
    if !pos + flen > len then failwith (path ^ ": truncated frame");
    frames := Bytes.of_string (String.sub raw !pos flen) :: !frames;
    pos := !pos + flen
  done;
  if !pos <> len then failwith (path ^ ": trailing bytes");
  List.rev !frames
