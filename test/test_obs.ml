(* Observability stack tests: metrics registry, histograms and merging,
   trace sinks, JSONL round-trip, the Chrome exporter against a golden
   file, the rotation profiler, and the trace-driven invariant checker —
   unit-tested on synthetic traces and integration-tested on clean,
   lossy and crashing simulated clusters. *)

open Aring_wire
open Aring_ring
open Aring_sim
module Trace = Aring_obs.Trace
module Trace_json = Aring_obs.Trace_json
module Chrome_trace = Aring_obs.Chrome_trace
module Metrics = Aring_obs.Metrics
module Checker = Aring_obs.Checker
module Rotation = Aring_obs.Rotation

let check = Alcotest.check
let ms n = n * 1_000_000
let rid : Types.ring_id = { rep = 0; ring_seq = 1 }
let ev t_ns node kind : Trace.event = { t_ns; node; kind }

(* -------------------------------------------------------------------- *)
(* Metrics registry                                                      *)

let test_counters_and_gauges () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "engine.rounds" in
  Metrics.incr c;
  Metrics.add c 4;
  check Alcotest.int "counter value" 5 (Metrics.value c);
  check Alcotest.int "by name" 5 (Metrics.counter_value reg "engine.rounds");
  check Alcotest.int "absent counter reads 0" 0
    (Metrics.counter_value reg "no.such");
  (* Same name returns the same handle. *)
  Metrics.incr (Metrics.counter reg "engine.rounds");
  check Alcotest.int "shared handle" 6 (Metrics.value c);
  let g = Metrics.gauge reg "queue.depth" in
  Metrics.set g 3.5;
  check (Alcotest.float 1e-9) "gauge" 3.5 (Metrics.gauge_value g);
  check
    Alcotest.(list (pair string int))
    "counters sorted"
    [ ("engine.rounds", 6) ]
    (Metrics.counters reg)

let test_histogram () =
  let reg = Metrics.create () in
  let h = Metrics.histogram ~bounds:[| 1.0; 10.0; 100.0 |] reg "lat" in
  List.iter (Metrics.observe h) [ 0.5; 5.0; 5.0; 50.0; 1000.0 ];
  check Alcotest.int "count" 5 (Metrics.hist_count h);
  check (Alcotest.float 1e-6) "sum" 1060.5 (Metrics.hist_sum h);
  check
    Alcotest.(array int)
    "bucket counts (overflow last)" [| 1; 2; 1; 1 |]
    (Metrics.hist_bucket_counts h);
  (* Median lands in the (1,10] bucket. *)
  let q50 = Metrics.hist_quantile h 0.5 in
  Alcotest.(check bool) "q50 within bucket" true (q50 > 1.0 && q50 <= 10.0);
  Alcotest.(check bool) "empty quantile is nan" true
    (Float.is_nan
       (Metrics.hist_quantile (Metrics.histogram reg "empty") 0.5))

let test_histogram_merge () =
  let ra = Metrics.create () and rb = Metrics.create () in
  let bounds = [| 1.0; 10.0 |] in
  let ha = Metrics.histogram ~bounds ra "lat" in
  let hb = Metrics.histogram ~bounds rb "lat" in
  List.iter (Metrics.observe ha) [ 0.5; 2.0 ];
  List.iter (Metrics.observe hb) [ 5.0; 50.0 ];
  let m = Metrics.hist_merge ha hb in
  check Alcotest.int "merged count" 4 (Metrics.hist_count m);
  check
    Alcotest.(array int)
    "merged buckets" [| 1; 2; 1 |]
    (Metrics.hist_bucket_counts m);
  check (Alcotest.float 1e-6) "merged sum" 57.5 (Metrics.hist_sum m);
  (* Differing bounds refuse to merge. *)
  let hc = Metrics.histogram ~bounds:[| 2.0; 20.0 |] (Metrics.create ()) "x" in
  Alcotest.check_raises "bounds mismatch"
    (Invalid_argument "Metrics.hist_merge: incompatible bucket bounds")
    (fun () -> ignore (Metrics.hist_merge ha hc))

let test_registry_merge () =
  let ra = Metrics.create () and rb = Metrics.create () in
  Metrics.add (Metrics.counter ra "n") 2;
  Metrics.add (Metrics.counter rb "n") 3;
  Metrics.add (Metrics.counter rb "only_b") 7;
  Metrics.set (Metrics.gauge ra "g") 1.0;
  Metrics.set (Metrics.gauge rb "g") 9.0;
  Metrics.observe (Metrics.histogram ~bounds:[| 1.0 |] ra "h") 0.5;
  Metrics.observe (Metrics.histogram ~bounds:[| 1.0 |] rb "h") 2.0;
  let m = Metrics.merge ra rb in
  check Alcotest.int "counters sum" 5 (Metrics.counter_value m "n");
  check Alcotest.int "disjoint counter kept" 7 (Metrics.counter_value m "only_b");
  check (Alcotest.float 1e-9) "gauge later-wins" 9.0
    (Metrics.gauge_value (Metrics.gauge m "g"));
  check Alcotest.int "histograms merge" 2
    (Metrics.hist_count (Metrics.histogram m "h"))

(* -------------------------------------------------------------------- *)
(* Trace sinks                                                           *)

let test_sinks () =
  check Alcotest.bool "disabled by default" false (Trace.enabled ());
  let mem = Trace.memory () in
  Trace.with_sink (Trace.memory_sink mem) (fun () ->
      check Alcotest.bool "enabled under with_sink" true (Trace.enabled ());
      Trace.emit_at ~t_ns:1 ~node:0 Trace.Token_lost;
      Trace.emit_at ~t_ns:2 ~node:1 Trace.Crash);
  check Alcotest.bool "restored" false (Trace.enabled ());
  check Alcotest.int "memory collected" 2 (Trace.memory_count mem);
  (* Ring buffer keeps only the newest [capacity] events. *)
  let rb = Trace.ring_buffer ~capacity:3 in
  Trace.with_sink (Trace.ring_sink rb) (fun () ->
      for i = 1 to 5 do
        Trace.emit_at ~t_ns:i ~node:0 Trace.Token_lost
      done);
  check Alcotest.int "ring total" 5 (Trace.ring_total rb);
  check
    Alcotest.(list int)
    "ring keeps newest, oldest first" [ 3; 4; 5 ]
    (List.map (fun (e : Trace.event) -> e.t_ns) (Trace.ring_events rb))

(* dune runtest runs in the sandboxed test dir; dune exec from the root. *)
let golden path =
  let p = Filename.concat "golden" path in
  if Sys.file_exists p then p else Filename.concat "test/golden" path

let test_jsonl_roundtrip () =
  let events = Trace_json.read_file (golden "events.jsonl") in
  check Alcotest.int "golden event count" 20 (List.length events);
  List.iter
    (fun e ->
      let e' = Trace_json.of_line (Trace_json.to_line e) in
      check Alcotest.bool
        (Printf.sprintf "round-trip %s" (Trace.kind_name e.Trace.kind))
        true (e = e'))
    events

let read_whole path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_chrome_golden () =
  let events = Trace_json.read_file (golden "events.jsonl") in
  let expected = String.trim (read_whole (golden "chrome_trace.json")) in
  check Alcotest.string "chrome exporter output" expected
    (Chrome_trace.to_string events)

(* -------------------------------------------------------------------- *)
(* Invariant checker on synthetic traces                                 *)

let token_recv ?(ring = rid) ~id ~aru () =
  Trace.Token_recv
    {
      ring;
      token_id = id;
      round = 1;
      seq = aru;
      aru;
      local_aru = aru;
      safe_line = 0;
    }

let deliver ?(ring = rid) ~seq ~sender () =
  Trace.Deliver { ring; seq; sender; service = "agreed" }

let violations evs = List.length (Checker.check_events evs)

let test_checker_clean () =
  check Alcotest.int "clean trace" 0
    (violations
       [
         ev 1 0 (token_recv ~id:0 ~aru:0 ());
         ev 2 1 (token_recv ~id:1 ~aru:1 ());
         ev 3 0 (deliver ~seq:1 ~sender:0 ());
         ev 4 0 (deliver ~seq:2 ~sender:1 ());
         ev 5 1 (deliver ~seq:1 ~sender:0 ());
         ev 6 1 (deliver ~seq:2 ~sender:1 ());
       ])

let test_checker_two_holders () =
  check Alcotest.int "duplicate token holder flagged" 1
    (violations
       [
         ev 1 0 (token_recv ~id:7 ~aru:0 ());
         ev 2 3 (token_recv ~id:7 ~aru:0 ());
       ])

let test_checker_order_mismatch () =
  check Alcotest.int "diverging sender flagged" 1
    (violations
       [
         ev 1 0 (deliver ~seq:1 ~sender:0 ());
         ev 2 1 (deliver ~seq:1 ~sender:5 ());
       ])

let test_checker_gap () =
  (* A skip while operational is a violation... *)
  check Alcotest.int "gap flagged" 1
    (violations [ ev 1 0 (deliver ~seq:1 ~sender:0 ()); ev 2 0 (deliver ~seq:3 ~sender:0 ()) ]);
  (* ...but legal inside a transitional->regular recovery window. *)
  check Alcotest.int "gap allowed during recovery" 0
    (violations
       [
         ev 1 0 (deliver ~seq:1 ~sender:0 ());
         ev 2 0
           (Trace.View_install { ring = rid; members = [ 0 ]; transitional = true });
         ev 3 0 (deliver ~seq:3 ~sender:0 ());
         ev 4 0
           (Trace.View_install
              { ring = { rep = 0; ring_seq = 2 }; members = [ 0 ]; transitional = false });
       ]);
  (* Repeated delivery is never legal. *)
  check Alcotest.int "regressing delivery flagged" 1
    (violations [ ev 1 0 (deliver ~seq:1 ~sender:0 ()); ev 2 0 (deliver ~seq:1 ~sender:0 ()) ])

let test_checker_aru_monotonic () =
  check Alcotest.int "aru regression flagged" 1
    (violations
       [ ev 1 0 (token_recv ~id:0 ~aru:5 ()); ev 2 0 (token_recv ~id:2 ~aru:3 ()) ])

(* -------------------------------------------------------------------- *)
(* Integration: checker + profiler attached to simulated clusters        *)

(* Steady-state ring of bare nodes (installed configuration, no
   membership), as in Scenario.run. *)
let run_node_cluster ~n ~net ~seed ~horizon_ms ~rate_per_node =
  let ring = Array.init n (fun i -> i) in
  let nodes =
    Array.init n (fun me ->
        Node.create ~params:(Params.accelerated ()) ~ring_id:rid ~ring ~me ())
  in
  let sim =
    Netsim.create ~net
      ~tiers:(Array.make n Profile.library)
      ~participants:(Array.map Node.participant nodes)
      ~seed ()
  in
  let deliveries = ref 0 in
  Netsim.on_deliver sim (fun ~at:_ ~now:_ _ -> incr deliveries);
  let interval = 1_000_000_000 / rate_per_node in
  for node = 0 to n - 1 do
    let rec tick () =
      let now = Netsim.now sim in
      if now < ms horizon_ms then begin
        Netsim.submit_now sim ~node Types.Agreed (Bytes.create 256);
        Netsim.call_at sim ~at:(now + interval) tick
      end
    in
    Netsim.call_at sim ~at:(node * 50_000) tick
  done;
  Netsim.run_until sim (ms horizon_ms);
  !deliveries

let test_sim_invariants_clean () =
  let checker = Checker.create () in
  let delivered =
    Trace.with_sink (Checker.as_sink checker) (fun () ->
        run_node_cluster ~n:8 ~net:Profile.gigabit ~seed:11L ~horizon_ms:80
          ~rate_per_node:2_000)
  in
  Alcotest.(check bool) "plenty delivered" true (delivered > 1_000);
  check Alcotest.int "checked every delivery" delivered
    (Checker.deliveries_checked checker);
  check Alcotest.int "no violations (clean)" 0 (Checker.violation_count checker)

let test_sim_invariants_lossy () =
  let checker = Checker.create () in
  let delivered =
    Trace.with_sink (Checker.as_sink checker) (fun () ->
        run_node_cluster ~n:8
          ~net:(Profile.with_loss Profile.gigabit 0.01)
          ~seed:12L ~horizon_ms:80 ~rate_per_node:2_000)
  in
  Alcotest.(check bool) "plenty delivered under loss" true (delivered > 1_000);
  check Alcotest.int "no violations (1% loss)" 0 (Checker.violation_count checker)

let test_sim_invariants_crash () =
  (* Member-based cluster: crash one node mid-run and let the ring
     reform; recovery deliveries must still satisfy every invariant. *)
  let params =
    {
      (Params.accelerated ()) with
      token_loss_ns = ms 50;
      token_retransmit_ns = ms 10;
      join_retransmit_ns = ms 20;
      consensus_timeout_ns = ms 100;
      merge_probe_ns = ms 80;
    }
  in
  let n = 8 in
  let initial_ring = Array.init n (fun i -> i) in
  let members =
    Array.init n (fun me -> Member.create ~params ~me ~initial_ring ())
  in
  let checker = Checker.create () in
  Trace.with_sink (Checker.as_sink checker) (fun () ->
      let sim =
        Netsim.create ~net:Profile.gigabit
          ~tiers:(Array.make n Profile.library)
          ~participants:(Array.map Member.participant members)
          ~seed:13L ()
      in
      for node = 0 to n - 1 do
        let rec tick () =
          let now = Netsim.now sim in
          if now < ms 500 && Netsim.is_alive sim node then begin
            Netsim.submit_now sim ~node Types.Agreed (Bytes.create 200);
            Netsim.call_at sim ~at:(now + 1_000_000) tick
          end
        in
        Netsim.call_at sim ~at:(node * 100_000) tick
      done;
      Netsim.call_at sim ~at:(ms 100) (fun () -> Netsim.crash sim 3);
      Netsim.run_until sim (ms 800);
      let survivors = List.filter (fun i -> i <> 3) (List.init n Fun.id) in
      List.iter
        (fun i ->
          check Alcotest.string
            (Printf.sprintf "node %d reformed" i)
            "operational"
            (Member.state_name members.(i)))
        survivors);
  Alcotest.(check bool) "deliveries checked" true
    (Checker.deliveries_checked checker > 100);
  (match Checker.violations checker with
  | [] -> ()
  | v :: _ -> Alcotest.failf "first violation: %s" v);
  check Alcotest.int "no violations (crash + reformation)" 0
    (Checker.violation_count checker)

let test_rotation_profiler () =
  let prof = Rotation.create ~node:0 () in
  let delivered =
    Trace.with_sink (Rotation.as_sink prof) (fun () ->
        run_node_cluster ~n:4 ~net:Profile.gigabit ~seed:14L ~horizon_ms:50
          ~rate_per_node:2_000)
  in
  Alcotest.(check bool) "delivered" true (delivered > 0);
  let s = Rotation.summary prof in
  Alcotest.(check bool) "observed rotations" true (s.Rotation.rotations > 10);
  Alcotest.(check bool) "positive rotation time" true
    (Aring_util.Stats.mean s.Rotation.rotation_us > 0.0);
  Alcotest.(check bool) "post-token fraction in [0,1]" true
    (s.Rotation.post_token_fraction >= 0.0 && s.Rotation.post_token_fraction <= 1.0);
  let reg = Metrics.create () in
  Rotation.record_metrics s reg;
  check Alcotest.int "rotations exported" s.Rotation.rotations
    (Metrics.counter_value reg "rotation.rotations")

(* -------------------------------------------------------------------- *)
(* Histogram merge edge cases                                            *)

let test_hist_merge_edge_cases () =
  (* Empty + empty: still a valid histogram. *)
  let bounds = [| 1.0 |] in
  let ea = Metrics.histogram ~bounds (Metrics.create ()) "e" in
  let eb = Metrics.histogram ~bounds (Metrics.create ()) "e" in
  let m = Metrics.hist_merge ea eb in
  check Alcotest.int "empty merge count" 0 (Metrics.hist_count m);
  Alcotest.(check bool) "empty merge quantile is nan" true
    (Float.is_nan (Metrics.hist_quantile m 0.5));
  (* Single-bucket bounds: one bound, two buckets (the overflow). *)
  let sa = Metrics.histogram ~bounds (Metrics.create ()) "s" in
  Metrics.observe sa 0.5;
  Metrics.observe sa 2.0;
  let m = Metrics.hist_merge sa ea in
  check
    Alcotest.(array int)
    "single-bucket merge" [| 1; 1 |]
    (Metrics.hist_bucket_counts m);
  (* Empty merged into populated keeps the population. *)
  check Alcotest.int "asymmetric merge count" 2 (Metrics.hist_count m)

(* Counts saturate at [max_int] instead of wrapping negative: doubling a
   one-observation histogram 70 times would overflow a 63-bit count. *)
let test_hist_merge_saturates () =
  let h = Metrics.histogram ~bounds:[| 1.0 |] (Metrics.create ()) "h" in
  Metrics.observe h 0.5;
  let m = ref (Metrics.hist_merge h h) in
  for _ = 1 to 70 do
    m := Metrics.hist_merge !m !m
  done;
  check Alcotest.int "count saturates at max_int" max_int
    (Metrics.hist_count !m);
  check Alcotest.int "bucket saturates at max_int" max_int
    (Metrics.hist_bucket_counts !m).(0);
  Alcotest.(check bool) "saturated count never negative" true
    (Metrics.hist_count !m > 0)

let prop_hist_merge_counts =
  QCheck.Test.make ~count:200 ~name:"hist merge adds counts per bucket"
    QCheck.(pair (small_list (float_range 0.0 200.0)) (small_list (float_range 0.0 200.0)))
    (fun (xs, ys) ->
      let bounds = [| 1.0; 10.0; 100.0 |] in
      let ha = Metrics.histogram ~bounds (Metrics.create ()) "a" in
      let hb = Metrics.histogram ~bounds (Metrics.create ()) "b" in
      List.iter (Metrics.observe ha) xs;
      List.iter (Metrics.observe hb) ys;
      let m = Metrics.hist_merge ha hb in
      Metrics.hist_count m = List.length xs + List.length ys
      && Metrics.hist_bucket_counts m
         = Array.map2 ( + )
             (Metrics.hist_bucket_counts ha)
             (Metrics.hist_bucket_counts hb))

(* -------------------------------------------------------------------- *)
(* Chrome exporter JSON escaping                                         *)

module Json = Aring_obs.Json

(* Strings that ride inside trace events (service names, drop reasons,
   membership phases, timer labels) must be escaped into valid JSON no
   matter what bytes they hold. *)
let test_chrome_escaping () =
  let hostile = "ag\"re\\ed\n\t\r\x01end" in
  let events =
    [
      ev 1_000 0 (deliver ~seq:1 ~sender:0 ());
      ev 2_000 0 (Trace.Deliver { ring = rid; seq = 2; sender = 1; service = hostile });
      ev 3_000 1 (Trace.Drop { reason = hostile; size = 10 });
      ev 4_000 1 (Trace.Phase { phase = hostile });
      ev 5_000 2 (Trace.Timer_arm { timer = hostile; delay_ns = 5 });
    ]
  in
  let s = Chrome_trace.to_string events in
  (* Must parse back as JSON — unescaped quotes/newlines would break it. *)
  match Json.of_string s with
  | exception Json.Parse_error e ->
      Alcotest.failf "chrome output with hostile strings unparseable: %s" e
  | j -> (
      match Json.member "traceEvents" j with
      | Some (Json.List l) ->
          Alcotest.(check bool) "events survived" true (List.length l >= 5)
      | _ -> Alcotest.fail "no traceEvents list")

let prop_json_string_roundtrip =
  QCheck.Test.make ~count:500 ~name:"json string escape round-trips"
    QCheck.(string_gen (Gen.char_range '\x00' '\x7f'))
    (fun s ->
      match Json.of_string (Json.to_string (Json.String s)) with
      | Json.String s' -> s' = s
      | _ -> false)

(* -------------------------------------------------------------------- *)
(* Flight recorder                                                       *)

module Flight = Aring_obs.Flight

let with_virtual_clock f =
  let t = ref 0 in
  Trace.set_clock (fun () -> !t);
  Fun.protect ~finally:(fun () -> Trace.set_clock (fun () -> 0)) (fun () -> f t)

let test_flight_wrap_and_dump () =
  with_virtual_clock (fun t ->
      Flight.set_capacity 4;
      Fun.protect
        ~finally:(fun () -> Flight.set_capacity 512)
        (fun () ->
          for i = 1 to 10 do
            t := i * 100;
            Flight.record ~node:0 ~code:Flight.ev_deliver ~a:i ~b:7 ~c:0 ~d:0
          done;
          t := 1_050;
          Flight.record ~node:1 ~code:Flight.ev_token_recv ~a:1 ~b:0 ~c:0 ~d:0;
          check Alcotest.int "lifetime total" 11 (Flight.total ());
          check Alcotest.int "stored capped at capacity" 5 (Flight.stored ());
          let rs = Flight.records () in
          check
            Alcotest.(list int)
            "newest records survive the wrap, time-ordered"
            [ 700; 800; 900; 1000; 1050 ]
            (List.map (fun r -> r.Flight.r_ns) rs);
          check
            Alcotest.(list int)
            "argument a preserved" [ 7; 8; 9; 10; 1 ]
            (List.map (fun r -> r.Flight.r_a) rs);
          (* The JSONL dump parses line by line. *)
          let path = Filename.temp_file "flight" ".jsonl" in
          Flight.dump_jsonl_file path;
          let lines = ref [] in
          let ic = open_in path in
          (try
             while true do
               lines := input_line ic :: !lines
             done
           with End_of_file -> close_in ic);
          Sys.remove path;
          check Alcotest.int "one line per stored record" 5
            (List.length !lines);
          List.iter
            (fun line ->
              match Json.of_string line with
              | Json.Obj _ -> ()
              | _ -> Alcotest.failf "bad dump line: %s" line
              | exception Json.Parse_error e ->
                  Alcotest.failf "unparseable dump line %s: %s" line e)
            !lines;
          (* Disabled recording is a no-op. *)
          Flight.set_enabled false;
          Flight.record ~node:0 ~code:Flight.ev_deliver ~a:99 ~b:0 ~c:0 ~d:0;
          Flight.set_enabled true;
          check Alcotest.int "disabled record dropped" 11 (Flight.total ());
          Flight.reset ();
          check Alcotest.int "reset empties" 0 (Flight.stored ())))

(* -------------------------------------------------------------------- *)
(* Latency spans                                                         *)

module Span = Aring_obs.Span

let test_span_stages () =
  with_virtual_clock (fun t ->
      check Alcotest.int "stamp is 0 when detached" 0 (Span.submit_stamp ());
      let reg = Metrics.create () in
      let span = Span.create ~metrics:reg () in
      Span.with_span span (fun () ->
          t := 1_000;
          let stamp = Span.submit_stamp () in
          check Alcotest.int "stamp reads the virtual clock" 1_000 stamp;
          t := 51_000;
          Span.note_ordered ~sender:0 ~seq:5 ~submit_ns:stamp;
          t := 101_000;
          Span.note_delivered ~node:0 ~sender:0 ~seq:5;
          Span.note_applied ~node:0);
      let stages = Span.report span in
      let find name =
        List.find_opt (fun (s : Span.stage_report) -> s.Span.stage = name) stages
      in
      (match find Span.stage_order with
      | Some s ->
          check Alcotest.int "order count" 1 s.Span.count;
          Alcotest.(check bool) "order p50 ~50us" true
            (s.Span.p50_us > 10. && s.Span.p50_us < 100.)
      | None -> Alcotest.fail "order stage missing");
      (match find Span.stage_e2e with
      | Some s ->
          Alcotest.(check bool) "e2e p50 ~100us" true
            (s.Span.p50_us > 50. && s.Span.p50_us < 250.)
      | None -> Alcotest.fail "e2e stage missing");
      (* Unknown (sender, seq) pairs are ignored, not counted. *)
      Span.with_span span (fun () ->
          Span.note_delivered ~node:0 ~sender:3 ~seq:999);
      let stages' = Span.report span in
      let e2e_count =
        match
          List.find_opt (fun (s : Span.stage_report) -> s.Span.stage = Span.stage_e2e) stages'
        with
        | Some s -> s.Span.count
        | None -> 0
      in
      check Alcotest.int "unmatched delivery not counted" 1 e2e_count)

(* -------------------------------------------------------------------- *)
(* Health watchdog                                                       *)

module Health = Aring_obs.Health

let test_health_formation_cycle () =
  with_virtual_clock (fun t ->
      let h = Health.create ~n:2 () in
      Health.with_health h (fun () ->
          (* Node 0 cycles gather -> commit -> recover without ever
             reaching operational; node 1 is healthy. The cycling must
             outlast [stall_ns] with no formation completing anywhere
             before the verdict fires. *)
          Health.note_phase ~node:1 ~phase:Health.phase_operational;
          for i = 1 to 8 do
            t := i * 200_000_000;
            Health.note_phase ~node:0 ~phase:Health.phase_gather;
            Health.note_recheck ~node:0;
            Health.note_phase ~node:0 ~phase:Health.phase_commit;
            Health.note_phase ~node:0 ~phase:Health.phase_recover;
            Health.note_delivery ()
          done;
          (match Health.check h ~now:!t with
          | [ Health.Formation_cycle { fc_node; fc_attempts; fc_rechecks; _ } ]
            ->
              check Alcotest.int "stalled node" 0 fc_node;
              check Alcotest.int "attempts counted" 8 fc_attempts;
              check Alcotest.int "rechecks counted" 8 fc_rechecks
          | other ->
              Alcotest.failf "expected one formation cycle, got %d stalls"
                (List.length other));
          (* A formation completing anywhere re-opens the grace window:
             attempt-burning while views keep installing is churn making
             progress, not a livelock. *)
          Health.note_phase ~node:1 ~phase:Health.phase_operational;
          check Alcotest.int "install elsewhere clears the verdict" 0
            (List.length (Health.check h ~now:!t))))

let test_health_operational_resets () =
  with_virtual_clock (fun t ->
      let h = Health.create ~n:1 () in
      Health.with_health h (fun () ->
          for i = 1 to 7 do
            t := i * 200_000_000;
            Health.note_phase ~node:0 ~phase:Health.phase_gather;
            Health.note_phase ~node:0 ~phase:Health.phase_recover
          done;
          (* Reaching operational resets the attempt counter... *)
          Health.note_phase ~node:0 ~phase:Health.phase_operational;
          Health.note_delivery ();
          Health.note_phase ~node:0 ~phase:Health.phase_gather;
          check Alcotest.int "no stall after operational" 0
            (List.length (Health.check h ~now:!t));
          (* ...so the next cycle needs K fresh attempts. *)
          for i = 8 to 14 do
            t := i * 200_000_000;
            Health.note_phase ~node:0 ~phase:Health.phase_gather
          done;
          check Alcotest.int "8 fresh attempts stall again" 1
            (List.length (Health.check h ~now:!t))))

let test_health_no_progress_and_crash () =
  with_virtual_clock (fun t ->
      let h = Health.create ~n:2 () in
      Health.with_health h (fun () ->
          t := 1_000;
          Health.note_delivery ();
          Health.note_phase ~node:0 ~phase:Health.phase_gather;
          Health.note_phase ~node:1 ~phase:Health.phase_gather;
          (* Two virtual seconds with no delivery and both nodes stuck. *)
          t := 2_000_000_000;
          (match Health.check h ~now:!t with
          | [ Health.No_progress { np_idle_ns; np_stuck } ] ->
              Alcotest.(check bool) "idle time reported" true
                (np_idle_ns > 1_000_000_000);
              check Alcotest.int "both nodes stuck" 2 (List.length np_stuck)
          | other ->
              Alcotest.failf "expected no_progress, got %d stalls"
                (List.length other));
          (* Crashed nodes are excluded; a crashed-only stall clears. *)
          Health.note_crash ~node:0;
          Health.note_crash ~node:1;
          check Alcotest.int "crashed nodes never stall" 0
            (List.length (Health.check h ~now:!t))))

let test_health_report_renders () =
  with_virtual_clock (fun t ->
      let h = Health.create ~n:1 () in
      Health.with_health h (fun () ->
          for i = 1 to 8 do
            t := i * 200_000_000;
            Health.note_phase ~node:0 ~phase:Health.phase_gather;
            Health.note_recheck ~node:0;
            Health.note_phase ~node:0 ~phase:Health.phase_recover
          done);
      let r = Health.report h ~now:!t in
      let text = Format.asprintf "%a" Health.pp_report r in
      Alcotest.(check bool) "names the cycle" true
        (let needle = "recheck cycling" in
         let nl = String.length needle and tl = String.length text in
         let rec scan i =
           i + nl <= tl && (String.sub text i nl = needle || scan (i + 1))
         in
         scan 0))

let suite =
  [
    Alcotest.test_case "metrics: counters and gauges" `Quick test_counters_and_gauges;
    Alcotest.test_case "metrics: histogram" `Quick test_histogram;
    Alcotest.test_case "metrics: histogram merge" `Quick test_histogram_merge;
    Alcotest.test_case "metrics: registry merge" `Quick test_registry_merge;
    Alcotest.test_case "trace: sinks" `Quick test_sinks;
    Alcotest.test_case "trace: jsonl round-trip" `Quick test_jsonl_roundtrip;
    Alcotest.test_case "trace: chrome exporter golden" `Quick test_chrome_golden;
    Alcotest.test_case "checker: clean trace" `Quick test_checker_clean;
    Alcotest.test_case "checker: two token holders" `Quick test_checker_two_holders;
    Alcotest.test_case "checker: order mismatch" `Quick test_checker_order_mismatch;
    Alcotest.test_case "checker: delivery gaps" `Quick test_checker_gap;
    Alcotest.test_case "checker: aru monotonicity" `Quick test_checker_aru_monotonic;
    Alcotest.test_case "sim: invariants hold (clean)" `Quick test_sim_invariants_clean;
    Alcotest.test_case "sim: invariants hold (lossy)" `Quick test_sim_invariants_lossy;
    Alcotest.test_case "sim: invariants hold (crash)" `Slow test_sim_invariants_crash;
    Alcotest.test_case "rotation profiler" `Quick test_rotation_profiler;
    Alcotest.test_case "metrics: hist merge edge cases" `Quick
      test_hist_merge_edge_cases;
    Alcotest.test_case "metrics: hist merge saturates" `Quick
      test_hist_merge_saturates;
    QCheck_alcotest.to_alcotest prop_hist_merge_counts;
    Alcotest.test_case "chrome exporter escapes hostile strings" `Quick
      test_chrome_escaping;
    QCheck_alcotest.to_alcotest prop_json_string_roundtrip;
    Alcotest.test_case "flight recorder: wrap, dump, reset" `Quick
      test_flight_wrap_and_dump;
    Alcotest.test_case "latency spans: stage quantiles" `Quick test_span_stages;
    Alcotest.test_case "health: formation cycle detected" `Quick
      test_health_formation_cycle;
    Alcotest.test_case "health: operational resets attempts" `Quick
      test_health_operational_resets;
    Alcotest.test_case "health: no-progress stall and crash exclusion" `Quick
      test_health_no_progress_and_crash;
    Alcotest.test_case "health: report names the cycle" `Quick
      test_health_report_renders;
  ]
