(* Aggregated alcotest entry point for the whole repository. *)

let () =
  Aring_util.Log.setup ();
  Alcotest.run "accelring"
    [
      ("util", Test_util.suite);
      ("wire", Test_wire.suite);
      ("vectors", Test_vectors.suite);
      ("params", Test_params.suite);
      ("engine", Test_engine.suite);
      ("control", Test_control.suite);
      ("sim", Test_sim.suite);
      ("obs", Test_obs.suite);
      ("member", Test_member.suite);
      ("daemon", Test_daemon.suite);
      ("baselines", Test_baselines.suite);
      ("udp", Test_udp.suite);
      ("fuzz", Test_fuzz.suite);
      ("app", Test_app.suite);
      ("load", Test_load.suite);
      ("multiring", Test_multiring.suite);
    ]
