(* Golden-vector wall for the wire format.

   [vectors/frames.bin] holds the committed encoding of every message
   variant in [Vectors_def.all], captured from the Buffer-based encoder
   BEFORE the pooled codec existed. Every run asserts that both encoders
   still reproduce those bytes exactly and that decoding loses nothing —
   any change to the wire format, intended or not, fails here first.

   Regenerate (only on a deliberate format change) with:
     dune exec test/gen_vectors.exe *)

open Aring_wire
module V = Aring_test_vectors.Vectors_def

let frames = lazy (V.read_file "vectors/frames.bin")
let pool = Message.Pool.create ()

let iter2_vectors f =
  let frames = Lazy.force frames in
  Alcotest.(check int)
    "frame count matches vector definitions" (List.length V.all)
    (List.length frames);
  List.iter2 (fun (name, m) frame -> f name m frame) V.all frames

let test_reference_encoder_bytes () =
  iter2_vectors (fun name m frame ->
      Alcotest.(check bool)
        (name ^ ": reference encode reproduces committed bytes")
        true
        (Bytes.equal (Message.encode m) frame))

let test_pooled_encoder_bytes () =
  iter2_vectors (fun name m frame ->
      Alcotest.(check bool)
        (name ^ ": pooled encode reproduces committed bytes")
        true
        (Bytes.equal (Message.Pool.encode pool m) frame);
      let buf, len = Message.Pool.encode_view pool m in
      Alcotest.(check bool)
        (name ^ ": encode_view reproduces committed bytes")
        true
        (len = Bytes.length frame && Bytes.equal (Bytes.sub buf 0 len) frame))

let test_scratch_encoder_bytes () =
  (* A deliberately tiny scratch, so every vector also exercises
     grow-in-place doubling. *)
  let s = Codec.scratch ~initial_capacity:16 () in
  iter2_vectors (fun name m frame ->
      Message.encode_into s m;
      Alcotest.(check bool)
        (name ^ ": encode_into reproduces committed bytes")
        true
        (Bytes.equal (Codec.scratch_contents s) frame))

let test_lossless_decode () =
  iter2_vectors (fun name m frame ->
      Alcotest.(check bool)
        (name ^ ": decode is lossless")
        true
        (Message.decode frame = m);
      (* Pooled decode of the frame embedded mid-buffer, as it arrives in a
         receive buffer. *)
      let padded =
        Bytes.concat Bytes.empty
          [ Bytes.make 7 '\xAA'; frame; Bytes.make 5 '\xBB' ]
      in
      Alcotest.(check bool)
        (name ^ ": pooled decode_sub is lossless")
        true
        (Message.Pool.decode_sub pool padded ~pos:7 ~len:(Bytes.length frame)
        = m))

let suite =
  [
    ("reference encoder matches golden bytes", `Quick, test_reference_encoder_bytes);
    ("pooled encoder matches golden bytes", `Quick, test_pooled_encoder_bytes);
    ("scratch encoder matches golden bytes", `Quick, test_scratch_encoder_bytes);
    ("golden frames decode losslessly", `Quick, test_lossless_decode);
  ]
