(* Wire-format tests: codec primitives, message round-trips (including
   property-based random messages), size accounting, and malformed-input
   rejection. *)

open Aring_wire

let check = Alcotest.check

(* -------------------------------------------------------------------- *)
(* Codec primitives                                                      *)

let test_codec_roundtrip_ints () =
  let e = Codec.encoder () in
  Codec.write_u8 e 200;
  Codec.write_bool e true;
  Codec.write_i32 e (-123456);
  Codec.write_i64 e 0x1234_5678_9ABC_DEF;
  Codec.write_bytes e (Bytes.of_string "hello");
  Codec.write_list e (Codec.write_i64 e) [ 1; 2; 3 ];
  let d = Codec.decoder (Codec.to_bytes e) in
  check Alcotest.int "u8" 200 (Codec.read_u8 d);
  check Alcotest.bool "bool" true (Codec.read_bool d);
  check Alcotest.int "i32" (-123456) (Codec.read_i32 d);
  check Alcotest.int "i64" 0x1234_5678_9ABC_DEF (Codec.read_i64 d);
  check Alcotest.string "bytes" "hello" (Bytes.to_string (Codec.read_bytes d));
  check (Alcotest.list Alcotest.int) "list" [ 1; 2; 3 ]
    (Codec.read_list d (fun () -> Codec.read_i64 d));
  Codec.expect_end d

let test_codec_truncation () =
  let e = Codec.encoder () in
  Codec.write_i64 e 42;
  let full = Codec.to_bytes e in
  let truncated = Bytes.sub full 0 4 in
  let d = Codec.decoder truncated in
  Alcotest.check_raises "truncated i64"
    (Codec.Decode_error "truncated input: need 8, have 4") (fun () ->
      ignore (Codec.read_i64 d))

let test_codec_trailing () =
  let d = Codec.decoder (Bytes.make 3 'x') in
  ignore (Codec.read_u8 d);
  Alcotest.check_raises "trailing bytes" (Codec.Decode_error "2 trailing bytes")
    (fun () -> Codec.expect_end d)

let test_codec_u8_range () =
  let e = Codec.encoder () in
  Alcotest.check_raises "u8 range" (Invalid_argument "Codec.write_u8: out of range")
    (fun () -> Codec.write_u8 e 256)

(* -------------------------------------------------------------------- *)
(* Message round-trips                                                   *)

let ring : Types.ring_id = { rep = 3; ring_seq = 17 }

let sample_data : Message.data =
  {
    d_ring = ring;
    seq = 101;
    pid = 4;
    d_round = 12;
    post_token = true;
    service = Types.Safe;
    payload = Bytes.of_string "payload-bytes";
  }

let sample_token : Message.token =
  {
    t_ring = ring;
    token_id = 55;
    t_round = 7;
    t_seq = 140;
    aru = 120;
    aru_id = Some 2;
    fcc = 33;
    rtr = [ 121; 125; 130 ];
  }

let sample_join : Message.join =
  { j_pid = 5; proc_set = [ 0; 1; 2; 5 ]; fail_set = [ 3 ]; join_seq = 9 }

let sample_commit : Message.commit =
  {
    c_ring = { rep = 0; ring_seq = 18 };
    c_token_id = 2;
    c_pass = 1;
    c_memb =
      [
        {
          m_pid = 0;
          m_old_ring = ring;
          m_aru = 100;
          m_high_seq = 120;
          m_high_delivered = 95;
        };
        {
          m_pid = 5;
          m_old_ring = { rep = 5; ring_seq = 11 };
          m_aru = 0;
          m_high_seq = 0;
          m_high_delivered = 0;
        };
      ];
    c_holds = [ (ring, [ 101; 102; 105 ]); ({ rep = 5; ring_seq = 11 }, []) ];
  }

let roundtrip m = Message.decode (Message.encode m)

let test_roundtrip_data () =
  match roundtrip (Message.Data sample_data) with
  | Message.Data d ->
      check Alcotest.int "seq" sample_data.seq d.seq;
      check Alcotest.int "pid" sample_data.pid d.pid;
      check Alcotest.int "round" sample_data.d_round d.d_round;
      check Alcotest.bool "post_token" sample_data.post_token d.post_token;
      check Alcotest.bool "service" true
        (Types.service_equal sample_data.service d.service);
      check Alcotest.string "payload"
        (Bytes.to_string sample_data.payload)
        (Bytes.to_string d.payload);
      check Alcotest.bool "ring" true (Types.ring_id_equal sample_data.d_ring d.d_ring)
  | m -> Alcotest.failf "wrong kind: %s" (Message.kind m)

let test_roundtrip_token () =
  match roundtrip (Message.Token sample_token) with
  | Message.Token t ->
      check Alcotest.int "token_id" sample_token.token_id t.token_id;
      check Alcotest.int "seq" sample_token.t_seq t.t_seq;
      check Alcotest.int "aru" sample_token.aru t.aru;
      check (Alcotest.option Alcotest.int) "aru_id" sample_token.aru_id t.aru_id;
      check Alcotest.int "fcc" sample_token.fcc t.fcc;
      check (Alcotest.list Alcotest.int) "rtr" sample_token.rtr t.rtr
  | m -> Alcotest.failf "wrong kind: %s" (Message.kind m)

let test_roundtrip_token_no_aru_id () =
  let tok = { sample_token with aru_id = None } in
  match roundtrip (Message.Token tok) with
  | Message.Token t ->
      check (Alcotest.option Alcotest.int) "aru_id none" None t.aru_id
  | m -> Alcotest.failf "wrong kind: %s" (Message.kind m)

let test_roundtrip_join () =
  match roundtrip (Message.Join sample_join) with
  | Message.Join j ->
      check (Alcotest.list Alcotest.int) "proc_set" sample_join.proc_set j.proc_set;
      check (Alcotest.list Alcotest.int) "fail_set" sample_join.fail_set j.fail_set;
      check Alcotest.int "join_seq" sample_join.join_seq j.join_seq
  | m -> Alcotest.failf "wrong kind: %s" (Message.kind m)

let test_roundtrip_commit () =
  match roundtrip (Message.Commit sample_commit) with
  | Message.Commit c ->
      check Alcotest.int "pass" sample_commit.c_pass c.c_pass;
      check Alcotest.int "members" 2 (List.length c.c_memb);
      let m0 = List.hd c.c_memb in
      check Alcotest.int "m_aru" 100 m0.m_aru;
      check Alcotest.int "m_high_seq" 120 m0.m_high_seq;
      check Alcotest.int "holds entries" 2 (List.length c.c_holds);
      (match c.c_holds with
      | (r0, seqs) :: _ ->
          check Alcotest.bool "holds ring" true (Types.ring_id_equal r0 ring);
          check (Alcotest.list Alcotest.int) "holds seqs" [ 101; 102; 105 ] seqs
      | [] -> Alcotest.fail "no holds")
  | m -> Alcotest.failf "wrong kind: %s" (Message.kind m)

let test_unknown_tag () =
  let bad = Bytes.make 1 '\xFF' in
  Alcotest.check_raises "unknown tag" (Codec.Decode_error "unknown message tag 255")
    (fun () -> ignore (Message.decode bad))

let test_decode_rejects_trailing () =
  let b = Message.encode (Message.Join sample_join) in
  let padded = Bytes.cat b (Bytes.make 1 'z') in
  Alcotest.check_raises "trailing" (Codec.Decode_error "1 trailing bytes")
    (fun () -> ignore (Message.decode padded))

(* -------------------------------------------------------------------- *)
(* Random message properties                                             *)

let service_gen =
  QCheck.Gen.oneofl [ Types.Fifo; Types.Causal; Types.Agreed; Types.Safe ]

let ring_gen =
  QCheck.Gen.(
    map2 (fun rep ring_seq : Types.ring_id -> { rep; ring_seq }) (0 -- 100)
      (0 -- 10_000))

let data_gen =
  QCheck.Gen.(
    ring_gen >>= fun d_ring ->
    0 -- 1_000_000 >>= fun seq ->
    0 -- 64 >>= fun pid ->
    0 -- 100_000 >>= fun d_round ->
    bool >>= fun post_token ->
    service_gen >>= fun service ->
    string_size (0 -- 2000) >>= fun payload ->
    return
      (Message.Data
         {
           d_ring;
           seq;
           pid;
           d_round;
           post_token;
           service;
           payload = Bytes.of_string payload;
         }))

let token_gen =
  QCheck.Gen.(
    ring_gen >>= fun t_ring ->
    0 -- 1_000_000 >>= fun token_id ->
    0 -- 100_000 >>= fun t_round ->
    0 -- 1_000_000 >>= fun t_seq ->
    0 -- 1_000_000 >>= fun aru ->
    opt (0 -- 64) >>= fun aru_id ->
    0 -- 10_000 >>= fun fcc ->
    list_size (0 -- 100) (0 -- 1_000_000) >>= fun rtr ->
    return (Message.Token { t_ring; token_id; t_round; t_seq; aru; aru_id; fcc; rtr }))

let join_gen =
  QCheck.Gen.(
    0 -- 64 >>= fun j_pid ->
    list_size (0 -- 32) (0 -- 64) >>= fun proc_set ->
    list_size (0 -- 32) (0 -- 64) >>= fun fail_set ->
    0 -- 1000 >>= fun join_seq ->
    return (Message.Join { j_pid; proc_set; fail_set; join_seq }))

let member_gen =
  QCheck.Gen.(
    0 -- 64 >>= fun m_pid ->
    ring_gen >>= fun m_old_ring ->
    0 -- 100_000 >>= fun m_aru ->
    0 -- 100_000 >>= fun m_high_seq ->
    0 -- 100_000 >>= fun m_high_delivered ->
    return
      ({ m_pid; m_old_ring; m_aru; m_high_seq; m_high_delivered }
        : Message.member_info))

let holds_gen =
  QCheck.Gen.(
    list_size (0 -- 4)
      (pair ring_gen (list_size (0 -- 20) (0 -- 100_000))))

let commit_gen =
  QCheck.Gen.(
    ring_gen >>= fun c_ring ->
    0 -- 1000 >>= fun c_token_id ->
    1 -- 4 >>= fun c_pass ->
    list_size (0 -- 16) member_gen >>= fun c_memb ->
    holds_gen >>= fun c_holds ->
    return (Message.Commit { c_ring; c_token_id; c_pass; c_memb; c_holds }))

let message_gen = QCheck.Gen.oneof [ data_gen; token_gen; join_gen; commit_gen ]

let message_arbitrary =
  QCheck.make message_gen ~print:(fun m -> Fmt.str "%a" Message.pp m)

let prop_roundtrip =
  QCheck.Test.make ~name:"encode/decode round-trips" ~count:500
    message_arbitrary (fun m ->
      let m' = roundtrip m in
      Message.encode m = Message.encode m')

let prop_wire_size_exact =
  QCheck.Test.make ~name:"wire_size equals encoded length" ~count:500
    message_arbitrary (fun m ->
      Message.wire_size m = Bytes.length (Message.encode m))

let prop_decode_truncated_fails =
  QCheck.Test.make ~name:"any strict prefix fails to decode cleanly" ~count:400
    QCheck.(pair message_arbitrary small_nat)
    (fun (m, cut_choice) ->
      let b = Message.encode m in
      let n = Bytes.length b in
      n = 0
      ||
      let cut = cut_choice mod n in
      match Message.decode_result (Bytes.sub b 0 cut) with
      | Ok _ -> false (* a strict prefix must never parse *)
      | Error _ -> true
      | exception _ -> false (* only Decode_error, mapped to Error *))

let prop_decode_bitflip_never_raises =
  QCheck.Test.make
    ~name:"bit-flipped encodings decode to Ok or Error, never raise"
    ~count:500
    QCheck.(triple message_arbitrary small_nat (int_range 0 7))
    (fun (m, byte_choice, bit) ->
      let b = Message.encode m in
      let i = byte_choice mod Bytes.length b in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
      match Message.decode_result b with
      | Ok _ | Error _ -> true (* some flips (e.g. payload bytes) are benign *)
      | exception _ -> false)

let prop_decode_garbage_never_raises =
  QCheck.Test.make ~name:"random bytes decode to Ok or Error, never raise"
    ~count:500
    QCheck.(string_of_size Gen.(0 -- 200))
    (fun s ->
      match Message.decode_result (Bytes.of_string s) with
      | Ok _ | Error _ -> true
      | exception _ -> false)

(* -------------------------------------------------------------------- *)
(* Pooled codec: the zero-allocation paths must be byte-identical to the
   Buffer-based reference encoder and lose nothing on decode.            *)

(* One long-lived pool across all iterations — exactly the hot-path usage
   pattern, and it makes cross-message state leakage visible. *)
let shared_pool = Message.Pool.create ()

let prop_pooled_encode_matches_reference =
  QCheck.Test.make ~name:"pooled encode is byte-identical to reference"
    ~count:500 message_arbitrary (fun m ->
      Bytes.equal (Message.Pool.encode shared_pool m) (Message.encode m))

let prop_scratch_encode_matches_reference =
  QCheck.Test.make ~name:"encode_into is byte-identical to reference"
    ~count:500 message_arbitrary
    (let s = Codec.scratch ~initial_capacity:16 () in
     fun m ->
       Message.encode_into s m;
       Bytes.equal (Codec.scratch_contents s) (Message.encode m))

let prop_pooled_roundtrip =
  QCheck.Test.make ~name:"pooled encode_view/decode_sub round-trips"
    ~count:500 message_arbitrary (fun m ->
      let buf, len = Message.Pool.encode_view shared_pool m in
      Message.Pool.decode_sub shared_pool buf ~pos:0 ~len = m)

let test_codec_set_primitives () =
  let buf = Bytes.create 64 in
  let pos = Codec.set_u8 buf 0 200 in
  let pos = Codec.set_bool buf pos true in
  let pos = Codec.set_i32 buf pos (-123456) in
  let pos = Codec.set_i64 buf pos 0x1234_5678_9ABC_DEF in
  let pos = Codec.set_bytes buf pos (Bytes.of_string "hello") in
  let d = Codec.decoder_empty () in
  Codec.decoder_reset d buf ~pos:0 ~len:pos;
  check Alcotest.int "u8" 200 (Codec.read_u8 d);
  check Alcotest.bool "bool" true (Codec.read_bool d);
  check Alcotest.int "i32" (-123456) (Codec.read_i32 d);
  check Alcotest.int "i64" 0x1234_5678_9ABC_DEF (Codec.read_i64 d);
  check Alcotest.string "bytes" "hello" (Bytes.to_string (Codec.read_bytes d));
  Codec.expect_end d

let test_decoder_reset_bounds () =
  let d = Codec.decoder_empty () in
  let buf = Bytes.create 8 in
  Alcotest.check_raises "slice past end"
    (Invalid_argument "Codec.decoder_reset: slice out of bounds") (fun () ->
      Codec.decoder_reset d buf ~pos:4 ~len:8);
  Alcotest.check_raises "negative pos"
    (Invalid_argument "Codec.decoder_reset: slice out of bounds") (fun () ->
      Codec.decoder_reset d buf ~pos:(-1) ~len:2)

let test_header_overhead_positive () =
  check Alcotest.bool "header overhead sane" true
    (Message.header_overhead > 0 && Message.header_overhead < 128);
  check Alcotest.int "data_wire_size"
    (Message.header_overhead + 1350)
    (Message.data_wire_size ~payload_len:1350)

let qtest = QCheck_alcotest.to_alcotest

let suite =
  [
    ("codec ints roundtrip", `Quick, test_codec_roundtrip_ints);
    ("codec truncation", `Quick, test_codec_truncation);
    ("codec trailing", `Quick, test_codec_trailing);
    ("codec u8 range", `Quick, test_codec_u8_range);
    ("data roundtrip", `Quick, test_roundtrip_data);
    ("token roundtrip", `Quick, test_roundtrip_token);
    ("token roundtrip (no aru_id)", `Quick, test_roundtrip_token_no_aru_id);
    ("join roundtrip", `Quick, test_roundtrip_join);
    ("commit roundtrip", `Quick, test_roundtrip_commit);
    ("unknown tag rejected", `Quick, test_unknown_tag);
    ("trailing bytes rejected", `Quick, test_decode_rejects_trailing);
    ("header overhead", `Quick, test_header_overhead_positive);
    ("codec set_* primitives", `Quick, test_codec_set_primitives);
    ("decoder_reset bounds", `Quick, test_decoder_reset_bounds);
    qtest prop_roundtrip;
    qtest prop_pooled_encode_matches_reference;
    qtest prop_scratch_encode_matches_reference;
    qtest prop_pooled_roundtrip;
    qtest prop_wire_size_exact;
    qtest prop_decode_truncated_fails;
    qtest prop_decode_bitflip_never_raises;
    qtest prop_decode_garbage_never_raises;
  ]
