(* Simulator integration tests: determinism, delivery guarantees under
   simulated timing, loss recovery through the rtr mechanism, the
   accelerated protocol's observable effects, and fault hooks. *)

open Aring_wire
open Aring_ring
open Aring_sim

let check = Alcotest.check

let rid : Types.ring_id = { rep = 0; ring_seq = 1 }

(* A small simulated cluster of bare operational nodes. *)
type cluster = {
  sim : Netsim.t;
  nodes : Node.t array;
  delivered : (Types.pid * Types.seqno) list ref array;  (* newest first *)
  token_losses : int ref;
}

let make_cluster ?(n = 4) ?(net = Profile.gigabit) ?(tier = Profile.library)
    ?(params = Params.accelerated ()) ?(seed = 1L) () =
  let ring = Array.init n (fun i -> i) in
  let nodes =
    Array.init n (fun me -> Node.create ~params ~ring_id:rid ~ring ~me ())
  in
  let sim =
    Netsim.create ~net ~tiers:(Array.make n tier)
      ~participants:(Array.map Node.participant nodes)
      ~seed ()
  in
  let delivered = Array.init n (fun _ -> ref []) in
  let token_losses = ref 0 in
  Netsim.on_deliver sim (fun ~at ~now:_ (d : Message.data) ->
      delivered.(at) := (d.pid, d.seq) :: !(delivered.(at)));
  Netsim.on_token_loss sim (fun ~at:_ ~now:_ -> incr token_losses);
  { sim; nodes; delivered; token_losses }

let delivery_list c i = List.rev !(c.delivered.(i))

let submit_burst ?(spacing_ns = 100_000) c ~per_node ~payload_len =
  let n = Array.length c.nodes in
  for node = 0 to n - 1 do
    for i = 0 to per_node - 1 do
      Netsim.submit_at c.sim ~at:(i * spacing_ns) ~node Types.Agreed
        (Bytes.create payload_len)
    done
  done

let ms n = n * 1_000_000

let test_idle_token_circulates () =
  let c = make_cluster () in
  Netsim.run_until c.sim (ms 50);
  let rounds = (Engine.stats (Node.engine c.nodes.(0))).rounds in
  check Alcotest.bool "token circulated many times" true (rounds > 100)

let test_burst_fully_delivered () =
  let c = make_cluster () in
  submit_burst c ~per_node:100 ~payload_len:200;
  Netsim.run_until c.sim (ms 100);
  for i = 0 to 3 do
    check Alcotest.int
      (Printf.sprintf "node %d delivered all" i)
      400
      (List.length (delivery_list c i))
  done;
  (* Identical total order everywhere. *)
  let reference = delivery_list c 0 in
  for i = 1 to 3 do
    check Alcotest.bool
      (Printf.sprintf "node %d same order" i)
      true
      (delivery_list c i = reference)
  done

let test_deterministic_replay () =
  let run () =
    let c = make_cluster ~seed:99L () in
    submit_burst c ~per_node:50 ~payload_len:500;
    Netsim.run_until c.sim (ms 60);
    (delivery_list c 0, (Netsim.stats c.sim).packets_sent, Netsim.now c.sim)
  in
  let a = run () and b = run () in
  check Alcotest.bool "identical deliveries" true (a = b)

let test_no_spurious_retransmissions () =
  (* The accelerated token runs ahead of post-token data, yet the rtr cap
     (previous round's seq) must prevent any retransmission request on a
     lossless network. *)
  let c = make_cluster ~n:8 ~params:(Params.accelerated ()) () in
  submit_burst c ~per_node:200 ~payload_len:1342;
  Netsim.run_until c.sim (ms 200);
  Array.iteri
    (fun i node ->
      let s = Engine.stats (Node.engine node) in
      check Alcotest.int (Printf.sprintf "node %d no rtr requests" i) 0
        s.rtr_requested;
      check Alcotest.int (Printf.sprintf "node %d no retransmissions" i) 0
        s.retrans_sent)
    c.nodes

let test_loss_recovered_by_rtr () =
  let net = Profile.with_loss Profile.gigabit 0.02 in
  let c = make_cluster ~n:4 ~net () in
  submit_burst c ~per_node:100 ~payload_len:800;
  Netsim.run_until c.sim (ms 300);
  for i = 0 to 3 do
    check Alcotest.int
      (Printf.sprintf "node %d recovered all" i)
      400
      (List.length (delivery_list c i))
  done;
  let total_retrans =
    Array.fold_left
      (fun acc node -> acc + (Engine.stats (Node.engine node)).retrans_sent)
      0 c.nodes
  in
  check Alcotest.bool "retransmissions happened" true (total_retrans > 0);
  check Alcotest.bool "random losses happened" true
    ((Netsim.stats c.sim).random_losses > 0)

let test_accelerated_rotates_faster () =
  let rounds_of params =
    let c = make_cluster ~n:8 ~tier:Profile.spread ~params () in
    submit_burst c ~per_node:100 ~payload_len:1342;
    Netsim.run_until c.sim (ms 100);
    (Engine.stats (Node.engine c.nodes.(0))).rounds
  in
  let accel = rounds_of (Params.accelerated ()) in
  let orig = rounds_of Params.original in
  check Alcotest.bool
    (Printf.sprintf "accelerated (%d) rotates faster than original (%d)" accel
       orig)
    true (accel > orig)

let test_crash_triggers_token_loss () =
  let c = make_cluster ~n:4 () in
  Netsim.call_at c.sim ~at:(ms 10) (fun () -> Netsim.crash c.sim 2);
  Netsim.run_until c.sim (ms 300);
  check Alcotest.bool "token loss detected after crash" true
    (!(c.token_losses) > 0);
  check Alcotest.bool "crashed node is dead" false (Netsim.is_alive c.sim 2)

let test_partition_blocks_progress () =
  (* Cutting node 3 off entirely stalls it but the drop predicate is
     honoured (partition_drops counted). *)
  let c = make_cluster ~n:4 () in
  Netsim.set_drop c.sim (fun ~src ~dst _ -> src = 3 || dst = 3);
  submit_burst c ~per_node:20 ~payload_len:100;
  Netsim.run_until c.sim (ms 100);
  check Alcotest.bool "partition dropped packets" true
    ((Netsim.stats c.sim).partition_drops > 0);
  check Alcotest.int "isolated node delivered nothing" 0
    (List.length (delivery_list c 3))

let test_drop_until_auto_heals () =
  (* A timed partition window: node 3 is cut off from ms 5 to ms 20, then
     the saved predicate is restored automatically and retransmissions
     catch everyone up. *)
  let c = make_cluster ~n:4 () in
  Netsim.call_at c.sim ~at:(ms 5) (fun () ->
      Netsim.set_drop_until c.sim ~until:(ms 20) (fun ~src ~dst _ ->
          src = 3 || dst = 3));
  submit_burst c ~per_node:20 ~payload_len:100;
  Netsim.run_until c.sim (ms 400);
  check Alcotest.bool "packets dropped during the window" true
    ((Netsim.stats c.sim).partition_drops > 0);
  for i = 0 to 3 do
    check Alcotest.int
      (Printf.sprintf "node %d recovered after auto-heal" i)
      80
      (List.length (delivery_list c i))
  done

let test_tiny_switch_buffer_drops_and_recovers () =
  let net = { Profile.gigabit with switch_port_buffer = 16 * 1024 } in
  let c = make_cluster ~n:8 ~net () in
  (* An instantaneous burst: every pending queue fills at t=0, so adjacent
     senders' post-token overlap floods the switch ports. *)
  submit_burst ~spacing_ns:0 c ~per_node:150 ~payload_len:1342;
  Netsim.run_until c.sim (ms 2000);
  check Alcotest.bool "switch dropped packets" true
    ((Netsim.stats c.sim).switch_drops > 0);
  (* Retransmissions heal the overflow loss. *)
  for i = 0 to 7 do
    check Alcotest.int
      (Printf.sprintf "node %d recovered" i)
      1200
      (List.length (delivery_list c i))
  done



(* -------------------------------------------------------------------- *)
(* Causality: the total order respects potential causality. If a node
   submits m' after having delivered m, then every node delivers m before
   m' (Agreed delivery, Section II). *)

let test_total_order_respects_causality () =
  let c = make_cluster ~n:4 () in
  (* Node 1 reacts to each delivery of node 0's messages by submitting a
     reply; the reply must always follow the original everywhere. *)
  let sim = c.sim in
  let replied = Hashtbl.create 16 in
  Netsim.on_deliver sim (fun ~at ~now:_ (d : Message.data) ->
      c.delivered.(at) := (d.pid, d.seq) :: !(c.delivered.(at));
      if at = 1 && d.pid = 0 && not (Hashtbl.mem replied d.seq) then begin
        Hashtbl.replace replied d.seq ();
        Netsim.submit_now sim ~node:1 Types.Agreed
          (Bytes.of_string (Printf.sprintf "reply-%d" d.seq))
      end);
  for k = 0 to 19 do
    Netsim.submit_at c.sim ~at:(k * 500_000) ~node:0 Types.Agreed
      (Bytes.create 64)
  done;
  Netsim.run_until c.sim (ms 100);
  (* Check at every node: each reply (from node 1) appears after the
     corresponding original (by its position in the stream). *)
  for node = 0 to 3 do
    let stream = delivery_list c node in
    let position (pid, seq) =
      let rec find i = function
        | [] -> None
        | x :: rest -> if x = (pid, seq) then Some i else find (i + 1) rest
      in
      find 0 stream
    in
    (* Node 0 sent 20 originals; node 1 replied to each. Replies carry
       increasing seqs; map i-th reply to i-th original by send order. *)
    let originals = List.filter (fun (pid, _) -> pid = 0) stream in
    let replies = List.filter (fun (pid, _) -> pid = 1) stream in
    check Alcotest.int "all originals" 20 (List.length originals);
    check Alcotest.int "all replies" 20 (List.length replies);
    List.iteri
      (fun i orig ->
        let reply = List.nth replies i in
        match (position orig, position reply) with
        | Some po, Some pr ->
            if po >= pr then
              Alcotest.failf "node %d: reply %d delivered before original" node i
        | _ -> Alcotest.fail "missing message")
      originals
  done

(* -------------------------------------------------------------------- *)
(* Profile cost model                                                    *)

let test_profile_tx_ns () =
  (* 1500 bytes at 1 Gbps = 12 us; at 10 Gbps = 1.2 us. *)
  check Alcotest.int "1G serialization" 12_000 (Profile.tx_ns Profile.gigabit 1500);
  check Alcotest.int "10G serialization" 1_200
    (Profile.tx_ns Profile.ten_gigabit 1500)

let test_profile_frag_cost () =
  let tier = Profile.library in
  let one = Profile.data_proc_cost tier ~mtu:1500 ~wire_bytes:1400 in
  let six = Profile.data_proc_cost tier ~mtu:1500 ~wire_bytes:8900 in
  check Alcotest.int "single fragment" (tier.Profile.data_proc_ns + tier.Profile.frag_ns) one;
  check Alcotest.int "six fragments"
    (tier.Profile.data_proc_ns + (6 * tier.Profile.frag_ns))
    six;
  (* Jumbo frames collapse the same datagram to one fragment. *)
  let jumbo = Profile.data_proc_cost tier ~mtu:9000 ~wire_bytes:8900 in
  check Alcotest.int "jumbo single fragment" one jumbo

let test_profile_modifiers () =
  let lossy = Profile.with_loss Profile.gigabit 0.25 in
  check (Alcotest.float 1e-9) "loss set" 0.25 lossy.Profile.loss_prob;
  let jumbo = Profile.with_jumbo_frames Profile.ten_gigabit in
  check Alcotest.int "jumbo mtu" 9000 jumbo.Profile.mtu;
  check Alcotest.string "jumbo name" "10GbE+jumbo" jumbo.Profile.net_name;
  check Alcotest.int "original untouched" 1500 Profile.ten_gigabit.Profile.mtu

let test_spread_fits_one_mtu () =
  (* Spread's 1350-byte message plus its headers must fill exactly one
     standard MTU (the paper's design point). *)
  let wire =
    Aring_wire.Message.data_wire_size ~payload_len:1350
    + Profile.spread.Profile.extra_data_header
  in
  check Alcotest.int "exactly one MTU" 1500 wire

(* -------------------------------------------------------------------- *)
(* Scenario harness                                                      *)

let test_scenario_throughput_sane () =
  let open Aring_harness in
  let spec =
    {
      Scenario.default_spec with
      offered_mbps = 150.0;
      warmup_ns = ms 50;
      measure_ns = ms 150;
    }
  in
  let r = Scenario.run spec in
  check Alcotest.bool "delivered within 3% of offered" true
    (abs_float (r.delivered_mbps -. 150.0) < 4.5);
  check Alcotest.bool "latency positive" true
    (Aring_util.Stats.mean r.latency_us > 0.0);
  check Alcotest.bool "collected samples" true (r.deliveries > 1000)

let test_scenario_accel_beats_original_under_load () =
  let open Aring_harness in
  let run params =
    Scenario.run
      {
        Scenario.default_spec with
        tier = Profile.spread;
        params;
        offered_mbps = 700.0;
        warmup_ns = ms 50;
        measure_ns = ms 200;
      }
  in
  let accel = run (Params.accelerated ()) in
  let orig = run Params.original in
  check Alcotest.bool "both sustain 700 Mbps" true
    (accel.delivered_mbps > 680.0 && orig.delivered_mbps > 680.0);
  check Alcotest.bool
    (Printf.sprintf "accel latency (%.0f) < original (%.0f)"
       (Aring_util.Stats.mean accel.latency_us)
       (Aring_util.Stats.mean orig.latency_us))
    true
    (Aring_util.Stats.mean accel.latency_us
    < Aring_util.Stats.mean orig.latency_us)

(* -------------------------------------------------------------------- *)
(* Asymmetric links and latency tiers                                    *)

(* Run a 4-node burst with per-node delivery counts and first/last
   delivery times, under an arbitrary link configuration. *)
let run_with_times ~configure ~per_node ~payload_len ~horizon =
  let c = make_cluster ~n:4 ~seed:5L () in
  configure c.sim;
  let count = Array.make 4 0 in
  let first = Array.make 4 max_int in
  let last = Array.make 4 0 in
  Netsim.on_deliver c.sim (fun ~at ~now (_ : Message.data) ->
      count.(at) <- count.(at) + 1;
      if now < first.(at) then first.(at) <- now;
      if now > last.(at) then last.(at) <- now);
  submit_burst c ~per_node ~payload_len;
  Netsim.run_until c.sim horizon;
  (count, first, last)

let test_asym_explicit_defaults_identical () =
  (* Setting every link rate to the profile rate and the extra latency
     to zero must reproduce the untouched schedule exactly — the
     regression wall for the symmetric fast path. *)
  let run configure =
    let c = make_cluster ~n:4 ~seed:42L () in
    configure c.sim;
    submit_burst c ~per_node:40 ~payload_len:700;
    Netsim.run_until c.sim (ms 80);
    ( List.init 4 (delivery_list c),
      (Netsim.stats c.sim).packets_sent,
      Netsim.now c.sim )
  in
  let a = run (fun _ -> ()) in
  let b =
    run (fun sim ->
        for node = 0 to 3 do
          Netsim.set_link_rates sim ~node ~up_bps:1_000_000_000
            ~down_bps:1_000_000_000 ()
        done;
        Netsim.set_extra_latency sim (fun ~src:_ ~dst:_ -> 0))
  in
  check Alcotest.bool "explicit defaults are byte-identical" true (a = b)

let test_asym_downlink_honored () =
  (* Starve one receiver's downlink by 20x: its deliveries must stretch
     out by the serialization arithmetic while healthy receivers keep
     their fast completion — head-of-line isolation at the switch. *)
  let base =
    run_with_times ~configure:(fun _ -> ()) ~per_node:50 ~payload_len:1000
      ~horizon:(ms 400)
  in
  let slow =
    run_with_times
      ~configure:(fun sim ->
        Netsim.set_link_rates sim ~node:3 ~down_bps:50_000_000 ())
      ~per_node:50 ~payload_len:1000 ~horizon:(ms 400)
  in
  let bc, _, blast = base and sc, _, slast = slow in
  Array.iteri
    (fun i c -> check Alcotest.int (Printf.sprintf "base node %d all" i) 200 c)
    bc;
  Array.iteri
    (fun i c -> check Alcotest.int (Printf.sprintf "slow node %d all" i) 200 c)
    sc;
  (* 150 foreign ~1KB packets over a 50 Mbps downlink serialize for
     >20 ms; the symmetric run finishes far earlier. *)
  check Alcotest.bool "slow downlink stretches its receiver" true
    (slast.(3) > blast.(3) + ms 10);
  check Alcotest.bool "healthy receiver finishes first" true
    (slast.(1) + ms 10 < slast.(3))

let test_asym_uplink_honored () =
  (* Choking one sender's uplink delays everything it originates (its
     packets serialize 20x slower at its own NIC) without starving what
     others send. *)
  let base =
    run_with_times ~configure:(fun _ -> ()) ~per_node:30 ~payload_len:1000
      ~horizon:(ms 400)
  in
  let slow =
    run_with_times
      ~configure:(fun sim ->
        Netsim.set_link_rates sim ~node:0 ~up_bps:50_000_000 ())
      ~per_node:30 ~payload_len:1000 ~horizon:(ms 400)
  in
  let bc, _, blast = base and sc, _, slast = slow in
  Array.iteri
    (fun i c -> check Alcotest.int (Printf.sprintf "base node %d all" i) 120 c)
    bc;
  Array.iteri
    (fun i c -> check Alcotest.int (Printf.sprintf "slow node %d all" i) 120 c)
    sc;
  (* Node 0 contributes 30 of the 120 ordered messages; its slow NIC
     gates the total order's completion everywhere. *)
  check Alcotest.bool "slow uplink delays cluster completion" true
    (slast.(1) > blast.(1) + ms 2)

let test_latency_classes_honored () =
  (* Two sites, 500 us of extra one-way WAN latency between them. A
     cross-site packet must pay at least the extra latency; and the
     total order must stay identical at every node. *)
  let wan = 500_000 in
  let run extra =
    let c = make_cluster ~n:4 ~seed:9L () in
    if extra > 0 then
      Netsim.set_latency_classes c.sim ~classes:[| 0; 0; 1; 1 |]
        ~matrix:[| [| 0; extra |]; [| extra; 0 |] |];
    let first = Array.make 4 max_int in
    Netsim.on_deliver c.sim (fun ~at ~now (_ : Message.data) ->
        if now < first.(at) then first.(at) <- now);
    Netsim.submit_at c.sim ~at:(ms 2) ~node:0 Types.Agreed (Bytes.create 600);
    Netsim.run_until c.sim (ms 200);
    first
  in
  let lan = run 0 and geo = run wan in
  check Alcotest.bool "cross-site delivery pays the WAN latency" true
    (geo.(3) >= lan.(3) + wan);
  check Alcotest.bool "lan run delivered" true (lan.(3) < max_int);
  check Alcotest.bool "geo run delivered" true (geo.(3) < max_int)

let test_asym_deterministic_replay () =
  (* Determinism re-pinned under the asymmetric code paths. *)
  let run () =
    let c = make_cluster ~n:4 ~seed:77L () in
    Netsim.set_link_rates c.sim ~node:2 ~up_bps:200_000_000
      ~down_bps:100_000_000 ();
    Netsim.set_latency_classes c.sim ~classes:[| 0; 1; 1; 0 |]
      ~matrix:[| [| 0; 90_000 |]; [| 110_000; 0 |] |];
    submit_burst c ~per_node:40 ~payload_len:900;
    Netsim.run_until c.sim (ms 150);
    ( List.init 4 (delivery_list c),
      (Netsim.stats c.sim).packets_sent,
      Netsim.now c.sim )
  in
  let a = run () and b = run () in
  check Alcotest.bool "asymmetric schedule replays identically" true (a = b)

let test_asym_validation () =
  let c = make_cluster ~n:4 () in
  Alcotest.check_raises "zero rate rejected"
    (Invalid_argument "Netsim.set_link_rates: rate must be positive")
    (fun () -> Netsim.set_link_rates c.sim ~node:0 ~up_bps:0 ());
  Alcotest.check_raises "node out of range"
    (Invalid_argument "Netsim.set_link_rates: node out of range") (fun () ->
      Netsim.set_link_rates c.sim ~node:9 ~down_bps:1 ());
  Alcotest.check_raises "classes must cover nodes"
    (Invalid_argument "Netsim.set_latency_classes: classes must cover every node")
    (fun () ->
      Netsim.set_latency_classes c.sim ~classes:[| 0 |] ~matrix:[| [| 0 |] |]);
  Alcotest.check_raises "class out of range"
    (Invalid_argument "Netsim.set_latency_classes: class out of range")
    (fun () ->
      Netsim.set_latency_classes c.sim ~classes:[| 0; 0; 0; 7 |]
        ~matrix:[| [| 0 |] |]);
  Alcotest.check_raises "matrix must be square"
    (Invalid_argument "Netsim.set_latency_classes: matrix must be square")
    (fun () ->
      Netsim.set_latency_classes c.sim ~classes:[| 0; 0; 0; 0 |]
        ~matrix:[| [| 0; 1 |] |])

let suite =
  [
    ("idle token circulates", `Quick, test_idle_token_circulates);
    ("burst fully delivered in order", `Quick, test_burst_fully_delivered);
    ("deterministic replay", `Quick, test_deterministic_replay);
    ("no spurious retransmissions", `Slow, test_no_spurious_retransmissions);
    ("loss recovered by rtr", `Slow, test_loss_recovered_by_rtr);
    ("accelerated rotates faster", `Slow, test_accelerated_rotates_faster);
    ("crash triggers token loss", `Quick, test_crash_triggers_token_loss);
    ("partition blocks isolated node", `Quick, test_partition_blocks_progress);
    ("set_drop_until auto-heals", `Quick, test_drop_until_auto_heals);
    ("switch overflow drops and recovers", `Slow,
      test_tiny_switch_buffer_drops_and_recovers);
    ("total order respects causality", `Quick, test_total_order_respects_causality);
    ("profile tx_ns", `Quick, test_profile_tx_ns);
    ("profile fragment cost", `Quick, test_profile_frag_cost);
    ("profile modifiers", `Quick, test_profile_modifiers);
    ("spread message fits one MTU", `Quick, test_spread_fits_one_mtu);
    ("scenario throughput sane", `Slow, test_scenario_throughput_sane);
    ("scenario accel beats original", `Slow,
      test_scenario_accel_beats_original_under_load);
    ("asym explicit defaults byte-identical", `Quick,
      test_asym_explicit_defaults_identical);
    ("asym downlink rate honored", `Quick, test_asym_downlink_honored);
    ("asym uplink rate honored", `Quick, test_asym_uplink_honored);
    ("latency classes honored", `Quick, test_latency_classes_honored);
    ("asym deterministic replay", `Quick, test_asym_deterministic_replay);
    ("asym validation", `Quick, test_asym_validation);
  ]
