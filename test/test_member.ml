(* Membership + EVS tests, driven through the discrete-event simulator:
   bootstrap from nothing, crash and reformation, partition and merge,
   transitional-configuration delivery, message continuity across
   configuration changes, and property tests over random crash schedules. *)

open Aring_wire
open Aring_ring
open Aring_sim

let check = Alcotest.check

let ms n = n * 1_000_000

(* Short timeouts keep membership tests fast in simulated time. *)
let test_params =
  {
    (Params.accelerated ()) with
    token_loss_ns = ms 50;
    token_retransmit_ns = ms 10;
    join_retransmit_ns = ms 20;
    consensus_timeout_ns = ms 100;
    merge_probe_ns = ms 80;
  }

type event =
  | Msg of Types.pid * Types.seqno * Types.ring_id * string  (* from, seq, ring, payload *)
  | View of Participant.view

type cluster = {
  sim : Netsim.t;
  members : Member.t array;
  log : event list ref array;  (* newest first, per node *)
}

let make_cluster ?(n = 4) ?(bootstrapped = true) ?(params = test_params)
    ?(net = Profile.gigabit) ?(seed = 7L) () =
  let initial_ring =
    if bootstrapped then Some (Array.init n (fun i -> i)) else None
  in
  let members =
    Array.init n (fun me -> Member.create ~params ~me ?initial_ring ())
  in
  let sim =
    Netsim.create ~net
      ~tiers:(Array.make n Profile.library)
      ~participants:(Array.map Member.participant members)
      ~seed ()
  in
  let log = Array.init n (fun _ -> ref []) in
  Netsim.on_deliver sim (fun ~at ~now:_ (d : Message.data) ->
      log.(at) :=
        Msg (d.pid, d.seq, d.d_ring, Bytes.to_string d.payload) :: !(log.(at)));
  Netsim.on_view sim (fun ~at ~now:_ v -> log.(at) := View v :: !(log.(at)));
  { sim; members; log }

let events c i = List.rev !(c.log.(i))

let messages c i =
  List.filter_map (function Msg (f, s, r, p) -> Some (f, s, r, p) | View _ -> None)
    (events c i)

let views c i =
  List.filter_map (function View v -> Some v | Msg _ -> None) (events c i)

let regular_views c i = List.filter (fun v -> not v.Participant.transitional) (views c i)

let last_regular_view c i =
  match List.rev (regular_views c i) with [] -> None | v :: _ -> Some v

let submit c node service payload =
  Member.submit c.members.(node) service (Bytes.of_string payload)

(* -------------------------------------------------------------------- *)
(* Bootstrap                                                             *)

let test_bootstrap_initial_ring () =
  let c = make_cluster ~n:4 () in
  Netsim.run_until c.sim (ms 50);
  for i = 0 to 3 do
    check Alcotest.string
      (Printf.sprintf "node %d operational" i)
      "operational"
      (Member.state_name c.members.(i));
    match last_regular_view c i with
    | Some v -> check (Alcotest.list Alcotest.int) "all members" [ 0; 1; 2; 3 ] v.members
    | None -> Alcotest.fail "no view delivered"
  done

let test_bootstrap_from_nothing () =
  let c = make_cluster ~n:5 ~bootstrapped:false () in
  Netsim.run_until c.sim (ms 2000);
  for i = 0 to 4 do
    check Alcotest.string
      (Printf.sprintf "node %d operational" i)
      "operational"
      (Member.state_name c.members.(i));
    match last_regular_view c i with
    | Some v ->
        check (Alcotest.list Alcotest.int)
          (Printf.sprintf "node %d full membership" i)
          [ 0; 1; 2; 3; 4 ] v.members
    | None -> Alcotest.fail "no view delivered"
  done;
  (* The formed ring orders messages. *)
  for node = 0 to 4 do
    submit c node Types.Agreed (Printf.sprintf "hello-%d" node)
  done;
  Netsim.run_until c.sim (ms 2200);
  for i = 0 to 4 do
    let msgs = messages c i in
    check Alcotest.int (Printf.sprintf "node %d delivered 5" i) 5 (List.length msgs)
  done

let test_singleton_forms_alone () =
  let c = make_cluster ~n:1 ~bootstrapped:false () in
  Netsim.run_until c.sim (ms 1000);
  check Alcotest.string "operational alone" "operational"
    (Member.state_name c.members.(0));
  (match last_regular_view c 0 with
  | Some v -> check (Alcotest.list Alcotest.int) "solo view" [ 0 ] v.members
  | None -> Alcotest.fail "no view");
  submit c 0 Types.Safe "note-to-self";
  Netsim.run_until c.sim (ms 1200);
  check Alcotest.int "self delivery" 1 (List.length (messages c 0))

(* -------------------------------------------------------------------- *)
(* Crash and reformation                                                 *)

let test_crash_reforms_ring () =
  let c = make_cluster ~n:5 () in
  Netsim.call_at c.sim ~at:(ms 20) (fun () -> Netsim.crash c.sim 2);
  Netsim.run_until c.sim (ms 1500);
  let survivors = [ 0; 1; 3; 4 ] in
  List.iter
    (fun i ->
      check Alcotest.string
        (Printf.sprintf "survivor %d operational" i)
        "operational"
        (Member.state_name c.members.(i));
      match last_regular_view c i with
      | Some v ->
          check (Alcotest.list Alcotest.int)
            (Printf.sprintf "survivor %d sees 4-ring" i)
            survivors v.members
      | None -> Alcotest.fail "no view")
    survivors;
  (* The reformed ring still orders messages. *)
  List.iter (fun node -> submit c node Types.Agreed (Printf.sprintf "post-crash-%d" node)) survivors;
  Netsim.run_until c.sim (ms 2000);
  List.iter
    (fun i ->
      let post =
        List.filter (fun (_, _, _, p) -> String.length p >= 10 && String.sub p 0 10 = "post-crash")
          (messages c i)
      in
      check Alcotest.int (Printf.sprintf "survivor %d delivered post-crash" i) 4
        (List.length post))
    survivors

let test_crash_delivers_transitional_view () =
  let c = make_cluster ~n:4 () in
  Netsim.call_at c.sim ~at:(ms 20) (fun () -> Netsim.crash c.sim 3);
  Netsim.run_until c.sim (ms 1500);
  for i = 0 to 2 do
    let vs = views c i in
    let transitional = List.filter (fun v -> v.Participant.transitional) vs in
    check Alcotest.bool
      (Printf.sprintf "node %d got a transitional view" i)
      true
      (List.length transitional >= 1);
    (* The transitional view contains only survivors of the old ring. *)
    List.iter
      (fun v ->
        check Alcotest.bool "transitional members are survivors" true
          (List.for_all (fun p -> p <> 3) v.Participant.members))
      transitional;
    (* Views arrive in order: initial regular (4 members), then
       transitional, then new regular (3 members). *)
    match vs with
    | first :: rest ->
        check Alcotest.bool "first view regular" false first.transitional;
        check Alcotest.int "first view full" 4 (List.length first.members);
        let final = List.nth rest (List.length rest - 1) in
        check Alcotest.bool "final view regular" false final.transitional;
        check (Alcotest.list Alcotest.int) "final view survivors" [ 0; 1; 2 ]
          final.members
    | [] -> Alcotest.fail "no views"
  done

let test_messages_survive_crash () =
  (* Messages in flight when a member dies are recovered by the exchange:
     every survivor delivers the same set in the same order. *)
  let c = make_cluster ~n:4 () in
  for k = 1 to 30 do
    Netsim.call_at c.sim ~at:(k * 500_000) (fun () ->
        submit c (k mod 4) Types.Agreed (Printf.sprintf "m%d" k))
  done;
  Netsim.call_at c.sim ~at:(ms 8) (fun () -> Netsim.crash c.sim 1);
  Netsim.run_until c.sim (ms 2000);
  let streams =
    List.map (fun i -> List.map (fun (f, s, _, p) -> (f, s, p)) (messages c i)) [ 0; 2; 3 ]
  in
  (match streams with
  | s0 :: rest ->
      List.iteri
        (fun idx s ->
          check Alcotest.bool
            (Printf.sprintf "survivor %d stream identical" (idx + 1))
            true (s = s0))
        rest
  | [] -> assert false);
  (* Messages submitted by survivors are all there (only the dead node's
     unsent messages may be missing). *)
  let s0 = List.hd streams in
  for k = 1 to 30 do
    if k mod 4 <> 1 then
      check Alcotest.bool
        (Printf.sprintf "m%d delivered" k)
        true
        (List.exists (fun (_, _, p) -> p = Printf.sprintf "m%d" k) s0)
  done

(* -------------------------------------------------------------------- *)
(* Partition and merge                                                   *)

let partition_drop side_of ~src ~dst (_ : Message.t) = side_of src <> side_of dst

let test_partition_forms_two_rings () =
  let c = make_cluster ~n:6 () in
  let side i = if i < 3 then 0 else 1 in
  Netsim.call_at c.sim ~at:(ms 20) (fun () ->
      Netsim.set_drop c.sim (partition_drop side));
  Netsim.run_until c.sim (ms 1500);
  for i = 0 to 5 do
    check Alcotest.string
      (Printf.sprintf "node %d operational" i)
      "operational"
      (Member.state_name c.members.(i));
    match last_regular_view c i with
    | Some v ->
        let expected = if i < 3 then [ 0; 1; 2 ] else [ 3; 4; 5 ] in
        check (Alcotest.list Alcotest.int)
          (Printf.sprintf "node %d side view" i)
          expected v.members
    | None -> Alcotest.fail "no view"
  done;
  (* Each side orders independently. *)
  submit c 0 Types.Agreed "left";
  submit c 4 Types.Agreed "right";
  Netsim.run_until c.sim (ms 1800);
  let got i p = List.exists (fun (_, _, _, x) -> x = p) (messages c i) in
  check Alcotest.bool "left side got left" true (got 1 "left");
  check Alcotest.bool "left side missed right" false (got 1 "right");
  check Alcotest.bool "right side got right" true (got 5 "right");
  check Alcotest.bool "right side missed left" false (got 5 "left")

let test_merge_after_heal () =
  let c = make_cluster ~n:6 () in
  let side i = if i < 3 then 0 else 1 in
  Netsim.call_at c.sim ~at:(ms 20) (fun () ->
      Netsim.set_drop c.sim (partition_drop side));
  Netsim.call_at c.sim ~at:(ms 1500) (fun () ->
      Netsim.set_drop c.sim (fun ~src:_ ~dst:_ _ -> false));
  Netsim.run_until c.sim (ms 4000);
  for i = 0 to 5 do
    check Alcotest.string
      (Printf.sprintf "node %d operational after merge" i)
      "operational"
      (Member.state_name c.members.(i));
    match last_regular_view c i with
    | Some v ->
        check (Alcotest.list Alcotest.int)
          (Printf.sprintf "node %d merged view" i)
          [ 0; 1; 2; 3; 4; 5 ] v.members
    | None -> Alcotest.fail "no view"
  done;
  (* The merged ring orders across former sides. *)
  submit c 0 Types.Agreed "after-merge-left";
  submit c 5 Types.Agreed "after-merge-right";
  Netsim.run_until c.sim (ms 4500);
  for i = 0 to 5 do
    let got p = List.exists (fun (_, _, _, x) -> x = p) (messages c i) in
    check Alcotest.bool (Printf.sprintf "node %d got both" i) true
      (got "after-merge-left" && got "after-merge-right")
  done

(* -------------------------------------------------------------------- *)
(* EVS safety properties                                                 *)

(* Messages delivered within the same ring must appear in the same relative
   order at every member that delivered them. *)
let check_per_ring_order c alive =
  let key (f, s, r, _) = (r, f, s) in
  let streams = List.map (fun i -> messages c i) alive in
  List.iteri
    (fun ai a ->
      List.iteri
        (fun bi b ->
          if ai < bi then begin
            let keys_a = List.map key a and keys_b = List.map key b in
            let common_in x other = List.filter (fun k -> List.mem k other) x in
            let ca = common_in keys_a keys_b and cb = common_in keys_b keys_a in
            if ca <> cb then
              Alcotest.failf "delivery order diverges between nodes %d and %d"
                (List.nth alive ai) (List.nth alive bi)
          end)
        streams)
    streams

let prop_crash_schedule_preserves_order =
  QCheck.Test.make ~name:"random crash schedules preserve per-ring order"
    ~count:12
    QCheck.(pair (int_range 0 3) (int_range 1 997))
    (fun (victim, seed) ->
      let n = 4 in
      let c = make_cluster ~n ~seed:(Int64.of_int seed) () in
      for k = 1 to 40 do
        Netsim.call_at c.sim ~at:(k * 400_000) (fun () ->
            submit c (k mod n) Types.Agreed (Printf.sprintf "p%d" k))
      done;
      let crash_at = ms (5 + (seed mod 15)) in
      Netsim.call_at c.sim ~at:crash_at (fun () -> Netsim.crash c.sim victim);
      Netsim.run_until c.sim (ms 3000);
      let alive = List.filter (fun i -> i <> victim) [ 0; 1; 2; 3 ] in
      check_per_ring_order c alive;
      (* All survivors converge to the same final regular view. *)
      let final_views = List.map (fun i -> last_regular_view c i) alive in
      List.for_all
        (fun v ->
          match (v, List.hd final_views) with
          | Some a, Some b ->
              Types.ring_id_equal a.Participant.view_id b.Participant.view_id
              && a.members = b.members
              && List.length a.members = 3
          | _ -> false)
        final_views)

let prop_safe_messages_delivered_at_all_survivors =
  QCheck.Test.make ~name:"safe delivery honoured across crashes" ~count:10
    QCheck.(int_range 1 997)
    (fun seed ->
      let n = 4 in
      let victim = seed mod n in
      let c = make_cluster ~n ~seed:(Int64.of_int seed) () in
      for k = 1 to 25 do
        Netsim.call_at c.sim ~at:(k * 300_000) (fun () ->
            submit c (k mod n) Types.Safe (Printf.sprintf "s%d" k))
      done;
      Netsim.call_at c.sim ~at:(ms (4 + (seed mod 10))) (fun () ->
          Netsim.crash c.sim victim);
      Netsim.run_until c.sim (ms 3000);
      let alive = List.filter (fun i -> i <> victim) [ 0; 1; 2; 3 ] in
      check_per_ring_order c alive;
      (* EVS agreement: survivors that went through the same sequence of
         configurations must deliver exactly the same messages. (Survivors
         that were transiently excluded and re-merged legitimately miss the
         messages of configurations they were not members of.) *)
      let view_history i =
        List.map
          (fun (v : Participant.view) -> (v.view_id, v.members, v.transitional))
          (views c i)
      in
      let delivered_set i =
        List.map (fun (f, s, r, _) -> (r, f, s)) (messages c i)
      in
      List.for_all
        (fun i ->
          List.for_all
            (fun j ->
              i >= j
              || view_history i <> view_history j
              || delivered_set i = delivered_set j)
            alive)
        alive)


let test_submissions_during_formation_carry_over () =
  (* Messages submitted while the ring is reforming are buffered and
     sequenced in the next configuration. *)
  let c = make_cluster ~n:4 () in
  Netsim.call_at c.sim ~at:(ms 10) (fun () -> Netsim.crash c.sim 3);
  (* Submit while the survivors are still detecting/reforming. *)
  Netsim.call_at c.sim ~at:(ms 30) (fun () ->
      check Alcotest.bool "node 0 not operational yet" true
        (Member.state_name c.members.(0) <> "operational"
        || Member.installs c.members.(0) = 1);
      submit c 0 Types.Agreed "buffered-during-formation");
  Netsim.run_until c.sim (ms 2000);
  (* The submitter delivers it; so does every survivor that was a member of
     the configuration in which it was sequenced (EVS scope). *)
  let ring_of_delivery =
    List.find_map
      (fun (_, _, r, p) -> if p = "buffered-during-formation" then Some r else None)
      (messages c 0)
  in
  match ring_of_delivery with
  | None -> Alcotest.fail "submitter never delivered its own message"
  | Some ring ->
      List.iter
        (fun i ->
          let was_member =
            List.exists
              (fun v ->
                Types.ring_id_equal v.Participant.view_id ring
                && List.mem i v.Participant.members)
              (regular_views c i)
          in
          if was_member then
            check Alcotest.bool
              (Printf.sprintf "member %d delivered it" i)
              true
              (List.exists
                 (fun (_, _, _, p) -> p = "buffered-during-formation")
                 (messages c i)))
        [ 0; 1; 2 ]

let test_double_crash () =
  let c = make_cluster ~n:5 () in
  Netsim.call_at c.sim ~at:(ms 10) (fun () -> Netsim.crash c.sim 1);
  Netsim.call_at c.sim ~at:(ms 400) (fun () -> Netsim.crash c.sim 4);
  Netsim.run_until c.sim (ms 3000);
  let survivors = [ 0; 2; 3 ] in
  List.iter
    (fun i ->
      check Alcotest.string
        (Printf.sprintf "survivor %d operational" i)
        "operational"
        (Member.state_name c.members.(i));
      match last_regular_view c i with
      | Some v ->
          check (Alcotest.list Alcotest.int)
            (Printf.sprintf "survivor %d 3-ring" i)
            survivors v.members
      | None -> Alcotest.fail "no view")
    survivors;
  (* At least two installations beyond the initial one. *)
  check Alcotest.bool "multiple installs" true
    (Member.installs c.members.(0) >= 3)

let test_three_way_partition_and_merge () =
  let c = make_cluster ~n:6 () in
  let side i = i / 2 in
  Netsim.call_at c.sim ~at:(ms 20) (fun () ->
      Netsim.set_drop c.sim (partition_drop side));
  Netsim.run_until c.sim (ms 1500);
  for i = 0 to 5 do
    match last_regular_view c i with
    | Some v ->
        check Alcotest.int
          (Printf.sprintf "node %d in a pair" i)
          2
          (List.length v.members)
    | None -> Alcotest.fail "no view"
  done;
  Netsim.call_at c.sim ~at:(ms 1600) (fun () ->
      Netsim.set_drop c.sim (fun ~src:_ ~dst:_ _ -> false));
  Netsim.run_until c.sim (ms 6000);
  for i = 0 to 5 do
    match last_regular_view c i with
    | Some v ->
        check (Alcotest.list Alcotest.int)
          (Printf.sprintf "node %d fully merged" i)
          [ 0; 1; 2; 3; 4; 5 ] v.members
    | None -> Alcotest.fail "no view"
  done

let test_installs_counter () =
  let c = make_cluster ~n:3 () in
  Netsim.run_until c.sim (ms 5);
  check Alcotest.int "bootstrap counts as one" 1 (Member.installs c.members.(0));
  Netsim.call_at c.sim ~at:(ms 10) (fun () -> Netsim.crash c.sim 2);
  Netsim.run_until c.sim (ms 1500);
  check Alcotest.bool "reformation adds at least one" true
    (Member.installs c.members.(0) >= 2);
  (match last_regular_view c 0 with
  | Some v -> check (Alcotest.list Alcotest.int) "final pair" [ 0; 1 ] v.members
  | None -> Alcotest.fail "no view");
  (match Member.node c.members.(0) with
  | Some _ -> ()
  | None -> Alcotest.fail "operational node accessor");
  check Alcotest.int "pid accessor" 0 (Member.me c.members.(0))

(* -------------------------------------------------------------------- *)
(* Membership churn regressions                                          *)

(* A Join arriving while formation is mid-commit is deliberately absorbed
   without action (the joiner keeps retransmitting and is merged right
   after installation); it must not derail the formation in progress. We
   pin the survivors in Commit_wait by dropping commit tokens, inject late
   joins straight into the representative, and then let the ring form. *)
let test_join_during_commit_is_absorbed () =
  let c = make_cluster ~n:3 () in
  let drop_commits ~src:_ ~dst:_ = function
    | Message.Commit _ -> true
    | _ -> false
  in
  Netsim.call_at c.sim ~at:(ms 10) (fun () ->
      Netsim.set_drop c.sim drop_commits;
      Netsim.crash c.sim 2);
  let injections = ref 0 in
  let rec poll at =
    if at <= ms 600 then
      Netsim.call_at c.sim ~at (fun () ->
          if Member.state_name c.members.(0) = "commit" then begin
            incr injections;
            let late : Message.join =
              { j_pid = 9; proc_set = [ 9 ]; fail_set = []; join_seq = !injections }
            in
            let p = Member.participant c.members.(0) in
            let actions = p.Participant.process (Message.Join late) in
            check Alcotest.int "late join absorbed silently" 0
              (List.length actions);
            check Alcotest.string "still mid-commit" "commit"
              (Member.state_name c.members.(0))
          end;
          poll (at + ms 1))
  in
  poll (ms 20);
  Netsim.call_at c.sim ~at:(ms 620) (fun () ->
      Netsim.set_drop c.sim (fun ~src:_ ~dst:_ _ -> false));
  for k = 1 to 6 do
    Netsim.call_at c.sim ~at:(ms 700 + (k * 300_000)) (fun () ->
        submit c (k mod 2) Types.Agreed (Printf.sprintf "post-join-%d" k))
  done;
  Netsim.run_until c.sim (ms 2500);
  check Alcotest.bool "formation was caught mid-commit" true (!injections > 0);
  List.iter
    (fun i ->
      check Alcotest.string
        (Printf.sprintf "survivor %d operational" i)
        "operational"
        (Member.state_name c.members.(i));
      match last_regular_view c i with
      | Some v ->
          check (Alcotest.list Alcotest.int)
            (Printf.sprintf "survivor %d pair ring" i)
            [ 0; 1 ] v.members
      | None -> Alcotest.fail "no view")
    [ 0; 1 ];
  List.iter
    (fun i ->
      let post =
        List.filter
          (fun (_, _, _, p) ->
            String.length p >= 9 && String.sub p 0 9 = "post-join")
          (messages c i)
      in
      check Alcotest.int
        (Printf.sprintf "survivor %d delivered post-formation" i)
        6 (List.length post))
    [ 0; 1 ];
  check_per_ring_order c [ 0; 1 ]

(* Membership timers carry the generation they were armed under; a timer
   surviving a phase change must be a dead letter. The dangerous case is a
   stale consensus timeout firing into a *fresh* gather of a later
   generation: without the guard it would run the new gather's consensus
   logic early. Driven out-of-band (no simulator) for exact control. *)
let test_stale_memb_timer_is_ignored () =
  let m = Member.create ~params:test_params ~me:0 () in
  let p = Member.participant m in
  let arm_timers actions =
    List.filter_map
      (function Participant.Arm_timer (tm, _) -> Some tm | _ -> None)
      actions
  in
  let consensus_timer timers =
    List.find
      (function Member.Memb_timer (Member.Consensus_timeout, _) -> true | _ -> false)
      timers
  in
  let gather1 = arm_timers (p.Participant.start ()) in
  check Alcotest.string "starts gathering" "gather" (Member.state_name m);
  check Alcotest.bool "gather arms timers" true (gather1 <> []);
  (* Alone at the consensus timeout, the member installs a singleton ring:
     a phase change that invalidates every timer armed by the gather. *)
  ignore (p.Participant.fire_timer (consensus_timer gather1));
  check Alcotest.string "singleton installed" "operational"
    (Member.state_name m);
  check Alcotest.int "one install" 1 (Member.installs m);
  (* The gather's timers are now stale and must all be dead letters. *)
  List.iter
    (fun tm ->
      check Alcotest.int "stale timer is a no-op" 0
        (List.length (p.Participant.fire_timer tm)))
    gather1;
  check Alcotest.string "ring not regressed" "operational"
    (Member.state_name m);
  check Alcotest.int "no extra install" 1 (Member.installs m);
  (* A join from a new peer re-gathers under a fresh generation... *)
  let regather =
    p.Participant.process
      (Message.Join { j_pid = 1; proc_set = [ 0; 1 ]; fail_set = []; join_seq = 1 })
  in
  check Alcotest.string "re-gathering for the joiner" "gather"
    (Member.state_name m);
  (* ...into which the original consensus timeout now fires late: its stale
     generation must keep it from acting on the new gather's state. *)
  check Alcotest.int "stale timeout into fresh gather is a no-op" 0
    (List.length (p.Participant.fire_timer (consensus_timer gather1)));
  check Alcotest.string "fresh gather undisturbed" "gather"
    (Member.state_name m);
  (* The current-generation timeout, by contrast, drives consensus: both
     joins agree, so the representative proposes and enters commit. *)
  let acted = p.Participant.fire_timer (consensus_timer (arm_timers regather)) in
  check Alcotest.bool "current-generation timeout acts" true (acted <> []);
  check Alcotest.string "consensus proposed" "commit" (Member.state_name m)


let prop_evs_agreement_under_loss =
  QCheck.Test.make
    ~name:"EVS set agreement survives loss during recovery (holds check)"
    ~count:10
    QCheck.(int_range 1 995)
    (fun seed ->
      let n = 4 in
      let victim = seed mod n in
      let net = Profile.with_loss Profile.gigabit 0.03 in
      let c = make_cluster ~n ~net ~seed:(Int64.of_int seed) () in
      for k = 1 to 30 do
        Netsim.call_at c.sim ~at:(k * 300_000) (fun () ->
            submit c (k mod n) Types.Agreed (Printf.sprintf "l%d" k))
      done;
      Netsim.call_at c.sim ~at:(ms (4 + (seed mod 12))) (fun () ->
          Netsim.crash c.sim victim);
      Netsim.run_until c.sim (ms 4000);
      let alive = List.filter (fun i -> i <> victim) [ 0; 1; 2; 3 ] in
      check_per_ring_order c alive;
      (* The pass-3/4 holds check guarantees: members with identical view
         histories delivered identical sets even though recovery floods
         may have been lost. *)
      let view_history i =
        List.map
          (fun (v : Participant.view) -> (v.view_id, v.members, v.transitional))
          (views c i)
      in
      let delivered_set i =
        List.map (fun (f, s, r, _) -> (r, f, s)) (messages c i)
      in
      List.for_all
        (fun i ->
          List.for_all
            (fun j ->
              i >= j
              || view_history i <> view_history j
              || delivered_set i = delivered_set j)
            alive)
        alive)


let prop_random_partition_schedules =
  QCheck.Test.make ~name:"random partition schedules converge and agree"
    ~count:8
    QCheck.(pair (int_range 1 3) (int_range 1 993))
    (fun (cut, seed) ->
      (* Partition 5 nodes at a random boundary, let both sides run, heal,
         and require: all nodes operational in the full ring at the end,
         with per-ring delivery order consistent throughout. *)
      let n = 5 in
      let c = make_cluster ~n ~seed:(Int64.of_int seed) () in
      let side i = if i <= cut then 0 else 1 in
      for k = 1 to 25 do
        Netsim.call_at c.sim ~at:(k * 400_000) (fun () ->
            submit c (k mod n) Types.Agreed (Printf.sprintf "q%d" k))
      done;
      Netsim.call_at c.sim ~at:(ms (10 + (seed mod 10))) (fun () ->
          Netsim.set_drop c.sim (partition_drop side));
      (* Keep submitting during the partition. *)
      for k = 26 to 40 do
        Netsim.call_at c.sim ~at:(ms 500 + (k * 200_000)) (fun () ->
            submit c (k mod n) Types.Agreed (Printf.sprintf "q%d" k))
      done;
      Netsim.call_at c.sim ~at:(ms 2000) (fun () ->
          Netsim.set_drop c.sim (fun ~src:_ ~dst:_ _ -> false));
      Netsim.run_until c.sim (ms 7000);
      let all = List.init n (fun i -> i) in
      check_per_ring_order c all;
      List.for_all
        (fun i ->
          Member.state_name c.members.(i) = "operational"
          &&
          match last_regular_view c i with
          | Some v -> v.Participant.members = all
          | None -> false)
        all)

(* -------------------------------------------------------------------- *)
(* Recovery exchange: range compaction, holder election, pacing, resends *)

let prop_nack_range_compaction =
  QCheck.Test.make ~name:"nack range compaction is canonical and lossless"
    ~count:200
    QCheck.(small_list (int_range 0 500))
    (fun seqs ->
      let ranges = Recovery.compact seqs in
      (* Canonical: sorted, non-empty, non-overlapping, non-adjacent. *)
      let rec canonical = function
        | [] -> true
        | [ (lo, hi) ] -> lo <= hi
        | (lo, hi) :: ((lo', _) :: _ as rest) ->
            lo <= hi && hi + 1 < lo' && canonical rest
      in
      let sorted_dedup = List.sort_uniq compare seqs in
      (* Lossless through the compact/expand pair... *)
      canonical ranges
      && Recovery.expand ranges = sorted_dedup
      (* ...and through the wire flattening used by pass-5 nacks. *)
      && Recovery.decode_ranges (Recovery.encode_ranges ranges) = ranges
      && Recovery.expand
           (Recovery.decode_ranges (Recovery.encode_ranges ranges))
         = sorted_dedup)

(* Random member-info slates for the election properties: a handful of
   survivors of one old ring (plus a decoy from a foreign ring that must
   never be elected), with random aru/high_seq advertisements. *)
let member_info_slate =
  let open QCheck.Gen in
  let ring = { Types.rep = 0; ring_seq = 7 } in
  let foreign = { Types.rep = 9; ring_seq = 3 } in
  let info pid =
    let* aru = int_range 0 40 in
    let* extra = int_range 0 40 in
    pure
      {
        Message.m_pid = pid;
        m_old_ring = ring;
        m_aru = aru;
        m_high_seq = aru + extra;
        m_high_delivered = aru;
      }
  in
  let* n = int_range 1 6 in
  let* infos = flatten_l (List.init n (fun i -> info i)) in
  let decoy =
    {
      Message.m_pid = 99;
      m_old_ring = foreign;
      m_aru = 1000;
      m_high_seq = 1000;
      m_high_delivered = 1000;
    }
  in
  pure (ring, decoy :: infos)

let shuffle_by seed l =
  let st = Random.State.make [| seed |] in
  l
  |> List.map (fun x -> (Random.State.bits st, x))
  |> List.sort compare |> List.map snd

let prop_designated_holder_election =
  QCheck.Test.make
    ~name:"designated-holder election: one deterministic holder per seqno"
    ~count:200
    QCheck.(
      pair (make ~print:(fun _ -> "<slate>") member_info_slate) (int_range 0 1000))
    (fun ((ring, infos), shuffle_seed) ->
      let seqs = List.init 90 (fun s -> s) in
      List.for_all
        (fun seq ->
          let holders = Recovery.holders ~infos ~old_ring:ring seq in
          (* Candidates are duplicate-free survivors of the old ring that
             can actually advertise the seqno; the foreign decoy never
             appears even with the highest aru in the slate. *)
          List.length holders = List.length (List.sort_uniq compare holders)
          && List.for_all
               (fun pid ->
                 List.exists
                   (fun (m : Message.member_info) ->
                     m.m_pid = pid
                     && Types.ring_id_equal m.m_old_ring ring
                     && m.m_high_seq >= seq)
                   infos)
               holders
          (* The designated holder is the head of the candidate list and
             invariant under permutation of the member-info slate — every
             survivor elects the same flooder from its local copy. *)
          && Recovery.designated ~infos ~old_ring:ring seq
             = (match holders with [] -> None | h :: _ -> Some h)
          && Recovery.designated
               ~infos:(shuffle_by shuffle_seed infos)
               ~old_ring:ring seq
             = Recovery.designated ~infos ~old_ring:ring seq
          (* designated_nth walks the candidate list, wrapping modulo its
             length so repeated nacks rotate through every holder. *)
          && List.for_all
               (fun nth ->
                 Recovery.designated_nth ~infos ~old_ring:ring ~nth seq
                 =
                 match holders with
                 | [] -> None
                 | _ -> List.nth_opt holders (nth mod List.length holders))
               [ 0; 1; 2; 5; 9 ])
        seqs)

(* A burst of floods is dropped wholesale during the exchange: the
   recheck's cumulative nack must bring the messages back via holder
   resends, without abandoning the formation (no extra gather, so the
   survivors stay at exactly two installations: bootstrap + one
   reformation). *)
let test_lost_flood_recovered_without_regather () =
  (* The default 512-record ring holds only a run's tail; a 2 s run's
     steady-state token traffic would overwrite the recovery events we
     assert on, so give the recorder room for the whole run. *)
  Aring_obs.Flight.set_capacity 65536;
  let c = make_cluster ~n:4 () in
  for k = 1 to 40 do
    Netsim.call_at c.sim ~at:(k * 200_000) (fun () ->
        submit c (k mod 4) Types.Agreed (Printf.sprintf "f%d" k))
  done;
  (* Starve node 3 of every data multicast from 5 ms on, then crash
     node 1 at 8 ms: the messages sequenced in [5, 8) ms never reach
     node 3, and with the ring token dead there is no retransmission
     path — at formation (~58 ms, token loss) node 3 genuinely misses
     exchange messages its peers advertise. Keeping the starvation up
     through the exchange also swallows the designated holders' floods
     and their first resends, so recovery must go the full recheck →
     cumulative-nack → holder-resend route. The window closes at 85 ms,
     inside the 5-recheck budget (10 ms apart), so the formation
     completes without ever re-gathering. *)
  let drop_to_3 ~src:_ ~dst = function
    | Message.Data _ -> dst = 3
    | _ -> false
  in
  Netsim.call_at c.sim ~at:(ms 5) (fun () -> Netsim.set_drop c.sim drop_to_3);
  Netsim.call_at c.sim ~at:(ms 8) (fun () -> Netsim.crash c.sim 1);
  Netsim.call_at c.sim ~at:(ms 85) (fun () ->
      Netsim.set_drop c.sim (fun ~src:_ ~dst:_ _ -> false));
  Netsim.run_until c.sim (ms 2000);
  let survivors = [ 0; 2; 3 ] in
  List.iter
    (fun i ->
      check Alcotest.string
        (Printf.sprintf "survivor %d operational" i)
        "operational"
        (Member.state_name c.members.(i));
      check Alcotest.int
        (Printf.sprintf "survivor %d reformed exactly once" i)
        2
        (Member.installs c.members.(i)))
    survivors;
  check_per_ring_order c survivors;
  (* The exchange was actually wounded and healed through the nack path:
     at least one cumulative nack and one holder resend are on record. *)
  let records = Aring_obs.Flight.records () in
  let count code =
    List.length
      (List.filter (fun r -> r.Aring_obs.Flight.r_code = code) records)
  in
  check Alcotest.bool "a cumulative nack was sent" true
    (count Aring_obs.Flight.ev_nack > 0);
  check Alcotest.bool "a holder answered with a resend" true
    (count Aring_obs.Flight.ev_resend > 0);
  Aring_obs.Flight.set_capacity 512

(* A second member dies while the survivors are mid-exchange for the
   first death: the membership shrinks again, holders are re-elected
   from the remaining advertisements, and the survivors still converge
   on identical streams. *)
let test_donor_crash_mid_exchange () =
  let c = make_cluster ~n:5 () in
  for k = 1 to 30 do
    Netsim.call_at c.sim ~at:(k * 200_000) (fun () ->
        submit c (k mod 5) Types.Agreed (Printf.sprintf "d%d" k))
  done;
  Netsim.call_at c.sim ~at:(ms 8) (fun () -> Netsim.crash c.sim 1);
  (* ~62 ms: the reformation for the first crash is in its recovery
     exchange (detection at ~58 ms). *)
  Netsim.call_at c.sim ~at:(ms 62) (fun () -> Netsim.crash c.sim 2);
  Netsim.run_until c.sim (ms 2500);
  let survivors = [ 0; 3; 4 ] in
  List.iter
    (fun i ->
      check Alcotest.string
        (Printf.sprintf "survivor %d operational" i)
        "operational"
        (Member.state_name c.members.(i));
      match last_regular_view c i with
      | Some v ->
          check (Alcotest.list Alcotest.int)
            (Printf.sprintf "survivor %d final view" i)
            survivors v.members
      | None -> Alcotest.fail "no view")
    survivors;
  check_per_ring_order c survivors;
  (* Survivor-submitted messages all arrive despite two donors dying. *)
  let s0 = List.map (fun (f, s, _, p) -> (f, s, p)) (messages c 0) in
  for k = 1 to 30 do
    if k mod 5 <> 1 && k mod 5 <> 2 then
      check Alcotest.bool
        (Printf.sprintf "d%d delivered" k)
        true
        (List.exists (fun (_, _, p) -> p = Printf.sprintf "d%d" k) s0)
  done

(* Every paced flood burst must respect the configured burst budget —
   the whole point of pacing is that a small switch buffer never sees
   more than [recovery_burst_msgs] back-to-back exchange multicasts. *)
let test_paced_bursts_respect_budget () =
  Aring_obs.Flight.set_capacity 65536;
  let c = make_cluster ~n:4 () in
  (* Dense traffic right up to the crash, with node 3 starved of the
     last 3 ms of multicasts (and no token to retransmit them), leaves
     the exchange a real backlog to flood — enough to need several
     paced bursts. *)
  for k = 1 to 80 do
    Netsim.call_at c.sim ~at:(k * 100_000) (fun () ->
        submit c (k mod 4) Types.Agreed (Printf.sprintf "b%d" k))
  done;
  let drop_to_3 ~src:_ ~dst = function
    | Message.Data _ -> dst = 3
    | _ -> false
  in
  Netsim.call_at c.sim ~at:(ms 5) (fun () -> Netsim.set_drop c.sim drop_to_3);
  Netsim.call_at c.sim ~at:(ms 8) (fun () ->
      Netsim.crash c.sim 1;
      Netsim.set_drop c.sim (fun ~src:_ ~dst:_ _ -> false));
  Netsim.run_until c.sim (ms 2000);
  List.iter
    (fun i ->
      check Alcotest.string
        (Printf.sprintf "survivor %d operational" i)
        "operational"
        (Member.state_name c.members.(i)))
    [ 0; 2; 3 ];
  let bursts =
    List.filter
      (fun r -> r.Aring_obs.Flight.r_code = Aring_obs.Flight.ev_burst)
      (Aring_obs.Flight.records ())
  in
  check Alcotest.bool "exchange used paced bursts" true (bursts <> []);
  List.iter
    (fun (r : Aring_obs.Flight.record_view) ->
      if r.r_a > test_params.Params.recovery_burst_msgs then
        Alcotest.failf "node %d burst %d messages (budget %d)" r.r_node r.r_a
          test_params.Params.recovery_burst_msgs)
    bursts;
  Aring_obs.Flight.set_capacity 512

(* Recovery at ring scale: 64 bootstrapped nodes lose one member and
   must re-form within the health watchdog's formation-attempt budget —
   no node may burn through anywhere near [k_formation] gathers, and no
   stall may be flagged. *)
let test_64_node_reformation_within_budget () =
  let n = 64 in
  let h = Aring_obs.Health.create ~n () in
  let c = make_cluster ~n () in
  for k = 1 to 32 do
    Netsim.call_at c.sim ~at:(k * 200_000) (fun () ->
        submit c (k mod n) Types.Agreed (Printf.sprintf "w%d" k))
  done;
  Netsim.call_at c.sim ~at:(ms 10) (fun () ->
      Aring_obs.Health.note_crash ~node:5;
      Netsim.crash c.sim 5);
  Aring_obs.Health.with_health h (fun () -> Netsim.run_until c.sim (ms 4000));
  let survivors = List.filter (fun i -> i <> 5) (List.init n Fun.id) in
  List.iter
    (fun i ->
      check Alcotest.string
        (Printf.sprintf "node %d operational" i)
        "operational"
        (Member.state_name c.members.(i)))
    survivors;
  (match last_regular_view c 0 with
  | Some v ->
      check (Alcotest.list Alcotest.int) "63-node ring" survivors v.members
  | None -> Alcotest.fail "no view");
  let report = Aring_obs.Health.report h ~now:(ms 4000) in
  check Alcotest.bool "no stall flagged" true
    (report.Aring_obs.Health.r_stalls = []);
  List.iter
    (fun (nr : Aring_obs.Health.node_report) ->
      if nr.nr_max_attempts > 3 then
        Alcotest.failf "node %d needed %d formation attempts (budget 3, watchdog %d)"
          nr.nr_node nr.nr_max_attempts
          Aring_obs.Health.default_config.Aring_obs.Health.k_formation)
    report.Aring_obs.Health.r_nodes

let qtest = QCheck_alcotest.to_alcotest

let suite =
  [
    ("bootstrap with initial ring", `Quick, test_bootstrap_initial_ring);
    ("bootstrap from nothing", `Quick, test_bootstrap_from_nothing);
    ("singleton forms alone", `Quick, test_singleton_forms_alone);
    ("crash reforms ring", `Quick, test_crash_reforms_ring);
    ("crash delivers transitional view", `Quick, test_crash_delivers_transitional_view);
    ("messages survive crash", `Quick, test_messages_survive_crash);
    ("partition forms two rings", `Quick, test_partition_forms_two_rings);
    ("merge after heal", `Quick, test_merge_after_heal);
    ("submissions during formation carry over", `Quick,
      test_submissions_during_formation_carry_over);
    ("double crash", `Quick, test_double_crash);
    ("three-way partition and merge", `Quick, test_three_way_partition_and_merge);
    ("installs counter", `Quick, test_installs_counter);
    ("join during commit is absorbed", `Quick, test_join_during_commit_is_absorbed);
    ("stale membership timer is ignored", `Quick, test_stale_memb_timer_is_ignored);
    ("lost flood recovered without re-gather", `Quick,
      test_lost_flood_recovered_without_regather);
    ("donor crash mid-exchange", `Quick, test_donor_crash_mid_exchange);
    ("paced bursts respect budget", `Quick, test_paced_bursts_respect_budget);
    ("64-node reformation within budget", `Slow,
      test_64_node_reformation_within_budget);
    qtest prop_crash_schedule_preserves_order;
    qtest prop_safe_messages_delivered_at_all_survivors;
    qtest prop_evs_agreement_under_loss;
    qtest prop_random_partition_schedules;
    qtest prop_nack_range_compaction;
    qtest prop_designated_holder_election;
  ]
