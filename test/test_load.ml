(* Workload-harness tests: the open-loop property itself (offered rate
   holds to schedule with and without completion backpressure), arrival
   pacing tolerance, fixed-seed determinism, and churn/storm behavior
   at a size small enough for the unit suite. The bench (`-- load`)
   exercises the full 2000-session scale; these tests pin semantics. *)

module Load = Aring_load.Load
module Stats = Aring_util.Stats
module Kv_scenario = Aring_app.Kv_scenario

let check = Alcotest.check
let ms n = n * 1_000_000

(* Small but real: 4 daemons, 120 sessions, short windows. *)
let small_spec =
  {
    Load.default_spec with
    label = "load-test";
    sessions_per_node = 30;
    n_groups = 8;
    ops_per_sec = 3_000.0;
    key_space = 64;
    warmup_ns = ms 40;
    measure_ns = ms 150;
    drain_ns = ms 800;
    seed = 11L;
  }

let expected_ops (spec : Load.spec) =
  spec.Load.ops_per_sec *. (float_of_int spec.Load.measure_ns /. 1e9)

let check_clean (r : Load.result) =
  check Alcotest.int "no oracle violations" 0 r.Load.oracle_violations;
  check Alcotest.bool "converged" true r.Load.converged

(* Poisson arrivals hold the offered rate to within sampling noise. *)
let test_offered_rate_poisson () =
  let r = Load.run small_spec in
  check_clean r;
  check Alcotest.int "all sessions up" 120 r.Load.sessions_peak;
  let expect = expected_ops small_spec in
  let ratio = float_of_int r.Load.ops_offered /. expect in
  if ratio < 0.9 || ratio > 1.1 then
    Alcotest.failf "offered %d ops vs expected %.0f (ratio %.3f)"
      r.Load.ops_offered expect ratio

(* Periodic pacing has no sampling noise, only a per-session window
   quantization: each session contributes floor-or-ceil of
   window/interval arrivals depending on its connect phase. The bound
   is therefore ±1 op per session, plus a small scheduling slack. *)
let test_offered_rate_periodic () =
  let r = Load.run { small_spec with arrival = Load.Periodic } in
  check_clean r;
  let expect = expected_ops small_spec in
  let sessions = 4 * small_spec.Load.sessions_per_node in
  let slack = float_of_int sessions +. (0.02 *. expect) in
  let err = Float.abs (float_of_int r.Load.ops_offered -. expect) in
  if err > slack then
    Alcotest.failf "periodic offered %d ops vs expected %.0f (err %.0f > %.0f)"
      r.Load.ops_offered expect err slack

(* The defining open-loop property: arrivals never wait for
   completions. Split the cluster 2v2 for the whole measurement window
   — no side has a majority, so every write is rejected and nothing is
   applied — and the offered count must still hold to schedule while
   the in-flight queue grows without bound. A closed-loop generator
   would stall at its first unacknowledged write. *)
let test_backpressure_independence () =
  let horizon = small_spec.Load.warmup_ns + small_spec.Load.measure_ns in
  let r =
    Load.run
      {
        small_spec with
        label = "load-partitioned";
        partition =
          Some
            {
              Kv_scenario.part_at_ns = ms 10;
              heal_at_ns = horizon + ms 50;
              island = [ 2; 3 ];
            };
      }
  in
  (* Offered load is on schedule despite a cluster that applies nothing. *)
  let expect = expected_ops small_spec in
  let ratio = float_of_int r.Load.ops_offered /. expect in
  if ratio < 0.9 || ratio > 1.1 then
    Alcotest.failf "offered %d ops vs expected %.0f under stall (ratio %.3f)"
      r.Load.ops_offered expect ratio;
  (* Nothing applied in the window: no primary component anywhere. *)
  if r.Load.writes_applied * 10 > r.Load.writes_offered then
    Alcotest.failf "expected ~0 applied writes, got %d of %d offered"
      r.Load.writes_applied r.Load.writes_offered;
  (* The open-loop queue kept growing instead of throttling arrivals. *)
  if r.Load.queue_depth_peak < 50 then
    Alcotest.failf "open-loop queue did not grow under stall (peak %d)"
      r.Load.queue_depth_peak;
  if r.Load.queue_depth_peak < 5 * small_spec.Load.sessions_per_node / 2 then
    Alcotest.failf "queue peak %d too small for a stalled open loop"
      r.Load.queue_depth_peak;
  (* After the heal the cluster still merges and converges; the
     rejected writes stay unapplied (view-synchronous semantics), which
     is why the queue residue is reported rather than asserted empty. *)
  check_clean r

(* Same spec, same seed: byte-equal behavior. *)
let test_fixed_seed_determinism () =
  let spec =
    {
      small_spec with
      label = "load-det";
      churn =
        Some
          {
            Load.mean_lifetime_ns = ms 80;
            reconnect_delay_ns = ms 3;
            storm = None;
          };
      slow = Some { Load.slow_per_node = 1; drain_per_sec = 500.0 };
    }
  in
  let a = Load.run spec and b = Load.run spec in
  check Alcotest.int "ops_offered" a.Load.ops_offered b.Load.ops_offered;
  check Alcotest.int "ops_skipped" a.Load.ops_skipped b.Load.ops_skipped;
  check Alcotest.int "writes_applied" a.Load.writes_applied
    b.Load.writes_applied;
  check Alcotest.int "reconnects" a.Load.reconnects b.Load.reconnects;
  check Alcotest.int "latency samples"
    (Stats.count a.Load.write_latency_us)
    (Stats.count b.Load.write_latency_us);
  check Alcotest.int "queue peak" a.Load.queue_depth_peak
    b.Load.queue_depth_peak;
  check Alcotest.int "slow inbox peak" a.Load.slow_inbox_peak
    b.Load.slow_inbox_peak;
  check Alcotest.int "end_ns" a.Load.end_ns b.Load.end_ns

(* A reconnect storm drops exactly the requested sessions and brings
   them all back inside the window; applied throughput survives. *)
let test_reconnect_storm () =
  let r =
    Load.run
      {
        small_spec with
        label = "load-storm-test";
        measure_ns = ms 200;
        churn =
          Some
            {
              Load.mean_lifetime_ns = 0;
              reconnect_delay_ns = ms 5;
              storm =
                Some
                  {
                    Load.storm_at_ns = ms 120;
                    storm_sessions = 40;
                    storm_window_ns = ms 15;
                  };
            };
      }
  in
  check_clean r;
  check Alcotest.int "storm reconnects" 40 r.Load.reconnects;
  check Alcotest.bool "all back" true r.Load.storm_all_reconnected;
  if r.Load.storm_recovered_ms < 0.0 then
    Alcotest.failf "storm never recovered (%.1f ms)" r.Load.storm_recovered_ms;
  if r.Load.storm_degradation >= 1.0 then
    Alcotest.failf "storm killed throughput entirely (degradation %.2f)"
      r.Load.storm_degradation;
  (* Disconnected sessions skip arrivals instead of deferring them. *)
  if r.Load.ops_skipped = 0 then
    Alcotest.fail "expected skipped arrivals during the storm downtime"

(* Background churn keeps turning sessions over without losing
   correctness; some arrivals land in downtime windows. *)
let test_background_churn () =
  let r =
    Load.run
      {
        small_spec with
        label = "load-churn-test";
        churn =
          Some
            {
              Load.mean_lifetime_ns = ms 60;
              reconnect_delay_ns = ms 4;
              storm = None;
            };
      }
  in
  check_clean r;
  if r.Load.reconnects = 0 then
    Alcotest.fail "expected churn reconnects with a 60 ms mean lifetime";
  if r.Load.writes_applied = 0 then
    Alcotest.fail "churn starved the workload entirely"

let test_invalid_specs () =
  Alcotest.check_raises "zero sessions"
    (Invalid_argument "Load.run: sessions_per_node < 1") (fun () ->
      ignore (Load.run { small_spec with sessions_per_node = 0 }));
  Alcotest.check_raises "empty value mix"
    (Invalid_argument "Load.run: empty value_mix") (fun () ->
      ignore (Load.run { small_spec with value_mix = [] }))

let suite =
  [
    Alcotest.test_case "offered rate holds (poisson)" `Quick
      test_offered_rate_poisson;
    Alcotest.test_case "offered rate holds (periodic)" `Quick
      test_offered_rate_periodic;
    Alcotest.test_case "arrivals independent of backpressure" `Quick
      test_backpressure_independence;
    Alcotest.test_case "fixed seed is deterministic" `Quick
      test_fixed_seed_determinism;
    Alcotest.test_case "reconnect storm drains and recovers" `Quick
      test_reconnect_storm;
    Alcotest.test_case "background churn keeps converging" `Quick
      test_background_churn;
    Alcotest.test_case "invalid specs rejected" `Quick test_invalid_specs;
  ]
