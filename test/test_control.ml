(* Adaptive accelerated-window controller tests: the AIMD rule's unit
   behaviour, monotonicity under congestion, bounds clamping,
   decision determinism, and the end-to-end hook — a scenario run with
   controllers attached still delivers, adapts the window inside its
   bounds, and a Member-level cluster with controllers keeps ordering
   through a membership change. *)

open Aring_control
open Aring_ring
open Aring_sim

let check = Alcotest.check

(* decay_after = 1 keeps the idle decay single-step, so the unit tests
   below read as one observation -> one decision. *)
let cfg ?(aw_min = 0) ?(aw_max = 50) ?(increase = 2) ?(decrease = 0.5)
    ?(decay_after = 1) ?(fcc_high = max_int) ?(target_rotation_ns = 0) () =
  Controller.default_config ~aw_min ~increase ~decrease ~decay_after ~fcc_high
    ~target_rotation_ns ~aw_max ()

let quiet = { Controller.rotation_ns = 1000; fcc = 0; retrans = 0; backlog = 0 }

(* ------------------------------------------------------------------ *)
(* Unit behaviour of the AIMD rule                                     *)

let test_backlog_grows_window () =
  let c = Controller.create ~config:(cfg ()) ~init:10 () in
  let d = Controller.observe c { quiet with backlog = 100 } in
  check Alcotest.int "additive increase" 12 d.Controller.aw_after;
  check Alcotest.bool "not congested" false d.Controller.congested;
  check Alcotest.int "window view agrees" 12 (Controller.window c)

let test_congestion_shrinks_window () =
  let c = Controller.create ~config:(cfg ()) ~init:40 () in
  let d = Controller.observe c { quiet with retrans = 3; backlog = 500 } in
  check Alcotest.bool "congested" true d.Controller.congested;
  check Alcotest.int "multiplicative decrease despite backlog" 20
    d.Controller.aw_after

let test_idle_decays_window () =
  let c = Controller.create ~config:(cfg ()) ~init:20 () in
  let d = Controller.observe c { quiet with backlog = 1 } in
  check Alcotest.int "decays by one" 19 d.Controller.aw_after;
  (* A backlog in balance with the window holds it steady. *)
  let c = Controller.create ~config:(cfg ()) ~init:20 () in
  let d = Controller.observe c { quiet with backlog = 15 } in
  check Alcotest.int "steady" 20 d.Controller.aw_after

let test_decay_needs_idle_streak () =
  let c = Controller.create ~config:(cfg ~decay_after:3 ()) ~init:20 () in
  let idle = { quiet with backlog = 1 } in
  check Alcotest.int "1st idle holds" 20 (Controller.observe c idle).Controller.aw_after;
  check Alcotest.int "2nd idle holds" 20 (Controller.observe c idle).Controller.aw_after;
  check Alcotest.int "3rd idle decays" 19 (Controller.observe c idle).Controller.aw_after;
  (* A balanced rotation resets the streak. *)
  check Alcotest.int "streak restarts" 19 (Controller.observe c idle).Controller.aw_after;
  ignore (Controller.observe c { quiet with backlog = 15 });
  check Alcotest.int "1st idle after reset holds" 19
    (Controller.observe c idle).Controller.aw_after

let test_fcc_and_rotation_signals () =
  let c =
    Controller.create ~config:(cfg ~fcc_high:100 ~target_rotation_ns:1_000_000 ())
      ~init:30 ()
  in
  let d = Controller.observe c { quiet with fcc = 100; backlog = 999 } in
  check Alcotest.bool "fcc high-water congests" true d.Controller.congested;
  let d = Controller.observe c { quiet with rotation_ns = 2_000_000 } in
  check Alcotest.bool "slow rotation congests" true d.Controller.congested;
  let d = Controller.observe c { quiet with rotation_ns = 500_000; backlog = 99 } in
  check Alcotest.bool "fast quiet rotation does not" false d.Controller.congested

let test_config_validation () =
  Alcotest.check_raises "aw_max < aw_min rejected"
    (Invalid_argument "Controller.default_config: aw_max < aw_min") (fun () ->
      ignore (Controller.default_config ~aw_min:10 ~aw_max:5 ()));
  Alcotest.check_raises "decrease >= 1 rejected"
    (Invalid_argument "Controller.default_config: decrease must be in (0,1)")
    (fun () -> ignore (Controller.default_config ~decrease:1.0 ~aw_max:5 ()))

(* ------------------------------------------------------------------ *)
(* Properties: monotonicity, clamping, determinism                     *)

let signal_gen =
  QCheck.Gen.(
    map
      (fun (rot, fcc, retrans, backlog) ->
        { Controller.rotation_ns = rot; fcc; retrans; backlog })
      (quad (int_bound 10_000_000) (int_bound 1000) (int_bound 20)
         (int_bound 2000)))

let signals_arb =
  QCheck.make
    ~print:(fun ss ->
      String.concat ";"
        (List.map
           (fun (s : Controller.signals) ->
             Printf.sprintf "(rot=%d fcc=%d rt=%d bk=%d)" s.rotation_ns s.fcc
               s.retrans s.backlog)
           ss))
    QCheck.Gen.(list_size (int_range 1 100) signal_gen)

let prop_congestion_never_increases =
  QCheck.Test.make ~count:200
    ~name:"a congested rotation never raises the window"
    signals_arb
    (fun ss ->
      let c =
        Controller.create
          ~config:(cfg ~fcc_high:500 ~target_rotation_ns:5_000_000 ())
          ~init:25 ()
      in
      List.for_all
        (fun s ->
          let d = Controller.observe c s in
          (not d.Controller.congested)
          || d.Controller.aw_after <= d.Controller.aw_before)
        ss)

let prop_sustained_congestion_monotone =
  QCheck.Test.make ~count:100
    ~name:"under sustained congestion the window is non-increasing"
    signals_arb
    (fun ss ->
      let c = Controller.create ~config:(cfg ()) ~init:50 () in
      (* Force every signal to carry congestion evidence. *)
      let ss = List.map (fun s -> { s with Controller.retrans = 1 + s.Controller.retrans }) ss in
      let rec loop prev = function
        | [] -> true
        | s :: rest ->
            let d = Controller.observe c s in
            d.Controller.aw_after <= prev && loop d.Controller.aw_after rest
      in
      loop 50 ss)

let prop_window_stays_in_bounds =
  QCheck.Test.make ~count:200 ~name:"window clamps to [aw_min, aw_max]"
    QCheck.(pair signals_arb (pair (int_range 0 10) (int_range 10 60)))
    (fun (ss, (aw_min, aw_max)) ->
      let c =
        Controller.create
          ~config:(cfg ~aw_min ~aw_max ~fcc_high:300 ~target_rotation_ns:2_000_000 ())
          ~init:aw_max ()
      in
      List.for_all
        (fun s ->
          let d = Controller.observe c s in
          d.Controller.aw_after >= aw_min && d.Controller.aw_after <= aw_max)
        ss)

let prop_decisions_deterministic =
  QCheck.Test.make ~count:100
    ~name:"identical signal sequences yield identical decisions"
    signals_arb
    (fun ss ->
      let trajectory () =
        let c =
          Controller.create
            ~config:(cfg ~fcc_high:400 ~target_rotation_ns:3_000_000 ())
            ~init:20 ()
        in
        List.map
          (fun s ->
            let d = Controller.observe c s in
            (d.Controller.aw_before, d.Controller.aw_after, d.Controller.congested))
          ss
      in
      trajectory () = trajectory ())

(* ------------------------------------------------------------------ *)
(* End-to-end: controller attached to a simulated cluster              *)

let test_scenario_run_with_controller () =
  let params = Params.accelerated ~personal_window:50 ~global_window:400 () in
  let spec =
    {
      Aring_harness.Scenario.default_spec with
      label = "adaptive-smoke";
      n_nodes = 4;
      params;
      offered_mbps = 150.0;
      warmup_ns = 20_000_000;
      measure_ns = 80_000_000;
      controller =
        Some (Controller.default_config ~aw_max:50 ~target_rotation_ns:0 ());
    }
  in
  let r = Aring_harness.Scenario.run spec in
  check Alcotest.bool "delivers most of the load" true
    (r.Aring_harness.Scenario.delivered_mbps >= 0.9 *. 150.0);
  check Alcotest.bool "controller made decisions" true
    (Aring_obs.Metrics.counter_value r.Aring_harness.Scenario.metrics
       "control.decisions"
    > 0)

let test_step_load_produces_phases () =
  let spec =
    {
      Aring_harness.Scenario.default_spec with
      label = "step-phases";
      n_nodes = 4;
      offered_mbps = 100.0;
      warmup_ns = 20_000_000;
      measure_ns = 60_000_000;
      load =
        Aring_harness.Scenario.step_load ~low:100.0 ~high:300.0
          ~at_ns:40_000_000 ~until_ns:60_000_000;
    }
  in
  let r = Aring_harness.Scenario.run spec in
  let phases = r.Aring_harness.Scenario.phases in
  check Alcotest.int "three phases inside the window" 3 (List.length phases);
  (match phases with
  | [ a; b; c ] ->
      check (Alcotest.float 0.01) "phase 1 offered" 100.0
        a.Aring_harness.Scenario.p_offered_mbps;
      check (Alcotest.float 0.01) "phase 2 offered" 300.0
        b.Aring_harness.Scenario.p_offered_mbps;
      check (Alcotest.float 0.01) "phase 3 offered" 100.0
        c.Aring_harness.Scenario.p_offered_mbps;
      List.iter
        (fun (p : Aring_harness.Scenario.phase) ->
          check Alcotest.bool "each phase delivered something" true
            (p.p_deliveries > 0))
        phases
  | _ -> Alcotest.fail "wrong phase count");
  check Alcotest.int "phase deliveries partition the total"
    r.Aring_harness.Scenario.deliveries
    (List.fold_left
       (fun acc (p : Aring_harness.Scenario.phase) -> acc + p.p_deliveries)
       0 phases)

let test_member_cluster_with_controller_survives_crash () =
  (* Controllers at the Member level: the learned window must survive a
     reformation, and ordering must hold throughout. *)
  let ms n = n * 1_000_000 in
  let params =
    {
      (Params.accelerated ~personal_window:50 ~global_window:400 ()) with
      token_loss_ns = ms 50;
      token_retransmit_ns = ms 10;
      join_retransmit_ns = ms 20;
      consensus_timeout_ns = ms 100;
      merge_probe_ns = ms 80;
    }
  in
  let n = 4 in
  let controllers =
    Array.init n (fun _ ->
        Controller.create
          ~config:(cfg ~aw_max:params.Params.personal_window ())
          ~init:params.Params.accelerated_window ())
  in
  let members =
    Array.init n (fun me ->
        Member.create ~params ~me
          ~initial_ring:(Array.init n (fun i -> i))
          ~controller:controllers.(me) ())
  in
  let sim =
    Netsim.create ~net:Profile.gigabit
      ~tiers:(Array.make n Profile.library)
      ~participants:(Array.map Member.participant members)
      ~seed:11L ()
  in
  let deliveries = Array.init n (fun _ -> ref []) in
  Netsim.on_deliver sim (fun ~at ~now:_ (d : Aring_wire.Message.data) ->
      deliveries.(at) := Bytes.to_string d.payload :: !(deliveries.(at)));
  for k = 1 to 60 do
    Netsim.call_at sim ~at:(k * 400_000) (fun () ->
        Member.submit members.(k mod n) Aring_wire.Types.Agreed
          (Bytes.of_string (Printf.sprintf "m%d" k)))
  done;
  Netsim.call_at sim ~at:(ms 12) (fun () -> Netsim.crash sim 3);
  Netsim.run_until sim (ms 2000);
  (* Survivors converge operational and agree on the delivery stream. *)
  let alive = [ 0; 1; 2 ] in
  List.iter
    (fun i ->
      check Alcotest.string
        (Printf.sprintf "survivor %d operational" i)
        "operational"
        (Member.state_name members.(i)))
    alive;
  let streams = List.map (fun i -> List.rev !(deliveries.(i))) alive in
  (match streams with
  | s0 :: rest ->
      List.iter
        (fun s -> check Alcotest.bool "streams identical" true (s = s0))
        rest
  | [] -> assert false);
  (* Every survivor's controller saw rotations in the reformed ring too. *)
  List.iter
    (fun i ->
      match Member.node members.(i) with
      | None -> Alcotest.fail "operational member has a node"
      | Some node -> (
          match Node.controller node with
          | None -> Alcotest.fail "controller attached"
          | Some c ->
              check Alcotest.bool
                (Printf.sprintf "survivor %d window within bounds" i)
                true
                (Controller.window c >= 0
                && Controller.window c <= params.Params.personal_window)))
    alive

let test_engine_window_setter_clamps () =
  let params = Params.accelerated ~personal_window:30 ~accelerated_window:10 () in
  let eng =
    Engine.create ~params
      ~ring_id:{ Aring_wire.Types.rep = 0; ring_seq = 1 }
      ~ring:[| 0; 1 |] ~me:0
  in
  check Alcotest.int "starts at params" 10 (Engine.accelerated_window eng);
  Engine.set_accelerated_window eng 99;
  check Alcotest.int "clamped to personal window" 30
    (Engine.accelerated_window eng);
  Engine.set_accelerated_window eng (-5);
  check Alcotest.int "clamped to zero" 0 (Engine.accelerated_window eng)

let test_engine_round_signals_captured () =
  let params = Params.accelerated ~personal_window:10 ~accelerated_window:5 () in
  let rid : Aring_wire.Types.ring_id = { rep = 0; ring_seq = 1 } in
  let eng = Engine.create ~params ~ring_id:rid ~ring:[| 0; 1 |] ~me:0 in
  check Alcotest.bool "no signals before first round" true
    (Engine.last_round_signals eng = None);
  for i = 1 to 25 do
    ignore
      (Engine.handle eng
         (Engine.Submit (Aring_wire.Types.Agreed, Bytes.make 8 (Char.chr i))))
  done;
  ignore (Engine.handle eng (Engine.Token_received (Engine.initial_token rid)));
  match Engine.last_round_signals eng with
  | None -> Alcotest.fail "signals after a round"
  | Some s ->
      check Alcotest.int "round" 1 s.Engine.sr_round;
      check Alcotest.int "fcc from incoming token" 0 s.Engine.sr_fcc;
      check Alcotest.int "personal window admitted 10" 10 s.Engine.sr_allowed_new;
      check Alcotest.int "backlog as the token arrived" 25 s.Engine.sr_backlog;
      check Alcotest.int "no retransmissions" 0 s.Engine.sr_retrans

let qtest = QCheck_alcotest.to_alcotest

let suite =
  [
    ("backlog grows window", `Quick, test_backlog_grows_window);
    ("congestion shrinks window", `Quick, test_congestion_shrinks_window);
    ("idle decays window", `Quick, test_idle_decays_window);
    ("decay needs an idle streak", `Quick, test_decay_needs_idle_streak);
    ("fcc and rotation signals", `Quick, test_fcc_and_rotation_signals);
    ("config validation", `Quick, test_config_validation);
    qtest prop_congestion_never_increases;
    qtest prop_sustained_congestion_monotone;
    qtest prop_window_stays_in_bounds;
    qtest prop_decisions_deterministic;
    ("engine window setter clamps", `Quick, test_engine_window_setter_clamps);
    ("engine round signals captured", `Quick, test_engine_round_signals_captured);
    ("scenario run with controller", `Quick, test_scenario_run_with_controller);
    ("step load produces phases", `Quick, test_step_load_produces_phases);
    ("member cluster with controller survives crash", `Quick,
      test_member_cluster_with_controller_survives_crash);
  ]
