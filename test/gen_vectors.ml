(* Regenerate the committed golden-vector file. Only run this when the
   wire format changes ON PURPOSE; the golden test exists to make silent
   format drift impossible.

     dune exec test/gen_vectors.exe -- test/vectors/frames.bin *)

let () =
  let path =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "test/vectors/frames.bin"
  in
  Aring_test_vectors.Vectors_def.write_file path;
  Printf.printf "wrote %d frames to %s\n"
    (List.length Aring_test_vectors.Vectors_def.all)
    path
