(* Replicated-KV tests: op codec, basic replication and read semantics,
   view-synchronous state transfer (including transfer under churn:
   joiner crash, donor crash, re-partition mid-transfer), and the
   consistency oracle's detection power on synthetic observation
   streams. *)

open Aring_wire
open Aring_ring
open Aring_sim
open Aring_daemon
open Aring_app

let check = Alcotest.check
let ms n = n * 1_000_000

(* -------------------------------------------------------------------- *)
(* Op codec                                                              *)

let sample_ops =
  [
    Op.Put { key = "k1"; value = "hello" };
    Op.Del { key = "gone" };
    Op.Cas { key = "c"; expect = None; value = "v0" };
    Op.Cas { key = "c"; expect = Some "v0"; value = "v1" };
    Op.Sync_read { reader = "#kv#2"; nonce = 41; key = "k1" };
    Op.Hello
      {
        view = { Types.rep = 1; ring_seq = 7 };
        daemon = 2;
        applied = 123;
        digest = 0xDEADBEEFL;
        synced = true;
      };
    Op.Chunk
      {
        view = { Types.rep = 0; ring_seq = 3 };
        donor = 0;
        index = 1;
        total = 4;
        applied = 99;
        entries = [ ("a", "1"); ("b", "2") ];
      };
    Op.Chunk
      {
        view = { Types.rep = 0; ring_seq = 1 };
        donor = 1;
        index = 0;
        total = 1;
        applied = 0;
        entries = [];
      };
  ]

let test_op_roundtrips () =
  List.iter
    (fun op ->
      let op' = Op.decode (Op.encode op) in
      check Alcotest.bool
        (Fmt.str "roundtrip %a" Op.pp op)
        true (op = op'))
    sample_ops

let prop_op_put_roundtrip =
  QCheck.Test.make ~name:"op put/cas roundtrips" ~count:200
    QCheck.(
      triple (string_of_size Gen.(0 -- 40))
        (option (string_of_size Gen.(0 -- 60)))
        (string_of_size Gen.(0 -- 200)))
    (fun (key, expect, value) ->
      let samples =
        [
          Op.Put { key; value };
          Op.Del { key };
          Op.Cas { key; expect; value };
        ]
      in
      List.for_all (fun op -> Op.decode (Op.encode op) = op) samples)

let test_op_rejects_garbage () =
  Alcotest.check_raises "bad tag" (Codec.Decode_error "Op: unknown tag 99")
    (fun () -> ignore (Op.decode (Bytes.make 1 'c')))

(* -------------------------------------------------------------------- *)
(* Simulated KV cluster                                                  *)

let test_params =
  {
    (Params.accelerated ()) with
    token_loss_ns = ms 50;
    token_retransmit_ns = ms 10;
    join_retransmit_ns = ms 20;
    consensus_timeout_ns = ms 100;
    merge_probe_ns = ms 80;
  }

type kcluster = {
  sim : Netsim.t;
  kvs : Kv.t array;
  oracle : Oracle.t;
}

let make_kcluster ?(n = 3) ?(seed = 3L) ?(bug = fun _ -> Kv.Bug_none) () =
  let ring = Array.init n (fun i -> i) in
  let members =
    Array.init n (fun me ->
        Member.create ~params:test_params ~me ~initial_ring:ring ())
  in
  let daemons = Array.map (fun m -> Daemon.create ~member:m ()) members in
  let kvs =
    Array.init n (fun i ->
        Kv.create ~bug:(bug i) ~cluster_size:n ~daemon:daemons.(i) ())
  in
  let oracle = Oracle.create () in
  Array.iter (fun kv -> Oracle.attach oracle kv) kvs;
  let sim =
    Netsim.create ~net:Profile.gigabit
      ~tiers:(Array.make n Profile.daemon)
      ~participants:(Array.map Daemon.participant daemons)
      ~seed ()
  in
  { sim; kvs; oracle }

let assert_oracle_clean c =
  if Oracle.violation_count c.oracle > 0 then
    Alcotest.fail (Fmt.str "oracle: %a" Oracle.pp c.oracle)

let assert_converged ?(msg = "converged") c alive =
  List.iter
    (fun i ->
      check Alcotest.bool
        (Printf.sprintf "%s: node %d synced+settled" msg i)
        true
        (Kv.synced c.kvs.(i) && Kv.settled c.kvs.(i)))
    alive;
  match alive with
  | [] -> ()
  | first :: rest ->
      List.iter
        (fun i ->
          check Alcotest.int
            (Printf.sprintf "%s: node %d applied" msg i)
            (Kv.applied c.kvs.(first))
            (Kv.applied c.kvs.(i));
          check Alcotest.bool
            (Printf.sprintf "%s: node %d digest" msg i)
            true
            (Kv.digest c.kvs.(i) = Kv.digest c.kvs.(first)))
        rest;
      Oracle.check_convergence c.oracle (List.map (fun i -> c.kvs.(i)) alive);
      assert_oracle_clean c

let test_basic_replication () =
  let c = make_kcluster () in
  Netsim.run_until c.sim (ms 10);
  Kv.put c.kvs.(0) ~key:"a" ~value:"1";
  Kv.put c.kvs.(1) ~key:"b" ~value:"2";
  Kv.del c.kvs.(2) ~key:"missing";
  Netsim.run_until c.sim (ms 40);
  Kv.put c.kvs.(2) ~key:"a" ~value:"3";
  Netsim.run_until c.sim (ms 80);
  (* All four writes applied everywhere, in the same order. *)
  Array.iteri
    (fun i kv ->
      check Alcotest.int (Printf.sprintf "node %d applied" i) 4 (Kv.applied kv);
      let v, token = Kv.read kv ~key:"a" in
      check (Alcotest.option Alcotest.string)
        (Printf.sprintf "node %d reads a" i)
        (Some "3") v;
      check Alcotest.int (Printf.sprintf "node %d token" i) 4 token)
    c.kvs;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
    "entries" [ ("a", "3"); ("b", "2") ]
    (Kv.entries c.kvs.(0));
  assert_converged c [ 0; 1; 2 ]

let test_cas_semantics () =
  let c = make_kcluster () in
  Netsim.run_until c.sim (ms 10);
  Kv.cas c.kvs.(0) ~key:"x" ~expect:None ~value:"first";
  Netsim.run_until c.sim (ms 30);
  (* Two concurrent CAS against "first": delivered in some total order;
     exactly one succeeds at every replica. *)
  Kv.cas c.kvs.(1) ~key:"x" ~expect:(Some "first") ~value:"from1";
  Kv.cas c.kvs.(2) ~key:"x" ~expect:(Some "first") ~value:"from2";
  Netsim.run_until c.sim (ms 70);
  let v0, _ = Kv.read c.kvs.(0) ~key:"x" in
  check Alcotest.bool "one winner" true (v0 = Some "from1" || v0 = Some "from2");
  Array.iter
    (fun kv ->
      let v, _ = Kv.read kv ~key:"x" in
      check (Alcotest.option Alcotest.string) "same winner everywhere" v0 v;
      check Alcotest.int "one cas failure" 1 (Kv.stats kv).Kv.cas_failures)
    c.kvs;
  assert_converged c [ 0; 1; 2 ]

let test_sync_read () =
  let c = make_kcluster () in
  Netsim.run_until c.sim (ms 10);
  Kv.put c.kvs.(1) ~key:"k" ~value:"v1";
  (* Issued right after the put at the same replica: per-sender FIFO puts
     the Safe-ordered marker behind the put, so the answer must see it
     even though the local store hasn't applied it yet. *)
  let answer = ref None in
  Kv.sync_read c.kvs.(1) ~key:"k" ~on_result:(fun v ~token ->
      answer := Some (v, token));
  Netsim.run_until c.sim (ms 80);
  (match !answer with
  | None -> Alcotest.fail "sync read never answered"
  | Some (v, token) ->
      check (Alcotest.option Alcotest.string) "sync read value" (Some "v1") v;
      check Alcotest.bool "token covers the put" true (token >= 1));
  check Alcotest.int "no pending reads" 0 (Kv.pending_sync_reads c.kvs.(1));
  assert_converged c [ 0; 1; 2 ]

(* -------------------------------------------------------------------- *)
(* State transfer                                                        *)

(* Cut [island] away from the rest between the two times. *)
let partition sim n ~at ~heal island =
  let inside = Array.make n false in
  List.iter (fun i -> inside.(i) <- true) island;
  Netsim.set_drop sim (fun ~src ~dst _ ->
      let now = Netsim.now sim in
      now >= at && now < heal && inside.(src) <> inside.(dst))

(* Preload every replica and diverge the majority during a partition so
   the island member needs a snapshot at heal time. *)
let diverged_cluster ?(n = 4) ?(entries = 200) ~heal () =
  let c = make_kcluster ~n () in
  let preloaded =
    List.init entries (fun i -> (Printf.sprintf "p%04d" i, String.make 100 'x'))
  in
  Array.iter (fun kv -> Kv.preload kv preloaded) c.kvs;
  partition c.sim n ~at:(ms 5) ~heal [ n - 1 ];
  for i = 0 to 39 do
    Netsim.call_at c.sim
      ~at:(ms 15 + (i * 500_000))
      (fun () -> Kv.put c.kvs.(0) ~key:(Printf.sprintf "d%03d" i) ~value:"new")
  done;
  c

let test_state_transfer_on_heal () =
  let n = 4 in
  let c = diverged_cluster ~n ~heal:(ms 300) () in
  Netsim.run_until c.sim (ms 250);
  (* Mid-partition: the majority applied the burst (including writes
     queued while its 3-member view formed), the island is frozen in a
     minority view and saw none of them. *)
  check Alcotest.int "majority applied" 40 (Kv.applied c.kvs.(0));
  check Alcotest.int "island frozen" 0 (Kv.applied c.kvs.(n - 1));
  Netsim.run_until c.sim (ms 900);
  check Alcotest.bool "island installed a snapshot" true
    ((Kv.stats c.kvs.(n - 1)).Kv.installs >= 1);
  check Alcotest.int "island caught up" 40 (Kv.applied c.kvs.(n - 1));
  assert_converged c (List.init n Fun.id)

let test_minority_writes_rejected () =
  let n = 3 in
  let c = make_kcluster ~n () in
  partition c.sim n ~at:(ms 5) ~heal:(ms 400) [ 2 ];
  (* Wait until the island has settled into its singleton configuration,
     then write: delivered in a minority view and rejected
     deterministically. *)
  Netsim.run_until c.sim (ms 250);
  Kv.put c.kvs.(2) ~key:"lost" ~value:"minority";
  Netsim.run_until c.sim (ms 350);
  check Alcotest.bool "minority rejected the write" true
    ((Kv.stats c.kvs.(2)).Kv.rejected_writes >= 1);
  check Alcotest.int "minority did not apply" 0 (Kv.applied c.kvs.(2));
  Netsim.run_until c.sim (ms 900);
  let v, _ = Kv.read c.kvs.(2) ~key:"lost" in
  check (Alcotest.option Alcotest.string) "write stayed rejected" None v;
  assert_converged c [ 0; 1; 2 ]

(* Run in small steps until the island member enters a transfer, then
   act; the transfer stream is long enough (big preload) that the action
   lands mid-stream. *)
let until_in_transfer c ~node ~deadline =
  let t = ref 0 in
  while (not (Kv.in_transfer c.kvs.(node))) && !t < deadline do
    t := !t + 200_000;
    Netsim.run_until c.sim !t
  done;
  if not (Kv.in_transfer c.kvs.(node)) then
    Alcotest.fail "island never entered a transfer";
  !t

let test_joiner_crash_mid_transfer () =
  let n = 4 in
  let c = diverged_cluster ~n ~entries:2000 ~heal:(ms 120) () in
  let joiner = n - 1 in
  let _ = until_in_transfer c ~node:joiner ~deadline:(ms 500) in
  Netsim.crash c.sim joiner;
  Netsim.run_until c.sim (ms 900);
  (* Survivors shrug the dead receiver off and stay converged. *)
  assert_converged ~msg:"survivors" c [ 0; 1; 2 ]

let test_donor_crash_mid_transfer () =
  let n = 4 in
  let c = diverged_cluster ~n ~entries:2000 ~heal:(ms 120) () in
  let joiner = n - 1 in
  let _ = until_in_transfer c ~node:joiner ~deadline:(ms 500) in
  (* The donor is the lowest-pid synced member: node 0. Kill it with the
     chunk stream in flight; the next view aborts the transfer and
     re-elects a surviving donor. *)
  Netsim.crash c.sim 0;
  Netsim.run_until c.sim (ms 1_200);
  check Alcotest.bool "transfer was aborted and retried" true
    ((Kv.stats c.kvs.(joiner)).Kv.xfer_aborts >= 1);
  check Alcotest.bool "joiner still installed" true
    ((Kv.stats c.kvs.(joiner)).Kv.installs >= 1);
  assert_converged ~msg:"survivors" c [ 1; 2; joiner ]

let test_repartition_mid_transfer () =
  let n = 4 in
  let c = diverged_cluster ~n ~entries:2000 ~heal:(ms 120) () in
  let joiner = n - 1 in
  let t = until_in_transfer c ~node:joiner ~deadline:(ms 500) in
  (* Cut the receiver away again mid-stream, then heal for good. *)
  partition c.sim n ~at:t ~heal:(t + ms 80) [ joiner ];
  Netsim.run_until c.sim (ms 1_500);
  check Alcotest.bool "transfer was aborted" true
    ((Kv.stats c.kvs.(joiner)).Kv.xfer_aborts >= 1);
  check Alcotest.bool "joiner eventually installed" true
    ((Kv.stats c.kvs.(joiner)).Kv.installs >= 1);
  assert_converged c (List.init n Fun.id)

(* -------------------------------------------------------------------- *)
(* Bug injection end-to-end                                              *)

let test_skip_apply_bug_caught () =
  let bug i = if i = 1 then Kv.Bug_skip_apply { every = 3 } else Kv.Bug_none in
  let c = make_kcluster ~bug () in
  Netsim.run_until c.sim (ms 10);
  for i = 0 to 9 do
    Kv.put c.kvs.(0) ~key:(Printf.sprintf "k%d" i) ~value:"v"
  done;
  Netsim.run_until c.sim (ms 120);
  check Alcotest.bool "oracle caught the skipped apply" true
    (Oracle.violation_count c.oracle > 0);
  let v = List.hd (Oracle.violations c.oracle) in
  check Alcotest.string "as stale state" "stale_state"
    (Oracle.kind_label v.Oracle.o_kind);
  check Alcotest.int "at the buggy node" 1 v.Oracle.o_node

(* -------------------------------------------------------------------- *)
(* Oracle unit checks                                                    *)

let test_oracle_clean_stream () =
  let o = Oracle.create () in
  Oracle.observe o ~node:0
    (Kv.Applied
       { index = 1; op = Op.Put { key = "a"; value = "1" }; value = Some "1" });
  Oracle.observe o ~node:0
    (Kv.Read { key = "a"; value = Some "1"; token = 1; sync = false });
  Oracle.observe o ~node:0
    (Kv.Applied { index = 2; op = Op.Del { key = "a" }; value = None });
  Oracle.observe o ~node:0
    (Kv.Read { key = "a"; value = None; token = 2; sync = true });
  check Alcotest.int "clean" 0 (Oracle.violation_count o)

let test_oracle_flags_gap_and_stale () =
  let o = Oracle.create () in
  Oracle.observe o ~node:2
    (Kv.Applied
       { index = 2; op = Op.Put { key = "a"; value = "1" }; value = Some "1" });
  check Alcotest.int "gap flagged" 1 (Oracle.violation_count o);
  Oracle.observe o ~node:2
    (Kv.Applied
       { index = 3; op = Op.Put { key = "a"; value = "2" }; value = Some "1" });
  check Alcotest.int "stale state flagged" 2 (Oracle.violation_count o);
  let kinds =
    List.map (fun v -> Oracle.kind_label v.Oracle.o_kind) (Oracle.violations o)
  in
  check (Alcotest.list Alcotest.string) "kinds"
    [ "apply_gap"; "stale_state" ]
    kinds

let test_oracle_flags_non_monotonic_read () =
  let o = Oracle.create () in
  Oracle.observe o ~node:0
    (Kv.Read { key = "a"; value = None; token = 5; sync = false });
  Oracle.observe o ~node:0
    (Kv.Read { key = "a"; value = None; token = 3; sync = false });
  check Alcotest.int "flagged" 1 (Oracle.violation_count o);
  check Alcotest.string "kind" "non_monotonic_read"
    (Oracle.kind_label (List.hd (Oracle.violations o)).Oracle.o_kind)

let test_oracle_install_rebases () =
  let o = Oracle.create () in
  Oracle.observe o ~node:0
    (Kv.Read { key = "a"; value = None; token = 9; sync = false });
  Oracle.observe o ~node:0
    (Kv.Installed { donor = 1; applied = 4; entries = [ ("a", "x") ] });
  (* Token re-based by the install: a lower token is fine now, and reads
     reflect the installed store. *)
  Oracle.observe o ~node:0
    (Kv.Read { key = "a"; value = Some "x"; token = 4; sync = false });
  Oracle.observe o ~node:0
    (Kv.Applied
       { index = 5; op = Op.Put { key = "b"; value = "y" }; value = Some "y" });
  check Alcotest.int "clean" 0 (Oracle.violation_count o)

(* -------------------------------------------------------------------- *)
(* Scenario-driven workload                                              *)

let test_kv_scenario_smoke () =
  let spec =
    {
      Kv_scenario.default_spec with
      Kv_scenario.n_nodes = 3;
      ops_per_sec = 4_000.0;
      warmup_ns = ms 20;
      measure_ns = ms 80;
      drain_ns = ms 800;
      seed = 5L;
    }
  in
  let r = Kv_scenario.run spec in
  check Alcotest.int "oracle clean" 0 r.Kv_scenario.oracle_violations;
  check Alcotest.bool "converged" true r.Kv_scenario.converged;
  check Alcotest.bool "applied writes" true (r.Kv_scenario.writes_applied > 0);
  check Alcotest.bool "measured write latency" true
    (Aring_util.Stats.count r.Kv_scenario.write_latency_us > 0);
  check Alcotest.bool "measured sync reads" true
    (Aring_util.Stats.count r.Kv_scenario.sync_read_latency_us > 0)

let test_kv_scenario_partition () =
  let spec =
    {
      Kv_scenario.default_spec with
      Kv_scenario.n_nodes = 4;
      ops_per_sec = 3_000.0;
      warmup_ns = ms 20;
      measure_ns = ms 200;
      drain_ns = ms 1_500;
      seed = 6L;
      partition =
        Some
          {
            Kv_scenario.part_at_ns = ms 60;
            heal_at_ns = ms 140;
            island = [ 3 ];
          };
    }
  in
  let r = Kv_scenario.run spec in
  check Alcotest.int "oracle clean" 0 r.Kv_scenario.oracle_violations;
  check Alcotest.bool "converged" true r.Kv_scenario.converged;
  check Alcotest.bool "state transfer happened" true (r.Kv_scenario.installs >= 1)

let test_measure_transfer () =
  let r = Kv_scenario.measure_transfer ~store_entries:500 () in
  check Alcotest.bool "entries transferred" true
    (r.Kv_scenario.entries_transferred >= 500);
  check Alcotest.bool "timed" true (r.Kv_scenario.xfer_us > 0.0)

let suite =
  [
    Alcotest.test_case "op codec roundtrips" `Quick test_op_roundtrips;
    QCheck_alcotest.to_alcotest prop_op_put_roundtrip;
    Alcotest.test_case "op codec rejects garbage" `Quick test_op_rejects_garbage;
    Alcotest.test_case "basic replication" `Quick test_basic_replication;
    Alcotest.test_case "cas semantics" `Quick test_cas_semantics;
    Alcotest.test_case "sync read" `Quick test_sync_read;
    Alcotest.test_case "state transfer on heal" `Quick test_state_transfer_on_heal;
    Alcotest.test_case "minority writes rejected" `Quick
      test_minority_writes_rejected;
    Alcotest.test_case "joiner crash mid-transfer" `Quick
      test_joiner_crash_mid_transfer;
    Alcotest.test_case "donor crash mid-transfer" `Quick
      test_donor_crash_mid_transfer;
    Alcotest.test_case "re-partition mid-transfer" `Quick
      test_repartition_mid_transfer;
    Alcotest.test_case "seeded skip-apply bug caught" `Quick
      test_skip_apply_bug_caught;
    Alcotest.test_case "oracle: clean stream" `Quick test_oracle_clean_stream;
    Alcotest.test_case "oracle: gap and stale state" `Quick
      test_oracle_flags_gap_and_stale;
    Alcotest.test_case "oracle: non-monotonic read" `Quick
      test_oracle_flags_non_monotonic_read;
    Alcotest.test_case "oracle: install re-bases" `Quick
      test_oracle_install_rebases;
    Alcotest.test_case "kv scenario smoke" `Quick test_kv_scenario_smoke;
    Alcotest.test_case "kv scenario with partition" `Quick
      test_kv_scenario_partition;
    Alcotest.test_case "measure transfer" `Quick test_measure_transfer;
  ]
