(* CLI: deterministic simulation fuzzer for the Accelerated Ring stack.

   Generates random fault schedules from a campaign seed, runs each on the
   discrete-event simulator with the EVS invariant checker attached, and
   on the first failure shrinks the schedule to a minimal reproducer.
   Output for a fixed seed is byte-for-byte reproducible (no wall-clock
   content); --time-budget can only cut a campaign short between trials,
   never change what an executed trial does. *)

open Aring_fuzz

(* Post-mortem artifacts for a failed run: the flight recorder's tail as
   JSONL (the recorder is reset at the start of every run, so it holds
   exactly the failing run's last records) and the rendered outcome —
   which, for a health-watchdog stall, carries the full per-node
   phase-cycle report — as a sibling .report.txt. *)
let dump_flight ~path outcome =
  Aring_obs.Flight.dump_jsonl_file path;
  let report_path = path ^ ".report.txt" in
  Out_channel.with_open_text report_path (fun oc ->
      let ppf = Format.formatter_of_out_channel oc in
      Format.fprintf ppf "%a@." Runner.pp_outcome outcome);
  Printf.printf "flight recorder: %d records -> %s (+ %s)\n"
    (Aring_obs.Flight.stored ()) path report_path

let run trials seed max_nodes rings bug_name adaptive app_name shrink
    max_shrink_runs time_budget replay_path trace_file corpus_dir flight_dump
    quiet =
  if rings < 1 then begin
    prerr_endline "--rings must be >= 1";
    exit 2
  end;
  let bug =
    match Bug.of_string bug_name with
    | Ok b -> b
    | Error e ->
        prerr_endline e;
        exit 2
  in
  let app =
    match Runner.app_of_string app_name with
    | Ok a -> a
    | Error e ->
        prerr_endline e;
        exit 2
  in
  let log line = if not quiet then print_endline line in
  match replay_path with
  | Some path ->
      (* Replay one schedule file, or every *.json entry of a directory. *)
      let entries =
        if Sys.is_directory path then Corpus.load_dir path
        else [ (Filename.basename path, Corpus.load_file path) ]
      in
      if entries = [] then begin
        Printf.printf "no corpus entries under %s\n" path;
        exit 0
      end;
      let trace_oc = Option.map open_out trace_file in
      let extra_sink = Option.map Aring_obs.Trace_json.jsonl_sink trace_oc in
      let failed = ref 0 in
      List.iter
        (fun (name, schedule) ->
          let outcome = Fuzzer.replay ~bug ~adaptive ~app ?extra_sink schedule in
          Format.printf "%s: %a@." name Runner.pp_outcome outcome;
          if not (Runner.passed outcome) then begin
            (* Dump the first failure: the recorder holds this run's tail
               until the next replay overwrites it. *)
            (match flight_dump with
            | Some path when !failed = 0 -> dump_flight ~path outcome
            | _ -> ());
            incr failed
          end)
        entries;
      Option.iter close_out trace_oc;
      Printf.printf "replayed %d entries, %d failed\n" (List.length entries)
        !failed;
      exit (if !failed > 0 then 1 else 0)
  | None ->
      let stop =
        match time_budget with
        | None -> fun () -> false
        | Some seconds ->
            let deadline = Unix.gettimeofday () +. seconds in
            fun () -> Unix.gettimeofday () > deadline
      in
      let cfg =
        {
          Fuzzer.trials;
          seed = Int64.of_int seed;
          max_nodes;
          rings;
          bug;
          adaptive;
          app;
          shrink;
          max_shrink_runs;
          stop;
          log;
        }
      in
      let report = Fuzzer.run_campaign cfg in
      (match report.Fuzzer.failure with
      | None ->
          Printf.printf "campaign seed=%d: %d trials, no failures\n" seed
            report.Fuzzer.trials_run;
          exit 0
      | Some t ->
          let reproducer =
            match report.Fuzzer.shrunk with
            | Some r -> r.Shrink.schedule
            | None -> t.Fuzzer.schedule
          in
          Printf.printf "campaign seed=%d: failure at trial %d\n" seed
            t.Fuzzer.index;
          Printf.printf "reproducer: %s\n" (Schedule.to_string reproducer);
          (match corpus_dir with
          | Some dir ->
              let label =
                match t.Fuzzer.outcome.Runner.failure with
                | Some f -> Runner.failure_label f
                | None -> "unknown"
              in
              let path = Corpus.save ~dir ~label reproducer in
              Printf.printf "saved to %s\n" path
          | None -> ());
          (match flight_dump with
          | Some path ->
              (* The recorder holds whichever run executed last (usually a
                 shrink probe); re-run the reproducer once so the dump
                 matches the schedule printed above. *)
              let outcome = Fuzzer.replay ~bug ~adaptive ~app reproducer in
              dump_flight ~path outcome
          | None -> ());
          exit 1)

open Cmdliner

let trials =
  Arg.(value & opt int 200 & info [ "trials" ] ~doc:"Maximum schedules to try.")

let seed =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Campaign master seed.")

let max_nodes =
  Arg.(
    value & opt int 8
    & info [ "max-nodes" ]
        ~doc:
          "Cluster-size cap for generated schedules. The default (8) \
           preserves the historical seed-to-schedule mapping; larger caps \
           (e.g. 32) stress membership recovery at scale.")

let rings =
  Arg.(
    value & opt int 1
    & info [ "rings" ]
        ~doc:
          "Ordering rings per generated schedule. With more than 1, every \
           trial runs the multi-ring sharded KV deployment: ring-scoped \
           partitions and token blackouts, a cross-shard mcas workload, \
           and per-ring convergence plus cross-shard atomicity oracles. \
           The default (1) preserves the historical seed-to-schedule \
           mapping exactly.")

let bug_name =
  Arg.(
    value & opt string "clean"
    & info [ "bug" ]
        ~doc:
          "Inject a known protocol defect: clean, skip-delivery, \
           skip-retransmission, kv-skip-apply or recovery-flood. Used to \
           validate the fuzzer itself.")

let adaptive =
  Arg.(
    value & flag
    & info [ "adaptive" ]
        ~doc:
          "Run every node with the adaptive accelerated-window controller \
           enabled, fuzzing the protocol while the per-node window moves. \
           Trace hashes differ from static-window runs.")

let app_name =
  Arg.(
    value & opt string "none"
    & info [ "app" ]
        ~doc:
          "Run an application workload on top of every schedule: none, or \
           kv (a replicated key-value store per node whose end-to-end \
           consistency oracle becomes a third safety check). Trace hashes \
           differ from app-free runs.")

let shrink =
  Arg.(
    value & opt bool true
    & info [ "shrink" ] ~doc:"Minimize the first failing schedule.")

let max_shrink_runs =
  Arg.(
    value & opt int 200
    & info [ "max-shrink-runs" ] ~doc:"Execution budget for shrinking.")

let time_budget =
  Arg.(
    value
    & opt (some float) None
    & info [ "time-budget" ] ~docv:"SECONDS"
        ~doc:
          "Stop starting new trials after $(docv) wall-clock seconds (the \
           trial in flight completes).")

let replay_path =
  Arg.(
    value
    & opt (some string) None
    & info [ "replay" ] ~docv:"PATH"
        ~doc:
          "Replay a saved schedule (a reproducer file, or every *.json in \
           a corpus directory) instead of fuzzing.")

let trace_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "With --replay: also dump the full JSONL trace stream of the \
           replayed run(s) to $(docv), for offline analysis with \
           accelring_trace.")

let corpus_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "corpus" ] ~docv:"DIR"
        ~doc:"Save the (shrunk) reproducer of a failure under $(docv).")

let flight_dump =
  Arg.(
    value
    & opt (some string) None
    & info [ "flight-dump" ] ~docv:"FILE"
        ~doc:
          "On failure, dump the always-on flight recorder (the last ~512 \
           protocol events per node of the failing run) as JSONL to \
           $(docv), plus the rendered outcome — including the health \
           watchdog's phase-cycle report when it fired — to \
           $(docv).report.txt. With --replay, the first failing entry is \
           dumped; after a campaign, the reproducer is re-run once so the \
           dump matches it.")

let quiet =
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress per-trial log lines.")

let cmd =
  let doc = "Fuzz the Accelerated Ring stack with random fault schedules" in
  Cmd.v
    (Cmd.info "accelring_fuzz" ~doc)
    Term.(
      const run $ trials $ seed $ max_nodes $ rings $ bug_name $ adaptive
      $ app_name $ shrink
      $ max_shrink_runs $ time_budget $ replay_path $ trace_file $ corpus_dir
      $ flight_dump $ quiet)

let () = exit (Cmd.eval cmd)
