(* CLI: deterministic simulation fuzzer for the Accelerated Ring stack.

   Generates random fault schedules from a campaign seed, runs each on the
   discrete-event simulator with the EVS invariant checker attached, and
   on the first failure shrinks the schedule to a minimal reproducer.
   Output for a fixed seed is byte-for-byte reproducible (no wall-clock
   content); --time-budget can only cut a campaign short between trials,
   never change what an executed trial does. *)

open Aring_fuzz

let run trials seed bug_name adaptive app_name shrink max_shrink_runs
    time_budget replay_path trace_file corpus_dir quiet =
  let bug =
    match Bug.of_string bug_name with
    | Ok b -> b
    | Error e ->
        prerr_endline e;
        exit 2
  in
  let app =
    match Runner.app_of_string app_name with
    | Ok a -> a
    | Error e ->
        prerr_endline e;
        exit 2
  in
  let log line = if not quiet then print_endline line in
  match replay_path with
  | Some path ->
      (* Replay one schedule file, or every *.json entry of a directory. *)
      let entries =
        if Sys.is_directory path then Corpus.load_dir path
        else [ (Filename.basename path, Corpus.load_file path) ]
      in
      if entries = [] then begin
        Printf.printf "no corpus entries under %s\n" path;
        exit 0
      end;
      let trace_oc = Option.map open_out trace_file in
      let extra_sink = Option.map Aring_obs.Trace_json.jsonl_sink trace_oc in
      let failed = ref 0 in
      List.iter
        (fun (name, schedule) ->
          let outcome = Fuzzer.replay ~bug ~adaptive ~app ?extra_sink schedule in
          Format.printf "%s: %a@." name Runner.pp_outcome outcome;
          if not (Runner.passed outcome) then incr failed)
        entries;
      Option.iter close_out trace_oc;
      Printf.printf "replayed %d entries, %d failed\n" (List.length entries)
        !failed;
      exit (if !failed > 0 then 1 else 0)
  | None ->
      let stop =
        match time_budget with
        | None -> fun () -> false
        | Some seconds ->
            let deadline = Unix.gettimeofday () +. seconds in
            fun () -> Unix.gettimeofday () > deadline
      in
      let cfg =
        {
          Fuzzer.trials;
          seed = Int64.of_int seed;
          bug;
          adaptive;
          app;
          shrink;
          max_shrink_runs;
          stop;
          log;
        }
      in
      let report = Fuzzer.run_campaign cfg in
      (match report.Fuzzer.failure with
      | None ->
          Printf.printf "campaign seed=%d: %d trials, no failures\n" seed
            report.Fuzzer.trials_run;
          exit 0
      | Some t ->
          let reproducer =
            match report.Fuzzer.shrunk with
            | Some r -> r.Shrink.schedule
            | None -> t.Fuzzer.schedule
          in
          Printf.printf "campaign seed=%d: failure at trial %d\n" seed
            t.Fuzzer.index;
          Printf.printf "reproducer: %s\n" (Schedule.to_string reproducer);
          (match corpus_dir with
          | Some dir ->
              let label =
                match t.Fuzzer.outcome.Runner.failure with
                | Some f -> Runner.failure_label f
                | None -> "unknown"
              in
              let path = Corpus.save ~dir ~label reproducer in
              Printf.printf "saved to %s\n" path
          | None -> ());
          exit 1)

open Cmdliner

let trials =
  Arg.(value & opt int 200 & info [ "trials" ] ~doc:"Maximum schedules to try.")

let seed =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Campaign master seed.")

let bug_name =
  Arg.(
    value & opt string "clean"
    & info [ "bug" ]
        ~doc:
          "Inject a known protocol defect: clean, skip-delivery, \
           skip-retransmission or kv-skip-apply. Used to validate the \
           fuzzer itself.")

let adaptive =
  Arg.(
    value & flag
    & info [ "adaptive" ]
        ~doc:
          "Run every node with the adaptive accelerated-window controller \
           enabled, fuzzing the protocol while the per-node window moves. \
           Trace hashes differ from static-window runs.")

let app_name =
  Arg.(
    value & opt string "none"
    & info [ "app" ]
        ~doc:
          "Run an application workload on top of every schedule: none, or \
           kv (a replicated key-value store per node whose end-to-end \
           consistency oracle becomes a third safety check). Trace hashes \
           differ from app-free runs.")

let shrink =
  Arg.(
    value & opt bool true
    & info [ "shrink" ] ~doc:"Minimize the first failing schedule.")

let max_shrink_runs =
  Arg.(
    value & opt int 200
    & info [ "max-shrink-runs" ] ~doc:"Execution budget for shrinking.")

let time_budget =
  Arg.(
    value
    & opt (some float) None
    & info [ "time-budget" ] ~docv:"SECONDS"
        ~doc:
          "Stop starting new trials after $(docv) wall-clock seconds (the \
           trial in flight completes).")

let replay_path =
  Arg.(
    value
    & opt (some string) None
    & info [ "replay" ] ~docv:"PATH"
        ~doc:
          "Replay a saved schedule (a reproducer file, or every *.json in \
           a corpus directory) instead of fuzzing.")

let trace_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "With --replay: also dump the full JSONL trace stream of the \
           replayed run(s) to $(docv), for offline analysis with \
           accelring_trace.")

let corpus_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "corpus" ] ~docv:"DIR"
        ~doc:"Save the (shrunk) reproducer of a failure under $(docv).")

let quiet =
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress per-trial log lines.")

let cmd =
  let doc = "Fuzz the Accelerated Ring stack with random fault schedules" in
  Cmd.v
    (Cmd.info "accelring_fuzz" ~doc)
    Term.(
      const run $ trials $ seed $ bug_name $ adaptive $ app_name $ shrink
      $ max_shrink_runs $ time_budget $ replay_path $ trace_file $ corpus_dir
      $ quiet)

let () = exit (Cmd.eval cmd)
