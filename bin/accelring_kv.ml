(* CLI: run the replicated key-value store on a simulated cluster and
   print the measured op throughput, write / sync-read latency and
   state-transfer profile. Every run carries the end-to-end consistency
   oracle; any violation (or a cluster that fails to re-converge) is a
   hard error, not a statistic. *)

open Aring_sim
open Aring_app

let net_of_string = function
  | "1g" -> Ok Profile.gigabit
  | "10g" -> Ok Profile.ten_gigabit
  | s -> Error (`Msg (Printf.sprintf "unknown network %S (use 1g|10g)" s))

let run nodes net rate seconds keys hot value_bytes reads sync_reads cas dels
    partition_spec seed verbose trace_file chrome_file show_metrics =
  if verbose then Aring_util.Log.setup ~level:Logs.Info ();
  let module Trace = Aring_obs.Trace in
  (* Same sink assembly as accelring_sim: a JSONL stream and/or an
     in-memory buffer feeding the Chrome exporter. With neither
     requested, tracing stays disabled and free. *)
  let jsonl_oc = Option.map open_out trace_file in
  let mem = if chrome_file <> None then Some (Trace.memory ()) else None in
  let sinks =
    List.filter_map Fun.id
      [
        Option.map Aring_obs.Trace_json.jsonl_sink jsonl_oc;
        Option.map Trace.memory_sink mem;
      ]
  in
  (match sinks with
  | [] -> ()
  | [ s ] -> Trace.install s
  | ss -> Trace.install (Trace.tee ss));
  let partition =
    match partition_spec with
    | None -> None
    | Some (at_ms, heal_ms) ->
        Some
          {
            Kv_scenario.part_at_ns = at_ms * 1_000_000;
            heal_at_ns = heal_ms * 1_000_000;
            island = [ nodes - 1 ];
          }
  in
  let spec =
    {
      Kv_scenario.default_spec with
      label = Printf.sprintf "kv/%dn/%.0fops" nodes rate;
      n_nodes = nodes;
      net;
      key_space = keys;
      hot_keys = min hot keys;
      value_bytes;
      read_permille = reads;
      sync_read_permille = sync_reads;
      cas_permille = cas;
      del_permille = dels;
      ops_per_sec = rate;
      measure_ns = int_of_float (seconds *. 1e9);
      seed = Int64.of_int seed;
      partition;
    }
  in
  let result = Kv_scenario.run spec in
  if sinks <> [] then Trace.uninstall ();
  Option.iter close_out jsonl_oc;
  Option.iter
    (fun m ->
      let path = Option.get chrome_file in
      Aring_obs.Chrome_trace.write_file path (Trace.memory_events m);
      Format.printf "chrome trace (%d events) written to %s@."
        (Trace.memory_count m) path)
    mem;
  Format.printf "%a@." Kv_scenario.pp_result result;
  if show_metrics then
    Format.printf "%a@." Aring_obs.Metrics.pp result.Kv_scenario.metrics;
  if result.Kv_scenario.oracle_violations > 0 then begin
    Format.printf "CONSISTENCY VIOLATIONS:@.%a@." Oracle.pp
      result.Kv_scenario.oracle;
    exit 1
  end;
  if not result.Kv_scenario.converged then begin
    print_endline "replicas did not converge within the drain budget";
    exit 1
  end

open Cmdliner

let nodes =
  Arg.(value & opt int 4 & info [ "n"; "nodes" ] ~doc:"Cluster size.")

let net =
  Arg.(
    value
    & opt (conv (net_of_string, fun fmt n -> Format.fprintf fmt "%s" n.Profile.net_name)) Profile.gigabit
    & info [ "net" ] ~doc:"Network profile: 1g or 10g.")

let rate =
  Arg.(
    value & opt float 20_000.
    & info [ "rate" ] ~doc:"Aggregate offered op rate (ops/sec).")

let seconds =
  Arg.(
    value & opt float 0.2
    & info [ "seconds" ] ~doc:"Measurement window (simulated seconds).")

let keys =
  Arg.(value & opt int 64 & info [ "keys" ] ~doc:"Key-space size.")

let hot =
  Arg.(
    value & opt int 8
    & info [ "hot" ] ~doc:"Hot keys (receive 80% of the traffic).")

let value_bytes =
  Arg.(value & opt int 128 & info [ "value-bytes" ] ~doc:"Value size.")

let reads =
  Arg.(
    value & opt int 250
    & info [ "reads" ] ~doc:"Local-read share of the mix, permille.")

let sync_reads =
  Arg.(
    value & opt int 50
    & info [ "sync-reads" ]
        ~doc:"Sync-read (Safe-ordered) share of the mix, permille.")

let cas =
  Arg.(value & opt int 100 & info [ "cas" ] ~doc:"CAS share, permille.")

let dels =
  Arg.(value & opt int 70 & info [ "dels" ] ~doc:"Delete share, permille.")

let partition_spec =
  Arg.(
    value
    & opt (some (pair ~sep:':' int int)) None
    & info [ "partition" ] ~docv:"AT:HEAL"
        ~doc:
          "Cut the last node away at $(i,AT) ms and heal at $(i,HEAL) ms \
           (simulated), exercising freeze, re-merge and state transfer \
           under load.")

let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Simulation seed.")
let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log progress.")

let trace_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write the structured event trace as JSONL to $(docv).")

let chrome_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "chrome" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event file to $(docv) (open in \
           chrome://tracing or ui.perfetto.dev).")

let show_metrics =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Print the full metrics registry after the run: netsim / engine \
           / daemon / app counters and the per-stage latency-span \
           histograms (span.*).")

let cmd =
  let doc = "Replicated KV store on the Accelerated Ring: simulate and measure" in
  Cmd.v
    (Cmd.info "accelring_kv" ~doc)
    Term.(
      const run $ nodes $ net $ rate $ seconds $ keys $ hot $ value_bytes
      $ reads $ sync_reads $ cas $ dels $ partition_spec $ seed $ verbose
      $ trace_file $ chrome_file $ show_metrics)

let () = exit (Cmd.eval cmd)
