(* CLI: production workload harness — open-loop client sessions at
   scale against the replicated KV stack on the simulated cluster.
   Prints offered vs applied rate, p99/p99.9 write latency, open-loop
   queue depth and (when enabled) reconnect-storm degradation and
   recovery. The consistency oracle rides every run; a violation is a
   hard error. *)

open Aring_sim
module Load = Aring_load.Load

let net_of_string = function
  | "1g" -> Ok Profile.gigabit
  | "10g" -> Ok Profile.ten_gigabit
  | s -> Error (`Msg (Printf.sprintf "unknown network %S (use 1g|10g)" s))

let run nodes rings mcas net sessions groups rate periodic seconds keys theta
    reads sync_reads cas dels churn_ms storm_spec slow_spec wan_ns
    seed verbose show_metrics =
  if verbose then Aring_util.Log.setup ~level:Logs.Info ();
  if rings < 1 then begin
    prerr_endline "--rings must be >= 1";
    exit 2
  end;
  let storm =
    Option.map
      (fun (at_ms, count) ->
        {
          Load.storm_at_ns = at_ms * 1_000_000;
          storm_sessions = count;
          storm_window_ns = 20_000_000;
        })
      storm_spec
  in
  let churn =
    if churn_ms <= 0 && storm = None then None
    else
      Some
        {
          Load.mean_lifetime_ns = churn_ms * 1_000_000;
          reconnect_delay_ns = 5_000_000;
          storm;
        }
  in
  let slow =
    Option.map
      (fun (per_node, per_sec) ->
        { Load.slow_per_node = per_node; drain_per_sec = float_of_int per_sec })
      slow_spec
  in
  let geo =
    if wan_ns <= 0 || nodes < 2 then None
    else
      (* Split the cluster in half across a WAN hop. *)
      Some
        {
          Load.classes = Array.init nodes (fun i -> if i < nodes / 2 then 0 else 1);
          latency_matrix = [| [| 0; wan_ns |]; [| wan_ns; 0 |] |];
        }
  in
  let spec =
    {
      Load.default_spec with
      label =
        (if rings > 1 then
           Printf.sprintf "load/%dr/%dn/%ds" rings nodes (nodes * sessions)
         else Printf.sprintf "load/%dn/%ds" nodes (nodes * sessions));
      n_nodes = nodes;
      rings;
      mcas_permille = (if rings > 1 then mcas else 0);
      net;
      sessions_per_node = sessions;
      n_groups = groups;
      arrival = (if periodic then Load.Periodic else Load.Poisson);
      ops_per_sec = rate;
      key_space = keys;
      zipf_theta = theta;
      read_permille = reads;
      sync_read_permille = sync_reads;
      cas_permille = cas;
      del_permille = dels;
      churn;
      slow;
      geo;
      measure_ns = int_of_float (seconds *. 1e9);
      seed = Int64.of_int seed;
    }
  in
  if rings > 1 then begin
    (* Sharded multi-ring deployment: the churn / storm / slow-receiver /
       geo dimensions stay single-ring, so reject them before Mload does
       with a friendlier message. *)
    if churn <> None || slow <> None || geo <> None then begin
      prerr_endline
        "--rings > 1 is incompatible with --churn/--storm/--slow/--wan-ns";
      exit 2
    end;
    let module Mload = Aring_multiring.Mload in
    let result = Mload.run spec in
    Format.printf "%a@." Mload.pp_result result;
    if show_metrics then
      Format.printf "%a@." Aring_obs.Metrics.pp result.Mload.metrics;
    if result.Mload.oracle_violations > 0 then begin
      print_endline "CONSISTENCY VIOLATIONS (see per-ring oracles)";
      exit 1
    end;
    if not result.Mload.converged then begin
      print_endline "replicas did not converge within the drain budget";
      exit 1
    end
  end
  else begin
    let result = Load.run spec in
    Format.printf "%a@." Load.pp_result result;
    if show_metrics then
      Format.printf "%a@." Aring_obs.Metrics.pp result.Load.metrics;
    if result.Load.oracle_violations > 0 then begin
      Format.printf "CONSISTENCY VIOLATIONS:@.%a@." Aring_app.Oracle.pp
        result.Load.oracle;
      exit 1
    end;
    if not result.Load.converged then begin
      print_endline "replicas did not converge within the drain budget";
      exit 1
    end
  end

open Cmdliner

let nodes =
  Arg.(value & opt int 4 & info [ "n"; "nodes" ] ~doc:"Cluster size.")

let rings_arg =
  Arg.(
    value & opt int 1
    & info [ "rings" ]
        ~doc:
          "Independent ordering rings the KV key space shards over \
           (1 = classic single-ring). Every node participates in every \
           ring; latency is measured at the merged learner stream.")

let mcas_arg =
  Arg.(
    value & opt int 20
    & info [ "mcas" ]
        ~doc:
          "Cross-shard multi-key cas share of the write mix, permille \
           (multi-ring runs only).")

let net =
  Arg.(
    value
    & opt (conv (net_of_string, fun fmt n -> Format.fprintf fmt "%s" n.Profile.net_name)) Profile.gigabit
    & info [ "net" ] ~doc:"Network profile: 1g or 10g.")

let sessions =
  Arg.(
    value & opt int 500
    & info [ "sessions" ] ~doc:"Client sessions per daemon.")

let groups =
  Arg.(
    value & opt int 16
    & info [ "groups" ] ~doc:"Process groups the sessions spread over.")

let rate =
  Arg.(
    value & opt float 12_000.
    & info [ "rate" ] ~doc:"Aggregate offered op rate (ops/sec), open loop.")

let periodic =
  Arg.(
    value & flag
    & info [ "periodic" ]
        ~doc:"Deterministic per-session pacing instead of Poisson arrivals.")

let seconds =
  Arg.(
    value & opt float 0.3
    & info [ "seconds" ] ~doc:"Measurement window (simulated seconds).")

let keys =
  Arg.(value & opt int 512 & info [ "keys" ] ~doc:"Key-space size.")

let theta =
  Arg.(
    value & opt float 0.99
    & info [ "theta" ] ~doc:"Zipf skew of the key popularity (0 = uniform).")

let reads =
  Arg.(
    value & opt int 250
    & info [ "reads" ] ~doc:"Local-read share of the mix, permille.")

let sync_reads =
  Arg.(
    value & opt int 50
    & info [ "sync-reads" ]
        ~doc:"Sync-read (Safe-ordered) share of the mix, permille.")

let cas =
  Arg.(value & opt int 100 & info [ "cas" ] ~doc:"CAS share, permille.")

let dels =
  Arg.(value & opt int 70 & info [ "dels" ] ~doc:"Delete share, permille.")

let churn_ms =
  Arg.(
    value & opt int 0
    & info [ "churn" ] ~docv:"MS"
        ~doc:
          "Background churn: mean exponential session lifetime in \
           simulated ms (0 = none). Churned sessions reconnect after 5 ms.")

let storm_spec =
  Arg.(
    value
    & opt (some (pair ~sep:':' int int)) None
    & info [ "storm" ] ~docv:"AT:COUNT"
        ~doc:
          "Reconnect storm: disconnect $(i,COUNT) sessions at $(i,AT) ms \
           and spread their reconnects over the following 20 ms.")

let slow_spec =
  Arg.(
    value
    & opt (some (pair ~sep:':' int int)) None
    & info [ "slow" ] ~docv:"PER_NODE:RATE"
        ~doc:
          "Slow receivers: $(i,PER_NODE) sessions per daemon subscribed \
           to the KV group, each draining at $(i,RATE) messages/s.")

let wan_ns =
  Arg.(
    value & opt int 0
    & info [ "wan-ns" ]
        ~doc:
          "Extra one-way latency (ns) between the two halves of the \
           cluster, emulating a WAN/geo tier (0 = none).")

let seed = Arg.(value & opt int 21 & info [ "seed" ] ~doc:"Simulation seed.")
let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log progress.")

let show_metrics =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Print the full metrics registry after the run, including the \
           load.* series and the per-stage latency histograms.")

let cmd =
  let doc =
    "Open-loop production workload harness on the Accelerated Ring"
  in
  Cmd.v
    (Cmd.info "accelring_load" ~doc)
    Term.(
      const run $ nodes $ rings_arg $ mcas_arg $ net $ sessions $ groups $ rate
      $ periodic $ seconds
      $ keys $ theta $ reads $ sync_reads $ cas $ dels $ churn_ms $ storm_spec
      $ slow_spec $ wan_ns $ seed $ verbose $ show_metrics)

let () = exit (Cmd.eval cmd)
