(* CLI: run one benchmark scenario on the simulated cluster and print the
   measured throughput/latency profile. Used for exploration and
   calibration; the full paper reproduction lives in bench/main.exe. *)

open Aring_ring
open Aring_sim
open Aring_harness

let tier_of_string = function
  | "library" -> Ok Profile.library
  | "daemon" -> Ok Profile.daemon
  | "spread" -> Ok Profile.spread
  | s -> Error (`Msg (Printf.sprintf "unknown tier %S" s))

let net_of_string = function
  | "1g" -> Ok Profile.gigabit
  | "10g" -> Ok Profile.ten_gigabit
  | s -> Error (`Msg (Printf.sprintf "unknown network %S (use 1g|10g)" s))

let service_of_string = function
  | "agreed" -> Ok Aring_wire.Types.Agreed
  | "safe" -> Ok Aring_wire.Types.Safe
  | "fifo" -> Ok Aring_wire.Types.Fifo
  | "causal" -> Ok Aring_wire.Types.Causal
  | s -> Error (`Msg (Printf.sprintf "unknown service %S" s))

let run nodes net tier protocol service payload rate pw gw aw seconds
    find_max seed verbose trace_file chrome_file check rotation adaptive spans
    =
  if verbose then Aring_util.Log.setup ~level:Logs.Info ();
  let module Trace = Aring_obs.Trace in
  (* Assemble the requested trace sinks: a JSONL stream, an in-memory
     buffer feeding the Chrome exporter, and/or the live invariant
     checker. With none requested, tracing stays disabled and free. *)
  let jsonl_oc = Option.map open_out trace_file in
  let mem = if chrome_file <> None then Some (Trace.memory ()) else None in
  let checker = if check then Some (Aring_obs.Checker.create ()) else None in
  let sinks =
    List.filter_map Fun.id
      [
        Option.map Aring_obs.Trace_json.jsonl_sink jsonl_oc;
        Option.map Trace.memory_sink mem;
        Option.map Aring_obs.Checker.as_sink checker;
      ]
  in
  (match sinks with [] -> () | [ s ] -> Trace.install s | ss -> Trace.install (Trace.tee ss));
  let params =
    match protocol with
    | "original" ->
        { Params.original with personal_window = pw; global_window = gw }
    | "accelerated" | "sequencer" | "ring-paxos" ->
        Params.accelerated ~personal_window:pw ~global_window:gw
          ~accelerated_window:aw ()
    | s -> failwith (Printf.sprintf "unknown protocol %S" s)
  in
  let spec =
    {
      Scenario.default_spec with
      label = Printf.sprintf "%s/%s/%s" tier.Profile.tier_name protocol
          (Aring_wire.Types.service_to_string service);
      n_nodes = nodes;
      net;
      tier;
      params;
      payload;
      service;
      offered_mbps = rate;
      measure_ns = int_of_float (seconds *. 1e9);
      seed = Int64.of_int seed;
      profile_rotation = rotation;
      controller =
        (if adaptive then
           Some (Aring_control.Controller.default_config ~aw_max:pw ())
         else None);
    }
  in
  (* Latency spans ride outside the trace stream: attach a collector for
     the run, report per-stage quantiles after. The baselines (sequencer,
     ring-paxos) bypass the engine's stage notes, so their report is
     empty. *)
  let span =
    if spans then Some (Aring_obs.Span.create ()) else None
  in
  Option.iter Aring_obs.Span.attach span;
  let result =
    match protocol with
    | "sequencer" ->
        let participants =
          Array.init nodes (fun me ->
              Aring_baselines.Sequencer.participant
                (Aring_baselines.Sequencer.create ~me ~n:nodes ()))
        in
        Scenario.run_custom spec ~participants
    | "ring-paxos" ->
        let participants =
          Array.init nodes (fun me ->
              Aring_baselines.Ring_paxos.participant
                (Aring_baselines.Ring_paxos.create ~me ~n:nodes ()))
        in
        Scenario.run_custom spec ~participants
    | _ ->
        if find_max then Scenario.find_max_throughput spec else Scenario.run spec
  in
  if spans then Aring_obs.Span.detach ();
  if sinks <> [] then Trace.uninstall ();
  Option.iter close_out jsonl_oc;
  Option.iter
    (fun m ->
      let path = Option.get chrome_file in
      Aring_obs.Chrome_trace.write_file path (Trace.memory_events m);
      Format.printf "chrome trace (%d events) written to %s@."
        (Trace.memory_count m) path)
    mem;
  Format.printf "%a@." Scenario.pp_result result;
  Option.iter
    (fun s ->
      match Aring_obs.Span.report s with
      | [] -> Format.printf "no latency spans recorded@."
      | stages -> Format.printf "%a@." Aring_obs.Span.pp_report stages)
    span;
  (match result.Scenario.rotation with
  | Some s -> Format.printf "%a@." Aring_obs.Rotation.pp_summary s
  | None -> ());
  match checker with
  | None -> ()
  | Some c ->
      Format.printf "%a@." Aring_obs.Checker.pp c;
      if Aring_obs.Checker.violation_count c > 0 then exit 1

open Cmdliner

let nodes = Arg.(value & opt int 8 & info [ "n"; "nodes" ] ~doc:"Cluster size.")

let net =
  Arg.(
    value
    & opt (conv (net_of_string, fun ppf n -> Fmt.string ppf n.Profile.net_name)) Profile.gigabit
    & info [ "net" ] ~doc:"Network profile: 1g or 10g.")

let tier =
  Arg.(
    value
    & opt (conv (tier_of_string, fun ppf t -> Fmt.string ppf t.Profile.tier_name)) Profile.daemon
    & info [ "tier" ] ~doc:"Implementation tier: library, daemon or spread.")

let protocol =
  Arg.(
    value & opt string "accelerated"
    & info [ "protocol" ]
        ~doc:"original, accelerated, sequencer or ring-paxos.")

let service =
  Arg.(
    value
    & opt (conv (service_of_string, fun ppf s -> Fmt.string ppf (Aring_wire.Types.service_to_string s)))
        Aring_wire.Types.Agreed
    & info [ "service" ] ~doc:"Delivery service: agreed, safe, fifo, causal.")

let payload =
  Arg.(value & opt int 1350 & info [ "payload" ] ~doc:"Payload bytes.")

let rate =
  Arg.(value & opt float 200.0 & info [ "rate" ] ~doc:"Offered load (Mbps).")

let pw = Arg.(value & opt int 50 & info [ "pw" ] ~doc:"Personal window.")
let gw = Arg.(value & opt int 400 & info [ "gw" ] ~doc:"Global window.")
let aw = Arg.(value & opt int 20 & info [ "aw" ] ~doc:"Accelerated window.")

let seconds =
  Arg.(value & opt float 0.4 & info [ "seconds" ] ~doc:"Measurement window (s).")

let find_max =
  Arg.(value & flag & info [ "find-max" ] ~doc:"Search the maximum sustained throughput.")

let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Simulation seed.")
let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Verbose logging.")

let trace_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE" ~doc:"Write the structured event trace as JSONL to $(docv).")

let chrome_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "chrome" ] ~docv:"FILE"
        ~doc:"Write a Chrome trace-event file to $(docv) (open in chrome://tracing or ui.perfetto.dev).")

let check =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:"Run the trace-driven invariant checker during the run; exit 1 on any violation.")

let rotation =
  Arg.(
    value & flag
    & info [ "rotation" ]
        ~doc:"Profile token rotations (rotation time, messages/round, post-token overlap).")

let adaptive =
  Arg.(
    value & flag
    & info [ "adaptive" ]
        ~doc:
          "Give every node an adaptive accelerated-window controller (AIMD, \
           capped at the personal window); --aw only sets the starting \
           window.")

let spans =
  Arg.(
    value & flag
    & info [ "spans" ]
        ~doc:
          "Collect end-to-end latency spans during the run and print \
           per-stage p50/p99/p99.9 (submit-wait, token-order, deliver, \
           end-to-end) after the profile.")

let cmd =
  let doc = "Simulate an Accelerated Ring cluster and measure its profile" in
  Cmd.v
    (Cmd.info "accelring_sim" ~doc)
    Term.(
      const run $ nodes $ net $ tier $ protocol $ service $ payload $ rate
      $ pw $ gw $ aw $ seconds $ find_max $ seed $ verbose $ trace_file
      $ chrome_file $ check $ rotation $ adaptive $ spans)

let () = exit (Cmd.eval cmd)
