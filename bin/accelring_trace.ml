(* CLI: inspect a recorded JSONL protocol trace — print it, summarize
   it, convert it for chrome://tracing, re-run the invariant checker, or
   recompute the token-rotation profile. The trace itself comes from
   `accelring_sim --trace out.jsonl` (or any program installing a
   {!Aring_obs.Trace_json.jsonl_sink}). *)

module Trace = Aring_obs.Trace
module Trace_json = Aring_obs.Trace_json
module Chrome_trace = Aring_obs.Chrome_trace
module Checker = Aring_obs.Checker
module Rotation = Aring_obs.Rotation

let summarize events =
  let kinds = Hashtbl.create 16 in
  let nodes = Hashtbl.create 16 in
  let t_min = ref max_int and t_max = ref min_int in
  List.iter
    (fun (ev : Trace.event) ->
      let name = Trace.kind_name ev.kind in
      Hashtbl.replace kinds name
        (1 + Option.value ~default:0 (Hashtbl.find_opt kinds name));
      Hashtbl.replace nodes ev.node ();
      if ev.t_ns < !t_min then t_min := ev.t_ns;
      if ev.t_ns > !t_max then t_max := ev.t_ns)
    events;
  Format.printf "%d events, %d nodes, %.3f ms span@." (List.length events)
    (Hashtbl.length nodes)
    (if !t_max >= !t_min then float_of_int (!t_max - !t_min) /. 1e6 else 0.0);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) kinds []
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> List.iter (fun (k, v) -> Format.printf "  %-18s %d@." k v)

let run file chrome_out check rotation_node head =
  let events =
    try Trace_json.read_file file
    with Aring_obs.Json.Parse_error msg ->
      Format.eprintf "accelring_trace: %s: malformed trace (%s)@." file msg;
      exit 2
  in
  (match head with
  | Some n ->
      List.iteri
        (fun i ev -> if i < n then Format.printf "%a@." Trace.pp_event ev)
        events
  | None -> summarize events);
  (match chrome_out with
  | Some path ->
      Chrome_trace.write_file path events;
      Format.printf "chrome trace written to %s@." path
  | None -> ());
  (match rotation_node with
  | Some node ->
      let p = Rotation.create ~node () in
      List.iter (Rotation.observe p) events;
      Format.printf "%a@." Rotation.pp_summary (Rotation.summary p)
  | None -> ());
  if check then begin
    let c = Checker.create () in
    List.iter (Checker.observe c) events;
    Format.printf "%a@." Checker.pp c;
    if Checker.violation_count c > 0 then exit 1
  end

open Cmdliner

let file =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"TRACE.jsonl" ~doc:"Recorded JSONL trace file.")

let chrome_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "chrome" ] ~docv:"FILE"
        ~doc:"Convert to a Chrome trace-event file at $(docv).")

let check =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:"Run the EVS invariant checker over the trace; exit 1 on violations.")

let rotation_node =
  Arg.(
    value
    & opt (some int) None
    & info [ "rotation" ] ~docv:"NODE"
        ~doc:"Recompute the token-rotation profile anchored at $(docv).")

let head =
  Arg.(
    value
    & opt (some int) None
    & info [ "head" ] ~docv:"N"
        ~doc:"Print the first $(docv) events instead of the summary.")

let cmd =
  let doc = "Inspect, convert and check recorded Accelerated Ring traces" in
  Cmd.v
    (Cmd.info "accelring_trace" ~doc)
    Term.(const run $ file $ chrome_out $ check $ rotation_node $ head)

let () = exit (Cmd.eval cmd)
