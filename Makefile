.PHONY: all build test check fmt bench quick-bench clean

all: build

build:
	dune build

test:
	dune runtest

# Formatting is best-effort: the dune fmt alias needs ocamlformat, which
# not every environment has installed.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt --auto-promote; \
	else \
	  echo "ocamlformat not installed; skipping fmt"; \
	fi

check: build test fmt

bench:
	dune exec bench/main.exe

quick-bench:
	dune exec bench/main.exe -- quick

clean:
	dune clean
