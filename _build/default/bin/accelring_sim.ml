(* CLI: run one benchmark scenario on the simulated cluster and print the
   measured throughput/latency profile. Used for exploration and
   calibration; the full paper reproduction lives in bench/main.exe. *)

open Aring_ring
open Aring_sim
open Aring_harness

let tier_of_string = function
  | "library" -> Ok Profile.library
  | "daemon" -> Ok Profile.daemon
  | "spread" -> Ok Profile.spread
  | s -> Error (`Msg (Printf.sprintf "unknown tier %S" s))

let net_of_string = function
  | "1g" -> Ok Profile.gigabit
  | "10g" -> Ok Profile.ten_gigabit
  | s -> Error (`Msg (Printf.sprintf "unknown network %S (use 1g|10g)" s))

let service_of_string = function
  | "agreed" -> Ok Aring_wire.Types.Agreed
  | "safe" -> Ok Aring_wire.Types.Safe
  | "fifo" -> Ok Aring_wire.Types.Fifo
  | "causal" -> Ok Aring_wire.Types.Causal
  | s -> Error (`Msg (Printf.sprintf "unknown service %S" s))

let run nodes net tier protocol service payload rate pw gw aw seconds
    find_max seed verbose =
  if verbose then Aring_util.Log.setup ~level:Logs.Info ();
  let params =
    match protocol with
    | "original" ->
        { Params.original with personal_window = pw; global_window = gw }
    | "accelerated" | "sequencer" | "ring-paxos" ->
        Params.accelerated ~personal_window:pw ~global_window:gw
          ~accelerated_window:aw ()
    | s -> failwith (Printf.sprintf "unknown protocol %S" s)
  in
  let spec =
    {
      Scenario.default_spec with
      label = Printf.sprintf "%s/%s/%s" tier.Profile.tier_name protocol
          (Aring_wire.Types.service_to_string service);
      n_nodes = nodes;
      net;
      tier;
      params;
      payload;
      service;
      offered_mbps = rate;
      measure_ns = int_of_float (seconds *. 1e9);
      seed = Int64.of_int seed;
    }
  in
  let result =
    match protocol with
    | "sequencer" ->
        let participants =
          Array.init nodes (fun me ->
              Aring_baselines.Sequencer.participant
                (Aring_baselines.Sequencer.create ~me ~n:nodes ()))
        in
        Scenario.run_custom spec ~participants
    | "ring-paxos" ->
        let participants =
          Array.init nodes (fun me ->
              Aring_baselines.Ring_paxos.participant
                (Aring_baselines.Ring_paxos.create ~me ~n:nodes ()))
        in
        Scenario.run_custom spec ~participants
    | _ ->
        if find_max then Scenario.find_max_throughput spec else Scenario.run spec
  in
  Format.printf "%a@." Scenario.pp_result result

open Cmdliner

let nodes = Arg.(value & opt int 8 & info [ "n"; "nodes" ] ~doc:"Cluster size.")

let net =
  Arg.(
    value
    & opt (conv (net_of_string, fun ppf n -> Fmt.string ppf n.Profile.net_name)) Profile.gigabit
    & info [ "net" ] ~doc:"Network profile: 1g or 10g.")

let tier =
  Arg.(
    value
    & opt (conv (tier_of_string, fun ppf t -> Fmt.string ppf t.Profile.tier_name)) Profile.daemon
    & info [ "tier" ] ~doc:"Implementation tier: library, daemon or spread.")

let protocol =
  Arg.(
    value & opt string "accelerated"
    & info [ "protocol" ]
        ~doc:"original, accelerated, sequencer or ring-paxos.")

let service =
  Arg.(
    value
    & opt (conv (service_of_string, fun ppf s -> Fmt.string ppf (Aring_wire.Types.service_to_string s)))
        Aring_wire.Types.Agreed
    & info [ "service" ] ~doc:"Delivery service: agreed, safe, fifo, causal.")

let payload =
  Arg.(value & opt int 1350 & info [ "payload" ] ~doc:"Payload bytes.")

let rate =
  Arg.(value & opt float 200.0 & info [ "rate" ] ~doc:"Offered load (Mbps).")

let pw = Arg.(value & opt int 50 & info [ "pw" ] ~doc:"Personal window.")
let gw = Arg.(value & opt int 400 & info [ "gw" ] ~doc:"Global window.")
let aw = Arg.(value & opt int 20 & info [ "aw" ] ~doc:"Accelerated window.")

let seconds =
  Arg.(value & opt float 0.4 & info [ "seconds" ] ~doc:"Measurement window (s).")

let find_max =
  Arg.(value & flag & info [ "find-max" ] ~doc:"Search the maximum sustained throughput.")

let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Simulation seed.")
let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Verbose logging.")

let cmd =
  let doc = "Simulate an Accelerated Ring cluster and measure its profile" in
  Cmd.v
    (Cmd.info "accelring_sim" ~doc)
    Term.(
      const run $ nodes $ net $ tier $ protocol $ service $ payload $ rate
      $ pw $ gw $ aw $ seconds $ find_max $ seed $ verbose)

let () = exit (Cmd.eval cmd)
