bin/accelring_udp.ml: Arg Aring_ring Aring_transport Aring_util Aring_wire Array Bytes Cmd Cmdliner Fmt List Logs Member Message Params Participant Printf String Term Thread Types Udp_runtime
