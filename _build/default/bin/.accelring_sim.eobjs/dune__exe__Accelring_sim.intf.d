bin/accelring_sim.mli:
