bin/accelring_udp.mli:
