bin/accelring_sim.ml: Arg Aring_baselines Aring_harness Aring_ring Aring_sim Aring_util Aring_wire Array Cmd Cmdliner Fmt Format Int64 Logs Params Printf Profile Scenario Term
