(* CLI: run one Accelerated Ring member over real UDP sockets.

   Start one process per member, e.g. a 3-member ring on loopback:

     accelring_udp --me 0 --peers 127.0.0.1:7000,127.0.0.1:7002,127.0.0.1:7004 &
     accelring_udp --me 1 --peers 127.0.0.1:7000,127.0.0.1:7002,127.0.0.1:7004 &
     accelring_udp --me 2 --peers 127.0.0.1:7000,127.0.0.1:7002,127.0.0.1:7004

   Each peer uses the given port for data and port+1 for the token. Every
   process submits a numbered message each --interval seconds and prints
   what it delivers, demonstrating the cluster-wide total order. *)

open Aring_wire
open Aring_ring
open Aring_transport

let parse_peer pid spec =
  match String.split_on_char ':' spec with
  | [ host; port ] ->
      let port = int_of_string port in
      { Udp_runtime.pid; host; data_port = port; token_port = port + 1 }
  | _ -> failwith (Printf.sprintf "bad peer spec %S (want host:port)" spec)

let run me peers_spec duration interval rate_messages verbose =
  if verbose then Aring_util.Log.setup ~level:Logs.Debug ()
  else Aring_util.Log.setup ~level:Logs.Info ();
  let peers = List.mapi parse_peer (String.split_on_char ',' peers_spec) in
  let n = List.length peers in
  if me < 0 || me >= n then failwith "--me out of range";
  let ring = Array.init n (fun i -> i) in
  let member = Member.create ~params:Params.default ~me ~initial_ring:ring () in
  let runtime =
    Udp_runtime.create ~me ~peers ~participant:(Member.participant member)
      ~on_deliver:(fun (d : Message.data) ->
        Printf.printf "[deliver] #%-5d from %d: %s\n%!" d.seq d.pid
          (Bytes.to_string d.payload))
      ~on_view:(fun v ->
        Printf.printf "[view]    %s\n%!" (Fmt.str "%a" Participant.pp_view v))
      ()
  in
  (* Submit from a side thread while the select loop runs. *)
  let sender =
    Thread.create
      (fun () ->
        Thread.delay (2.0 *. interval);
        for k = 1 to rate_messages do
          Member.submit member Types.Agreed
            (Bytes.of_string (Printf.sprintf "m%d from %d" k me));
          Thread.delay interval
        done)
      ()
  in
  Udp_runtime.run runtime ~duration_s:duration;
  Thread.join sender;
  Udp_runtime.close runtime;
  Printf.printf "done: %d packets received, %d decode errors\n"
    (Udp_runtime.packets_received runtime)
    (Udp_runtime.decode_errors runtime)

open Cmdliner

let me = Arg.(required & opt (some int) None & info [ "me" ] ~doc:"My member index.")

let peers =
  Arg.(
    required
    & opt (some string) None
    & info [ "peers" ] ~doc:"Comma-separated host:port list, in ring order.")

let duration =
  Arg.(value & opt float 10.0 & info [ "duration" ] ~doc:"Run time (seconds).")

let interval =
  Arg.(value & opt float 0.2 & info [ "interval" ] ~doc:"Seconds between submissions.")

let messages =
  Arg.(value & opt int 20 & info [ "messages" ] ~doc:"Messages to submit.")

let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Debug logging.")

let cmd =
  let doc = "Run one Accelerated Ring member over UDP" in
  Cmd.v
    (Cmd.info "accelring_udp" ~doc)
    Term.(const run $ me $ peers $ duration $ interval $ messages $ verbose)

let () = exit (Cmd.eval cmd)
