open Aring_wire

type t =
  | App of { sender : string; groups : string list; payload : bytes }
  | Join of { member : string; group : string }
  | Leave of { member : string; group : string }
  | Batch of t list

let tag_app = 1
let tag_join = 2
let tag_leave = 3
let tag_batch = 4

let write_string e s = Codec.write_bytes e (Bytes.unsafe_of_string s)
let read_string d = Bytes.unsafe_to_string (Codec.read_bytes d)

let rec write_one e t =
  match t with
  | App { sender; groups; payload } ->
      Codec.write_u8 e tag_app;
      write_string e sender;
      Codec.write_list e (write_string e) groups;
      Codec.write_bytes e payload
  | Join { member; group } ->
      Codec.write_u8 e tag_join;
      write_string e member;
      write_string e group
  | Leave { member; group } ->
      Codec.write_u8 e tag_leave;
      write_string e member;
      write_string e group
  | Batch entries ->
      Codec.write_u8 e tag_batch;
      Codec.write_list e
        (fun entry ->
          match entry with
          | Batch _ -> invalid_arg "Envelope.encode: nested batch"
          | entry -> write_one e entry)
        entries

let encode t =
  let e = Codec.encoder () in
  write_one e t;
  Codec.to_bytes e

let encoded_size t = Bytes.length (encode t)

let rec read_one ~nested d =
  let tag = Codec.read_u8 d in
  if tag = tag_app then begin
    let sender = read_string d in
    let groups = Codec.read_list d (fun () -> read_string d) in
    let payload = Codec.read_bytes d in
    App { sender; groups; payload }
  end
  else if tag = tag_join then begin
    let member = read_string d in
    let group = read_string d in
    Join { member; group }
  end
  else if tag = tag_leave then begin
    let member = read_string d in
    let group = read_string d in
    Leave { member; group }
  end
  else if tag = tag_batch && not nested then
    Batch (Codec.read_list d (fun () -> read_one ~nested:true d))
  else raise (Codec.Decode_error (Printf.sprintf "unknown envelope tag %d" tag))

let decode buf =
  let d = Codec.decoder buf in
  let t = read_one ~nested:false d in
  Codec.expect_end d;
  t

let member_name ~daemon ~session = Printf.sprintf "#%s#%d" session daemon

let rec pp ppf = function
  | App { sender; groups; payload } ->
      Format.fprintf ppf "app(%s -> %s, %d bytes)" sender
        (String.concat "," groups) (Bytes.length payload)
  | Join { member; group } -> Format.fprintf ppf "join(%s -> %s)" member group
  | Leave { member; group } -> Format.fprintf ppf "leave(%s -> %s)" member group
  | Batch entries ->
      Format.fprintf ppf "batch(%a)"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ") pp)
        entries
