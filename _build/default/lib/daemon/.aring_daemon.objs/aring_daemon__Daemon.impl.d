lib/daemon/daemon.ml: Aring_ring Aring_wire Codec Envelope Groups Hashtbl List Member Message Participant Printf Types
