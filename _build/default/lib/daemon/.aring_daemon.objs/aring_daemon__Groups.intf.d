lib/daemon/groups.mli:
