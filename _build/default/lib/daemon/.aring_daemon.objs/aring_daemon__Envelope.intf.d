lib/daemon/envelope.mli: Format
