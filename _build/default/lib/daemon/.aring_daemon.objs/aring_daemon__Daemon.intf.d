lib/daemon/daemon.mli: Aring_ring Aring_wire Member Participant Types
