lib/daemon/groups.ml: Hashtbl List Option String
