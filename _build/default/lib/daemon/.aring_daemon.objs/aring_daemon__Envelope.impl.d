lib/daemon/envelope.ml: Aring_wire Bytes Codec Format Printf String
